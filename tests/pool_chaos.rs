//! Multi-device pool acceptance: sharded launches must be bit-identical to
//! a serial single-device run — across pool sizes, interpreter thread
//! counts and engines — and must survive seeded faults by quarantining the
//! hit member and migrating the failed shard, reproducing the fault-free
//! result exactly whenever a survivor exists. Unrecoverable scenarios must
//! fail with a structured error naming the quarantined device and the
//! failed shard's block coordinates.

use alpaka::{
    chrome_trace, trace, AccKind, Args, BufLayout, ChromeOpts, Device, DevicePool, Engine, Error,
    FallbackChain, FaultPlan, Health, LaunchSpec, PoolOutcome, PoolPolicy, Queue, QueueBehavior,
    RetryPolicy, WorkDiv, WorkDivSpec,
};
use alpaka_kernels::{DaxpyKernel, DgemmNaive, HistogramGlobalExact, ScanBlocks};
use alpaka_sim::LaunchStats;

const ENGINES: [Engine; 3] = [Engine::Reference, Engine::Lowered, Engine::Compiled];

// ---------------------------------------------------------------------------
// Workloads (facade-level LaunchSpecs mirroring the bench zoo).

fn daxpy_spec() -> LaunchSpec<DaxpyKernel> {
    let n = 4096usize;
    let x: Vec<f64> = (0..n)
        .map(|i| ((i * 11 + 2) % 23) as f64 * 0.5 - 5.0)
        .collect();
    let y: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.25).collect();
    LaunchSpec::new(DaxpyKernel, WorkDivSpec::Fixed(WorkDiv::d1(n / 64, 1, 64)))
        .arg_f(BufLayout::d1(n), x)
        .arg_f(BufLayout::d1(n), y)
        .scalar_f(2.5)
        .scalar_i(n as i64)
}

fn dgemm_spec() -> LaunchSpec<DgemmNaive> {
    let (m, n) = (48usize, 8usize);
    let a: Vec<f64> = (0..m * n)
        .map(|i| ((i * 7 + 3) % 17) as f64 * 0.25)
        .collect();
    let b: Vec<f64> = (0..n * n)
        .map(|i| ((i * 5 + 1) % 13) as f64 - 6.0)
        .collect();
    let c = vec![0.0; m * n];
    LaunchSpec::new(DgemmNaive, WorkDivSpec::Fixed(DgemmNaive::workdiv(m, 1)))
        .arg_f(BufLayout::d1(m * n), a)
        .arg_f(BufLayout::d1(n * n), b)
        .arg_f(BufLayout::d1(m * n), c)
        .scalar_f(1.0)
        .scalar_f(0.0)
        .scalar_i(m as i64)
        .scalar_i(n as i64)
        .scalar_i(n as i64)
        .scalar_i(n as i64)
        .scalar_i(n as i64)
        .scalar_i(n as i64)
}

fn scan_spec() -> LaunchSpec<ScanBlocks> {
    let (blocks, threads) = (32usize, 16usize);
    let n = blocks * 2 * threads;
    let x: Vec<f64> = (0..n)
        .map(|i| ((i * 13 + 5) % 17) as f64 * 0.75 - 4.0)
        .collect();
    LaunchSpec::new(
        ScanBlocks { block: threads },
        WorkDivSpec::Fixed(WorkDiv::d1(blocks, threads, 1)),
    )
    .arg_f(BufLayout::d1(n), x)
    .arg_f(BufLayout::d1(n), vec![0.0; n])
    .arg_f(BufLayout::d1(blocks), vec![0.0; blocks])
    .scalar_i(n as i64)
}

fn histogram_spec() -> LaunchSpec<HistogramGlobalExact> {
    let (blocks, elems, bins) = (64usize, 16usize, 16usize);
    let n = blocks * elems;
    let s: Vec<f64> = (0..n)
        .map(|i| ((i * 37 + 11) % 1000) as f64 * 0.01)
        .collect();
    LaunchSpec::new(
        HistogramGlobalExact,
        WorkDivSpec::Fixed(WorkDiv::d1(blocks, 1, elems)),
    )
    .arg_f(BufLayout::d1(n), s)
    .arg_i(BufLayout::d1(bins), vec![0; bins])
    .scalar_f(0.0)
    .scalar_f(10.0)
    .scalar_i(n as i64)
    .scalar_i(bins as i64)
}

// ---------------------------------------------------------------------------
// Drivers.

/// Serial single-device reference run (no pool, one full-grid launch).
fn serial_run<K: alpaka::Kernel + Clone + Send + 'static>(
    kind: AccKind,
    engine: Engine,
    spec: &LaunchSpec<K>,
) -> (Vec<Vec<f64>>, Vec<Vec<i64>>) {
    let dev = Device::with_workers(kind, 1).with_engine(engine);
    dev.clear_faults();
    let wd = match &spec.workdiv {
        WorkDivSpec::Fixed(wd) => *wd,
        WorkDivSpec::Suggest1d(n) => dev.suggest_workdiv_1d(*n),
    };
    let mut args = Args::new();
    let mut bufs_f = Vec::new();
    for (layout, init) in &spec.bufs_f {
        let b = dev.alloc_f64(*layout);
        b.upload(init).unwrap();
        args = args.buf_f(&b);
        bufs_f.push(b);
    }
    let mut bufs_i = Vec::new();
    for (layout, init) in &spec.bufs_i {
        let b = dev.alloc_i64(*layout);
        b.upload(init).unwrap();
        args = args.buf_i(&b);
        bufs_i.push(b);
    }
    args.scalars = spec.scalars.clone();
    dev.launch(&spec.kernel, &wd, &args).unwrap();
    (
        bufs_f.iter().map(|b| b.download()).collect(),
        bufs_i.iter().map(|b| b.download()).collect(),
    )
}

/// One pool launch under trace capture, with optional per-member fault
/// plans. Returns the outcome plus the rendered Chrome-trace bytes.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn pool_run<K: alpaka::Kernel + Clone + Send + 'static>(
    kind: AccKind,
    pool_size: usize,
    workers: usize,
    engine: Engine,
    spec: &LaunchSpec<K>,
    shards: usize,
    policy: PoolPolicy,
    plans: &[(usize, FaultPlan)],
) -> (Result<PoolOutcome, Error>, String) {
    let (out, events) = trace::capture(|| {
        let mut pool = DevicePool::new_sim_with_workers(kind.clone(), pool_size, workers)
            .unwrap()
            .with_engine(engine)
            .with_policy(policy.clone());
        pool.clear_faults();
        for (m, p) in plans {
            pool.set_member_faults(*m, Some(p.clone()));
        }
        pool.launch(spec, shards)
    });
    let rendered = chrome_trace(&events, &ChromeOpts { mask_wall: true });
    (out, rendered)
}

fn bits_f(bufs: &[Vec<f64>]) -> Vec<Vec<u64>> {
    bufs.iter()
        .map(|b| b.iter().map(|v| v.to_bits()).collect())
        .collect()
}

// ---------------------------------------------------------------------------
// Determinism: pool == serial, byte-identical across pool sizes / threads /
// engines.

fn check_workload<K: alpaka::Kernel + Clone + Send + 'static>(
    name: &str,
    kind: AccKind,
    spec: &LaunchSpec<K>,
    shards: usize,
) {
    // Engine-invariant canonical trace: collect every (pool size, workers,
    // engine) combination's rendering and demand byte equality.
    let mut traces: Vec<(String, String)> = Vec::new();
    let mut stats_ref: Option<LaunchStats> = None;
    for engine in ENGINES {
        let (want_f, want_i) = serial_run(kind.clone(), engine, spec);
        for pool_size in [1usize, 2, 4] {
            for workers in [1usize, 4] {
                let (out, rendered) = pool_run(
                    kind.clone(),
                    pool_size,
                    workers,
                    engine,
                    spec,
                    shards,
                    PoolPolicy::default(),
                    &[],
                );
                let out = out.unwrap_or_else(|e| {
                    panic!("{name}: pool {pool_size}x w{workers} {engine:?}: {e}")
                });
                let tag = format!("{name} pool={pool_size} w={workers} {engine:?}");
                assert_eq!(bits_f(&out.bufs_f), bits_f(&want_f), "{tag} vs serial");
                assert_eq!(out.bufs_i, want_i, "{tag} vs serial (i64)");
                assert_eq!(out.shards.len(), shards.min(spec_blocks(spec)), "{tag}");
                match &stats_ref {
                    None => stats_ref = Some(out.stats),
                    Some(s) => assert_eq!(&out.stats, s, "{tag} stats diverged"),
                }
                traces.push((tag, rendered));
            }
        }
    }
    let (tag0, t0) = &traces[0];
    for (tag, t) in &traces[1..] {
        assert_eq!(t, t0, "{name}: trace of {tag} diverged from {tag0}");
    }
}

fn spec_blocks<K>(spec: &LaunchSpec<K>) -> usize {
    match &spec.workdiv {
        WorkDivSpec::Fixed(wd) => wd.block_count(),
        WorkDivSpec::Suggest1d(_) => usize::MAX,
    }
}

#[test]
fn daxpy_pool_deterministic() {
    check_workload("daxpy", AccKind::sim_e5_2630v3(), &daxpy_spec(), 7);
}

#[test]
fn dgemm_pool_deterministic() {
    check_workload("dgemm", AccKind::sim_e5_2630v3(), &dgemm_spec(), 5);
}

#[test]
fn scan_pool_deterministic() {
    check_workload("scan", AccKind::sim_k20(), &scan_spec(), 4);
}

#[test]
fn histogram_pool_deterministic() {
    check_workload("histogram", AccKind::sim_e5_2630v3(), &histogram_spec(), 6);
}

/// Oversharding (more shards than blocks) must degrade to one block per
/// shard, not crash or drop blocks.
#[test]
fn more_shards_than_blocks_is_fine() {
    let spec = daxpy_spec();
    let (want_f, _) = serial_run(AccKind::sim_e5_2630v3(), Engine::Lowered, &spec);
    let (out, _) = pool_run(
        AccKind::sim_e5_2630v3(),
        2,
        1,
        Engine::Lowered,
        &spec,
        1000,
        PoolPolicy::default(),
        &[],
    );
    let out = out.unwrap();
    assert_eq!(out.shards.len(), 64); // one shard per block
    assert_eq!(bits_f(&out.bufs_f), bits_f(&want_f));
}

// ---------------------------------------------------------------------------
// Chaos campaign: {pool size} x {fault kind} x {injection time} x {engine}.

struct Scenario {
    name: &'static str,
    plan: FaultPlan,
    /// Recoverable only when another member can absorb the shard.
    needs_survivor: bool,
}

/// The chaos grid for one pool size. Fault ordinals are *per member*
/// (launch / allocation counters of the injected device), so "mid" and
/// "late" injection points are derived from how many shards member 0 will
/// run at this pool size — that way every scenario actually fires at every
/// pool size.
fn scenarios(seed: u64, pool_size: usize, shards: usize) -> Vec<Scenario> {
    // Member 0 runs every pool_size-th shard (round-robin).
    let member_launches = shards.div_ceil(pool_size) as u64;
    // daxpy binds two buffers, so each shard attempt consumes two
    // allocation ordinals.
    let member_allocs = 2 * member_launches;
    vec![
        // Deterministic ECC storm: every launch on the member faults, so
        // its retry budget drains and it is quarantined.
        Scenario {
            name: "ecc_storm",
            plan: FaultPlan::quiet(seed).with_ecc_rate(1.0),
            needs_survivor: true,
        },
        // Device loss on the member's first / second / last launch:
        // sticky, migrate.
        Scenario {
            name: "lost_early",
            plan: FaultPlan::quiet(seed).with_lost_at_launch(0),
            needs_survivor: true,
        },
        Scenario {
            name: "lost_mid",
            plan: FaultPlan::quiet(seed).with_lost_at_launch(1),
            needs_survivor: true,
        },
        Scenario {
            name: "lost_late",
            plan: FaultPlan::quiet(seed).with_lost_at_launch(member_launches - 1),
            needs_survivor: true,
        },
        // One-shot OOM on an early / late allocation: transient, the
        // in-place retry absorbs it on any pool size.
        Scenario {
            name: "oom_early",
            plan: FaultPlan::quiet(seed).with_oom_at(0),
            needs_survivor: false,
        },
        Scenario {
            name: "oom_late",
            plan: FaultPlan::quiet(seed).with_oom_at(member_allocs - 1),
            needs_survivor: false,
        },
        // Watchdog starvation: every launch on the member times out.
        Scenario {
            name: "watchdog",
            plan: FaultPlan::quiet(seed).with_watchdog_fuel(1),
            needs_survivor: true,
        },
        // Compound fault: a transient OOM absorbed by retry, then a sticky
        // loss on the member's next launch that still forces migration.
        Scenario {
            name: "oom_then_lost",
            plan: FaultPlan::quiet(seed).with_oom_at(0).with_lost_at_launch(1),
            needs_survivor: true,
        },
    ]
}

#[test]
fn chaos_campaign() {
    let spec = daxpy_spec();
    let kind = AccKind::sim_e5_2630v3();
    let shards = 8usize;
    let mut ran = 0usize;
    for engine in ENGINES {
        let (want_f, _) = serial_run(kind.clone(), engine, &spec);
        let want_bits = bits_f(&want_f);
        for pool_size in [1usize, 2, 4] {
            for sc in scenarios(7 + pool_size as u64, pool_size, shards) {
                let tag = format!("{} pool={pool_size} {engine:?}", sc.name);
                // The faulted member is always member 0 (first assignment
                // target), so `needs_survivor` scenarios on a 1-pool are
                // exactly the unrecoverable ones.
                let expect_ok = !sc.needs_survivor || pool_size > 1;
                let mut outcomes: Vec<String> = Vec::new();
                for workers in [1usize, 4] {
                    let (out, _) = pool_run(
                        kind.clone(),
                        pool_size,
                        workers,
                        engine,
                        &spec,
                        shards,
                        PoolPolicy::default(),
                        &[(0, sc.plan.clone())],
                    );
                    match out {
                        Ok(o) => {
                            assert!(expect_ok, "{tag}: unexpectedly recovered");
                            assert_eq!(
                                bits_f(&o.bufs_f),
                                want_bits,
                                "{tag} w={workers}: recovered result differs from fault-free"
                            );
                            if sc.needs_survivor {
                                assert!(
                                    !o.migrations.is_empty(),
                                    "{tag}: fault absorbed without a recorded migration"
                                );
                                assert_eq!(o.health[0], Health::Quarantined, "{tag}");
                                assert!(o.resilience.failovers > 0, "{tag}");
                            }
                            assert!(o.resilience.attempts as usize >= o.shards.len(), "{tag}");
                            outcomes.push(format!("ok:{:?}", bits_f(&o.bufs_f)));
                        }
                        Err(e) => {
                            assert!(!expect_ok, "{tag}: expected recovery, got: {e}");
                            // Structured coordinates: the error must name
                            // the shard's block range and the quarantined
                            // member/device.
                            let msg = e.to_string();
                            assert!(
                                msg.contains("shard") && msg.contains("blocks"),
                                "{tag}: error lacks shard coordinates: {msg}"
                            );
                            assert!(
                                msg.contains("member") && msg.contains("AccSim"),
                                "{tag}: error lacks quarantined device: {msg}"
                            );
                            outcomes.push(format!("err:{msg}"));
                        }
                    }
                }
                // Same scenario, different interpreter thread count: the
                // outcome (bits or error text) must be identical.
                assert_eq!(
                    outcomes[0], outcomes[1],
                    "{tag}: thread count changed outcome"
                );
                ran += 1;
            }
        }
    }
    assert!(ran >= 32, "campaign too small: {ran} scenarios");
}

/// Faults on a *later* member while earlier members work: the shard keeps
/// round-robin order, so member 1 faults mid-launch and its shards migrate.
#[test]
fn fault_on_secondary_member_migrates() {
    let spec = dgemm_spec();
    let kind = AccKind::sim_e5_2630v3();
    let (want_f, _) = serial_run(kind.clone(), Engine::Lowered, &spec);
    let (out, _) = pool_run(
        kind.clone(),
        3,
        1,
        Engine::Lowered,
        &spec,
        6,
        PoolPolicy::default(),
        &[(1, FaultPlan::quiet(3).with_lost_at_launch(1))],
    );
    let out = out.unwrap();
    assert_eq!(bits_f(&out.bufs_f), bits_f(&want_f));
    assert_eq!(out.health[1], Health::Quarantined);
    assert!(out.migrations.iter().all(|m| m.from == 1));
    // Quarantined members get no further shards.
    let quarantined_after = out
        .migrations
        .first()
        .map(|m| m.shard)
        .unwrap_or(usize::MAX);
    for s in &out.shards {
        if s.shard > quarantined_after {
            assert_ne!(
                s.device_index, 1,
                "shard {} ran on a quarantined member",
                s.shard
            );
        }
    }
}

/// Every member faulted: the launch must fail structurally, never panic or
/// return partial buffers.
#[test]
fn all_members_lost_is_structured() {
    let spec = daxpy_spec();
    let plans: Vec<(usize, FaultPlan)> = (0..2)
        .map(|m| (m, FaultPlan::quiet(11 + m as u64).with_lost_at_launch(0)))
        .collect();
    let (out, _) = pool_run(
        AccKind::sim_e5_2630v3(),
        2,
        1,
        Engine::Lowered,
        &spec,
        4,
        PoolPolicy::default(),
        &plans,
    );
    let err = out.unwrap_err();
    assert!(matches!(err, Error::DeviceLost(_)), "{err}");
    let msg = err.to_string();
    assert!(
        msg.contains("unrecoverable") && msg.contains("member"),
        "{msg}"
    );
}

// ---------------------------------------------------------------------------
// Recovery, cooldown, deadline.

#[test]
fn quarantined_member_recovers_after_cooldown() {
    let spec = daxpy_spec();
    let kind = AccKind::sim_e5_2630v3();
    let (want_f, _) = serial_run(kind.clone(), Engine::Lowered, &spec);
    let policy = PoolPolicy {
        cooldown_shards: 2,
        ..PoolPolicy::default()
    };
    let (out, _) = pool_run(
        kind.clone(),
        2,
        1,
        Engine::Lowered,
        &spec,
        8,
        policy,
        &[(0, FaultPlan::quiet(5).with_lost_at_launch(1))],
    );
    let out = out.unwrap();
    assert_eq!(bits_f(&out.bufs_f), bits_f(&want_f));
    // The member came back and ran at least one more shard after its
    // quarantine window.
    let migrated_at = out.migrations[0].shard;
    assert!(
        out.shards
            .iter()
            .any(|s| s.shard > migrated_at && s.device_index == 0),
        "member 0 never recovered: {:?}",
        out.shards
    );
    // One clean shard promotes Recovered -> Healthy.
    assert_eq!(out.health[0], Health::Healthy);
}

#[test]
fn pool_deadline_names_pending_shards() {
    let spec = daxpy_spec();
    let policy = PoolPolicy {
        deadline_s: Some(1e-12),
        ..PoolPolicy::default()
    };
    let (out, _) = pool_run(
        AccKind::sim_e5_2630v3(),
        2,
        1,
        Engine::Lowered,
        &spec,
        8,
        policy,
        &[],
    );
    let err = out.unwrap_err();
    assert!(matches!(err, Error::Timeout(_)), "{err}");
    let msg = err.to_string();
    assert!(msg.contains("deadline") && msg.contains("shard"), "{msg}");
}

// ---------------------------------------------------------------------------
// Satellite 2: a recovered device must not resurrect a stale sticky error
// through Queue::reset.

#[test]
fn queue_reset_clears_recovered_device() {
    let spec = daxpy_spec();
    let wd = match &spec.workdiv {
        WorkDivSpec::Fixed(wd) => *wd,
        _ => unreachable!(),
    };
    let dev = Device::with_workers(AccKind::sim_k20(), 1)
        .with_faults(FaultPlan::quiet(1).with_lost_at_launch(0));
    let q = Queue::new(dev.clone(), QueueBehavior::NonBlocking);
    let xb = dev.alloc_f64(spec.bufs_f[0].0);
    let yb = dev.alloc_f64(spec.bufs_f[1].0);
    xb.upload(&spec.bufs_f[0].1).unwrap();
    yb.upload(&spec.bufs_f[1].1).unwrap();
    let args = Args::new()
        .buf_f(&xb)
        .buf_f(&yb)
        .scalar_f(2.5)
        .scalar_i(spec.bufs_f[0].1.len() as i64);

    // Non-blocking queue: the injected loss is recorded sticky and
    // surfaces at wait.
    q.enqueue_kernel(&spec.kernel, &wd, &args).unwrap();
    let err = q.wait().unwrap_err();
    assert!(matches!(err, Error::DeviceLost(_)), "{err}");

    // Reset alone is not enough: the device is still lost, so the next op
    // fails again (no silent resurrection of a dead device).
    dev.clear_faults();
    q.reset();
    q.enqueue_kernel(&spec.kernel, &wd, &args).unwrap();
    assert!(q.wait().is_err(), "lost device must stay lost after reset");

    // But once the health layer declares the device recovered, reset must
    // clear the sticky loss and the queue works again.
    dev.mark_recovered();
    q.reset();
    q.enqueue_kernel(&spec.kernel, &wd, &args).unwrap();
    q.wait().unwrap();

    // And the result is the fault-free one.
    let (want_f, _) = serial_run(AccKind::sim_k20(), Engine::Lowered, &spec);
    assert_eq!(bits_f(&[yb.download()]), bits_f(&want_f[1..2]));
}

// ---------------------------------------------------------------------------
// Satellite 1: launch_resilient surfaces retry/failover provenance on the
// SimReport.

#[test]
fn resilient_launch_reports_provenance() {
    let spec = daxpy_spec();
    let primary = Device::with_workers(AccKind::sim_k20(), 1)
        .with_faults(FaultPlan::quiet(2).with_lost_at_launch(0));
    let secondary = Device::with_workers(AccKind::sim_k20(), 1);
    secondary.clear_faults();
    let chain = FallbackChain::new(primary).then(secondary);
    let out = alpaka::launch_resilient(&chain, &RetryPolicy::default(), &spec).unwrap();
    assert_eq!(out.device_index, 1);
    let report = out.report.as_ref().expect("sim launch carries a report");
    let res = report
        .resilience
        .as_ref()
        .expect("resilient launch carries provenance");
    assert_eq!(res.attempts, out.attempts);
    assert!(res.failovers >= 1, "fail-over not counted");
    // First attempt: device loss on the primary, recorded by kind.
    assert_eq!(res.history[0].device_index, 0);
    assert_eq!(res.history[0].fault.as_deref(), Some("device_lost"));
    assert!(!res.history[0].transient);
    // Final attempt: clean on the secondary.
    let last = res.history.last().unwrap();
    assert_eq!(last.device_index, 1);
    assert_eq!(last.fault, None);
}

// ---------------------------------------------------------------------------
// Per-member lanes (satellite 6): opt-in member lanes add per-device shard
// spans and migration markers without disturbing the canonical stream.

#[test]
fn member_lanes_are_additive_and_ordered() {
    let spec = daxpy_spec();
    let kind = AccKind::sim_e5_2630v3();
    let run = |member_lanes: bool| {
        let policy = PoolPolicy {
            member_lanes,
            ..PoolPolicy::default()
        };
        let (out, events) = trace::capture(|| {
            let mut pool = DevicePool::new_sim_with_workers(kind.clone(), 2, 1)
                .unwrap()
                .with_policy(policy);
            pool.clear_faults();
            pool.launch(&spec, 6)
        });
        out.unwrap();
        events
    };
    let plain = run(false);
    let laned = run(true);
    // The canonical stream is a strict prefix: member lanes only append.
    // (Compared on simulated content; wall-clock timestamps differ.)
    let sig = |e: &alpaka::TraceEvent| {
        format!(
            "{:?}|{}|{}|{:?}|{:?}|{}|{}|{:?}",
            e.kind, e.label, e.device, e.queue, e.launch, e.sim_t0_s, e.sim_t1_s, e.meta
        )
    };
    assert_eq!(
        laned[..plain.len()].iter().map(sig).collect::<Vec<_>>(),
        plain.iter().map(sig).collect::<Vec<_>>()
    );
    let extra = &laned[plain.len()..];
    assert!(!extra.is_empty(), "member lanes emitted nothing");
    // Member events arrive in fixed device-then-shard order.
    let devs: Vec<u64> = extra.iter().map(|e| e.device).collect();
    let mut sorted = devs.clone();
    sorted.sort();
    assert_eq!(devs, sorted, "member lanes not in device order");
    // And they render into the dedicated "shards" Chrome lane.
    let json = chrome_trace(&laned, &ChromeOpts { mask_wall: true });
    assert!(json.contains("\"shards\""), "no shards lane: {json}");
}
