//! The Fig. 4 zero-overhead claim as a regression test, plus checks on the
//! compilation pipeline that backs it.

use alpaka_kernels::{DaxpyKernel, DaxpyNativeStyle};
use alpaka_kir::{optimize, print_stream, trace_kernel, trace_kernel_spec, validate, SpecConsts};

#[test]
fn alpaka_daxpy_compiles_to_the_native_stream() {
    let spec = SpecConsts {
        thread_elem_extent: Some([1, 1, 1]),
        ..Default::default()
    };
    let mut alpaka_prog = trace_kernel_spec(&DaxpyKernel, 1, spec);
    let mut native_prog = trace_kernel(&DaxpyNativeStyle, 1);
    optimize(&mut alpaka_prog);
    optimize(&mut native_prog);
    validate(&alpaka_prog).unwrap();
    validate(&native_prog).unwrap();
    assert_eq!(print_stream(&alpaka_prog), print_stream(&native_prog));
}

#[test]
fn abstraction_residue_is_removed() {
    let spec = SpecConsts {
        thread_elem_extent: Some([1, 1, 1]),
        ..Default::default()
    };
    let mut prog = trace_kernel_spec(&DaxpyKernel, 1, spec);
    let before = prog.instr_count();
    let stats = optimize(&mut prog);
    assert!(stats.unrolled >= 1, "the V=1 element loop must unroll");
    assert!(stats.aliased >= 1, "x*1 / x+0 identities must alias away");
    assert!(prog.instr_count() < before);
    // No loop remains in the optimized kernel.
    let mut loops = 0;
    prog.body.visit(&mut |s| {
        if matches!(s, alpaka_kir::Stmt::ForRange { .. }) {
            loops += 1;
        }
    });
    assert_eq!(loops, 0);
}

#[test]
fn unspecialized_kernel_keeps_its_element_loop() {
    // Without specialization the element extent is a runtime register, so
    // the loop must survive (and the kernel still be correct for any V).
    let mut prog = trace_kernel(&DaxpyKernel, 1);
    optimize(&mut prog);
    let mut loops = 0;
    prog.body.visit(&mut |s| {
        if matches!(s, alpaka_kir::Stmt::ForRange { .. }) {
            loops += 1;
        }
    });
    assert_eq!(loops, 1);
}

#[test]
fn optimization_is_idempotent() {
    let spec = SpecConsts {
        thread_elem_extent: Some([1, 1, 1]),
        ..Default::default()
    };
    let mut once = trace_kernel_spec(&DaxpyKernel, 1, spec);
    optimize(&mut once);
    let mut twice = once.clone();
    optimize(&mut twice);
    assert_eq!(print_stream(&once), print_stream(&twice));
}

#[test]
fn gemm_kernels_validate_after_optimization() {
    use alpaka_kernels::{DgemmNaive, DgemmTiled, DgemmTiledCuda};
    for (name, prog) in [
        ("naive", trace_kernel(&DgemmNaive, 1)),
        ("tiled_cuda", trace_kernel(&DgemmTiledCuda { ts: 16 }, 2)),
        ("tiled", trace_kernel(&DgemmTiled { t: 16, e: 2 }, 2)),
    ] {
        let mut p = prog;
        optimize(&mut p);
        validate(&p).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(p.instr_count() > 0, "{name}");
    }
}
