//! The Fig. 4 zero-overhead claim as a regression test, plus checks on the
//! compilation pipeline that backs it — and the same contract for the
//! observability facade: with `ALPAKA_SIM_METRICS` unset, a launch through
//! the fully instrumented queue path must leave the metrics registry,
//! flight recorder and failure notes empty (the wall-clock side of the
//! claim, the <2% budget, lives in the `trace_overhead` bench that
//! `scripts/ci.sh` runs in `--test` mode).

use alpaka_kernels::{DaxpyKernel, DaxpyNativeStyle};
use alpaka_kir::{optimize, print_stream, trace_kernel, trace_kernel_spec, validate, SpecConsts};

#[test]
fn alpaka_daxpy_compiles_to_the_native_stream() {
    let spec = SpecConsts {
        thread_elem_extent: Some([1, 1, 1]),
        ..Default::default()
    };
    let mut alpaka_prog = trace_kernel_spec(&DaxpyKernel, 1, spec);
    let mut native_prog = trace_kernel(&DaxpyNativeStyle, 1);
    optimize(&mut alpaka_prog);
    optimize(&mut native_prog);
    validate(&alpaka_prog).unwrap();
    validate(&native_prog).unwrap();
    assert_eq!(print_stream(&alpaka_prog), print_stream(&native_prog));
}

#[test]
fn abstraction_residue_is_removed() {
    let spec = SpecConsts {
        thread_elem_extent: Some([1, 1, 1]),
        ..Default::default()
    };
    let mut prog = trace_kernel_spec(&DaxpyKernel, 1, spec);
    let before = prog.instr_count();
    let stats = optimize(&mut prog);
    assert!(stats.unrolled >= 1, "the V=1 element loop must unroll");
    assert!(stats.aliased >= 1, "x*1 / x+0 identities must alias away");
    assert!(prog.instr_count() < before);
    // No loop remains in the optimized kernel.
    let mut loops = 0;
    prog.body.visit(&mut |s| {
        if matches!(s, alpaka_kir::Stmt::ForRange { .. }) {
            loops += 1;
        }
    });
    assert_eq!(loops, 0);
}

#[test]
fn unspecialized_kernel_keeps_its_element_loop() {
    // Without specialization the element extent is a runtime register, so
    // the loop must survive (and the kernel still be correct for any V).
    let mut prog = trace_kernel(&DaxpyKernel, 1);
    optimize(&mut prog);
    let mut loops = 0;
    prog.body.visit(&mut |s| {
        if matches!(s, alpaka_kir::Stmt::ForRange { .. }) {
            loops += 1;
        }
    });
    assert_eq!(loops, 1);
}

#[test]
fn optimization_is_idempotent() {
    let spec = SpecConsts {
        thread_elem_extent: Some([1, 1, 1]),
        ..Default::default()
    };
    let mut once = trace_kernel_spec(&DaxpyKernel, 1, spec);
    optimize(&mut once);
    let mut twice = once.clone();
    optimize(&mut twice);
    assert_eq!(print_stream(&once), print_stream(&twice));
}

#[test]
fn disabled_metrics_facade_records_nothing() {
    use alpaka::{metrics, AccKind, Args, BufLayout, Device, Queue, QueueBehavior};
    if metrics::enabled() {
        return; // ambient ALPAKA_SIM_METRICS run; nothing to assert
    }
    let n = 512usize;
    let dev = Device::new(AccKind::sim_k20());
    dev.clear_faults();
    let q = Queue::new(dev.clone(), QueueBehavior::Blocking);
    let xb = dev.alloc_f64(BufLayout::d1(n));
    let yb = dev.alloc_f64(BufLayout::d1(n));
    xb.upload(&vec![1.0; n]).unwrap();
    yb.upload(&vec![2.0; n]).unwrap();
    let wd = dev.suggest_workdiv_1d(n);
    let args = Args::new()
        .buf_f(&xb)
        .buf_f(&yb)
        .scalar_f(3.0)
        .scalar_i(n as i64);
    q.enqueue_kernel(&DaxpyKernel, &wd, &args).unwrap();
    q.wait().unwrap();
    assert!(metrics::snapshot().is_empty(), "registry must stay empty");
    assert!(
        metrics::flight_snapshot().is_empty(),
        "flight ring must stay empty"
    );
    assert!(metrics::failures().is_empty(), "no failure notes expected");

    // And switching metrics ON for the same launch records without
    // perturbing results: the y buffer matches the untraced run exactly.
    let want = yb.download();
    let ((), cap) = metrics::capture(|| {
        let dev = Device::new(AccKind::sim_k20());
        dev.clear_faults();
        let q = Queue::new(dev.clone(), QueueBehavior::Blocking);
        let xb2 = dev.alloc_f64(BufLayout::d1(n));
        let yb2 = dev.alloc_f64(BufLayout::d1(n));
        xb2.upload(&vec![1.0; n]).unwrap();
        yb2.upload(&vec![2.0; n]).unwrap();
        let args = Args::new()
            .buf_f(&xb2)
            .buf_f(&yb2)
            .scalar_f(3.0)
            .scalar_i(n as i64);
        q.enqueue_kernel(&DaxpyKernel, &dev.suggest_workdiv_1d(n), &args)
            .unwrap();
        q.wait().unwrap();
        assert_eq!(yb2.download(), want, "metrics perturbed kernel results");
    });
    assert_eq!(cap.snapshot.counter_total("alpaka_launches_total"), 1);
}

#[test]
fn gemm_kernels_validate_after_optimization() {
    use alpaka_kernels::{DgemmNaive, DgemmTiled, DgemmTiledCuda};
    for (name, prog) in [
        ("naive", trace_kernel(&DgemmNaive, 1)),
        ("tiled_cuda", trace_kernel(&DgemmTiledCuda { ts: 16 }, 2)),
        ("tiled", trace_kernel(&DgemmTiled { t: 16, e: 2 }, 2)),
    ] {
        let mut p = prog;
        optimize(&mut p);
        validate(&p).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(p.instr_count() > 0, "{name}");
    }
}
