//! Failure-injection tests: every back-end must turn kernel misbehaviour
//! and invalid launches into errors rather than silent corruption.

use alpaka::{AccKind, Args, BufLayout, Device, Error, FaultPlan, WorkDiv};
use alpaka_core::kernel::Kernel;
use alpaka_core::ops::{KernelOps, KernelOpsExt};

fn all_kinds() -> Vec<AccKind> {
    let mut kinds = AccKind::native_cpu_all();
    kinds.push(AccKind::sim_k20());
    kinds.push(AccKind::sim_e5_2630v3());
    kinds
}

#[derive(Clone)]
struct OobStore {
    idx: i64,
}
impl Kernel for OobStore {
    fn run<O: KernelOps>(&self, o: &mut O) {
        let b = o.buf_f(0);
        let i = o.lit_i(self.idx);
        let v = o.lit_f(1.0);
        o.st_gf(b, i, v);
    }
}

#[test]
fn out_of_bounds_store_is_a_kernel_fault_everywhere() {
    for kind in all_kinds() {
        let dev = Device::with_workers(kind.clone(), 2);
        let buf = dev.alloc_f64(BufLayout::d1(8));
        let err = dev
            .launch(
                &OobStore { idx: 99 },
                &WorkDiv::d1(1, 1, 1),
                &Args::new().buf_f(&buf),
            )
            .unwrap_err();
        assert!(matches!(err, Error::KernelFault(_)), "{kind:?}: {err}");
    }
}

#[test]
fn negative_index_is_a_kernel_fault_everywhere() {
    for kind in all_kinds() {
        let dev = Device::with_workers(kind.clone(), 2);
        let buf = dev.alloc_f64(BufLayout::d1(8));
        let err = dev
            .launch(
                &OobStore { idx: -1 },
                &WorkDiv::d1(1, 1, 1),
                &Args::new().buf_f(&buf),
            )
            .unwrap_err();
        assert!(matches!(err, Error::KernelFault(_)), "{kind:?}: {err}");
    }
}

#[test]
fn unbound_buffer_slot_is_an_error() {
    #[derive(Clone)]
    struct UsesSlot1;
    impl Kernel for UsesSlot1 {
        fn run<O: KernelOps>(&self, o: &mut O) {
            let b0 = o.buf_f(0);
            let b1 = o.buf_f(1); // only slot 0 bound
            let i = o.lit_i(0);
            // The loaded value is stored (kept live), so the unbound slot
            // must surface as an error rather than being optimized away.
            let v = o.ld_gf(b1, i);
            o.st_gf(b0, i, v);
        }
    }
    for kind in [AccKind::CpuSerial, AccKind::sim_k20()] {
        let dev = Device::new(kind.clone());
        let buf = dev.alloc_f64(BufLayout::d1(4));
        let err = dev
            .launch(&UsesSlot1, &WorkDiv::d1(1, 1, 1), &Args::new().buf_f(&buf))
            .unwrap_err();
        assert!(matches!(err, Error::KernelFault(_)), "{kind:?}: {err}");
    }
}

#[test]
fn oversized_block_rejected_per_capability() {
    for kind in all_kinds() {
        let dev = Device::with_workers(kind.clone(), 2);
        let caps = dev.caps();
        let too_many = caps.max_threads_per_block + 1;
        let err = dev
            .launch(
                &OobStore { idx: 0 },
                &WorkDiv::d1(1, too_many, 1),
                &Args::new(),
            )
            .unwrap_err();
        assert!(matches!(err, Error::InvalidWorkDiv(_)), "{kind:?}: {err}");
    }
}

#[test]
fn zero_extent_workdiv_rejected() {
    let dev = Device::new(AccKind::CpuSerial);
    let err = dev
        .launch(&OobStore { idx: 0 }, &WorkDiv::d1(0, 1, 1), &Args::new())
        .unwrap_err();
    assert!(matches!(err, Error::InvalidWorkDiv(_)));
}

#[test]
fn sim_rejects_divergent_barrier() {
    #[derive(Clone)]
    struct DivergentSync;
    impl Kernel for DivergentSync {
        fn run<O: KernelOps>(&self, o: &mut O) {
            let tid = o.thread_idx(0);
            let one = o.lit_i(1);
            let c = o.lt_i(tid, one);
            o.if_(c, |o| o.sync_block_threads());
        }
    }
    let dev = Device::new(AccKind::sim_k20());
    let err = dev
        .launch(&DivergentSync, &WorkDiv::d1(1, 64, 1), &Args::new())
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("divergent"), "{msg}");
}

#[test]
fn sim_rejects_oversized_shared_memory() {
    #[derive(Clone)]
    struct HugeShared;
    impl Kernel for HugeShared {
        fn run<O: KernelOps>(&self, o: &mut O) {
            // 1 MiB of shared f64 on a 48 KiB device.
            let _sh = o.shared_f(128 * 1024);
        }
    }
    let dev = Device::new(AccKind::sim_k20());
    let err = dev
        .launch(&HugeShared, &WorkDiv::d1(1, 32, 1), &Args::new())
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("shared"), "{msg}");
}

#[test]
fn missing_scalar_parameter_is_an_error() {
    #[derive(Clone)]
    struct NeedsParam;
    impl Kernel for NeedsParam {
        fn run<O: KernelOps>(&self, o: &mut O) {
            let b = o.buf_f(0);
            let p = o.param_f(3); // never bound
            let i = o.lit_i(0);
            o.st_gf(b, i, p);
        }
    }
    for kind in [AccKind::CpuBlocks, AccKind::sim_k20()] {
        let dev = Device::with_workers(kind.clone(), 2);
        let buf = dev.alloc_f64(BufLayout::d1(4));
        let err = dev
            .launch(&NeedsParam, &WorkDiv::d1(1, 1, 1), &Args::new().buf_f(&buf))
            .unwrap_err();
        assert!(matches!(err, Error::KernelFault(_)), "{kind:?}: {err}");
    }
}

#[test]
fn shared_memory_oob_is_a_fault() {
    #[derive(Clone)]
    struct SharedOob;
    impl Kernel for SharedOob {
        fn run<O: KernelOps>(&self, o: &mut O) {
            let sh = o.shared_f(8);
            let i = o.lit_i(64);
            let v = o.lit_f(1.0);
            o.st_sf(sh, i, v);
        }
    }
    for kind in [AccKind::CpuThreads, AccKind::sim_k20()] {
        let dev = Device::with_workers(kind.clone(), 2);
        let err = dev
            .launch(&SharedOob, &WorkDiv::d1(1, 2, 1), &Args::new())
            .unwrap_err();
        assert!(matches!(err, Error::KernelFault(_)), "{kind:?}: {err}");
    }
}

/// Faults only for the lane at block x=2, thread x=1 — pins down per-lane
/// fault attribution (not just "some lane in some block faulted").
#[derive(Clone)]
struct FaultAtThread;
impl Kernel for FaultAtThread {
    fn name(&self) -> &str {
        "fault_at_thread"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let b = o.buf_f(0);
        let bi = o.block_idx(0);
        let ti = o.thread_idx(0);
        let two = o.lit_i(2);
        let one = o.lit_i(1);
        let cb = o.eq_i(bi, two);
        o.if_(cb, |o| {
            let ct = o.eq_i(ti, one);
            o.if_(ct, |o| {
                let i = o.lit_i(99);
                let v = o.lit_f(1.0);
                o.st_gf(b, i, v);
            });
        });
    }
}

/// Satellite (b): every faulting kernel must yield the same error kind and
/// the same block/thread coordinates from the lowered engine, the
/// reference tree-walking engine (at 1 and 3 interpreter workers each),
/// and — where the scalar kir evaluator can express the launch — the same
/// coordinates as a plain per-thread evaluation in linear order.
mod parity {
    use super::*;
    use alpaka_kir::eval::{eval_thread_fuel, EvalInputs, EvalMem, SpecialValues};
    use alpaka_kir::{optimize, trace_kernel, Program};
    use alpaka_sim::{
        run_kernel_launch_faulty, DeviceMem, DeviceSpec, Engine, ExecMode, SimArgs, SimError,
    };

    fn program_of<K: Kernel>(k: &K) -> Program {
        let mut p = trace_kernel(k, 1);
        optimize(&mut p);
        p
    }

    /// Run through the SIMT simulator and return the launch error.
    fn sim_fault(
        p: &Program,
        wd: &WorkDiv,
        buf_lens: &[usize],
        engine: Engine,
        threads: usize,
    ) -> SimError {
        let mut mem = DeviceMem::new();
        let bufs_f = buf_lens.iter().map(|&n| mem.alloc_f(n)).collect();
        let args = SimArgs {
            bufs_f,
            bufs_i: vec![],
            params_f: vec![],
            params_i: vec![],
        };
        run_kernel_launch_faulty(
            &DeviceSpec::k20(),
            &mut mem,
            p,
            wd,
            &args,
            ExecMode::Full,
            threads,
            engine,
            None,
        )
        .expect_err("kernel was expected to fault")
    }

    /// Run the scalar kir evaluator for every (block, thread) of a 1-D
    /// launch in linear order; the coordinates of the first error are the
    /// semantic ground truth the SIMT engines must attribute faults to.
    fn eval_fault(p: &Program, wd: &WorkDiv, buf_lens: &[usize]) -> Option<([i64; 3], [i64; 3])> {
        let mut mem = EvalMem {
            bufs_f: buf_lens.iter().map(|&n| vec![0.0; n]).collect(),
            bufs_i: vec![],
        };
        for b in 0..wd.blocks[2] as i64 {
            for t in 0..wd.threads[2] as i64 {
                let sp = SpecialValues {
                    grid_blocks: [1, 1, wd.blocks[2] as i64],
                    block_threads: [1, 1, wd.threads[2] as i64],
                    thread_elems: [1, 1, wd.elems[2] as i64],
                    block_idx: [0, 0, b],
                    thread_idx: [0, 0, t],
                };
                let inp = EvalInputs {
                    params_f: &[],
                    params_i: &[],
                    special: sp,
                };
                if eval_thread_fuel(p, &inp, &mut mem, 10_000_000).is_err() {
                    return Some(([0, 0, b], [0, 0, t]));
                }
            }
        }
        None
    }

    /// Assert every engine/thread-count combination reports the identical
    /// structured error, anchored at the given coordinates.
    fn assert_parity<K: Kernel>(
        k: &K,
        wd: &WorkDiv,
        buf_lens: &[usize],
        want_block: [i64; 3],
        want_thread: [i64; 3],
    ) {
        let p = program_of(k);
        let base = sim_fault(&p, wd, buf_lens, Engine::Reference, 1);
        assert_eq!(base.block, Some(want_block), "{}: {base:?}", p.name);
        assert_eq!(base.thread, Some(want_thread), "{}: {base:?}", p.name);
        for engine in [Engine::Reference, Engine::Lowered] {
            for threads in [1usize, 3] {
                let e = sim_fault(&p, wd, buf_lens, engine, threads);
                assert_eq!(
                    (e.kind, &e.block, &e.thread, &e.msg),
                    (base.kind, &base.block, &base.thread, &base.msg),
                    "{}: {engine:?} x{threads} diverges from reference",
                    p.name
                );
            }
        }
        // The scalar evaluator, run thread-by-thread in linear order, must
        // fault at the same coordinates (messages differ by design).
        let (eb, et) = eval_fault(&p, wd, buf_lens).expect("eval should fault too");
        assert_eq!((eb, et), (want_block, want_thread), "{}", p.name);
    }

    #[test]
    fn oob_store_parity() {
        assert_parity(
            &OobStore { idx: 99 },
            &WorkDiv::d1(1, 1, 1),
            &[8],
            [0, 0, 0],
            [0, 0, 0],
        );
    }

    #[test]
    fn negative_index_parity() {
        assert_parity(
            &OobStore { idx: -1 },
            &WorkDiv::d1(1, 1, 1),
            &[8],
            [0, 0, 0],
            [0, 0, 0],
        );
    }

    #[test]
    fn per_lane_attribution_parity() {
        // Only block x=2, thread x=1 faults; every engine must name
        // exactly that lane, in canonical [z, y, x] order.
        assert_parity(
            &FaultAtThread,
            &WorkDiv::d1(4, 2, 1),
            &[8],
            [0, 0, 2],
            [0, 0, 1],
        );
    }

    #[test]
    fn unbound_param_parity() {
        #[derive(Clone)]
        struct NeedsParam;
        impl Kernel for NeedsParam {
            fn run<O: KernelOps>(&self, o: &mut O) {
                let b = o.buf_f(0);
                let p = o.param_f(3);
                let i = o.lit_i(0);
                o.st_gf(b, i, p);
            }
        }
        assert_parity(
            &NeedsParam,
            &WorkDiv::d1(1, 1, 1),
            &[4],
            [0, 0, 0],
            [0, 0, 0],
        );
    }

    #[test]
    fn unbound_buffer_parity() {
        #[derive(Clone)]
        struct UsesSlot1;
        impl Kernel for UsesSlot1 {
            fn run<O: KernelOps>(&self, o: &mut O) {
                let b0 = o.buf_f(0);
                let b1 = o.buf_f(1);
                let i = o.lit_i(0);
                let v = o.ld_gf(b1, i);
                o.st_gf(b0, i, v);
            }
        }
        assert_parity(
            &UsesSlot1,
            &WorkDiv::d1(1, 1, 1),
            &[4],
            [0, 0, 0],
            [0, 0, 0],
        );
    }

    #[test]
    fn shared_oob_parity() {
        #[derive(Clone)]
        struct SharedOob;
        impl Kernel for SharedOob {
            fn run<O: KernelOps>(&self, o: &mut O) {
                let sh = o.shared_f(8);
                let i = o.lit_i(64);
                let v = o.lit_f(1.0);
                o.st_sf(sh, i, v);
            }
        }
        // Every lane faults; attribution goes to the first lane in lane
        // order, which is also the first (block, thread) the linear
        // evaluator visits.
        assert_parity(&SharedOob, &WorkDiv::d1(1, 2, 1), &[], [0, 0, 0], [0, 0, 0]);
    }
}

/// A do-some-work kernel for injection tests: y[i] = 2*x[i].
#[derive(Clone)]
struct Doubler;
impl Kernel for Doubler {
    fn name(&self) -> &str {
        "doubler"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let x = o.buf_f(0);
        let y = o.buf_f(1);
        let n = o.param_i(0);
        let i = o.global_thread_idx(0);
        let c = o.lt_i(i, n);
        o.if_(c, |o| {
            let v = o.ld_gf(x, i);
            let two = o.lit_f(2.0);
            let r = o.mul_f(v, two);
            o.st_gf(y, i, r);
        });
    }
}

fn doubler_args(dev: &Device, n: usize) -> (alpaka::BufferF, alpaka::BufferF, Args) {
    let x = dev.alloc_f64(BufLayout::d1(n));
    let y = dev.alloc_f64(BufLayout::d1(n));
    x.upload(&(0..n).map(|i| i as f64).collect::<Vec<_>>())
        .unwrap();
    let args = Args::new().buf_f(&x).buf_f(&y).scalar_i(n as i64);
    (x, y, args)
}

#[test]
fn injected_ecc_fault_is_deterministic_across_worker_counts() {
    // With rate 1.0 every global load trips; the chosen victim lane must
    // not depend on how many interpreter workers raced to it.
    let plan = FaultPlan::quiet(7).with_ecc_rate(1.0);
    let mut seen = Vec::new();
    for workers in [1usize, 4] {
        let dev = Device::with_workers(AccKind::sim_k20(), workers).with_faults(plan.clone());
        let n = 256;
        let (_x, _y, args) = doubler_args(&dev, n);
        let wd = WorkDiv::d1(4, 64, 1);
        let err = dev.launch(&Doubler, &wd, &args).unwrap_err();
        match &err {
            Error::KernelFault(info) => {
                assert!(info.transient, "injected ECC must be transient: {err}");
                assert!(info.block.is_some() && info.thread.is_some(), "{err}");
            }
            other => panic!("want KernelFault, got {other}"),
        }
        assert!(err.is_transient());
        assert!(!err.is_sticky());
        seen.push(err.to_string());
    }
    assert_eq!(seen[0], seen[1], "ECC victim depends on worker count");
}

#[test]
fn ecc_rate_zero_is_fault_free() {
    let plan = FaultPlan::quiet(7).with_ecc_rate(0.0);
    let dev = Device::new(AccKind::sim_k20()).with_faults(plan);
    let n = 64;
    let (_x, y, args) = doubler_args(&dev, n);
    let wd = dev.suggest_workdiv_1d(n);
    dev.launch(&Doubler, &wd, &args).unwrap();
    assert_eq!(y.download()[5], 10.0);
}

#[test]
fn watchdog_timeout_is_a_transient_timeout() {
    #[derive(Clone)]
    struct Spin;
    impl Kernel for Spin {
        fn name(&self) -> &str {
            "spin"
        }
        fn run<O: KernelOps>(&self, o: &mut O) {
            let b = o.buf_f(0);
            let zero = o.lit_i(0);
            let n = o.lit_i(1_000_000);
            let acc0 = o.lit_f(0.0);
            let acc = o.fold_range_f(zero, n, acc0, |o, _j, acc| {
                let one = o.lit_f(1.0);
                o.add_f(acc, one)
            });
            let i0 = o.lit_i(0);
            o.st_gf(b, i0, acc);
        }
    }
    let plan = FaultPlan::quiet(1).with_watchdog_fuel(10_000);
    let dev = Device::new(AccKind::sim_k20()).with_faults(plan);
    let buf = dev.alloc_f64(BufLayout::d1(4));
    let err = dev
        .launch(&Spin, &WorkDiv::d1(1, 1, 1), &Args::new().buf_f(&buf))
        .unwrap_err();
    assert!(matches!(err, Error::Timeout(_)), "{err}");
    assert!(err.is_transient());
    // The device survives a watchdog kill: a cheap kernel still runs.
    let (_x, y, args) = doubler_args(&dev, 8);
    dev.launch(&Doubler, &dev.suggest_workdiv_1d(8), &args)
        .unwrap();
    assert_eq!(y.download()[3], 6.0);
}

#[test]
fn injected_device_loss_poisons_the_device() {
    let plan = FaultPlan::quiet(3).with_lost_at_launch(1);
    let dev = Device::new(AccKind::sim_k20()).with_faults(plan);
    let n = 16;
    let (_x, y, args) = doubler_args(&dev, n);
    let wd = dev.suggest_workdiv_1d(n);
    // Launch ordinal 0 is fine.
    dev.launch(&Doubler, &wd, &args).unwrap();
    assert_eq!(y.download()[1], 2.0);
    // Launch ordinal 1 drops the device off the bus.
    let err = dev.launch(&Doubler, &wd, &args).unwrap_err();
    assert!(matches!(err, Error::DeviceLost(_)), "{err}");
    assert!(err.is_sticky());
    assert!(dev.is_lost());
    // Everything after that fails sticky: launches and allocations alike.
    let err2 = dev.launch(&Doubler, &wd, &args).unwrap_err();
    assert!(matches!(err2, Error::DeviceLost(_)), "{err2}");
    let err3 = dev.try_alloc_f64(BufLayout::d1(4)).map(|_| ()).unwrap_err();
    assert!(matches!(err3, Error::DeviceLost(_)), "{err3}");
}

#[test]
fn injected_oom_hits_exact_allocation_ordinal() {
    let plan = FaultPlan::quiet(5).with_oom_at(1);
    let dev = Device::new(AccKind::sim_k20()).with_faults(plan);
    let a = dev.try_alloc_f64(BufLayout::d1(8)).expect("ordinal 0");
    let err = dev.try_alloc_f64(BufLayout::d1(8)).map(|_| ()).unwrap_err(); // ordinal 1
    assert!(matches!(err, Error::Device(_)), "{err}");
    assert!(!err.is_sticky(), "OOM must not poison the device");
    let b = dev.try_alloc_f64(BufLayout::d1(8)).expect("ordinal 2");
    drop((a, b));
    assert!(!dev.is_lost());
}

#[test]
fn fault_plan_env_syntax_round_trips() {
    let plan =
        FaultPlan::parse("seed=42,ecc=0.25,oom_at=3,watchdog=1000,lost_at=2,worker_death_at=7")
            .expect("parse");
    assert_eq!(
        plan,
        FaultPlan::quiet(42)
            .with_ecc_rate(0.25)
            .with_oom_at(3)
            .with_watchdog_fuel(1000)
            .with_lost_at_launch(2)
            .with_worker_death_at(7)
    );
    // Unset / empty means no plan; malformed fields are ignored rather
    // than fatal (a typo in an env var must not take down the host).
    assert!(FaultPlan::parse("").is_none());
    assert_eq!(
        FaultPlan::parse("seed=not_a_number,bogus=1"),
        Some(FaultPlan::quiet(0))
    );
}

#[test]
fn facade_fault_coordinates_survive_the_error_mapping() {
    // The lane coordinates established by the parity tests must reach the
    // host API unchanged through the accsim Error conversion.
    let dev = Device::new(AccKind::sim_k20());
    let buf = dev.alloc_f64(BufLayout::d1(8));
    let err = dev
        .launch(
            &FaultAtThread,
            &WorkDiv::d1(4, 2, 1),
            &Args::new().buf_f(&buf),
        )
        .unwrap_err();
    match err {
        Error::KernelFault(info) => {
            assert_eq!(info.block, Some([0, 0, 2]), "{}", info.msg);
            assert_eq!(info.thread, Some([0, 0, 1]), "{}", info.msg);
            assert!(!info.transient, "a kernel bug is not transient");
        }
        other => panic!("want KernelFault, got {other}"),
    }
}

#[test]
fn device_keeps_working_after_a_fault() {
    // A fault must not poison the device.
    #[derive(Clone)]
    struct Fine;
    impl Kernel for Fine {
        fn run<O: KernelOps>(&self, o: &mut O) {
            let b = o.buf_f(0);
            let i = o.lit_i(0);
            let v = o.lit_f(7.0);
            o.st_gf(b, i, v);
        }
    }
    for kind in all_kinds() {
        let dev = Device::with_workers(kind.clone(), 2);
        let buf = dev.alloc_f64(BufLayout::d1(4));
        let _ = dev.launch(
            &OobStore { idx: 50 },
            &WorkDiv::d1(1, 1, 1),
            &Args::new().buf_f(&buf),
        );
        dev.launch(&Fine, &WorkDiv::d1(1, 1, 1), &Args::new().buf_f(&buf))
            .unwrap_or_else(|e| panic!("{kind:?} poisoned: {e}"));
        assert_eq!(buf.download()[0], 7.0, "{kind:?}");
    }
}
