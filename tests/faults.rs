//! Failure-injection tests: every back-end must turn kernel misbehaviour
//! and invalid launches into errors rather than silent corruption.

use alpaka::{AccKind, Args, BufLayout, Device, Error, WorkDiv};
use alpaka_core::kernel::Kernel;
use alpaka_core::ops::KernelOps;

fn all_kinds() -> Vec<AccKind> {
    let mut kinds = AccKind::native_cpu_all();
    kinds.push(AccKind::sim_k20());
    kinds.push(AccKind::sim_e5_2630v3());
    kinds
}

#[derive(Clone)]
struct OobStore {
    idx: i64,
}
impl Kernel for OobStore {
    fn run<O: KernelOps>(&self, o: &mut O) {
        let b = o.buf_f(0);
        let i = o.lit_i(self.idx);
        let v = o.lit_f(1.0);
        o.st_gf(b, i, v);
    }
}

#[test]
fn out_of_bounds_store_is_a_kernel_fault_everywhere() {
    for kind in all_kinds() {
        let dev = Device::with_workers(kind.clone(), 2);
        let buf = dev.alloc_f64(BufLayout::d1(8));
        let err = dev
            .launch(
                &OobStore { idx: 99 },
                &WorkDiv::d1(1, 1, 1),
                &Args::new().buf_f(&buf),
            )
            .unwrap_err();
        assert!(matches!(err, Error::KernelFault(_)), "{kind:?}: {err}");
    }
}

#[test]
fn negative_index_is_a_kernel_fault_everywhere() {
    for kind in all_kinds() {
        let dev = Device::with_workers(kind.clone(), 2);
        let buf = dev.alloc_f64(BufLayout::d1(8));
        let err = dev
            .launch(
                &OobStore { idx: -1 },
                &WorkDiv::d1(1, 1, 1),
                &Args::new().buf_f(&buf),
            )
            .unwrap_err();
        assert!(matches!(err, Error::KernelFault(_)), "{kind:?}: {err}");
    }
}

#[test]
fn unbound_buffer_slot_is_an_error() {
    #[derive(Clone)]
    struct UsesSlot1;
    impl Kernel for UsesSlot1 {
        fn run<O: KernelOps>(&self, o: &mut O) {
            let b0 = o.buf_f(0);
            let b1 = o.buf_f(1); // only slot 0 bound
            let i = o.lit_i(0);
            // The loaded value is stored (kept live), so the unbound slot
            // must surface as an error rather than being optimized away.
            let v = o.ld_gf(b1, i);
            o.st_gf(b0, i, v);
        }
    }
    for kind in [AccKind::CpuSerial, AccKind::sim_k20()] {
        let dev = Device::new(kind.clone());
        let buf = dev.alloc_f64(BufLayout::d1(4));
        let err = dev
            .launch(&UsesSlot1, &WorkDiv::d1(1, 1, 1), &Args::new().buf_f(&buf))
            .unwrap_err();
        assert!(matches!(err, Error::KernelFault(_)), "{kind:?}: {err}");
    }
}

#[test]
fn oversized_block_rejected_per_capability() {
    for kind in all_kinds() {
        let dev = Device::with_workers(kind.clone(), 2);
        let caps = dev.caps();
        let too_many = caps.max_threads_per_block + 1;
        let err = dev
            .launch(
                &OobStore { idx: 0 },
                &WorkDiv::d1(1, too_many, 1),
                &Args::new(),
            )
            .unwrap_err();
        assert!(matches!(err, Error::InvalidWorkDiv(_)), "{kind:?}: {err}");
    }
}

#[test]
fn zero_extent_workdiv_rejected() {
    let dev = Device::new(AccKind::CpuSerial);
    let err = dev
        .launch(&OobStore { idx: 0 }, &WorkDiv::d1(0, 1, 1), &Args::new())
        .unwrap_err();
    assert!(matches!(err, Error::InvalidWorkDiv(_)));
}

#[test]
fn sim_rejects_divergent_barrier() {
    #[derive(Clone)]
    struct DivergentSync;
    impl Kernel for DivergentSync {
        fn run<O: KernelOps>(&self, o: &mut O) {
            let tid = o.thread_idx(0);
            let one = o.lit_i(1);
            let c = o.lt_i(tid, one);
            o.if_(c, |o| o.sync_block_threads());
        }
    }
    let dev = Device::new(AccKind::sim_k20());
    let err = dev
        .launch(&DivergentSync, &WorkDiv::d1(1, 64, 1), &Args::new())
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("divergent"), "{msg}");
}

#[test]
fn sim_rejects_oversized_shared_memory() {
    #[derive(Clone)]
    struct HugeShared;
    impl Kernel for HugeShared {
        fn run<O: KernelOps>(&self, o: &mut O) {
            // 1 MiB of shared f64 on a 48 KiB device.
            let _sh = o.shared_f(128 * 1024);
        }
    }
    let dev = Device::new(AccKind::sim_k20());
    let err = dev
        .launch(&HugeShared, &WorkDiv::d1(1, 32, 1), &Args::new())
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("shared"), "{msg}");
}

#[test]
fn missing_scalar_parameter_is_an_error() {
    #[derive(Clone)]
    struct NeedsParam;
    impl Kernel for NeedsParam {
        fn run<O: KernelOps>(&self, o: &mut O) {
            let b = o.buf_f(0);
            let p = o.param_f(3); // never bound
            let i = o.lit_i(0);
            o.st_gf(b, i, p);
        }
    }
    for kind in [AccKind::CpuBlocks, AccKind::sim_k20()] {
        let dev = Device::with_workers(kind.clone(), 2);
        let buf = dev.alloc_f64(BufLayout::d1(4));
        let err = dev
            .launch(&NeedsParam, &WorkDiv::d1(1, 1, 1), &Args::new().buf_f(&buf))
            .unwrap_err();
        assert!(matches!(err, Error::KernelFault(_)), "{kind:?}: {err}");
    }
}

#[test]
fn shared_memory_oob_is_a_fault() {
    #[derive(Clone)]
    struct SharedOob;
    impl Kernel for SharedOob {
        fn run<O: KernelOps>(&self, o: &mut O) {
            let sh = o.shared_f(8);
            let i = o.lit_i(64);
            let v = o.lit_f(1.0);
            o.st_sf(sh, i, v);
        }
    }
    for kind in [AccKind::CpuThreads, AccKind::sim_k20()] {
        let dev = Device::with_workers(kind.clone(), 2);
        let err = dev
            .launch(&SharedOob, &WorkDiv::d1(1, 2, 1), &Args::new())
            .unwrap_err();
        assert!(matches!(err, Error::KernelFault(_)), "{kind:?}: {err}");
    }
}

#[test]
fn device_keeps_working_after_a_fault() {
    // A fault must not poison the device.
    #[derive(Clone)]
    struct Fine;
    impl Kernel for Fine {
        fn run<O: KernelOps>(&self, o: &mut O) {
            let b = o.buf_f(0);
            let i = o.lit_i(0);
            let v = o.lit_f(7.0);
            o.st_gf(b, i, v);
        }
    }
    for kind in all_kinds() {
        let dev = Device::with_workers(kind.clone(), 2);
        let buf = dev.alloc_f64(BufLayout::d1(4));
        let _ = dev.launch(
            &OobStore { idx: 50 },
            &WorkDiv::d1(1, 1, 1),
            &Args::new().buf_f(&buf),
        );
        dev.launch(&Fine, &WorkDiv::d1(1, 1, 1), &Args::new().buf_f(&buf))
            .unwrap_or_else(|e| panic!("{kind:?} poisoned: {e}"));
        assert_eq!(buf.download()[0], 7.0, "{kind:?}");
    }
}
