//! End-to-end acceptance for the deterministic metrics registry and the
//! fault flight recorder (ISSUE 10).
//!
//! The pinned matrix: one combined workload — a queued daxpy, a queued
//! tiled DGEMM, a resilient launch that survives a deterministic injected
//! OOM, and a fault-free 8-shard pool launch — must render byte-identical
//! Prometheus and JSON snapshots across interpreter worker counts {1, 4}
//! × engines {Reference, Lowered, Compiled} × pool sizes {1, 2, 4}, after
//! stripping the documented engine-dependent families
//! (`alpaka_metrics::strip_engine_dependent`). Separately, a seeded device
//! loss must produce a byte-identical post-mortem across engines and
//! reruns.
//!
//! Worker counts are set via `Device::with_workers` rather than by
//! mutating `ALPAKA_SIM_THREADS` (the env override is process-global and
//! would race with parallel tests); both paths funnel into the same
//! `resolve_sim_threads` call in the simulator.

use alpaka::{
    launch_resilient, metrics, AccKind, Args, BufLayout, Device, DevicePool, Engine, FallbackChain,
    FaultPlan, LaunchSpec, Queue, QueueBehavior, RetryPolicy, WorkDivSpec,
};
use alpaka_core::metrics::MetricsCapture;
use alpaka_kernels::host::{random_matrix, random_vec};
use alpaka_kernels::{DaxpyKernel, DgemmTiled};
use alpaka_metrics::{
    json_snapshot, postmortem, prometheus_text, strip_engine_dependent, JsonOpts,
};
use alpaka_trace::validate_json;

/// One full workload at a matrix point. Runs inside `metrics::capture`, so
/// the registry, flight recorder and id counters are scoped and reset.
fn run_workload(workers: usize, engine: Engine, pool_size: usize) -> MetricsCapture {
    let ((), cap) = metrics::capture(|| {
        // 1. Queued daxpy on the K20 spec.
        let n = 2048usize;
        let x = random_vec(n, 1);
        let y0 = random_vec(n, 2);
        let dev = Device::with_workers(AccKind::sim_k20(), workers).with_engine(engine);
        dev.clear_faults();
        let q = Queue::new(dev.clone(), QueueBehavior::Blocking);
        let xb = dev.alloc_f64(BufLayout::d1(n));
        let yb = dev.alloc_f64(BufLayout::d1(n));
        xb.upload(&x).unwrap();
        yb.upload(&y0).unwrap();
        let wd = dev.suggest_workdiv_1d(n);
        let args = Args::new()
            .buf_f(&xb)
            .buf_f(&yb)
            .scalar_f(2.5)
            .scalar_i(n as i64);
        q.enqueue_kernel(&DaxpyKernel, &wd, &args).unwrap();
        q.wait().unwrap();

        // 2. Queued tiled DGEMM on the e5 spec (CPU shape: single-thread
        // blocks, wide element loops).
        let (m, nn, k) = (24, 20, 16);
        let a = random_matrix(m, k, 10);
        let b = random_matrix(k, nn, 11);
        let c0 = random_matrix(m, nn, 12);
        let kern = DgemmTiled { t: 1, e: 4 };
        let gwd = kern.workdiv(m, nn);
        let gdev = Device::with_workers(AccKind::sim_e5_2630v3(), workers).with_engine(engine);
        gdev.clear_faults();
        let gq = Queue::new(gdev.clone(), QueueBehavior::Blocking);
        let ab = gdev.alloc_f64(BufLayout::d2(m, k, 8));
        let bb = gdev.alloc_f64(BufLayout::d2(k, nn, 8));
        let cb = gdev.alloc_f64(BufLayout::d2(m, nn, 8));
        ab.upload(&a).unwrap();
        bb.upload(&b).unwrap();
        cb.upload(&c0).unwrap();
        let gargs = Args::new()
            .buf_f(&ab)
            .buf_f(&bb)
            .buf_f(&cb)
            .scalar_f(1.25)
            .scalar_f(0.75)
            .scalar_i(m as i64)
            .scalar_i(nn as i64)
            .scalar_i(k as i64)
            .scalar_i(ab.layout().pitch as i64)
            .scalar_i(bb.layout().pitch as i64)
            .scalar_i(cb.layout().pitch as i64);
        gq.enqueue_kernel(&kern, &gwd, &gargs).unwrap();
        gq.wait().unwrap();

        // 3. Resilient launch surviving a deterministic injected OOM at
        // allocation ordinal 0 (always exactly 2 attempts, kind "oom",
        // regardless of engine or thread count).
        let rdev = Device::with_workers(AccKind::sim_k20(), workers)
            .with_engine(engine)
            .with_faults(FaultPlan::quiet(3).with_oom_at(0));
        let chain = FallbackChain::new(rdev);
        let out = launch_resilient(&chain, &RetryPolicy::default(), &daxpy_spec(512)).unwrap();
        assert_eq!(out.attempts, 2, "oom retry must be deterministic");

        // 4. Fault-free 8-shard pool launch; only the pool size varies.
        let mut pool = DevicePool::new_sim_with_workers(AccKind::sim_k20(), pool_size, workers)
            .unwrap()
            .with_engine(engine);
        pool.clear_faults();
        let outcome = pool.launch(&daxpy_spec(1024), 8).unwrap();
        assert_eq!(outcome.shards.len(), 8);
        assert!(outcome.migrations.is_empty());
    });
    cap
}

fn daxpy_spec(n: usize) -> LaunchSpec<DaxpyKernel> {
    let x = random_vec(n, 5);
    let y = random_vec(n, 6);
    LaunchSpec::new(DaxpyKernel, WorkDivSpec::Suggest1d(n))
        .arg_f(BufLayout::d1(n), x)
        .arg_f(BufLayout::d1(n), y)
        .scalar_f(2.0)
        .scalar_i(n as i64)
}

/// Both exports, engine-dependent families stripped, concatenated for one
/// byte comparison.
fn render(cap: &MetricsCapture) -> String {
    let prom = prometheus_text(&cap.snapshot);
    let json = json_snapshot(&cap.snapshot, &JsonOpts::default());
    validate_json(&json).unwrap_or_else(|e| panic!("invalid JSON snapshot: {e}\n{json}"));
    let jstripped = strip_engine_dependent(&json);
    validate_json(&jstripped).unwrap_or_else(|e| panic!("stripping broke JSON: {e}\n{jstripped}"));
    format!("{}\n---\n{}", strip_engine_dependent(&prom), jstripped)
}

#[test]
fn snapshots_are_byte_identical_across_workers_engines_and_pool_sizes() {
    let reference = render(&run_workload(1, Engine::Lowered, 1));
    assert!(
        reference.contains("alpaka_launches_total"),
        "workload recorded nothing:\n{reference}"
    );
    assert!(
        reference.contains("alpaka_pool_shards_total"),
        "{reference}"
    );
    assert!(
        reference.contains("alpaka_resilient_attempts_total 2"),
        "{reference}"
    );
    assert!(
        reference.contains("alpaka_resilient_faults_total{kind=\"oom\"} 1"),
        "{reference}"
    );
    for workers in [1, 4] {
        for engine in [Engine::Reference, Engine::Lowered, Engine::Compiled] {
            for pool_size in [1, 2, 4] {
                if (workers, engine, pool_size) == (1, Engine::Lowered, 1) {
                    continue;
                }
                let got = render(&run_workload(workers, engine, pool_size));
                assert_eq!(
                    got, reference,
                    "snapshot diverged at workers={workers} engine={engine:?} \
                     pool_size={pool_size}"
                );
            }
        }
    }
}

#[test]
fn workload_records_expected_families() {
    let cap = run_workload(2, Engine::Lowered, 2);
    let snap = &cap.snapshot;
    // Two queue launches + one resilient retry pair + 8 pool shards worth
    // of activity, all visible in the registry.
    assert_eq!(snap.counter_total("alpaka_launches_total"), 3);
    assert_eq!(snap.counter_total("alpaka_pool_launches_total"), 1);
    assert_eq!(snap.counter_total("alpaka_pool_shards_total"), 8);
    assert_eq!(snap.counter_total("alpaka_resilient_failovers_total"), 0);
    assert_eq!(snap.counter_total("alpaka_resilient_attempts_total"), 2);
    assert_eq!(snap.counter_total("alpaka_resilient_faults_total"), 1); // the injected OOM
    assert_eq!(snap.counter_total("alpaka_queue_ops_total"), 4); // 2 kernels + 2 waits
    let h = snap
        .histogram("alpaka_pool_shard_seconds", &[])
        .expect("pool shard histogram");
    assert_eq!(h.count, 8);
    assert!(h.p50 > 0.0 && h.p99 >= h.p50);
    // The OOM was retried and recovered — a survived fault is NOT a launch
    // failure, so no post-mortem note; the flight recorder still has the
    // launch events.
    assert!(cap.failures.is_empty(), "{:?}", cap.failures);
    assert_eq!(snap.counter_total("alpaka_launch_failures_total"), 0);
    assert!(!cap.flight.is_empty());
}

/// A chaos run ending in a structured failure must dump a deterministic
/// post-mortem: same bytes across engines and reruns.
fn run_chaos(engine: Engine) -> MetricsCapture {
    let ((), cap) = metrics::capture(|| {
        let dev = Device::with_workers(AccKind::sim_k20(), 2)
            .with_engine(engine)
            .with_faults(FaultPlan::quiet(7).with_lost_at_launch(0));
        let chain = FallbackChain::new(dev);
        let err = launch_resilient(&chain, &RetryPolicy::none(), &daxpy_spec(256)).unwrap_err();
        assert!(err.to_string().contains("exhausted"), "{err}");
    });
    cap
}

#[test]
fn postmortem_is_deterministic_across_engines_and_reruns() {
    let reference = postmortem(&run_chaos(Engine::Lowered));
    assert!(reference.contains("launch failure(s):"), "{reference}");
    assert!(reference.contains("[device]"), "{reference}");
    assert!(reference.contains("flight recorder"), "{reference}");
    assert!(reference.contains("retry_attempt"), "{reference}");
    for engine in [Engine::Lowered, Engine::Reference, Engine::Compiled] {
        let got = postmortem(&run_chaos(engine));
        assert_eq!(got, reference, "post-mortem diverged on {engine:?}");
    }
}

#[test]
fn disabled_metrics_record_nothing_from_the_full_workload() {
    if metrics::enabled() {
        return; // ambient ALPAKA_SIM_METRICS run; nothing to assert
    }
    // Run the workload pieces outside any capture: with the registry off,
    // the snapshot must stay empty.
    let n = 256usize;
    let dev = Device::new(AccKind::sim_k20());
    dev.clear_faults();
    let q = Queue::new(dev.clone(), QueueBehavior::Blocking);
    let b = dev.alloc_f64(BufLayout::d1(n));
    b.upload(&random_vec(n, 3)).unwrap();
    let yb = dev.alloc_f64(BufLayout::d1(n));
    yb.upload(&random_vec(n, 4)).unwrap();
    let wd = dev.suggest_workdiv_1d(n);
    q.enqueue_kernel(
        &DaxpyKernel,
        &wd,
        &Args::new()
            .buf_f(&b)
            .buf_f(&yb)
            .scalar_f(1.5)
            .scalar_i(n as i64),
    )
    .unwrap();
    q.wait().unwrap();
    assert!(metrics::snapshot().is_empty());
    assert!(metrics::flight_snapshot().is_empty());
    assert!(metrics::failures().is_empty());
}
