//! Property-based tests (proptest) over the core invariants:
//!
//! * every work division covers each global element index exactly once,
//! * `map_idx` linearize/delinearize round-trips,
//! * pitched buffers round-trip dense data for arbitrary extents,
//! * the IR optimizer preserves kernel semantics for random launch
//!   parameters, and
//! * back-ends agree for random DAXPY/reduction instances.

use alpaka::{AccKind, Args, BufLayout, Device, WorkDiv};
use alpaka_core::kernel::Kernel;
use alpaka_core::ops::{KernelOps, KernelOpsExt};
use alpaka_core::vec::Vecn;
use proptest::prelude::*;

/// Kernel that atomically increments `counts[i]` for every global element
/// index `i` it is responsible for — the coverage probe.
#[derive(Clone)]
struct CoverageProbe;
impl Kernel for CoverageProbe {
    fn run<O: KernelOps>(&self, o: &mut O) {
        let counts = o.buf_i(0);
        let n = o.param_i(0);
        let gid = o.linear_global_thread_idx();
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let c = o.lt_i(i, n);
            o.if_(c, |o| {
                let one = o.lit_i(1);
                let _ = o.atomic_add_gi(counts, i, one);
            });
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn workdiv_covers_every_element_exactly_once(
        blocks in 1usize..20,
        threads_pow in 0u32..4,
        elems in 1usize..9,
        backend in 0usize..3,
    ) {
        let threads = 1usize << threads_pow;
        let kind = match backend {
            0 => AccKind::CpuSerial,
            1 => AccKind::CpuThreads,
            _ => AccKind::sim_k20(),
        };
        // Serial requires single-thread blocks.
        let threads = if matches!(kind, AccKind::CpuSerial) { 1 } else { threads };
        let wd = WorkDiv::d1(blocks, threads, elems);
        let n = wd.global_elem_count();
        // Also exercise the tail: cover fewer elements than provisioned.
        let n_logical = (n * 3) / 4 + 1;
        let dev = Device::with_workers(kind, 2);
        let counts = dev.alloc_i64(BufLayout::d1(n_logical));
        let args = Args::new().buf_i(&counts).scalar_i(n_logical as i64);
        dev.launch(&CoverageProbe, &wd, &args).unwrap();
        let got = counts.download();
        prop_assert!(got.iter().all(|&c| c == 1),
            "coverage not exactly-once: wd={wd:?} n={n_logical} counts={got:?}");
    }

    #[test]
    fn map_idx_roundtrips(z in 1usize..7, y in 1usize..7, x in 1usize..7, lin_seed in 0usize..1000) {
        let ext = Vecn([z, y, x]);
        let lin = lin_seed % ext.product();
        let p = ext.delinearize(lin);
        prop_assert!(ext.contains(p));
        prop_assert_eq!(ext.linearize(p), lin);
    }

    #[test]
    fn pitched_buffer_roundtrips(rows in 1usize..20, cols in 1usize..20, seed in 0u64..100) {
        let data = alpaka_kernels::host::random_matrix(rows, cols, seed);
        let dev = Device::new(AccKind::CpuSerial);
        let buf = dev.alloc_f64(BufLayout::d2(rows, cols, 8));
        buf.upload(&data).unwrap();
        prop_assert_eq!(buf.download(), data);
    }

    #[test]
    fn sim_pitched_buffer_roundtrips(rows in 1usize..16, cols in 1usize..16, seed in 0u64..100) {
        let data = alpaka_kernels::host::random_matrix(rows, cols, seed);
        let dev = Device::new(AccKind::sim_k20());
        let buf = dev.alloc_f64(BufLayout::d2(rows, cols, 8));
        buf.upload(&data).unwrap();
        prop_assert_eq!(buf.download(), data);
    }

    #[test]
    fn optimizer_preserves_daxpy_semantics(
        n in 1usize..300,
        alpha_millis in -5000i64..5000,
        block_pow in 0u32..6,
    ) {
        use alpaka_kir::eval::{eval_thread, EvalInputs, EvalMem, SpecialValues};
        use alpaka_kir::{optimize, trace_kernel};
        let alpha = alpha_millis as f64 / 1000.0;
        let block = 1i64 << block_pow;
        let blocks = (n as i64 + block - 1) / block;
        let raw = trace_kernel(&alpaka_kernels::DaxpyKernel, 1);
        let mut opt = raw.clone();
        optimize(&mut opt);
        let run = |p: &alpaka_kir::Program| {
            let mut mem = EvalMem {
                bufs_f: vec![
                    (0..n).map(|i| i as f64 * 0.25).collect(),
                    (0..n).map(|i| (n - i) as f64).collect(),
                ],
                bufs_i: vec![],
            };
            for b in 0..blocks {
                for t in 0..block {
                    let sp = SpecialValues {
                        grid_blocks: [1, 1, blocks],
                        block_threads: [1, 1, block],
                        block_idx: [0, 0, b],
                        thread_idx: [0, 0, t],
                        ..Default::default()
                    };
                    let inp = EvalInputs {
                        params_f: &[alpha],
                        params_i: &[n as i64],
                        special: sp,
                    };
                    eval_thread(p, &inp, &mut mem).unwrap();
                }
            }
            mem
        };
        prop_assert_eq!(run(&raw), run(&opt));
    }

    #[test]
    fn backends_agree_on_random_daxpy(
        n in 1usize..400,
        seed in 0u64..50,
    ) {
        let x = alpaka_kernels::host::random_vec(n, seed);
        let y0 = alpaka_kernels::host::random_vec(n, seed + 1000);
        let mut results = vec![];
        for kind in [AccKind::CpuSerial, AccKind::CpuBlocks, AccKind::sim_k20()] {
            let dev = Device::with_workers(kind, 2);
            let xb = dev.alloc_f64(BufLayout::d1(n));
            let yb = dev.alloc_f64(BufLayout::d1(n));
            xb.upload(&x).unwrap();
            yb.upload(&y0).unwrap();
            let wd = dev.suggest_workdiv_1d(n);
            let args = Args::new().buf_f(&xb).buf_f(&yb).scalar_f(1.5).scalar_i(n as i64);
            dev.launch(&alpaka_kernels::DaxpyKernel, &wd, &args).unwrap();
            results.push(yb.download());
        }
        prop_assert_eq!(&results[0], &results[1]);
        prop_assert_eq!(&results[0], &results[2]);
    }

    #[test]
    fn atomic_reduce_matches_host_sum(n in 1usize..600, seed in 0u64..50) {
        let data = alpaka_kernels::host::random_vec(n, seed);
        let want: f64 = data.iter().sum();
        let dev = Device::with_workers(AccKind::CpuBlocks, 4);
        let input = dev.alloc_f64(BufLayout::d1(n));
        let out = dev.alloc_f64(BufLayout::d1(1));
        input.upload(&data).unwrap();
        let wd = dev.suggest_workdiv_1d(n);
        let args = Args::new().buf_f(&input).buf_f(&out).scalar_i(n as i64);
        dev.launch(&alpaka_kernels::ReduceAtomic, &wd, &args).unwrap();
        let got = out.download()[0];
        prop_assert!((got - want).abs() <= 1e-9 * want.abs().max(1.0),
            "{got} vs {want}");
    }

    #[test]
    fn workdiv_predefined_covers(n in 1usize..100_000, b_pow in 0u32..9, v in 1usize..64) {
        use alpaka_core::workdiv::{predefined, PredefAcc};
        let b = 1usize << b_pow;
        for acc in PredefAcc::ALL {
            let wd = predefined(acc, n, b, v);
            prop_assert!(wd.global_elem_count() >= n, "{acc:?} does not cover n={n} b={b} v={v}");
        }
    }

    #[test]
    fn dgemm_tiled_matches_reference_for_random_shapes(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        seed in 0u64..20,
    ) {
        use alpaka_kernels::host::{dgemm_ref, random_matrix, rel_err};
        use alpaka_kernels::DgemmTiled;
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed + 1);
        let c0 = random_matrix(m, n, seed + 2);
        let mut want = c0.clone();
        dgemm_ref(m, n, k, 1.0, &a, &b, 0.0, &mut want);
        let kern = DgemmTiled { t: 4, e: 2 };
        let wd = kern.workdiv(m, n);
        let dev = Device::with_workers(AccKind::CpuThreads, 2);
        let ab = dev.alloc_f64(BufLayout::d2(m, k, 8));
        let bb = dev.alloc_f64(BufLayout::d2(k, n, 8));
        let cb = dev.alloc_f64(BufLayout::d2(m, n, 8));
        ab.upload(&a).unwrap();
        bb.upload(&b).unwrap();
        cb.upload(&c0).unwrap();
        let args = Args::new()
            .buf_f(&ab).buf_f(&bb).buf_f(&cb)
            .scalar_f(1.0).scalar_f(0.0)
            .scalar_i(m as i64).scalar_i(n as i64).scalar_i(k as i64)
            .scalar_i(ab.layout().pitch as i64)
            .scalar_i(bb.layout().pitch as i64)
            .scalar_i(cb.layout().pitch as i64);
        dev.launch(&kern, &wd, &args).unwrap();
        prop_assert!(rel_err(&cb.download(), &want) < 1e-12,
            "m={m} n={n} k={k}");
    }

    #[test]
    fn device_scan_matches_reference_for_random_sizes(
        n in 1usize..700,
        seed in 0u64..20,
        block_pow in 3u32..7,
    ) {
        use alpaka_kernels::host::random_vec;
        use alpaka_kernels::scan::{device_exclusive_scan, exclusive_scan_ref};
        let data = random_vec(n, seed);
        let want = exclusive_scan_ref(&data);
        let dev = Device::with_workers(AccKind::CpuThreads, 2);
        let got = device_exclusive_scan(&dev, &data, 1 << block_pow).unwrap();
        let max_err = got.iter().zip(&want).map(|(g, w)| (g - w).abs()).fold(0.0f64, f64::max);
        prop_assert!(max_err < 1e-9, "n={n} block={} err={max_err}", 1 << block_pow);
    }

    #[test]
    fn histogram_counts_are_conserved(
        n in 1usize..2000,
        bins_pow in 1u32..7,
        seed in 0u64..20,
    ) {
        use alpaka_kernels::host::random_vec;
        use alpaka_kernels::HistogramGlobalAtomics;
        let n_bins = 1usize << bins_pow;
        let samples = random_vec(n, seed);
        let dev = Device::with_workers(AccKind::CpuBlocks, 2);
        let s = dev.alloc_f64(BufLayout::d1(n));
        let b = dev.alloc_i64(BufLayout::d1(n_bins));
        s.upload(&samples).unwrap();
        let wd = dev.suggest_workdiv_1d(n);
        let args = Args::new()
            .buf_f(&s).buf_i(&b)
            .scalar_f(0.0).scalar_f(10.0)
            .scalar_i(n as i64).scalar_i(n_bins as i64);
        dev.launch(&HistogramGlobalAtomics, &wd, &args).unwrap();
        let total: i64 = b.download().iter().sum();
        prop_assert_eq!(total as usize, n);
    }
}
