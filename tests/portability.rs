//! Cross-back-end portability: the paper's *testability* property.
//!
//! Every kernel of the zoo must produce bit-identical results on every
//! back-end (native CPU accelerators and simulated devices) for the same
//! inputs — not merely "close": the scalar semantics are shared, so any
//! divergence is a bug.

use alpaka::{AccKind, Args, BufLayout, Device, WorkDiv};
use alpaka_kernels::host::*;
use alpaka_kernels::*;

fn all_kinds() -> Vec<AccKind> {
    let mut kinds = AccKind::native_cpu_all();
    kinds.push(AccKind::sim_k20());
    kinds.push(AccKind::sim_k80());
    kinds.push(AccKind::sim_e5_2630v3());
    kinds
}

/// Kinds whose back-ends support multi-thread blocks.
fn threaded_kinds() -> Vec<AccKind> {
    vec![
        AccKind::CpuThreads,
        AccKind::CpuBlockThreads,
        AccKind::CpuFibers,
        AccKind::sim_k20(),
        AccKind::sim_k80(),
    ]
}

#[test]
fn daxpy_bit_identical_everywhere() {
    let n = 1237usize;
    let x = random_vec(n, 1);
    let y0 = random_vec(n, 2);
    let mut want = y0.clone();
    daxpy_ref(std::f64::consts::PI, &x, &mut want);
    for kind in all_kinds() {
        let dev = Device::with_workers(kind.clone(), 4);
        let xb = dev.alloc_f64(BufLayout::d1(n));
        let yb = dev.alloc_f64(BufLayout::d1(n));
        xb.upload(&x).unwrap();
        yb.upload(&y0).unwrap();
        let wd = dev.suggest_workdiv_1d(n);
        let args = Args::new()
            .buf_f(&xb)
            .buf_f(&yb)
            .scalar_f(std::f64::consts::PI)
            .scalar_i(n as i64);
        dev.launch(&DaxpyKernel, &wd, &args).unwrap();
        assert_eq!(yb.download(), want, "{kind:?}");
    }
}

#[test]
fn dgemm_tiled_bit_identical_on_threaded_backends() {
    let (m, n, k) = (37, 41, 29);
    let a = random_matrix(m, k, 10);
    let b = random_matrix(k, n, 11);
    let c0 = random_matrix(m, n, 12);
    let kern = DgemmTiled { t: 4, e: 2 };
    let wd = kern.workdiv(m, n);
    let mut reference: Option<Vec<f64>> = None;
    for kind in threaded_kinds() {
        let dev = Device::with_workers(kind.clone(), 4);
        let ab = dev.alloc_f64(BufLayout::d2(m, k, 8));
        let bb = dev.alloc_f64(BufLayout::d2(k, n, 8));
        let cb = dev.alloc_f64(BufLayout::d2(m, n, 8));
        ab.upload(&a).unwrap();
        bb.upload(&b).unwrap();
        cb.upload(&c0).unwrap();
        let args = Args::new()
            .buf_f(&ab)
            .buf_f(&bb)
            .buf_f(&cb)
            .scalar_f(1.25)
            .scalar_f(0.75)
            .scalar_i(m as i64)
            .scalar_i(n as i64)
            .scalar_i(k as i64)
            .scalar_i(ab.layout().pitch as i64)
            .scalar_i(bb.layout().pitch as i64)
            .scalar_i(cb.layout().pitch as i64);
        dev.launch(&kern, &wd, &args).unwrap();
        let got = cb.download();
        match &reference {
            None => {
                // Against the host reference (tolerance: the kernel's FMA
                // order differs from the triple loop).
                let mut want = c0.clone();
                dgemm_ref(m, n, k, 1.25, &a, &b, 0.75, &mut want);
                assert!(rel_err(&got, &want) < 1e-13, "{kind:?} vs host");
                reference = Some(got);
            }
            Some(want) => assert_eq!(&got, want, "{kind:?} diverged bit-wise"),
        }
    }
}

#[test]
fn stencil_time_series_identical() {
    // Multi-launch time stepping must stay identical across back-ends.
    let (rows, cols, steps) = (20, 17, 5);
    let init = random_matrix(rows, cols, 33);
    let mut reference: Option<Vec<f64>> = None;
    for kind in [AccKind::CpuSerial, AccKind::CpuBlocks, AccKind::sim_k20()] {
        let dev = Device::with_workers(kind.clone(), 4);
        let layout = BufLayout::d2(rows, cols, 8);
        let a = dev.alloc_f64(layout);
        let b = dev.alloc_f64(layout);
        a.upload(&init).unwrap();
        let pitch = a.layout().pitch as i64;
        let bt = if dev.caps().requires_single_thread_blocks {
            1
        } else {
            4
        };
        let wd = JacobiStep::workdiv(rows, cols, bt, 2);
        for s in 0..steps {
            let (src, dst) = if s % 2 == 0 { (&a, &b) } else { (&b, &a) };
            let args = Args::new()
                .buf_f(src)
                .buf_f(dst)
                .scalar_i(rows as i64)
                .scalar_i(cols as i64)
                .scalar_i(pitch);
            dev.launch(&JacobiStep, &wd, &args).unwrap();
        }
        let got = if steps % 2 == 0 {
            a.download()
        } else {
            b.download()
        };
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(&got, want, "{kind:?}"),
        }
    }
}

#[test]
fn monte_carlo_hits_identical_for_fixed_division() {
    let wd = WorkDiv::d1(16, 1, 1);
    let mut reference: Option<i64> = None;
    for kind in all_kinds() {
        if !matches!(
            kind,
            AccKind::CpuSerial | AccKind::CpuBlocks | AccKind::CpuFibers | AccKind::SimGpu(_)
        ) && wd.threads_per_block() == 1
        {
            // Thread back-ends accept 1-thread blocks too; keep them in.
        }
        let dev = Device::with_workers(kind.clone(), 4);
        let hits = dev.alloc_i64(BufLayout::d1(1));
        let args = Args::new().buf_i(&hits).scalar_i(400).scalar_i(4711);
        dev.launch(&MonteCarloPi, &wd, &args).unwrap();
        let h = hits.download()[0];
        match reference {
            None => reference = Some(h),
            Some(want) => assert_eq!(h, want, "{kind:?}"),
        }
    }
}

#[test]
fn reduce_blocks_partials_identical_on_threaded_backends() {
    let n = 2048usize;
    let data = random_vec(n, 8);
    let block = 128usize;
    let blocks = n / block;
    let mut reference: Option<Vec<f64>> = None;
    for kind in threaded_kinds() {
        let dev = Device::with_workers(kind.clone(), 4);
        let input = dev.alloc_f64(BufLayout::d1(n));
        let out = dev.alloc_f64(BufLayout::d1(blocks));
        input.upload(&data).unwrap();
        let args = Args::new().buf_f(&input).buf_f(&out).scalar_i(n as i64);
        dev.launch(
            &ReduceBlocks { block },
            &WorkDiv::d1(blocks, block, 1),
            &args,
        )
        .unwrap();
        let got = out.download();
        match &reference {
            None => {
                let total: f64 = got.iter().sum();
                let want = reduce_ref(&data);
                assert!((total - want).abs() / want.abs() < 1e-12);
                reference = Some(got);
            }
            Some(want) => assert_eq!(&got, want, "{kind:?}"),
        }
    }
}

#[test]
fn nbody_bit_identical_everywhere() {
    let n = 48usize;
    let mut pos = random_vec(n * 4, 21);
    for b in 0..n {
        pos[b * 4 + 3] = pos[b * 4 + 3] / 10.0 + 0.05;
    }
    let mut reference: Option<Vec<f64>> = None;
    for kind in all_kinds() {
        let dev = Device::with_workers(kind.clone(), 4);
        let p = dev.alloc_f64(BufLayout::d1(n * 4));
        let a = dev.alloc_f64(BufLayout::d1(n * 3));
        p.upload(&pos).unwrap();
        let wd = dev.suggest_workdiv_1d(n);
        let args = Args::new()
            .buf_f(&p)
            .buf_f(&a)
            .scalar_f(0.02)
            .scalar_i(n as i64);
        dev.launch(&NBodyAccel, &wd, &args).unwrap();
        let got = a.download();
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(&got, want, "{kind:?}"),
        }
    }
}

#[test]
fn different_workdivs_same_results_on_one_backend() {
    // The work division is a performance choice, never a correctness one.
    let n = 1000usize;
    let x = random_vec(n, 5);
    let y0 = random_vec(n, 6);
    let dev = Device::with_workers(AccKind::CpuBlocks, 4);
    let mut reference: Option<Vec<f64>> = None;
    for (blocks, threads, elems) in [(1000, 1, 1), (125, 1, 8), (10, 1, 100), (1, 1, 1000)] {
        let xb = dev.alloc_f64(BufLayout::d1(n));
        let yb = dev.alloc_f64(BufLayout::d1(n));
        xb.upload(&x).unwrap();
        yb.upload(&y0).unwrap();
        let args = Args::new()
            .buf_f(&xb)
            .buf_f(&yb)
            .scalar_f(0.5)
            .scalar_i(n as i64);
        dev.launch(&DaxpyKernel, &WorkDiv::d1(blocks, threads, elems), &args)
            .unwrap();
        let got = yb.download();
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(&got, want, "wd=({blocks},{threads},{elems})"),
        }
    }
}
