//! Randomized fault campaign (property tests): under any seeded
//! [`FaultPlan`] a kernel launch must either fail with a *structured*
//! error or complete with results bit-identical to a fault-free run —
//! never silent corruption. And every outcome must be a pure function of
//! the plan's seed: re-running the identical campaign with a different
//! interpreter worker count reproduces it exactly.

use alpaka::{AccKind, Args, BufLayout, Device, Engine, Error, FaultPlan};
use alpaka_kernels::{DaxpyKernel, DgemmNaive};
use proptest::prelude::*;

/// A campaign outcome, normalized for comparison across runs: either the
/// output buffers or the error's display form (which embeds the fault
/// kind and coordinates).
type Outcome = Result<Vec<Vec<f64>>, String>;

/// Every error a fault campaign may produce must be one of the structured
/// injection/fault variants — anything else (e.g. a `BadArg`) would mean
/// the plan broke the host API rather than the simulated hardware.
fn assert_structured(err: &Error) {
    match err {
        Error::KernelFault(info) => {
            // daxpy/dgemm are bug-free: only injected (transient) ECC
            // events can fault them, and those carry coordinates.
            assert!(info.transient, "unexpected deterministic fault: {err}");
            assert!(info.block.is_some() && info.thread.is_some(), "{err}");
        }
        Error::Timeout(_) | Error::DeviceLost(_) | Error::Device(_) => {}
        other => panic!("unstructured campaign error: {other}"),
    }
}

fn plan_from(seed: u64, ecc_exp: u32, oom_at: Option<u64>, lost_at: Option<u64>) -> FaultPlan {
    // ecc_exp 0 disables ECC; otherwise rate 10^-ecc_exp (1e-1 .. 1e-6).
    let mut plan = FaultPlan::quiet(seed);
    if ecc_exp > 0 {
        plan = plan.with_ecc_rate(10f64.powi(-(ecc_exp as i32)));
    }
    if let Some(o) = oom_at {
        plan = plan.with_oom_at(o);
    }
    if let Some(l) = lost_at {
        plan = plan.with_lost_at_launch(l);
    }
    plan
}

/// Run daxpy on a fresh simulated device under `plan` with `workers`
/// interpreter workers; allocation goes through the fault-aware path so
/// injected OOM participates too.
fn run_daxpy(plan: Option<&FaultPlan>, workers: usize, engine: Engine, n: usize) -> Outcome {
    let mut dev = Device::with_workers(AccKind::sim_k20(), workers).with_engine(engine);
    if let Some(p) = plan {
        dev = dev.with_faults(p.clone());
    } else {
        // A plan from ALPAKA_SIM_FAULTS would make the "fault-free"
        // reference runs of this campaign flaky under the CI smoke seed.
        dev = dev.with_faults(FaultPlan::quiet(0));
    }
    let run = || -> Result<Vec<Vec<f64>>, Error> {
        let x = dev.try_alloc_f64(BufLayout::d1(n))?;
        let y = dev.try_alloc_f64(BufLayout::d1(n))?;
        x.upload(&(0..n).map(|i| 0.5 * i as f64).collect::<Vec<_>>())?;
        y.upload(&(0..n).map(|i| 1.0 + i as f64).collect::<Vec<_>>())?;
        let wd = dev.suggest_workdiv_1d(n);
        let args = Args::new()
            .buf_f(&x)
            .buf_f(&y)
            .scalar_f(1.5)
            .scalar_i(n as i64);
        dev.launch(&DaxpyKernel, &wd, &args)?;
        Ok(vec![y.download()])
    };
    run().map_err(|e| e.to_string())
}

/// Same campaign harness for the naive DGEMM (pitched row-major).
fn run_dgemm(
    plan: Option<&FaultPlan>,
    workers: usize,
    engine: Engine,
    m: usize,
    n: usize,
    k: usize,
) -> Outcome {
    let mut dev = Device::with_workers(AccKind::sim_k20(), workers).with_engine(engine);
    dev = dev.with_faults(plan.cloned().unwrap_or_else(|| FaultPlan::quiet(0)));
    let run = || -> Result<Vec<Vec<f64>>, Error> {
        let a = dev.try_alloc_f64(BufLayout::d1(m * k))?;
        let b = dev.try_alloc_f64(BufLayout::d1(k * n))?;
        let c = dev.try_alloc_f64(BufLayout::d1(m * n))?;
        a.upload(&(0..m * k).map(|i| (i % 7) as f64 - 3.0).collect::<Vec<_>>())?;
        b.upload(
            &(0..k * n)
                .map(|i| (i % 5) as f64 * 0.25)
                .collect::<Vec<_>>(),
        )?;
        c.upload(&vec![1.0; m * n])?;
        let wd = DgemmNaive::workdiv(m, 2);
        let args = Args::new()
            .buf_f(&a)
            .buf_f(&b)
            .buf_f(&c)
            .scalar_f(1.0)
            .scalar_f(0.5)
            .scalar_i(m as i64)
            .scalar_i(n as i64)
            .scalar_i(k as i64)
            .scalar_i(k as i64) // lda
            .scalar_i(n as i64) // ldb
            .scalar_i(n as i64); // ldc
        dev.launch(&DgemmNaive, &wd, &args)?;
        Ok(vec![c.download()])
    };
    run().map_err(|e| e.to_string())
}

fn check_campaign(faulty: &Outcome, reference: &Outcome) {
    let want = reference.as_ref().expect("fault-free run must succeed");
    match faulty {
        // Fault-or-correct: a surviving run is bit-identical.
        Ok(got) => assert_eq!(got, want, "silent corruption under injected faults"),
        Err(msg) => {
            // The display form must come from a structured variant; spot
            // check by re-parsing the prefix keywords the variants print.
            assert!(
                msg.contains("kernel fault")
                    || msg.contains("timeout")
                    || msg.contains("device lost")
                    || msg.contains("device error"),
                "unstructured campaign error: {msg}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// daxpy under random plans: fault-or-correct, plus seed-determinism
    /// across interpreter worker counts (1 vs 4).
    #[test]
    fn daxpy_campaign_is_fault_or_correct_and_deterministic(
        seed in any::<u64>(),
        ecc_exp in 0u32..6,
        oom_raw in 0u64..8,
        lost_raw in 0u64..6,
        n in 16usize..512,
    ) {
        // Roughly half the cases get an injected OOM / device loss.
        let oom_at = (oom_raw < 4).then_some(oom_raw);
        let lost_at = (lost_raw < 2).then_some(lost_raw);
        let reference = run_daxpy(None, 1, Engine::Lowered, n);
        let plan = plan_from(seed, ecc_exp, oom_at, lost_at);
        let faulty = run_daxpy(Some(&plan), 1, Engine::Lowered, n);
        check_campaign(&faulty, &reference);
        // Bit-reproducible from the seed, whatever the parallelism.
        let again = run_daxpy(Some(&plan), 4, Engine::Lowered, n);
        prop_assert_eq!(&faulty, &again, "outcome depends on worker count");
        // Fault attribution is an engine invariant: every engine reports
        // the same structured outcome — same error kind and the same
        // block/thread coordinates baked into the display form.
        for engine in [Engine::Reference, Engine::Compiled] {
            let e = run_daxpy(Some(&plan), 1, engine, n);
            prop_assert_eq!(&faulty, &e, "outcome depends on engine {:?}", engine);
        }
    }

    #[test]
    fn dgemm_campaign_is_fault_or_correct_and_deterministic(
        seed in any::<u64>(),
        ecc_exp in 0u32..5,
        m in 2usize..12,
        n in 2usize..12,
        k in 2usize..12,
    ) {
        let reference = run_dgemm(None, 1, Engine::Lowered, m, n, k);
        let plan = plan_from(seed, ecc_exp, None, None);
        let faulty = run_dgemm(Some(&plan), 1, Engine::Lowered, m, n, k);
        check_campaign(&faulty, &reference);
        let again = run_dgemm(Some(&plan), 4, Engine::Lowered, m, n, k);
        prop_assert_eq!(&faulty, &again, "outcome depends on worker count");
        for engine in [Engine::Reference, Engine::Compiled] {
            let e = run_dgemm(Some(&plan), 1, engine, m, n, k);
            prop_assert_eq!(&faulty, &e, "outcome depends on engine {:?}", engine);
        }
    }
}

/// A fixed high-rate plan must actually fault (the campaign above could
/// in principle pass with rates too low to ever trigger) — and the error
/// it produces is structured with coordinates.
#[test]
fn high_ecc_rate_always_faults_daxpy() {
    let plan = FaultPlan::quiet(11).with_ecc_rate(1.0);
    let dev = Device::new(AccKind::sim_k20()).with_faults(plan);
    let n = 64;
    let x = dev.alloc_f64(BufLayout::d1(n));
    let y = dev.alloc_f64(BufLayout::d1(n));
    x.upload(&vec![1.0; n]).unwrap();
    let wd = dev.suggest_workdiv_1d(n);
    let args = Args::new()
        .buf_f(&x)
        .buf_f(&y)
        .scalar_f(2.0)
        .scalar_i(n as i64);
    let err = dev.launch(&DaxpyKernel, &wd, &args).unwrap_err();
    assert_structured(&err);
    assert!(err.is_transient(), "{err}");
}

// ---------------------------------------------------------------------------
// Atomics-plan x fault-injection: the deterministic parallel-atomics path
// (privatized scatter, ordered commit) must stay fault-or-correct and
// bit-reproducible under injected faults too.

/// Atomic f64 reduction through the queue path, so queue-level worker
/// death participates alongside device-level ECC / loss.
fn run_reduce_atomic(
    plan: Option<&alpaka::FaultPlan>,
    workers: usize,
    engine: Engine,
    n: usize,
    death_at: Option<u64>,
) -> Outcome {
    use alpaka::{Queue, QueueBehavior, WorkDiv};
    use alpaka_kernels::ReduceAtomic;
    let mut dev = Device::with_workers(AccKind::sim_k20(), workers).with_engine(engine);
    let mut p = plan.cloned().unwrap_or_else(|| FaultPlan::quiet(0));
    if let Some(d) = death_at {
        p = p.with_worker_death_at(d);
    }
    dev = dev.with_faults(p);
    let q = Queue::new(dev.clone(), QueueBehavior::NonBlocking);
    let run = || -> Result<Vec<Vec<f64>>, Error> {
        let x = dev.try_alloc_f64(BufLayout::d1(n))?;
        let out = dev.try_alloc_f64(BufLayout::d1(1))?;
        x.upload(&(0..n).map(|i| 0.125 * i as f64 - 7.0).collect::<Vec<_>>())?;
        // Non-zero base so the f64 accumulation order is observable.
        out.upload(&[0.25])?;
        let threads = 16usize;
        let elems = 2usize;
        let blocks = n.div_ceil(threads * elems).max(1);
        let wd = WorkDiv::d1(blocks, threads, elems);
        let args = Args::new().buf_f(&x).buf_f(&out).scalar_i(n as i64);
        q.enqueue_kernel(&ReduceAtomic, &wd, &args)?;
        q.wait()?;
        Ok(vec![out.download()])
    };
    // Queue ids are process-global ordinals; mask them so the comparison
    // across runs sees only the structured fault content.
    run().map_err(|e| {
        let msg = e.to_string();
        match msg.find("(queue ") {
            Some(i) => format!("{}(queue ?)", &msg[..i]),
            None => msg,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reducible atomic kernel under combined fault plans: fault-or-correct,
    /// and the outcome — including the exact f64 bits of the atomically
    /// accumulated sum — is identical across interpreter worker counts and
    /// all three engines.
    #[test]
    fn atomic_reduction_campaign_is_fault_or_correct_and_deterministic(
        seed in any::<u64>(),
        ecc_exp in 0u32..6,
        lost_raw in 0u64..6,
        death_raw in 0u64..12,
        n in 32usize..700,
    ) {
        let lost_at = (lost_raw < 2).then_some(lost_raw);
        let death_at = (death_raw < 4).then_some(death_raw);
        let reference = run_reduce_atomic(None, 1, Engine::Lowered, n, None);
        let plan = plan_from(seed, ecc_exp, None, lost_at);
        let faulty = run_reduce_atomic(Some(&plan), 1, Engine::Lowered, n, death_at);
        check_campaign(&faulty, &reference);
        // Same plan, more interpreter workers: the deterministic
        // parallel-atomics merge must reproduce the outcome bit-for-bit.
        let again = run_reduce_atomic(Some(&plan), 4, Engine::Lowered, n, death_at);
        prop_assert_eq!(&faulty, &again, "outcome depends on worker count");
        for engine in [Engine::Reference, Engine::Compiled] {
            let e = run_reduce_atomic(Some(&plan), 1, engine, n, death_at);
            prop_assert_eq!(&faulty, &e, "outcome depends on engine {:?}", engine);
        }
    }
}
