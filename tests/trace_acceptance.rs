//! End-to-end acceptance for the tracing & profiling layer.
//!
//! Covers the ISSUE 5 criteria: a traced DGEMM on the `e5_2630v3` spec must
//! produce (a) valid Chrome-trace JSON with at least one lane per worker and
//! one per queue, (b) a `KernelProfile` whose per-instruction counters sum
//! exactly to the `LaunchStats` totals, and (c) byte-identical trace output
//! (wall clock masked) across interpreter thread counts and engines — plus
//! the daxpy/dgemm determinism matrix of the satellite task.
//!
//! Worker counts are set via `Device::with_workers` rather than by mutating
//! `ALPAKA_SIM_THREADS` (the env override is process-global and would race
//! with parallel tests); both paths funnel into the same
//! `resolve_sim_threads` call in the simulator.

use alpaka::{
    chrome_trace, roofline_csv, text_report, trace, validate_json, AccKind, Args, BufLayout,
    ChromeOpts, Device, Engine, Queue, QueueBehavior, SimReport, TraceEvent, TraceKind,
};
use alpaka_kernels::host::{dgemm_ref, random_matrix, random_vec, rel_err};
use alpaka_kernels::{DaxpyKernel, DgemmTiled};

/// One traced DGEMM launch through the full facade path (device -> queue ->
/// simulator), returning the captured event stream and the launch report.
fn run_traced_dgemm(kind: AccKind, workers: usize, engine: Engine) -> (Vec<TraceEvent>, SimReport) {
    let (m, n, k) = (24, 20, 16);
    let a = random_matrix(m, k, 10);
    let b = random_matrix(k, n, 11);
    let c0 = random_matrix(m, n, 12);
    // The single-source tiled kernel in its CPU shape (single-thread
    // blocks, wide element loops) — valid on the e5 spec.
    let kern = DgemmTiled { t: 1, e: 4 };
    let wd = kern.workdiv(m, n);
    let (report, events) = trace::capture(|| {
        let dev = Device::with_workers(kind.clone(), workers).with_engine(engine);
        let q = Queue::new(dev.clone(), QueueBehavior::Blocking);
        let ab = dev.alloc_f64(BufLayout::d2(m, k, 8));
        let bb = dev.alloc_f64(BufLayout::d2(k, n, 8));
        let cb = dev.alloc_f64(BufLayout::d2(m, n, 8));
        ab.upload(&a).unwrap();
        bb.upload(&b).unwrap();
        cb.upload(&c0).unwrap();
        let args = Args::new()
            .buf_f(&ab)
            .buf_f(&bb)
            .buf_f(&cb)
            .scalar_f(1.25)
            .scalar_f(0.75)
            .scalar_i(m as i64)
            .scalar_i(n as i64)
            .scalar_i(k as i64)
            .scalar_i(ab.layout().pitch as i64)
            .scalar_i(bb.layout().pitch as i64)
            .scalar_i(cb.layout().pitch as i64);
        q.enqueue_kernel(&kern, &wd, &args).unwrap();
        q.wait().unwrap();
        // Results stay correct under tracing.
        let mut want = c0.clone();
        dgemm_ref(m, n, k, 1.25, &a, &b, 0.75, &mut want);
        assert!(rel_err(&cb.download(), &want) < 1e-13);
        q.last_sim_report().unwrap()
    });
    (events, report)
}

#[test]
fn traced_dgemm_chrome_export_has_worker_and_queue_lanes() {
    let workers = 4;
    let (events, report) = run_traced_dgemm(AccKind::sim_e5_2630v3(), workers, Engine::Lowered);
    assert!(!events.is_empty());
    let json = chrome_trace(&events, &ChromeOpts::default());
    validate_json(&json).unwrap_or_else(|e| panic!("invalid chrome JSON: {e}"));
    // Lane floor: every worker interpreted at least one SM's blocks, and
    // the queue got its own lane.
    let sm_lanes = (0..1000)
        .filter(|i| json.contains(&format!("\"name\":\"sm {i}\"")))
        .count();
    assert!(
        sm_lanes >= workers,
        "{sm_lanes} SM lanes for {workers} workers"
    );
    assert!(json.contains("\"name\":\"queue 0\""), "{json}");
    assert!(json.contains("\"name\":\"host\""), "{json}");
    // Every block of the launch has a span on an SM lane.
    let blocks = events
        .iter()
        .filter(|e| e.kind == TraceKind::BlockExec)
        .count() as u64;
    assert_eq!(blocks, report.stats.blocks);
    // The text and roofline exporters render the same stream.
    assert!(text_report(&events).contains("dgemm_tiled"));
    let csv = roofline_csv(&events);
    assert!(csv.lines().count() >= 2, "{csv}");
}

#[test]
fn traced_dgemm_profile_ties_out_against_launch_stats() {
    // The compiled engine drops out of its fast paths under profiling and
    // must still tie out per-instruction; check it alongside lowered.
    for engine in [Engine::Lowered, Engine::Compiled] {
        let (_, report) = run_traced_dgemm(AccKind::sim_e5_2630v3(), 2, engine);
        profile_ties_out(&report);
    }
}

fn profile_ties_out(report: &SimReport) {
    let profile = report.profile.as_ref().expect("traced run carries profile");
    profile
        .check_against(&report.stats)
        .unwrap_or_else(|e| panic!("profile does not tie out: {e}"));
    // And the ranked table renders with source labels.
    let table = profile.render_table(5);
    assert!(table.contains("%"), "{table}");
    // Spans account for every issue cycle exactly.
    let span_cycles: u64 = report.spans.iter().map(|s| s.cycles).sum();
    let s = &report.stats;
    assert_eq!(
        span_cycles,
        s.scalar_issue + s.vec_issue + s.bank_conflict_cycles + s.syncs * 8 + s.atomics * 16
    );
}

#[test]
fn traced_dgemm_is_byte_identical_across_threads_and_engines() {
    let configs = [
        (1, Engine::Lowered),
        (4, Engine::Lowered),
        (1, Engine::Reference),
        (4, Engine::Reference),
        (1, Engine::Compiled),
        (4, Engine::Compiled),
    ];
    let mut rendered: Vec<String> = Vec::new();
    for (workers, engine) in configs {
        let (events, _) = run_traced_dgemm(AccKind::sim_e5_2630v3(), workers, engine);
        rendered.push(chrome_trace(&events, &ChromeOpts { mask_wall: true }));
    }
    for (i, r) in rendered.iter().enumerate().skip(1) {
        assert_eq!(
            r, &rendered[0],
            "config {:?} diverged from {:?}",
            configs[i], configs[0]
        );
    }
}

#[test]
fn traced_daxpy_event_stream_is_deterministic() {
    let n = 4096usize;
    let x = random_vec(n, 1);
    let y0 = random_vec(n, 2);
    let run = |workers: usize, engine: Engine| -> Vec<TraceEvent> {
        let ((), events) = trace::capture(|| {
            let dev = Device::with_workers(AccKind::sim_k20(), workers).with_engine(engine);
            let q = Queue::new(dev.clone(), QueueBehavior::Blocking);
            let xb = dev.alloc_f64(BufLayout::d1(n));
            let yb = dev.alloc_f64(BufLayout::d1(n));
            xb.upload(&x).unwrap();
            yb.upload(&y0).unwrap();
            let wd = dev.suggest_workdiv_1d(n);
            let args = Args::new()
                .buf_f(&xb)
                .buf_f(&yb)
                .scalar_f(2.5)
                .scalar_i(n as i64);
            q.enqueue_kernel(&DaxpyKernel, &wd, &args).unwrap();
            q.wait().unwrap();
        });
        events
    };
    let reference = run(1, Engine::Lowered);
    assert!(!reference.is_empty());
    for (workers, engine) in [
        (4, Engine::Lowered),
        (1, Engine::Reference),
        (4, Engine::Reference),
        (1, Engine::Compiled),
        (4, Engine::Compiled),
    ] {
        let got = run(workers, engine);
        assert_eq!(got.len(), reference.len(), "{workers} {engine:?}");
        for (g, r) in got.iter().zip(&reference) {
            // Identical modulo the wall clock, which is the one
            // nondeterministic field.
            let mut g = g.clone();
            g.wall_ns = r.wall_ns;
            assert_eq!(&g, r, "{workers} workers, {engine:?}");
        }
    }
}
