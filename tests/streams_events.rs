//! Streams (queues) and events across back-ends: in-order execution,
//! host synchronization, error surfacing — the Section 3.4.5/3.4.6 API.

use alpaka::{AccKind, Args, BufLayout, Device, HostEvent, Queue, QueueBehavior};
use alpaka_core::kernel::Kernel;
use alpaka_core::ops::{KernelOps, KernelOpsExt};

/// `buf[i] = buf[i] * 2 + 1` — order-sensitive, so queue ordering shows.
#[derive(Clone)]
struct TwicePlusOne;
impl Kernel for TwicePlusOne {
    fn run<O: KernelOps>(&self, o: &mut O) {
        let b = o.buf_f(0);
        let n = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let c = o.lt_i(i, n);
            o.if_(c, |o| {
                let x = o.ld_gf(b, i);
                let two = o.lit_f(2.0);
                let one = o.lit_f(1.0);
                let r = o.fma_f(x, two, one);
                o.st_gf(b, i, r);
            });
        });
    }
}

fn kinds() -> Vec<AccKind> {
    vec![AccKind::CpuSerial, AccKind::CpuBlocks, AccKind::sim_k20()]
}

#[test]
fn queues_execute_in_order_on_every_backend() {
    // x -> 2x+1 applied 5 times: f^5(0) = 31.
    for behavior in [QueueBehavior::Blocking, QueueBehavior::NonBlocking] {
        for kind in kinds() {
            let dev = Device::with_workers(kind.clone(), 2);
            let q = Queue::new(dev.clone(), behavior);
            let n = 64usize;
            let buf = dev.alloc_f64(BufLayout::d1(n));
            buf.upload(&vec![0.0; n]).unwrap();
            let wd = dev.suggest_workdiv_1d(n);
            let args = Args::new().buf_f(&buf).scalar_i(n as i64);
            for _ in 0..5 {
                q.enqueue_kernel(&TwicePlusOne, &wd, &args).unwrap();
            }
            q.wait().unwrap();
            assert_eq!(buf.download(), vec![31.0; n], "{kind:?} {behavior:?}");
        }
    }
}

#[test]
fn event_between_operations() {
    for kind in kinds() {
        let dev = Device::with_workers(kind.clone(), 2);
        let q = Queue::new(dev.clone(), QueueBehavior::NonBlocking);
        let n = 32usize;
        let buf = dev.alloc_f64(BufLayout::d1(n));
        buf.upload(&vec![1.0; n]).unwrap();
        let wd = dev.suggest_workdiv_1d(n);
        let args = Args::new().buf_f(&buf).scalar_i(n as i64);
        let ev = HostEvent::new();
        q.enqueue_kernel(&TwicePlusOne, &wd, &args).unwrap();
        q.enqueue_event(&ev).unwrap();
        ev.wait();
        // After the event, exactly one application has happened.
        q.wait().unwrap();
        assert_eq!(buf.download(), vec![3.0; n], "{kind:?}");
    }
}

#[test]
fn two_queues_one_device() {
    // Independent queues on the same device, each with its own buffer.
    let dev = Device::with_workers(AccKind::CpuBlocks, 2);
    let q1 = Queue::new(dev.clone(), QueueBehavior::NonBlocking);
    let q2 = Queue::new(dev.clone(), QueueBehavior::NonBlocking);
    let n = 256usize;
    let b1 = dev.alloc_f64(BufLayout::d1(n));
    let b2 = dev.alloc_f64(BufLayout::d1(n));
    b1.upload(&vec![0.0; n]).unwrap();
    b2.upload(&vec![10.0; n]).unwrap();
    let wd = dev.suggest_workdiv_1d(n);
    for _ in 0..3 {
        q1.enqueue_kernel(
            &TwicePlusOne,
            &wd,
            &Args::new().buf_f(&b1).scalar_i(n as i64),
        )
        .unwrap();
        q2.enqueue_kernel(
            &TwicePlusOne,
            &wd,
            &Args::new().buf_f(&b2).scalar_i(n as i64),
        )
        .unwrap();
    }
    q1.wait().unwrap();
    q2.wait().unwrap();
    assert_eq!(b1.download(), vec![7.0; n]);
    assert_eq!(b2.download(), vec![87.0; n]); // f^3(10) = 87
}

#[test]
fn copy_then_kernel_then_copy_back() {
    // The Listing 4 + 5 offloading flow through a queue, host and device.
    let host_dev = Device::new(AccKind::CpuSerial);
    let gpu = Device::new(AccKind::sim_k20());
    let q = Queue::new(gpu.clone(), QueueBehavior::NonBlocking);
    let n = 100usize;
    let h = host_dev.alloc_f64(BufLayout::d1(n));
    h.upload(&vec![4.0; n]).unwrap();
    let d = gpu.alloc_f64(BufLayout::d1(n));
    q.enqueue_copy_f64(&d, &h).unwrap();
    let wd = gpu.suggest_workdiv_1d(n);
    q.enqueue_kernel(
        &TwicePlusOne,
        &wd,
        &Args::new().buf_f(&d).scalar_i(n as i64),
    )
    .unwrap();
    let back = host_dev.alloc_f64(BufLayout::d1(n));
    q.enqueue_copy_f64(&back, &d).unwrap();
    q.wait().unwrap();
    assert_eq!(back.download(), vec![9.0; n]);
    // The simulated device was charged for both transfers and the kernel.
    assert!(gpu.sim_clock_s() > 0.0);
}

#[test]
fn queue_error_surfaces_at_wait_and_clears() {
    #[derive(Clone)]
    struct Oob;
    impl Kernel for Oob {
        fn run<O: KernelOps>(&self, o: &mut O) {
            let b = o.buf_f(0);
            let i = o.lit_i(1_000_000);
            let v = o.lit_f(1.0);
            o.st_gf(b, i, v);
        }
    }
    let dev = Device::with_workers(AccKind::CpuBlocks, 2);
    let q = Queue::new(dev.clone(), QueueBehavior::NonBlocking);
    let buf = dev.alloc_f64(BufLayout::d1(4));
    let wd = alpaka::WorkDiv::d1(1, 1, 1);
    q.enqueue_kernel(&Oob, &wd, &Args::new().buf_f(&buf))
        .unwrap();
    assert!(q.wait().is_err());
    // Error taken: queue is usable again.
    q.enqueue_kernel(&TwicePlusOne, &wd, &Args::new().buf_f(&buf).scalar_i(4))
        .unwrap();
    q.wait().unwrap();
}

#[test]
fn event_reset_and_reuse() {
    let dev = Device::new(AccKind::CpuSerial);
    let q = Queue::new(dev.clone(), QueueBehavior::NonBlocking);
    let ev = HostEvent::new();
    q.enqueue_event(&ev).unwrap();
    ev.wait();
    assert_eq!(ev.generation(), 1);
    ev.reset();
    assert!(!ev.is_done());
    q.enqueue_event(&ev).unwrap();
    ev.wait();
    assert_eq!(ev.generation(), 2);
    q.wait().unwrap();
}
