//! Streams (queues) and events across back-ends: in-order execution,
//! host synchronization, error surfacing — the Section 3.4.5/3.4.6 API.

use alpaka::{AccKind, Args, BufLayout, Device, Error, HostEvent, Queue, QueueBehavior};
use alpaka_core::kernel::Kernel;
use alpaka_core::ops::{KernelOps, KernelOpsExt};

/// `buf[i] = buf[i] * 2 + 1` — order-sensitive, so queue ordering shows.
#[derive(Clone)]
struct TwicePlusOne;
impl Kernel for TwicePlusOne {
    fn run<O: KernelOps>(&self, o: &mut O) {
        let b = o.buf_f(0);
        let n = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let c = o.lt_i(i, n);
            o.if_(c, |o| {
                let x = o.ld_gf(b, i);
                let two = o.lit_f(2.0);
                let one = o.lit_f(1.0);
                let r = o.fma_f(x, two, one);
                o.st_gf(b, i, r);
            });
        });
    }
}

fn kinds() -> Vec<AccKind> {
    vec![AccKind::CpuSerial, AccKind::CpuBlocks, AccKind::sim_k20()]
}

#[test]
fn queues_execute_in_order_on_every_backend() {
    // x -> 2x+1 applied 5 times: f^5(0) = 31.
    for behavior in [QueueBehavior::Blocking, QueueBehavior::NonBlocking] {
        for kind in kinds() {
            let dev = Device::with_workers(kind.clone(), 2);
            let q = Queue::new(dev.clone(), behavior);
            let n = 64usize;
            let buf = dev.alloc_f64(BufLayout::d1(n));
            buf.upload(&vec![0.0; n]).unwrap();
            let wd = dev.suggest_workdiv_1d(n);
            let args = Args::new().buf_f(&buf).scalar_i(n as i64);
            for _ in 0..5 {
                q.enqueue_kernel(&TwicePlusOne, &wd, &args).unwrap();
            }
            q.wait().unwrap();
            assert_eq!(buf.download(), vec![31.0; n], "{kind:?} {behavior:?}");
        }
    }
}

#[test]
fn event_between_operations() {
    for kind in kinds() {
        let dev = Device::with_workers(kind.clone(), 2);
        let q = Queue::new(dev.clone(), QueueBehavior::NonBlocking);
        let n = 32usize;
        let buf = dev.alloc_f64(BufLayout::d1(n));
        buf.upload(&vec![1.0; n]).unwrap();
        let wd = dev.suggest_workdiv_1d(n);
        let args = Args::new().buf_f(&buf).scalar_i(n as i64);
        let ev = HostEvent::new();
        q.enqueue_kernel(&TwicePlusOne, &wd, &args).unwrap();
        q.enqueue_event(&ev).unwrap();
        ev.wait();
        // After the event, exactly one application has happened.
        q.wait().unwrap();
        assert_eq!(buf.download(), vec![3.0; n], "{kind:?}");
    }
}

#[test]
fn two_queues_one_device() {
    // Independent queues on the same device, each with its own buffer.
    let dev = Device::with_workers(AccKind::CpuBlocks, 2);
    let q1 = Queue::new(dev.clone(), QueueBehavior::NonBlocking);
    let q2 = Queue::new(dev.clone(), QueueBehavior::NonBlocking);
    let n = 256usize;
    let b1 = dev.alloc_f64(BufLayout::d1(n));
    let b2 = dev.alloc_f64(BufLayout::d1(n));
    b1.upload(&vec![0.0; n]).unwrap();
    b2.upload(&vec![10.0; n]).unwrap();
    let wd = dev.suggest_workdiv_1d(n);
    for _ in 0..3 {
        q1.enqueue_kernel(
            &TwicePlusOne,
            &wd,
            &Args::new().buf_f(&b1).scalar_i(n as i64),
        )
        .unwrap();
        q2.enqueue_kernel(
            &TwicePlusOne,
            &wd,
            &Args::new().buf_f(&b2).scalar_i(n as i64),
        )
        .unwrap();
    }
    q1.wait().unwrap();
    q2.wait().unwrap();
    assert_eq!(b1.download(), vec![7.0; n]);
    assert_eq!(b2.download(), vec![87.0; n]); // f^3(10) = 87
}

#[test]
fn copy_then_kernel_then_copy_back() {
    // The Listing 4 + 5 offloading flow through a queue, host and device.
    let host_dev = Device::new(AccKind::CpuSerial);
    let gpu = Device::new(AccKind::sim_k20());
    let q = Queue::new(gpu.clone(), QueueBehavior::NonBlocking);
    let n = 100usize;
    let h = host_dev.alloc_f64(BufLayout::d1(n));
    h.upload(&vec![4.0; n]).unwrap();
    let d = gpu.alloc_f64(BufLayout::d1(n));
    q.enqueue_copy_f64(&d, &h).unwrap();
    let wd = gpu.suggest_workdiv_1d(n);
    q.enqueue_kernel(
        &TwicePlusOne,
        &wd,
        &Args::new().buf_f(&d).scalar_i(n as i64),
    )
    .unwrap();
    let back = host_dev.alloc_f64(BufLayout::d1(n));
    q.enqueue_copy_f64(&back, &d).unwrap();
    q.wait().unwrap();
    assert_eq!(back.download(), vec![9.0; n]);
    // The simulated device was charged for both transfers and the kernel.
    assert!(gpu.sim_clock_s() > 0.0);
}

/// Stores way out of bounds — every back-end turns it into a kernel fault.
#[derive(Clone)]
struct Oob;
impl Kernel for Oob {
    fn run<O: KernelOps>(&self, o: &mut O) {
        let b = o.buf_f(0);
        let i = o.lit_i(1_000_000);
        let v = o.lit_f(1.0);
        o.st_gf(b, i, v);
    }
}

#[test]
fn queue_error_is_sticky_until_reset_on_every_backend() {
    // The CUDA stream model: a failed async op marks the queue; the error
    // re-surfaces at every wait AND every later enqueue until an explicit
    // reset — and it never poisons the device itself.
    for kind in kinds() {
        let dev = Device::with_workers(kind.clone(), 2);
        let q = Queue::new(dev.clone(), QueueBehavior::NonBlocking);
        let buf = dev.alloc_f64(BufLayout::d1(4));
        let wd = alpaka::WorkDiv::d1(1, 1, 1);
        q.enqueue_kernel(&Oob, &wd, &Args::new().buf_f(&buf))
            .unwrap();
        let err = q.wait().unwrap_err();
        assert!(matches!(err, Error::KernelFault(_)), "{kind:?}: {err}");
        // Sticky: waiting again reports it again...
        assert!(q.wait().is_err(), "{kind:?}");
        // ...and so does trying to enqueue more work.
        let err = q
            .enqueue_kernel(&TwicePlusOne, &wd, &Args::new().buf_f(&buf).scalar_i(4))
            .unwrap_err();
        assert!(matches!(err, Error::KernelFault(_)), "{kind:?}: {err}");
        assert!(q.sticky_error().is_some(), "{kind:?}");
        // The device is NOT poisoned: direct launches still work.
        dev.launch(&TwicePlusOne, &wd, &Args::new().buf_f(&buf).scalar_i(4))
            .unwrap_or_else(|e| panic!("{kind:?} device poisoned: {e}"));
        // Reset clears the mark and the queue is fully usable again.
        q.reset();
        assert!(q.sticky_error().is_none(), "{kind:?}");
        q.enqueue_kernel(&TwicePlusOne, &wd, &Args::new().buf_f(&buf).scalar_i(4))
            .unwrap();
        q.wait().unwrap();
        assert_eq!(buf.download()[0], 3.0, "{kind:?}"); // f^2(0) = 3
    }
}

#[test]
fn blocking_queue_reports_errors_directly() {
    // A Blocking queue runs the op inline, so the error comes back from
    // the enqueue itself and nothing sticks.
    for kind in kinds() {
        let dev = Device::with_workers(kind.clone(), 2);
        let q = Queue::new(dev.clone(), QueueBehavior::Blocking);
        let buf = dev.alloc_f64(BufLayout::d1(4));
        let wd = alpaka::WorkDiv::d1(1, 1, 1);
        let err = q
            .enqueue_kernel(&Oob, &wd, &Args::new().buf_f(&buf))
            .unwrap_err();
        assert!(matches!(err, Error::KernelFault(_)), "{kind:?}: {err}");
        assert!(q.sticky_error().is_none(), "{kind:?}");
        q.wait().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
    }
}

#[test]
fn queue_error_surfaces_at_event_wait() {
    for kind in kinds() {
        let dev = Device::with_workers(kind.clone(), 2);
        let q = Queue::new(dev.clone(), QueueBehavior::NonBlocking);
        let buf = dev.alloc_f64(BufLayout::d1(4));
        let wd = alpaka::WorkDiv::d1(1, 1, 1);
        let ev = HostEvent::new();
        q.enqueue_kernel(&Oob, &wd, &Args::new().buf_f(&buf))
            .unwrap();
        // On a synchronous back-end the enqueue above already marked the
        // queue, so enqueueing the event may itself report the error.
        let _ = q.enqueue_event(&ev);
        let err = q.wait_event(&ev).unwrap_err();
        assert!(matches!(err, Error::KernelFault(_)), "{kind:?}: {err}");
        q.reset();
        q.wait().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
    }
}

#[test]
fn worker_death_is_sticky_and_reset_revives_the_queue() {
    for kind in kinds() {
        let dev = Device::with_workers(kind.clone(), 2);
        let q = Queue::new(dev.clone(), QueueBehavior::NonBlocking);
        let buf = dev.alloc_f64(BufLayout::d1(8));
        buf.upload(&[0.0; 8]).unwrap();
        let wd = dev.suggest_workdiv_1d(8);
        q.inject_worker_death();
        let err = q.wait().unwrap_err();
        assert!(matches!(err, Error::Device(_)), "{kind:?}: {err}");
        // Work enqueued onto the dead queue is refused and never runs.
        let _ = q.enqueue_kernel(&TwicePlusOne, &wd, &Args::new().buf_f(&buf).scalar_i(8));
        assert!(q.wait().is_err(), "{kind:?}");
        assert_eq!(buf.download()[0], 0.0, "{kind:?}: dead queue ran work");
        // Reset respawns the worker; the queue processes work again.
        q.reset();
        q.enqueue_kernel(&TwicePlusOne, &wd, &Args::new().buf_f(&buf).scalar_i(8))
            .unwrap();
        q.wait().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(buf.download()[0], 1.0, "{kind:?}");
    }
}

#[test]
fn fault_plan_kills_the_queue_at_the_chosen_op() {
    use alpaka::FaultPlan;
    let dev =
        Device::new(AccKind::sim_k20()).with_faults(FaultPlan::quiet(9).with_worker_death_at(1));
    let q = Queue::new(dev.clone(), QueueBehavior::NonBlocking);
    let buf = dev.alloc_f64(BufLayout::d1(8));
    let wd = dev.suggest_workdiv_1d(8);
    let args = Args::new().buf_f(&buf).scalar_i(8);
    // Queue op 0 runs: 0 -> 1.
    q.enqueue_kernel(&TwicePlusOne, &wd, &args).unwrap();
    // Queue op 1 is where the injected death lands; the op is absorbed
    // (non-blocking) and never executes.
    q.enqueue_kernel(&TwicePlusOne, &wd, &args).unwrap();
    let err = q.wait().unwrap_err();
    assert!(matches!(err, Error::Device(_)), "{err}");
    assert_eq!(buf.download()[0], 1.0, "the killed op must not have run");
    // The device survives; after a reset the queue works again: 1 -> 3.
    q.reset();
    q.enqueue_kernel(&TwicePlusOne, &wd, &args).unwrap();
    q.wait().unwrap();
    assert_eq!(buf.download()[0], 3.0);
}

#[test]
fn event_reset_and_reuse() {
    let dev = Device::new(AccKind::CpuSerial);
    let q = Queue::new(dev.clone(), QueueBehavior::NonBlocking);
    let ev = HostEvent::new();
    q.enqueue_event(&ev).unwrap();
    ev.wait();
    assert_eq!(ev.generation(), 1);
    ev.reset();
    assert!(!ev.is_done());
    q.enqueue_event(&ev).unwrap();
    ev.wait();
    assert_eq!(ev.generation(), 2);
    q.wait().unwrap();
}
