//! # alpaka-metrics
//!
//! Exporters for the deterministic metrics registry
//! (`alpaka_core::metrics`) and its flight recorder:
//!
//! * [`prometheus_text`] — Prometheus-style text exposition (cumulative
//!   `_bucket{le=...}` histograms plus exact `_p50/_p95/_p99` percentile
//!   lines),
//! * [`json_snapshot`] — a hand-formatted JSON snapshot (the workspace
//!   carries no JSON dependency; strings go through `alpaka_trace::esc` and
//!   the output always passes `alpaka_trace::validate_json`),
//! * [`postmortem`] — the flight-recorder dump rendered when a launch
//!   failed: failure notes, the last N trace events per device, and the
//!   full metrics snapshot, and
//! * [`MetricsHub`] — the `ALPAKA_SIM_METRICS=<base>` file writer tying
//!   them together (the metrics twin of `alpaka_trace::Tracer`).
//!
//! Determinism rule: with wall-clock masking on (the default for file
//! export) the rendered bytes depend only on the registry contents, which
//! the instrumentation derives from the simulated clock — identical across
//! `ALPAKA_SIM_THREADS`, engines and pool sizes. The one engine-dependent
//! family, the process-cumulative `alpaka_sim_cache_*` gauges, can be
//! removed with [`strip_engine_dependent`] before byte comparisons, exactly
//! like `wall_ns` masking in traces.

use std::fmt::Write as _;

use alpaka_core::metrics::{self, HistogramSnapshot, LabelSet, MetricsCapture, MetricsSnapshot};
use alpaka_trace::esc;

/// Rendering options for [`json_snapshot`].
#[derive(Debug, Clone, Copy)]
pub struct JsonOpts {
    /// Replace the wall-clock export timestamp with 0 so the output is
    /// bit-identical across runs.
    pub mask_wall: bool,
}

impl Default for JsonOpts {
    fn default() -> Self {
        JsonOpts { mask_wall: true }
    }
}

/// JSON/exposition-safe rendering of an f64 (no NaN/Inf literals).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// `{k="v",...}` with escaped values; empty string for no labels.
fn fmt_labels(labels: &LabelSet, extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"");
        esc(v, &mut out);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

fn type_line(out: &mut String, last: &mut &'static str, name: &'static str, ty: &str) {
    if *last != name {
        let _ = writeln!(out, "# TYPE {name} {ty}");
        *last = name;
    }
}

/// Render a snapshot in the Prometheus text exposition format. Families
/// appear in sorted `(name, labels)` order: counters, then gauges, then
/// histograms — each histogram as cumulative `_bucket{le=...}` lines plus
/// `_sum`, `_count`, exact `_p50/_p95/_p99` percentile gauges and a
/// `_dropped` sample-overflow counter.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last: &'static str = "";
    for (name, labels, v) in &snap.counters {
        type_line(&mut out, &mut last, name, "counter");
        let _ = writeln!(out, "{name}{} {v}", fmt_labels(labels, None));
    }
    for (name, labels, v) in &snap.gauges {
        type_line(&mut out, &mut last, name, "gauge");
        let _ = writeln!(out, "{name}{} {}", fmt_labels(labels, None), num(*v));
    }
    for (name, labels, h) in &snap.histograms {
        type_line(&mut out, &mut last, name, "histogram");
        let mut cum = 0u64;
        for (i, c) in h.counts.iter().enumerate() {
            cum += c;
            let le = match h.bounds.get(i) {
                Some(b) => num(*b),
                None => "+Inf".to_string(),
            };
            let _ = writeln!(
                out,
                "{name}_bucket{} {cum}",
                fmt_labels(labels, Some(("le", &le)))
            );
        }
        let plain = fmt_labels(labels, None);
        let _ = writeln!(out, "{name}_sum{plain} {}", num(h.sum));
        let _ = writeln!(out, "{name}_count{plain} {}", h.count);
        let _ = writeln!(out, "{name}_p50{plain} {}", num(h.p50));
        let _ = writeln!(out, "{name}_p95{plain} {}", num(h.p95));
        let _ = writeln!(out, "{name}_p99{plain} {}", num(h.p99));
        let _ = writeln!(out, "{name}_dropped{plain} {}", h.dropped);
    }
    out
}

fn json_key(name: &str, labels: &LabelSet, out: &mut String) {
    out.push('"');
    esc(name, out);
    if !labels.is_empty() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            esc(k, out);
            out.push_str("=\\\"");
            // Double-escaped: the label value sits inside a JSON string
            // that itself renders quote-delimited label syntax.
            let mut inner = String::new();
            esc(v, &mut inner);
            esc(&inner, out);
            out.push_str("\\\"");
        }
        out.push('}');
    }
    out.push('"');
}

fn json_histogram(h: &HistogramSnapshot, out: &mut String) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"dropped\":{},\"buckets\":[",
        h.count,
        num(h.sum),
        num(h.p50),
        num(h.p95),
        num(h.p99),
        h.dropped
    );
    for (i, c) in h.counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let le = match h.bounds.get(i) {
            Some(b) => num(*b),
            None => "\"+Inf\"".to_string(),
        };
        let _ = write!(out, "[{le},{c}]");
    }
    out.push_str("]}");
}

/// Render a snapshot as one JSON document (one metric per line, so
/// line-oriented filters like [`strip_engine_dependent`] work on it).
/// Always valid per `alpaka_trace::validate_json`.
pub fn json_snapshot(snap: &MetricsSnapshot, opts: &JsonOpts) -> String {
    let wall = if opts.mask_wall {
        0
    } else {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    };
    let mut out = String::new();
    let _ = writeln!(out, "{{\"schema_version\":1,\"wall_unix_s\":{wall},");
    out.push_str("\"counters\":{");
    for (i, (name, labels, v)) in snap.counters.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        json_key(name, labels, &mut out);
        let _ = write!(out, ":{v}");
    }
    out.push_str("\n},\n\"gauges\":{");
    for (i, (name, labels, v)) in snap.gauges.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        json_key(name, labels, &mut out);
        let _ = write!(out, ":{}", num(*v));
    }
    out.push_str("\n},\n\"histograms\":{");
    for (i, (name, labels, h)) in snap.histograms.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        json_key(name, labels, &mut out);
        out.push(':');
        json_histogram(h, &mut out);
    }
    out.push_str("\n}\n}\n");
    out
}

/// Drop the engine-dependent metric lines from a rendered export
/// (Prometheus text or JSON snapshot — both are line-oriented):
/// `alpaka_sim_cache_*` mirrors the process-wide lowering/compile caches,
/// whose values depend on which engine ran and what else the process
/// executed, and `alpaka_launch_fallback_total` records compiled-engine
/// downgrades that by definition never fire on the other engines. Every
/// other family is byte-identical across threads, engines and pool sizes.
/// The trailing-comma fixup keeps filtered JSON valid.
pub fn strip_engine_dependent(rendered: &str) -> String {
    let kept: Vec<&str> = rendered
        .lines()
        .filter(|l| !l.contains("alpaka_sim_cache_") && !l.contains("alpaka_launch_fallback_total"))
        .collect();
    let mut out = String::new();
    for (i, line) in kept.iter().enumerate() {
        // A line ending in ',' whose successor closes the object would
        // leave a dangling comma after filtering.
        let next = kept.get(i + 1).copied().unwrap_or("");
        if line.ends_with(',') && (next.starts_with('}') || next.starts_with("# ")) {
            out.push_str(line.trim_end_matches(','));
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// Render the post-mortem of a failed run: failure notes, flight-recorder
/// ring contents per device (oldest first, via `alpaka_trace::event_line`,
/// so no wall clock), and the full metrics snapshot. Deterministic given
/// the capture.
pub fn postmortem(cap: &MetricsCapture) -> String {
    let mut out = String::from("=== alpaka post-mortem ===\n");
    let _ = writeln!(out, "{} launch failure(s):", cap.failures.len());
    for (i, f) in cap.failures.iter().enumerate() {
        let _ = writeln!(out, "  [{}] {f}", i + 1);
    }
    let _ = writeln!(
        out,
        "flight recorder ({} device(s), ring capacity {}):",
        cap.flight.len(),
        metrics::flight_capacity()
    );
    for (dev, ring) in &cap.flight {
        let _ = writeln!(out, "  device {dev}: last {} event(s)", ring.len());
        for e in ring {
            let _ = writeln!(out, "    {}", alpaka_trace::event_line(e));
        }
    }
    out.push_str("metrics snapshot:\n");
    out.push_str(&prometheus_text(&cap.snapshot));
    out
}

/// Collect the live registry + flight recorder + failure notes into a
/// [`MetricsCapture`] without resetting anything (unlike
/// `metrics::capture`, which scopes and restores).
pub fn capture_live() -> MetricsCapture {
    MetricsCapture {
        snapshot: metrics::snapshot(),
        flight: metrics::flight_snapshot(),
        failures: metrics::failures(),
    }
}

/// File-writing front end driven by `ALPAKA_SIM_METRICS=<base>`: writes
/// `<base>.prom` (Prometheus text) and `<base>.json` (masked JSON
/// snapshot) on every flush, plus `<base>.postmortem.txt` whenever any
/// launch failed with a structured error since the last reset.
#[derive(Debug)]
pub struct MetricsHub {
    base: std::path::PathBuf,
}

impl MetricsHub {
    /// A hub for the `ALPAKA_SIM_METRICS` base path; `None` when the
    /// variable is unset or empty (recording is then disabled too, unless
    /// something enabled it explicitly).
    pub fn from_env() -> Option<MetricsHub> {
        metrics::env_metrics_path().map(MetricsHub::new)
    }

    /// A hub writing to `<base>.prom` / `.json` / `.postmortem.txt`,
    /// enabling the global registry as a side effect.
    pub fn new(base: impl Into<std::path::PathBuf>) -> MetricsHub {
        metrics::set_enabled(true);
        MetricsHub { base: base.into() }
    }

    pub fn base(&self) -> &std::path::Path {
        &self.base
    }

    /// Write the export files and return the paths written (the
    /// post-mortem only when failures were recorded).
    pub fn flush(&self) -> std::io::Result<Vec<std::path::PathBuf>> {
        let cap = capture_live();
        let ext = |e: &str| {
            let mut p = self.base.clone().into_os_string();
            p.push(e);
            std::path::PathBuf::from(p)
        };
        let prom = ext(".prom");
        let json = ext(".json");
        std::fs::write(&prom, prometheus_text(&cap.snapshot))?;
        std::fs::write(&json, json_snapshot(&cap.snapshot, &JsonOpts::default()))?;
        let mut written = vec![prom, json];
        if !cap.failures.is_empty() {
            let pm = ext(".postmortem.txt");
            std::fs::write(&pm, postmortem(&cap))?;
            written.push(pm);
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpaka_core::metrics::{counter_add, gauge_set, observe, COUNT_BUCKETS};
    use alpaka_trace::validate_json;

    fn sample_capture() -> MetricsCapture {
        let ((), cap) = metrics::capture(|| {
            counter_add("alpaka_launches_total", &[("kernel", "daxpy")], 3);
            counter_add("alpaka_launches_total", &[("kernel", "dgemm")], 1);
            gauge_set("alpaka_sim_cache_hits", &[("cache", "lowering")], 5.0);
            for v in [1e-4, 2e-4, 3e-4, 4e-4] {
                observe("alpaka_launch_seconds", &[("kernel", "daxpy")], v);
            }
            metrics::observe_in("alpaka_pool_shard_attempts", &[], COUNT_BUCKETS, 2.0);
            metrics::note_failure("ecc", "daxpy on sim_k20: ecc event at block (1,0,0)");
            alpaka_core::trace::emit(alpaka_core::trace::TraceEvent::new(
                alpaka_core::trace::TraceKind::Launch,
                "daxpy",
                0,
                1e-3,
            ));
        });
        cap
    }

    #[test]
    fn prometheus_renders_cumulative_buckets_and_percentiles() {
        let cap = sample_capture();
        let text = prometheus_text(&cap.snapshot);
        assert!(
            text.contains("# TYPE alpaka_launches_total counter"),
            "{text}"
        );
        assert!(
            text.contains("alpaka_launches_total{kernel=\"daxpy\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE alpaka_launch_seconds histogram"),
            "{text}"
        );
        assert!(text.contains("alpaka_launch_seconds_bucket{kernel=\"daxpy\",le=\"+Inf\"} 4"));
        assert!(text.contains("alpaka_launch_seconds_count{kernel=\"daxpy\"} 4"));
        // Nearest-rank on [1,2,3,4]e-4: p50 = 2e-4, p95 = p99 = 4e-4.
        assert!(
            text.contains("alpaka_launch_seconds_p50{kernel=\"daxpy\"} 0.0002"),
            "{text}"
        );
        assert!(
            text.contains("alpaka_launch_seconds_p99{kernel=\"daxpy\"} 0.0004"),
            "{text}"
        );
        // Cumulative counts never decrease.
        let mut prev = 0u64;
        for line in text
            .lines()
            .filter(|l| l.contains("_bucket{kernel=\"daxpy\""))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "{line}");
            prev = v;
        }
    }

    #[test]
    fn json_snapshot_is_valid_and_masked() {
        let cap = sample_capture();
        let json = json_snapshot(&cap.snapshot, &JsonOpts::default());
        validate_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"wall_unix_s\":0"), "{json}");
        assert!(json.contains("\"schema_version\":1"));
        let unmasked = json_snapshot(&cap.snapshot, &JsonOpts { mask_wall: false });
        validate_json(&unmasked).unwrap();
    }

    #[test]
    fn json_snapshot_escapes_hostile_labels() {
        let ((), cap) = metrics::capture(|| {
            let hostile = "bad \"quote\" \\ and \n newline \u{1} ctrl \u{7f} del";
            counter_add("x_total", &[("k", hostile)], 1);
        });
        let json = json_snapshot(&cap.snapshot, &JsonOpts::default());
        validate_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        let prom = prometheus_text(&cap.snapshot);
        // Prometheus label values escape quotes/backslashes too (shared esc).
        assert!(prom.contains("\\\"quote\\\""), "{prom}");
    }

    #[test]
    fn strip_engine_dependent_removes_cache_gauges_and_keeps_json_valid() {
        let cap = sample_capture();
        let text = prometheus_text(&cap.snapshot);
        assert!(text.contains("alpaka_sim_cache_hits"));
        let stripped = strip_engine_dependent(&text);
        assert!(!stripped.contains("alpaka_sim_cache_hits"), "{stripped}");
        assert!(stripped.contains("alpaka_launches_total"), "{stripped}");
        let json = json_snapshot(&cap.snapshot, &JsonOpts::default());
        let jstripped = strip_engine_dependent(&json);
        assert!(!jstripped.contains("alpaka_sim_cache_hits"));
        validate_json(&jstripped).unwrap_or_else(|e| panic!("{e}\n{jstripped}"));
    }

    #[test]
    fn postmortem_contains_notes_rings_and_snapshot() {
        let cap = sample_capture();
        let pm = postmortem(&cap);
        assert!(pm.starts_with("=== alpaka post-mortem ==="), "{pm}");
        assert!(pm.contains("1 launch failure(s):"), "{pm}");
        assert!(pm.contains("[ecc] daxpy on sim_k20"), "{pm}");
        assert!(pm.contains("device 0: last 1 event(s)"), "{pm}");
        assert!(
            pm.contains("alpaka_launch_failures_total{kind=\"ecc\"} 1"),
            "{pm}"
        );
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(pm, postmortem(&cap));
    }

    #[test]
    fn hub_writes_expected_files() {
        let dir = std::env::temp_dir().join(format!("alpaka_metrics_hub_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ((), _cap) = metrics::capture(|| {
            counter_add("x_total", &[], 1);
            let hub = MetricsHub::new(dir.join("m"));
            let written = hub.flush().unwrap();
            assert_eq!(written.len(), 2, "no postmortem without failures");
            metrics::note_failure("test", "boom");
            let written = hub.flush().unwrap();
            assert_eq!(written.len(), 3);
            for p in &written {
                assert!(p.exists(), "{p:?}");
            }
        });
        std::fs::remove_dir_all(&dir).ok();
    }
}
