//! Parallel interpretation must be *bit-identical* to serial.
//!
//! The parallel block interpreter partitions SMs across workers, so every
//! per-SM access stream (and hence every cache hit/miss count) is the same
//! as in the serial schedule, and the u64 stat counters are merged in fixed
//! worker order. These tests pin that contract for the three workload
//! shapes named in the design: streaming (DAXPY), compute-bound with inner
//! loops (DGEMM) and global-atomics (histogram, which must take the serial
//! fallback and still be correct).
//!
//! NOTE: kernels are defined locally because `alpaka-kernels` sits above
//! this crate in the dependency graph.

use alpaka_core::kernel::Kernel;
use alpaka_core::ops::{KernelOps, KernelOpsExt};
use alpaka_core::workdiv::WorkDiv;
use alpaka_kir::{optimize, trace_kernel, uniformity};
use alpaka_sim::{
    program_uses_global_atomics, resolve_sim_threads, run_kernel_launch_engine,
    run_kernel_launch_threads, DeviceMem, DeviceSpec, Engine, ExecMode, SimArgs, SimReport,
};
use proptest::prelude::*;

struct Daxpy;
impl Kernel for Daxpy {
    fn name(&self) -> &str {
        "daxpy"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let x = o.buf_f(0);
        let y = o.buf_f(1);
        let a = o.param_f(0);
        let n = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let c = o.lt_i(i, n);
            o.if_(c, |o| {
                let xv = o.ld_gf(x, i);
                let yv = o.ld_gf(y, i);
                let r = o.fma_f(xv, a, yv);
                o.st_gf(y, i, r);
            });
        });
    }
}

/// Naive row-per-thread DGEMM: `C[r, c] += A[r, k] * B[k, c]`.
struct Dgemm;
impl Kernel for Dgemm {
    fn name(&self) -> &str {
        "dgemm"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let a = o.buf_f(0);
        let b = o.buf_f(1);
        let c = o.buf_f(2);
        let n = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        let nn = o.mul_i(n, n);
        o.for_elements(0, |o, e| {
            let idx = o.add_i(base, e);
            let in_range = o.lt_i(idx, nn);
            o.if_(in_range, |o| {
                let row = o.div_i(idx, n);
                let col = o.rem_i(idx, n);
                let zero = o.lit_i(0);
                let init = o.lit_f(0.0);
                let row_base = o.mul_i(row, n);
                let acc = o.fold_range_f(zero, n, init, |o, k, acc| {
                    let ai = o.add_i(row_base, k);
                    let bi = o.mul_i(k, n);
                    let bi = o.add_i(bi, col);
                    let av = o.ld_gf(a, ai);
                    let bv = o.ld_gf(b, bi);
                    o.fma_f(av, bv, acc)
                });
                let ci = o.add_i(row_base, col);
                let old = o.ld_gf(c, ci);
                let sum = o.add_f(old, acc);
                o.st_gf(c, ci, sum);
            });
        });
    }
}

/// Histogram with global integer atomics — many threads hit the same bin,
/// so the parallel path must refuse it and fall back to serial.
struct Histogram;
impl Kernel for Histogram {
    fn name(&self) -> &str {
        "histogram"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let data = o.buf_i(0);
        let bins = o.buf_i(1);
        let n = o.param_i(0);
        let nbins = o.param_i(1);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let c = o.lt_i(i, n);
            o.if_(c, |o| {
                let val = o.ld_gi(data, i);
                let bin = o.rem_i(val, nbins);
                let one = o.lit_i(1);
                o.atomic_add_gi(bins, bin, one);
            });
        });
    }
}

/// Out-of-place matrix transpose: `B[c, r] = A[r, c]`, one element per
/// thread. Strided writes make the coalescing accounting non-trivial.
struct Transpose;
impl Kernel for Transpose {
    fn name(&self) -> &str {
        "transpose"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let a = o.buf_f(0);
        let b = o.buf_f(1);
        let n = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        let nn = o.mul_i(n, n);
        o.for_elements(0, |o, e| {
            let idx = o.add_i(base, e);
            let c = o.lt_i(idx, nn);
            o.if_(c, |o| {
                let row = o.div_i(idx, n);
                let col = o.rem_i(idx, n);
                let src = o.ld_gf(a, idx);
                let di = o.mul_i(col, n);
                let di = o.add_i(di, row);
                o.st_gf(b, di, src);
            });
        });
    }
}

/// Block-level inclusive Hillis–Steele scan over shared memory: exercises
/// shared arrays, barriers, a mutable loop variable and a uniform `while`
/// in one kernel. Each block scans its own 64-element tile of `x` into `y`.
struct Scan;
impl Kernel for Scan {
    fn name(&self) -> &str {
        "scan"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let x = o.buf_f(0);
        let y = o.buf_f(1);
        let s = o.shared_f(64);
        let tid = o.thread_idx(0);
        let bt = o.block_thread_extent(0);
        let bid = o.block_idx(0);
        let base = o.mul_i(bid, bt);
        let gi = o.add_i(base, tid);
        let xv = o.ld_gf(x, gi);
        o.st_sf(s, tid, xv);
        o.sync_block_threads();
        let one = o.lit_i(1);
        let offset = o.var_i(one);
        o.while_(
            |o| {
                let cur = o.vget_i(offset);
                o.lt_i(cur, bt)
            },
            |o| {
                let cur = o.vget_i(offset);
                // Clamped partner index keeps the guarded load in bounds;
                // the select discards it for lanes with tid < offset.
                let pi = o.sub_i(tid, cur);
                let zero = o.lit_i(0);
                let pi = o.max_i(pi, zero);
                let partner = o.ld_sf(s, pi);
                let take = o.ge_i(tid, cur);
                let zf = o.lit_f(0.0);
                let addend = o.select_f(take, partner, zf);
                o.sync_block_threads();
                let mine = o.ld_sf(s, tid);
                let next = o.add_f(mine, addend);
                o.sync_block_threads();
                o.st_sf(s, tid, next);
                o.sync_block_threads();
                let two = o.lit_i(2);
                let dbl = o.mul_i(cur, two);
                o.vset_i(offset, dbl);
            },
        );
        let sv = o.ld_sf(s, tid);
        o.st_gf(y, gi, sv);
    }
}

fn transpose_setup(n: usize) -> (DeviceMem, SimArgs) {
    let mut mem = DeviceMem::new();
    let a = mem.alloc_f(n * n);
    let b = mem.alloc_f(n * n);
    for i in 0..n * n {
        mem.f_mut(a)[i] = (i as f64).cos() * 7.0 + i as f64 * 0.125;
    }
    let args = SimArgs {
        bufs_f: vec![a, b],
        bufs_i: vec![],
        params_f: vec![],
        params_i: vec![n as i64],
    };
    (mem, args)
}

fn scan_setup(blocks: usize) -> (DeviceMem, SimArgs) {
    let n = blocks * 64;
    let mut mem = DeviceMem::new();
    let x = mem.alloc_f(n);
    let y = mem.alloc_f(n);
    for i in 0..n {
        mem.f_mut(x)[i] = ((i * 13 + 5) % 17) as f64 * 0.75 - 4.0;
    }
    let args = SimArgs {
        bufs_f: vec![x, y],
        bufs_i: vec![],
        params_f: vec![],
        params_i: vec![],
    };
    (mem, args)
}

/// Run `kernel` twice from identical initial memory — serial and with
/// `threads` workers — and require bit-identical buffers, stats and times.
fn assert_bit_identical<K: Kernel>(
    kernel: &K,
    spec: &DeviceSpec,
    wd: &WorkDiv,
    setup: impl Fn() -> (DeviceMem, SimArgs),
    threads: usize,
    mode: ExecMode,
) -> (SimReport, SimReport, DeviceMem, DeviceMem) {
    let mut prog = trace_kernel(kernel, wd.dim);
    optimize(&mut prog);

    let (mut mem_s, args) = setup();
    let serial = run_kernel_launch_threads(spec, &mut mem_s, &prog, wd, &args, mode, 1).unwrap();

    let (mut mem_p, args_p) = setup();
    assert_eq!(args.bufs_f, args_p.bufs_f);
    let par =
        run_kernel_launch_threads(spec, &mut mem_p, &prog, wd, &args_p, mode, threads).unwrap();

    assert_eq!(
        serial.stats, par.stats,
        "LaunchStats diverged ({threads} threads)"
    );
    assert_eq!(
        serial.time, par.time,
        "TimeBreakdown diverged ({threads} threads)"
    );
    assert_eq!(serial.sampled, par.sampled);
    for (slot, b) in args.bufs_f.iter().enumerate() {
        let s: Vec<u64> = mem_s.f(*b).iter().map(|v| v.to_bits()).collect();
        let p: Vec<u64> = mem_p.f(*b).iter().map(|v| v.to_bits()).collect();
        assert_eq!(s, p, "f64 buffer slot {slot} diverged ({threads} threads)");
    }
    for (slot, b) in args.bufs_i.iter().enumerate() {
        assert_eq!(
            mem_s.i(*b),
            mem_p.i(*b),
            "i64 buffer slot {slot} diverged ({threads} threads)"
        );
    }
    (serial, par, mem_s, mem_p)
}

fn daxpy_setup(n: usize) -> (DeviceMem, SimArgs) {
    let mut mem = DeviceMem::new();
    let x = mem.alloc_f(n);
    let y = mem.alloc_f(n);
    for i in 0..n {
        mem.f_mut(x)[i] = (i as f64).sin() * 1e3;
        mem.f_mut(y)[i] = 1.0 + i as f64 * 0.25;
    }
    let args = SimArgs {
        bufs_f: vec![x, y],
        bufs_i: vec![],
        params_f: vec![2.5],
        params_i: vec![n as i64],
    };
    (mem, args)
}

fn dgemm_setup(n: usize) -> (DeviceMem, SimArgs) {
    let mut mem = DeviceMem::new();
    let a = mem.alloc_f(n * n);
    let b = mem.alloc_f(n * n);
    let c = mem.alloc_f(n * n);
    for i in 0..n * n {
        mem.f_mut(a)[i] = ((i * 7 + 3) % 13) as f64 * 0.5;
        mem.f_mut(b)[i] = ((i * 5 + 1) % 11) as f64 - 5.0;
    }
    let args = SimArgs {
        bufs_f: vec![a, b, c],
        bufs_i: vec![],
        params_f: vec![],
        params_i: vec![n as i64],
    };
    (mem, args)
}

fn histogram_setup(n: usize, nbins: usize) -> (DeviceMem, SimArgs) {
    let mut mem = DeviceMem::new();
    let data = mem.alloc_i(n);
    let bins = mem.alloc_i(nbins);
    for i in 0..n {
        mem.i_mut(data)[i] = ((i * 2654435761) % 1_000_003) as i64;
    }
    let args = SimArgs {
        bufs_f: vec![],
        bufs_i: vec![data, bins],
        params_f: vec![],
        params_i: vec![n as i64, nbins as i64],
    };
    (mem, args)
}

#[test]
fn daxpy_parallel_matches_serial_bit_for_bit() {
    // e5-2630v3: 8 per-core caches -> up to 8 workers, each owning a
    // disjoint SM subset.
    let spec = DeviceSpec::e5_2630v3();
    let n = 4096;
    let wd = WorkDiv::d1(n / 64, 1, 64);
    for threads in [2, 3, 8] {
        let (_, par, mem, _) = assert_bit_identical(
            &Daxpy,
            &spec,
            &wd,
            || daxpy_setup(n),
            threads,
            ExecMode::Full,
        );
        // And the result is actually right, not just consistently wrong.
        let (_, args) = daxpy_setup(n);
        let y = args.bufs_f[1];
        for i in 0..n {
            // fma in the kernel -> fused rounding in the reference too.
            let want = ((i as f64).sin() * 1e3).mul_add(2.5, 1.0 + i as f64 * 0.25);
            assert_eq!(mem.f(y)[i], want, "i={i}");
        }
        assert!(par.host.workers >= 1);
    }
}

#[test]
fn daxpy_parallel_matches_serial_on_many_sm_device() {
    // Xeon Phi: 60 per-core caches, more SMs than workers.
    let spec = DeviceSpec::xeon_phi_5110p();
    let n = 16384;
    let wd = WorkDiv::d1(n / 32, 1, 32);
    assert_bit_identical(&Daxpy, &spec, &wd, || daxpy_setup(n), 7, ExecMode::Full);
}

#[test]
fn dgemm_parallel_matches_serial_bit_for_bit() {
    let spec = DeviceSpec::e5_2630v3();
    let n: usize = 48; // 2304 threads -> 36 blocks of 64
    let wd = WorkDiv::d1((n * n).div_ceil(64), 1, 64);
    let (_, _, mem, _) =
        assert_bit_identical(&Dgemm, &spec, &wd, || dgemm_setup(n), 4, ExecMode::Full);
    // Spot-check against a host-side reference.
    let (_, args) = dgemm_setup(n);
    let (a, b, c) = (args.bufs_f[0], args.bufs_f[1], args.bufs_f[2]);
    let (ha, hb) = {
        let (m, _) = dgemm_setup(n);
        (m.f(a).to_vec(), m.f(b).to_vec())
    };
    for &(r, col) in &[(0usize, 0usize), (7, 31), (n - 1, n - 1)] {
        let mut want = 0.0f64;
        for k in 0..n {
            want = ha[r * n + k].mul_add(hb[k * n + col], want);
        }
        assert_eq!(mem.f(c)[r * n + col], want, "C[{r},{col}]");
    }
}

#[test]
fn dgemm_sampled_mode_is_deterministic_too() {
    let spec = DeviceSpec::e5_2630v3();
    let n: usize = 64;
    let wd = WorkDiv::d1((n * n).div_ceil(64), 1, 64);
    assert_bit_identical(
        &Dgemm,
        &spec,
        &wd,
        || dgemm_setup(n),
        8,
        ExecMode::SampleBlocks(16),
    );
}

#[test]
fn histogram_atomics_run_parallel_and_stay_correct() {
    let spec = DeviceSpec::e5_2630v3();
    let n: usize = 10_000;
    let nbins = 32;
    let wd = WorkDiv::d1(n.div_ceil(64), 1, 64);

    let prog = {
        let mut p = trace_kernel(&Histogram, 1);
        optimize(&mut p);
        p
    };
    assert!(
        program_uses_global_atomics(&prog),
        "histogram must be detected as an atomics kernel"
    );

    let (_, par, mem, _) = assert_bit_identical(
        &Histogram,
        &spec,
        &wd,
        || histogram_setup(n, nbins),
        8,
        ExecMode::Full,
    );
    // The histogram's atomic adds are commutative-reducible, so the launch
    // parallelizes (deferred per-worker accumulation) instead of falling
    // back to one worker as it used to.
    assert_eq!(par.host.workers, 8);
    assert_eq!(par.fallback, alpaka_sim::FallbackReason::None);
    let (_, args) = histogram_setup(n, nbins);
    let bins = args.bufs_i[1];
    assert_eq!(mem.i(bins).iter().sum::<i64>(), n as i64);
    // Host-side reference histogram.
    let (ref_mem, _) = histogram_setup(n, nbins);
    let data = args.bufs_i[0];
    let mut want = vec![0i64; nbins];
    for &v in ref_mem.i(data) {
        want[(v % nbins as i64) as usize] += 1;
    }
    assert_eq!(mem.i(bins), &want[..]);
}

#[test]
fn shared_cache_gpu_spec_falls_back_to_serial() {
    // K20 models one device-wide L2: hit/miss counts depend on the global
    // interleaving, so the parallel path must decline.
    let spec = DeviceSpec::k20();
    let n = 2048;
    let wd = WorkDiv::d1(n / 128, 128, 1);
    let (_, par, _, _) =
        assert_bit_identical(&Daxpy, &spec, &wd, || daxpy_setup(n), 8, ExecMode::Full);
    assert_eq!(par.host.workers, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (n, elems-per-thread, team size) combination agrees with serial.
    #[test]
    fn daxpy_determinism_holds_for_arbitrary_shapes(
        n in 1usize..3000,
        elems in 1usize..96,
        threads in 2usize..9,
    ) {
        let spec = DeviceSpec::e5_2630v3();
        let blocks = n.div_ceil(elems).max(1);
        let wd = WorkDiv::d1(blocks, 1, elems);
        assert_bit_identical(&Daxpy, &spec, &wd, || daxpy_setup(n), threads, ExecMode::Full);
    }
}

// ---------------------------------------------------------------------------
// Lowered vs. reference engine
// ---------------------------------------------------------------------------

/// Run `kernel` from identical initial memory through all three execution
/// engines — tree-walking reference, pre-decoded (lowered) and
/// direct-threaded compiled — and require bit-identical buffers,
/// `LaunchStats` and `TimeBreakdown` across the set. Returns the lowered
/// run's report and memory for further checks.
fn assert_engines_agree<K: Kernel>(
    kernel: &K,
    spec: &DeviceSpec,
    wd: &WorkDiv,
    setup: impl Fn() -> (DeviceMem, SimArgs),
    threads: usize,
    mode: ExecMode,
) -> (SimReport, DeviceMem) {
    let mut prog = trace_kernel(kernel, wd.dim);
    optimize(&mut prog);

    let mut out: Option<(SimReport, DeviceMem)> = None;
    let (mut mem_r, args) = setup();
    let reference = run_kernel_launch_engine(
        spec,
        &mut mem_r,
        &prog,
        wd,
        &args,
        mode,
        threads,
        Engine::Reference,
    )
    .unwrap();

    for engine in [Engine::Lowered, Engine::Compiled] {
        let (mut mem_e, args_e) = setup();
        let rep =
            run_kernel_launch_engine(spec, &mut mem_e, &prog, wd, &args_e, mode, threads, engine)
                .unwrap();

        assert_eq!(
            reference.stats,
            rep.stats,
            "LaunchStats diverged between Reference and {engine:?} ({})",
            kernel.name()
        );
        assert_eq!(
            reference.time,
            rep.time,
            "TimeBreakdown diverged between Reference and {engine:?} ({})",
            kernel.name()
        );
        assert_eq!(reference.sampled, rep.sampled);
        for (slot, b) in args.bufs_f.iter().enumerate() {
            let r: Vec<u64> = mem_r.f(*b).iter().map(|v| v.to_bits()).collect();
            let e: Vec<u64> = mem_e.f(*b).iter().map(|v| v.to_bits()).collect();
            assert_eq!(r, e, "f64 buffer slot {slot} diverged on {engine:?}");
        }
        for (slot, b) in args.bufs_i.iter().enumerate() {
            assert_eq!(
                mem_r.i(*b),
                mem_e.i(*b),
                "i64 buffer slot {slot} diverged on {engine:?}"
            );
        }
        if engine == Engine::Lowered {
            out = Some((rep, mem_e));
        }
    }
    out.unwrap()
}

#[test]
fn engines_agree_on_daxpy() {
    let n = 4096;
    // CPU model at 1 thread/block (the bench shape) and GPU model with
    // wide blocks: both engine paths, uniform and divergent masks.
    assert_engines_agree(
        &Daxpy,
        &DeviceSpec::e5_2630v3(),
        &WorkDiv::d1(n / 64, 1, 64),
        || daxpy_setup(n),
        1,
        ExecMode::Full,
    );
    assert_engines_agree(
        &Daxpy,
        &DeviceSpec::k20(),
        &WorkDiv::d1(n / 128, 128, 1),
        || daxpy_setup(n),
        1,
        ExecMode::Full,
    );
    // Odd n: the tail block's guard diverges.
    let n: usize = 3001;
    assert_engines_agree(
        &Daxpy,
        &DeviceSpec::k20(),
        &WorkDiv::d1(n.div_ceil(128), 128, 1),
        || daxpy_setup(n),
        1,
        ExecMode::Full,
    );
}

#[test]
fn engines_agree_on_dgemm() {
    let n: usize = 48;
    assert_engines_agree(
        &Dgemm,
        &DeviceSpec::e5_2630v3(),
        &WorkDiv::d1((n * n).div_ceil(64), 1, 64),
        || dgemm_setup(n),
        1,
        ExecMode::Full,
    );
    assert_engines_agree(
        &Dgemm,
        &DeviceSpec::k20(),
        &WorkDiv::d1((n * n).div_ceil(64), 64, 1),
        || dgemm_setup(n),
        1,
        ExecMode::Full,
    );
}

#[test]
fn engines_agree_on_transpose() {
    let n: usize = 40;
    let (_, mem) = assert_engines_agree(
        &Transpose,
        &DeviceSpec::e5_2630v3(),
        &WorkDiv::d1((n * n).div_ceil(32), 1, 32),
        || transpose_setup(n),
        1,
        ExecMode::Full,
    );
    assert_engines_agree(
        &Transpose,
        &DeviceSpec::k20(),
        &WorkDiv::d1((n * n).div_ceil(128), 128, 1),
        || transpose_setup(n),
        1,
        ExecMode::Full,
    );
    // And the transpose is actually a transpose.
    let (src, args) = transpose_setup(n);
    let (a, b) = (args.bufs_f[0], args.bufs_f[1]);
    for r in 0..n {
        for c in 0..n {
            assert_eq!(mem.f(b)[c * n + r], src.f(a)[r * n + c], "B[{c},{r}]");
        }
    }
}

#[test]
fn engines_agree_on_histogram() {
    let n: usize = 10_000;
    let nbins = 32;
    assert_engines_agree(
        &Histogram,
        &DeviceSpec::e5_2630v3(),
        &WorkDiv::d1(n.div_ceil(64), 1, 64),
        || histogram_setup(n, nbins),
        1,
        ExecMode::Full,
    );
    assert_engines_agree(
        &Histogram,
        &DeviceSpec::k20(),
        &WorkDiv::d1(n.div_ceil(256), 256, 1),
        || histogram_setup(n, nbins),
        1,
        ExecMode::Full,
    );
}

#[test]
fn engines_agree_on_scan() {
    let blocks = 24;
    let (_, mem) = assert_engines_agree(
        &Scan,
        &DeviceSpec::k20(),
        &WorkDiv::d1(blocks, 64, 1),
        || scan_setup(blocks),
        1,
        ExecMode::Full,
    );
    // Check the per-block inclusive prefix sums against a host reference,
    // reproducing the kernel's f64 addition order (tree, not sequential).
    let (src, args) = scan_setup(blocks);
    let (x, y) = (args.bufs_f[0], args.bufs_f[1]);
    for blk in 0..blocks {
        let tile = &src.f(x)[blk * 64..(blk + 1) * 64];
        let mut s: Vec<f64> = tile.to_vec();
        let mut offset = 1;
        while offset < 64 {
            let prev = s.clone();
            for t in 0..64 {
                if t >= offset {
                    s[t] = prev[t] + prev[t - offset];
                }
            }
            offset *= 2;
        }
        for t in 0..64 {
            assert_eq!(
                mem.f(y)[blk * 64 + t].to_bits(),
                s[t].to_bits(),
                "scan[{blk},{t}]"
            );
        }
    }
}

#[test]
fn engines_agree_under_parallel_and_sampled_execution() {
    let n: usize = 64;
    let wd = WorkDiv::d1((n * n).div_ceil(64), 1, 64);
    assert_engines_agree(
        &Dgemm,
        &DeviceSpec::e5_2630v3(),
        &wd,
        || dgemm_setup(n),
        8,
        ExecMode::Full,
    );
    assert_engines_agree(
        &Dgemm,
        &DeviceSpec::e5_2630v3(),
        &wd,
        || dgemm_setup(n),
        8,
        ExecMode::SampleBlocks(16),
    );
}

/// Build the three-way contract explicitly: lowered engine == reference
/// engine == `alpaka_kir::eval`, on a 1-thread-per-block launch where the
/// per-thread evaluator's ordering contract is exact.
#[test]
fn lowered_engine_matches_eval_reference() {
    use alpaka_kir::eval::{eval_thread_fuel, EvalInputs, EvalMem, SpecialValues};

    let n = 512usize;
    let elems = 64usize;
    let blocks = n / elems;
    let wd = WorkDiv::d1(blocks, 1, elems);
    let mut prog = trace_kernel(&Daxpy, wd.dim);
    optimize(&mut prog);

    // Evaluator: one thread per block, blocks in linear order.
    let (mem0, args) = daxpy_setup(n);
    let mut emem = EvalMem {
        bufs_f: vec![
            mem0.f(args.bufs_f[0]).to_vec(),
            mem0.f(args.bufs_f[1]).to_vec(),
        ],
        bufs_i: vec![],
    };
    for b in 0..blocks {
        let sp = SpecialValues {
            grid_blocks: [1, 1, blocks as i64],
            block_threads: [1, 1, 1],
            thread_elems: [1, 1, elems as i64],
            block_idx: [0, 0, b as i64],
            thread_idx: [0, 0, 0],
        };
        let inp = EvalInputs {
            params_f: &args.params_f,
            params_i: &args.params_i,
            special: sp,
        };
        eval_thread_fuel(&prog, &inp, &mut emem, 10_000_000).unwrap();
    }

    let (_, mem) = assert_engines_agree(
        &Daxpy,
        &DeviceSpec::e5_2630v3(),
        &wd,
        || daxpy_setup(n),
        1,
        ExecMode::Full,
    );
    let y = args.bufs_f[1];
    let sim_bits: Vec<u64> = mem.f(y).iter().map(|v| v.to_bits()).collect();
    let eval_bits: Vec<u64> = emem.bufs_f[1].iter().map(|v| v.to_bits()).collect();
    assert_eq!(sim_bits, eval_bits, "lowered interpreter vs eval");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness of the uniformity analysis: a value derived from a
    /// thread-index special register must never be classified uniform, no
    /// matter what chain of pure ops it flows through.
    #[test]
    fn uniformity_never_marks_thread_derived_values_uniform(
        axis in 0u32..3,
        steps in proptest::collection::vec(0u32..5, 1..12),
    ) {
        use alpaka_kir::ir::{
            Block, FBin, IBin, Instr, Op, Program, SpecialReg, Stmt, Ty, ValId, VarId, VarInfo,
        };

        let mut stmts = vec![
            // v0 = tid.axis (varying seed), v1 = blockIdx.x (uniform),
            // v2 = param (uniform).
            Stmt::I(Instr { dst: ValId(0), op: Op::Special(SpecialReg::ThreadIdx(axis as u8)) }),
            Stmt::I(Instr { dst: ValId(1), op: Op::Special(SpecialReg::BlockIdx(2)) }),
            Stmt::I(Instr { dst: ValId(2), op: Op::ParamI(0) }),
        ];
        // Walk a chain v3, v4, ... where each step mixes the previous
        // tainted value with a uniform operand through a random pure op.
        let mut cur = ValId(0);
        let mut next = 3u32;
        let mut tainted = vec![ValId(0)];
        let mut is_float = false;
        for &s in &steps {
            let dst = ValId(next);
            let op = match (s, is_float) {
                (0, false) => Op::BinI(IBin::Add, cur, ValId(1)),
                (1, false) => Op::BinI(IBin::Mul, cur, ValId(2)),
                (2, false) => Op::NegI(cur),
                (3, false) => { is_float = true; Op::I2F(cur) }
                (_, false) => Op::BinI(IBin::Xor, cur, ValId(2)),
                (3, true) => { is_float = false; Op::F2I(cur) }
                (_, true) => Op::BinF(FBin::Add, cur, cur),
            };
            stmts.push(Stmt::I(Instr { dst, op }));
            tainted.push(dst);
            cur = dst;
            next += 1;
        }
        // Route the chain through a mutable variable as well: a store of a
        // varying value must taint the variable and its readers.
        let var_ty = if is_float { Ty::F64 } else { Ty::I64 };
        if is_float {
            stmts.push(Stmt::StVarF { var: VarId(0), val: cur });
            stmts.push(Stmt::I(Instr { dst: ValId(next), op: Op::LdVarF(VarId(0)) }));
        } else {
            stmts.push(Stmt::StVarI { var: VarId(0), val: cur });
            stmts.push(Stmt::I(Instr { dst: ValId(next), op: Op::LdVarI(VarId(0)) }));
        }
        tainted.push(ValId(next));

        let prog = Program {
            name: "taint".into(),
            dims: 1,
            body: Block(stmts),
            n_vals: next + 1,
            vars: vec![VarInfo { ty: var_ty }],
            shared: vec![],
            locals: vec![],
            n_bufs_f: 0,
            n_bufs_i: 0,
            n_params_f: 0,
            n_params_i: 1,
        };
        alpaka_kir::validate(&prog).unwrap();
        let u = uniformity(&prog);
        for v in &tainted {
            prop_assert!(
                !u.val(*v),
                "thread-derived value v{} classified uniform",
                v.0
            );
        }
        prop_assert!(!u.var(VarId(0)), "thread-tainted var classified uniform");
        // The untainted companions stay uniform (the analysis is not
        // trivially marking everything varying).
        prop_assert!(u.val(ValId(1)));
        prop_assert!(u.val(ValId(2)));
    }

    /// Engine parity on machine-generated programs: whatever shape the
    /// generator emits (loops, vars, stores, selects), the lowered and
    /// reference engines agree bit-for-bit on buffers, stats and time.
    #[test]
    fn engines_agree_on_random_programs(
        seed in proptest::collection::vec(any::<u64>(), 4..24),
        len in 3usize..12,
        blocks in 1usize..5,
    ) {
        let p = alpaka_kir::testgen::gen_program(&seed, len);
        let wd = WorkDiv::d1(blocks, 1, 1);
        let mut results = vec![];
        for engine in [Engine::Reference, Engine::Lowered, Engine::Compiled] {
            let mut mem = DeviceMem::new();
            let buf = mem.alloc_f(16);
            let args = SimArgs {
                bufs_f: vec![buf],
                bufs_i: vec![],
                params_f: vec![],
                params_i: vec![],
            };
            let rep = run_kernel_launch_engine(
                &DeviceSpec::k20(),
                &mut mem,
                &p,
                &wd,
                &args,
                ExecMode::Full,
                1,
                engine,
            )
            .expect("launch");
            let bits: Vec<u64> = mem.f(buf).iter().map(|v| v.to_bits()).collect();
            results.push((rep.stats, rep.time, bits));
        }
        prop_assert_eq!(
            &results[0], &results[1],
            "lowered engine diverged for program:\n{}",
            alpaka_kir::print_program(&p)
        );
        prop_assert_eq!(
            &results[0], &results[2],
            "compiled engine diverged for program:\n{}",
            alpaka_kir::print_program(&p)
        );
    }
}

#[test]
fn env_var_override_of_one_matches_serial() {
    // This is the only test in this binary that touches the process
    // environment; everything else passes thread counts explicitly.
    let spec = DeviceSpec::e5_2630v3();
    std::env::set_var("ALPAKA_SIM_THREADS", "1");
    assert_eq!(resolve_sim_threads(8), 1);
    std::env::set_var("ALPAKA_SIM_THREADS", "6");
    assert_eq!(resolve_sim_threads(1), 6);
    std::env::set_var("ALPAKA_SIM_THREADS", "not-a-number");
    assert_eq!(resolve_sim_threads(3), 3);
    std::env::set_var("ALPAKA_SIM_THREADS", "0");
    assert_eq!(resolve_sim_threads(3), 3);
    std::env::remove_var("ALPAKA_SIM_THREADS");
    assert_eq!(resolve_sim_threads(spec.sim_threads), 1);
}
