//! Parallel interpretation must be *bit-identical* to serial.
//!
//! The parallel block interpreter partitions SMs across workers, so every
//! per-SM access stream (and hence every cache hit/miss count) is the same
//! as in the serial schedule, and the u64 stat counters are merged in fixed
//! worker order. These tests pin that contract for the three workload
//! shapes named in the design: streaming (DAXPY), compute-bound with inner
//! loops (DGEMM) and global-atomics (histogram, which must take the serial
//! fallback and still be correct).
//!
//! NOTE: kernels are defined locally because `alpaka-kernels` sits above
//! this crate in the dependency graph.

use alpaka_core::kernel::Kernel;
use alpaka_core::ops::{KernelOps, KernelOpsExt};
use alpaka_core::workdiv::WorkDiv;
use alpaka_kir::{optimize, trace_kernel};
use alpaka_sim::{
    program_uses_global_atomics, resolve_sim_threads, run_kernel_launch_threads, DeviceMem,
    DeviceSpec, ExecMode, SimArgs, SimReport,
};
use proptest::prelude::*;

struct Daxpy;
impl Kernel for Daxpy {
    fn name(&self) -> &str {
        "daxpy"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let x = o.buf_f(0);
        let y = o.buf_f(1);
        let a = o.param_f(0);
        let n = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let c = o.lt_i(i, n);
            o.if_(c, |o| {
                let xv = o.ld_gf(x, i);
                let yv = o.ld_gf(y, i);
                let r = o.fma_f(xv, a, yv);
                o.st_gf(y, i, r);
            });
        });
    }
}

/// Naive row-per-thread DGEMM: `C[r, c] += A[r, k] * B[k, c]`.
struct Dgemm;
impl Kernel for Dgemm {
    fn name(&self) -> &str {
        "dgemm"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let a = o.buf_f(0);
        let b = o.buf_f(1);
        let c = o.buf_f(2);
        let n = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        let nn = o.mul_i(n, n);
        o.for_elements(0, |o, e| {
            let idx = o.add_i(base, e);
            let in_range = o.lt_i(idx, nn);
            o.if_(in_range, |o| {
                let row = o.div_i(idx, n);
                let col = o.rem_i(idx, n);
                let zero = o.lit_i(0);
                let init = o.lit_f(0.0);
                let row_base = o.mul_i(row, n);
                let acc = o.fold_range_f(zero, n, init, |o, k, acc| {
                    let ai = o.add_i(row_base, k);
                    let bi = o.mul_i(k, n);
                    let bi = o.add_i(bi, col);
                    let av = o.ld_gf(a, ai);
                    let bv = o.ld_gf(b, bi);
                    o.fma_f(av, bv, acc)
                });
                let ci = o.add_i(row_base, col);
                let old = o.ld_gf(c, ci);
                let sum = o.add_f(old, acc);
                o.st_gf(c, ci, sum);
            });
        });
    }
}

/// Histogram with global integer atomics — many threads hit the same bin,
/// so the parallel path must refuse it and fall back to serial.
struct Histogram;
impl Kernel for Histogram {
    fn name(&self) -> &str {
        "histogram"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let data = o.buf_i(0);
        let bins = o.buf_i(1);
        let n = o.param_i(0);
        let nbins = o.param_i(1);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let c = o.lt_i(i, n);
            o.if_(c, |o| {
                let val = o.ld_gi(data, i);
                let bin = o.rem_i(val, nbins);
                let one = o.lit_i(1);
                o.atomic_add_gi(bins, bin, one);
            });
        });
    }
}

/// Run `kernel` twice from identical initial memory — serial and with
/// `threads` workers — and require bit-identical buffers, stats and times.
fn assert_bit_identical<K: Kernel>(
    kernel: &K,
    spec: &DeviceSpec,
    wd: &WorkDiv,
    setup: impl Fn() -> (DeviceMem, SimArgs),
    threads: usize,
    mode: ExecMode,
) -> (SimReport, SimReport, DeviceMem, DeviceMem) {
    let mut prog = trace_kernel(kernel, wd.dim);
    optimize(&mut prog);

    let (mut mem_s, args) = setup();
    let serial = run_kernel_launch_threads(spec, &mut mem_s, &prog, wd, &args, mode, 1).unwrap();

    let (mut mem_p, args_p) = setup();
    assert_eq!(args.bufs_f, args_p.bufs_f);
    let par =
        run_kernel_launch_threads(spec, &mut mem_p, &prog, wd, &args_p, mode, threads).unwrap();

    assert_eq!(
        serial.stats, par.stats,
        "LaunchStats diverged ({threads} threads)"
    );
    assert_eq!(
        serial.time, par.time,
        "TimeBreakdown diverged ({threads} threads)"
    );
    assert_eq!(serial.sampled, par.sampled);
    for (slot, b) in args.bufs_f.iter().enumerate() {
        let s: Vec<u64> = mem_s.f(*b).iter().map(|v| v.to_bits()).collect();
        let p: Vec<u64> = mem_p.f(*b).iter().map(|v| v.to_bits()).collect();
        assert_eq!(s, p, "f64 buffer slot {slot} diverged ({threads} threads)");
    }
    for (slot, b) in args.bufs_i.iter().enumerate() {
        assert_eq!(
            mem_s.i(*b),
            mem_p.i(*b),
            "i64 buffer slot {slot} diverged ({threads} threads)"
        );
    }
    (serial, par, mem_s, mem_p)
}

fn daxpy_setup(n: usize) -> (DeviceMem, SimArgs) {
    let mut mem = DeviceMem::new();
    let x = mem.alloc_f(n);
    let y = mem.alloc_f(n);
    for i in 0..n {
        mem.f_mut(x)[i] = (i as f64).sin() * 1e3;
        mem.f_mut(y)[i] = 1.0 + i as f64 * 0.25;
    }
    let args = SimArgs {
        bufs_f: vec![x, y],
        bufs_i: vec![],
        params_f: vec![2.5],
        params_i: vec![n as i64],
    };
    (mem, args)
}

fn dgemm_setup(n: usize) -> (DeviceMem, SimArgs) {
    let mut mem = DeviceMem::new();
    let a = mem.alloc_f(n * n);
    let b = mem.alloc_f(n * n);
    let c = mem.alloc_f(n * n);
    for i in 0..n * n {
        mem.f_mut(a)[i] = ((i * 7 + 3) % 13) as f64 * 0.5;
        mem.f_mut(b)[i] = ((i * 5 + 1) % 11) as f64 - 5.0;
    }
    let args = SimArgs {
        bufs_f: vec![a, b, c],
        bufs_i: vec![],
        params_f: vec![],
        params_i: vec![n as i64],
    };
    (mem, args)
}

fn histogram_setup(n: usize, nbins: usize) -> (DeviceMem, SimArgs) {
    let mut mem = DeviceMem::new();
    let data = mem.alloc_i(n);
    let bins = mem.alloc_i(nbins);
    for i in 0..n {
        mem.i_mut(data)[i] = ((i * 2654435761) % 1_000_003) as i64;
    }
    let args = SimArgs {
        bufs_f: vec![],
        bufs_i: vec![data, bins],
        params_f: vec![],
        params_i: vec![n as i64, nbins as i64],
    };
    (mem, args)
}

#[test]
fn daxpy_parallel_matches_serial_bit_for_bit() {
    // e5-2630v3: 8 per-core caches -> up to 8 workers, each owning a
    // disjoint SM subset.
    let spec = DeviceSpec::e5_2630v3();
    let n = 4096;
    let wd = WorkDiv::d1(n / 64, 1, 64);
    for threads in [2, 3, 8] {
        let (_, par, mem, _) = assert_bit_identical(
            &Daxpy,
            &spec,
            &wd,
            || daxpy_setup(n),
            threads,
            ExecMode::Full,
        );
        // And the result is actually right, not just consistently wrong.
        let (_, args) = daxpy_setup(n);
        let y = args.bufs_f[1];
        for i in 0..n {
            // fma in the kernel -> fused rounding in the reference too.
            let want = ((i as f64).sin() * 1e3).mul_add(2.5, 1.0 + i as f64 * 0.25);
            assert_eq!(mem.f(y)[i], want, "i={i}");
        }
        assert!(par.host.workers >= 1);
    }
}

#[test]
fn daxpy_parallel_matches_serial_on_many_sm_device() {
    // Xeon Phi: 60 per-core caches, more SMs than workers.
    let spec = DeviceSpec::xeon_phi_5110p();
    let n = 16384;
    let wd = WorkDiv::d1(n / 32, 1, 32);
    assert_bit_identical(&Daxpy, &spec, &wd, || daxpy_setup(n), 7, ExecMode::Full);
}

#[test]
fn dgemm_parallel_matches_serial_bit_for_bit() {
    let spec = DeviceSpec::e5_2630v3();
    let n: usize = 48; // 2304 threads -> 36 blocks of 64
    let wd = WorkDiv::d1((n * n).div_ceil(64), 1, 64);
    let (_, _, mem, _) =
        assert_bit_identical(&Dgemm, &spec, &wd, || dgemm_setup(n), 4, ExecMode::Full);
    // Spot-check against a host-side reference.
    let (_, args) = dgemm_setup(n);
    let (a, b, c) = (args.bufs_f[0], args.bufs_f[1], args.bufs_f[2]);
    let (ha, hb) = {
        let (m, _) = dgemm_setup(n);
        (m.f(a).to_vec(), m.f(b).to_vec())
    };
    for &(r, col) in &[(0usize, 0usize), (7, 31), (n - 1, n - 1)] {
        let mut want = 0.0f64;
        for k in 0..n {
            want = ha[r * n + k].mul_add(hb[k * n + col], want);
        }
        assert_eq!(mem.f(c)[r * n + col], want, "C[{r},{col}]");
    }
}

#[test]
fn dgemm_sampled_mode_is_deterministic_too() {
    let spec = DeviceSpec::e5_2630v3();
    let n: usize = 64;
    let wd = WorkDiv::d1((n * n).div_ceil(64), 1, 64);
    assert_bit_identical(
        &Dgemm,
        &spec,
        &wd,
        || dgemm_setup(n),
        8,
        ExecMode::SampleBlocks(16),
    );
}

#[test]
fn histogram_atomics_fall_back_to_serial_and_stay_correct() {
    let spec = DeviceSpec::e5_2630v3();
    let n: usize = 10_000;
    let nbins = 32;
    let wd = WorkDiv::d1(n.div_ceil(64), 1, 64);

    let prog = {
        let mut p = trace_kernel(&Histogram, 1);
        optimize(&mut p);
        p
    };
    assert!(
        program_uses_global_atomics(&prog),
        "histogram must be detected as an atomics kernel"
    );

    let (_, par, mem, _) = assert_bit_identical(
        &Histogram,
        &spec,
        &wd,
        || histogram_setup(n, nbins),
        8,
        ExecMode::Full,
    );
    // Serial fallback: one interpreter worker regardless of the request.
    assert_eq!(par.host.workers, 1);
    let (_, args) = histogram_setup(n, nbins);
    let bins = args.bufs_i[1];
    assert_eq!(mem.i(bins).iter().sum::<i64>(), n as i64);
    // Host-side reference histogram.
    let (ref_mem, _) = histogram_setup(n, nbins);
    let data = args.bufs_i[0];
    let mut want = vec![0i64; nbins];
    for &v in ref_mem.i(data) {
        want[(v % nbins as i64) as usize] += 1;
    }
    assert_eq!(mem.i(bins), &want[..]);
}

#[test]
fn shared_cache_gpu_spec_falls_back_to_serial() {
    // K20 models one device-wide L2: hit/miss counts depend on the global
    // interleaving, so the parallel path must decline.
    let spec = DeviceSpec::k20();
    let n = 2048;
    let wd = WorkDiv::d1(n / 128, 128, 1);
    let (_, par, _, _) =
        assert_bit_identical(&Daxpy, &spec, &wd, || daxpy_setup(n), 8, ExecMode::Full);
    assert_eq!(par.host.workers, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (n, elems-per-thread, team size) combination agrees with serial.
    #[test]
    fn daxpy_determinism_holds_for_arbitrary_shapes(
        n in 1usize..3000,
        elems in 1usize..96,
        threads in 2usize..9,
    ) {
        let spec = DeviceSpec::e5_2630v3();
        let blocks = n.div_ceil(elems).max(1);
        let wd = WorkDiv::d1(blocks, 1, elems);
        assert_bit_identical(&Daxpy, &spec, &wd, || daxpy_setup(n), threads, ExecMode::Full);
    }
}

#[test]
fn env_var_override_of_one_matches_serial() {
    // This is the only test in this binary that touches the process
    // environment; everything else passes thread counts explicitly.
    let spec = DeviceSpec::e5_2630v3();
    std::env::set_var("ALPAKA_SIM_THREADS", "1");
    assert_eq!(resolve_sim_threads(8), 1);
    std::env::set_var("ALPAKA_SIM_THREADS", "6");
    assert_eq!(resolve_sim_threads(1), 6);
    std::env::set_var("ALPAKA_SIM_THREADS", "not-a-number");
    assert_eq!(resolve_sim_threads(3), 3);
    std::env::set_var("ALPAKA_SIM_THREADS", "0");
    assert_eq!(resolve_sim_threads(3), 3);
    std::env::remove_var("ALPAKA_SIM_THREADS");
    assert_eq!(resolve_sim_threads(spec.sim_threads), 1);
}
