//! Deterministic parallel atomics: reducible atomic programs must run the
//! parallel block path and stay *bit-identical* — buffers (float rounding
//! included), `LaunchStats` and `TimeBreakdown` — across all three engines
//! and `ALPAKA_SIM_THREADS` ∈ {1, 2, 4, 8}, and identical to the serial
//! reference. Non-reducible programs (Exch, observed results, plainly
//! accessed targets, aliased bindings) must keep the serial fallback and
//! record why on `SimReport::fallback`.
//!
//! NOTE: kernels are defined locally because `alpaka-kernels` sits above
//! this crate in the dependency graph.

use alpaka_core::kernel::Kernel;
use alpaka_core::ops::{KernelOps, KernelOpsExt};
use alpaka_core::workdiv::WorkDiv;
use alpaka_kir::{atomics_summary, optimize, trace_kernel, AtomicsSummary};
use alpaka_sim::{
    run_kernel_launch_engine, DeviceMem, DeviceSpec, Engine, ExecMode, FallbackReason, SimArgs,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

/// Guard-free integer histogram: extent exactly covers the data, the bin is
/// data-dependent, every sample is one `Add` atomic. Single-operator i64
/// target → the shadow-reduction strategy; the straight-line body is also
/// what the compiled tier fuses into an atomic superop loop.
struct HistExact;
impl Kernel for HistExact {
    fn name(&self) -> &str {
        "hist_exact"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let data = o.buf_i(0);
        let bins = o.buf_i(1);
        let nbins = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let val = o.ld_gi(data, i);
            let bin = o.rem_i(val, nbins);
            let one = o.lit_i(1);
            o.atomic_add_gi(bins, bin, one);
        });
    }
}

/// Guard-free float scatter-add with colliding, data-independent bins:
/// `out[i % nbins] += x[i]`. Floats always take the ordered-log strategy,
/// so this pins the replay order (= serial application order) bit for bit.
struct ScatterAddF;
impl Kernel for ScatterAddF {
    fn name(&self) -> &str {
        "scatter_add_f"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let x = o.buf_f(0);
        let out = o.buf_f(1);
        let nbins = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let xv = o.ld_gf(x, i);
            let bin = o.rem_i(i, nbins);
            let _ = o.atomic_add_gf(out, bin, xv);
        });
    }
}

/// Affine-index scatter-accumulate `out[i + offset] += src[i]` — the shape
/// whose index `add` the compiled tier folds into the atomic superop.
struct ScatterAffine;
impl Kernel for ScatterAffine {
    fn name(&self) -> &str {
        "scatter_affine"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let src = o.buf_f(0);
        let out = o.buf_f(1);
        let offset = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let xv = o.ld_gf(src, i);
            let j = o.add_i(i, offset);
            let _ = o.atomic_add_gf(out, j, xv);
        });
    }
}

/// Min/Max/And/Or/Xor each on its own i64 target — five single-operator
/// shadow reductions in one launch.
struct ReduceOpsKernel;
impl Kernel for ReduceOpsKernel {
    fn name(&self) -> &str {
        "reduce_ops"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let data = o.buf_i(0);
        let mins = o.buf_i(1);
        let maxs = o.buf_i(2);
        let ands = o.buf_i(3);
        let ors = o.buf_i(4);
        let xors = o.buf_i(5);
        let nbins = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let val = o.ld_gi(data, i);
            let bin = o.rem_i(i, nbins);
            o.atomic_min_gi(mins, bin, val);
            o.atomic_max_gi(maxs, bin, val);
            o.atomic_and_gi(ands, bin, val);
            o.atomic_or_gi(ors, bin, val);
            o.atomic_xor_gi(xors, bin, val);
        });
    }
}

/// Add and Min on the *same* i64 target: a mixed-operator integer target,
/// which must take the ordered-log strategy (shadow folding is only exact
/// for a single operator) and still reduce bit-identically.
struct MixedOpsKernel;
impl Kernel for MixedOpsKernel {
    fn name(&self) -> &str {
        "mixed_ops"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let data = o.buf_i(0);
        let bins = o.buf_i(1);
        let nbins = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let val = o.ld_gi(data, i);
            let bin = o.rem_i(i, nbins);
            o.atomic_add_gi(bins, bin, val);
            o.atomic_min_gi(bins, bin, val);
        });
    }
}

/// `Exch` is order-dependent — never reducible, must run serial.
struct ExchKernel;
impl Kernel for ExchKernel {
    fn name(&self) -> &str {
        "exch"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let data = o.buf_i(0);
        let slots = o.buf_i(1);
        let nbins = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let val = o.ld_gi(data, i);
            let bin = o.rem_i(i, nbins);
            let _ = o.atomic_exch_gi(slots, bin, val);
        });
    }
}

/// The atomic's old value feeds a later store — results observed, must run
/// serial (deferral would return 0 instead of the old value).
struct ObservedKernel;
impl Kernel for ObservedKernel {
    fn name(&self) -> &str {
        "observed"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let bins = o.buf_i(0);
        let tickets = o.buf_i(1);
        let nbins = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let bin = o.rem_i(i, nbins);
            let one = o.lit_i(1);
            let old = o.atomic_add_gi(bins, bin, one);
            o.st_gi(tickets, i, old);
        });
    }
}

/// The atomic target is also read with a plain load — privatization would
/// make that load miss earlier deferred updates, must run serial.
struct TargetReadKernel;
impl Kernel for TargetReadKernel {
    fn name(&self) -> &str {
        "target_read"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let bins = o.buf_i(0);
        let mirror = o.buf_i(1);
        let nbins = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let bin = o.rem_i(i, nbins);
            let one = o.lit_i(1);
            o.atomic_add_gi(bins, bin, one);
            let seen = o.ld_gi(bins, bin);
            o.st_gi(mirror, bin, seen);
        });
    }
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

const NBINS: usize = 16;

fn int_data_setup(n: usize, extra_i: &[usize], extra_f: &[usize]) -> (DeviceMem, SimArgs) {
    let mut mem = DeviceMem::new();
    let data = mem.alloc_i(n);
    for i in 0..n {
        mem.i_mut(data)[i] = ((i as u64).wrapping_mul(2654435761) % 1_000_003) as i64;
    }
    let mut bufs_i = vec![data];
    for &len in extra_i {
        bufs_i.push(mem.alloc_i(len));
    }
    let bufs_f = extra_f.iter().map(|&len| mem.alloc_f(len)).collect();
    let args = SimArgs {
        bufs_f,
        bufs_i,
        params_f: vec![],
        params_i: vec![NBINS as i64],
    };
    (mem, args)
}

fn float_scatter_setup(n: usize, out_len: usize, offset: i64) -> (DeviceMem, SimArgs) {
    let mut mem = DeviceMem::new();
    let x = mem.alloc_f(n);
    let out = mem.alloc_f(out_len);
    for i in 0..n {
        // Mixed magnitudes so float addition is measurably non-associative:
        // any change in application order changes the result bits.
        mem.f_mut(x)[i] = if i % 3 == 0 {
            1e16 + i as f64
        } else {
            1.0 + i as f64 * 1e-3
        };
    }
    for i in 0..out_len {
        mem.f_mut(out)[i] = i as f64 * 0.125;
    }
    let args = SimArgs {
        bufs_f: vec![x, out],
        bufs_i: vec![],
        params_f: vec![],
        params_i: vec![if offset >= 0 { offset } else { NBINS as i64 }],
    };
    (mem, args)
}

fn buffer_bits(mem: &DeviceMem, args: &SimArgs) -> (Vec<Vec<u64>>, Vec<Vec<i64>>) {
    let f = args
        .bufs_f
        .iter()
        .map(|b| mem.f(*b).iter().map(|v| v.to_bits()).collect())
        .collect();
    let i = args.bufs_i.iter().map(|b| mem.i(*b).to_vec()).collect();
    (f, i)
}

/// Run `kernel` on every engine × thread-count cell and assert each cell is
/// bit-identical to the serial reference launch. When `expect_parallel`,
/// additionally assert the parallel cells actually engaged a worker team
/// (no silent serial fallback) and report `FallbackReason::None`.
fn assert_matrix<K: Kernel>(
    kernel: &K,
    wd: &WorkDiv,
    setup: impl Fn() -> (DeviceMem, SimArgs),
    expect_parallel: bool,
) {
    let spec = DeviceSpec::e5_2630v3(); // 8 SMs, per-SM caches
    let mut prog = trace_kernel(kernel, wd.dim);
    optimize(&mut prog);

    let (mut mem0, args0) = setup();
    let base = run_kernel_launch_engine(
        &spec,
        &mut mem0,
        &prog,
        wd,
        &args0,
        ExecMode::Full,
        1,
        Engine::Reference,
    )
    .unwrap();
    let (base_f, base_i) = buffer_bits(&mem0, &args0);

    for engine in [Engine::Reference, Engine::Lowered, Engine::Compiled] {
        for threads in [1usize, 2, 4, 8] {
            let (mut mem, args) = setup();
            let rep = run_kernel_launch_engine(
                &spec,
                &mut mem,
                &prog,
                wd,
                &args,
                ExecMode::Full,
                threads,
                engine,
            )
            .unwrap();
            assert_eq!(
                base.stats, rep.stats,
                "LaunchStats diverged: {engine:?} @ {threads} threads"
            );
            assert_eq!(
                base.time, rep.time,
                "TimeBreakdown diverged: {engine:?} @ {threads} threads"
            );
            let (f, i) = buffer_bits(&mem, &args);
            assert_eq!(base_f, f, "f64 buffers diverged: {engine:?} @ {threads}");
            assert_eq!(base_i, i, "i64 buffers diverged: {engine:?} @ {threads}");
            if expect_parallel {
                assert_eq!(
                    rep.fallback,
                    FallbackReason::None,
                    "{engine:?} @ {threads} threads reported a fallback"
                );
                assert_eq!(
                    rep.host.workers, threads,
                    "{engine:?} @ {threads} threads did not engage the team"
                );
            }
        }
    }
}

/// Run at 4 threads and assert the launch fell back to one serial worker
/// with the atomics reason recorded.
fn assert_serial_fallback<K: Kernel>(
    kernel: &K,
    wd: &WorkDiv,
    setup: impl Fn() -> (DeviceMem, SimArgs),
) {
    let spec = DeviceSpec::e5_2630v3();
    let mut prog = trace_kernel(kernel, wd.dim);
    optimize(&mut prog);
    let (mut mem, args) = setup();
    let rep = run_kernel_launch_engine(
        &spec,
        &mut mem,
        &prog,
        wd,
        &args,
        ExecMode::Full,
        4,
        Engine::Compiled,
    )
    .unwrap();
    assert_eq!(rep.host.workers, 1, "non-reducible launch must run serial");
    assert_eq!(rep.fallback, FallbackReason::AtomicsNonReducible);
}

// ---------------------------------------------------------------------------
// Engine × thread matrices
// ---------------------------------------------------------------------------

#[test]
fn int_histogram_is_bit_identical_across_engines_and_threads() {
    // 32 blocks x 1 thread x 16 elements = 512, exact fit.
    let wd = WorkDiv::d1(32, 1, 16);
    assert_matrix(&HistExact, &wd, || int_data_setup(512, &[NBINS], &[]), true);
}

#[test]
fn float_scatter_add_is_bit_identical_across_engines_and_threads() {
    let wd = WorkDiv::d1(32, 1, 16);
    assert_matrix(
        &ScatterAddF,
        &wd,
        || float_scatter_setup(512, NBINS, -1),
        true,
    );
}

#[test]
fn affine_scatter_add_is_bit_identical_across_engines_and_threads() {
    let wd = WorkDiv::d1(32, 1, 16);
    assert_matrix(
        &ScatterAffine,
        &wd,
        || float_scatter_setup(512, 512 + 7, 7),
        true,
    );
}

#[test]
fn min_max_bitop_reductions_are_bit_identical_across_engines_and_threads() {
    let wd = WorkDiv::d1(16, 1, 16);
    assert_matrix(
        &ReduceOpsKernel,
        &wd,
        || int_data_setup(256, &[NBINS, NBINS, NBINS, NBINS, NBINS], &[]),
        true,
    );
}

#[test]
fn mixed_operator_target_takes_log_strategy_and_stays_bit_identical() {
    let wd = WorkDiv::d1(16, 1, 16);
    let mut prog = trace_kernel(&MixedOpsKernel, 1);
    optimize(&mut prog);
    // Sanity: the summary keeps the target reducible but drops its
    // single-operator classification (mixed Add/Min).
    match atomics_summary(&prog) {
        AtomicsSummary::Reducible(targets) => {
            assert_eq!(targets.len(), 1);
            assert_eq!(targets[0].single_op, None);
        }
        other => panic!("expected reducible summary, got {other:?}"),
    }
    assert_matrix(
        &MixedOpsKernel,
        &wd,
        || int_data_setup(256, &[NBINS], &[]),
        true,
    );
}

/// The float-Add rounding pin: with mixed-magnitude values the sum is
/// non-associative, so this only passes if the privatized path applies
/// every deferred add in the serial interpreter's exact order.
#[test]
fn float_add_rounding_matches_serial_exactly_under_privatization() {
    let spec = DeviceSpec::e5_2630v3();
    let wd = WorkDiv::d1(32, 1, 16);
    let mut prog = trace_kernel(&ScatterAddF, 1);
    optimize(&mut prog);

    let (mut mem_s, args_s) = float_scatter_setup(512, NBINS, -1);
    run_kernel_launch_engine(
        &spec,
        &mut mem_s,
        &prog,
        &wd,
        &args_s,
        ExecMode::Full,
        1,
        Engine::Reference,
    )
    .unwrap();
    let serial: Vec<u64> = mem_s
        .f(args_s.bufs_f[1])
        .iter()
        .map(|v| v.to_bits())
        .collect();

    for threads in [2usize, 4, 8] {
        let (mut mem_p, args_p) = float_scatter_setup(512, NBINS, -1);
        let rep = run_kernel_launch_engine(
            &spec,
            &mut mem_p,
            &prog,
            &wd,
            &args_p,
            ExecMode::Full,
            threads,
            Engine::Compiled,
        )
        .unwrap();
        assert_eq!(rep.host.workers, threads);
        let par: Vec<u64> = mem_p
            .f(args_p.bufs_f[1])
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(
            serial, par,
            "float-Add rounding diverged at {threads} threads"
        );
    }
}

// ---------------------------------------------------------------------------
// Non-reducible programs keep the serial fallback, with the reason recorded
// ---------------------------------------------------------------------------

#[test]
fn exch_kernel_falls_back_to_serial_with_reason() {
    let wd = WorkDiv::d1(16, 1, 16);
    assert_serial_fallback(&ExchKernel, &wd, || int_data_setup(256, &[NBINS], &[]));
}

#[test]
fn observed_result_falls_back_to_serial_with_reason() {
    let wd = WorkDiv::d1(16, 1, 16);
    assert_serial_fallback(&ObservedKernel, &wd, || {
        let mut mem = DeviceMem::new();
        let bins = mem.alloc_i(NBINS);
        let tickets = mem.alloc_i(256);
        let args = SimArgs {
            bufs_f: vec![],
            bufs_i: vec![bins, tickets],
            params_f: vec![],
            params_i: vec![NBINS as i64],
        };
        (mem, args)
    });
}

#[test]
fn plain_read_of_target_falls_back_to_serial_with_reason() {
    let wd = WorkDiv::d1(16, 1, 16);
    assert_serial_fallback(&TargetReadKernel, &wd, || {
        let mut mem = DeviceMem::new();
        let bins = mem.alloc_i(NBINS);
        let mirror = mem.alloc_i(NBINS);
        let args = SimArgs {
            bufs_f: vec![],
            bufs_i: vec![bins, mirror],
            params_f: vec![],
            params_i: vec![NBINS as i64],
        };
        (mem, args)
    });
}

/// Binding the same buffer handle to two argument slots makes the static
/// per-slot analysis unsound, so the launch-time plan must refuse and the
/// launch must run serial — even though the program is statically
/// reducible. (Results are still correct via the direct serial path.)
#[test]
fn aliased_target_binding_falls_back_to_serial() {
    let wd = WorkDiv::d1(16, 1, 16);
    assert_serial_fallback(&HistExact, &wd, || {
        let mut mem = DeviceMem::new();
        // Slot 0 (data) and slot 1 (bins) are the SAME allocation.
        let buf = mem.alloc_i(256);
        let args = SimArgs {
            bufs_f: vec![],
            bufs_i: vec![buf, buf],
            params_f: vec![],
            params_i: vec![NBINS as i64],
        };
        (mem, args)
    });
}

// ---------------------------------------------------------------------------
// Random reducible atomic programs
// ---------------------------------------------------------------------------

/// A kernel assembled from a random list of atomic updates over two i64
/// targets and one f64 target. Results are never observed and targets are
/// never plainly accessed, so every generated program is reducible by
/// construction (asserted in the proptest).
#[derive(Debug, Clone)]
struct RandomAtomics {
    ops: Vec<(u8, u8, i64)>,
}

impl Kernel for RandomAtomics {
    fn name(&self) -> &str {
        "random_atomics"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let data = o.buf_i(0);
        let t0 = o.buf_i(1);
        let t1 = o.buf_i(2);
        let tf = o.buf_f(0);
        let nbins = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let val = o.ld_gi(data, i);
            for &(sel, pat, k) in &self.ops {
                let idx = match pat % 3 {
                    0 => o.rem_i(i, nbins),
                    1 => {
                        let seven = o.lit_i(7);
                        let m = o.mul_i(i, seven);
                        o.rem_i(m, nbins)
                    }
                    _ => o.lit_i((pat as i64) % (NBINS as i64)),
                };
                let kk = o.lit_i(k);
                let arg = o.add_i(val, kk);
                match sel % 7 {
                    0 => {
                        o.atomic_add_gi(t0, idx, arg);
                    }
                    1 => {
                        o.atomic_min_gi(t0, idx, arg);
                    }
                    2 => {
                        o.atomic_max_gi(t1, idx, arg);
                    }
                    3 => {
                        o.atomic_and_gi(t1, idx, arg);
                    }
                    4 => {
                        o.atomic_or_gi(t0, idx, arg);
                    }
                    5 => {
                        o.atomic_xor_gi(t1, idx, arg);
                    }
                    _ => {
                        let fv = o.i2f(arg);
                        let _ = o.atomic_add_gf(tf, idx, fv);
                    }
                }
            }
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every randomly assembled reducible atomic program is bit-identical
    /// across engines × {1, 4} threads, and actually runs parallel.
    #[test]
    fn random_reducible_atomic_programs_are_deterministic(
        seeds in proptest::collection::vec(any::<u64>(), 1..5),
    ) {
        // Decode each seed into (op selector, index pattern, value bias).
        let ops: Vec<(u8, u8, i64)> = seeds
            .iter()
            .map(|s| {
                (
                    (s & 0xff) as u8,
                    ((s >> 8) & 0xff) as u8,
                    (((s >> 16) & 0x7f) as i64) - 64,
                )
            })
            .collect();
        let kernel = RandomAtomics { ops };
        let wd = WorkDiv::d1(8, 1, 8);
        let mut prog = trace_kernel(&kernel, 1);
        optimize(&mut prog);
        prop_assert!(
            matches!(atomics_summary(&prog), AtomicsSummary::Reducible(_)),
            "generated program must be reducible"
        );

        let setup = || int_data_setup(64, &[NBINS, NBINS], &[NBINS]);
        let spec = DeviceSpec::e5_2630v3();
        let (mut mem0, args0) = setup();
        let base = run_kernel_launch_engine(
            &spec, &mut mem0, &prog, &wd, &args0, ExecMode::Full, 1, Engine::Reference,
        ).unwrap();
        let base_bits = buffer_bits(&mem0, &args0);
        for engine in [Engine::Reference, Engine::Lowered, Engine::Compiled] {
            for threads in [1usize, 4] {
                let (mut mem, args) = setup();
                let rep = run_kernel_launch_engine(
                    &spec, &mut mem, &prog, &wd, &args, ExecMode::Full, threads, engine,
                ).unwrap();
                prop_assert_eq!(&base.stats, &rep.stats);
                prop_assert_eq!(&base.time, &rep.time);
                prop_assert_eq!(&base_bits, &buffer_bits(&mem, &args));
                prop_assert_eq!(rep.fallback, FallbackReason::None);
                if threads > 1 {
                    prop_assert_eq!(rep.host.workers, threads);
                }
            }
        }
    }
}
