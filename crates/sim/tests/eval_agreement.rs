//! The SIMT interpreter and the single-thread reference evaluator must
//! agree bit-for-bit on every program — for random programs, random grid
//! shapes, and on GPU-style and CPU-style device models alike. This is the
//! contract that makes cross-back-end testability possible.

use alpaka_core::workdiv::WorkDiv;
use alpaka_kir::eval::{eval_thread_fuel, EvalInputs, EvalMem, SpecialValues};
use alpaka_kir::testgen::gen_program;
use alpaka_kir::Program;
use alpaka_sim::{run_kernel_launch, DeviceMem, DeviceSpec, ExecMode, SimArgs};
use proptest::prelude::*;

/// Run a program through the reference evaluator for every (block, thread)
/// of a 1-D launch, in the interpreter's deterministic order (blocks in
/// linear order; within a block, threads in lane order — the interpreter
/// applies side effects lane-by-lane inside each instruction, which for
/// these generated programs is equivalent to running threads in order
/// because every cross-thread touchpoint is a store to a fixed index or an
/// atomic add executed in lane order... for blocks=1, threads=1 it is
/// trivially identical; wider shapes are compared against the interpreter
/// only for single-thread blocks to keep the ordering contract exact).
fn eval_grid(p: &Program, blocks: i64) -> Result<EvalMem, String> {
    let mut mem = EvalMem {
        bufs_f: vec![vec![0.0; 16]],
        bufs_i: vec![],
    };
    for b in 0..blocks {
        let mut sp = SpecialValues::default();
        sp.grid_blocks = [1, 1, blocks];
        sp.block_threads = [1, 1, 1];
        sp.block_idx = [0, 0, b];
        sp.thread_idx = [0, 0, 0];
        let inp = EvalInputs {
            params_f: &[],
            params_i: &[],
            special: sp,
        };
        eval_thread_fuel(p, &inp, &mut mem, 10_000_000)?;
    }
    Ok(mem)
}

fn sim_grid(p: &Program, blocks: usize, spec: &DeviceSpec) -> Result<Vec<f64>, String> {
    let mut mem = DeviceMem::new();
    let buf = mem.alloc_f(16);
    let args = SimArgs {
        bufs_f: vec![buf],
        bufs_i: vec![],
        params_f: vec![],
        params_i: vec![],
    };
    run_kernel_launch(
        spec,
        &mut mem,
        p,
        &WorkDiv::d1(blocks, 1, 1),
        &args,
        ExecMode::Full,
    )
    .map_err(|e| e.to_string())?;
    Ok(mem.f(buf).to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn interpreter_matches_reference_evaluator(
        seed in proptest::collection::vec(any::<u64>(), 4..30),
        len in 3usize..14,
        blocks in 1usize..5,
    ) {
        let p = gen_program(&seed, len);
        let want = eval_grid(&p, blocks as i64).expect("eval");
        for spec in [DeviceSpec::k20(), DeviceSpec::e5_2630v3()] {
            let got = sim_grid(&p, blocks, &spec).expect("sim");
            prop_assert_eq!(
                &got, &want.bufs_f[0],
                "divergence on {} for program:\n{}",
                spec.name, alpaka_kir::print_program(&p)
            );
        }
    }

    #[test]
    fn optimized_programs_agree_too(
        seed in proptest::collection::vec(any::<u64>(), 4..30),
        len in 3usize..14,
    ) {
        let mut p = gen_program(&seed, len);
        alpaka_kir::optimize(&mut p);
        let want = eval_grid(&p, 2).expect("eval");
        let got = sim_grid(&p, 2, &DeviceSpec::k20()).expect("sim");
        prop_assert_eq!(&got, &want.bufs_f[0]);
    }
}

#[test]
fn multi_thread_blocks_agree_for_disjoint_writers() {
    // A handwritten kernel where threads write disjoint cells: thread
    // ordering cannot matter, so wide blocks must agree with the
    // per-thread evaluator too.
    use alpaka_core::kernel::Kernel;
    use alpaka_core::ops::{KernelOps, KernelOpsExt};
    struct Disjoint;
    impl Kernel for Disjoint {
        fn run<O: KernelOps>(&self, o: &mut O) {
            let b = o.buf_f(0);
            let i = o.linear_global_thread_idx();
            let v = o.i2f(i);
            let two = o.lit_f(2.0);
            let r = o.mul_f(v, two);
            o.st_gf(b, i, r);
        }
    }
    let p = alpaka_kir::trace_kernel(&Disjoint, 1);
    let spec = DeviceSpec::k20();
    let mut mem = DeviceMem::new();
    let buf = mem.alloc_f(64);
    let args = SimArgs {
        bufs_f: vec![buf],
        bufs_i: vec![],
        params_f: vec![],
        params_i: vec![],
    };
    run_kernel_launch(
        &spec,
        &mut mem,
        &p,
        &WorkDiv::d1(2, 32, 1),
        &args,
        ExecMode::Full,
    )
    .unwrap();
    for i in 0..64 {
        assert_eq!(mem.f(buf)[i], 2.0 * i as f64);
    }
}
