//! # alpaka-sim
//!
//! Device-simulator substrate for the Alpaka reproduction. It stands in for
//! the GPUs (and, for the Fig. 9 relative-to-peak study, the CPUs) of the
//! paper's Table 3: a block-lockstep SIMT interpreter for the `alpaka-kir`
//! virtual ISA with
//!
//! * warp-granular issue accounting and divergence,
//! * global-memory coalescing into line transactions,
//! * a set-associative LRU cache model (per-core for CPUs, shared L2 for
//!   GPUs),
//! * shared-memory bank-conflict accounting,
//! * element-loop vectorization detection for CPU device models, and
//! * a roofline timing model (compute / memory / issue) with an
//!   occupancy-based latency-hiding factor.
//!
//! See `DESIGN.md` for why this substitution preserves the behaviours the
//! paper's evaluation measures.

pub mod atomics;
pub mod cache;
pub mod compile;
pub mod fault;
pub mod interp;
pub mod lower;
pub mod memory;
pub mod metrics;
pub mod profile;
pub mod spec;
pub mod stats;

pub use atomics::{non_reducible_reason_str, FallbackReason};
pub use cache::CacheSim;
pub use compile::compile_cache_counters;
pub use fault::{EccCtx, FaultPlan, SimError, SimErrorKind};
pub use interp::{
    program_uses_global_atomics, resolve_sim_engine, resolve_sim_threads, run_kernel_launch,
    run_kernel_launch_engine, run_kernel_launch_faulty, run_kernel_launch_threads, AttemptRecord,
    Engine, ExecMode, HostPerf, LaunchFaults, ResilienceInfo, SimArgs, SimReport,
};
pub use lower::{lower, lowering_cache_counters, CacheCounters, WarpProgram};
pub use memory::{DeviceMem, SharedMem, SimBufF, SimBufI};
pub use profile::{InstrCounters, KernelProfile, Numbering};
pub use spec::{CacheScope, DeviceSpec};
pub use stats::{estimate_time, transfer_time, LaunchStats, TimeBreakdown};

#[cfg(test)]
mod tests {
    use super::*;
    use alpaka_core::kernel::Kernel;
    use alpaka_core::ops::{KernelOps, KernelOpsExt};
    use alpaka_core::workdiv::WorkDiv;
    use alpaka_kir::{optimize, trace_kernel};

    struct Daxpy;
    impl Kernel for Daxpy {
        fn name(&self) -> &str {
            "daxpy"
        }
        fn run<O: KernelOps>(&self, o: &mut O) {
            let x = o.buf_f(0);
            let y = o.buf_f(1);
            let a = o.param_f(0);
            let n = o.param_i(0);
            let gid = o.global_thread_idx(0);
            let v = o.thread_elem_extent(0);
            let base = o.mul_i(gid, v);
            o.for_elements(0, |o, e| {
                let i = o.add_i(base, e);
                let c = o.lt_i(i, n);
                o.if_(c, |o| {
                    let xv = o.ld_gf(x, i);
                    let yv = o.ld_gf(y, i);
                    let r = o.fma_f(xv, a, yv);
                    o.st_gf(y, i, r);
                });
            });
        }
    }

    fn daxpy_setup(n: usize) -> (DeviceMem, SimArgs) {
        let mut mem = DeviceMem::new();
        let x = mem.alloc_f(n);
        let y = mem.alloc_f(n);
        for i in 0..n {
            mem.f_mut(x)[i] = i as f64;
            mem.f_mut(y)[i] = 1.0;
        }
        let args = SimArgs {
            bufs_f: vec![x, y],
            bufs_i: vec![],
            params_f: vec![2.0],
            params_i: vec![n as i64],
        };
        (mem, args)
    }

    #[test]
    fn daxpy_on_simulated_k20_is_correct() {
        let spec = DeviceSpec::k20();
        let n = 1000;
        let (mut mem, args) = daxpy_setup(n);
        let mut prog = trace_kernel(&Daxpy, 1);
        optimize(&mut prog);
        // 128 threads/block, 1 elem: ceil(1000/128) = 8 blocks.
        let wd = WorkDiv::d1(8, 128, 1);
        let report = run_kernel_launch(&spec, &mut mem, &prog, &wd, &args, ExecMode::Full).unwrap();
        let y = args.bufs_f[1];
        for i in 0..n {
            assert_eq!(mem.f(y)[i], 2.0 * i as f64 + 1.0, "i={i}");
        }
        assert_eq!(report.stats.blocks, 8);
        assert_eq!(report.stats.threads, 8 * 128);
        // 2 loads + 1 store per valid element.
        assert_eq!(report.stats.global_loads, 2 * 1000);
        assert_eq!(report.stats.global_stores, 1000);
        // FMA = 2 flops per element.
        assert_eq!(report.stats.total_flops(), 2 * 1000);
        assert!(report.time.total_s > 0.0);
    }

    #[test]
    fn daxpy_on_simulated_cpu_vectorizes_element_loop() {
        let spec = DeviceSpec::e5_2630v3();
        let n = 4096;
        let (mut mem, args) = daxpy_setup(n);
        let prog = trace_kernel(&Daxpy, 1);
        // CPU mapping: blocks of 1 thread, 64 elements each.
        let wd = WorkDiv::d1(n / 64, 1, 64);
        let report = run_kernel_launch(&spec, &mut mem, &prog, &wd, &args, ExecMode::Full).unwrap();
        let y = args.bufs_f[1];
        for i in 0..n {
            assert_eq!(mem.f(y)[i], 2.0 * i as f64 + 1.0);
        }
        // The element loop is unit-stride: the bulk of the flops must be
        // classified as vectorized.
        assert!(
            report.stats.vec_flops > report.stats.scalar_flops * 10,
            "vec {} vs scalar {}",
            report.stats.vec_flops,
            report.stats.scalar_flops
        );
    }

    struct StridedDaxpy;
    impl Kernel for StridedDaxpy {
        fn name(&self) -> &str {
            "daxpy_strided"
        }
        fn run<O: KernelOps>(&self, o: &mut O) {
            // Same math, but elements strided by the grid extent: the
            // element loop is NOT unit-stride.
            let x = o.buf_f(0);
            let y = o.buf_f(1);
            let a = o.param_f(0);
            let n = o.param_i(0);
            let gid = o.global_thread_idx(0);
            let gext = o.global_thread_extent(0);
            o.for_elements(0, |o, e| {
                let off = o.mul_i(e, gext);
                let i = o.add_i(gid, off);
                let c = o.lt_i(i, n);
                o.if_(c, |o| {
                    let xv = o.ld_gf(x, i);
                    let yv = o.ld_gf(y, i);
                    let r = o.fma_f(xv, a, yv);
                    o.st_gf(y, i, r);
                });
            });
        }
    }

    #[test]
    fn strided_element_loop_is_not_vectorized() {
        let spec = DeviceSpec::e5_2630v3();
        let n = 4096;
        let (mut mem, args) = daxpy_setup(n);
        let prog = trace_kernel(&StridedDaxpy, 1);
        let wd = WorkDiv::d1(8, 1, n / 8);
        let report = run_kernel_launch(&spec, &mut mem, &prog, &wd, &args, ExecMode::Full).unwrap();
        let y = args.bufs_f[1];
        for i in 0..n {
            assert_eq!(mem.f(y)[i], 2.0 * i as f64 + 1.0);
        }
        assert_eq!(report.stats.vec_flops, 0, "{:?}", report.stats);
    }

    #[test]
    fn coalesced_vs_strided_transactions_on_gpu() {
        // Warp reads 32 consecutive f64 -> 2 x 128B transactions.
        // Warp reads 32 f64 strided by 32 -> 32 transactions.
        struct Gather {
            stride: i64,
        }
        impl Kernel for Gather {
            fn run<O: KernelOps>(&self, o: &mut O) {
                let src = o.buf_f(0);
                let dst = o.buf_f(1);
                let tid = o.thread_idx(0);
                let stride = o.lit_i(self.stride);
                let i = o.mul_i(tid, stride);
                let v = o.ld_gf(src, i);
                o.st_gf(dst, tid, v);
            }
        }
        let spec = DeviceSpec::k20();
        let run = |stride: i64| {
            let mut mem = DeviceMem::new();
            let src = mem.alloc_f(32 * 32);
            let dst = mem.alloc_f(32);
            let args = SimArgs {
                bufs_f: vec![src, dst],
                bufs_i: vec![],
                params_f: vec![],
                params_i: vec![],
            };
            let prog = trace_kernel(&Gather { stride }, 1);
            let wd = WorkDiv::d1(1, 32, 1);
            run_kernel_launch(&spec, &mut mem, &prog, &wd, &args, ExecMode::Full)
                .unwrap()
                .stats
        };
        let coalesced = run(1);
        let strided = run(32);
        assert!(
            strided.mem_transactions >= coalesced.mem_transactions + 28,
            "coalesced {} vs strided {}",
            coalesced.mem_transactions,
            strided.mem_transactions
        );
    }

    #[test]
    fn divergence_is_detected() {
        struct Divergent;
        impl Kernel for Divergent {
            fn run<O: KernelOps>(&self, o: &mut O) {
                let b = o.buf_f(0);
                let tid = o.thread_idx(0);
                let two = o.lit_i(2);
                let r = o.rem_i(tid, two);
                let one = o.lit_i(1);
                let odd = o.eq_i(r, one);
                o.if_else(
                    odd,
                    |o| {
                        let v = o.lit_f(1.0);
                        o.st_gf(b, tid, v);
                    },
                    |o| {
                        let v = o.lit_f(2.0);
                        o.st_gf(b, tid, v);
                    },
                );
            }
        }
        let spec = DeviceSpec::k20();
        let mut mem = DeviceMem::new();
        let buf = mem.alloc_f(64);
        let args = SimArgs {
            bufs_f: vec![buf],
            bufs_i: vec![],
            params_f: vec![],
            params_i: vec![],
        };
        let prog = trace_kernel(&Divergent, 1);
        let wd = WorkDiv::d1(1, 64, 1);
        let report = run_kernel_launch(&spec, &mut mem, &prog, &wd, &args, ExecMode::Full).unwrap();
        assert!(report.stats.divergent_branches >= 2);
        for t in 0..64 {
            assert_eq!(mem.f(buf)[t], if t % 2 == 1 { 1.0 } else { 2.0 });
        }
    }

    #[test]
    fn sync_in_divergent_flow_is_an_error() {
        struct BadSync;
        impl Kernel for BadSync {
            fn run<O: KernelOps>(&self, o: &mut O) {
                let tid = o.thread_idx(0);
                let one = o.lit_i(1);
                let c = o.lt_i(tid, one);
                o.if_(c, |o| o.sync_block_threads());
            }
        }
        let spec = DeviceSpec::k20();
        let mut mem = DeviceMem::new();
        let prog = trace_kernel(&BadSync, 1);
        let wd = WorkDiv::d1(1, 32, 1);
        let args = SimArgs::default();
        let err =
            run_kernel_launch(&spec, &mut mem, &prog, &wd, &args, ExecMode::Full).unwrap_err();
        assert!(err.to_string().contains("divergent"), "{err}");
    }

    #[test]
    fn shared_memory_reduction_matches_reference() {
        struct BlockSum;
        impl Kernel for BlockSum {
            fn run<O: KernelOps>(&self, o: &mut O) {
                let input = o.buf_f(0);
                let out = o.buf_f(1);
                let sh = o.shared_f(64);
                let tid = o.thread_idx(0);
                let bid = o.block_idx(0);
                let bdim = o.block_thread_extent(0);
                let base = o.mul_i(bid, bdim);
                let gid = o.add_i(base, tid);
                let v = o.ld_gf(input, gid);
                o.st_sf(sh, tid, v);
                o.sync_block_threads();
                let two = o.lit_i(2);
                let s0 = o.div_i(bdim, two);
                let s = o.var_i(s0);
                o.while_(
                    |o| {
                        let sv = o.vget_i(s);
                        let z = o.lit_i(0);
                        o.gt_i(sv, z)
                    },
                    |o| {
                        let sv = o.vget_i(s);
                        let c = o.lt_i(tid, sv);
                        o.if_(c, |o| {
                            let j = o.add_i(tid, sv);
                            let a = o.ld_sf(sh, tid);
                            let b = o.ld_sf(sh, j);
                            let sum = o.add_f(a, b);
                            o.st_sf(sh, tid, sum);
                        });
                        o.sync_block_threads();
                        let two = o.lit_i(2);
                        let nx = o.div_i(sv, two);
                        o.vset_i(s, nx);
                    },
                );
                let z = o.lit_i(0);
                let is0 = o.eq_i(tid, z);
                o.if_(is0, |o| {
                    let z2 = o.lit_i(0);
                    let total = o.ld_sf(sh, z2);
                    o.st_gf(out, bid, total);
                });
            }
        }
        let spec = DeviceSpec::k20();
        let mut mem = DeviceMem::new();
        let n = 256;
        let input = mem.alloc_f(n);
        let out = mem.alloc_f(4);
        for i in 0..n {
            mem.f_mut(input)[i] = i as f64;
        }
        let args = SimArgs {
            bufs_f: vec![input, out],
            bufs_i: vec![],
            params_f: vec![],
            params_i: vec![],
        };
        let prog = trace_kernel(&BlockSum, 1);
        let wd = WorkDiv::d1(4, 64, 1);
        let report = run_kernel_launch(&spec, &mut mem, &prog, &wd, &args, ExecMode::Full).unwrap();
        let total: f64 = mem.f(out).iter().sum();
        assert_eq!(total, (n * (n - 1) / 2) as f64);
        assert!(report.stats.syncs > 0);
        assert!(report.stats.shared_accesses > 0);
    }

    #[test]
    fn block_sampling_extrapolates_stats() {
        let spec = DeviceSpec::k20();
        let n = 1 << 14;
        let (mut mem, args) = daxpy_setup(n);
        let prog = trace_kernel(&Daxpy, 1);
        let wd = WorkDiv::d1(n / 128, 128, 1);
        let full = run_kernel_launch(&spec, &mut mem, &prog, &wd, &args, ExecMode::Full).unwrap();
        let (mut mem2, args2) = daxpy_setup(n);
        let sampled = run_kernel_launch(
            &spec,
            &mut mem2,
            &prog,
            &wd,
            &args2,
            ExecMode::SampleBlocks(8),
        )
        .unwrap();
        assert!(sampled.sampled);
        let rel = |a: u64, b: u64| (a as f64 - b as f64).abs() / (b as f64);
        assert!(rel(sampled.stats.total_flops(), full.stats.total_flops()) < 0.05);
        assert!(rel(sampled.stats.global_loads, full.stats.global_loads) < 0.05);
        // Simulated time within 20% of the full run.
        let tr = (sampled.time.total_s - full.time.total_s).abs() / full.time.total_s;
        assert!(tr < 0.2, "time rel err {tr}");
    }

    #[test]
    fn atomics_accumulate_deterministically() {
        struct AtomicSum;
        impl Kernel for AtomicSum {
            fn run<O: KernelOps>(&self, o: &mut O) {
                let acc = o.buf_f(0);
                let tid = o.linear_global_thread_idx();
                let v = o.i2f(tid);
                let z = o.lit_i(0);
                let _ = o.atomic_add_gf(acc, z, v);
            }
        }
        let spec = DeviceSpec::k20();
        let mut mem = DeviceMem::new();
        let acc = mem.alloc_f(1);
        let args = SimArgs {
            bufs_f: vec![acc],
            bufs_i: vec![],
            params_f: vec![],
            params_i: vec![],
        };
        let prog = trace_kernel(&AtomicSum, 1);
        let wd = WorkDiv::d1(4, 64, 1);
        let report = run_kernel_launch(&spec, &mut mem, &prog, &wd, &args, ExecMode::Full).unwrap();
        assert_eq!(mem.f(acc)[0], (255 * 256 / 2) as f64);
        assert_eq!(report.stats.atomics, 256);
    }

    #[test]
    fn oob_reports_block() {
        struct Bad;
        impl Kernel for Bad {
            fn run<O: KernelOps>(&self, o: &mut O) {
                let b = o.buf_f(0);
                let i = o.lit_i(10_000);
                let v = o.lit_f(0.0);
                o.st_gf(b, i, v);
            }
        }
        let spec = DeviceSpec::k20();
        let mut mem = DeviceMem::new();
        let buf = mem.alloc_f(4);
        let args = SimArgs {
            bufs_f: vec![buf],
            bufs_i: vec![],
            params_f: vec![],
            params_i: vec![],
        };
        let prog = trace_kernel(&Bad, 1);
        let err = run_kernel_launch(
            &spec,
            &mut mem,
            &prog,
            &WorkDiv::d1(1, 1, 1),
            &args,
            ExecMode::Full,
        )
        .unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
        assert_eq!(err.block, Some([0, 0, 0]));
        assert_eq!(err.thread, Some([0, 0, 0]));
    }

    #[test]
    fn bank_conflicts_counted() {
        // All 32 lanes hit shared[lane * 32] -> same bank, 32-way conflict.
        struct Conflict;
        impl Kernel for Conflict {
            fn run<O: KernelOps>(&self, o: &mut O) {
                let sh = o.shared_f(32 * 32);
                let tid = o.thread_idx(0);
                let s = o.lit_i(32);
                let i = o.mul_i(tid, s);
                let v = o.i2f(tid);
                o.st_sf(sh, i, v);
            }
        }
        let spec = DeviceSpec::k20();
        let mut mem = DeviceMem::new();
        let prog = trace_kernel(&Conflict, 1);
        let report = run_kernel_launch(
            &spec,
            &mut mem,
            &prog,
            &WorkDiv::d1(1, 32, 1),
            &SimArgs::default(),
            ExecMode::Full,
        )
        .unwrap();
        assert_eq!(report.stats.bank_conflict_cycles, 31);
    }
}
