//! Simulated device global memory.
//!
//! Buffers live in a per-device table; each allocation is assigned a
//! disjoint *virtual byte address range* so the coalescing and cache models
//! can reason about addresses exactly like real hardware would.
//!
//! Element accessors are *checked*: an out-of-range buffer handle or index
//! surfaces as a structured [`SimError`] (`BadBuffer`) instead of a panic,
//! so host-side misuse degrades into an error the caller can handle.

use crate::fault::SimError;

/// Global memory of one simulated device.
#[derive(Debug, Default)]
pub struct DeviceMem {
    bufs_f: Vec<Vec<f64>>,
    bufs_i: Vec<Vec<i64>>,
    base_f: Vec<u64>,
    base_i: Vec<u64>,
    next_base: u64,
}

/// Handle to a simulated f64 buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimBufF(pub usize);
/// Handle to a simulated i64 buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimBufI(pub usize);

const BASE_ALIGN: u64 = 256;

impl DeviceMem {
    pub fn new() -> Self {
        DeviceMem {
            next_base: BASE_ALIGN,
            ..Default::default()
        }
    }

    fn bump(&mut self, bytes: u64) -> u64 {
        let base = self.next_base;
        self.next_base += bytes.div_ceil(BASE_ALIGN) * BASE_ALIGN + BASE_ALIGN;
        base
    }

    pub fn alloc_f(&mut self, len: usize) -> SimBufF {
        let base = self.bump(len as u64 * 8);
        self.bufs_f.push(vec![0.0; len]);
        self.base_f.push(base);
        SimBufF(self.bufs_f.len() - 1)
    }

    pub fn alloc_i(&mut self, len: usize) -> SimBufI {
        let base = self.bump(len as u64 * 8);
        self.bufs_i.push(vec![0; len]);
        self.base_i.push(base);
        SimBufI(self.bufs_i.len() - 1)
    }

    pub fn f(&self, b: SimBufF) -> &[f64] {
        &self.bufs_f[b.0]
    }
    pub fn f_mut(&mut self, b: SimBufF) -> &mut Vec<f64> {
        &mut self.bufs_f[b.0]
    }
    pub fn i(&self, b: SimBufI) -> &[i64] {
        &self.bufs_i[b.0]
    }
    pub fn i_mut(&mut self, b: SimBufI) -> &mut Vec<i64> {
        &mut self.bufs_i[b.0]
    }

    /// Checked variants of the slice accessors: an unknown buffer handle
    /// (e.g. one minted by a different device) is a `BadBuffer` error
    /// instead of a panic.
    pub fn try_f(&self, b: SimBufF) -> Result<&[f64], SimError> {
        self.bufs_f
            .get(b.0)
            .map(|v| v.as_slice())
            .ok_or_else(|| SimError::bad_buffer(format!("unknown f64 buffer handle {}", b.0)))
    }
    pub fn try_f_mut(&mut self, b: SimBufF) -> Result<&mut Vec<f64>, SimError> {
        self.bufs_f
            .get_mut(b.0)
            .ok_or_else(|| SimError::bad_buffer(format!("unknown f64 buffer handle {}", b.0)))
    }
    pub fn try_i(&self, b: SimBufI) -> Result<&[i64], SimError> {
        self.bufs_i
            .get(b.0)
            .map(|v| v.as_slice())
            .ok_or_else(|| SimError::bad_buffer(format!("unknown i64 buffer handle {}", b.0)))
    }
    pub fn try_i_mut(&mut self, b: SimBufI) -> Result<&mut Vec<i64>, SimError> {
        self.bufs_i
            .get_mut(b.0)
            .ok_or_else(|| SimError::bad_buffer(format!("unknown i64 buffer handle {}", b.0)))
    }

    /// Virtual byte address of element `idx` of an f64 buffer.
    #[inline]
    pub fn addr_f(&self, b: SimBufF, idx: u64) -> u64 {
        self.base_f[b.0] + idx * 8
    }
    #[inline]
    pub fn addr_i(&self, b: SimBufI, idx: u64) -> u64 {
        self.base_i[b.0] + idx * 8
    }

    /// Total bytes currently allocated (diagnostics).
    pub fn allocated_bytes(&self) -> usize {
        self.bufs_f.iter().map(|b| b.len() * 8).sum::<usize>()
            + self.bufs_i.iter().map(|b| b.len() * 8).sum::<usize>()
    }

    /// A view that multiple interpreter workers can read and write
    /// concurrently. Borrows the memory mutably, so no `&mut DeviceMem`
    /// access is possible while the view is alive.
    pub fn shared_view(&mut self) -> SharedMem<'_> {
        SharedMem {
            bufs_f: self
                .bufs_f
                .iter_mut()
                .map(|b| (b.as_mut_ptr(), b.len()))
                .collect(),
            bufs_i: self
                .bufs_i
                .iter_mut()
                .map(|b| (b.as_mut_ptr(), b.len()))
                .collect(),
            base_f: &self.base_f,
            base_i: &self.base_i,
            _mem: std::marker::PhantomData,
        }
    }
}

/// Concurrent element-wise view of a [`DeviceMem`] for parallel block
/// interpretation.
///
/// Every element access goes through a relaxed `AtomicU64` (same size and
/// alignment as the stored `f64`/`i64`), so concurrent accesses to the
/// *same* element are well-defined even if a simulated kernel races on it
/// (the simulator's parallel path additionally refuses kernels with global
/// atomics, see `alpaka_sim::interp`). On x86-64 a relaxed load/store
/// compiles to a plain `mov`, so the serial interpreter path loses nothing.
pub struct SharedMem<'a> {
    bufs_f: Vec<(*mut f64, usize)>,
    bufs_i: Vec<(*mut i64, usize)>,
    base_f: &'a [u64],
    base_i: &'a [u64],
    _mem: std::marker::PhantomData<&'a mut DeviceMem>,
}

// SAFETY: the raw buffer pointers come from a `&mut DeviceMem` borrowed for
// the view's lifetime, so nothing else touches the buffers while workers
// hold `&SharedMem`; element accesses themselves are atomic.
unsafe impl Send for SharedMem<'_> {}
unsafe impl Sync for SharedMem<'_> {}

impl SharedMem<'_> {
    #[inline]
    fn cell_f(&self, b: SimBufF, idx: usize) -> Result<&std::sync::atomic::AtomicU64, SimError> {
        let &(ptr, len) = self
            .bufs_f
            .get(b.0)
            .ok_or_else(|| SimError::bad_buffer(format!("unknown f64 buffer handle {}", b.0)))?;
        if idx >= len {
            return Err(SimError::bad_buffer(format!(
                "f64 buffer index {idx} out of bounds ({len})"
            )));
        }
        // SAFETY: in-bounds element of a live, 8-aligned f64 allocation.
        Ok(unsafe { std::sync::atomic::AtomicU64::from_ptr(ptr.add(idx) as *mut u64) })
    }

    #[inline]
    fn cell_i(&self, b: SimBufI, idx: usize) -> Result<&std::sync::atomic::AtomicU64, SimError> {
        let &(ptr, len) = self
            .bufs_i
            .get(b.0)
            .ok_or_else(|| SimError::bad_buffer(format!("unknown i64 buffer handle {}", b.0)))?;
        if idx >= len {
            return Err(SimError::bad_buffer(format!(
                "i64 buffer index {idx} out of bounds ({len})"
            )));
        }
        // SAFETY: in-bounds element of a live, 8-aligned i64 allocation.
        Ok(unsafe { std::sync::atomic::AtomicU64::from_ptr(ptr.add(idx) as *mut u64) })
    }

    /// Raw pointer + length of a buffer, for the compiled engine's
    /// pre-resolved access sites (element accesses stay relaxed-atomic).
    #[inline]
    pub(crate) fn raw_f(&self, b: SimBufF) -> (*mut f64, usize) {
        self.bufs_f[b.0]
    }
    #[inline]
    pub(crate) fn raw_i(&self, b: SimBufI) -> (*mut i64, usize) {
        self.bufs_i[b.0]
    }

    #[inline]
    pub fn len_f(&self, b: SimBufF) -> usize {
        self.bufs_f[b.0].1
    }
    #[inline]
    pub fn len_i(&self, b: SimBufI) -> usize {
        self.bufs_i[b.0].1
    }

    #[inline]
    pub fn read_f(&self, b: SimBufF, idx: usize) -> Result<f64, SimError> {
        Ok(f64::from_bits(
            self.cell_f(b, idx)?
                .load(std::sync::atomic::Ordering::Relaxed),
        ))
    }
    #[inline]
    pub fn write_f(&self, b: SimBufF, idx: usize, v: f64) -> Result<(), SimError> {
        self.cell_f(b, idx)?
            .store(v.to_bits(), std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }
    #[inline]
    pub fn read_i(&self, b: SimBufI, idx: usize) -> Result<i64, SimError> {
        Ok(self
            .cell_i(b, idx)?
            .load(std::sync::atomic::Ordering::Relaxed) as i64)
    }
    #[inline]
    pub fn write_i(&self, b: SimBufI, idx: usize, v: i64) -> Result<(), SimError> {
        self.cell_i(b, idx)?
            .store(v as u64, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    #[inline]
    pub fn addr_f(&self, b: SimBufF, idx: u64) -> u64 {
        self.base_f[b.0] + idx * 8
    }
    #[inline]
    pub fn addr_i(&self, b: SimBufI, idx: u64) -> u64 {
        self.base_i[b.0] + idx * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_get_disjoint_address_ranges() {
        let mut m = DeviceMem::new();
        let a = m.alloc_f(100);
        let b = m.alloc_f(100);
        let end_a = m.addr_f(a, 99) + 8;
        let start_b = m.addr_f(b, 0);
        assert!(start_b >= end_a, "ranges overlap");
        assert_eq!(m.addr_f(a, 1) - m.addr_f(a, 0), 8);
    }

    #[test]
    fn mixed_type_allocations() {
        let mut m = DeviceMem::new();
        let f = m.alloc_f(4);
        let i = m.alloc_i(4);
        m.f_mut(f)[2] = 1.5;
        m.i_mut(i)[3] = -7;
        assert_eq!(m.f(f)[2], 1.5);
        assert_eq!(m.i(i)[3], -7);
        assert_eq!(m.allocated_bytes(), 64);
        assert_ne!(m.addr_f(f, 0), m.addr_i(i, 0));
    }

    #[test]
    fn shared_view_round_trips_and_is_concurrent() {
        let mut m = DeviceMem::new();
        let f = m.alloc_f(64);
        let i = m.alloc_i(64);
        m.f_mut(f)[1] = 2.5;
        {
            let view = m.shared_view();
            assert_eq!(view.len_f(f), 64);
            assert_eq!(view.read_f(f, 1).unwrap(), 2.5);
            assert_eq!(view.addr_f(f, 3) - view.addr_f(f, 0), 24);
            std::thread::scope(|s| {
                for w in 0..4usize {
                    let view = &view;
                    s.spawn(move || {
                        for k in (w..64).step_by(4) {
                            view.write_f(f, k, k as f64).unwrap();
                            view.write_i(i, k, -(k as i64)).unwrap();
                        }
                    });
                }
            });
        }
        assert!((0..64).all(|k| m.f(f)[k] == k as f64 && m.i(i)[k] == -(k as i64)));
    }

    #[test]
    fn host_oob_is_an_error_not_a_panic() {
        use crate::fault::SimErrorKind;
        let mut m = DeviceMem::new();
        let f = m.alloc_f(4);
        let i = m.alloc_i(4);
        let view = m.shared_view();
        let e = view.read_f(f, 4).unwrap_err();
        assert_eq!(e.kind, SimErrorKind::BadBuffer);
        assert!(e.msg.contains("out of bounds"), "{e}");
        assert!(view.write_f(f, 99, 0.0).is_err());
        assert!(view.read_i(i, 4).is_err());
        assert!(view.write_i(i, 4, 0).is_err());
        // Unknown handles (e.g. from another device) also error.
        assert!(view.read_f(SimBufF(7), 0).is_err());
        drop(view);
        assert!(m.try_f(SimBufF(7)).is_err());
        assert!(m.try_i_mut(SimBufI(7)).is_err());
        assert!(m.try_f(f).is_ok());
        assert_eq!(m.try_i(i).unwrap().len(), 4);
    }

    #[test]
    fn bases_are_aligned() {
        let mut m = DeviceMem::new();
        let a = m.alloc_f(3); // odd size
        let b = m.alloc_f(3);
        assert_eq!(m.addr_f(a, 0) % BASE_ALIGN, 0);
        assert_eq!(m.addr_f(b, 0) % BASE_ALIGN, 0);
    }
}
