//! Simulated device global memory.
//!
//! Buffers live in a per-device table; each allocation is assigned a
//! disjoint *virtual byte address range* so the coalescing and cache models
//! can reason about addresses exactly like real hardware would.

/// Global memory of one simulated device.
#[derive(Debug, Default)]
pub struct DeviceMem {
    bufs_f: Vec<Vec<f64>>,
    bufs_i: Vec<Vec<i64>>,
    base_f: Vec<u64>,
    base_i: Vec<u64>,
    next_base: u64,
}

/// Handle to a simulated f64 buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimBufF(pub usize);
/// Handle to a simulated i64 buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimBufI(pub usize);

const BASE_ALIGN: u64 = 256;

impl DeviceMem {
    pub fn new() -> Self {
        DeviceMem {
            next_base: BASE_ALIGN,
            ..Default::default()
        }
    }

    fn bump(&mut self, bytes: u64) -> u64 {
        let base = self.next_base;
        self.next_base += bytes.div_ceil(BASE_ALIGN) * BASE_ALIGN + BASE_ALIGN;
        base
    }

    pub fn alloc_f(&mut self, len: usize) -> SimBufF {
        let base = self.bump(len as u64 * 8);
        self.bufs_f.push(vec![0.0; len]);
        self.base_f.push(base);
        SimBufF(self.bufs_f.len() - 1)
    }

    pub fn alloc_i(&mut self, len: usize) -> SimBufI {
        let base = self.bump(len as u64 * 8);
        self.bufs_i.push(vec![0; len]);
        self.base_i.push(base);
        SimBufI(self.bufs_i.len() - 1)
    }

    pub fn f(&self, b: SimBufF) -> &[f64] {
        &self.bufs_f[b.0]
    }
    pub fn f_mut(&mut self, b: SimBufF) -> &mut Vec<f64> {
        &mut self.bufs_f[b.0]
    }
    pub fn i(&self, b: SimBufI) -> &[i64] {
        &self.bufs_i[b.0]
    }
    pub fn i_mut(&mut self, b: SimBufI) -> &mut Vec<i64> {
        &mut self.bufs_i[b.0]
    }

    /// Virtual byte address of element `idx` of an f64 buffer.
    #[inline]
    pub fn addr_f(&self, b: SimBufF, idx: u64) -> u64 {
        self.base_f[b.0] + idx * 8
    }
    #[inline]
    pub fn addr_i(&self, b: SimBufI, idx: u64) -> u64 {
        self.base_i[b.0] + idx * 8
    }

    /// Total bytes currently allocated (diagnostics).
    pub fn allocated_bytes(&self) -> usize {
        self.bufs_f.iter().map(|b| b.len() * 8).sum::<usize>()
            + self.bufs_i.iter().map(|b| b.len() * 8).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_get_disjoint_address_ranges() {
        let mut m = DeviceMem::new();
        let a = m.alloc_f(100);
        let b = m.alloc_f(100);
        let end_a = m.addr_f(a, 99) + 8;
        let start_b = m.addr_f(b, 0);
        assert!(start_b >= end_a, "ranges overlap");
        assert_eq!(m.addr_f(a, 1) - m.addr_f(a, 0), 8);
    }

    #[test]
    fn mixed_type_allocations() {
        let mut m = DeviceMem::new();
        let f = m.alloc_f(4);
        let i = m.alloc_i(4);
        m.f_mut(f)[2] = 1.5;
        m.i_mut(i)[3] = -7;
        assert_eq!(m.f(f)[2], 1.5);
        assert_eq!(m.i(i)[3], -7);
        assert_eq!(m.allocated_bytes(), 64);
        assert_ne!(m.addr_f(f, 0), m.addr_i(i, 0));
    }

    #[test]
    fn bases_are_aligned() {
        let mut m = DeviceMem::new();
        let a = m.alloc_f(3); // odd size
        let b = m.alloc_f(3);
        assert_eq!(m.addr_f(a, 0) % BASE_ALIGN, 0);
        assert_eq!(m.addr_f(b, 0) % BASE_ALIGN, 0);
    }
}
