//! Stats→metrics bridge: fold one completed [`SimReport`] into the
//! process-global deterministic registry (`alpaka_core::metrics`).
//!
//! Everything recorded here comes from the simulated cost model
//! (`LaunchStats`, `TimeBreakdown`), so the resulting snapshot is
//! byte-identical across `ALPAKA_SIM_THREADS`, all three engines and pool
//! sizes. The two deliberate exceptions are the process-wide
//! lowering/compile cache gauges (`alpaka_sim_cache_*`): their values
//! depend on which engine ran and on everything else the process executed,
//! exactly like wall time in traces — exporters and parity tests mask that
//! family. `HostPerf` (wall-clock interpreter throughput) is never
//! recorded.

use alpaka_core::metrics::{self, RATE_BUCKETS};

use crate::atomics::FallbackReason;
use crate::interp::SimReport;

/// Stable lowercase name of a fallback reason (for metric labels).
pub fn fallback_reason_name(r: FallbackReason) -> &'static str {
    match r {
        FallbackReason::None => "none",
        FallbackReason::SharedCacheScope => "shared_cache_scope",
        FallbackReason::AtomicsNonReducible => "atomics_non_reducible",
        FallbackReason::ValidationFailed => "validation_failed",
    }
}

/// Record one completed launch (no-op when metrics are disabled). `kernel`
/// is the kernel name used as the metric label; callers on the launch path
/// (`alpaka::Queue::enqueue_kernel`, `Device::launch`, pool shards) invoke
/// this once per successful `SimReport`.
pub fn record_launch(kernel: &str, report: &SimReport) {
    if !metrics::enabled() {
        return;
    }
    let labels = &[("kernel", kernel)];
    let s = &report.stats;
    metrics::counter_add("alpaka_launches_total", labels, 1);
    metrics::counter_add("alpaka_launch_blocks_total", labels, s.blocks);
    metrics::counter_add("alpaka_launch_flops_total", labels, s.total_flops());
    metrics::counter_add("alpaka_launch_dram_bytes_total", labels, s.dram_bytes);
    metrics::observe("alpaka_launch_seconds", labels, report.time.total_s);
    if report.time.total_s > 0.0 {
        metrics::observe_in(
            "alpaka_launch_blocks_per_second",
            labels,
            RATE_BUCKETS,
            s.blocks as f64 / report.time.total_s,
        );
    }
    if report.sampled {
        metrics::counter_add("alpaka_launch_sampled_total", labels, 1);
    }
    if report.fallback != FallbackReason::None {
        metrics::counter_add(
            "alpaka_launch_fallback_total",
            &[
                ("kernel", kernel),
                ("reason", fallback_reason_name(report.fallback)),
            ],
            1,
        );
    }
    // Process-cumulative and engine-dependent: masked by parity tests.
    let lc = &report.lowering_cache;
    let cc = &report.compile_cache;
    metrics::gauge_set(
        "alpaka_sim_cache_hits",
        &[("cache", "lowering")],
        lc.hits as f64,
    );
    metrics::gauge_set(
        "alpaka_sim_cache_misses",
        &[("cache", "lowering")],
        lc.misses as f64,
    );
    metrics::gauge_set(
        "alpaka_sim_cache_hits",
        &[("cache", "compiled")],
        cc.hits as f64,
    );
    metrics::gauge_set(
        "alpaka_sim_cache_misses",
        &[("cache", "compiled")],
        cc.misses as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpaka_core::metrics::capture;

    #[test]
    fn bridge_records_launch_families() {
        let mut report = SimReport::default();
        report.stats.blocks = 8;
        report.stats.scalar_flops = 100;
        report.stats.vec_flops = 28;
        report.stats.dram_bytes = 4096;
        report.time.total_s = 2e-4;
        report.fallback = FallbackReason::AtomicsNonReducible;
        let ((), cap) = capture(|| record_launch("daxpy", &report));
        let snap = &cap.snapshot;
        assert_eq!(snap.counter_total("alpaka_launches_total"), 1);
        assert_eq!(snap.counter_total("alpaka_launch_blocks_total"), 8);
        assert_eq!(snap.counter_total("alpaka_launch_flops_total"), 128);
        assert_eq!(snap.counter_total("alpaka_launch_fallback_total"), 1);
        let h = snap
            .histogram("alpaka_launch_seconds", &[("kernel", "daxpy")])
            .unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.p50, 2e-4);
    }

    #[test]
    fn bridge_is_noop_when_disabled() {
        if alpaka_core::metrics::enabled() {
            return; // ambient ALPAKA_SIM_METRICS run
        }
        let before = alpaka_core::metrics::snapshot();
        record_launch("daxpy", &SimReport::default());
        assert_eq!(alpaka_core::metrics::snapshot(), before);
    }
}
