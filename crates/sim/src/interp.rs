//! Block-lockstep SIMT interpreter.
//!
//! Executes a traced kernel ([`Program`]) for every block of a launch. All
//! threads of a block advance through the structured IR together; warps
//! (lock-step groups of `DeviceSpec::warp_width` lanes) are the accounting
//! unit for instruction issue, divergence and memory coalescing, exactly as
//! on real SIMT hardware:
//!
//! * `if`/`while` with a varying condition executes both paths under an
//!   active-lane mask (divergence costs issue slots);
//! * global accesses of a warp are coalesced into line-sized transactions
//!   and filtered through the cache model;
//! * shared accesses are checked for bank conflicts;
//! * barriers require a full (non-divergent) mask — the CUDA rule;
//! * *element loops* (`for_elements`) on CPU device models are probed for
//!   unit-stride access and, when clean, their work is accounted at vector
//!   (SIMD) throughput — the paper's Section 3.2.4 vectorization story.
//!
//! Results are bit-identical to the reference evaluator in
//! `alpaka_kir::eval` (shared scalar semantics), which cross-backend tests
//! rely on.

// The interpreter's hot loops iterate lane indices under an active mask and
// index several parallel per-lane arrays at once — the explicit-index form
// is the clearest way to write lockstep execution.
#![allow(clippy::needless_range_loop)]

use std::sync::{Arc, Mutex};
use std::time::Instant;

use alpaka_core::acc::DeviceKind;
use alpaka_core::pool::run_team;
use alpaka_core::trace::BlockSpan;
use alpaka_core::vec::Vecn;
use alpaka_core::workdiv::WorkDiv;
use alpaka_kir::ir::*;
use alpaka_kir::semantics as sem;

use crate::cache::CacheSim;
use crate::fault::{EccCtx, SimError};
use crate::memory::{DeviceMem, SharedMem, SimBufF, SimBufI};
use crate::profile::{merge_counters, InstrCounters, KernelProfile, Numbering};
use crate::serr;
use crate::spec::{CacheScope, DeviceSpec};
use crate::stats::{estimate_time, LaunchStats, TimeBreakdown};

/// Bindings of kernel argument slots to simulated buffers plus scalars.
#[derive(Debug, Clone, Default)]
pub struct SimArgs {
    pub bufs_f: Vec<SimBufF>,
    pub bufs_i: Vec<SimBufI>,
    pub params_f: Vec<f64>,
    pub params_i: Vec<i64>,
}

/// How much of the grid to interpret.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Every block — required when the results matter.
    Full,
    /// Interpret only ~n evenly spaced blocks and extrapolate the timing
    /// statistics. Buffer contents are then partial: timing-only runs.
    SampleBlocks(usize),
    /// Execute exactly the blocks with linear index in `start..end` — one
    /// sub-grid shard of a multi-device pool launch. Blocks keep their true
    /// grid coordinates (and therefore their global thread indices), so
    /// running every shard of a partition in ascending order is
    /// block-for-block identical to one `Full` launch. Results are valid
    /// for the covered blocks; nothing is extrapolated.
    BlockRange { start: usize, end: usize },
}

/// One attempt of a resilient (retried / failed-over) launch, recorded on
/// the report of the attempt that finally succeeded.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptRecord {
    /// 1-based attempt ordinal across the whole fallback chain.
    pub attempt: u32,
    /// Name of the device the attempt ran on.
    pub device: String,
    /// Index of that device in the fallback chain (0 = primary).
    pub device_index: usize,
    /// Stable fault-kind name that ended the attempt ("ecc", "timeout",
    /// "device_lost", "oom", ...), or `None` for the succeeding attempt.
    pub fault: Option<String>,
    /// Whether the fault was classified transient (retried in place).
    pub transient: bool,
}

/// Retry/fail-over provenance of a resilient launch: how many attempts it
/// took, what ended each failed one, and how much simulated backoff was
/// charged. Populated by the resilience layer (`launch_resilient` and the
/// device pool) on the winning attempt's report; plain launches carry
/// `None`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceInfo {
    /// Total attempts across the chain (1 = first try succeeded).
    pub attempts: u32,
    /// Every attempt in order, the succeeding one last.
    pub history: Vec<AttemptRecord>,
    /// Simulated seconds charged as retry backoff.
    pub backoff_s: f64,
    /// Device-to-device fail-over hops taken.
    pub failovers: u32,
}

/// Outcome of a simulated launch.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    pub stats: LaunchStats,
    pub time: TimeBreakdown,
    /// True when block sampling was used (results incomplete).
    pub sampled: bool,
    /// Host-side interpreter throughput (wall clock, not simulated time).
    pub host: HostPerf,
    /// Per-instruction hot-spot profile; present only when tracing is
    /// enabled (`alpaka_core::trace`). Never scaled by block sampling.
    pub profile: Option<KernelProfile>,
    /// Per-block issue-cycle spans (block-linear order); present only when
    /// tracing is enabled. Never scaled by block sampling.
    pub spans: Vec<BlockSpan>,
    /// Process-wide cumulative hit/miss counters of the lowered-program
    /// cache, snapshotted when this launch finished.
    pub lowering_cache: crate::lower::CacheCounters,
    /// Likewise for the compiled-program cache.
    pub compile_cache: crate::lower::CacheCounters,
    /// Why this launch ran serially (or on a slower engine) despite being
    /// asked for more; `FallbackReason::None` when nothing was downgraded.
    pub fallback: crate::atomics::FallbackReason,
    /// Retry/fail-over provenance when this launch completed under the
    /// resilience layer; `None` for plain launches.
    pub resilience: Option<ResilienceInfo>,
}

/// How fast the *host* interpreted the launch — wall-clock measurements of
/// the simulator itself, as opposed to `TimeBreakdown`, which is the
/// modeled device time. Not deterministic across runs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HostPerf {
    /// Wall-clock seconds spent interpreting the launch.
    pub wall_s: f64,
    /// Blocks actually interpreted per wall-clock second (sampling modes
    /// count only the interpreted blocks, not the extrapolated total).
    pub blocks_per_sec: f64,
    /// Warp-instructions interpreted per wall-clock second.
    pub instrs_per_sec: f64,
    /// Interpreter worker threads the launch ran on.
    pub workers: usize,
}

const DEFAULT_FUEL: u64 = 50_000_000_000;

/// Interpreter threads to use given a configured value: the
/// `ALPAKA_SIM_THREADS` environment variable wins when set to a positive
/// integer, otherwise `configured` (clamped to at least 1) is used. An
/// unparsable value falls back to `configured` and warns once per process.
pub fn resolve_sim_threads(configured: usize) -> usize {
    let env = std::env::var("ALPAKA_SIM_THREADS").ok();
    let (n, invalid) = resolve_sim_threads_inner(env.as_deref(), configured);
    if invalid {
        static WARNED: std::sync::Once = std::sync::Once::new();
        WARNED.call_once(|| {
            eprintln!(
                "warning: ALPAKA_SIM_THREADS={:?} is not a positive integer; \
                 using {n} interpreter thread(s)",
                env.as_deref().unwrap_or("")
            );
        });
    }
    n
}

/// Pure core of [`resolve_sim_threads`]: returns the thread count plus
/// whether the environment value was set but unusable (the warning case).
fn resolve_sim_threads_inner(env: Option<&str>, configured: usize) -> (usize, bool) {
    match env {
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => (n, false),
            _ => (configured.max(1), true),
        },
        None => (configured.max(1), false),
    }
}

/// Engine to use given a configured choice: the `ALPAKA_SIM_ENGINE`
/// environment variable wins when set to `reference`, `lowered` or
/// `compiled` (case-insensitive); otherwise `configured` is used. Unlike
/// `ALPAKA_SIM_THREADS` — where any thread count is safe to fall back from
/// — a misspelled engine would silently benchmark the wrong tier, so an
/// unknown value is an error, not a warning.
pub fn resolve_sim_engine(configured: Engine) -> Result<Engine, SimError> {
    let env = std::env::var("ALPAKA_SIM_ENGINE").ok();
    resolve_sim_engine_inner(env.as_deref(), configured)
}

/// Pure core of [`resolve_sim_engine`].
fn resolve_sim_engine_inner(env: Option<&str>, configured: Engine) -> Result<Engine, SimError> {
    let Some(raw) = env else {
        return Ok(configured);
    };
    match raw.trim().to_ascii_lowercase().as_str() {
        "" => Ok(configured),
        "reference" => Ok(Engine::Reference),
        "lowered" => Ok(Engine::Lowered),
        "compiled" => Ok(Engine::Compiled),
        _ => Err(serr!(
            "ALPAKA_SIM_ENGINE={raw:?} is not a valid engine (expected \"reference\", \
             \"lowered\", or \"compiled\")"
        )),
    }
}

/// Global memory as seen by one interpreter worker: exclusive during serial
/// runs, a concurrent element-wise view during parallel ones.
pub(crate) enum MemAccess<'a> {
    Excl(&'a mut DeviceMem),
    Shared(&'a SharedMem<'a>),
}

impl MemAccess<'_> {
    #[inline]
    pub(crate) fn len_f(&self, b: SimBufF) -> usize {
        match self {
            MemAccess::Excl(m) => m.f(b).len(),
            MemAccess::Shared(v) => v.len_f(b),
        }
    }
    #[inline]
    pub(crate) fn len_i(&self, b: SimBufI) -> usize {
        match self {
            MemAccess::Excl(m) => m.i(b).len(),
            MemAccess::Shared(v) => v.len_i(b),
        }
    }
    #[inline]
    pub(crate) fn read_f(&self, b: SimBufF, idx: usize) -> Result<f64, SimError> {
        match self {
            MemAccess::Excl(m) => m
                .f(b)
                .get(idx)
                .copied()
                .ok_or_else(|| SimError::bad_buffer(format!("f64 index {idx} out of bounds"))),
            MemAccess::Shared(v) => v.read_f(b, idx),
        }
    }
    #[inline]
    pub(crate) fn read_i(&self, b: SimBufI, idx: usize) -> Result<i64, SimError> {
        match self {
            MemAccess::Excl(m) => m
                .i(b)
                .get(idx)
                .copied()
                .ok_or_else(|| SimError::bad_buffer(format!("i64 index {idx} out of bounds"))),
            MemAccess::Shared(v) => v.read_i(b, idx),
        }
    }
    #[inline]
    pub(crate) fn write_f(&mut self, b: SimBufF, idx: usize, val: f64) -> Result<(), SimError> {
        match self {
            MemAccess::Excl(m) => match m.f_mut(b).get_mut(idx) {
                Some(slot) => {
                    *slot = val;
                    Ok(())
                }
                None => Err(SimError::bad_buffer(format!(
                    "f64 index {idx} out of bounds"
                ))),
            },
            MemAccess::Shared(v) => v.write_f(b, idx, val),
        }
    }
    #[inline]
    pub(crate) fn write_i(&mut self, b: SimBufI, idx: usize, val: i64) -> Result<(), SimError> {
        match self {
            MemAccess::Excl(m) => match m.i_mut(b).get_mut(idx) {
                Some(slot) => {
                    *slot = val;
                    Ok(())
                }
                None => Err(SimError::bad_buffer(format!(
                    "i64 index {idx} out of bounds"
                ))),
            },
            MemAccess::Shared(v) => v.write_i(b, idx, val),
        }
    }
    #[inline]
    pub(crate) fn addr_f(&self, b: SimBufF, idx: u64) -> u64 {
        match self {
            MemAccess::Excl(m) => m.addr_f(b, idx),
            MemAccess::Shared(v) => v.addr_f(b, idx),
        }
    }
    #[inline]
    pub(crate) fn addr_i(&self, b: SimBufI, idx: u64) -> u64 {
        match self {
            MemAccess::Excl(m) => m.addr_i(b, idx),
            MemAccess::Shared(v) => v.addr_i(b, idx),
        }
    }
}

pub(crate) enum Caches {
    None,
    PerSm(Vec<CacheSim>),
    Shared(CacheSim),
}

#[derive(Default)]
pub(crate) struct RegionAcc {
    pub(crate) issue: u64,
    pub(crate) flops: u64,
    pub(crate) special: u64,
    /// Element-loop nesting depth within the region.
    pub(crate) depth: u32,
    /// Address log of the first two iterations of the outermost loop.
    pub(crate) iter: u32,
    pub(crate) addrs0: Vec<u64>,
    pub(crate) addrs1: Vec<u64>,
    pub(crate) probe_failed: bool,
}

impl RegionAcc {
    fn probing(&self) -> bool {
        self.iter < 2 && !self.probe_failed
    }

    pub(crate) fn vectorized(&self) -> bool {
        if self.probe_failed || self.iter < 2 || self.addrs0.len() != self.addrs1.len() {
            return false;
        }
        if self.addrs0.is_empty() {
            // Pure-compute loop bodies vectorize trivially.
            return true;
        }
        self.addrs0
            .iter()
            .zip(&self.addrs1)
            .all(|(&a0, &a1)| a1 == a0 || a1 == a0 + 8 || a0 == a1 + 8)
    }
}

struct BlockState {
    lanes: usize,
    regs: Vec<u64>,
    vars: Vec<u64>,
    sh_f: Vec<Vec<f64>>,
    sh_i: Vec<Vec<i64>>,
    /// Per-lane thread-private arrays: `loc_f[loc][lane * len + k]`.
    loc_f: Vec<Vec<f64>>,
    tid: Vec<[i64; 3]>,
    bidx: [i64; 3],
    /// Reusable (lane, byte address) scratch for global-access coalescing.
    scratch_addrs: Vec<(usize, u64)>,
    /// Reusable (lane, element index) scratch for shared-access accounting.
    scratch_elems: Vec<(usize, i64)>,
    /// Recycled lane-mask buffers for divergent control flow.
    mask_pool: Vec<Vec<bool>>,
}

impl BlockState {
    /// Borrow a cleared mask buffer from the pool (or allocate one).
    #[inline]
    fn take_mask(&mut self) -> Vec<bool> {
        self.mask_pool.pop().unwrap_or_default()
    }

    /// Return a mask buffer to the pool for reuse.
    #[inline]
    fn put_mask(&mut self, mut m: Vec<bool>) {
        m.clear();
        self.mask_pool.push(m);
    }
    #[inline]
    fn reg(&self, v: ValId, lane: usize) -> u64 {
        self.regs[v.0 as usize * self.lanes + lane]
    }
    #[inline]
    fn set_reg(&mut self, v: ValId, lane: usize, bits: u64) {
        self.regs[v.0 as usize * self.lanes + lane] = bits;
    }
    #[inline]
    fn rf(&self, v: ValId, lane: usize) -> f64 {
        f64::from_bits(self.reg(v, lane))
    }
    #[inline]
    fn ri(&self, v: ValId, lane: usize) -> i64 {
        self.reg(v, lane) as i64
    }
    #[inline]
    fn rb(&self, v: ValId, lane: usize) -> bool {
        self.reg(v, lane) != 0
    }
    #[inline]
    fn sf(&mut self, v: ValId, lane: usize, x: f64) {
        self.set_reg(v, lane, x.to_bits());
    }
    #[inline]
    fn si(&mut self, v: ValId, lane: usize, x: i64) {
        self.set_reg(v, lane, x as u64);
    }
    #[inline]
    fn sb(&mut self, v: ValId, lane: usize, x: bool) {
        self.set_reg(v, lane, x as u64);
    }
}

pub(crate) struct Machine<'a> {
    prog: &'a Program,
    pub(crate) spec: &'a DeviceSpec,
    pub(crate) mem: MemAccess<'a>,
    pub(crate) args: &'a SimArgs,
    pub(crate) grid: [i64; 3],
    pub(crate) block: [i64; 3],
    pub(crate) elems: [i64; 3],
    pub(crate) warp_w: usize,
    pub(crate) n_warps: usize,
    pub(crate) stats: LaunchStats,
    pub(crate) region: Option<RegionAcc>,
    pub(crate) caches: Caches,
    pub(crate) cur_sm: usize,
    pub(crate) fuel: u64,
    /// True when `fuel` came from a fault plan's watchdog budget: running
    /// out is then a `Timeout`, not a runaway-loop diagnostic.
    watchdog: bool,
    /// Per-launch ECC injection context (None: injection disabled).
    pub(crate) ecc: Option<EccCtx>,
    /// Linear index of the block currently interpreted (ECC decisions are
    /// keyed on it, so they are invariant across worker counts).
    pub(crate) cur_block_lin: usize,
    /// Reusable line buffer for `mem_access` coalescing.
    scratch_lines: Vec<u64>,
    /// Reusable per-bank index lists for `shared_access`.
    scratch_banks: Vec<Vec<i64>>,
    /// Per-instruction counters when profiling (tracing enabled), indexed by
    /// canonical statement id; `None` on the default allocation-free path.
    pub(crate) profile: Option<Box<[InstrCounters]>>,
    /// Canonical id of the statement currently executing (profiling only).
    pub(crate) cur_instr: u32,
    /// Statement numbering of `prog` (profiling only).
    numbering: Option<&'a Numbering>,
    /// Private accumulation state for deferred global atomics, present when
    /// the launch has a reducibility plan (see `crate::atomics`). Atomic
    /// exec arms then accumulate here instead of touching buffers.
    pub(crate) atomics: Option<crate::atomics::AtomicsPriv>,
}

pub(crate) type R<T> = Result<T, SimError>;

impl<'a> Machine<'a> {
    fn fuel_exhausted(&self) -> SimError {
        if self.watchdog {
            SimError::timeout("kernel exceeded the device watchdog cycle budget (injected)")
        } else {
            SimError::new("simulation instruction budget exhausted (runaway loop?)")
        }
    }

    pub(crate) fn burn(&mut self) -> R<()> {
        if self.fuel == 0 {
            return Err(self.fuel_exhausted());
        }
        self.fuel -= 1;
        Ok(())
    }

    /// Burn `n` instructions of fuel at once (used by the lowered engine to
    /// charge a straight-line run in one step).
    pub(crate) fn burn_n(&mut self, n: u64) -> R<()> {
        if self.fuel < n {
            return Err(self.fuel_exhausted());
        }
        self.fuel -= n;
        Ok(())
    }

    /// Deterministic ECC injection on a global load: decided purely from
    /// `(plan seed, launch ordinal, linear block index, byte address)`, so
    /// the verdict is identical under any worker count and both engines.
    /// Modeled as a *detected uncorrectable* event — the load errors, data
    /// is never silently corrupted.
    #[inline]
    pub(crate) fn ecc_check(&self, addr: u64, what: &str, tid: [i64; 3]) -> R<()> {
        if let Some(ecc) = self.ecc {
            if ecc.hits(self.cur_block_lin, addr) {
                return Err(SimError::transient(format!(
                    "{what}: uncorrectable ECC error at device address {addr:#x} (injected)"
                ))
                .at_thread(tid));
            }
        }
        Ok(())
    }

    /// Apply `f` to the current statement's profile slot, if profiling.
    #[inline]
    pub(crate) fn prof_add(&mut self, f: impl FnOnce(&mut InstrCounters)) {
        if let Some(p) = &mut self.profile {
            f(&mut p[self.cur_instr as usize]);
        }
    }

    #[inline]
    pub(crate) fn add_issue(&mut self, n: u64) {
        if n > 0 {
            self.prof_add(|c| {
                c.issue += n;
                c.execs += 1;
            });
        }
        match &mut self.region {
            Some(r) => r.issue += n,
            None => self.stats.scalar_issue += n,
        }
    }

    #[inline]
    pub(crate) fn add_flops(&mut self, n: u64) {
        self.prof_add(|c| c.flops += n);
        match &mut self.region {
            Some(r) => r.flops += n,
            None => self.stats.scalar_flops += n,
        }
    }

    #[inline]
    pub(crate) fn add_special(&mut self, n: u64) {
        self.prof_add(|c| c.special += n);
        match &mut self.region {
            Some(r) => r.special += n,
            None => self.stats.special_ops += n,
        }
    }

    /// Count one issued instruction per warp with any active lane; returns
    /// the number of active lanes.
    fn issue(&mut self, mask: &[bool]) -> u64 {
        let mut active = 0u64;
        let mut warp_issues = 0u64;
        for w in 0..self.n_warps {
            let lo = w * self.warp_w;
            let hi = (lo + self.warp_w).min(mask.len());
            let act = mask[lo..hi].iter().filter(|&&m| m).count() as u64;
            if act > 0 {
                warp_issues += 1;
                active += act;
            }
        }
        self.add_issue(warp_issues);
        active
    }

    fn note_divergence(&mut self, mask: &[bool], taken: &[bool]) {
        for w in 0..self.n_warps {
            let lo = w * self.warp_w;
            let hi = (lo + self.warp_w).min(mask.len());
            let mut any_t = false;
            let mut any_f = false;
            for l in lo..hi {
                if mask[l] {
                    if taken[l] {
                        any_t = true;
                    } else {
                        any_f = true;
                    }
                }
            }
            if any_t && any_f {
                self.stats.divergent_branches += 1;
                self.prof_add(|c| c.divergent_branches += 1);
            }
        }
    }

    /// Charge one cache/transaction access for a coalesced line.
    #[inline]
    fn line_access(&mut self, line_idx: u64) {
        let line = self.spec.line_bytes as u64;
        self.stats.mem_transactions += 1;
        // The caches share the spec's line size, so the line index needs no
        // byte-address round trip. `hit` is None when no cache is modeled.
        let hit = match &mut self.caches {
            Caches::None => None,
            Caches::PerSm(cs) => Some(cs[self.cur_sm].access_line(line_idx)),
            Caches::Shared(c) => Some(c.access_line(line_idx)),
        };
        match hit {
            None => self.stats.dram_bytes += line,
            Some(true) => self.stats.cache_hits += 1,
            Some(false) => {
                self.stats.cache_misses += 1;
                self.stats.dram_bytes += line;
            }
        }
        self.prof_add(|c| {
            c.mem_transactions += 1;
            match hit {
                None => c.dram_bytes += line,
                Some(true) => c.cache_hits += 1,
                Some(false) => {
                    c.cache_misses += 1;
                    c.dram_bytes += line;
                }
            }
        });
    }

    /// Account a warp-coalesced global access; `addrs` holds (lane, byte
    /// address) pairs of active lanes in lane order.
    pub(crate) fn mem_access(&mut self, addrs: &[(usize, u64)]) {
        let line = self.spec.line_bytes as u64;
        // Probe log for element-loop vectorization detection.
        if let Some(r) = &mut self.region {
            if r.probing() {
                let log = if r.iter == 0 {
                    &mut r.addrs0
                } else {
                    &mut r.addrs1
                };
                for &(_, a) in addrs {
                    log.push(a);
                }
                if log.len() > 4096 {
                    r.probe_failed = true;
                }
            }
        }
        let mut lines = std::mem::take(&mut self.scratch_lines);
        let mut i = 0;
        while i < addrs.len() {
            let warp = addrs[i].0 / self.warp_w;
            // Gather this warp's lines.
            lines.clear();
            while i < addrs.len() && addrs[i].0 / self.warp_w == warp {
                let l = addrs[i].1 / line;
                if !lines.contains(&l) {
                    lines.push(l);
                }
                i += 1;
            }
            for &l in &lines {
                self.line_access(l);
            }
        }
        self.scratch_lines = lines;
    }

    /// Account a global access by a single active lane — equivalent to
    /// [`Machine::mem_access`] with a one-entry address list (one probe-log
    /// entry, one line per warp), without touching the line scratch.
    pub(crate) fn mem_access_one(&mut self, addr: u64) {
        if let Some(r) = &mut self.region {
            if r.probing() {
                let log = if r.iter == 0 {
                    &mut r.addrs0
                } else {
                    &mut r.addrs1
                };
                log.push(addr);
                if log.len() > 4096 {
                    r.probe_failed = true;
                }
            }
        }
        self.line_access(addr / self.spec.line_bytes as u64);
    }

    /// Account a global access where every active lane touches the same byte
    /// address (a statically uniform load/store): per warp with any active
    /// lane — `warp_issues` of them — the coalescer emits one line-sized
    /// transaction, and the probe log records the address once per active
    /// lane, exactly as [`Machine::mem_access`] would for the equivalent
    /// per-lane address list.
    pub(crate) fn access_uniform(&mut self, addr: u64, active: u64, warp_issues: u64) {
        if let Some(r) = &mut self.region {
            if r.probing() {
                let log = if r.iter == 0 {
                    &mut r.addrs0
                } else {
                    &mut r.addrs1
                };
                for _ in 0..active {
                    log.push(addr);
                }
                if log.len() > 4096 {
                    r.probe_failed = true;
                }
            }
        }
        let line_idx = addr / self.spec.line_bytes as u64;
        for _ in 0..warp_issues {
            self.line_access(line_idx);
        }
    }

    /// Account shared-memory bank conflicts for one warp-wide access.
    /// `elem_idx` holds (lane, element index) pairs of active lanes.
    pub(crate) fn shared_access(&mut self, elem_idx: &[(usize, i64)]) {
        const BANKS: usize = 32;
        self.stats.shared_accesses += elem_idx.len() as u64;
        self.prof_add(|c| c.shared_accesses += elem_idx.len() as u64);
        let mut banks = std::mem::take(&mut self.scratch_banks);
        banks.resize_with(BANKS, Vec::new);
        let mut i = 0;
        while i < elem_idx.len() {
            let warp = elem_idx[i].0 / self.warp_w;
            banks.iter_mut().for_each(Vec::clear);
            while i < elem_idx.len() && elem_idx[i].0 / self.warp_w == warp {
                let idx = elem_idx[i].1;
                let bank = (idx.rem_euclid(BANKS as i64)) as usize;
                if !banks[bank].contains(&idx) {
                    banks[bank].push(idx);
                }
                i += 1;
            }
            let degree = banks.iter().map(|v| v.len()).max().unwrap_or(0);
            if degree > 1 {
                self.stats.bank_conflict_cycles += (degree - 1) as u64;
                self.prof_add(|c| c.bank_conflict_cycles += (degree - 1) as u64);
            }
        }
        self.scratch_banks = banks;
    }

    pub(crate) fn buf_f(&self, slot: u32) -> R<SimBufF> {
        self.args
            .bufs_f
            .get(slot as usize)
            .copied()
            .ok_or_else(|| serr!("f64 buffer slot {slot} not bound"))
    }

    pub(crate) fn buf_i(&self, slot: u32) -> R<SimBufI> {
        self.args
            .bufs_i
            .get(slot as usize)
            .copied()
            .ok_or_else(|| serr!("i64 buffer slot {slot} not bound"))
    }

    fn special_value(&self, bs: &BlockState, r: SpecialReg, lane: usize) -> i64 {
        match r {
            SpecialReg::GridBlockExtent(a) => self.grid[a as usize],
            SpecialReg::BlockThreadExtent(a) => self.block[a as usize],
            SpecialReg::ThreadElemExtent(a) => self.elems[a as usize],
            SpecialReg::BlockIdx(a) => bs.bidx[a as usize],
            SpecialReg::ThreadIdx(a) => bs.tid[lane][a as usize],
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec_instr(&mut self, bs: &mut BlockState, instr: &Instr, mask: &[bool]) -> R<()> {
        self.burn()?;
        let active = self.issue(mask);
        if active == 0 {
            return Ok(());
        }
        let d = instr.dst;
        match &instr.op {
            Op::ConstF(v) => {
                for l in 0..bs.lanes {
                    if mask[l] {
                        bs.sf(d, l, *v);
                    }
                }
            }
            Op::ConstI(v) => {
                for l in 0..bs.lanes {
                    if mask[l] {
                        bs.si(d, l, *v);
                    }
                }
            }
            Op::ConstB(v) => {
                for l in 0..bs.lanes {
                    if mask[l] {
                        bs.sb(d, l, *v);
                    }
                }
            }
            Op::Special(r) => {
                for l in 0..bs.lanes {
                    if mask[l] {
                        let v = self.special_value(bs, *r, l);
                        bs.si(d, l, v);
                    }
                }
            }
            Op::ParamF(s) => {
                let v = *self
                    .args
                    .params_f
                    .get(*s as usize)
                    .ok_or_else(|| serr!("f64 param slot {s} not bound"))?;
                for l in 0..bs.lanes {
                    if mask[l] {
                        bs.sf(d, l, v);
                    }
                }
            }
            Op::ParamI(s) => {
                let v = *self
                    .args
                    .params_i
                    .get(*s as usize)
                    .ok_or_else(|| serr!("i64 param slot {s} not bound"))?;
                for l in 0..bs.lanes {
                    if mask[l] {
                        bs.si(d, l, v);
                    }
                }
            }
            Op::BinF(op, a, b) => {
                let flops = match op {
                    FBin::Div => 4,
                    _ => 1,
                };
                self.add_flops(active * flops);
                for l in 0..bs.lanes {
                    if mask[l] {
                        let r = sem::fbin(*op, bs.rf(*a, l), bs.rf(*b, l));
                        bs.sf(d, l, r);
                    }
                }
            }
            Op::UnF(op, a) => {
                match op {
                    FUn::Sqrt | FUn::Exp | FUn::Ln | FUn::Sin | FUn::Cos => {
                        self.add_special(active)
                    }
                    _ => self.add_flops(active),
                }
                for l in 0..bs.lanes {
                    if mask[l] {
                        let r = sem::fun(*op, bs.rf(*a, l));
                        bs.sf(d, l, r);
                    }
                }
            }
            Op::Fma(a, b, c) => {
                self.add_flops(active * 2);
                for l in 0..bs.lanes {
                    if mask[l] {
                        let r = sem::fma(bs.rf(*a, l), bs.rf(*b, l), bs.rf(*c, l));
                        bs.sf(d, l, r);
                    }
                }
            }
            Op::BinI(op, a, b) => {
                for l in 0..bs.lanes {
                    if mask[l] {
                        let r = sem::ibin(*op, bs.ri(*a, l), bs.ri(*b, l));
                        bs.si(d, l, r);
                    }
                }
            }
            Op::NegI(a) => {
                for l in 0..bs.lanes {
                    if mask[l] {
                        let r = bs.ri(*a, l).wrapping_neg();
                        bs.si(d, l, r);
                    }
                }
            }
            Op::CmpF(c, a, b) => {
                for l in 0..bs.lanes {
                    if mask[l] {
                        let r = sem::cmp_f(*c, bs.rf(*a, l), bs.rf(*b, l));
                        bs.sb(d, l, r);
                    }
                }
            }
            Op::CmpI(c, a, b) => {
                for l in 0..bs.lanes {
                    if mask[l] {
                        let r = sem::cmp_i(*c, bs.ri(*a, l), bs.ri(*b, l));
                        bs.sb(d, l, r);
                    }
                }
            }
            Op::BinB(op, a, b) => {
                for l in 0..bs.lanes {
                    if mask[l] {
                        let r = sem::bbin(*op, bs.rb(*a, l), bs.rb(*b, l));
                        bs.sb(d, l, r);
                    }
                }
            }
            Op::NotB(a) => {
                for l in 0..bs.lanes {
                    if mask[l] {
                        let r = !bs.rb(*a, l);
                        bs.sb(d, l, r);
                    }
                }
            }
            Op::SelF(c, t, e) => {
                for l in 0..bs.lanes {
                    if mask[l] {
                        let r = if bs.rb(*c, l) {
                            bs.rf(*t, l)
                        } else {
                            bs.rf(*e, l)
                        };
                        bs.sf(d, l, r);
                    }
                }
            }
            Op::SelI(c, t, e) => {
                for l in 0..bs.lanes {
                    if mask[l] {
                        let r = if bs.rb(*c, l) {
                            bs.ri(*t, l)
                        } else {
                            bs.ri(*e, l)
                        };
                        bs.si(d, l, r);
                    }
                }
            }
            Op::I2F(a) => {
                self.add_flops(active);
                for l in 0..bs.lanes {
                    if mask[l] {
                        let r = sem::i2f(bs.ri(*a, l));
                        bs.sf(d, l, r);
                    }
                }
            }
            Op::F2I(a) => {
                self.add_flops(active);
                for l in 0..bs.lanes {
                    if mask[l] {
                        let r = sem::f2i(bs.rf(*a, l));
                        bs.si(d, l, r);
                    }
                }
            }
            Op::U2UnitF(a) => {
                self.add_flops(active * 2);
                for l in 0..bs.lanes {
                    if mask[l] {
                        let r = sem::u2unit(bs.ri(*a, l));
                        bs.sf(d, l, r);
                    }
                }
            }
            Op::LdGF { buf, idx } => {
                let b = self.buf_f(*buf)?;
                bs.scratch_addrs.clear();
                for l in 0..bs.lanes {
                    if mask[l] {
                        let i = bs.ri(*idx, l);
                        let len = self.mem.len_f(b);
                        if i < 0 || i as usize >= len {
                            return Err(serr!(
                                "ld.global.f64: index {i} out of bounds (len {len})"
                            )
                            .at_thread(bs.tid[l]));
                        }
                        let a = self.mem.addr_f(b, i as u64);
                        self.ecc_check(a, "ld.global.f64", bs.tid[l])?;
                        let v = self.mem.read_f(b, i as usize)?;
                        bs.sf(d, l, v);
                        bs.scratch_addrs.push((l, a));
                    }
                }
                self.stats.global_loads += active;
                self.prof_add(|c| c.global_loads += active);
                self.mem_access(&bs.scratch_addrs);
            }
            Op::LdGI { buf, idx } => {
                let b = self.buf_i(*buf)?;
                bs.scratch_addrs.clear();
                for l in 0..bs.lanes {
                    if mask[l] {
                        let i = bs.ri(*idx, l);
                        let len = self.mem.len_i(b);
                        if i < 0 || i as usize >= len {
                            return Err(serr!(
                                "ld.global.s64: index {i} out of bounds (len {len})"
                            )
                            .at_thread(bs.tid[l]));
                        }
                        let a = self.mem.addr_i(b, i as u64);
                        self.ecc_check(a, "ld.global.s64", bs.tid[l])?;
                        let v = self.mem.read_i(b, i as usize)?;
                        bs.si(d, l, v);
                        bs.scratch_addrs.push((l, a));
                    }
                }
                self.stats.global_loads += active;
                self.prof_add(|c| c.global_loads += active);
                self.mem_access(&bs.scratch_addrs);
            }
            Op::LdSF { sh, idx } => {
                bs.scratch_elems.clear();
                for l in 0..bs.lanes {
                    if mask[l] {
                        let i = bs.ri(*idx, l);
                        let arr = &bs.sh_f[*sh as usize];
                        if i < 0 || i as usize >= arr.len() {
                            return Err(serr!(
                                "ld.shared.f64: index {i} out of bounds (len {})",
                                arr.len()
                            )
                            .at_thread(bs.tid[l]));
                        }
                        let v = arr[i as usize];
                        bs.sf(d, l, v);
                        bs.scratch_elems.push((l, i));
                    }
                }
                self.shared_access(&bs.scratch_elems);
            }
            Op::LdSI { sh, idx } => {
                bs.scratch_elems.clear();
                for l in 0..bs.lanes {
                    if mask[l] {
                        let i = bs.ri(*idx, l);
                        let arr = &bs.sh_i[*sh as usize];
                        if i < 0 || i as usize >= arr.len() {
                            return Err(serr!(
                                "ld.shared.s64: index {i} out of bounds (len {})",
                                arr.len()
                            )
                            .at_thread(bs.tid[l]));
                        }
                        let v = arr[i as usize];
                        bs.si(d, l, v);
                        bs.scratch_elems.push((l, i));
                    }
                }
                self.shared_access(&bs.scratch_elems);
            }
            Op::LdLF { loc, idx } => {
                let len = self.prog.locals[*loc as usize].len;
                for l in 0..bs.lanes {
                    if mask[l] {
                        let i = bs.ri(*idx, l);
                        if i < 0 || i as usize >= len {
                            return Err(serr!("ld.local.f64: index {i} out of bounds (len {len})")
                                .at_thread(bs.tid[l]));
                        }
                        let v = bs.loc_f[*loc as usize][l * len + i as usize];
                        bs.sf(d, l, v);
                    }
                }
            }
            Op::LdVarF(v) => {
                for l in 0..bs.lanes {
                    if mask[l] {
                        let bits = bs.vars[v.0 as usize * bs.lanes + l];
                        bs.set_reg(d, l, bits);
                    }
                }
            }
            Op::LdVarI(v) => {
                for l in 0..bs.lanes {
                    if mask[l] {
                        let bits = bs.vars[v.0 as usize * bs.lanes + l];
                        bs.set_reg(d, l, bits);
                    }
                }
            }
            // Atomics either defer into the worker's private accumulation
            // state (when the launch has a reducibility plan — the only
            // mode the parallel path permits) or run as direct
            // read-modify-writes on the single serial interpreter thread.
            // A deferred atomic's result register reads 0: the plan
            // guarantees the old value is dead.
            Op::AtomicGF { op, buf, idx, val } => {
                let b = self.buf_f(*buf)?;
                self.stats.atomics += active;
                self.prof_add(|c| c.atomics += active);
                let target = self.atomics.as_ref().and_then(|ap| ap.target_f(*buf));
                for l in 0..bs.lanes {
                    if mask[l] {
                        let i = bs.ri(*idx, l);
                        let len = self.mem.len_f(b);
                        if i < 0 || i as usize >= len {
                            return Err(serr!(
                                "atom.global.f64: index {i} out of bounds (len {len})"
                            )
                            .at_thread(bs.tid[l]));
                        }
                        let v = bs.rf(*val, l);
                        if let Some(t) = target {
                            let block = self.cur_block_lin as u64;
                            self.atomics
                                .as_mut()
                                .unwrap()
                                .defer_f(t, *op, block, i as usize, v);
                            bs.sf(d, l, 0.0);
                        } else {
                            let old = self.mem.read_f(b, i as usize)?;
                            self.mem
                                .write_f(b, i as usize, sem::atomic_f(*op, old, v))?;
                            bs.sf(d, l, old);
                        }
                    }
                }
            }
            Op::AtomicGI { op, buf, idx, val } => {
                let b = self.buf_i(*buf)?;
                self.stats.atomics += active;
                self.prof_add(|c| c.atomics += active);
                let target = self.atomics.as_ref().and_then(|ap| ap.target_i(*buf));
                for l in 0..bs.lanes {
                    if mask[l] {
                        let i = bs.ri(*idx, l);
                        let len = self.mem.len_i(b);
                        if i < 0 || i as usize >= len {
                            return Err(serr!(
                                "atom.global.s64: index {i} out of bounds (len {len})"
                            )
                            .at_thread(bs.tid[l]));
                        }
                        let v = bs.ri(*val, l);
                        if let Some(t) = target {
                            let block = self.cur_block_lin as u64;
                            self.atomics
                                .as_mut()
                                .unwrap()
                                .defer_i(t, *op, block, i as usize, v);
                            bs.si(d, l, 0);
                        } else {
                            let old = self.mem.read_i(b, i as usize)?;
                            self.mem
                                .write_i(b, i as usize, sem::atomic_i(*op, old, v))?;
                            bs.si(d, l, old);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Execute one IR block, attributing any fault that carries no lane
    /// coordinates yet (unbound params/buffers, other launch-uniform
    /// failures) to the first active lane of the innermost mask — the same
    /// lane a serial per-thread evaluation would fault on first.
    fn exec_block(&mut self, bs: &mut BlockState, block: &Block, mask: &[bool]) -> R<()> {
        self.exec_block_inner(bs, block, mask).map_err(|e| {
            if e.thread.is_none() && matches!(e.kind, crate::fault::SimErrorKind::Fault { .. }) {
                let l = mask.iter().position(|&m| m).unwrap_or(0);
                e.at_thread(bs.tid[l])
            } else {
                e
            }
        })
    }

    fn exec_block_inner(&mut self, bs: &mut BlockState, block: &Block, mask: &[bool]) -> R<()> {
        for stmt in &block.0 {
            if let Some(n) = self.numbering {
                if !matches!(stmt, Stmt::Comment(_)) {
                    self.cur_instr = n.id_of(stmt);
                }
            }
            match stmt {
                Stmt::I(instr) => self.exec_instr(bs, instr, mask)?,
                Stmt::StGF { buf, idx, val } => {
                    self.burn()?;
                    let active = self.issue(mask);
                    if active == 0 {
                        continue;
                    }
                    let b = self.buf_f(*buf)?;
                    bs.scratch_addrs.clear();
                    for l in 0..bs.lanes {
                        if mask[l] {
                            let i = bs.ri(*idx, l);
                            let len = self.mem.len_f(b);
                            if i < 0 || i as usize >= len {
                                return Err(serr!(
                                    "st.global.f64: index {i} out of bounds (len {len})"
                                )
                                .at_thread(bs.tid[l]));
                            }
                            let v = bs.rf(*val, l);
                            self.mem.write_f(b, i as usize, v)?;
                            bs.scratch_addrs.push((l, self.mem.addr_f(b, i as u64)));
                        }
                    }
                    self.stats.global_stores += active;
                    self.prof_add(|c| c.global_stores += active);
                    self.mem_access(&bs.scratch_addrs);
                }
                Stmt::StGI { buf, idx, val } => {
                    self.burn()?;
                    let active = self.issue(mask);
                    if active == 0 {
                        continue;
                    }
                    let b = self.buf_i(*buf)?;
                    bs.scratch_addrs.clear();
                    for l in 0..bs.lanes {
                        if mask[l] {
                            let i = bs.ri(*idx, l);
                            let len = self.mem.len_i(b);
                            if i < 0 || i as usize >= len {
                                return Err(serr!(
                                    "st.global.s64: index {i} out of bounds (len {len})"
                                )
                                .at_thread(bs.tid[l]));
                            }
                            let v = bs.ri(*val, l);
                            self.mem.write_i(b, i as usize, v)?;
                            bs.scratch_addrs.push((l, self.mem.addr_i(b, i as u64)));
                        }
                    }
                    self.stats.global_stores += active;
                    self.prof_add(|c| c.global_stores += active);
                    self.mem_access(&bs.scratch_addrs);
                }
                Stmt::StLF { loc, idx, val } => {
                    self.burn()?;
                    let active = self.issue(mask);
                    if active == 0 {
                        continue;
                    }
                    let len = self.prog.locals[*loc as usize].len;
                    for l in 0..bs.lanes {
                        if mask[l] {
                            let i = bs.ri(*idx, l);
                            if i < 0 || i as usize >= len {
                                return Err(serr!(
                                    "st.local.f64: index {i} out of bounds (len {len})"
                                )
                                .at_thread(bs.tid[l]));
                            }
                            let v = bs.rf(*val, l);
                            bs.loc_f[*loc as usize][l * len + i as usize] = v;
                        }
                    }
                }
                Stmt::StSF { sh, idx, val } => {
                    self.burn()?;
                    let active = self.issue(mask);
                    if active == 0 {
                        continue;
                    }
                    bs.scratch_elems.clear();
                    for l in 0..bs.lanes {
                        if mask[l] {
                            let i = bs.ri(*idx, l);
                            let v = bs.rf(*val, l);
                            let arr = &mut bs.sh_f[*sh as usize];
                            if i < 0 || i as usize >= arr.len() {
                                let len = arr.len();
                                return Err(serr!(
                                    "st.shared.f64: index {i} out of bounds (len {len})"
                                )
                                .at_thread(bs.tid[l]));
                            }
                            arr[i as usize] = v;
                            bs.scratch_elems.push((l, i));
                        }
                    }
                    self.shared_access(&bs.scratch_elems);
                }
                Stmt::StSI { sh, idx, val } => {
                    self.burn()?;
                    let active = self.issue(mask);
                    if active == 0 {
                        continue;
                    }
                    bs.scratch_elems.clear();
                    for l in 0..bs.lanes {
                        if mask[l] {
                            let i = bs.ri(*idx, l);
                            let v = bs.ri(*val, l);
                            let arr = &mut bs.sh_i[*sh as usize];
                            if i < 0 || i as usize >= arr.len() {
                                let len = arr.len();
                                return Err(serr!(
                                    "st.shared.s64: index {i} out of bounds (len {len})"
                                )
                                .at_thread(bs.tid[l]));
                            }
                            arr[i as usize] = v;
                            bs.scratch_elems.push((l, i));
                        }
                    }
                    self.shared_access(&bs.scratch_elems);
                }
                Stmt::StVarF { var, val } => {
                    self.burn()?;
                    self.issue(mask);
                    for l in 0..bs.lanes {
                        if mask[l] {
                            bs.vars[var.0 as usize * bs.lanes + l] = bs.rf(*val, l).to_bits();
                        }
                    }
                }
                Stmt::StVarI { var, val } => {
                    self.burn()?;
                    self.issue(mask);
                    for l in 0..bs.lanes {
                        if mask[l] {
                            bs.vars[var.0 as usize * bs.lanes + l] = bs.ri(*val, l) as u64;
                        }
                    }
                }
                Stmt::Sync => {
                    if mask.iter().any(|&m| !m) {
                        return Err("bar.sync reached inside divergent control flow (the block \
                             barrier requires all threads of the block)"
                            .into());
                    }
                    self.stats.syncs += self.n_warps as u64;
                    let nw = self.n_warps as u64;
                    self.prof_add(|c| c.syncs += nw);
                }
                Stmt::Comment(_) => {}
                Stmt::If {
                    cond,
                    then_b,
                    else_b,
                } => {
                    let mut taken = bs.take_mask();
                    taken.extend((0..bs.lanes).map(|l| bs.rb(*cond, l)));
                    self.note_divergence(mask, &taken);
                    let mut then_mask = bs.take_mask();
                    then_mask.extend((0..bs.lanes).map(|l| mask[l] && taken[l]));
                    let mut else_mask = bs.take_mask();
                    else_mask.extend((0..bs.lanes).map(|l| mask[l] && !taken[l]));
                    bs.put_mask(taken);
                    if then_mask.iter().any(|&m| m) {
                        self.exec_block(bs, then_b, &then_mask)?;
                    }
                    if else_mask.iter().any(|&m| m) && !else_b.is_empty() {
                        self.exec_block(bs, else_b, &else_mask)?;
                    }
                    bs.put_mask(then_mask);
                    bs.put_mask(else_mask);
                }
                Stmt::ForRange {
                    counter,
                    start,
                    end,
                    body,
                    vectorize,
                } => {
                    self.exec_for(bs, *counter, *start, *end, body, *vectorize, mask)?;
                }
                Stmt::While {
                    cond_block,
                    cond,
                    body,
                } => {
                    // Divergence at the loop exit test is attributed to the
                    // while header, not the last statement of the condition
                    // block the nested exec just ran.
                    let my_id = self.cur_instr;
                    let mut active = bs.take_mask();
                    active.extend_from_slice(mask);
                    let mut taken = bs.take_mask();
                    loop {
                        self.burn()?;
                        if !active.iter().any(|&m| m) {
                            break;
                        }
                        self.exec_block(bs, cond_block, &active)?;
                        taken.clear();
                        taken.extend((0..bs.lanes).map(|l| bs.rb(*cond, l)));
                        self.cur_instr = my_id;
                        self.note_divergence(&active, &taken);
                        for l in 0..bs.lanes {
                            active[l] = active[l] && taken[l];
                        }
                        if !active.iter().any(|&m| m) {
                            break;
                        }
                        self.exec_block(bs, body, &active)?;
                    }
                    bs.put_mask(active);
                    bs.put_mask(taken);
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_for(
        &mut self,
        bs: &mut BlockState,
        counter: ValId,
        start: ValId,
        end: ValId,
        body: &Block,
        vectorize: bool,
        mask: &[bool],
    ) -> R<()> {
        // Open a vectorization region for outermost element loops on CPU
        // device models.
        let opened_region = vectorize
            && self.spec.kind == DeviceKind::Cpu
            && self.spec.simd_width > 1
            && self.region.is_none();
        if opened_region {
            self.region = Some(RegionAcc::default());
        } else if let Some(r) = &mut self.region {
            r.depth += 1;
        }

        let result = self.exec_for_inner(bs, counter, start, end, body, mask, opened_region);

        if opened_region {
            let r = self.region.take().expect("region open");
            if r.vectorized() {
                self.stats.vec_issue += r.issue;
                self.stats.vec_flops += r.flops;
                // Special functions do not vectorize on the modeled units.
                self.stats.special_ops += r.special;
            } else {
                self.stats.scalar_issue += r.issue;
                self.stats.scalar_flops += r.flops;
                self.stats.special_ops += r.special;
            }
        } else if let Some(reg) = &mut self.region {
            reg.depth = reg.depth.saturating_sub(1);
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_for_inner(
        &mut self,
        bs: &mut BlockState,
        counter: ValId,
        start: ValId,
        end: ValId,
        body: &Block,
        mask: &[bool],
        probe: bool,
    ) -> R<()> {
        // Uniformity check over active lanes.
        let mut s0 = None;
        let mut e0 = None;
        let mut uniform = true;
        for l in 0..bs.lanes {
            if mask[l] {
                let s = bs.ri(start, l);
                let e = bs.ri(end, l);
                match (s0, e0) {
                    (None, None) => {
                        s0 = Some(s);
                        e0 = Some(e);
                    }
                    (Some(ps), Some(pe)) => {
                        if ps != s || pe != e {
                            uniform = false;
                        }
                    }
                    _ => unreachable!(),
                }
            }
        }
        let (Some(s0), Some(e0)) = (s0, e0) else {
            return Ok(()); // no active lanes
        };

        if uniform {
            let mut k = s0;
            while k < e0 {
                self.burn()?;
                for l in 0..bs.lanes {
                    if mask[l] {
                        bs.si(counter, l, k);
                    }
                }
                self.exec_block(bs, body, mask)?;
                if probe {
                    if let Some(r) = &mut self.region {
                        r.iter += 1;
                    }
                }
                k += 1;
            }
        } else {
            // Per-lane trip counts: iterate with a shrinking mask.
            if probe {
                if let Some(r) = &mut self.region {
                    r.probe_failed = true;
                }
            }
            // Divergence at the trip test belongs to the for header, not to
            // whatever statement the body exec left in `cur_instr`.
            let my_id = self.cur_instr;
            let mut active = bs.take_mask();
            let mut iter: i64 = 0;
            loop {
                self.burn()?;
                let mut any = false;
                active.clear();
                active.extend((0..bs.lanes).map(|l| {
                    let a = mask[l] && {
                        let s = bs.ri(start, l);
                        let e = bs.ri(end, l);
                        s + iter < e
                    };
                    any |= a;
                    a
                }));
                if !any {
                    break;
                }
                self.cur_instr = my_id;
                self.note_divergence(mask, &active);
                for l in 0..bs.lanes {
                    if active[l] {
                        let s = bs.ri(start, l);
                        bs.si(counter, l, s + iter);
                    }
                }
                self.exec_block(bs, body, &active)?;
                iter += 1;
            }
            bs.put_mask(active);
        }
        Ok(())
    }
}

/// True when `prog` contains a global atomic anywhere in its body. Such
/// programs run on the serial path: the interpreter's atomics are plain
/// read-modify-write sequences, and for floating point even a locked
/// parallel ordering would change rounding versus the serial block order.
pub fn program_uses_global_atomics(prog: &Program) -> bool {
    fn block_has(b: &Block) -> bool {
        b.0.iter().any(|stmt| match stmt {
            Stmt::I(instr) => {
                matches!(instr.op, Op::AtomicGF { .. } | Op::AtomicGI { .. })
            }
            Stmt::If { then_b, else_b, .. } => block_has(then_b) || block_has(else_b),
            Stmt::ForRange { body, .. } => block_has(body),
            Stmt::While {
                cond_block, body, ..
            } => block_has(cond_block) || block_has(body),
            _ => false,
        })
    }
    block_has(&prog.body)
}

/// Strictly increasing linear block indices for `ExecMode::SampleBlocks`:
/// ~`k` blocks evenly spaced over `0..total`, never duplicated, never out
/// of range. `k` is clamped to `1..=total`.
fn sample_indices(total: usize, k: usize) -> Vec<usize> {
    if total == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, total);
    let stride = total as f64 / k as f64;
    let mut idx = Vec::with_capacity(k);
    for j in 0..k {
        let i = (((j as f64 + 0.5) * stride) as usize).min(total - 1);
        // Rounding can land two sample points on the same block; keep the
        // sequence strictly increasing instead of deduping afterwards.
        if idx.last().is_none_or(|&last| i > last) {
            idx.push(i);
        }
    }
    idx
}

/// Which interpreter executes the blocks of a launch.
///
/// All engines produce bit-identical buffers, [`LaunchStats`] and
/// [`TimeBreakdown`]; `Reference` and `Lowered` exist so tests and
/// benchmarks can compare against the interpreters each faster tier
/// replaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Pre-lowered warp programs (see `crate::lower`): the program is
    /// flattened and uniformity-analyzed once, then executed per block.
    Lowered,
    /// Direct tree-walking interpretation of the structured IR.
    Reference,
    /// Direct-threaded compiled programs (see `crate::compile`): the
    /// lowered form is further re-threaded into structured nodes whose
    /// uniform straight-line loops run as fused step lists with batched
    /// accounting. The default engine. Traced/profiled launches execute on
    /// the lowered tier instead (identical streams by construction), and
    /// programs failing IR validation fall back to `Reference`.
    Compiled,
}

/// Launch geometry and bindings shared by every interpreter worker.
pub(crate) struct LaunchCtx<'a> {
    pub(crate) spec: &'a DeviceSpec,
    pub(crate) prog: &'a Program,
    pub(crate) args: &'a SimArgs,
    pub(crate) grid: [i64; 3],
    pub(crate) block: [i64; 3],
    pub(crate) elems: [i64; 3],
    pub(crate) warp_w: usize,
    pub(crate) n_warps: usize,
    pub(crate) lanes: usize,
    pub(crate) grid_ext: Vecn<3>,
    pub(crate) thread_ext: Vecn<3>,
    /// Pre-lowered form of `prog`, when the launch runs the lowered or
    /// compiled engine.
    pub(crate) lowered: Option<std::sync::Arc<crate::lower::WarpProgram>>,
    /// Compiled form of `prog`, when the launch runs the compiled engine
    /// (untraced launches only; see [`Engine::Compiled`]).
    pub(crate) compiled: Option<std::sync::Arc<crate::compile::CompiledProgram>>,
    /// Per-worker instruction budget and whether it is a fault-plan
    /// watchdog budget (exhaustion then reports `Timeout`).
    pub(crate) fuel: u64,
    pub(crate) watchdog: bool,
    /// Launch-scoped ECC injection context, when a fault plan enables it.
    pub(crate) ecc: Option<EccCtx>,
    /// Canonical statement numbering, present only when tracing/profiling is
    /// enabled for this launch.
    pub(crate) numbering: Option<Arc<Numbering>>,
    /// Deferred-atomics plan, when the program's global atomics are
    /// commutative-reducible under this launch's bindings.
    pub(crate) atomics: Option<Arc<crate::atomics::AtomicsPlan>>,
}

/// What one interpreter worker produced: its stats, plus the per-statement
/// profile and per-block spans when the launch is being traced.
pub(crate) struct WorkerOut {
    pub(crate) stats: LaunchStats,
    pub(crate) profile: Option<Box<[InstrCounters]>>,
    pub(crate) spans: Vec<BlockSpan>,
    /// Deferred atomic accumulations, reduced by the driver in worker
    /// order after every worker finished.
    pub(crate) atomics: Option<crate::atomics::AtomicsPriv>,
}

/// The issue-roofline cycle count of `s` (same weights as `estimate_time`);
/// per-block span durations are deltas of this.
pub(crate) fn stats_issue_cycles(s: &LaunchStats) -> u64 {
    s.scalar_issue + s.vec_issue + s.bank_conflict_cycles + s.syncs * 8 + s.atomics * 16
}

/// Build one worker's [`Machine`]: stats accumulator, cache models for the
/// SMs this worker owns, and the reusable accounting scratch.
pub(crate) fn make_machine<'a>(
    ctx: &'a LaunchCtx<'_>,
    mem: MemAccess<'a>,
    team: usize,
    worker: usize,
) -> Machine<'a> {
    let spec = ctx.spec;
    let sms = spec.sms.max(1);
    let caches = match spec.cache_scope {
        CacheScope::None => Caches::None,
        // Only the SMs this worker owns, compacted: global SM `s` lives at
        // local slot `s / team` (for team == 1 that is the identity).
        CacheScope::PerSm => Caches::PerSm(
            (0..sms)
                .filter(|s| s % team == worker)
                .map(|_| CacheSim::new(spec.cache_kib, spec.cache_assoc, spec.line_bytes))
                .collect(),
        ),
        // A device-wide cache cannot be split; the caller never parallelizes
        // this scope (see `run_kernel_launch_threads`).
        CacheScope::Shared => {
            debug_assert_eq!(team, 1, "shared-cache launches must be serial");
            Caches::Shared(CacheSim::new(
                spec.cache_kib,
                spec.cache_assoc,
                spec.line_bytes,
            ))
        }
    };
    Machine {
        prog: ctx.prog,
        spec,
        mem,
        args: ctx.args,
        grid: ctx.grid,
        block: ctx.block,
        elems: ctx.elems,
        warp_w: ctx.warp_w,
        n_warps: ctx.n_warps,
        stats: LaunchStats::default(),
        region: None,
        caches,
        cur_sm: 0,
        fuel: ctx.fuel,
        watchdog: ctx.watchdog,
        ecc: ctx.ecc,
        cur_block_lin: 0,
        scratch_lines: Vec::new(),
        scratch_banks: Vec::new(),
        profile: ctx.numbering.as_ref().map(|n| n.counters()),
        cur_instr: 0,
        numbering: ctx.numbering.as_deref(),
        atomics: ctx
            .atomics
            .as_ref()
            .map(|p| crate::atomics::AtomicsPriv::new(p.clone())),
    }
}

/// Interpret the subset of `indices` owned by `worker` of a `team`.
///
/// Blocks are assigned to SMs round-robin (`sm = lin % sms`, as the serial
/// interpreter always did) and SMs are partitioned across workers
/// (`worker = sm % team`), so each per-SM cache sees exactly the access
/// stream it would see serially: worker-private caches make the parallel
/// hit/miss counts bit-identical to a serial run. Errors carry the linear
/// block index so the caller can report the first failing block
/// deterministically.
fn interpret_blocks(
    ctx: &LaunchCtx<'_>,
    mem: MemAccess<'_>,
    team: usize,
    worker: usize,
    indices: &[usize],
) -> Result<WorkerOut, (usize, SimError)> {
    if let Some(cp) = &ctx.compiled {
        return crate::compile::interpret_blocks_compiled(ctx, mem, team, worker, indices, cp);
    }
    if let Some(wp) = &ctx.lowered {
        return crate::lower::interpret_blocks_lowered(ctx, mem, team, worker, indices, wp);
    }
    let spec = ctx.spec;
    let prog = ctx.prog;
    let sms = spec.sms.max(1);
    let lanes = ctx.lanes;
    let mut m = make_machine(ctx, mem, team, worker);
    let mut bs = BlockState {
        lanes,
        regs: vec![0; prog.n_vals as usize * lanes],
        vars: vec![0; prog.vars.len() * lanes],
        sh_f: prog
            .shared
            .iter()
            .map(|s| {
                if s.ty == Ty::F64 {
                    vec![0.0; s.len]
                } else {
                    vec![]
                }
            })
            .collect(),
        sh_i: prog
            .shared
            .iter()
            .map(|s| {
                if s.ty == Ty::I64 {
                    vec![0; s.len]
                } else {
                    vec![]
                }
            })
            .collect(),
        loc_f: prog
            .locals
            .iter()
            .map(|l| vec![0.0; l.len * lanes])
            .collect(),
        tid: (0..lanes)
            .map(|t| ctx.thread_ext.delinearize(t).map_i64())
            .collect(),
        bidx: [0; 3],
        scratch_addrs: Vec::new(),
        scratch_elems: Vec::new(),
        mask_pool: Vec::new(),
    };

    // Shared/local arrays must be zero at block entry. They start zeroed,
    // so resetting is only needed *between* blocks, and only when the
    // program declares any such arrays at all.
    let has_block_arrays = bs.sh_f.iter().any(|a| !a.is_empty())
        || bs.sh_i.iter().any(|a| !a.is_empty())
        || bs.loc_f.iter().any(|a| !a.is_empty());
    let mut ran_a_block = false;

    let full_mask = vec![true; lanes];
    let tracing = ctx.numbering.is_some();
    let mut spans: Vec<BlockSpan> = Vec::new();
    for &lin in indices {
        let sm = lin % sms;
        if sm % team != worker {
            continue;
        }
        if has_block_arrays && ran_a_block {
            for a in &mut bs.sh_f {
                a.iter_mut().for_each(|v| *v = 0.0);
            }
            for a in &mut bs.sh_i {
                a.iter_mut().for_each(|v| *v = 0);
            }
            for a in &mut bs.loc_f {
                a.iter_mut().for_each(|v| *v = 0.0);
            }
        }
        ran_a_block = true;
        m.cur_sm = sm / team;
        m.cur_block_lin = lin;
        bs.bidx = ctx.grid_ext.delinearize(lin).map_i64();
        let cycles_before = stats_issue_cycles(&m.stats);
        m.exec_block(&mut bs, &prog.body, &full_mask).map_err(|e| {
            (
                lin,
                e.with_block(bs.bidx)
                    .context(&format!("block {:?}: ", bs.bidx)),
            )
        })?;
        if tracing {
            spans.push(BlockSpan {
                block: lin as u64,
                sm: sm as u64,
                cycles: stats_issue_cycles(&m.stats) - cycles_before,
            });
        }
        m.stats.blocks += 1;
        m.stats.warps += m.n_warps as u64;
        m.stats.threads += lanes as u64;
    }
    Ok(WorkerOut {
        stats: m.stats,
        profile: m.profile,
        spans,
        atomics: m.atomics,
    })
}

/// Interpret a launch of `prog` with work division `wd` on a device
/// described by `spec`, memory `mem` and argument bindings `args`.
///
/// Runs on `spec.sim_threads` interpreter threads (overridable via the
/// `ALPAKA_SIM_THREADS` environment variable); see
/// [`run_kernel_launch_threads`] for the exact parallel-execution rules.
pub fn run_kernel_launch(
    spec: &DeviceSpec,
    mem: &mut DeviceMem,
    prog: &Program,
    wd: &WorkDiv,
    args: &SimArgs,
    mode: ExecMode,
) -> Result<SimReport, SimError> {
    run_kernel_launch_threads(
        spec,
        mem,
        prog,
        wd,
        args,
        mode,
        resolve_sim_threads(spec.sim_threads),
    )
}

/// One worker's outcome: merged stats, or the failing block's linear index
/// plus its error (so the lowest-index error can be selected, as serial
/// execution would report it).
type WorkerSlot = Mutex<Option<Result<WorkerOut, (usize, SimError)>>>;

/// [`run_kernel_launch`] with an explicit interpreter thread count.
///
/// With `threads == 1` this is the exact serial interpreter. With
/// `threads > 1` the block loop is sharded over a worker team — each worker
/// owns a disjoint set of SMs (and their cache models) plus the blocks
/// scheduled onto them, interprets its blocks in increasing linear order,
/// and the per-worker [`LaunchStats`] are merged in fixed worker-index
/// order. Buffer contents, `LaunchStats` and `TimeBreakdown` are
/// bit-identical to the serial run for race-free kernels. Two launch
/// classes always take the serial path regardless of `threads`:
///
/// * programs with global atomics (their results depend on execution
///   order — float atomics even round differently), and
/// * devices with a [`CacheScope::Shared`] cache, whose single device-wide
///   cache model would see an order-dependent access stream.
///
/// Each worker gets its own instruction-fuel budget, so a pathological
/// runaway kernel may burn up to `threads`× the serial budget before
/// erroring.
#[allow(clippy::too_many_arguments)]
pub fn run_kernel_launch_threads(
    spec: &DeviceSpec,
    mem: &mut DeviceMem,
    prog: &Program,
    wd: &WorkDiv,
    args: &SimArgs,
    mode: ExecMode,
    threads: usize,
) -> Result<SimReport, SimError> {
    run_kernel_launch_engine(
        spec,
        mem,
        prog,
        wd,
        args,
        mode,
        threads,
        resolve_sim_engine(Engine::Compiled)?,
    )
}

/// Fault-injection knobs scoped to a single launch, derived from a
/// `FaultPlan` by the device layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaunchFaults {
    /// Injected-ECC decision context for this launch's ordinal.
    pub ecc: Option<EccCtx>,
    /// Watchdog cycle budget per interpreter worker; exceeding it fails the
    /// launch with a `Timeout` error.
    pub watchdog_fuel: Option<u64>,
}

/// [`run_kernel_launch_threads`] with an explicit [`Engine`] choice
/// (bypassing the `ALPAKA_SIM_ENGINE` override).
///
/// `Engine::Compiled` (the default everywhere else) pre-lowers and then
/// re-threads the program, `Engine::Lowered` stops at the pre-lowered
/// interpreter, and `Engine::Reference` forces the tree-walking
/// interpreter; the first two fall back to the reference interpreter if
/// the program fails IR validation. Results are bit-identical in every
/// case.
#[allow(clippy::too_many_arguments)]
pub fn run_kernel_launch_engine(
    spec: &DeviceSpec,
    mem: &mut DeviceMem,
    prog: &Program,
    wd: &WorkDiv,
    args: &SimArgs,
    mode: ExecMode,
    threads: usize,
    engine: Engine,
) -> Result<SimReport, SimError> {
    run_kernel_launch_faulty(spec, mem, prog, wd, args, mode, threads, engine, None)
}

/// [`run_kernel_launch_engine`] with per-launch fault injection. This is
/// the full entry point the simulated device calls; every other launch
/// function delegates here with `faults: None`.
#[allow(clippy::too_many_arguments)]
pub fn run_kernel_launch_faulty(
    spec: &DeviceSpec,
    mem: &mut DeviceMem,
    prog: &Program,
    wd: &WorkDiv,
    args: &SimArgs,
    mode: ExecMode,
    threads: usize,
    engine: Engine,
    faults: Option<LaunchFaults>,
) -> Result<SimReport, SimError> {
    let host_t0 = Instant::now();
    let threads_per_block = wd.threads_per_block();
    if threads_per_block > spec.max_threads_per_block {
        return Err(serr!(
            "{} supports at most {} threads per block, got {threads_per_block}",
            spec.name,
            spec.max_threads_per_block
        ));
    }
    if prog.shared_bytes() > spec.shared_mem_per_block {
        return Err(serr!(
            "kernel needs {} B shared memory, device has {} B per block",
            prog.shared_bytes(),
            spec.shared_mem_per_block
        ));
    }
    if prog.dims != wd.dim {
        return Err(serr!(
            "program traced for {}-D launches, work division is {}-D",
            prog.dims,
            wd.dim
        ));
    }

    let total_blocks = wd.block_count();
    let (indices, scale, sampled): (Vec<usize>, f64, bool) = match mode {
        ExecMode::Full => ((0..total_blocks).collect(), 1.0, false),
        ExecMode::SampleBlocks(k) => {
            let idx = sample_indices(total_blocks, k);
            let scale = total_blocks as f64 / idx.len().max(1) as f64;
            (idx, scale, total_blocks > k)
        }
        ExecMode::BlockRange { start, end } => {
            if start > end || end > total_blocks {
                return Err(serr!(
                    "block range {start}..{end} outside grid of {total_blocks} block(s)"
                ));
            }
            ((start..end).collect(), 1.0, false)
        }
    };

    let warp_w = spec.warp_width.max(1);
    // Profiling piggybacks on the tracing switch so the default launch
    // path stays allocation-free.
    let numbering = if alpaka_core::trace::enabled() {
        Some(Arc::new(Numbering::new(prog)))
    } else {
        None
    };
    let lowered = match engine {
        Engine::Reference => None,
        Engine::Lowered | Engine::Compiled => crate::lower::lowered_for(prog, spec),
    };
    // Traced/profiled launches run the lowered tier even under
    // `Engine::Compiled`: its per-instruction replay is what makes trace
    // and profile streams identical across engines by construction. A
    // compiled program that fused nothing would also replay the flat op
    // list one dispatch layer deeper than the lowered interpreter — pure
    // overhead — so those launches dispatch to the lowered tier too.
    let compiled = match (engine, &lowered, &numbering) {
        (Engine::Compiled, Some(wp), None) => {
            Some(crate::compile::compiled_for(prog, spec, wp)).filter(|cp| cp.has_fused())
        }
        _ => None,
    };
    // Classify the program's global atomics: a reducible plan lets every
    // engine defer them (worker-private accumulation, ordered reduction
    // below) and so lets the block loop parallelize.
    let (atomics_summary, atomics_plan) = crate::atomics::classify(prog, mem, args);
    let has_atomics = !matches!(atomics_summary, alpaka_kir::AtomicsSummary::NoAtomics);
    let ctx = LaunchCtx {
        spec,
        prog,
        args,
        grid: wd.blocks.map(|v| v as i64),
        block: wd.threads.map(|v| v as i64),
        elems: wd.elems.map(|v| v as i64),
        warp_w,
        n_warps: threads_per_block.div_ceil(warp_w),
        lanes: threads_per_block,
        grid_ext: Vecn(wd.blocks),
        thread_ext: Vecn(wd.threads),
        lowered,
        compiled,
        fuel: faults.and_then(|f| f.watchdog_fuel).unwrap_or(DEFAULT_FUEL),
        watchdog: faults.is_some_and(|f| f.watchdog_fuel.is_some()),
        ecc: faults.and_then(|f| f.ecc),
        numbering,
        atomics: atomics_plan,
    };

    // A worker without SMs would idle, so the team never exceeds the SM
    // count (nor the block count).
    let team = threads
        .max(1)
        .min(spec.sms.max(1))
        .min(indices.len().max(1));
    // Atomics no longer force the serial path by themselves: a launch
    // with a deferral plan parallelizes like any other. Only non-reducible
    // atomic programs (and shared-cache devices) stay serial.
    let parallel = team > 1
        && spec.cache_scope != CacheScope::Shared
        && (!has_atomics || ctx.atomics.is_some());
    let fallback = if team > 1 && spec.cache_scope == CacheScope::Shared {
        crate::atomics::FallbackReason::SharedCacheScope
    } else if team > 1 && has_atomics && ctx.atomics.is_none() {
        crate::atomics::FallbackReason::AtomicsNonReducible
    } else if engine != Engine::Reference && ctx.lowered.is_none() {
        crate::atomics::FallbackReason::ValidationFailed
    } else {
        crate::atomics::FallbackReason::None
    };

    let (raw_stats, raw_profile, mut spans, workers, deferred) = if !parallel {
        let out =
            interpret_blocks(&ctx, MemAccess::Excl(mem), 1, 0, &indices).map_err(|(_, msg)| msg)?;
        let deferred = out.atomics.into_iter().collect::<Vec<_>>();
        (out.stats, out.profile, out.spans, 1, deferred)
    } else {
        let view = mem.shared_view();
        let slots: Vec<WorkerSlot> = (0..team).map(|_| Mutex::new(None)).collect();
        run_team(team, |w| {
            let result = interpret_blocks(&ctx, MemAccess::Shared(&view), team, w, &indices);
            *slots[w].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
        })
        .map_err(|p| serr!("simulator worker panicked: {p}"))?;

        // Merge in fixed worker-index order; error on the lowest failing
        // block so the message matches what the serial run would report.
        let mut merged = LaunchStats::default();
        let mut merged_prof: Option<Box<[InstrCounters]>> = None;
        let mut merged_spans: Vec<BlockSpan> = Vec::new();
        let mut deferred: Vec<crate::atomics::AtomicsPriv> = Vec::new();
        let mut first_err: Option<(usize, SimError)> = None;
        for slot in &slots {
            match slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                Some(Ok(out)) => {
                    merged.add(&out.stats);
                    if let Some(p) = out.profile {
                        match &mut merged_prof {
                            Some(m) => merge_counters(m, &p),
                            None => merged_prof = Some(p),
                        }
                    }
                    merged_spans.extend(out.spans);
                    deferred.extend(out.atomics);
                }
                Some(Err((lin, msg))) => {
                    if first_err.as_ref().is_none_or(|(l, _)| lin < *l) {
                        first_err = Some((lin, msg));
                    }
                }
                None => return Err("simulator worker produced no result".into()),
            }
        }
        if let Some((_, msg)) = first_err {
            return Err(msg);
        }
        (merged, merged_prof, merged_spans, team, deferred)
    };
    // Reduce the workers' deferred atomics into the real buffers, in
    // worker order — only after every block ran without error. (A failed
    // launch thus applies none of its atomics, where the direct path
    // would have applied those preceding the fault; no API promises
    // buffer contents of a failed launch.)
    if let Some(plan) = &ctx.atomics {
        crate::atomics::apply_deferred(plan, deferred, mem, args);
    }
    // Workers interleave over SMs; restore the serial block order.
    spans.sort_by_key(|s| s.block);

    let interpreted_blocks = raw_stats.blocks;
    let interpreted_instrs = raw_stats.scalar_issue + raw_stats.vec_issue;
    let stats = if sampled {
        raw_stats.scaled(scale)
    } else {
        raw_stats
    };
    let time = estimate_time(spec, &stats, threads_per_block, prog.shared_bytes());
    let wall_s = host_t0.elapsed().as_secs_f64();
    let host = HostPerf {
        wall_s,
        blocks_per_sec: interpreted_blocks as f64 / wall_s.max(1e-12),
        instrs_per_sec: interpreted_instrs as f64 / wall_s.max(1e-12),
        workers,
    };
    let profile = match (raw_profile, &ctx.numbering) {
        (Some(p), Some(n)) => Some(KernelProfile::new(prog.name.clone(), n, p.into_vec())),
        _ => None,
    };
    Ok(SimReport {
        stats,
        time,
        sampled,
        host,
        profile,
        spans,
        lowering_cache: crate::lower::lowering_cache_counters(),
        compile_cache: crate::compile::compile_cache_counters(),
        fallback,
        resilience: None,
    })
}

pub(crate) trait MapI64 {
    fn map_i64(self) -> [i64; 3];
}

impl MapI64 for Vecn<3> {
    fn map_i64(self) -> [i64; 3] {
        [self.0[0] as i64, self.0[1] as i64, self.0[2] as i64]
    }
}

#[cfg(test)]
mod tests {
    use super::{resolve_sim_engine_inner, resolve_sim_threads_inner, sample_indices, Engine};

    #[test]
    fn sim_engine_env_unset_uses_configured() {
        assert_eq!(
            resolve_sim_engine_inner(None, Engine::Compiled).unwrap(),
            Engine::Compiled
        );
        assert_eq!(
            resolve_sim_engine_inner(None, Engine::Reference).unwrap(),
            Engine::Reference
        );
        // An empty value (e.g. `ALPAKA_SIM_ENGINE= cmd`) counts as unset.
        assert_eq!(
            resolve_sim_engine_inner(Some(""), Engine::Lowered).unwrap(),
            Engine::Lowered
        );
    }

    #[test]
    fn sim_engine_valid_env_wins() {
        assert_eq!(
            resolve_sim_engine_inner(Some("reference"), Engine::Compiled).unwrap(),
            Engine::Reference
        );
        assert_eq!(
            resolve_sim_engine_inner(Some("lowered"), Engine::Compiled).unwrap(),
            Engine::Lowered
        );
        assert_eq!(
            resolve_sim_engine_inner(Some("compiled"), Engine::Reference).unwrap(),
            Engine::Compiled
        );
        // Trimmed and case-insensitive, like the threads override.
        assert_eq!(
            resolve_sim_engine_inner(Some(" Compiled "), Engine::Reference).unwrap(),
            Engine::Compiled
        );
    }

    #[test]
    fn sim_engine_unknown_env_is_an_error() {
        let err = resolve_sim_engine_inner(Some("jit"), Engine::Compiled).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("ALPAKA_SIM_ENGINE"), "{msg}");
        assert!(msg.contains("\"jit\""), "{msg}");
        assert!(msg.contains("compiled"), "{msg}");
    }

    #[test]
    fn sim_threads_env_unset_uses_configured() {
        assert_eq!(resolve_sim_threads_inner(None, 4), (4, false));
        assert_eq!(resolve_sim_threads_inner(None, 0), (1, false));
    }

    #[test]
    fn sim_threads_valid_env_wins() {
        assert_eq!(resolve_sim_threads_inner(Some("6"), 2), (6, false));
        assert_eq!(resolve_sim_threads_inner(Some(" 3 "), 2), (3, false));
    }

    #[test]
    fn sim_threads_invalid_env_warns_and_falls_back() {
        assert_eq!(
            resolve_sim_threads_inner(Some("not-a-number"), 4),
            (4, true)
        );
        assert_eq!(resolve_sim_threads_inner(Some("0"), 4), (4, true));
        assert_eq!(resolve_sim_threads_inner(Some(""), 0), (1, true));
        assert_eq!(resolve_sim_threads_inner(Some("-2"), 3), (3, true));
    }

    fn assert_strictly_increasing(idx: &[usize]) {
        assert!(idx.windows(2).all(|w| w[0] < w[1]), "{idx:?}");
    }

    #[test]
    fn sample_more_than_total_visits_each_block_once() {
        let idx = sample_indices(7, 100);
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn sample_one_picks_a_middle_block() {
        let idx = sample_indices(100, 1);
        assert_eq!(idx, vec![50]);
        assert_eq!(sample_indices(1, 1), vec![0]);
    }

    #[test]
    fn samples_are_strictly_increasing_and_in_range() {
        for total in [1usize, 2, 3, 10, 97, 1024] {
            for k in [1usize, 2, 3, 7, 64, 2000] {
                let idx = sample_indices(total, k);
                assert!(!idx.is_empty());
                assert!(idx.len() <= k.min(total));
                assert_strictly_increasing(&idx);
                assert!(idx.iter().all(|&i| i < total), "{total} {k} {idx:?}");
            }
        }
    }

    #[test]
    fn empty_grid_samples_nothing() {
        assert!(sample_indices(0, 5).is_empty());
    }
}
