//! Set-associative LRU cache simulator.
//!
//! Used to model the CPU per-core caches (and the GPU's shared L2): every
//! global-memory transaction is filtered through the cache; only misses
//! contribute DRAM bytes to the roofline's memory term. This is what makes
//! cache-blocked (tiled) kernels win on the simulated CPUs, reproducing the
//! Fig. 8/9 behaviour of the paper's tiling DGEMM.

/// A classic set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct CacheSim {
    sets: usize,
    assoc: usize,
    line_bytes: usize,
    /// `tags[set * assoc + way]`; u64::MAX means invalid. LRU order is kept
    /// per set in `lru` (lower value = more recently used stamp).
    tags: Vec<u64>,
    stamp: Vec<u64>,
    /// Per-set way of the most recent scan hit or fill — which is therefore
    /// the set's MRU way. Streaming kernels re-touch a set's MRU line many
    /// times in a row, so trying this way first turns most hits into a single
    /// tag compare; and because the way is already MRU, re-stamping it cannot
    /// change within-set LRU order, so the hinted path skips the stamp store
    /// entirely. Hit/miss outcomes and eviction order are unaffected.
    hint: Vec<u16>,
    tick: u64,
    pub hits: u64,
    pub misses: u64,
}

impl CacheSim {
    /// Build a cache of `capacity_kib` KiB with `assoc` ways and
    /// `line_bytes` lines. Set count is rounded up to a power of two.
    pub fn new(capacity_kib: usize, assoc: usize, line_bytes: usize) -> Self {
        let assoc = assoc.max(1);
        let lines = (capacity_kib * 1024 / line_bytes).max(assoc);
        let sets = (lines / assoc).next_power_of_two();
        CacheSim {
            sets,
            assoc,
            line_bytes,
            tags: vec![u64::MAX; sets * assoc],
            stamp: vec![0; sets * assoc],
            hint: vec![0; sets],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Access the line containing `byte_addr`; returns true on hit.
    pub fn access(&mut self, byte_addr: u64) -> bool {
        self.access_line(byte_addr / self.line_bytes as u64)
    }

    /// Access by line index directly (callers that already work in line
    /// units skip the byte-address division).
    pub fn access_line(&mut self, line: u64) -> bool {
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.assoc;
        let hinted = self.hint[set] as usize;
        if hinted < self.assoc && self.tags[base + hinted] == line {
            // Already the MRU way of its set: stamps order ways only within
            // a set, so refreshing the maximum is a no-op — skip it (and the
            // tick, which only exists to feed stamps).
            self.hits += 1;
            return true;
        }
        self.tick += 1;
        let ways = &self.tags[base..base + self.assoc];
        if let Some(way) = ways.iter().position(|&t| t == line) {
            self.stamp[base + way] = self.tick;
            self.hint[set] = way as u16;
            self.hits += 1;
            return true;
        }
        // Miss: evict the LRU way.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.assoc {
            let s = self.stamp[base + w];
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if s < oldest {
                oldest = s;
                victim = w;
            }
        }
        self.tags[base + victim] = line;
        self.stamp[base + victim] = self.tick;
        self.hint[set] = victim as u16;
        self.misses += 1;
        false
    }

    /// Drop all contents (between launches).
    pub fn invalidate(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamp.fill(0);
        self.hint.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheSim::new(32, 4, 64);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(8)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn capacity_eviction() {
        // 1 KiB, 1-way, 64B lines -> 16 lines direct mapped.
        let mut c = CacheSim::new(1, 1, 64);
        for i in 0..16 {
            assert!(!c.access(i * 64));
        }
        for i in 0..16 {
            assert!(c.access(i * 64), "line {i} should still be resident");
        }
        // A conflicting line (maps to set 0) evicts line 0.
        assert!(!c.access(16 * 64));
        assert!(!c.access(0));
    }

    #[test]
    fn lru_keeps_hot_lines() {
        // 2-way set: A, B, touch A again, insert C (same set) -> B evicted.
        let mut c = CacheSim::new(1, 2, 64);
        let sets = c.sets as u64;
        let a = 0u64;
        let b = sets * 64; // same set 0, different tag
        let d = 2 * sets * 64;
        c.access(a);
        c.access(b);
        c.access(a); // refresh A
        c.access(d); // evicts B (LRU)
        assert!(c.access(a), "A must have survived");
        assert!(!c.access(b), "B must have been evicted");
    }

    #[test]
    fn working_set_within_capacity_streams_once() {
        let mut c = CacheSim::new(256, 8, 64);
        let n = 1000u64;
        // Two passes over a small array: second pass all hits.
        for pass in 0..2 {
            for i in 0..n {
                let hit = c.access(i * 8);
                if pass == 1 {
                    assert!(hit);
                }
            }
        }
    }

    #[test]
    fn invalidate_clears() {
        let mut c = CacheSim::new(32, 4, 64);
        c.access(0);
        c.invalidate();
        assert!(!c.access(0));
    }
}
