//! Simulated device specifications, including presets for every machine in
//! the paper's Table 3.
//!
//! The per-cycle floating-point throughput of each preset is calibrated so
//! that `peak_gflops()` reproduces the *theoretical double peak performance*
//! column of Table 3 (per device, not per node), which is the denominator of
//! the Fig. 9 relative-performance plot.

use alpaka_core::acc::DeviceKind;

/// Where the simulated global-memory cache sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheScope {
    /// No cache: every transaction goes to DRAM (idealized streaming GPU).
    None,
    /// One cache per SM/core (CPU L2-per-core model).
    PerSm,
    /// One cache shared by the whole device (GPU L2 model).
    Shared,
}

/// A simulated device. `sms` are streaming multiprocessors for GPUs and
/// cores for CPUs; `warp_width` is the lock-step width (32 on the GPUs,
/// 1 on CPUs — CPU data parallelism is modeled through the *element level*
/// instead, see `simd_width`).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    pub name: String,
    pub kind: DeviceKind,
    pub sms: usize,
    pub warp_width: usize,
    pub clock_ghz: f64,
    /// Double-precision flops per cycle per SM at full (vector/warp) issue.
    pub dp_flops_per_cycle_per_sm: f64,
    /// Vector lanes for f64 on CPUs (element-loop vectorization factor);
    /// 1 on GPUs, whose lanes are modeled by the warp.
    pub simd_width: usize,
    /// Warp-instructions issued per cycle per SM.
    pub issue_rate_per_sm: f64,
    /// Device-memory bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Bytes of shared memory available per block.
    pub shared_mem_per_block: usize,
    pub max_threads_per_block: usize,
    /// Residency limit used by the latency-hiding/occupancy model.
    pub max_resident_warps_per_sm: usize,
    pub cache_scope: CacheScope,
    /// Total cache capacity in KiB (per SM for `PerSm`, whole device for
    /// `Shared`).
    pub cache_kib: usize,
    pub cache_assoc: usize,
    /// Cache line / memory transaction size in bytes.
    pub line_bytes: usize,
    /// Fixed kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Host<->device copy bandwidth in GB/s and latency in microseconds.
    pub transfer_bw_gbs: f64,
    pub transfer_latency_us: f64,
    /// Host worker threads used to interpret blocks in parallel (1 = the
    /// exact serial path). Overridable per process via the
    /// `ALPAKA_SIM_THREADS` environment variable; see
    /// `alpaka_sim::resolve_sim_threads`.
    pub sim_threads: usize,
}

impl DeviceSpec {
    /// Theoretical double-precision peak in GFLOPS.
    pub fn peak_gflops(&self) -> f64 {
        self.sms as f64 * self.clock_ghz * self.dp_flops_per_cycle_per_sm
    }

    /// NVIDIA K20 (GK110): 13 SMX, 2496 cores, 0.706 GHz, ~1170 GFLOPS DP.
    pub fn k20() -> Self {
        DeviceSpec {
            name: "NVIDIA K20 GK110".into(),
            kind: DeviceKind::Gpu,
            sms: 13,
            warp_width: 32,
            clock_ghz: 0.706,
            dp_flops_per_cycle_per_sm: 127.5, // 64 DP FMA units x 2
            simd_width: 1,
            issue_rate_per_sm: 4.0,
            mem_bw_gbs: 208.0,
            shared_mem_per_block: 48 * 1024,
            max_threads_per_block: 1024,
            max_resident_warps_per_sm: 64,
            cache_scope: CacheScope::Shared,
            cache_kib: 1536,
            cache_assoc: 16,
            line_bytes: 128,
            launch_overhead_us: 5.0,
            transfer_bw_gbs: 6.0,
            transfer_latency_us: 10.0,
            sim_threads: 1,
        }
    }

    /// NVIDIA K80 (one GK210 of the dual-GPU board): 13 SMX, 0.875 GHz
    /// boost, ~1450 GFLOPS DP per GPU.
    pub fn k80() -> Self {
        DeviceSpec {
            name: "NVIDIA K80 GK210".into(),
            kind: DeviceKind::Gpu,
            sms: 13,
            warp_width: 32,
            clock_ghz: 0.875,
            dp_flops_per_cycle_per_sm: 127.5,
            simd_width: 1,
            issue_rate_per_sm: 4.0,
            mem_bw_gbs: 240.0,
            shared_mem_per_block: 48 * 1024,
            max_threads_per_block: 1024,
            max_resident_warps_per_sm: 64,
            cache_scope: CacheScope::Shared,
            cache_kib: 1536,
            cache_assoc: 16,
            line_bytes: 128,
            launch_overhead_us: 5.0,
            transfer_bw_gbs: 6.0,
            transfer_latency_us: 10.0,
            sim_threads: 1,
        }
    }

    /// Intel Xeon E5-2630v3: 8 cores, 2.4 GHz, AVX2+FMA, ~270 GFLOPS DP
    /// per socket (540 for the paper's 2-socket node).
    pub fn e5_2630v3() -> Self {
        DeviceSpec {
            name: "Intel Xeon E5-2630v3".into(),
            kind: DeviceKind::Cpu,
            sms: 8,
            warp_width: 1,
            clock_ghz: 2.4,
            dp_flops_per_cycle_per_sm: 14.0625, // calibrated: 270 GFLOPS/socket
            simd_width: 4,                      // AVX2: 4 x f64
            issue_rate_per_sm: 4.0,
            mem_bw_gbs: 59.0,
            shared_mem_per_block: 256 * 1024,
            max_threads_per_block: 1,
            max_resident_warps_per_sm: 1,
            cache_scope: CacheScope::PerSm,
            cache_kib: 256,
            cache_assoc: 8,
            line_bytes: 64,
            launch_overhead_us: 1.0,
            transfer_bw_gbs: 30.0,
            transfer_latency_us: 0.5,
            sim_threads: 1,
        }
    }

    /// Intel Xeon E5-2609: 4 cores, 2.4 GHz, SSE/AVX (no FMA), ~75 GFLOPS
    /// DP per socket (150 for the 2-socket node).
    pub fn e5_2609() -> Self {
        DeviceSpec {
            name: "Intel Xeon E5-2609".into(),
            kind: DeviceKind::Cpu,
            sms: 4,
            warp_width: 1,
            clock_ghz: 2.4,
            dp_flops_per_cycle_per_sm: 7.8125, // calibrated: 75 GFLOPS/socket
            simd_width: 4,
            // Sandy Bridge issues at most 2 vector ops per cycle.
            issue_rate_per_sm: 2.0,
            mem_bw_gbs: 34.0,
            shared_mem_per_block: 256 * 1024,
            max_threads_per_block: 1,
            max_resident_warps_per_sm: 1,
            cache_scope: CacheScope::PerSm,
            cache_kib: 256,
            cache_assoc: 8,
            line_bytes: 64,
            launch_overhead_us: 1.0,
            transfer_bw_gbs: 30.0,
            transfer_latency_us: 0.5,
            sim_threads: 1,
        }
    }

    /// AMD Opteron 6276 (Bulldozer): 16 cores, 2.3 GHz, shared FPUs,
    /// ~120 GFLOPS DP per package (480 for the 4-package node).
    pub fn opteron_6276() -> Self {
        DeviceSpec {
            name: "AMD Opteron 6276".into(),
            kind: DeviceKind::Cpu,
            sms: 16,
            warp_width: 1,
            clock_ghz: 2.3,
            dp_flops_per_cycle_per_sm: 3.26, // calibrated: 120 GFLOPS/package
            simd_width: 4,
            // Bulldozer modules share one front-end between two cores.
            issue_rate_per_sm: 1.0,
            mem_bw_gbs: 25.6,
            shared_mem_per_block: 256 * 1024,
            max_threads_per_block: 1,
            max_resident_warps_per_sm: 1,
            cache_scope: CacheScope::PerSm,
            cache_kib: 1024,
            cache_assoc: 16,
            line_bytes: 64,
            launch_overhead_us: 1.0,
            transfer_bw_gbs: 20.0,
            transfer_latency_us: 0.5,
            sim_threads: 1,
        }
    }

    /// Intel Xeon Phi 5110P (Knights Corner) — the paper's *future work*
    /// architecture (Table 2 already carries MIC rows). 60 cores,
    /// 1.053 GHz, 8-wide DP vectors with FMA: ~1011 GFLOPS DP.
    pub fn xeon_phi_5110p() -> Self {
        DeviceSpec {
            name: "Intel Xeon Phi 5110P".into(),
            kind: DeviceKind::Cpu,
            sms: 60,
            warp_width: 1,
            clock_ghz: 1.053,
            dp_flops_per_cycle_per_sm: 16.0, // 8 lanes x FMA
            simd_width: 8,
            // In-order cores: dual-issue at best.
            issue_rate_per_sm: 2.0,
            mem_bw_gbs: 320.0,
            shared_mem_per_block: 256 * 1024,
            max_threads_per_block: 1,
            max_resident_warps_per_sm: 1,
            cache_scope: CacheScope::PerSm,
            cache_kib: 512,
            cache_assoc: 8,
            line_bytes: 64,
            launch_overhead_us: 2.0,
            transfer_bw_gbs: 6.0,
            transfer_latency_us: 10.0,
            sim_threads: 1,
        }
    }

    /// All Table 3 presets, GPU and CPU.
    pub fn table3() -> Vec<DeviceSpec> {
        vec![
            Self::opteron_6276(),
            Self::e5_2609(),
            Self::e5_2630v3(),
            Self::k20(),
            Self::k80(),
        ]
    }

    /// Resident blocks per SM given a block's thread count and shared
    /// memory usage (simple occupancy model).
    pub fn resident_blocks_per_sm(&self, threads_per_block: usize, shared_bytes: usize) -> usize {
        let warps_per_block = threads_per_block.div_ceil(self.warp_width).max(1);
        let by_warps = (self.max_resident_warps_per_sm / warps_per_block).max(1);
        let by_shared = self
            .shared_mem_per_block
            .checked_div(shared_bytes)
            .map_or(usize::MAX, |v| v.max(1));
        by_warps.min(by_shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_peaks_match_paper() {
        // Per-device peaks derived from Table 3's node peaks.
        let close = |got: f64, want: f64| (got - want).abs() / want < 0.02;
        assert!(close(DeviceSpec::k20().peak_gflops(), 1170.0));
        assert!(close(DeviceSpec::k80().peak_gflops(), 1450.0));
        assert!(close(DeviceSpec::e5_2630v3().peak_gflops(), 270.0));
        assert!(close(DeviceSpec::e5_2609().peak_gflops(), 75.0));
        assert!(close(DeviceSpec::opteron_6276().peak_gflops(), 120.0));
    }

    #[test]
    fn xeon_phi_future_work_spec() {
        let phi = DeviceSpec::xeon_phi_5110p();
        assert!(
            (phi.peak_gflops() - 1010.0).abs() < 15.0,
            "{}",
            phi.peak_gflops()
        );
        assert_eq!(phi.simd_width, 8);
    }

    #[test]
    fn occupancy_limits() {
        let k20 = DeviceSpec::k20();
        // 256-thread blocks -> 8 warps -> 8 resident by warp limit.
        assert_eq!(k20.resident_blocks_per_sm(256, 0), 8);
        // Shared memory can be the binding constraint.
        assert_eq!(k20.resident_blocks_per_sm(256, 24 * 1024), 2);
        assert_eq!(k20.resident_blocks_per_sm(256, 48 * 1024), 1);
        // CPUs run one block per core.
        assert_eq!(DeviceSpec::e5_2630v3().resident_blocks_per_sm(1, 0), 1);
    }
}
