//! The compiled execution tier: direct-threaded warp programs with fused
//! uniform loops.
//!
//! [`compile`] re-threads a validated [`WarpProgram`] (from `crate::lower`)
//! into a small tree of [`CNode`]s — structured control flow with all
//! operand slots pre-resolved — whose hot leaves are [`FusedLoop`]s:
//! uniform-counter `for` loops whose straight-line bodies are compiled to a
//! compact step list executed without the per-op decode-and-account loop of
//! the lowered interpreter. A fused loop
//!
//! * charges fuel, instruction issue, flops and special-function counts as
//!   one *batched* update per loop execution (`trips × per-iteration`
//!   constants folded at compile time) instead of per op per iteration,
//! * drops dead register writes — values the body defines but never reads
//!   again are unobservable after the loop, because IR validation enforces
//!   lexical scoping — while keeping their issue/flop charges,
//! * fuses single-use index arithmetic into the loads that consume it and
//!   load/fma/store round trips through an accumulator variable into single
//!   [`SStep`] superops, and
//! * resolves every global-memory access site once per worker per launch to
//!   a raw `(pointer, length, base address)` triple ([`PrepSite`]), so the
//!   turbo loop performs bounds checks, injected-ECC decisions and cache
//!   line accounting with the *same* order and arithmetic as
//!   [`Machine::mem_access_one`], but without per-access handle lookups or
//!   memory-view dispatch. Element accesses go through relaxed atomics —
//!   exactly the cells `SharedMem` uses — so the parallel path stays
//!   data-race-free and the exclusive path pays nothing (a relaxed 8-byte
//!   access is a plain move on x86-64).
//!
//! Global atomics execute as step-list superops too: the launch driver's
//! deferral plan (see `crate::atomics`) decides at run time whether an
//! atomic accumulates into the worker's private shadow/log or applies in
//! place — the in-place path only ever runs serially, because the parallel
//! gate requires a plan whenever a program contains atomics. Either way the
//! buffers, stats and error surfaces match the lowered engine bit for bit.
//!
//! Everything the step list cannot express — divergent control flow,
//! barriers, shared memory, `while` loops, multi-lane blocks,
//! near-exhausted fuel — falls back to the lowered interpreter's own
//! `exec_ops`/`exec_for_lowered` on the *same* state, so buffers,
//! [`LaunchStats`], `TimeBreakdown`, traces and structured fault errors are
//! bit-identical across all three engines (the determinism suite pins this
//! four ways: engines × worker counts). While a vectorization region is
//! probing (its first two iterations log addresses), the fused loop runs
//! the generic step list so the probe log matches the lowered engine access
//! for access; the turbo loop takes over once the log is sealed.
//!
//! When a launch is traced or profiled, the compiled engine is not used at
//! all — `run_kernel_launch_faulty` keeps `LaunchCtx::compiled` empty and
//! the launch executes on the lowered engine, making trace/profile streams
//! identical across engines by construction (the same way the lowered
//! engine replays per-instruction accounting only when profiling).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use alpaka_core::acc::DeviceKind;
use alpaka_kir::ir::{AtomicOp, FBin, IBin, Program};
use alpaka_kir::semantics as sem;

use crate::cache::CacheSim;
use crate::fault::SimError;
use crate::interp::{Caches, LaunchCtx, Machine, MemAccess, RegionAcc, WorkerOut, R};
use crate::lower::{
    exec_for_lowered, exec_ops, fill_branch_mask, first_active, idx, is_u, run_warp_blocks,
    CacheCounters, LOp, LowState, MaskBuf, WarpProgram,
};
use crate::serr;
use crate::spec::DeviceSpec;
use crate::stats::LaunchStats;

// ---------------------------------------------------------------------------
// Compiled form
// ---------------------------------------------------------------------------

/// A warp program re-threaded for direct execution: structured control flow
/// over the lowered op array, with fusible uniform loops pre-compiled.
pub(crate) struct CompiledProgram {
    /// The lowered program this was compiled from; fallback ranges and the
    /// shared per-worker block loop execute against it.
    pub(crate) wp: Arc<WarpProgram>,
    root: Vec<CNode>,
    /// Number of fused loops; sizes the per-worker prepared-site table.
    n_fused: usize,
}

impl CompiledProgram {
    /// True when compilation found at least one fusible loop. A program
    /// that fused nothing would run the flat op list through one extra
    /// dispatch layer — strictly slower than the lowered interpreter — so
    /// the launch driver dispatches such launches to the lowered tier.
    pub(crate) fn has_fused(&self) -> bool {
        self.n_fused > 0
    }
}

/// One node of the compiled control tree.
enum CNode {
    /// A contiguous run of lowered ops with nothing to fuse inside;
    /// executed by the lowered interpreter verbatim.
    Range { lo: usize, hi: usize },
    /// A structured branch that contains fused work on at least one side.
    If {
        cond: u32,
        then: Vec<CNode>,
        els: Vec<CNode>,
    },
    /// A uniform-counter loop whose body contains fused work but is not
    /// itself a single straight line.
    For {
        counter: u32,
        start: u32,
        end: u32,
        vectorize: bool,
        body: Vec<CNode>,
    },
    /// A contiguous straight-line run of fusible ops: executed as a step
    /// list with batched accounting when the block is single-lane and
    /// fully active, by the lowered interpreter otherwise.
    Steps(StepsRun),
    /// The hot leaf: a uniform-counter loop over a straight-line body.
    Fused(FusedLoop),
}

/// A fusible straight line outside any fused loop — the glue between hot
/// loops (index computation, guards, epilogue stores). Charges are the
/// summed `Account` constants; fuel errors and profiled launches fall back
/// to `exec_ops` so they surface per-op exactly.
struct StepsRun {
    /// Op range in `wp.ops`, for the fallback path.
    lo: usize,
    hi: usize,
    /// The run's ops with `Account`s stripped.
    steps: Vec<LOp>,
    fuel: u64,
    issue: u64,
    flops: u64,
    special: u64,
}

/// A uniform-counter loop compiled to a step list with batched accounting.
struct FusedLoop {
    counter: u32,
    start: u32,
    end: u32,
    vectorize: bool,
    /// Body op range in `wp.ops`, for the exact-parity fallback path.
    b0: usize,
    bend: usize,
    /// The body's live ops, `Account`s stripped (their charges are the
    /// per-iteration constants below) and dead pure writes eliminated.
    /// Used while a region probe is still logging addresses.
    steps: Vec<LOp>,
    /// `steps` recompiled into superop form over pre-resolved memory sites,
    /// for the single-lane turbo path.
    turbo: Vec<SStep>,
    /// Global-memory buffers `turbo` touches, in first-use order.
    sites: Vec<SiteRef>,
    /// Present when the body is an inner-product step (see [`DotKernel`]).
    dot: Option<DotKernel>,
    /// Index into the per-worker prepared-site table.
    id: usize,
    /// Fuel per iteration: 1 (the loop's own burn) + Σ `Account::n`.
    fuel_per_iter: u64,
    /// Σ `Account::n` — warp instruction issues per iteration.
    issue_per_iter: u64,
    flops_per_iter: u64,
    special_per_iter: u64,
}

/// One step of a fused body in superop form. Register slots keep the
/// `U_BIT` uniform/varying encoding; `site` indexes the loop's prepared
/// global-memory sites.
#[derive(Clone, Copy)]
enum SStep {
    /// Anything without a superop shape: executed by [`scalar_pure`].
    Pure(LOp),
    BinF {
        op: FBin,
        d: u32,
        a: u32,
        b: u32,
    },
    BinI {
        op: IBin,
        d: u32,
        a: u32,
        b: u32,
    },
    Fma {
        d: u32,
        a: u32,
        b: u32,
        c: u32,
    },
    /// `var[v] = fma(a, b, var[v])` — a LdVar/Fma/StVar round trip through
    /// an accumulator variable collapsed into one step.
    FmaAcc {
        v: u32,
        a: u32,
        b: u32,
    },
    LdF {
        d: u32,
        site: u16,
        i: u32,
    },
    /// `d = buf[a + b]` — the index `Add` folded into the load.
    LdFAdd {
        d: u32,
        site: u16,
        a: u32,
        b: u32,
    },
    /// `d = buf[a * b + c]` — a Mul/Add index chain folded into the load.
    LdFMulAdd {
        d: u32,
        site: u16,
        a: u32,
        b: u32,
        c: u32,
    },
    LdI {
        d: u32,
        site: u16,
        i: u32,
    },
    LdIAdd {
        d: u32,
        site: u16,
        a: u32,
        b: u32,
    },
    LdIMulAdd {
        d: u32,
        site: u16,
        a: u32,
        b: u32,
        c: u32,
    },
    StF {
        site: u16,
        i: u32,
        val: u32,
    },
    StI {
        site: u16,
        i: u32,
        val: u32,
    },
    /// `d = atomic(op, buf[i], val)` on an f64 buffer — deferred to the
    /// launch's privatization plan, or applied in place on plan-less
    /// (serial) launches. `slot` is the kernel-argument slot, kept for the
    /// plan lookup (`site` only indexes the prepared-site table).
    AtomF {
        op: AtomicOp,
        d: u32,
        site: u16,
        slot: u32,
        i: u32,
        val: u32,
    },
    /// Atomic f64 with the index `Add` folded in (`buf[a + b]`) — the
    /// fused scatter-accumulate shape for affine-index atomic updates.
    AtomFAdd {
        op: AtomicOp,
        d: u32,
        site: u16,
        slot: u32,
        a: u32,
        b: u32,
        val: u32,
    },
    AtomI {
        op: AtomicOp,
        d: u32,
        site: u16,
        slot: u32,
        i: u32,
        val: u32,
    },
    AtomIAdd {
        op: AtomicOp,
        d: u32,
        site: u16,
        slot: u32,
        a: u32,
        b: u32,
        val: u32,
    },
}

/// One term of an affine load index: the loop counter, an invariant
/// register slot, or nothing.
#[derive(Clone, Copy, PartialEq)]
enum Term {
    K,
    Slot(u32),
    Zero,
}

/// A load index affine in the loop counter: `mul.0 * mul.1 + add[0] +
/// add[1]`, each term `K` or a slot the body never writes. Wrapping i64
/// arithmetic is a ring, so the index strides by a constant per iteration
/// and incremental evaluation is exact.
#[derive(Clone, Copy)]
struct AffineIdx {
    mul: Option<(Term, Term)>,
    add: [Term; 2],
}

/// The inner-product loop shape — two f64 loads at affine indices feeding a
/// [`SStep::FmaAcc`] — specialized into a register-resident loop with
/// hoisted bounds checks and batched stat deltas. This is the body DGEMM,
/// stencils and reductions all compile to, and the hottest code in the
/// whole simulator.
struct DotKernel {
    a_site: u16,
    a_idx: AffineIdx,
    b_site: u16,
    b_idx: AffineIdx,
    /// Load destination slots, written back after the loop (the step list
    /// leaves the last iteration's values there).
    ra: u32,
    rb: u32,
    /// Accumulator variable slot.
    v: u32,
    /// Whether the FmaAcc's first factor is `ra`'s value.
    a_first: bool,
}

/// Destructure a superop load into `(dst, site, affine index)`; `None` for
/// non-loads and for indices quadratic in the counter.
fn load_shape(sp: &SStep, counter: u32) -> Option<(u32, u16, AffineIdx)> {
    let t = |s: u32| if s == counter { Term::K } else { Term::Slot(s) };
    match *sp {
        SStep::LdF { d, site, i } => Some((
            d,
            site,
            AffineIdx {
                mul: None,
                add: [t(i), Term::Zero],
            },
        )),
        SStep::LdFAdd { d, site, a, b } => Some((
            d,
            site,
            AffineIdx {
                mul: None,
                add: [t(a), t(b)],
            },
        )),
        SStep::LdFMulAdd { d, site, a, b, c } => {
            if a == counter && b == counter {
                return None;
            }
            Some((
                d,
                site,
                AffineIdx {
                    mul: Some((t(a), t(b))),
                    add: [t(c), Term::Zero],
                },
            ))
        }
        _ => None,
    }
}

/// Recognize a body that is exactly two affine f64 loads feeding an FmaAcc.
/// Index operands must be loop-invariant; the only slots the body defines
/// are the load destinations, so it suffices to exclude those.
fn detect_dot(turbo: &[SStep], counter: u32) -> Option<DotKernel> {
    let &[l0, l1, SStep::FmaAcc { v, a: fa, b: fb }] = turbo else {
        return None;
    };
    let (ra, a_site, a_idx) = load_shape(&l0, counter)?;
    let (rb, b_site, b_idx) = load_shape(&l1, counter)?;
    if ra == rb || ra == counter || rb == counter {
        return None;
    }
    let a_first = if (fa, fb) == (ra, rb) {
        true
    } else if (fa, fb) == (rb, ra) {
        false
    } else {
        return None;
    };
    for af in [&a_idx, &b_idx] {
        let terms = [
            af.mul.map_or(Term::Zero, |(x, _)| x),
            af.mul.map_or(Term::Zero, |(_, y)| y),
            af.add[0],
            af.add[1],
        ];
        if terms
            .iter()
            .any(|t| matches!(*t, Term::Slot(s) if s == ra || s == rb))
        {
            return None;
        }
    }
    Some(DotKernel {
        a_site,
        a_idx,
        b_site,
        b_idx,
        ra,
        rb,
        v,
        a_first,
    })
}

/// Evaluate an affine index's invariant operands: `index(k) = base +
/// stride * k` in wrapping i64 arithmetic.
fn affine_eval(st: &LowState, af: &AffineIdx) -> (i64, i64) {
    let val = |t: Term| match t {
        Term::Slot(s) => rd1i(st, s),
        Term::K | Term::Zero => unreachable!("term has no slot value"),
    };
    let mut base = 0i64;
    let mut stride = 0i64;
    if let Some((x, y)) = af.mul {
        if x == Term::K {
            stride = stride.wrapping_add(val(y));
        } else if y == Term::K {
            stride = stride.wrapping_add(val(x));
        } else {
            base = base.wrapping_add(val(x).wrapping_mul(val(y)));
        }
    }
    for t in af.add {
        match t {
            Term::K => stride = stride.wrapping_add(1),
            Term::Zero => {}
            Term::Slot(s) => base = base.wrapping_add(rd1i(st, s)),
        }
    }
    (base, stride)
}

/// A global-memory buffer referenced by a fused body.
#[derive(Clone, Copy)]
struct SiteRef {
    slot: u32,
    is_f: bool,
}

/// A site resolved against the launch's actual buffers: raw element
/// pointer, element count, and virtual base byte address. Valid for the
/// whole launch — device buffers never move or resize while a kernel runs.
#[derive(Clone, Copy)]
struct PrepSite {
    ptr: *mut u64,
    len: usize,
    base: u64,
}

/// Per-worker prepared-site storage, lazily filled on first execution.
type PrepTable = [Option<Box<[PrepSite]>>];

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Ops a fused step list can execute directly. Control flow, barriers,
/// shared memory and the per-launch-fallible `Param` reads stay on the
/// interpreter path. Global atomics are fusible: whether they defer to the
/// launch plan or apply in place is a per-launch (`Machine`) decision, so
/// the compiled form — cached per program — is valid for both modes.
fn fusible(op: &LOp) -> bool {
    matches!(
        op,
        LOp::Account { .. }
            | LOp::BinF { .. }
            | LOp::UnF { .. }
            | LOp::Fma { .. }
            | LOp::BinI { .. }
            | LOp::NegI { .. }
            | LOp::CmpF { .. }
            | LOp::CmpI { .. }
            | LOp::BinB { .. }
            | LOp::NotB { .. }
            | LOp::Sel { .. }
            | LOp::I2F { .. }
            | LOp::F2I { .. }
            | LOp::U2UnitF { .. }
            | LOp::LdVar { .. }
            | LOp::StVar { .. }
            | LOp::LdGF { .. }
            | LOp::LdGI { .. }
            | LOp::StGF { .. }
            | LOp::StGI { .. }
            | LOp::LdLF { .. }
            | LOp::StLF { .. }
            | LOp::AtomicF { .. }
            | LOp::AtomicI { .. }
    )
}

/// Visit the register slots `op` reads.
fn for_each_src(op: &LOp, mut f: impl FnMut(u32)) {
    match *op {
        LOp::BinF { a, b, .. }
        | LOp::BinI { a, b, .. }
        | LOp::CmpF { a, b, .. }
        | LOp::CmpI { a, b, .. }
        | LOp::BinB { a, b, .. } => {
            f(a);
            f(b);
        }
        LOp::UnF { a, .. }
        | LOp::NegI { a, .. }
        | LOp::NotB { a, .. }
        | LOp::I2F { a, .. }
        | LOp::F2I { a, .. }
        | LOp::U2UnitF { a, .. } => f(a),
        LOp::Fma { a, b, c, .. } => {
            f(a);
            f(b);
            f(c);
        }
        LOp::Sel { c, t, e, .. } => {
            f(c);
            f(t);
            f(e);
        }
        LOp::StVar { val, .. } => f(val),
        LOp::LdGF { i, .. } | LOp::LdGI { i, .. } | LOp::LdLF { i, .. } => f(i),
        LOp::StGF { i, val, .. }
        | LOp::StGI { i, val, .. }
        | LOp::StLF { i, val, .. }
        | LOp::AtomicF { i, val, .. }
        | LOp::AtomicI { i, val, .. } => {
            f(i);
            f(val);
        }
        _ => {}
    }
}

/// The destination slot of a *pure* op — one whose only effect is the
/// register write, so the whole op can be dropped when that write is dead.
/// Loads are excluded: their bounds checks, ECC decisions and cache
/// accesses are observable even when the loaded value is not.
fn pure_dst(op: &LOp) -> Option<u32> {
    match *op {
        LOp::BinF { d, .. }
        | LOp::UnF { d, .. }
        | LOp::Fma { d, .. }
        | LOp::BinI { d, .. }
        | LOp::NegI { d, .. }
        | LOp::CmpF { d, .. }
        | LOp::CmpI { d, .. }
        | LOp::BinB { d, .. }
        | LOp::NotB { d, .. }
        | LOp::Sel { d, .. }
        | LOp::I2F { d, .. }
        | LOp::F2I { d, .. }
        | LOp::U2UnitF { d, .. }
        | LOp::LdVar { d, .. } => Some(d),
        _ => None,
    }
}

/// The register slot `op` defines, if any (pure ops and global/local loads).
fn dst_of(op: &LOp) -> Option<u32> {
    pure_dst(op).or(match *op {
        LOp::LdGF { d, .. } | LOp::LdGI { d, .. } | LOp::LdLF { d, .. } => Some(d),
        _ => None,
    })
}

/// Recompile a fused body into superop form: single-use index arithmetic is
/// folded into the consuming load, accumulator round trips become
/// [`SStep::FmaAcc`], and each global buffer is interned into a site list
/// (first-use order, so an unbound-slot error resolves in the same order
/// the interpreter would hit it).
///
/// Folding is sound because every register slot in a lowered body has at
/// most one defining op (slots map 1:1 to SSA values) — an operand read at
/// the consumer's position sees the same value it had at the producer's.
fn build_turbo(steps: &[LOp]) -> (Vec<SStep>, Vec<SiteRef>) {
    let n = steps.len();
    let mut def: HashMap<u32, usize> = HashMap::new();
    let mut readers: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, op) in steps.iter().enumerate() {
        for_each_src(op, |s| readers.entry(s).or_default().push(i));
        if let Some(d) = dst_of(op) {
            def.insert(d, i);
        }
    }
    let only_reader = |s: u32, i: usize| readers.get(&s).is_some_and(|r| r.len() == 1 && r[0] == i);

    enum Idx {
        Add(u32, u32),
        MulAdd(u32, u32, u32),
    }
    let mut removed = vec![false; n];
    let mut fused_idx: HashMap<usize, Idx> = HashMap::new();
    let mut fma_acc: HashMap<usize, (u32, u32, u32)> = HashMap::new();
    for (i, op) in steps.iter().enumerate() {
        match *op {
            LOp::LdGF { i: ix, .. } | LOp::LdGI { i: ix, .. } => {
                let Some(&di) = def.get(&ix) else { continue };
                if di >= i || !only_reader(ix, i) {
                    continue;
                }
                let LOp::BinI {
                    op: IBin::Add,
                    a,
                    b,
                    ..
                } = steps[di]
                else {
                    continue;
                };
                // Expand one single-use multiply on either side of the add
                // (wrapping adds commute, so `a + x*y` and `x*y + a` agree).
                let mut fused = Idx::Add(a, b);
                let mut also = None;
                for (side, other) in [(a, b), (b, a)] {
                    if let Some(&dm) = def.get(&side) {
                        if dm < di && only_reader(side, di) {
                            if let LOp::BinI {
                                op: IBin::Mul,
                                a: x,
                                b: y,
                                ..
                            } = steps[dm]
                            {
                                fused = Idx::MulAdd(x, y, other);
                                also = Some(dm);
                                break;
                            }
                        }
                    }
                }
                removed[di] = true;
                if let Some(dm) = also {
                    removed[dm] = true;
                }
                fused_idx.insert(i, fused);
            }
            LOp::AtomicF { i: ix, .. } | LOp::AtomicI { i: ix, .. } => {
                // Fold a single-use `Add` into the atomic's index — the
                // scatter-accumulate shape. No Mul expansion here: affine
                // scatters are add-indexed, and atomics keep two superop
                // forms instead of three.
                let Some(&di) = def.get(&ix) else { continue };
                if di >= i || !only_reader(ix, i) {
                    continue;
                }
                let LOp::BinI {
                    op: IBin::Add,
                    a,
                    b,
                    ..
                } = steps[di]
                else {
                    continue;
                };
                removed[di] = true;
                fused_idx.insert(i, Idx::Add(a, b));
            }
            LOp::StVar { v, val } => {
                let Some(&df) = def.get(&val) else { continue };
                if df >= i || !only_reader(val, i) {
                    continue;
                }
                let LOp::Fma { a, b, c, .. } = steps[df] else {
                    continue;
                };
                let Some(&dl) = def.get(&c) else { continue };
                if dl >= df || !only_reader(c, df) {
                    continue;
                }
                let LOp::LdVar { v: v2, .. } = steps[dl] else {
                    continue;
                };
                if v2 != v {
                    continue;
                }
                // The variable must not be stored between the load and this
                // store, or moving the load to the store's position would
                // observe the wrong value.
                if steps[dl + 1..i]
                    .iter()
                    .any(|s| matches!(s, LOp::StVar { v: sv, .. } if *sv == v))
                {
                    continue;
                }
                removed[df] = true;
                removed[dl] = true;
                fma_acc.insert(i, (v, a, b));
            }
            _ => {}
        }
    }

    let mut sites: Vec<SiteRef> = Vec::new();
    let intern = |sites: &mut Vec<SiteRef>, slot: u32, is_f: bool| -> u16 {
        match sites.iter().position(|s| s.slot == slot && s.is_f == is_f) {
            Some(p) => p as u16,
            None => {
                sites.push(SiteRef { slot, is_f });
                (sites.len() - 1) as u16
            }
        }
    };
    let mut out = Vec::new();
    for (i, op) in steps.iter().enumerate() {
        if removed[i] {
            continue;
        }
        let step = match *op {
            LOp::LdGF { d, buf, i: ix } => {
                let site = intern(&mut sites, buf, true);
                match fused_idx.remove(&i) {
                    Some(Idx::MulAdd(a, b, c)) => SStep::LdFMulAdd { d, site, a, b, c },
                    Some(Idx::Add(a, b)) => SStep::LdFAdd { d, site, a, b },
                    None => SStep::LdF { d, site, i: ix },
                }
            }
            LOp::LdGI { d, buf, i: ix } => {
                let site = intern(&mut sites, buf, false);
                match fused_idx.remove(&i) {
                    Some(Idx::MulAdd(a, b, c)) => SStep::LdIMulAdd { d, site, a, b, c },
                    Some(Idx::Add(a, b)) => SStep::LdIAdd { d, site, a, b },
                    None => SStep::LdI { d, site, i: ix },
                }
            }
            LOp::StGF { buf, i: ix, val } => SStep::StF {
                site: intern(&mut sites, buf, true),
                i: ix,
                val,
            },
            LOp::StGI { buf, i: ix, val } => SStep::StI {
                site: intern(&mut sites, buf, false),
                i: ix,
                val,
            },
            LOp::AtomicF {
                op,
                d,
                buf,
                i: ix,
                val,
            } => {
                let site = intern(&mut sites, buf, true);
                match fused_idx.remove(&i) {
                    Some(Idx::Add(a, b)) => SStep::AtomFAdd {
                        op,
                        d,
                        site,
                        slot: buf,
                        a,
                        b,
                        val,
                    },
                    Some(Idx::MulAdd(..)) => unreachable!("atomic indices fold Add only"),
                    None => SStep::AtomF {
                        op,
                        d,
                        site,
                        slot: buf,
                        i: ix,
                        val,
                    },
                }
            }
            LOp::AtomicI {
                op,
                d,
                buf,
                i: ix,
                val,
            } => {
                let site = intern(&mut sites, buf, false);
                match fused_idx.remove(&i) {
                    Some(Idx::Add(a, b)) => SStep::AtomIAdd {
                        op,
                        d,
                        site,
                        slot: buf,
                        a,
                        b,
                        val,
                    },
                    Some(Idx::MulAdd(..)) => unreachable!("atomic indices fold Add only"),
                    None => SStep::AtomI {
                        op,
                        d,
                        site,
                        slot: buf,
                        i: ix,
                        val,
                    },
                }
            }
            LOp::StVar { .. } if fma_acc.contains_key(&i) => {
                let (v, a, b) = fma_acc[&i];
                SStep::FmaAcc { v, a, b }
            }
            LOp::Fma { d, a, b, c } => SStep::Fma { d, a, b, c },
            LOp::BinF { op, d, a, b } => SStep::BinF { op, d, a, b },
            LOp::BinI { op, d, a, b } => SStep::BinI { op, d, a, b },
            other => SStep::Pure(other),
        };
        out.push(step);
    }
    (out, sites)
}

/// Compile a uniform-counter `For` whose body is a single straight line of
/// fusible ops; `None` when anything in the body needs the interpreter.
#[allow(clippy::too_many_arguments)]
fn try_fuse(
    wp: &WarpProgram,
    counter: u32,
    start: u32,
    end: u32,
    vectorize: bool,
    b0: usize,
    bend: usize,
    id: usize,
) -> Option<FusedLoop> {
    let body = &wp.ops[b0..bend];
    if !body.iter().all(fusible) {
        return None;
    }
    let mut fuel_per_iter = 1u64; // the loop's own per-iteration burn
    let mut issue_per_iter = 0u64;
    let mut flops_per_iter = 0u64;
    let mut special_per_iter = 0u64;
    for op in body {
        if let LOp::Account {
            n, flops, special, ..
        } = op
        {
            fuel_per_iter += n;
            issue_per_iter += n;
            flops_per_iter += flops;
            special_per_iter += special;
        }
    }
    // Dead-write elimination: a value the body defines but never reads is
    // out of scope once the loop ends (IR validation enforces lexical
    // scoping), so pure producers of unread values can vanish outright.
    // Iterate to a fixpoint so chains of dead producers collapse too; the
    // issue/flop charges summed above are unaffected.
    let mut keep: Vec<bool> = body
        .iter()
        .map(|op| !matches!(op, LOp::Account { .. }))
        .collect();
    loop {
        let mut read: Vec<u32> = Vec::new();
        for (op, &k) in body.iter().zip(&keep) {
            if k {
                for_each_src(op, |s| read.push(s));
            }
        }
        let mut changed = false;
        for (op, k) in body.iter().zip(keep.iter_mut()) {
            if *k {
                if let Some(d) = pure_dst(op) {
                    if !read.contains(&d) {
                        *k = false;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let steps: Vec<LOp> = body
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(op, _)| *op)
        .collect();
    let (turbo, sites) = build_turbo(&steps);
    let dot = detect_dot(&turbo, counter);
    Some(FusedLoop {
        counter,
        start,
        end,
        vectorize,
        b0,
        bend,
        steps,
        turbo,
        sites,
        dot,
        id,
        fuel_per_iter,
        issue_per_iter,
        flops_per_iter,
        special_per_iter,
    })
}

/// Whether a compiled subtree contains a fused loop. Only fused loops make
/// structure pay: a `For`/`If` node whose body is plain ranges and step
/// runs adds dispatch transitions to a hot path the flat interpreter walks
/// in one call, so such constructs are absorbed into the surrounding range.
fn contains_fused(nodes: &[CNode]) -> bool {
    nodes.iter().any(|n| match n {
        CNode::Fused(_) => true,
        CNode::For { body, .. } => contains_fused(body),
        CNode::If { then, els, .. } => contains_fused(then) || contains_fused(els),
        CNode::Range { .. } | CNode::Steps(_) => false,
    })
}

fn flush_run(wp: &WarpProgram, nodes: &mut Vec<CNode>, lo: usize, hi: usize) {
    if hi <= lo {
        return;
    }
    let run = &wp.ops[lo..hi];
    if !run.iter().all(fusible) {
        nodes.push(CNode::Range { lo, hi });
        return;
    }
    let mut fuel = 0u64;
    let mut issue = 0u64;
    let mut flops = 0u64;
    let mut special = 0u64;
    for op in run {
        if let LOp::Account {
            n,
            flops: f,
            special: s,
            ..
        } = op
        {
            fuel += n;
            issue += n;
            flops += f;
            special += s;
        }
    }
    let steps: Vec<LOp> = run
        .iter()
        .filter(|op| !matches!(op, LOp::Account { .. }))
        .copied()
        .collect();
    nodes.push(CNode::Steps(StepsRun {
        lo,
        hi,
        steps,
        fuel,
        issue,
        flops,
        special,
    }));
}

/// Structure `ops[lo..hi]` into nodes, fusing what the step list can carry
/// and leaving everything else as interpreter ranges. Control constructs
/// with no fused descendant are absorbed into the surrounding range — the
/// interpreter executes them exactly as the lowered engine would.
fn compile_range(wp: &WarpProgram, lo: usize, hi: usize, n_fused: &mut usize) -> Vec<CNode> {
    let mut nodes = Vec::new();
    let mut run_start = lo;
    let mut pc = lo;
    while pc < hi {
        match wp.ops[pc] {
            LOp::If {
                cond,
                then_len,
                else_len,
            } => {
                let t0 = pc + 1;
                let e0 = t0 + then_len as usize;
                let end = e0 + else_len as usize;
                let then = compile_range(wp, t0, e0, n_fused);
                let els = compile_range(wp, e0, end, n_fused);
                if contains_fused(&then) || contains_fused(&els) {
                    flush_run(wp, &mut nodes, run_start, pc);
                    nodes.push(CNode::If { cond, then, els });
                    run_start = end;
                }
                pc = end;
            }
            LOp::For {
                counter,
                start,
                end,
                body_len,
                vectorize,
            } => {
                let b0 = pc + 1;
                let bend = b0 + body_len as usize;
                if is_u(counter) {
                    if let Some(fl) =
                        try_fuse(wp, counter, start, end, vectorize, b0, bend, *n_fused)
                    {
                        *n_fused += 1;
                        flush_run(wp, &mut nodes, run_start, pc);
                        nodes.push(CNode::Fused(fl));
                        run_start = bend;
                    } else {
                        let body = compile_range(wp, b0, bend, n_fused);
                        if contains_fused(&body) {
                            flush_run(wp, &mut nodes, run_start, pc);
                            nodes.push(CNode::For {
                                counter,
                                start,
                                end,
                                vectorize,
                                body,
                            });
                            run_start = bend;
                        }
                    }
                }
                pc = bend;
            }
            LOp::While {
                cond_len, body_len, ..
            } => {
                // While loops (data-dependent trip counts, shrinking masks)
                // stay on the interpreter; absorbed into the range.
                pc += 1 + cond_len as usize + body_len as usize;
            }
            _ => pc += 1,
        }
    }
    flush_run(wp, &mut nodes, run_start, hi);
    nodes
}

/// Compile a lowered program into its direct-threaded form.
fn compile(wp: &Arc<WarpProgram>) -> CompiledProgram {
    let mut n_fused = 0usize;
    let root = compile_range(wp, 0, wp.ops.len(), &mut n_fused);
    CompiledProgram {
        wp: Arc::clone(wp),
        root,
        n_fused,
    }
}

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

struct CEntry {
    prog: Program,
    spec_name: String,
    cp: Arc<CompiledProgram>,
}

static CCACHE: OnceLock<Mutex<Vec<CEntry>>> = OnceLock::new();
const CCACHE_CAP: usize = 32;

static COMPILE_HITS: AtomicU64 = AtomicU64::new(0);
static COMPILE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Cumulative hit/miss counters of the compiled-program cache.
pub fn compile_cache_counters() -> CacheCounters {
    CacheCounters {
        hits: COMPILE_HITS.load(Ordering::Relaxed),
        misses: COMPILE_MISSES.load(Ordering::Relaxed),
    }
}

/// The compiled form of `prog` for launches on `spec`, built at most once
/// per `(Program, DeviceSpec)` and shared across launches and workers.
/// `wp` is the already-cached lowered form (compilation never fails once
/// lowering succeeded: the worst case is a single interpreter range).
pub(crate) fn compiled_for(
    prog: &Program,
    spec: &DeviceSpec,
    wp: &Arc<WarpProgram>,
) -> Arc<CompiledProgram> {
    let cache = CCACHE.get_or_init(|| Mutex::new(Vec::new()));
    {
        let guard = cache.lock().unwrap_or_else(|e| e.into_inner());
        for e in guard.iter() {
            if e.spec_name == spec.name && e.prog == *prog {
                COMPILE_HITS.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&e.cp);
            }
        }
    }
    COMPILE_MISSES.fetch_add(1, Ordering::Relaxed);
    let cp = Arc::new(compile(wp));
    let mut guard = cache.lock().unwrap_or_else(|e| e.into_inner());
    // Keep the cache duplicate-free under racing inserts, and FIFO-bounded.
    for e in guard.iter() {
        if e.spec_name == spec.name && e.prog == *prog {
            return Arc::clone(&e.cp);
        }
    }
    while guard.len() >= CCACHE_CAP {
        guard.remove(0);
    }
    guard.push(CEntry {
        prog: prog.clone(),
        spec_name: spec.name.clone(),
        cp: Arc::clone(&cp),
    });
    cp
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Compiled-engine counterpart of `interpret_blocks_lowered`: the shared
/// per-worker block loop, executing each block through the compiled tree.
pub(crate) fn interpret_blocks_compiled(
    ctx: &LaunchCtx<'_>,
    mem: MemAccess<'_>,
    team: usize,
    worker: usize,
    indices: &[usize],
    cp: &CompiledProgram,
) -> Result<WorkerOut, (usize, SimError)> {
    let mut prep: Vec<Option<Box<[PrepSite]>>> = (0..cp.n_fused).map(|_| None).collect();
    run_warp_blocks(ctx, mem, team, worker, indices, &cp.wp, |m, st| {
        cexec_range(m, st, &cp.wp, &cp.root, 0, &mut prep)
    })
}

/// Execute `nodes` under the mask stored at `masks[depth]`, with the same
/// fault-attribution rule as the lowered engine's `exec_range`.
fn cexec_range(
    m: &mut Machine<'_>,
    st: &mut LowState,
    wp: &WarpProgram,
    nodes: &[CNode],
    depth: usize,
    prep: &mut PrepTable,
) -> R<()> {
    let mask = std::mem::take(&mut st.masks[depth]);
    let r = cexec_nodes(m, st, wp, nodes, depth, &mask, prep).map_err(|e| {
        if e.thread.is_none() && matches!(e.kind, crate::fault::SimErrorKind::Fault { .. }) {
            e.at_thread(st.tid[first_active(&mask)])
        } else {
            e
        }
    });
    st.masks[depth] = mask;
    r
}

fn cexec_nodes(
    m: &mut Machine<'_>,
    st: &mut LowState,
    wp: &WarpProgram,
    nodes: &[CNode],
    depth: usize,
    mask: &MaskBuf,
    prep: &mut PrepTable,
) -> R<()> {
    for node in nodes {
        match node {
            CNode::Range { lo, hi } => exec_ops(m, st, wp, *lo, *hi, depth, mask)?,
            CNode::Steps(sr) => {
                if st.lanes == 1 && mask.full && m.fuel >= sr.fuel && m.profile.is_none() {
                    // Batched burn and charges: between the run's `Account`
                    // ops nothing can observe the fuel level or the stat
                    // sums, and region routing is constant across a
                    // straight line (no loop opens or closes inside).
                    m.fuel -= sr.fuel;
                    run_steps_scalar(m, st, &sr.steps)?;
                    m.add_issue(sr.issue * mask.warp_issues);
                    if sr.flops > 0 {
                        m.add_flops(sr.flops * mask.active);
                    }
                    if sr.special > 0 {
                        m.add_special(sr.special * mask.active);
                    }
                } else {
                    exec_ops(m, st, wp, sr.lo, sr.hi, depth, mask)?;
                }
            }
            CNode::If { cond, then, els } => {
                if is_u(*cond) {
                    if st.udb(*cond) {
                        if !then.is_empty() {
                            cexec_nodes(m, st, wp, then, depth, mask, prep)?;
                        }
                    } else if !els.is_empty() {
                        cexec_nodes(m, st, wp, els, depth, mask, prep)?;
                    }
                } else if st.lanes == 1 && mask.full {
                    // One fully active lane: the taken side's child mask
                    // equals the parent and a divergent branch (both sides
                    // live in one warp) is impossible, so skip the mask
                    // machinery and run the branch in place.
                    if st.rdb(*cond, 0) {
                        if !then.is_empty() {
                            cexec_nodes(m, st, wp, then, depth, mask, prep)?;
                        }
                    } else if !els.is_empty() {
                        cexec_nodes(m, st, wp, els, depth, mask, prep)?;
                    }
                } else {
                    st.ensure_mask(depth + 1);
                    let (any_t, any_f) = {
                        let mut child = std::mem::take(&mut st.masks[depth + 1]);
                        let r = fill_branch_mask(m, st, *cond, mask, &mut child, true, true);
                        st.masks[depth + 1] = child;
                        r
                    };
                    if any_t && !then.is_empty() {
                        cexec_range(m, st, wp, then, depth + 1, prep)?;
                    }
                    if any_f && !els.is_empty() {
                        let mut child = std::mem::take(&mut st.masks[depth + 1]);
                        fill_branch_mask(m, st, *cond, mask, &mut child, false, false);
                        st.masks[depth + 1] = child;
                        cexec_range(m, st, wp, els, depth + 1, prep)?;
                    }
                }
            }
            CNode::For {
                counter,
                start,
                end,
                vectorize,
                body,
            } => {
                let opened = open_region(m, *vectorize);
                let result = (|| -> R<()> {
                    let s0 = st.udi(*start);
                    let e0 = st.udi(*end);
                    let mut k = s0;
                    while k < e0 {
                        m.burn()?;
                        st.wu(*counter, k as u64);
                        cexec_nodes(m, st, wp, body, depth, mask, prep)?;
                        if opened {
                            if let Some(r) = &mut m.region {
                                r.iter += 1;
                            }
                        }
                        k += 1;
                    }
                    Ok(())
                })();
                close_region(m, opened);
                result?;
            }
            CNode::Fused(fl) => {
                let opened = open_region(m, fl.vectorize);
                let result = exec_fused(m, st, wp, fl, depth, mask, opened, prep);
                close_region(m, opened);
                result?;
            }
        }
    }
    Ok(())
}

/// Mirror of the lowered engine's region bookkeeping around a `For` op:
/// open a vectorization probe for outermost element loops on SIMD CPU
/// models, otherwise track nesting depth inside an open region.
#[inline]
fn open_region(m: &mut Machine<'_>, vectorize: bool) -> bool {
    let opened =
        vectorize && m.spec.kind == DeviceKind::Cpu && m.spec.simd_width > 1 && m.region.is_none();
    if opened {
        m.region = Some(RegionAcc::default());
    } else if let Some(r) = &mut m.region {
        r.depth += 1;
    }
    opened
}

#[inline]
fn close_region(m: &mut Machine<'_>, opened: bool) {
    if opened {
        let r = m.region.take().expect("region open");
        if r.vectorized() {
            m.stats.vec_issue += r.issue;
            m.stats.vec_flops += r.flops;
            // Special functions do not vectorize on the modeled units.
            m.stats.special_ops += r.special;
        } else {
            m.stats.scalar_issue += r.issue;
            m.stats.scalar_flops += r.flops;
            m.stats.special_ops += r.special;
        }
    } else if let Some(reg) = &mut m.region {
        reg.depth = reg.depth.saturating_sub(1);
    }
}

/// Execute one fused loop. The fast path — full mask, one lane per block,
/// enough fuel for every iteration — runs the turbo step list with batched
/// accounting; anything else falls back to the lowered interpreter's loop
/// on the same state for exact parity.
#[allow(clippy::too_many_arguments)]
fn exec_fused(
    m: &mut Machine<'_>,
    st: &mut LowState,
    wp: &WarpProgram,
    fl: &FusedLoop,
    depth: usize,
    mask: &MaskBuf,
    probe: bool,
    prep: &mut PrepTable,
) -> R<()> {
    let s0 = st.udi(fl.start);
    let e0 = st.udi(fl.end);
    let trips: u64 = if e0 > s0 {
        // i64 differences always fit u64 when positive.
        u64::try_from(e0 as i128 - s0 as i128).expect("positive i64 range fits u64")
    } else {
        0
    };
    let needed = trips.checked_mul(fl.fuel_per_iter);
    let fast = st.lanes == 1 && mask.full && matches!(needed, Some(n) if m.fuel >= n);
    if !fast {
        return exec_for_lowered(
            m, st, wp, fl.counter, fl.start, fl.end, fl.b0, fl.bend, depth, mask, probe,
        );
    }
    debug_assert!(
        m.profile.is_none(),
        "traced launches must run the lowered engine"
    );
    // One batched burn for the whole loop: identical to the per-iteration
    // burns of the interpreted path because nothing in between can observe
    // the fuel level (errors abort the launch before it is reported).
    m.fuel -= needed.unwrap_or(0);
    if trips > 0 {
        let resolved = match &prep[fl.id] {
            Some(_) => true,
            // Resolve sites on first use; a failure (unbound buffer slot)
            // must surface at the exact step the interpreter would hit, so
            // fall back to the generic list instead of erroring here.
            None => match prepare_sites(m, &fl.sites) {
                Ok(s) => {
                    prep[fl.id] = Some(s);
                    true
                }
                Err(_) => false,
            },
        };
        if resolved {
            let sites = prep[fl.id].as_deref().expect("prepared above");
            run_turbo(m, st, fl, sites, s0, e0, probe)?;
        } else {
            let mut k = s0;
            while k < e0 {
                st.wu(fl.counter, k as u64);
                run_steps_scalar(m, st, &fl.steps)?;
                if probe {
                    if let Some(r) = &mut m.region {
                        r.iter += 1;
                    }
                }
                k += 1;
            }
        }
    }
    // Batched straight-line charges: same totals, same region/scalar
    // routing as the per-iteration `Account` ops of the interpreted path.
    m.add_issue(trips * fl.issue_per_iter * mask.warp_issues);
    if fl.flops_per_iter > 0 {
        m.add_flops(trips * fl.flops_per_iter * mask.active);
    }
    if fl.special_per_iter > 0 {
        m.add_special(trips * fl.special_per_iter * mask.active);
    }
    Ok(())
}

/// Resolve a fused loop's buffer sites against the launch's memory, in
/// first-use order (so the first unbound slot errors exactly like the
/// first interpreter step that references it).
fn prepare_sites(m: &mut Machine<'_>, sites: &[SiteRef]) -> R<Box<[PrepSite]>> {
    let mut out = Vec::with_capacity(sites.len());
    for sr in sites {
        let ps = if sr.is_f {
            let b = m.buf_f(sr.slot)?;
            match &mut m.mem {
                MemAccess::Excl(d) => {
                    let base = d.addr_f(b, 0);
                    let v = d.f_mut(b);
                    PrepSite {
                        ptr: v.as_mut_ptr().cast::<u64>(),
                        len: v.len(),
                        base,
                    }
                }
                MemAccess::Shared(v) => {
                    let (p, len) = v.raw_f(b);
                    PrepSite {
                        ptr: p.cast::<u64>(),
                        len,
                        base: v.addr_f(b, 0),
                    }
                }
            }
        } else {
            let b = m.buf_i(sr.slot)?;
            match &mut m.mem {
                MemAccess::Excl(d) => {
                    let base = d.addr_i(b, 0);
                    let v = d.i_mut(b);
                    PrepSite {
                        ptr: v.as_mut_ptr().cast::<u64>(),
                        len: v.len(),
                        base,
                    }
                }
                MemAccess::Shared(v) => {
                    let (p, len) = v.raw_i(b);
                    PrepSite {
                        ptr: p.cast::<u64>(),
                        len,
                        base: v.addr_i(b, 0),
                    }
                }
            }
        };
        out.push(ps);
    }
    Ok(out.into_boxed_slice())
}

/// Charge one coalesced line access against the hoisted cache reference —
/// the body of [`Machine::line_access`] with the profile mirror dropped
/// (the compiled engine never runs profiled launches).
#[inline(always)]
fn charge_line(
    cache: &mut Option<&mut CacheSim>,
    stats: &mut LaunchStats,
    line: u64,
    line_bytes: u64,
) {
    stats.mem_transactions += 1;
    match cache {
        None => stats.dram_bytes += line_bytes,
        Some(c) => {
            if c.access_line(line) {
                stats.cache_hits += 1;
            } else {
                stats.cache_misses += 1;
                stats.dram_bytes += line_bytes;
            }
        }
    }
}

/// The turbo loop: superop steps over pre-resolved sites, with the memory
/// view, cache, ECC context and line geometry hoisted out of the loop.
/// Preconditions (checked by `exec_fused`): single lane, full mask, fuel
/// pre-charged, no profiling. Probe logging (a region's first two
/// iterations) is mirrored inline, access for access.
fn run_turbo(
    m: &mut Machine<'_>,
    st: &mut LowState,
    fl: &FusedLoop,
    sites: &[PrepSite],
    mut k: i64,
    e0: i64,
    bump_iter: bool,
) -> R<()> {
    let ecc = m.ecc;
    let blk = m.cur_block_lin;
    let tid0 = st.tid[0];
    let line_bytes = m.spec.line_bytes as u64;
    // Same quotient either way; the shift avoids a hardware divide per
    // access on the (universal) power-of-two line sizes.
    let line_shift = if line_bytes.is_power_of_two() {
        Some(line_bytes.trailing_zeros())
    } else {
        None
    };
    let line_of = |a: u64| match line_shift {
        Some(s) => a >> s,
        None => a / line_bytes,
    };
    let cur_sm = m.cur_sm;
    let Machine {
        stats,
        caches,
        region,
        atomics,
        ..
    } = m;
    let mut cache: Option<&mut CacheSim> = match caches {
        Caches::None => None,
        Caches::PerSm(cs) => Some(&mut cs[cur_sm]),
        Caches::Shared(c) => Some(c),
    };
    // Inner-product fast path: both load indices are affine in `k`, so if
    // every index over [k, e0) is in bounds (checked once, in i128 so
    // wrapping evaluation provably equals the true value), the loop needs
    // no per-access checks. ECC-armed and probe-logging runs stay on the
    // step loop, as does any run whose indices would fault — the error
    // must surface at the exact iteration the interpreter reaches.
    // Per-access stat deltas are recovered afterwards from the cache's own
    // hit/miss counters, which `access_line` maintains; nothing between can
    // observe the intermediate sums.
    let dot_done = (|| -> Option<()> {
        let dk = fl.dot.as_ref()?;
        if ecc.is_some() {
            return None;
        }
        let shift = line_shift?;
        // A self-probing loop (a vec=true fused loop driving its own
        // region) advances `iter` every iteration; that stays on the step
        // loop. A probe state that is *fixed* across the run is mirrored
        // inline below, push for push.
        if bump_iter && region.is_some() {
            return None;
        }
        let (ab, asr) = affine_eval(st, &dk.a_idx);
        let (bb, bsr) = affine_eval(st, &dk.b_idx);
        let sa = sites[dk.a_site as usize];
        let sb = sites[dk.b_site as usize];
        let in_bounds = |base: i64, stride: i64, len: usize| {
            let lo = base as i128 + stride as i128 * k as i128;
            let hi = base as i128 + stride as i128 * (e0 - 1) as i128;
            let (mn, mx) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            mn >= 0 && mx < len as i128
        };
        if !in_bounds(ab, asr, sa.len) || !in_bounds(bb, bsr, sb.len) {
            return None;
        }
        let trips = (e0 - k) as u64;
        let mut ia = ab.wrapping_add(asr.wrapping_mul(k));
        let mut ib = bb.wrapping_add(bsr.wrapping_mul(k));
        let mut addr_a = sa.base.wrapping_add((ia as u64).wrapping_mul(8));
        let mut addr_b = sb.base.wrapping_add((ib as u64).wrapping_mul(8));
        let da = (asr as u64).wrapping_mul(8);
        let db = (bsr as u64).wrapping_mul(8);
        let mut acc = f64::from_bits(if is_u(dk.v) {
            st.uvars[idx(dk.v)]
        } else {
            st.vvars[dk.v as usize]
        });
        let a_first = dk.a_first;
        let (mut la, mut lb) = (0u64, 0u64);
        // The enclosing region\'s probe log, when it is still recording:
        // the address sequence a,b,a,b,... and the overflow seal match
        // `mem_access_one` exactly.
        let mut probe: Option<(&mut Vec<u64>, &mut bool)> = match region.as_mut() {
            Some(r) if r.iter < 2 && !r.probe_failed => {
                let RegionAcc {
                    iter,
                    addrs0,
                    addrs1,
                    probe_failed,
                    ..
                } = r;
                Some((if *iter == 0 { addrs0 } else { addrs1 }, probe_failed))
            }
            _ => None,
        };
        let mut ch = cache.as_deref_mut();
        let (h0, mi0) = ch.as_ref().map_or((0, 0), |c| (c.hits, c.misses));
        macro_rules! probe_push {
            ($a:expr) => {
                if let Some((log, failed)) = probe.as_mut() {
                    if !**failed {
                        log.push($a);
                        if log.len() > 4096 {
                            **failed = true;
                        }
                    }
                }
            };
        }
        for _ in 0..trips {
            // SAFETY: `ia`/`ib` verified in bounds for the whole range
            // above; same live relaxed cells as `gload!`.
            la = unsafe { AtomicU64::from_ptr(sa.ptr.add(ia as usize)).load(Ordering::Relaxed) };
            probe_push!(addr_a);
            if let Some(c) = ch.as_mut() {
                c.access_line(addr_a >> shift);
            }
            lb = unsafe { AtomicU64::from_ptr(sb.ptr.add(ib as usize)).load(Ordering::Relaxed) };
            probe_push!(addr_b);
            if let Some(c) = ch.as_mut() {
                c.access_line(addr_b >> shift);
            }
            let (x, y) = if a_first { (la, lb) } else { (lb, la) };
            acc = sem::fma(f64::from_bits(x), f64::from_bits(y), acc);
            ia = ia.wrapping_add(asr);
            ib = ib.wrapping_add(bsr);
            addr_a = addr_a.wrapping_add(da);
            addr_b = addr_b.wrapping_add(db);
        }
        // Per-access stat deltas, recovered from the cache\'s own counters
        // (`access_line` maintains them); nothing in between could observe
        // the intermediate sums.
        match ch {
            Some(c) => {
                let dm = c.misses - mi0;
                stats.cache_hits += c.hits - h0;
                stats.cache_misses += dm;
                stats.dram_bytes += dm * line_bytes;
            }
            None => stats.dram_bytes += 2 * trips * line_bytes,
        }
        stats.mem_transactions += 2 * trips;
        stats.global_loads += 2 * trips;
        // Leave registers, the accumulator and the counter exactly as the
        // step loop\'s last iteration would.
        wr1(st, dk.ra, la);
        wr1(st, dk.rb, lb);
        let accb = acc.to_bits();
        if is_u(dk.v) {
            st.uvars[idx(dk.v)] = accb;
        } else {
            st.vvars[dk.v as usize] = accb;
        }
        st.wu(fl.counter, (e0 - 1) as u64);
        Some(())
    })();
    if dot_done.is_some() {
        return Ok(());
    }
    // Mirror of `Machine::mem_access_one`'s probe logging: record the
    // address while the enclosing region's first two iterations are being
    // probed, sealing the log on overflow.
    macro_rules! probe_log {
        ($a:expr) => {
            if let Some(r) = region.as_mut() {
                if r.iter < 2 && !r.probe_failed {
                    let log = if r.iter == 0 {
                        &mut r.addrs0
                    } else {
                        &mut r.addrs1
                    };
                    log.push($a);
                    if log.len() > 4096 {
                        r.probe_failed = true;
                    }
                }
            }
        };
    }

    // One global load: bounds check, ECC decision, relaxed element read and
    // line accounting in exactly the order of the `exec_ops` arm.
    macro_rules! gload {
        ($d:expr, $site:expr, $ix:expr, $what:literal) => {{
            let s = sites[$site as usize];
            let ix: i64 = $ix;
            if ix < 0 || ix as usize >= s.len {
                let len = s.len;
                return Err(
                    serr!(concat!($what, ": index {} out of bounds (len {})"), ix, len)
                        .at_thread(tid0),
                );
            }
            let a = s.base + (ix as u64) * 8;
            if let Some(e) = ecc {
                if e.hits(blk, a) {
                    return Err(SimError::transient(format!(
                        concat!(
                            $what,
                            ": uncorrectable ECC error at device address {:#x} (injected)"
                        ),
                        a
                    ))
                    .at_thread(tid0));
                }
            }
            // SAFETY: bounds-checked element of a live, 8-aligned device
            // allocation that outlives the launch; concurrent workers use
            // the same relaxed cells (see `SharedMem`).
            let bits =
                unsafe { AtomicU64::from_ptr(s.ptr.add(ix as usize)).load(Ordering::Relaxed) };
            wr1(st, $d, bits);
            stats.global_loads += 1;
            probe_log!(a);
            charge_line(&mut cache, stats, line_of(a), line_bytes);
        }};
    }
    macro_rules! gstore {
        ($site:expr, $ix:expr, $val:expr, $what:literal) => {{
            let s = sites[$site as usize];
            let ix: i64 = $ix;
            if ix < 0 || ix as usize >= s.len {
                let len = s.len;
                return Err(
                    serr!(concat!($what, ": index {} out of bounds (len {})"), ix, len)
                        .at_thread(tid0),
                );
            }
            let bits: u64 = $val;
            // SAFETY: as in `gload!`.
            unsafe { AtomicU64::from_ptr(s.ptr.add(ix as usize)).store(bits, Ordering::Relaxed) };
            stats.global_stores += 1;
            let a = s.base + (ix as u64) * 8;
            probe_log!(a);
            charge_line(&mut cache, stats, line_of(a), line_bytes);
        }};
    }

    // One global atomic: the single-lane specialization of the matching
    // `exec_ops` arm — charge, bounds check, then defer to the launch's
    // privatization plan or apply in place. Atomic units are modeled apart
    // from the load/store path, so (like the interpreter) this touches no
    // cache, probe log or ECC state.
    macro_rules! atom_f {
        ($op:expr, $d:expr, $site:expr, $slot:expr, $ix:expr, $v:expr) => {{
            let s = sites[$site as usize];
            stats.atomics += 1;
            let ix: i64 = $ix;
            if ix < 0 || ix as usize >= s.len {
                let len = s.len;
                return Err(
                    serr!("atom.global.f64: index {} out of bounds (len {})", ix, len)
                        .at_thread(tid0),
                );
            }
            let v: f64 = $v;
            match atomics
                .as_mut()
                .and_then(|ap| ap.target_f($slot).map(move |t| (ap, t)))
            {
                Some((ap, t)) => {
                    // Deferred: the plan guarantees the old value is dead.
                    ap.defer_f(t, $op, blk as u64, ix as usize, v);
                    wr1(st, $d, 0);
                }
                None => {
                    // Plan-less launches run serially, so the relaxed RMW
                    // is race-free and equals the interpreter's
                    // read/modify/write on the same cells.
                    // SAFETY: bounds-checked element as in `gload!`.
                    let cell = unsafe { AtomicU64::from_ptr(s.ptr.add(ix as usize)) };
                    let old = f64::from_bits(cell.load(Ordering::Relaxed));
                    cell.store(sem::atomic_f($op, old, v).to_bits(), Ordering::Relaxed);
                    wr1(st, $d, old.to_bits());
                }
            }
        }};
    }
    macro_rules! atom_i {
        ($op:expr, $d:expr, $site:expr, $slot:expr, $ix:expr, $v:expr) => {{
            let s = sites[$site as usize];
            stats.atomics += 1;
            let ix: i64 = $ix;
            if ix < 0 || ix as usize >= s.len {
                let len = s.len;
                return Err(
                    serr!("atom.global.s64: index {} out of bounds (len {})", ix, len)
                        .at_thread(tid0),
                );
            }
            let v: i64 = $v;
            match atomics
                .as_mut()
                .and_then(|ap| ap.target_i($slot).map(move |t| (ap, t)))
            {
                Some((ap, t)) => {
                    ap.defer_i(t, $op, blk as u64, ix as usize, v);
                    wr1(st, $d, 0);
                }
                None => {
                    // SAFETY: bounds-checked element as in `gload!`.
                    let cell = unsafe { AtomicU64::from_ptr(s.ptr.add(ix as usize)) };
                    let old = cell.load(Ordering::Relaxed) as i64;
                    cell.store(sem::atomic_i($op, old, v) as u64, Ordering::Relaxed);
                    wr1(st, $d, old as u64);
                }
            }
        }};
    }

    while k < e0 {
        st.wu(fl.counter, k as u64);
        for sp in &fl.turbo {
            match *sp {
                SStep::Pure(ref op) => scalar_pure(st, op)?,
                SStep::BinF { op, d, a, b } => {
                    let r = sem::fbin(op, rd1f(st, a), rd1f(st, b));
                    wr1(st, d, r.to_bits());
                }
                SStep::BinI { op, d, a, b } => {
                    let r = sem::ibin(op, rd1i(st, a), rd1i(st, b));
                    wr1(st, d, r as u64);
                }
                SStep::Fma { d, a, b, c } => {
                    let r = sem::fma(rd1f(st, a), rd1f(st, b), rd1f(st, c));
                    wr1(st, d, r.to_bits());
                }
                SStep::FmaAcc { v, a, b } => {
                    let acc = if is_u(v) {
                        st.uvars[idx(v)]
                    } else {
                        st.vvars[v as usize]
                    };
                    let r = sem::fma(rd1f(st, a), rd1f(st, b), f64::from_bits(acc));
                    if is_u(v) {
                        st.uvars[idx(v)] = r.to_bits();
                    } else {
                        st.vvars[v as usize] = r.to_bits();
                    }
                }
                SStep::LdF { d, site, i } => gload!(d, site, rd1i(st, i), "ld.global.f64"),
                SStep::LdFAdd { d, site, a, b } => gload!(
                    d,
                    site,
                    rd1i(st, a).wrapping_add(rd1i(st, b)),
                    "ld.global.f64"
                ),
                SStep::LdFMulAdd { d, site, a, b, c } => gload!(
                    d,
                    site,
                    rd1i(st, a)
                        .wrapping_mul(rd1i(st, b))
                        .wrapping_add(rd1i(st, c)),
                    "ld.global.f64"
                ),
                SStep::LdI { d, site, i } => gload!(d, site, rd1i(st, i), "ld.global.s64"),
                SStep::LdIAdd { d, site, a, b } => gload!(
                    d,
                    site,
                    rd1i(st, a).wrapping_add(rd1i(st, b)),
                    "ld.global.s64"
                ),
                SStep::LdIMulAdd { d, site, a, b, c } => gload!(
                    d,
                    site,
                    rd1i(st, a)
                        .wrapping_mul(rd1i(st, b))
                        .wrapping_add(rd1i(st, c)),
                    "ld.global.s64"
                ),
                SStep::StF { site, i, val } => {
                    gstore!(site, rd1i(st, i), rd1(st, val), "st.global.f64")
                }
                SStep::StI { site, i, val } => {
                    gstore!(site, rd1i(st, i), rd1(st, val), "st.global.s64")
                }
                SStep::AtomF {
                    op,
                    d,
                    site,
                    slot,
                    i,
                    val,
                } => atom_f!(op, d, site, slot, rd1i(st, i), rd1f(st, val)),
                SStep::AtomFAdd {
                    op,
                    d,
                    site,
                    slot,
                    a,
                    b,
                    val,
                } => atom_f!(
                    op,
                    d,
                    site,
                    slot,
                    rd1i(st, a).wrapping_add(rd1i(st, b)),
                    rd1f(st, val)
                ),
                SStep::AtomI {
                    op,
                    d,
                    site,
                    slot,
                    i,
                    val,
                } => atom_i!(op, d, site, slot, rd1i(st, i), rd1i(st, val)),
                SStep::AtomIAdd {
                    op,
                    d,
                    site,
                    slot,
                    a,
                    b,
                    val,
                } => atom_i!(
                    op,
                    d,
                    site,
                    slot,
                    rd1i(st, a).wrapping_add(rd1i(st, b)),
                    rd1i(st, val)
                ),
            }
        }
        if bump_iter {
            if let Some(r) = region.as_mut() {
                r.iter = r.iter.wrapping_add(1);
            }
        }
        k += 1;
    }
    Ok(())
}

// Single-lane register file accessors: with `lanes == 1` the per-lane
// stride vanishes, so a slot resolves to one flat index in either file.
#[inline(always)]
fn rd1(st: &LowState, s: u32) -> u64 {
    if is_u(s) {
        st.uregs[idx(s)]
    } else {
        st.vregs[s as usize]
    }
}

#[inline(always)]
fn rd1f(st: &LowState, s: u32) -> f64 {
    f64::from_bits(rd1(st, s))
}

#[inline(always)]
fn rd1i(st: &LowState, s: u32) -> i64 {
    rd1(st, s) as i64
}

#[inline(always)]
fn rd1b(st: &LowState, s: u32) -> bool {
    rd1(st, s) != 0
}

#[inline(always)]
fn wr1(st: &mut LowState, d: u32, bits: u64) {
    if is_u(d) {
        st.uregs[idx(d)] = bits;
    } else {
        st.vregs[d as usize] = bits;
    }
}

/// A compute/variable/local-array op at one lane — the single-active-lane
/// specialization of the matching `exec_ops` arm. Touches only `st`.
#[inline(always)]
fn scalar_pure(st: &mut LowState, step: &LOp) -> R<()> {
    match *step {
        LOp::BinF { op, d, a, b } => {
            let r = sem::fbin(op, rd1f(st, a), rd1f(st, b));
            wr1(st, d, r.to_bits());
        }
        LOp::UnF { op, d, a } => {
            let r = sem::fun(op, rd1f(st, a));
            wr1(st, d, r.to_bits());
        }
        LOp::Fma { d, a, b, c } => {
            let r = sem::fma(rd1f(st, a), rd1f(st, b), rd1f(st, c));
            wr1(st, d, r.to_bits());
        }
        LOp::BinI { op, d, a, b } => {
            let r = sem::ibin(op, rd1i(st, a), rd1i(st, b));
            wr1(st, d, r as u64);
        }
        LOp::NegI { d, a } => {
            let r = rd1i(st, a).wrapping_neg();
            wr1(st, d, r as u64);
        }
        LOp::CmpF { op, d, a, b } => {
            let r = sem::cmp_f(op, rd1f(st, a), rd1f(st, b));
            wr1(st, d, r as u64);
        }
        LOp::CmpI { op, d, a, b } => {
            let r = sem::cmp_i(op, rd1i(st, a), rd1i(st, b));
            wr1(st, d, r as u64);
        }
        LOp::BinB { op, d, a, b } => {
            let r = sem::bbin(op, rd1b(st, a), rd1b(st, b));
            wr1(st, d, r as u64);
        }
        LOp::NotB { d, a } => {
            let r = !rd1b(st, a);
            wr1(st, d, r as u64);
        }
        LOp::Sel { d, c, t, e } => {
            let bits = if rd1b(st, c) { rd1(st, t) } else { rd1(st, e) };
            wr1(st, d, bits);
        }
        LOp::I2F { d, a } => {
            let r = sem::i2f(rd1i(st, a));
            wr1(st, d, r.to_bits());
        }
        LOp::F2I { d, a } => {
            let r = sem::f2i(rd1f(st, a));
            wr1(st, d, r as u64);
        }
        LOp::U2UnitF { d, a } => {
            let r = sem::u2unit(rd1i(st, a));
            wr1(st, d, r.to_bits());
        }
        LOp::LdVar { d, v } => {
            let bits = if is_u(v) {
                st.uvars[idx(v)]
            } else {
                st.vvars[v as usize]
            };
            wr1(st, d, bits);
        }
        LOp::StVar { v, val } => {
            let bits = rd1(st, val);
            if is_u(v) {
                st.uvars[idx(v)] = bits;
            } else {
                st.vvars[v as usize] = bits;
            }
        }
        LOp::LdLF { d, loc, i, len } => {
            let len = len as usize;
            let ix = rd1i(st, i);
            if ix < 0 || ix as usize >= len {
                return Err(serr!("ld.local.f64: index {ix} out of bounds (len {len})")
                    .at_thread(st.tid[0]));
            }
            let v = st.loc_f[loc as usize][ix as usize];
            wr1(st, d, v.to_bits());
        }
        LOp::StLF { loc, i, val, len } => {
            let len = len as usize;
            let ix = rd1i(st, i);
            if ix < 0 || ix as usize >= len {
                return Err(serr!("st.local.f64: index {ix} out of bounds (len {len})")
                    .at_thread(st.tid[0]));
            }
            let v = rd1f(st, val);
            st.loc_f[loc as usize][ix as usize] = v;
        }
        // Accounts are stripped at compile time; control flow, barriers
        // and shared memory never pass `fusible`; global memory ops and
        // atomics are handled by `run_steps_scalar` before falling through
        // to this pure-op dispatch.
        _ => unreachable!("non-fusible op in compiled step list"),
    }
    Ok(())
}

/// One iteration of a fused body at one lane under a full mask, on the
/// generic (pre-superop) step list. Each memory arm is the
/// single-active-lane specialization of the matching `exec_ops` arm: same
/// bounds-check order, same error strings and thread attribution (lane 0 is
/// the first active lane), same cache/probe accounting through
/// [`Machine::mem_access_one`] (provably what `access_uniform(a, 1, 1)` and
/// a one-entry `flush_addrs` both reduce to).
fn run_steps_scalar(m: &mut Machine<'_>, st: &mut LowState, steps: &[LOp]) -> R<()> {
    for step in steps {
        match *step {
            LOp::LdGF { d, buf, i } => {
                let b = m.buf_f(buf)?;
                let ix = rd1i(st, i);
                let len = m.mem.len_f(b);
                if ix < 0 || ix as usize >= len {
                    return Err(serr!("ld.global.f64: index {ix} out of bounds (len {len})")
                        .at_thread(st.tid[0]));
                }
                let a = m.mem.addr_f(b, ix as u64);
                m.ecc_check(a, "ld.global.f64", st.tid[0])?;
                let v = m.mem.read_f(b, ix as usize)?;
                wr1(st, d, v.to_bits());
                m.stats.global_loads += 1;
                m.mem_access_one(a);
            }
            LOp::LdGI { d, buf, i } => {
                let b = m.buf_i(buf)?;
                let ix = rd1i(st, i);
                let len = m.mem.len_i(b);
                if ix < 0 || ix as usize >= len {
                    return Err(serr!("ld.global.s64: index {ix} out of bounds (len {len})")
                        .at_thread(st.tid[0]));
                }
                let a = m.mem.addr_i(b, ix as u64);
                m.ecc_check(a, "ld.global.s64", st.tid[0])?;
                let v = m.mem.read_i(b, ix as usize)?;
                wr1(st, d, v as u64);
                m.stats.global_loads += 1;
                m.mem_access_one(a);
            }
            LOp::StGF { buf, i, val } => {
                let b = m.buf_f(buf)?;
                let ix = rd1i(st, i);
                let len = m.mem.len_f(b);
                if ix < 0 || ix as usize >= len {
                    return Err(serr!("st.global.f64: index {ix} out of bounds (len {len})")
                        .at_thread(st.tid[0]));
                }
                m.mem.write_f(b, ix as usize, rd1f(st, val))?;
                m.stats.global_stores += 1;
                m.mem_access_one(m.mem.addr_f(b, ix as u64));
            }
            LOp::StGI { buf, i, val } => {
                let b = m.buf_i(buf)?;
                let ix = rd1i(st, i);
                let len = m.mem.len_i(b);
                if ix < 0 || ix as usize >= len {
                    return Err(serr!("st.global.s64: index {ix} out of bounds (len {len})")
                        .at_thread(st.tid[0]));
                }
                m.mem.write_i(b, ix as usize, rd1i(st, val))?;
                m.stats.global_stores += 1;
                m.mem_access_one(m.mem.addr_i(b, ix as u64));
            }
            LOp::AtomicF { op, d, buf, i, val } => {
                let b = m.buf_f(buf)?;
                m.stats.atomics += 1;
                m.prof_add(|c| c.atomics += 1);
                let ix = rd1i(st, i);
                let len = m.mem.len_f(b);
                if ix < 0 || ix as usize >= len {
                    return Err(
                        serr!("atom.global.f64: index {ix} out of bounds (len {len})")
                            .at_thread(st.tid[0]),
                    );
                }
                let v = rd1f(st, val);
                let target = m.atomics.as_ref().and_then(|ap| ap.target_f(buf));
                if let Some(t) = target {
                    let block = m.cur_block_lin as u64;
                    m.atomics
                        .as_mut()
                        .unwrap()
                        .defer_f(t, op, block, ix as usize, v);
                    wr1(st, d, 0);
                } else {
                    let old = m.mem.read_f(b, ix as usize)?;
                    m.mem.write_f(b, ix as usize, sem::atomic_f(op, old, v))?;
                    wr1(st, d, old.to_bits());
                }
            }
            LOp::AtomicI { op, d, buf, i, val } => {
                let b = m.buf_i(buf)?;
                m.stats.atomics += 1;
                m.prof_add(|c| c.atomics += 1);
                let ix = rd1i(st, i);
                let len = m.mem.len_i(b);
                if ix < 0 || ix as usize >= len {
                    return Err(
                        serr!("atom.global.s64: index {ix} out of bounds (len {len})")
                            .at_thread(st.tid[0]),
                    );
                }
                let v = rd1i(st, val);
                let target = m.atomics.as_ref().and_then(|ap| ap.target_i(buf));
                if let Some(t) = target {
                    let block = m.cur_block_lin as u64;
                    m.atomics
                        .as_mut()
                        .unwrap()
                        .defer_i(t, op, block, ix as usize, v);
                    wr1(st, d, 0);
                } else {
                    let old = m.mem.read_i(b, ix as usize)?;
                    m.mem.write_i(b, ix as usize, sem::atomic_i(op, old, v))?;
                    wr1(st, d, old as u64);
                }
            }
            ref other => scalar_pure(st, other)?,
        }
    }
    Ok(())
}
