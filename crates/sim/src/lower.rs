//! Pre-lowered warp programs: the compile-once / execute-many fast path of
//! the interpreter.
//!
//! [`lower`] turns a validated [`Program`] into a [`WarpProgram`] — a flat
//! array of pre-decoded ops with all operand slots resolved — using the
//! static uniformity analysis from `alpaka_kir::passes`:
//!
//! * **Uniform** values (lane-invariant: block indices, params, constants,
//!   loads at uniform indices, …) live in a *scalar* register file and are
//!   computed once per block instead of once per lane. Instruction issue,
//!   divergence and coalescing accounting still charge full-warp costs —
//!   the analysis changes host work, never the modeled device time.
//! * Constants are folded into a per-worker register preload and disappear
//!   from the execution stream entirely (their issue/fuel charge remains).
//! * Straight-line runs of instructions are charged as one `Account` op:
//!   one fuel check and one issue/flop update per run instead of per
//!   instruction.
//! * Structured control flow becomes range-delimited regions over the flat
//!   op array, executed under pooled lane masks with per-warp active and
//!   issue counts precomputed.
//!
//! Execution results — buffer contents, `LaunchStats`, `TimeBreakdown` —
//! are bit-identical to the tree-walking reference interpreter in
//! `crate::interp` and to `alpaka_kir::eval`; the determinism suite in
//! `tests/parallel_determinism.rs` pins this. Programs that fail IR
//! validation are not lowered (the caller falls back to the reference
//! engine, preserving its error behavior).

// Lockstep execution iterates lane indices under an active mask across
// several parallel per-lane arrays; the explicit-index form is clearest.
#![allow(clippy::needless_range_loop)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use alpaka_core::acc::DeviceKind;
use alpaka_kir::ir::*;
use alpaka_kir::semantics as sem;
use alpaka_kir::{uniformity, validate, Uniformity};

use alpaka_core::trace::BlockSpan;

use crate::fault::SimError;
use crate::interp::RegionAcc;
use crate::interp::{
    make_machine, stats_issue_cycles, LaunchCtx, Machine, MapI64, MemAccess, WorkerOut, R,
};
use crate::serr;
use crate::spec::DeviceSpec;

/// Register-slot encoding: the top bit selects the scalar (uniform) file,
/// the low bits are the `ValId`/`VarId` index.
pub(crate) const U_BIT: u32 = 1 << 31;

#[inline]
pub(crate) fn is_u(slot: u32) -> bool {
    slot & U_BIT != 0
}

#[inline]
pub(crate) fn idx(slot: u32) -> usize {
    (slot & !U_BIT) as usize
}

/// One pre-decoded op. Operand fields are register slots (`U_BIT` selects
/// the uniform file); control-flow ops delimit ranges of the flat array.
/// Shared with `crate::compile`, which re-threads ranges of these ops into
/// fused loops.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LOp {
    /// Charge a straight-line run: `n` instructions of fuel and issue,
    /// plus `flops`/`special` per active lane. `detail` indexes the first
    /// of the run's `n` per-instruction entries in `WarpProgram::acct`
    /// (used only when profiling).
    Account {
        n: u64,
        flops: u64,
        special: u64,
        detail: u32,
    },
    BinF {
        op: FBin,
        d: u32,
        a: u32,
        b: u32,
    },
    UnF {
        op: FUn,
        d: u32,
        a: u32,
    },
    Fma {
        d: u32,
        a: u32,
        b: u32,
        c: u32,
    },
    BinI {
        op: IBin,
        d: u32,
        a: u32,
        b: u32,
    },
    NegI {
        d: u32,
        a: u32,
    },
    CmpF {
        op: Cmp,
        d: u32,
        a: u32,
        b: u32,
    },
    CmpI {
        op: Cmp,
        d: u32,
        a: u32,
        b: u32,
    },
    BinB {
        op: BBin,
        d: u32,
        a: u32,
        b: u32,
    },
    NotB {
        d: u32,
        a: u32,
    },
    /// `SelF`/`SelI` unified: selection is a bit-level copy.
    Sel {
        d: u32,
        c: u32,
        t: u32,
        e: u32,
    },
    I2F {
        d: u32,
        a: u32,
    },
    F2I {
        d: u32,
        a: u32,
    },
    U2UnitF {
        d: u32,
        a: u32,
    },
    Special {
        d: u32,
        r: SpecialReg,
    },
    ParamF {
        d: u32,
        s: u32,
    },
    ParamI {
        d: u32,
        s: u32,
    },
    LdGF {
        d: u32,
        buf: u32,
        i: u32,
    },
    LdGI {
        d: u32,
        buf: u32,
        i: u32,
    },
    LdSF {
        d: u32,
        sh: u32,
        i: u32,
    },
    LdSI {
        d: u32,
        sh: u32,
        i: u32,
    },
    LdLF {
        d: u32,
        loc: u32,
        i: u32,
        len: u32,
    },
    /// `LdVarF`/`LdVarI` unified: a bit-level copy from the var file.
    LdVar {
        d: u32,
        v: u32,
    },
    StGF {
        buf: u32,
        i: u32,
        val: u32,
    },
    StGI {
        buf: u32,
        i: u32,
        val: u32,
    },
    StSF {
        sh: u32,
        i: u32,
        val: u32,
    },
    StSI {
        sh: u32,
        i: u32,
        val: u32,
    },
    StLF {
        loc: u32,
        i: u32,
        val: u32,
        len: u32,
    },
    /// `StVarF`/`StVarI` unified: a bit-level copy into the var file.
    StVar {
        v: u32,
        val: u32,
    },
    Sync,
    AtomicF {
        op: AtomicOp,
        d: u32,
        buf: u32,
        i: u32,
        val: u32,
    },
    AtomicI {
        op: AtomicOp,
        d: u32,
        buf: u32,
        i: u32,
        val: u32,
    },
    /// `then` ops follow immediately, `else` ops after them.
    If {
        cond: u32,
        then_len: u32,
        else_len: u32,
    },
    /// Body ops follow immediately. `counter` carries `U_BIT` iff the
    /// bounds are statically uniform.
    For {
        counter: u32,
        start: u32,
        end: u32,
        body_len: u32,
        vectorize: bool,
    },
    /// Condition ops follow immediately, body ops after them.
    While {
        cond: u32,
        cond_len: u32,
        body_len: u32,
    },
}

/// A lowered program: flat op stream plus the constant preload. Produced by
/// [`lower`], cached per `(Program, DeviceSpec)` by `lowered_for`, shared
/// across interpreter workers via `Arc`.
#[derive(Debug)]
pub struct WarpProgram {
    pub(crate) ops: Vec<LOp>,
    /// `(uniform-register, bits)` pairs written once per worker.
    pub(crate) const_init: Vec<(u32, u64)>,
    pub(crate) n_vals: usize,
    pub(crate) n_vars: usize,
    /// Canonical source-statement id per op (parallel to `ops`), matching
    /// `crate::profile::Numbering`'s pre-order walk. Read only when
    /// profiling.
    pub(crate) op_instr: Vec<u32>,
    /// Per-instruction `(id, flops, special)` shares of the `Account` runs;
    /// see `LOp::Account::detail`.
    pub(crate) acct: Vec<AcctEntry>,
}

/// One source instruction's share of a straight-line `Account` run.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AcctEntry {
    pub(crate) id: u32,
    pub(crate) flops: u32,
    pub(crate) special: u32,
}

impl WarpProgram {
    /// Number of pre-decoded ops in the flat stream.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the op stream is empty (a program with an empty body).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

struct Lowerer<'a> {
    u: &'a Uniformity,
    prog: &'a Program,
    ops: Vec<LOp>,
    op_instr: Vec<u32>,
    const_init: Vec<(u32, u64)>,
    /// Index of the currently open `Account` op, if any.
    acct: Option<usize>,
    acct_detail: Vec<AcctEntry>,
    /// Canonical id of the statement being lowered; assigned in the same
    /// pre-order walk `crate::profile::Numbering` uses, so both engines
    /// agree on attribution.
    cur_id: u32,
    next_id: u32,
}

impl<'a> Lowerer<'a> {
    fn slot(&self, v: ValId) -> u32 {
        if self.u.val(v) {
            v.0 | U_BIT
        } else {
            v.0
        }
    }

    fn var_slot(&self, v: VarId) -> u32 {
        if self.u.var(v) {
            v.0 | U_BIT
        } else {
            v.0
        }
    }

    /// Append `op` to the stream, tagged with the current statement id.
    fn push(&mut self, op: LOp) {
        self.ops.push(op);
        self.op_instr.push(self.cur_id);
    }

    /// Charge one issuing instruction (with optional flop/special weight)
    /// to the open straight-line run, opening one if needed.
    fn charge(&mut self, flops: u64, special: u64) {
        self.acct_detail.push(AcctEntry {
            id: self.cur_id,
            flops: flops as u32,
            special: special as u32,
        });
        match self.acct {
            Some(i) => {
                if let LOp::Account {
                    n,
                    flops: f,
                    special: s,
                    ..
                } = &mut self.ops[i]
                {
                    *n += 1;
                    *f += flops;
                    *s += special;
                }
            }
            None => {
                let detail = (self.acct_detail.len() - 1) as u32;
                self.push(LOp::Account {
                    n: 1,
                    flops,
                    special,
                    detail,
                });
                self.acct = Some(self.ops.len() - 1);
            }
        }
    }

    /// End the current straight-line run (before control flow or a region
    /// boundary).
    fn seal(&mut self) {
        self.acct = None;
    }

    fn lower_block(&mut self, b: &Block) {
        self.seal();
        for stmt in &b.0 {
            self.lower_stmt(stmt);
        }
        self.seal();
    }

    #[allow(clippy::too_many_lines)]
    fn lower_stmt(&mut self, stmt: &Stmt) {
        if !matches!(stmt, Stmt::Comment(_)) {
            self.cur_id = self.next_id;
            self.next_id += 1;
        }
        match stmt {
            Stmt::I(instr) => self.lower_instr(instr),
            Stmt::StGF { buf, idx, val } => {
                self.charge(0, 0);
                self.push(LOp::StGF {
                    buf: *buf,
                    i: self.slot(*idx),
                    val: self.slot(*val),
                });
            }
            Stmt::StGI { buf, idx, val } => {
                self.charge(0, 0);
                self.push(LOp::StGI {
                    buf: *buf,
                    i: self.slot(*idx),
                    val: self.slot(*val),
                });
            }
            Stmt::StLF { loc, idx, val } => {
                self.charge(0, 0);
                self.push(LOp::StLF {
                    loc: *loc,
                    i: self.slot(*idx),
                    val: self.slot(*val),
                    len: self.prog.locals[*loc as usize].len as u32,
                });
            }
            Stmt::StSF { sh, idx, val } => {
                self.charge(0, 0);
                self.push(LOp::StSF {
                    sh: *sh,
                    i: self.slot(*idx),
                    val: self.slot(*val),
                });
            }
            Stmt::StSI { sh, idx, val } => {
                self.charge(0, 0);
                self.push(LOp::StSI {
                    sh: *sh,
                    i: self.slot(*idx),
                    val: self.slot(*val),
                });
            }
            Stmt::StVarF { var, val } | Stmt::StVarI { var, val } => {
                self.charge(0, 0);
                self.push(LOp::StVar {
                    v: self.var_slot(*var),
                    val: self.slot(*val),
                });
            }
            // Barriers neither burn fuel nor issue; they stay inside runs.
            Stmt::Sync => self.push(LOp::Sync),
            Stmt::Comment(_) => {}
            Stmt::If {
                cond,
                then_b,
                else_b,
            } => {
                self.seal();
                let at = self.ops.len();
                self.push(LOp::If {
                    cond: self.slot(*cond),
                    then_len: 0,
                    else_len: 0,
                });
                let t0 = self.ops.len();
                self.lower_block(then_b);
                let tl = (self.ops.len() - t0) as u32;
                let e0 = self.ops.len();
                self.lower_block(else_b);
                let el = (self.ops.len() - e0) as u32;
                if let LOp::If {
                    then_len, else_len, ..
                } = &mut self.ops[at]
                {
                    *then_len = tl;
                    *else_len = el;
                }
            }
            Stmt::ForRange {
                counter,
                start,
                end,
                body,
                vectorize,
            } => {
                self.seal();
                let at = self.ops.len();
                self.push(LOp::For {
                    counter: self.slot(*counter),
                    start: self.slot(*start),
                    end: self.slot(*end),
                    body_len: 0,
                    vectorize: *vectorize,
                });
                let b0 = self.ops.len();
                self.lower_block(body);
                let bl = (self.ops.len() - b0) as u32;
                if let LOp::For { body_len, .. } = &mut self.ops[at] {
                    *body_len = bl;
                }
            }
            Stmt::While {
                cond_block,
                cond,
                body,
            } => {
                self.seal();
                let at = self.ops.len();
                self.push(LOp::While {
                    cond: self.slot(*cond),
                    cond_len: 0,
                    body_len: 0,
                });
                let c0 = self.ops.len();
                self.lower_block(cond_block);
                let cl = (self.ops.len() - c0) as u32;
                let b0 = self.ops.len();
                self.lower_block(body);
                let bl = (self.ops.len() - b0) as u32;
                if let LOp::While {
                    cond_len, body_len, ..
                } = &mut self.ops[at]
                {
                    *cond_len = cl;
                    *body_len = bl;
                }
            }
        }
    }

    fn lower_instr(&mut self, instr: &Instr) {
        let d = self.slot(instr.dst);
        match &instr.op {
            // Constants are always uniform: evaluate now, preload once per
            // worker, keep only the issue/fuel charge in the stream.
            Op::ConstF(v) => {
                self.charge(0, 0);
                self.const_init.push((instr.dst.0, v.to_bits()));
            }
            Op::ConstI(v) => {
                self.charge(0, 0);
                self.const_init.push((instr.dst.0, *v as u64));
            }
            Op::ConstB(v) => {
                self.charge(0, 0);
                self.const_init.push((instr.dst.0, *v as u64));
            }
            Op::Special(r) => {
                self.charge(0, 0);
                self.push(LOp::Special { d, r: *r });
            }
            Op::ParamF(s) => {
                self.charge(0, 0);
                self.push(LOp::ParamF { d, s: *s });
            }
            Op::ParamI(s) => {
                self.charge(0, 0);
                self.push(LOp::ParamI { d, s: *s });
            }
            Op::BinF(op, a, b) => {
                self.charge(if *op == FBin::Div { 4 } else { 1 }, 0);
                self.push(LOp::BinF {
                    op: *op,
                    d,
                    a: self.slot(*a),
                    b: self.slot(*b),
                });
            }
            Op::UnF(op, a) => {
                match op {
                    FUn::Sqrt | FUn::Exp | FUn::Ln | FUn::Sin | FUn::Cos => self.charge(0, 1),
                    _ => self.charge(1, 0),
                }
                self.push(LOp::UnF {
                    op: *op,
                    d,
                    a: self.slot(*a),
                });
            }
            Op::Fma(a, b, c) => {
                self.charge(2, 0);
                self.push(LOp::Fma {
                    d,
                    a: self.slot(*a),
                    b: self.slot(*b),
                    c: self.slot(*c),
                });
            }
            Op::BinI(op, a, b) => {
                self.charge(0, 0);
                self.push(LOp::BinI {
                    op: *op,
                    d,
                    a: self.slot(*a),
                    b: self.slot(*b),
                });
            }
            Op::NegI(a) => {
                self.charge(0, 0);
                self.push(LOp::NegI {
                    d,
                    a: self.slot(*a),
                });
            }
            Op::CmpF(op, a, b) => {
                self.charge(0, 0);
                self.push(LOp::CmpF {
                    op: *op,
                    d,
                    a: self.slot(*a),
                    b: self.slot(*b),
                });
            }
            Op::CmpI(op, a, b) => {
                self.charge(0, 0);
                self.push(LOp::CmpI {
                    op: *op,
                    d,
                    a: self.slot(*a),
                    b: self.slot(*b),
                });
            }
            Op::BinB(op, a, b) => {
                self.charge(0, 0);
                self.push(LOp::BinB {
                    op: *op,
                    d,
                    a: self.slot(*a),
                    b: self.slot(*b),
                });
            }
            Op::NotB(a) => {
                self.charge(0, 0);
                self.push(LOp::NotB {
                    d,
                    a: self.slot(*a),
                });
            }
            Op::SelF(c, t, e) | Op::SelI(c, t, e) => {
                self.charge(0, 0);
                self.push(LOp::Sel {
                    d,
                    c: self.slot(*c),
                    t: self.slot(*t),
                    e: self.slot(*e),
                });
            }
            Op::I2F(a) => {
                self.charge(1, 0);
                self.push(LOp::I2F {
                    d,
                    a: self.slot(*a),
                });
            }
            Op::F2I(a) => {
                self.charge(1, 0);
                self.push(LOp::F2I {
                    d,
                    a: self.slot(*a),
                });
            }
            Op::U2UnitF(a) => {
                self.charge(2, 0);
                self.push(LOp::U2UnitF {
                    d,
                    a: self.slot(*a),
                });
            }
            Op::LdGF { buf, idx } => {
                self.charge(0, 0);
                self.push(LOp::LdGF {
                    d,
                    buf: *buf,
                    i: self.slot(*idx),
                });
            }
            Op::LdGI { buf, idx } => {
                self.charge(0, 0);
                self.push(LOp::LdGI {
                    d,
                    buf: *buf,
                    i: self.slot(*idx),
                });
            }
            Op::LdSF { sh, idx } => {
                self.charge(0, 0);
                self.push(LOp::LdSF {
                    d,
                    sh: *sh,
                    i: self.slot(*idx),
                });
            }
            Op::LdSI { sh, idx } => {
                self.charge(0, 0);
                self.push(LOp::LdSI {
                    d,
                    sh: *sh,
                    i: self.slot(*idx),
                });
            }
            Op::LdLF { loc, idx } => {
                self.charge(0, 0);
                self.push(LOp::LdLF {
                    d,
                    loc: *loc,
                    i: self.slot(*idx),
                    len: self.prog.locals[*loc as usize].len as u32,
                });
            }
            Op::LdVarF(v) | Op::LdVarI(v) => {
                self.charge(0, 0);
                self.push(LOp::LdVar {
                    d,
                    v: self.var_slot(*v),
                });
            }
            Op::AtomicGF { op, buf, idx, val } => {
                self.charge(0, 0);
                self.push(LOp::AtomicF {
                    op: *op,
                    d,
                    buf: *buf,
                    i: self.slot(*idx),
                    val: self.slot(*val),
                });
            }
            Op::AtomicGI { op, buf, idx, val } => {
                self.charge(0, 0);
                self.push(LOp::AtomicI {
                    op: *op,
                    d,
                    buf: *buf,
                    i: self.slot(*idx),
                    val: self.slot(*val),
                });
            }
        }
    }
}

/// Lower `prog` to its pre-decoded warp form. Returns `None` when the
/// program fails IR validation — the lowerer relies on single assignment
/// and in-range resource indices, so such programs keep the reference
/// interpreter's behavior instead.
pub fn lower(prog: &Program) -> Option<WarpProgram> {
    validate(prog).ok()?;
    let u = uniformity(prog);
    let mut lw = Lowerer {
        u: &u,
        prog,
        ops: Vec::new(),
        op_instr: Vec::new(),
        const_init: Vec::new(),
        acct: None,
        acct_detail: Vec::new(),
        cur_id: 0,
        next_id: 0,
    };
    lw.lower_block(&prog.body);
    Some(WarpProgram {
        ops: lw.ops,
        const_init: lw.const_init,
        n_vals: prog.n_vals as usize,
        n_vars: prog.vars.len(),
        op_instr: lw.op_instr,
        acct: lw.acct_detail,
    })
}

// ---------------------------------------------------------------------------
// Lowered-program cache
// ---------------------------------------------------------------------------

struct CacheEntry {
    prog: Program,
    spec_name: String,
    /// `None` records a failed lowering (invalid IR) so the reference
    /// fallback is also decided once per program.
    wp: Option<Arc<WarpProgram>>,
}

static CACHE: OnceLock<Mutex<Vec<CacheEntry>>> = OnceLock::new();
pub(crate) const CACHE_CAP: usize = 32;

/// Process-wide hit/miss tallies of a compile-once program cache (the
/// lowered-program cache here, the compiled-program cache in
/// `crate::compile`), snapshotted onto every `SimReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from the cache (including remembered failures).
    pub hits: u64,
    /// Lookups that had to lower/compile the program anew.
    pub misses: u64,
}

static LOWER_HITS: AtomicU64 = AtomicU64::new(0);
static LOWER_MISSES: AtomicU64 = AtomicU64::new(0);

/// Cumulative hit/miss counters of the lowered-program cache.
pub fn lowering_cache_counters() -> CacheCounters {
    CacheCounters {
        hits: LOWER_HITS.load(Ordering::Relaxed),
        misses: LOWER_MISSES.load(Ordering::Relaxed),
    }
}

/// The lowered form of `prog` for launches on `spec`, decoded at most once
/// per `(Program, DeviceSpec)` and shared across launches and workers.
pub(crate) fn lowered_for(prog: &Program, spec: &DeviceSpec) -> Option<Arc<WarpProgram>> {
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    {
        let guard = cache.lock().unwrap_or_else(|e| e.into_inner());
        for e in guard.iter() {
            if e.spec_name == spec.name && e.prog == *prog {
                LOWER_HITS.fetch_add(1, Ordering::Relaxed);
                return e.wp.clone();
            }
        }
    }
    LOWER_MISSES.fetch_add(1, Ordering::Relaxed);
    // Lower outside the lock.
    let wp = lower(prog).map(Arc::new);
    let mut guard = cache.lock().unwrap_or_else(|e| e.into_inner());
    // A racing worker may have inserted the same entry while we lowered;
    // returning its copy keeps the cache duplicate-free (a duplicate would
    // waste one of the FIFO cap's slots and make eviction age out live
    // entries early).
    for e in guard.iter() {
        if e.spec_name == spec.name && e.prog == *prog {
            return e.wp.clone();
        }
    }
    // FIFO eviction: drop oldest entries until the new one fits the cap.
    while guard.len() >= CACHE_CAP {
        guard.remove(0);
    }
    guard.push(CacheEntry {
        prog: prog.clone(),
        spec_name: spec.name.clone(),
        wp: wp.clone(),
    });
    wp
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// A lane mask with its per-warp accounting precomputed.
#[derive(Default)]
pub(crate) struct MaskBuf {
    pub(crate) bits: Vec<bool>,
    /// Total active lanes.
    pub(crate) active: u64,
    /// Warps with at least one active lane (issue slots per instruction).
    pub(crate) warp_issues: u64,
    /// All lanes active (enables the no-check lane loop and barriers).
    pub(crate) full: bool,
}

/// Per-worker execution state of the lowered engine: split register files
/// (uniform scalars vs. per-lane), block-shared arrays, and the recycled
/// mask / address scratch.
pub(crate) struct LowState {
    pub(crate) lanes: usize,
    pub(crate) uregs: Vec<u64>,
    pub(crate) vregs: Vec<u64>,
    pub(crate) uvars: Vec<u64>,
    pub(crate) vvars: Vec<u64>,
    pub(crate) sh_f: Vec<Vec<f64>>,
    pub(crate) sh_i: Vec<Vec<i64>>,
    /// Per-lane thread-private arrays: `loc_f[loc][lane * len + k]`.
    pub(crate) loc_f: Vec<Vec<f64>>,
    pub(crate) tid: Vec<[i64; 3]>,
    pub(crate) bidx: [i64; 3],
    /// Mask pool indexed by control-flow depth; slot 0 is the full mask.
    pub(crate) masks: Vec<MaskBuf>,
    /// Reusable (lane, byte address) scratch for coalescing.
    pub(crate) addrs: Vec<(usize, u64)>,
    /// Reusable (lane, element index) scratch for bank accounting.
    pub(crate) elems: Vec<(usize, i64)>,
}

impl LowState {
    #[inline]
    pub(crate) fn rd(&self, s: u32, l: usize) -> u64 {
        if is_u(s) {
            self.uregs[idx(s)]
        } else {
            self.vregs[s as usize * self.lanes + l]
        }
    }
    #[inline]
    pub(crate) fn rdf(&self, s: u32, l: usize) -> f64 {
        f64::from_bits(self.rd(s, l))
    }
    #[inline]
    pub(crate) fn rdi(&self, s: u32, l: usize) -> i64 {
        self.rd(s, l) as i64
    }
    #[inline]
    pub(crate) fn rdb(&self, s: u32, l: usize) -> bool {
        self.rd(s, l) != 0
    }
    #[inline]
    pub(crate) fn ud(&self, s: u32) -> u64 {
        self.uregs[idx(s)]
    }
    #[inline]
    pub(crate) fn udf(&self, s: u32) -> f64 {
        f64::from_bits(self.ud(s))
    }
    #[inline]
    pub(crate) fn udi(&self, s: u32) -> i64 {
        self.ud(s) as i64
    }
    #[inline]
    pub(crate) fn udb(&self, s: u32) -> bool {
        self.ud(s) != 0
    }
    #[inline]
    pub(crate) fn wu(&mut self, d: u32, bits: u64) {
        self.uregs[idx(d)] = bits;
    }
    #[inline]
    pub(crate) fn wv(&mut self, d: u32, l: usize, bits: u64) {
        self.vregs[d as usize * self.lanes + l] = bits;
    }

    /// Grow the mask pool so `masks[depth]` exists (bits sized to `lanes`).
    pub(crate) fn ensure_mask(&mut self, depth: usize) {
        while self.masks.len() <= depth {
            self.masks.push(MaskBuf {
                bits: vec![false; self.lanes],
                ..Default::default()
            });
        }
    }
}

/// Run `body` for every active lane of `mask`; the full-mask fast path
/// skips the per-lane test entirely (always taken at 1 thread/block).
macro_rules! for_active {
    ($mask:expr, $l:ident, $body:block) => {
        if $mask.full {
            for $l in 0..$mask.bits.len() {
                $body
            }
        } else {
            for $l in 0..$mask.bits.len() {
                if $mask.bits[$l] {
                    $body
                }
            }
        }
    };
}

/// Fill `child` with the lanes of `parent` whose `cond` equals `polarity`,
/// counting one divergent branch per warp whose active lanes disagree
/// (only on the first of the two fill passes). Returns (any-true,
/// any-false) over the parent's active lanes.
pub(crate) fn fill_branch_mask(
    m: &mut Machine<'_>,
    st: &LowState,
    cond: u32,
    parent: &MaskBuf,
    child: &mut MaskBuf,
    polarity: bool,
    count_div: bool,
) -> (bool, bool) {
    let lanes = st.lanes;
    let warp_w = m.warp_w;
    let mut active = 0u64;
    let mut wi = 0u64;
    let mut any_t_g = false;
    let mut any_f_g = false;
    let mut lo = 0;
    while lo < lanes {
        let hi = (lo + warp_w).min(lanes);
        let mut any_t = false;
        let mut any_f = false;
        let mut warp_act = 0u64;
        for l in lo..hi {
            let mut b = false;
            if parent.bits[l] {
                let t = st.vregs[cond as usize * lanes + l] != 0;
                if t {
                    any_t = true;
                } else {
                    any_f = true;
                }
                b = t == polarity;
            }
            child.bits[l] = b;
            if b {
                warp_act += 1;
            }
        }
        if count_div && any_t && any_f {
            m.stats.divergent_branches += 1;
            m.prof_add(|c| c.divergent_branches += 1);
        }
        any_t_g |= any_t;
        any_f_g |= any_f;
        if warp_act > 0 {
            wi += 1;
            active += warp_act;
        }
        lo = hi;
    }
    child.active = active;
    child.warp_issues = wi;
    child.full = active as usize == lanes;
    (any_t_g, any_f_g)
}

/// Fill `child` with the lanes of `parent` still inside a per-lane trip
/// count (`start + iter < end`), counting divergence exactly as the
/// reference loop does. Returns whether any lane remains.
pub(crate) fn fill_for_mask(
    m: &mut Machine<'_>,
    st: &LowState,
    start: u32,
    endv: u32,
    iter: i64,
    parent: &MaskBuf,
    child: &mut MaskBuf,
) -> bool {
    let lanes = st.lanes;
    let warp_w = m.warp_w;
    let mut active = 0u64;
    let mut wi = 0u64;
    let mut lo = 0;
    while lo < lanes {
        let hi = (lo + warp_w).min(lanes);
        let mut any_t = false;
        let mut any_f = false;
        let mut warp_act = 0u64;
        for l in lo..hi {
            let mut b = false;
            if parent.bits[l] {
                let s = st.rdi(start, l);
                let e = st.rdi(endv, l);
                b = s + iter < e;
                if b {
                    any_t = true;
                } else {
                    any_f = true;
                }
            }
            child.bits[l] = b;
            if b {
                warp_act += 1;
            }
        }
        if any_t && any_f {
            m.stats.divergent_branches += 1;
            m.prof_add(|c| c.divergent_branches += 1);
        }
        if warp_act > 0 {
            wi += 1;
            active += warp_act;
        }
        lo = hi;
    }
    child.active = active;
    child.warp_issues = wi;
    child.full = active as usize == lanes;
    active > 0
}

/// Shrink a while-loop mask by its freshly computed condition, counting
/// divergence against the pre-shrink mask. Returns whether any lane stays.
pub(crate) fn shrink_while_mask(
    m: &mut Machine<'_>,
    st: &LowState,
    cond: u32,
    mask: &mut MaskBuf,
) -> bool {
    let lanes = st.lanes;
    let warp_w = m.warp_w;
    let mut active = 0u64;
    let mut wi = 0u64;
    let mut lo = 0;
    while lo < lanes {
        let hi = (lo + warp_w).min(lanes);
        let mut any_t = false;
        let mut any_f = false;
        let mut warp_act = 0u64;
        for l in lo..hi {
            if mask.bits[l] {
                let t = st.vregs[cond as usize * lanes + l] != 0;
                if t {
                    any_t = true;
                } else {
                    any_f = true;
                    mask.bits[l] = false;
                }
                if t {
                    warp_act += 1;
                }
            }
        }
        if any_t && any_f {
            m.stats.divergent_branches += 1;
            m.prof_add(|c| c.divergent_branches += 1);
        }
        if warp_act > 0 {
            wi += 1;
            active += warp_act;
        }
        lo = hi;
    }
    mask.active = active;
    mask.warp_issues = wi;
    mask.full = active as usize == lanes;
    active > 0
}

/// Flush a gathered per-lane address list to the coalescing model, taking
/// the single-lane fast path (the 1-thread-per-block shape) when possible.
#[inline]
pub(crate) fn flush_addrs(m: &mut Machine<'_>, addrs: &[(usize, u64)]) {
    if addrs.len() == 1 {
        m.mem_access_one(addrs[0].1);
    } else {
        m.mem_access(addrs);
    }
}

/// Flush gathered shared-memory element indices to the bank model. A single
/// active lane occupies one bank at degree 1: no conflict cycles, one
/// access counted — the same outcome `shared_access` computes.
#[inline]
pub(crate) fn flush_elems(m: &mut Machine<'_>, elems: &[(usize, i64)]) {
    if elems.len() == 1 {
        m.stats.shared_accesses += 1;
        m.prof_add(|c| c.shared_accesses += 1);
    } else {
        m.shared_access(elems);
    }
}

/// First active lane of a mask — the lane the reference engine's in-order
/// per-lane loop would fault at for a uniform (all-lanes-identical) access,
/// used so uniform fast paths attribute faults to the same thread.
#[inline]
pub(crate) fn first_active(mask: &MaskBuf) -> usize {
    if mask.full {
        0
    } else {
        mask.bits.iter().position(|&b| b).unwrap_or(0)
    }
}

pub(crate) fn copy_mask(dst: &mut MaskBuf, src: &MaskBuf) {
    dst.bits.clear();
    dst.bits.extend_from_slice(&src.bits);
    dst.active = src.active;
    dst.warp_issues = src.warp_issues;
    dst.full = src.full;
}

/// Execute `ops[lo..hi]` under the mask stored at `masks[depth]`; the mask
/// is temporarily taken out of the pool so ops can borrow state freely.
pub(crate) fn exec_range(
    m: &mut Machine<'_>,
    st: &mut LowState,
    wp: &WarpProgram,
    lo: usize,
    hi: usize,
    depth: usize,
) -> R<()> {
    let mask = std::mem::take(&mut st.masks[depth]);
    // Faults that carry no lane coordinates yet (unbound params/buffers,
    // other launch-uniform failures) are attributed to the first active
    // lane of the innermost mask, matching the reference engine and the
    // serial per-thread evaluator.
    let r = exec_ops(m, st, wp, lo, hi, depth, &mask).map_err(|e| {
        if e.thread.is_none() && matches!(e.kind, crate::fault::SimErrorKind::Fault { .. }) {
            e.at_thread(st.tid[first_active(&mask)])
        } else {
            e
        }
    });
    st.masks[depth] = mask;
    r
}

#[allow(clippy::too_many_lines)]
pub(crate) fn exec_ops(
    m: &mut Machine<'_>,
    st: &mut LowState,
    wp: &WarpProgram,
    lo: usize,
    hi: usize,
    depth: usize,
    mask: &MaskBuf,
) -> R<()> {
    let mut pc = lo;
    let profiling = m.profile.is_some();
    while pc < hi {
        if profiling {
            m.cur_instr = wp.op_instr[pc];
        }
        match wp.ops[pc] {
            LOp::Account {
                n,
                flops,
                special,
                detail,
            } => {
                m.burn_n(n)?;
                if profiling {
                    // Replay the run per source instruction so attribution
                    // is exact; the charged totals are identical to the
                    // aggregate fast path below.
                    for e in &wp.acct[detail as usize..(detail as u64 + n) as usize] {
                        m.cur_instr = e.id;
                        m.add_issue(mask.warp_issues);
                        if e.flops > 0 {
                            m.add_flops(e.flops as u64 * mask.active);
                        }
                        if e.special > 0 {
                            m.add_special(e.special as u64 * mask.active);
                        }
                    }
                } else {
                    m.add_issue(n * mask.warp_issues);
                    if flops > 0 {
                        m.add_flops(flops * mask.active);
                    }
                    if special > 0 {
                        m.add_special(special * mask.active);
                    }
                }
            }
            LOp::BinF { op, d, a, b } => {
                if is_u(d) {
                    let r = sem::fbin(op, st.udf(a), st.udf(b));
                    st.wu(d, r.to_bits());
                } else {
                    for_active!(mask, l, {
                        let r = sem::fbin(op, st.rdf(a, l), st.rdf(b, l));
                        st.wv(d, l, r.to_bits());
                    });
                }
            }
            LOp::UnF { op, d, a } => {
                if is_u(d) {
                    let r = sem::fun(op, st.udf(a));
                    st.wu(d, r.to_bits());
                } else {
                    for_active!(mask, l, {
                        let r = sem::fun(op, st.rdf(a, l));
                        st.wv(d, l, r.to_bits());
                    });
                }
            }
            LOp::Fma { d, a, b, c } => {
                if is_u(d) {
                    let r = sem::fma(st.udf(a), st.udf(b), st.udf(c));
                    st.wu(d, r.to_bits());
                } else {
                    for_active!(mask, l, {
                        let r = sem::fma(st.rdf(a, l), st.rdf(b, l), st.rdf(c, l));
                        st.wv(d, l, r.to_bits());
                    });
                }
            }
            LOp::BinI { op, d, a, b } => {
                if is_u(d) {
                    let r = sem::ibin(op, st.udi(a), st.udi(b));
                    st.wu(d, r as u64);
                } else {
                    for_active!(mask, l, {
                        let r = sem::ibin(op, st.rdi(a, l), st.rdi(b, l));
                        st.wv(d, l, r as u64);
                    });
                }
            }
            LOp::NegI { d, a } => {
                if is_u(d) {
                    let r = st.udi(a).wrapping_neg();
                    st.wu(d, r as u64);
                } else {
                    for_active!(mask, l, {
                        let r = st.rdi(a, l).wrapping_neg();
                        st.wv(d, l, r as u64);
                    });
                }
            }
            LOp::CmpF { op, d, a, b } => {
                if is_u(d) {
                    let r = sem::cmp_f(op, st.udf(a), st.udf(b));
                    st.wu(d, r as u64);
                } else {
                    for_active!(mask, l, {
                        let r = sem::cmp_f(op, st.rdf(a, l), st.rdf(b, l));
                        st.wv(d, l, r as u64);
                    });
                }
            }
            LOp::CmpI { op, d, a, b } => {
                if is_u(d) {
                    let r = sem::cmp_i(op, st.udi(a), st.udi(b));
                    st.wu(d, r as u64);
                } else {
                    for_active!(mask, l, {
                        let r = sem::cmp_i(op, st.rdi(a, l), st.rdi(b, l));
                        st.wv(d, l, r as u64);
                    });
                }
            }
            LOp::BinB { op, d, a, b } => {
                if is_u(d) {
                    let r = sem::bbin(op, st.udb(a), st.udb(b));
                    st.wu(d, r as u64);
                } else {
                    for_active!(mask, l, {
                        let r = sem::bbin(op, st.rdb(a, l), st.rdb(b, l));
                        st.wv(d, l, r as u64);
                    });
                }
            }
            LOp::NotB { d, a } => {
                if is_u(d) {
                    let r = !st.udb(a);
                    st.wu(d, r as u64);
                } else {
                    for_active!(mask, l, {
                        let r = !st.rdb(a, l);
                        st.wv(d, l, r as u64);
                    });
                }
            }
            LOp::Sel { d, c, t, e } => {
                if is_u(d) {
                    let bits = if st.udb(c) { st.ud(t) } else { st.ud(e) };
                    st.wu(d, bits);
                } else {
                    for_active!(mask, l, {
                        let bits = if st.rdb(c, l) {
                            st.rd(t, l)
                        } else {
                            st.rd(e, l)
                        };
                        st.wv(d, l, bits);
                    });
                }
            }
            LOp::I2F { d, a } => {
                if is_u(d) {
                    let r = sem::i2f(st.udi(a));
                    st.wu(d, r.to_bits());
                } else {
                    for_active!(mask, l, {
                        let r = sem::i2f(st.rdi(a, l));
                        st.wv(d, l, r.to_bits());
                    });
                }
            }
            LOp::F2I { d, a } => {
                if is_u(d) {
                    let r = sem::f2i(st.udf(a));
                    st.wu(d, r as u64);
                } else {
                    for_active!(mask, l, {
                        let r = sem::f2i(st.rdf(a, l));
                        st.wv(d, l, r as u64);
                    });
                }
            }
            LOp::U2UnitF { d, a } => {
                if is_u(d) {
                    let r = sem::u2unit(st.udi(a));
                    st.wu(d, r.to_bits());
                } else {
                    for_active!(mask, l, {
                        let r = sem::u2unit(st.rdi(a, l));
                        st.wv(d, l, r.to_bits());
                    });
                }
            }
            LOp::Special { d, r } => {
                if is_u(d) {
                    let v = match r {
                        SpecialReg::GridBlockExtent(a) => m.grid[a as usize],
                        SpecialReg::BlockThreadExtent(a) => m.block[a as usize],
                        SpecialReg::ThreadElemExtent(a) => m.elems[a as usize],
                        SpecialReg::BlockIdx(a) => st.bidx[a as usize],
                        // ThreadIdx is seeded varying by the analysis.
                        SpecialReg::ThreadIdx(a) => st.tid[0][a as usize],
                    };
                    st.wu(d, v as u64);
                } else {
                    for_active!(mask, l, {
                        let v = match r {
                            SpecialReg::GridBlockExtent(a) => m.grid[a as usize],
                            SpecialReg::BlockThreadExtent(a) => m.block[a as usize],
                            SpecialReg::ThreadElemExtent(a) => m.elems[a as usize],
                            SpecialReg::BlockIdx(a) => st.bidx[a as usize],
                            SpecialReg::ThreadIdx(a) => st.tid[l][a as usize],
                        };
                        st.wv(d, l, v as u64);
                    });
                }
            }
            LOp::ParamF { d, s } => {
                let v = *m
                    .args
                    .params_f
                    .get(s as usize)
                    .ok_or_else(|| serr!("f64 param slot {s} not bound"))?;
                st.wu(d, v.to_bits());
            }
            LOp::ParamI { d, s } => {
                let v = *m
                    .args
                    .params_i
                    .get(s as usize)
                    .ok_or_else(|| serr!("i64 param slot {s} not bound"))?;
                st.wu(d, v as u64);
            }
            LOp::LdGF { d, buf, i } => {
                let b = m.buf_f(buf)?;
                if is_u(d) {
                    let ix = st.udi(i);
                    let len = m.mem.len_f(b);
                    if ix < 0 || ix as usize >= len {
                        return Err(serr!("ld.global.f64: index {ix} out of bounds (len {len})")
                            .at_thread(st.tid[first_active(mask)]));
                    }
                    let a = m.mem.addr_f(b, ix as u64);
                    m.ecc_check(a, "ld.global.f64", st.tid[first_active(mask)])?;
                    let v = m.mem.read_f(b, ix as usize)?;
                    st.wu(d, v.to_bits());
                    m.stats.global_loads += mask.active;
                    m.prof_add(|c| c.global_loads += mask.active);
                    m.access_uniform(a, mask.active, mask.warp_issues);
                } else {
                    st.addrs.clear();
                    for_active!(mask, l, {
                        let ix = st.rdi(i, l);
                        let len = m.mem.len_f(b);
                        if ix < 0 || ix as usize >= len {
                            return Err(serr!(
                                "ld.global.f64: index {ix} out of bounds (len {len})"
                            )
                            .at_thread(st.tid[l]));
                        }
                        let a = m.mem.addr_f(b, ix as u64);
                        m.ecc_check(a, "ld.global.f64", st.tid[l])?;
                        let v = m.mem.read_f(b, ix as usize)?;
                        st.wv(d, l, v.to_bits());
                        st.addrs.push((l, a));
                    });
                    m.stats.global_loads += mask.active;
                    m.prof_add(|c| c.global_loads += mask.active);
                    flush_addrs(m, &st.addrs);
                }
            }
            LOp::LdGI { d, buf, i } => {
                let b = m.buf_i(buf)?;
                if is_u(d) {
                    let ix = st.udi(i);
                    let len = m.mem.len_i(b);
                    if ix < 0 || ix as usize >= len {
                        return Err(serr!("ld.global.s64: index {ix} out of bounds (len {len})")
                            .at_thread(st.tid[first_active(mask)]));
                    }
                    let a = m.mem.addr_i(b, ix as u64);
                    m.ecc_check(a, "ld.global.s64", st.tid[first_active(mask)])?;
                    let v = m.mem.read_i(b, ix as usize)?;
                    st.wu(d, v as u64);
                    m.stats.global_loads += mask.active;
                    m.prof_add(|c| c.global_loads += mask.active);
                    m.access_uniform(a, mask.active, mask.warp_issues);
                } else {
                    st.addrs.clear();
                    for_active!(mask, l, {
                        let ix = st.rdi(i, l);
                        let len = m.mem.len_i(b);
                        if ix < 0 || ix as usize >= len {
                            return Err(serr!(
                                "ld.global.s64: index {ix} out of bounds (len {len})"
                            )
                            .at_thread(st.tid[l]));
                        }
                        let a = m.mem.addr_i(b, ix as u64);
                        m.ecc_check(a, "ld.global.s64", st.tid[l])?;
                        let v = m.mem.read_i(b, ix as usize)?;
                        st.wv(d, l, v as u64);
                        st.addrs.push((l, a));
                    });
                    m.stats.global_loads += mask.active;
                    m.prof_add(|c| c.global_loads += mask.active);
                    flush_addrs(m, &st.addrs);
                }
            }
            LOp::LdSF { d, sh, i } => {
                if is_u(d) {
                    let ix = st.udi(i);
                    let arr = &st.sh_f[sh as usize];
                    if ix < 0 || ix as usize >= arr.len() {
                        return Err(serr!(
                            "ld.shared.f64: index {ix} out of bounds (len {})",
                            arr.len()
                        )
                        .at_thread(st.tid[first_active(mask)]));
                    }
                    let v = arr[ix as usize];
                    st.wu(d, v.to_bits());
                    // One bank, degree 1: accesses counted, no conflicts.
                    m.stats.shared_accesses += mask.active;
                    m.prof_add(|c| c.shared_accesses += mask.active);
                } else {
                    st.elems.clear();
                    for_active!(mask, l, {
                        let ix = st.rdi(i, l);
                        let arr = &st.sh_f[sh as usize];
                        if ix < 0 || ix as usize >= arr.len() {
                            return Err(serr!(
                                "ld.shared.f64: index {ix} out of bounds (len {})",
                                arr.len()
                            )
                            .at_thread(st.tid[l]));
                        }
                        let v = arr[ix as usize];
                        st.wv(d, l, v.to_bits());
                        st.elems.push((l, ix));
                    });
                    flush_elems(m, &st.elems);
                }
            }
            LOp::LdSI { d, sh, i } => {
                if is_u(d) {
                    let ix = st.udi(i);
                    let arr = &st.sh_i[sh as usize];
                    if ix < 0 || ix as usize >= arr.len() {
                        return Err(serr!(
                            "ld.shared.s64: index {ix} out of bounds (len {})",
                            arr.len()
                        )
                        .at_thread(st.tid[first_active(mask)]));
                    }
                    let v = arr[ix as usize];
                    st.wu(d, v as u64);
                    m.stats.shared_accesses += mask.active;
                    m.prof_add(|c| c.shared_accesses += mask.active);
                } else {
                    st.elems.clear();
                    for_active!(mask, l, {
                        let ix = st.rdi(i, l);
                        let arr = &st.sh_i[sh as usize];
                        if ix < 0 || ix as usize >= arr.len() {
                            return Err(serr!(
                                "ld.shared.s64: index {ix} out of bounds (len {})",
                                arr.len()
                            )
                            .at_thread(st.tid[l]));
                        }
                        let v = arr[ix as usize];
                        st.wv(d, l, v as u64);
                        st.elems.push((l, ix));
                    });
                    flush_elems(m, &st.elems);
                }
            }
            LOp::LdLF { d, loc, i, len } => {
                let len = len as usize;
                for_active!(mask, l, {
                    let ix = st.rdi(i, l);
                    if ix < 0 || ix as usize >= len {
                        return Err(serr!("ld.local.f64: index {ix} out of bounds (len {len})")
                            .at_thread(st.tid[l]));
                    }
                    let v = st.loc_f[loc as usize][l * len + ix as usize];
                    st.wv(d, l, v.to_bits());
                });
            }
            LOp::LdVar { d, v } => {
                if is_u(v) {
                    let bits = st.uvars[idx(v)];
                    st.wu(d, bits);
                } else {
                    for_active!(mask, l, {
                        let bits = st.vvars[v as usize * st.lanes + l];
                        st.wv(d, l, bits);
                    });
                }
            }
            LOp::StGF { buf, i, val } => {
                let b = m.buf_f(buf)?;
                if is_u(i) {
                    let ix = st.udi(i);
                    let len = m.mem.len_f(b);
                    if ix < 0 || ix as usize >= len {
                        return Err(serr!("st.global.f64: index {ix} out of bounds (len {len})")
                            .at_thread(st.tid[first_active(mask)]));
                    }
                    if is_u(val) {
                        m.mem.write_f(b, ix as usize, st.udf(val))?;
                    } else {
                        // Same address, per-lane values: lane order decides.
                        for_active!(mask, l, {
                            m.mem.write_f(b, ix as usize, st.rdf(val, l))?;
                        });
                    }
                    m.stats.global_stores += mask.active;
                    m.prof_add(|c| c.global_stores += mask.active);
                    m.access_uniform(m.mem.addr_f(b, ix as u64), mask.active, mask.warp_issues);
                } else {
                    st.addrs.clear();
                    for_active!(mask, l, {
                        let ix = st.rdi(i, l);
                        let len = m.mem.len_f(b);
                        if ix < 0 || ix as usize >= len {
                            return Err(serr!(
                                "st.global.f64: index {ix} out of bounds (len {len})"
                            )
                            .at_thread(st.tid[l]));
                        }
                        m.mem.write_f(b, ix as usize, st.rdf(val, l))?;
                        st.addrs.push((l, m.mem.addr_f(b, ix as u64)));
                    });
                    m.stats.global_stores += mask.active;
                    m.prof_add(|c| c.global_stores += mask.active);
                    flush_addrs(m, &st.addrs);
                }
            }
            LOp::StGI { buf, i, val } => {
                let b = m.buf_i(buf)?;
                if is_u(i) {
                    let ix = st.udi(i);
                    let len = m.mem.len_i(b);
                    if ix < 0 || ix as usize >= len {
                        return Err(serr!("st.global.s64: index {ix} out of bounds (len {len})")
                            .at_thread(st.tid[first_active(mask)]));
                    }
                    if is_u(val) {
                        m.mem.write_i(b, ix as usize, st.udi(val))?;
                    } else {
                        for_active!(mask, l, {
                            m.mem.write_i(b, ix as usize, st.rdi(val, l))?;
                        });
                    }
                    m.stats.global_stores += mask.active;
                    m.prof_add(|c| c.global_stores += mask.active);
                    m.access_uniform(m.mem.addr_i(b, ix as u64), mask.active, mask.warp_issues);
                } else {
                    st.addrs.clear();
                    for_active!(mask, l, {
                        let ix = st.rdi(i, l);
                        let len = m.mem.len_i(b);
                        if ix < 0 || ix as usize >= len {
                            return Err(serr!(
                                "st.global.s64: index {ix} out of bounds (len {len})"
                            )
                            .at_thread(st.tid[l]));
                        }
                        m.mem.write_i(b, ix as usize, st.rdi(val, l))?;
                        st.addrs.push((l, m.mem.addr_i(b, ix as u64)));
                    });
                    m.stats.global_stores += mask.active;
                    m.prof_add(|c| c.global_stores += mask.active);
                    flush_addrs(m, &st.addrs);
                }
            }
            LOp::StSF { sh, i, val } => {
                if is_u(i) {
                    let ix = st.udi(i);
                    let arr_len = st.sh_f[sh as usize].len();
                    if ix < 0 || ix as usize >= arr_len {
                        return Err(serr!(
                            "st.shared.f64: index {ix} out of bounds (len {arr_len})"
                        )
                        .at_thread(st.tid[first_active(mask)]));
                    }
                    if is_u(val) {
                        let v = st.udf(val);
                        st.sh_f[sh as usize][ix as usize] = v;
                    } else {
                        for_active!(mask, l, {
                            let v = st.rdf(val, l);
                            st.sh_f[sh as usize][ix as usize] = v;
                        });
                    }
                    m.stats.shared_accesses += mask.active;
                    m.prof_add(|c| c.shared_accesses += mask.active);
                } else {
                    st.elems.clear();
                    for_active!(mask, l, {
                        let ix = st.rdi(i, l);
                        let v = st.rdf(val, l);
                        let arr = &mut st.sh_f[sh as usize];
                        let len = arr.len();
                        if ix < 0 || ix as usize >= len {
                            return Err(serr!(
                                "st.shared.f64: index {ix} out of bounds (len {len})"
                            )
                            .at_thread(st.tid[l]));
                        }
                        arr[ix as usize] = v;
                        st.elems.push((l, ix));
                    });
                    flush_elems(m, &st.elems);
                }
            }
            LOp::StSI { sh, i, val } => {
                if is_u(i) {
                    let ix = st.udi(i);
                    let arr_len = st.sh_i[sh as usize].len();
                    if ix < 0 || ix as usize >= arr_len {
                        return Err(serr!(
                            "st.shared.s64: index {ix} out of bounds (len {arr_len})"
                        )
                        .at_thread(st.tid[first_active(mask)]));
                    }
                    if is_u(val) {
                        let v = st.udi(val);
                        st.sh_i[sh as usize][ix as usize] = v;
                    } else {
                        for_active!(mask, l, {
                            let v = st.rdi(val, l);
                            st.sh_i[sh as usize][ix as usize] = v;
                        });
                    }
                    m.stats.shared_accesses += mask.active;
                    m.prof_add(|c| c.shared_accesses += mask.active);
                } else {
                    st.elems.clear();
                    for_active!(mask, l, {
                        let ix = st.rdi(i, l);
                        let v = st.rdi(val, l);
                        let arr = &mut st.sh_i[sh as usize];
                        let len = arr.len();
                        if ix < 0 || ix as usize >= len {
                            return Err(serr!(
                                "st.shared.s64: index {ix} out of bounds (len {len})"
                            )
                            .at_thread(st.tid[l]));
                        }
                        arr[ix as usize] = v;
                        st.elems.push((l, ix));
                    });
                    flush_elems(m, &st.elems);
                }
            }
            LOp::StLF { loc, i, val, len } => {
                let len = len as usize;
                for_active!(mask, l, {
                    let ix = st.rdi(i, l);
                    if ix < 0 || ix as usize >= len {
                        return Err(serr!("st.local.f64: index {ix} out of bounds (len {len})")
                            .at_thread(st.tid[l]));
                    }
                    let v = st.rdf(val, l);
                    st.loc_f[loc as usize][l * len + ix as usize] = v;
                });
            }
            LOp::StVar { v, val } => {
                if is_u(v) {
                    let bits = st.ud(val);
                    st.uvars[idx(v)] = bits;
                } else {
                    for_active!(mask, l, {
                        let bits = st.rd(val, l);
                        st.vvars[v as usize * st.lanes + l] = bits;
                    });
                }
            }
            LOp::Sync => {
                if !mask.full {
                    return Err("bar.sync reached inside divergent control flow (the block \
                         barrier requires all threads of the block)"
                        .into());
                }
                m.stats.syncs += m.n_warps as u64;
                let nw = m.n_warps as u64;
                m.prof_add(|c| c.syncs += nw);
            }
            LOp::AtomicF { op, d, buf, i, val } => {
                let b = m.buf_f(buf)?;
                m.stats.atomics += mask.active;
                m.prof_add(|c| c.atomics += mask.active);
                // Deferred mode (launch has a reducibility plan):
                // accumulate privately and read back 0 — the plan
                // guarantees the old value is dead. See `crate::atomics`.
                let target = m.atomics.as_ref().and_then(|ap| ap.target_f(buf));
                for_active!(mask, l, {
                    let ix = st.rdi(i, l);
                    let len = m.mem.len_f(b);
                    if ix < 0 || ix as usize >= len {
                        return Err(
                            serr!("atom.global.f64: index {ix} out of bounds (len {len})")
                                .at_thread(st.tid[l]),
                        );
                    }
                    let v = st.rdf(val, l);
                    if let Some(t) = target {
                        let block = m.cur_block_lin as u64;
                        m.atomics
                            .as_mut()
                            .unwrap()
                            .defer_f(t, op, block, ix as usize, v);
                        st.wv(d, l, 0);
                    } else {
                        let old = m.mem.read_f(b, ix as usize)?;
                        m.mem.write_f(b, ix as usize, sem::atomic_f(op, old, v))?;
                        st.wv(d, l, old.to_bits());
                    }
                });
            }
            LOp::AtomicI { op, d, buf, i, val } => {
                let b = m.buf_i(buf)?;
                m.stats.atomics += mask.active;
                m.prof_add(|c| c.atomics += mask.active);
                let target = m.atomics.as_ref().and_then(|ap| ap.target_i(buf));
                for_active!(mask, l, {
                    let ix = st.rdi(i, l);
                    let len = m.mem.len_i(b);
                    if ix < 0 || ix as usize >= len {
                        return Err(
                            serr!("atom.global.s64: index {ix} out of bounds (len {len})")
                                .at_thread(st.tid[l]),
                        );
                    }
                    let v = st.rdi(val, l);
                    if let Some(t) = target {
                        let block = m.cur_block_lin as u64;
                        m.atomics
                            .as_mut()
                            .unwrap()
                            .defer_i(t, op, block, ix as usize, v);
                        st.wv(d, l, 0);
                    } else {
                        let old = m.mem.read_i(b, ix as usize)?;
                        m.mem.write_i(b, ix as usize, sem::atomic_i(op, old, v))?;
                        st.wv(d, l, old as u64);
                    }
                });
            }
            LOp::If {
                cond,
                then_len,
                else_len,
            } => {
                let t0 = pc + 1;
                let e0 = t0 + then_len as usize;
                let end = e0 + else_len as usize;
                if is_u(cond) {
                    // A uniform branch: all lanes agree, never divergent,
                    // the untaken side is skipped outright.
                    if st.udb(cond) {
                        if then_len > 0 {
                            exec_ops(m, st, wp, t0, e0, depth, mask)?;
                        }
                    } else if else_len > 0 {
                        exec_ops(m, st, wp, e0, end, depth, mask)?;
                    }
                } else {
                    st.ensure_mask(depth + 1);
                    let (any_t, any_f) = {
                        let mut child = std::mem::take(&mut st.masks[depth + 1]);
                        let r = fill_branch_mask(m, st, cond, mask, &mut child, true, true);
                        st.masks[depth + 1] = child;
                        r
                    };
                    if any_t && then_len > 0 {
                        exec_range(m, st, wp, t0, e0, depth + 1)?;
                    }
                    if any_f && else_len > 0 {
                        let mut child = std::mem::take(&mut st.masks[depth + 1]);
                        fill_branch_mask(m, st, cond, mask, &mut child, false, false);
                        st.masks[depth + 1] = child;
                        exec_range(m, st, wp, e0, end, depth + 1)?;
                    }
                }
                pc = end;
                continue;
            }
            LOp::For {
                counter,
                start,
                end,
                body_len,
                vectorize,
            } => {
                let b0 = pc + 1;
                let bend = b0 + body_len as usize;
                // Open a vectorization region for outermost element loops
                // on CPU device models (mirrors the reference engine).
                let opened = vectorize
                    && m.spec.kind == DeviceKind::Cpu
                    && m.spec.simd_width > 1
                    && m.region.is_none();
                if opened {
                    m.region = Some(RegionAcc::default());
                } else if let Some(r) = &mut m.region {
                    r.depth += 1;
                }
                let result = exec_for_lowered(
                    m, st, wp, counter, start, end, b0, bend, depth, mask, opened,
                );
                if opened {
                    let r = m.region.take().expect("region open");
                    if r.vectorized() {
                        m.stats.vec_issue += r.issue;
                        m.stats.vec_flops += r.flops;
                        // Special functions do not vectorize on the
                        // modeled units.
                        m.stats.special_ops += r.special;
                    } else {
                        m.stats.scalar_issue += r.issue;
                        m.stats.scalar_flops += r.flops;
                        m.stats.special_ops += r.special;
                    }
                } else if let Some(reg) = &mut m.region {
                    reg.depth = reg.depth.saturating_sub(1);
                }
                result?;
                pc = bend;
                continue;
            }
            LOp::While {
                cond,
                cond_len,
                body_len,
            } => {
                let c0 = pc + 1;
                let b0 = c0 + cond_len as usize;
                let end = b0 + body_len as usize;
                if is_u(cond) {
                    // A uniform loop: all lanes enter and leave together.
                    loop {
                        m.burn()?;
                        exec_ops(m, st, wp, c0, b0, depth, mask)?;
                        if !st.udb(cond) {
                            break;
                        }
                        exec_ops(m, st, wp, b0, end, depth, mask)?;
                    }
                } else {
                    // Divergence at the exit test belongs to the while
                    // header, not the condition range just executed.
                    let my_id = m.cur_instr;
                    st.ensure_mask(depth + 1);
                    {
                        let mut child = std::mem::take(&mut st.masks[depth + 1]);
                        copy_mask(&mut child, mask);
                        st.masks[depth + 1] = child;
                    }
                    loop {
                        m.burn()?;
                        if st.masks[depth + 1].active == 0 {
                            break;
                        }
                        exec_range(m, st, wp, c0, b0, depth + 1)?;
                        m.cur_instr = my_id;
                        let any = {
                            let mut child = std::mem::take(&mut st.masks[depth + 1]);
                            let any = shrink_while_mask(m, st, cond, &mut child);
                            st.masks[depth + 1] = child;
                            any
                        };
                        if !any {
                            break;
                        }
                        exec_range(m, st, wp, b0, end, depth + 1)?;
                    }
                }
                pc = end;
                continue;
            }
        }
        pc += 1;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_for_lowered(
    m: &mut Machine<'_>,
    st: &mut LowState,
    wp: &WarpProgram,
    counter: u32,
    start: u32,
    endv: u32,
    b0: usize,
    bend: usize,
    depth: usize,
    mask: &MaskBuf,
    probe: bool,
) -> R<()> {
    if is_u(counter) {
        // Statically uniform bounds: no per-lane scan, scalar counter.
        let s0 = st.udi(start);
        let e0 = st.udi(endv);
        let mut k = s0;
        while k < e0 {
            m.burn()?;
            st.wu(counter, k as u64);
            exec_ops(m, st, wp, b0, bend, depth, mask)?;
            if probe {
                if let Some(r) = &mut m.region {
                    r.iter += 1;
                }
            }
            k += 1;
        }
        return Ok(());
    }

    // Statically varying bounds: replicate the reference engine's dynamic
    // uniformity scan — runtime-uniform trip counts still run in lockstep
    // (and keep the vectorization probe alive).
    let lanes = st.lanes;
    let mut s0e0: Option<(i64, i64)> = None;
    let mut uniform = true;
    for l in 0..lanes {
        if mask.bits[l] {
            let s = st.rdi(start, l);
            let e = st.rdi(endv, l);
            match s0e0 {
                None => s0e0 = Some((s, e)),
                Some((ps, pe)) => {
                    if ps != s || pe != e {
                        uniform = false;
                    }
                }
            }
        }
    }
    let Some((s0, e0)) = s0e0 else {
        return Ok(()); // no active lanes
    };

    if uniform {
        let mut k = s0;
        while k < e0 {
            m.burn()?;
            for_active!(mask, l, {
                st.wv(counter, l, k as u64);
            });
            exec_ops(m, st, wp, b0, bend, depth, mask)?;
            if probe {
                if let Some(r) = &mut m.region {
                    r.iter += 1;
                }
            }
            k += 1;
        }
    } else {
        // Per-lane trip counts: iterate with a shrinking mask.
        if probe {
            if let Some(r) = &mut m.region {
                r.probe_failed = true;
            }
        }
        // Divergence at the trip test belongs to the for header, not to
        // whatever the body range left in `cur_instr`.
        let my_id = m.cur_instr;
        st.ensure_mask(depth + 1);
        let mut iter: i64 = 0;
        loop {
            m.burn()?;
            m.cur_instr = my_id;
            let mut child = std::mem::take(&mut st.masks[depth + 1]);
            let any = fill_for_mask(m, st, start, endv, iter, mask, &mut child);
            if !any {
                st.masks[depth + 1] = child;
                break;
            }
            for l in 0..lanes {
                if child.bits[l] {
                    let s = st.rdi(start, l);
                    st.wv(counter, l, (s + iter) as u64);
                }
            }
            st.masks[depth + 1] = child;
            exec_range(m, st, wp, b0, bend, depth + 1)?;
            iter += 1;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Per-worker block loop
// ---------------------------------------------------------------------------

/// Lowered-engine counterpart of `interp::interpret_blocks`: identical SM
/// partitioning, block order, per-block array resets and error reporting.
pub(crate) fn interpret_blocks_lowered(
    ctx: &LaunchCtx<'_>,
    mem: MemAccess<'_>,
    team: usize,
    worker: usize,
    indices: &[usize],
    wp: &WarpProgram,
) -> Result<WorkerOut, (usize, SimError)> {
    run_warp_blocks(ctx, mem, team, worker, indices, wp, |m, st| {
        exec_range(m, st, wp, 0, wp.ops.len(), 0)
    })
}

/// The per-worker block loop shared by the lowered and compiled engines:
/// identical SM partitioning, block order, per-block array resets, span
/// collection and error reporting regardless of how a block's program text
/// is executed (`exec_block` runs exactly one block against the prepared
/// machine and register state).
pub(crate) fn run_warp_blocks(
    ctx: &LaunchCtx<'_>,
    mem: MemAccess<'_>,
    team: usize,
    worker: usize,
    indices: &[usize],
    wp: &WarpProgram,
    mut exec_block: impl FnMut(&mut Machine<'_>, &mut LowState) -> R<()>,
) -> Result<WorkerOut, (usize, SimError)> {
    let prog = ctx.prog;
    let sms = ctx.spec.sms.max(1);
    let lanes = ctx.lanes;
    let mut m = make_machine(ctx, mem, team, worker);
    let mut st = LowState {
        lanes,
        uregs: vec![0; wp.n_vals],
        vregs: vec![0; wp.n_vals * lanes],
        uvars: vec![0; wp.n_vars],
        vvars: vec![0; wp.n_vars * lanes],
        sh_f: prog
            .shared
            .iter()
            .map(|s| {
                if s.ty == Ty::F64 {
                    vec![0.0; s.len]
                } else {
                    vec![]
                }
            })
            .collect(),
        sh_i: prog
            .shared
            .iter()
            .map(|s| {
                if s.ty == Ty::I64 {
                    vec![0; s.len]
                } else {
                    vec![]
                }
            })
            .collect(),
        loc_f: prog
            .locals
            .iter()
            .map(|l| vec![0.0; l.len * lanes])
            .collect(),
        tid: (0..lanes)
            .map(|t| ctx.thread_ext.delinearize(t).map_i64())
            .collect(),
        bidx: [0; 3],
        masks: vec![MaskBuf {
            bits: vec![true; lanes],
            active: lanes as u64,
            warp_issues: ctx.n_warps as u64,
            full: true,
        }],
        addrs: Vec::new(),
        elems: Vec::new(),
    };
    // Constants are block-invariant: preload them once per worker.
    for &(r, bits) in &wp.const_init {
        st.uregs[r as usize] = bits;
    }

    // Shared/local arrays must be zero at block entry. They start zeroed,
    // so resetting is only needed *between* blocks, and only when the
    // program declares any such arrays at all.
    let has_block_arrays = st.sh_f.iter().any(|a| !a.is_empty())
        || st.sh_i.iter().any(|a| !a.is_empty())
        || st.loc_f.iter().any(|a| !a.is_empty());
    let mut ran_a_block = false;

    let tracing = m.profile.is_some();
    let mut spans: Vec<BlockSpan> = Vec::new();
    for &lin in indices {
        let sm = lin % sms;
        if sm % team != worker {
            continue;
        }
        if has_block_arrays && ran_a_block {
            for a in &mut st.sh_f {
                a.iter_mut().for_each(|v| *v = 0.0);
            }
            for a in &mut st.sh_i {
                a.iter_mut().for_each(|v| *v = 0);
            }
            for a in &mut st.loc_f {
                a.iter_mut().for_each(|v| *v = 0.0);
            }
        }
        ran_a_block = true;
        m.cur_sm = sm / team;
        m.cur_block_lin = lin;
        st.bidx = ctx.grid_ext.delinearize(lin).map_i64();
        let cycles_before = stats_issue_cycles(&m.stats);
        exec_block(&mut m, &mut st).map_err(|e| {
            (
                lin,
                e.with_block(st.bidx)
                    .context(&format!("block {:?}: ", st.bidx)),
            )
        })?;
        if tracing {
            spans.push(BlockSpan {
                block: lin as u64,
                sm: sm as u64,
                cycles: stats_issue_cycles(&m.stats) - cycles_before,
            });
        }
        m.stats.blocks += 1;
        m.stats.warps += m.n_warps as u64;
        m.stats.threads += lanes as u64;
    }
    Ok(WorkerOut {
        stats: m.stats,
        profile: m.profile,
        spans,
        atomics: m.atomics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daxpy_like() -> Program {
        use alpaka_kir::ir::Op;
        // tid-guarded store: v0 = tid, v1 = param, v2 = ld x[v0],
        // v3 = fma(v2, v1, v2), st y[v0] = v3
        Program {
            name: "t".into(),
            dims: 1,
            body: Block(vec![
                Stmt::I(Instr {
                    dst: ValId(0),
                    op: Op::Special(SpecialReg::ThreadIdx(2)),
                }),
                Stmt::I(Instr {
                    dst: ValId(1),
                    op: Op::ParamF(0),
                }),
                Stmt::I(Instr {
                    dst: ValId(2),
                    op: Op::LdGF {
                        buf: 0,
                        idx: ValId(0),
                    },
                }),
                Stmt::I(Instr {
                    dst: ValId(3),
                    op: Op::Fma(ValId(2), ValId(1), ValId(2)),
                }),
                Stmt::StGF {
                    buf: 0,
                    idx: ValId(0),
                    val: ValId(3),
                },
            ]),
            n_vals: 4,
            vars: vec![],
            shared: vec![],
            locals: vec![],
            n_bufs_f: 1,
            n_bufs_i: 0,
            n_params_f: 1,
            n_params_i: 0,
        }
    }

    #[test]
    fn valid_program_lowers() {
        let wp = lower(&daxpy_like()).expect("lowers");
        // Account + 4 stream ops (no constants to drop here).
        assert!(!wp.is_empty());
        assert!(wp.len() >= 5, "{}", wp.len());
    }

    #[test]
    fn invalid_program_does_not_lower() {
        let mut p = daxpy_like();
        // Use a value out of scope: point the store at an undefined id.
        if let Stmt::StGF { val, .. } = &mut p.body.0[4] {
            *val = ValId(9);
        }
        p.n_vals = 10;
        assert!(lower(&p).is_none());
    }

    #[test]
    fn constants_fold_into_preload() {
        let p = Program {
            name: "c".into(),
            dims: 1,
            body: Block(vec![
                Stmt::I(Instr {
                    dst: ValId(0),
                    op: Op::ConstI(5),
                }),
                Stmt::I(Instr {
                    dst: ValId(1),
                    op: Op::ConstF(2.5),
                }),
            ]),
            n_vals: 2,
            vars: vec![],
            shared: vec![],
            locals: vec![],
            n_bufs_f: 0,
            n_bufs_i: 0,
            n_params_f: 0,
            n_params_i: 0,
        };
        let wp = lower(&p).unwrap();
        // Both constants vanish from the stream; one Account op remains
        // carrying their issue/fuel charge.
        assert_eq!(wp.len(), 1);
        assert_eq!(wp.const_init.len(), 2);
        assert!(matches!(wp.ops[0], LOp::Account { n: 2, .. }));
    }

    #[test]
    fn lowered_cache_is_shared() {
        let p = daxpy_like();
        let spec = DeviceSpec::k20();
        let before = lowering_cache_counters();
        let a = lowered_for(&p, &spec).unwrap();
        let b = lowered_for(&p, &spec).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let after = lowering_cache_counters();
        // The second lookup is a guaranteed hit; the first may be a hit or
        // a miss depending on what other tests ran first. Counters are
        // process-wide, so only assert monotone growth and ≥1 new hit.
        assert!(after.hits >= before.hits + 1);
        assert!(after.misses >= before.misses);
    }

    /// A distinct (never-cached-before) valid program: daxpy_like with a
    /// unique constant folded in so `Program` equality separates them.
    fn distinct_program(tag: i64) -> Program {
        use alpaka_kir::ir::Op;
        let mut p = daxpy_like();
        p.body.0.insert(
            0,
            Stmt::I(Instr {
                dst: ValId(4),
                op: Op::ConstI(tag),
            }),
        );
        p.n_vals = 5;
        p
    }

    #[test]
    fn lowered_cache_evicts_oldest_beyond_cap() {
        let spec = DeviceSpec::k20();
        // Tags no other test uses, so these entries are fresh inserts.
        let base = 7_000_000;
        let first = distinct_program(base);
        let a = lowered_for(&first, &spec).unwrap();
        // Fill the cache with CACHE_CAP more distinct programs: `first`
        // must age out (concurrent tests can only evict it sooner).
        for i in 1..=CACHE_CAP as i64 {
            lowered_for(&distinct_program(base + i), &spec).unwrap();
        }
        let b = lowered_for(&first, &spec).unwrap();
        assert!(
            !Arc::ptr_eq(&a, &b),
            "entry should have been evicted and re-lowered"
        );
        // Unrelated to eviction but same scope: the re-inserted entry is
        // now shared again.
        let c = lowered_for(&first, &spec).unwrap();
        assert!(Arc::ptr_eq(&b, &c));
    }
}
