//! Deterministic fault injection for simulated devices.
//!
//! A [`FaultPlan`] is a *pure function of its seed*: every injection decision
//! is derived by hashing stable coordinates of the access (launch ordinal,
//! linear block index, byte address, allocation ordinal, ...) with a
//! splitmix64-style mixer. Nothing depends on worker count, engine choice or
//! scheduling order, so a campaign replays bit-identically under any
//! `ALPAKA_SIM_THREADS` and under both the lowered and reference engines.
//!
//! The plan models five failure classes seen on real accelerators:
//! - transient detected-uncorrectable ECC events on global f64/i64 loads
//!   (the load *errors*, it never silently corrupts data),
//! - allocation failure (OOM) at a chosen allocation ordinal,
//! - kernel watchdog timeout via a reduced cycle (fuel) budget,
//! - queue worker death at a chosen queue-operation ordinal,
//! - sticky device loss at a chosen launch ordinal.

use core::fmt;

/// Classification of a simulator-level error, carried alongside the message
/// so the facade can map it onto the right `alpaka_core::Error` variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimErrorKind {
    /// Kernel misbehaviour. `transient: true` marks injected events a retry
    /// may avoid (ECC); `false` marks deterministic kernel bugs (OOB, ...).
    Fault { transient: bool },
    /// The watchdog cycle budget was exhausted.
    Timeout,
    /// The device dropped off the bus; sticky until the device is rebuilt.
    DeviceLost,
    /// Host-side buffer misuse detected by checked accessors.
    BadBuffer,
}

/// Structured simulator error: message plus fault classification and the
/// block/thread coordinates of the faulting lane when they are known.
#[derive(Debug, Clone, PartialEq)]
pub struct SimError {
    pub kind: SimErrorKind,
    pub msg: String,
    pub block: Option<[i64; 3]>,
    pub thread: Option<[i64; 3]>,
}

impl SimError {
    pub fn new(msg: impl Into<String>) -> Self {
        SimError {
            kind: SimErrorKind::Fault { transient: false },
            msg: msg.into(),
            block: None,
            thread: None,
        }
    }

    pub fn timeout(msg: impl Into<String>) -> Self {
        SimError {
            kind: SimErrorKind::Timeout,
            ..SimError::new(msg)
        }
    }

    pub fn device_lost(msg: impl Into<String>) -> Self {
        SimError {
            kind: SimErrorKind::DeviceLost,
            ..SimError::new(msg)
        }
    }

    pub fn bad_buffer(msg: impl Into<String>) -> Self {
        SimError {
            kind: SimErrorKind::BadBuffer,
            ..SimError::new(msg)
        }
    }

    pub fn transient(msg: impl Into<String>) -> Self {
        SimError {
            kind: SimErrorKind::Fault { transient: true },
            ..SimError::new(msg)
        }
    }

    /// Attach the faulting thread's in-block coordinates (canonical zyx).
    pub fn at_thread(mut self, tid: [i64; 3]) -> Self {
        self.thread = Some(tid);
        self
    }

    /// Attach the faulting block's coordinates (canonical zyx). Existing
    /// coordinates win: the innermost attribution is the most precise.
    pub fn with_block(mut self, bidx: [i64; 3]) -> Self {
        if self.block.is_none() {
            self.block = Some(bidx);
        }
        self
    }

    /// Prefix the message (used when wrapping with launch context).
    pub fn context(mut self, prefix: &str) -> Self {
        self.msg = format!("{prefix}{}", self.msg);
        self
    }
}

impl From<String> for SimError {
    fn from(msg: String) -> Self {
        SimError::new(msg)
    }
}

impl From<&str> for SimError {
    fn from(msg: &str) -> Self {
        SimError::new(msg)
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Shorthand used across the interpreter: `serr!("...", args)` builds a
/// non-transient `SimError` exactly like `format!` builds a `String`.
#[macro_export]
macro_rules! serr {
    ($($arg:tt)*) => {
        $crate::fault::SimError::new(format!($($arg)*))
    };
}

/// splitmix64 finalizer: a fast, well-distributed 64-bit mixer.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded, deterministic fault-injection plan for one simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed feeding every injection decision.
    pub seed: u64,
    /// Per-global-load probability of an injected detected-uncorrectable
    /// ECC event, in `[0, 1]`. `0.0` disables ECC injection.
    pub ecc_rate: f64,
    /// Fail the N-th device allocation (0-based ordinal) with OOM.
    pub oom_at_alloc: Option<u64>,
    /// Watchdog: cycle (fuel) budget per launch; kernels that exceed it
    /// time out. `None` leaves the simulator's default budget in place.
    pub watchdog_fuel: Option<u64>,
    /// Lose the device at the N-th launch (0-based ordinal); the launch
    /// fails with `DeviceLost` and every later operation fails too.
    pub lost_at_launch: Option<u64>,
    /// Kill the queue worker at the N-th queue operation (0-based ordinal,
    /// counted per queue by the facade).
    pub worker_death_at_op: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a base for builders).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            ecc_rate: 0.0,
            oom_at_alloc: None,
            watchdog_fuel: None,
            lost_at_launch: None,
            worker_death_at_op: None,
        }
    }

    pub fn with_ecc_rate(mut self, rate: f64) -> Self {
        self.ecc_rate = rate.clamp(0.0, 1.0);
        self
    }

    pub fn with_oom_at(mut self, ordinal: u64) -> Self {
        self.oom_at_alloc = Some(ordinal);
        self
    }

    pub fn with_watchdog_fuel(mut self, fuel: u64) -> Self {
        self.watchdog_fuel = Some(fuel);
        self
    }

    pub fn with_lost_at_launch(mut self, ordinal: u64) -> Self {
        self.lost_at_launch = Some(ordinal);
        self
    }

    pub fn with_worker_death_at(mut self, ordinal: u64) -> Self {
        self.worker_death_at_op = Some(ordinal);
        self
    }

    /// Parse `ALPAKA_SIM_FAULTS`, e.g.
    /// `"seed=42,ecc=1e-6,oom_at=3,watchdog=100000,lost_at=2,worker_death_at=1"`.
    /// Returns `None` when the variable is unset or empty; unknown or
    /// malformed fields are ignored (robustness over strictness: a typo in
    /// an env var must not take down the host program).
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("ALPAKA_SIM_FAULTS").ok()?;
        Self::parse(&raw)
    }

    /// Parse the `ALPAKA_SIM_FAULTS` syntax from a string.
    pub fn parse(raw: &str) -> Option<Self> {
        if raw.trim().is_empty() {
            return None;
        }
        let mut plan = FaultPlan::quiet(0);
        for field in raw.split(',') {
            let mut it = field.splitn(2, '=');
            let key = it.next().unwrap_or("").trim();
            let val = it.next().unwrap_or("").trim();
            match key {
                "seed" => {
                    if let Ok(v) = val.parse::<u64>() {
                        plan.seed = v;
                    }
                }
                "ecc" => {
                    if let Ok(v) = val.parse::<f64>() {
                        plan.ecc_rate = v.clamp(0.0, 1.0);
                    }
                }
                "oom_at" => plan.oom_at_alloc = val.parse::<u64>().ok(),
                "watchdog" => plan.watchdog_fuel = val.parse::<u64>().ok(),
                "lost_at" => plan.lost_at_launch = val.parse::<u64>().ok(),
                "worker_death_at" => plan.worker_death_at_op = val.parse::<u64>().ok(),
                _ => {}
            }
        }
        Some(plan)
    }

    /// Does the N-th allocation fail with OOM?
    pub fn oom_hits(&self, alloc_ordinal: u64) -> bool {
        self.oom_at_alloc == Some(alloc_ordinal)
    }

    /// Is the device lost at the N-th launch?
    pub fn lost_hits(&self, launch_ordinal: u64) -> bool {
        self.lost_at_launch == Some(launch_ordinal)
    }

    /// Does the queue worker die at the N-th queue operation?
    pub fn worker_death_hits(&self, op_ordinal: u64) -> bool {
        self.worker_death_at_op == Some(op_ordinal)
    }

    /// Per-launch ECC context handed into the interpreter. `None` when ECC
    /// injection is disabled so the hot path pays a single branch.
    pub fn ecc_ctx(&self, launch_ordinal: u64) -> Option<EccCtx> {
        if self.ecc_rate <= 0.0 {
            return None;
        }
        // Threshold in u64 space: hash < threshold <=> uniform < rate.
        let threshold = if self.ecc_rate >= 1.0 {
            u64::MAX
        } else {
            (self.ecc_rate * (u64::MAX as f64)) as u64
        };
        Some(EccCtx {
            seed: mix64(self.seed ^ mix64(launch_ordinal)),
            threshold,
        })
    }
}

/// Launch-scoped ECC injection context. Decisions are keyed purely on
/// `(seed, launch, linear block index, byte address)` — never on load
/// ordinals or worker identity — so they are invariant across engines,
/// thread counts and vectorization regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccCtx {
    seed: u64,
    threshold: u64,
}

impl EccCtx {
    /// Does the global load of the cache line / word at `addr` performed by
    /// block `block_lin` suffer a detected-uncorrectable ECC event?
    #[inline]
    pub fn hits(&self, block_lin: usize, addr: u64) -> bool {
        let h = mix64(self.seed ^ mix64(addr).wrapping_add((block_lin as u64) << 1));
        h < self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse(
            "seed=42,ecc=1e-6,oom_at=3,watchdog=100000,lost_at=2,worker_death_at=1",
        )
        .unwrap();
        assert_eq!(p.seed, 42);
        assert!((p.ecc_rate - 1e-6).abs() < 1e-12);
        assert_eq!(p.oom_at_alloc, Some(3));
        assert_eq!(p.watchdog_fuel, Some(100000));
        assert_eq!(p.lost_at_launch, Some(2));
        assert_eq!(p.worker_death_at_op, Some(1));
    }

    #[test]
    fn parse_ignores_garbage_fields() {
        let p = FaultPlan::parse("seed=7,bogus=1,ecc=nope").unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.ecc_rate, 0.0);
        assert!(FaultPlan::parse("").is_none());
        assert!(FaultPlan::parse("   ").is_none());
    }

    #[test]
    fn ecc_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::quiet(1).with_ecc_rate(0.5);
        let ctx1 = a.ecc_ctx(0).unwrap();
        let ctx2 = a.ecc_ctx(0).unwrap();
        for blk in 0..16usize {
            for addr in (0..1024u64).step_by(8) {
                assert_eq!(ctx1.hits(blk, addr), ctx2.hits(blk, addr));
            }
        }
        // A different seed flips at least one decision over this window.
        let b = FaultPlan::quiet(2).with_ecc_rate(0.5);
        let ctxb = b.ecc_ctx(0).unwrap();
        let mut differs = false;
        for blk in 0..16usize {
            for addr in (0..1024u64).step_by(8) {
                differs |= ctx1.hits(blk, addr) != ctxb.hits(blk, addr);
            }
        }
        assert!(differs);
    }

    #[test]
    fn ecc_rate_extremes() {
        let never = FaultPlan::quiet(3);
        assert!(never.ecc_ctx(0).is_none());
        let always = FaultPlan::quiet(3).with_ecc_rate(1.0);
        let ctx = always.ecc_ctx(0).unwrap();
        assert!(ctx.hits(0, 0) && ctx.hits(5, 4096));
    }

    #[test]
    fn ecc_rate_is_roughly_honoured() {
        let p = FaultPlan::quiet(9).with_ecc_rate(0.1);
        let ctx = p.ecc_ctx(0).unwrap();
        let n = 20_000u64;
        let hits = (0..n).filter(|&i| ctx.hits(0, i * 8)).count() as f64;
        let rate = hits / n as f64;
        assert!((0.05..0.2).contains(&rate), "observed ECC rate {rate}");
    }

    #[test]
    fn ordinal_triggers() {
        let p = FaultPlan::quiet(0)
            .with_oom_at(2)
            .with_lost_at_launch(1)
            .with_worker_death_at(0);
        assert!(!p.oom_hits(1) && p.oom_hits(2) && !p.oom_hits(3));
        assert!(!p.lost_hits(0) && p.lost_hits(1));
        assert!(p.worker_death_hits(0) && !p.worker_death_hits(1));
    }

    #[test]
    fn serr_macro_builds_plain_faults() {
        let e = serr!("index {} out of bounds (len {})", 9, 4);
        assert_eq!(e.kind, SimErrorKind::Fault { transient: false });
        assert_eq!(e.to_string(), "index 9 out of bounds (len 4)");
        assert!(e.block.is_none() && e.thread.is_none());
    }

    #[test]
    fn sim_error_builders() {
        let e = SimError::transient("ecc")
            .at_thread([0, 0, 3])
            .with_block([0, 1, 0]);
        assert_eq!(e.kind, SimErrorKind::Fault { transient: true });
        assert_eq!(e.thread, Some([0, 0, 3]));
        assert_eq!(e.block, Some([0, 1, 0]));
        // with_block does not clobber an existing attribution.
        let e2 = e.clone().with_block([9, 9, 9]);
        assert_eq!(e2.block, Some([0, 1, 0]));
        let t = SimError::timeout("budget").context("block [0,0,0]: ");
        assert_eq!(t.kind, SimErrorKind::Timeout);
        assert!(t.msg.starts_with("block"));
    }
}
