//! Deferred execution of global atomics: per-worker privatization with an
//! ordered reduction at launch end.
//!
//! The parallel block path cannot let workers apply atomic read-modify-
//! writes directly — float atomics round differently per application
//! order, and the shared memory view's cells are only individually atomic,
//! not RMW-atomic. Instead, when `alpaka_kir::atomics_summary` proves a
//! program *reducible* (every global atomic is a commutative reduction
//! whose result and target buffer are otherwise unobserved), each worker
//! accumulates its atomic effects privately and the launch driver applies
//! them after all blocks ran:
//!
//! * **Integer targets hit by a single operator** use a per-worker value
//!   shadow the size of the real buffer, folded in place
//!   (`shadow[i] = op(shadow[i], v)`) and merged with one
//!   `real[i] = op(real[i], shadow[i])` per worker in worker order. The
//!   shadow starts at the operator's exact identity (`Add` 0, `Min`
//!   `i64::MAX`, `Max` `i64::MIN`, `And` `!0`, `Or`/`Xor` 0), and every
//!   supported integer operator is associative and commutative under
//!   wrapping semantics, so the merged result equals serial application in
//!   any order — no touched-index bookkeeping needed.
//!
//! * **Float targets and mixed-operator integer targets** append
//!   `(block, target, op, index, value)` entries to a per-worker log in
//!   execution order. The driver concatenates the worker logs, stable-
//!   sorts by linear block index and replays the entries one by one.
//!   Each block is owned by exactly one worker and each worker visits its
//!   blocks in increasing linear order, so the replayed sequence is
//!   *exactly* the serial interpreter's application order — float rounding
//!   included.
//!
//! Both shapes therefore produce buffers bit-identical to the serial path
//! for every `ALPAKA_SIM_THREADS` value, which is the determinism contract
//! the rest of the simulator already keeps. Deferral is active whenever a
//! plan exists — including serial and shared-cache launches — so every
//! engine runs one code path and results never depend on the team size.

use std::sync::Arc;

use alpaka_kir::ir::AtomicOp;
use alpaka_kir::semantics as sem;
use alpaka_kir::{atomics_summary, AtomicsSummary, NonReducibleReason, Program};

use crate::interp::SimArgs;
use crate::memory::DeviceMem;

/// Why a launch did not use the parallel block path (or fell back from a
/// faster engine), recorded on `SimReport` so flat thread-scaling is
/// diagnosable instead of silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FallbackReason {
    /// No fallback: the launch ran the engine and parallelism it was
    /// eligible for.
    #[default]
    None,
    /// The device models a single shared cache (`CacheScope::Shared`),
    /// whose hit/miss stream is only deterministic serially.
    SharedCacheScope,
    /// The program's global atomics are not commutative-reducible (or the
    /// launch bindings alias a target buffer), so blocks ran serially.
    AtomicsNonReducible,
    /// The program failed IR validation; the reference tree-walker ran
    /// instead of the lowered/compiled tier.
    ValidationFailed,
}

/// How one target buffer's deferred atomics are accumulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Strategy {
    /// Integer value shadow folded with this operator.
    ShadowI(AtomicOp),
    /// Ordered replay log (floats and mixed-operator integer targets).
    Log,
}

/// One atomic-target buffer of a launch-ready plan.
#[derive(Debug, Clone)]
pub(crate) struct PlanTarget {
    pub(crate) is_f: bool,
    /// Kernel-argument slot.
    pub(crate) slot: u32,
    pub(crate) strategy: Strategy,
    /// Real buffer length, for sizing integer shadows.
    pub(crate) len: usize,
}

/// Launch-scoped deferral plan: the reducible targets plus slot→target
/// lookup tables for the execution hot path.
#[derive(Debug)]
pub(crate) struct AtomicsPlan {
    pub(crate) targets: Vec<PlanTarget>,
    /// `f_map[slot]` / `i_map[slot]` — target index for that buffer slot.
    pub(crate) f_map: Vec<Option<u32>>,
    pub(crate) i_map: Vec<Option<u32>>,
}

/// The exact identity element of an integer atomic operator: folding it
/// any number of times is a no-op.
fn identity_i(op: AtomicOp) -> i64 {
    match op {
        AtomicOp::Add | AtomicOp::Or | AtomicOp::Xor => 0,
        AtomicOp::Min => i64::MAX,
        AtomicOp::Max => i64::MIN,
        AtomicOp::And => !0,
        // Exch never reaches a plan (non-reducible).
        AtomicOp::Exch => 0,
    }
}

/// Build the launch-time deferral plan for `prog` under the bindings
/// `args`, or `None` when the launch must keep direct (serial-order)
/// atomics: the program is statically non-reducible, a target slot is
/// unbound, or two bound slots alias the same buffer (the per-slot
/// analysis can't see through that).
pub(crate) fn plan_for(
    summary: &AtomicsSummary,
    mem: &DeviceMem,
    args: &SimArgs,
    prog: &Program,
) -> Option<Arc<AtomicsPlan>> {
    let AtomicsSummary::Reducible(stargets) = summary else {
        return None;
    };
    // Any aliasing among the slots the program can address would let a
    // plain load/store observe a deferred target through another handle.
    let nf = (prog.n_bufs_f as usize).min(args.bufs_f.len());
    let ni = (prog.n_bufs_i as usize).min(args.bufs_i.len());
    for a in 0..nf {
        for b in (a + 1)..nf {
            if args.bufs_f[a] == args.bufs_f[b] {
                return None;
            }
        }
    }
    for a in 0..ni {
        for b in (a + 1)..ni {
            if args.bufs_i[a] == args.bufs_i[b] {
                return None;
            }
        }
    }
    let mut targets = Vec::with_capacity(stargets.len());
    let mut f_map = vec![None; prog.n_bufs_f as usize];
    let mut i_map = vec![None; prog.n_bufs_i as usize];
    for t in stargets {
        let (len, map) = if t.is_f {
            let h = *args.bufs_f.get(t.slot as usize)?;
            (mem.try_f(h).ok()?.len(), &mut f_map)
        } else {
            let h = *args.bufs_i.get(t.slot as usize)?;
            (mem.try_i(h).ok()?.len(), &mut i_map)
        };
        let strategy = match (t.is_f, t.single_op) {
            (false, Some(op)) => Strategy::ShadowI(op),
            _ => Strategy::Log,
        };
        map[t.slot as usize] = Some(targets.len() as u32);
        targets.push(PlanTarget {
            is_f: t.is_f,
            slot: t.slot,
            strategy,
            len,
        });
    }
    Some(Arc::new(AtomicsPlan {
        targets,
        f_map,
        i_map,
    }))
}

/// One deferred atomic for the ordered replay log.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LogEntry {
    /// Linear block index the atomic executed in — the replay sort key.
    pub(crate) block: u64,
    /// Index into `AtomicsPlan::targets`.
    pub(crate) target: u32,
    pub(crate) op: AtomicOp,
    /// Element index into the target buffer (bounds-checked at execution).
    pub(crate) idx: u64,
    /// Payload: `f64::to_bits` for float targets, the i64 value reinterpreted
    /// for integer targets.
    pub(crate) bits: u64,
}

/// One worker's private accumulation state. Moved out whole as part of
/// `WorkerOut` when the worker finishes.
#[derive(Debug)]
pub(crate) struct AtomicsPriv {
    pub(crate) plan: Arc<AtomicsPlan>,
    /// Per-target value shadows (empty for `Log` targets).
    pub(crate) shadows: Vec<Vec<i64>>,
    pub(crate) log: Vec<LogEntry>,
}

impl AtomicsPriv {
    pub(crate) fn new(plan: Arc<AtomicsPlan>) -> Self {
        let shadows = plan
            .targets
            .iter()
            .map(|t| match t.strategy {
                Strategy::ShadowI(op) => vec![identity_i(op); t.len],
                Strategy::Log => Vec::new(),
            })
            .collect();
        AtomicsPriv {
            plan,
            shadows,
            log: Vec::new(),
        }
    }

    /// Target index for an f64 buffer slot, if that slot is deferred.
    #[inline]
    pub(crate) fn target_f(&self, slot: u32) -> Option<u32> {
        self.plan.f_map.get(slot as usize).copied().flatten()
    }

    #[inline]
    pub(crate) fn target_i(&self, slot: u32) -> Option<u32> {
        self.plan.i_map.get(slot as usize).copied().flatten()
    }

    /// Defer one f64 atomic (float targets always use the log).
    #[inline]
    pub(crate) fn defer_f(&mut self, t: u32, op: AtomicOp, block: u64, idx: usize, v: f64) {
        self.log.push(LogEntry {
            block,
            target: t,
            op,
            idx: idx as u64,
            bits: v.to_bits(),
        });
    }

    /// Defer one i64 atomic: fold into the shadow, or log when the target
    /// mixes operators.
    #[inline]
    pub(crate) fn defer_i(&mut self, t: u32, op: AtomicOp, block: u64, idx: usize, v: i64) {
        match self.plan.targets[t as usize].strategy {
            Strategy::ShadowI(sop) => {
                debug_assert_eq!(sop, op);
                let cell = &mut self.shadows[t as usize][idx];
                *cell = sem::atomic_i(sop, *cell, v);
            }
            Strategy::Log => self.log.push(LogEntry {
                block,
                target: t,
                op,
                idx: idx as u64,
                bits: v as u64,
            }),
        }
    }
}

/// Reduce every worker's deferred atomics into the real buffers.
///
/// `outs` must be in worker-index order. Shadows merge per worker in that
/// order (exact for the commutative integer operators); log entries are
/// concatenated, stable-sorted by linear block index and replayed — which
/// reconstructs the serial interpreter's exact application order, because
/// each block belongs to one worker and workers log their blocks in
/// increasing order.
pub(crate) fn apply_deferred(
    plan: &AtomicsPlan,
    outs: Vec<AtomicsPriv>,
    mem: &mut DeviceMem,
    args: &SimArgs,
) {
    let mut log: Vec<LogEntry> = Vec::new();
    for out in outs {
        for (ti, t) in plan.targets.iter().enumerate() {
            let Strategy::ShadowI(op) = t.strategy else {
                continue;
            };
            let h = args.bufs_i[t.slot as usize];
            let real = mem.i_mut(h);
            for (cell, &s) in real.iter_mut().zip(&out.shadows[ti]) {
                *cell = sem::atomic_i(op, *cell, s);
            }
        }
        log.extend(out.log);
    }
    log.sort_by_key(|e| e.block);
    for e in &log {
        let t = &plan.targets[e.target as usize];
        // Bounds were checked against the real buffer length when the
        // entry was logged.
        if t.is_f {
            let h = args.bufs_f[t.slot as usize];
            let cell = &mut mem.f_mut(h)[e.idx as usize];
            *cell = sem::atomic_f(e.op, *cell, f64::from_bits(e.bits));
        } else {
            let h = args.bufs_i[t.slot as usize];
            let cell = &mut mem.i_mut(h)[e.idx as usize];
            *cell = sem::atomic_i(e.op, *cell, e.bits as i64);
        }
    }
}

/// `atomics_summary` plus the launch-time bindings check, producing the
/// plan (if deferrable) and the fallback reason to report when the launch
/// wanted parallelism but can't have it.
pub(crate) fn classify(
    prog: &Program,
    mem: &DeviceMem,
    args: &SimArgs,
) -> (AtomicsSummary, Option<Arc<AtomicsPlan>>) {
    let summary = atomics_summary(prog);
    let plan = plan_for(&summary, mem, args, prog);
    (summary, plan)
}

/// Human-readable reason string for `FallbackReason::AtomicsNonReducible`
/// diagnostics in tests and docs.
pub fn non_reducible_reason_str(r: NonReducibleReason) -> &'static str {
    match r {
        NonReducibleReason::NonCommutativeOp => "non-commutative atomic op",
        NonReducibleReason::ResultObserved => "atomic result observed",
        NonReducibleReason::TargetAccessed => "atomic target accessed non-atomically",
    }
}
