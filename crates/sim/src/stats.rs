//! Launch statistics and the roofline-style timing model.
//!
//! The interpreter counts *what the kernel did* (warp-instructions issued,
//! flops inside and outside vectorized element loops, memory transactions
//! and their cache outcome, bank conflicts, barriers, atomics, divergence);
//! [`estimate_time`] converts those counts plus a [`DeviceSpec`] into a
//! simulated execution time as the maximum of three rooflines (compute,
//! memory, issue) with an occupancy-based latency-hiding factor.
//!
//! This is *not* a cycle-accurate model; it reproduces the shapes the paper
//! reports (who wins, by what factor, where tiling/elements/coalescing
//! matter), which is what EXPERIMENTS.md compares.

use crate::spec::DeviceSpec;

/// Raw event counts of one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LaunchStats {
    pub blocks: u64,
    pub warps: u64,
    pub threads: u64,
    /// Warp-instructions issued outside vectorized element loops.
    pub scalar_issue: u64,
    /// Warp-instructions issued inside loops proven vectorizable.
    pub vec_issue: u64,
    /// Double-precision flops (FMA = 2) outside vectorized loops.
    pub scalar_flops: u64,
    /// Flops inside vectorizable element loops.
    pub vec_flops: u64,
    /// Special-function ops (sqrt, exp, ln, sin, cos).
    pub special_ops: u64,
    pub global_loads: u64,
    pub global_stores: u64,
    /// Memory transactions after coalescing (line-sized).
    pub mem_transactions: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Bytes that actually went to DRAM (misses x line size; equals
    /// transactions x line when the device has no cache).
    pub dram_bytes: u64,
    pub shared_accesses: u64,
    /// Extra serialization cycles from shared-memory bank conflicts.
    pub bank_conflict_cycles: u64,
    pub syncs: u64,
    pub atomics: u64,
    /// Warp-level branches where the active mask split.
    pub divergent_branches: u64,
}

impl LaunchStats {
    pub fn total_flops(&self) -> u64 {
        self.scalar_flops + self.vec_flops
    }

    /// Scale all extensive counters by `factor` (block-sampling
    /// extrapolation).
    pub fn scaled(&self, factor: f64) -> LaunchStats {
        let s = |v: u64| (v as f64 * factor).round() as u64;
        LaunchStats {
            blocks: s(self.blocks),
            warps: s(self.warps),
            threads: s(self.threads),
            scalar_issue: s(self.scalar_issue),
            vec_issue: s(self.vec_issue),
            scalar_flops: s(self.scalar_flops),
            vec_flops: s(self.vec_flops),
            special_ops: s(self.special_ops),
            global_loads: s(self.global_loads),
            global_stores: s(self.global_stores),
            mem_transactions: s(self.mem_transactions),
            cache_hits: s(self.cache_hits),
            cache_misses: s(self.cache_misses),
            dram_bytes: s(self.dram_bytes),
            shared_accesses: s(self.shared_accesses),
            bank_conflict_cycles: s(self.bank_conflict_cycles),
            syncs: s(self.syncs),
            atomics: s(self.atomics),
            divergent_branches: s(self.divergent_branches),
        }
    }

    pub fn add(&mut self, other: &LaunchStats) {
        self.blocks += other.blocks;
        self.warps += other.warps;
        self.threads += other.threads;
        self.scalar_issue += other.scalar_issue;
        self.vec_issue += other.vec_issue;
        self.scalar_flops += other.scalar_flops;
        self.vec_flops += other.vec_flops;
        self.special_ops += other.special_ops;
        self.global_loads += other.global_loads;
        self.global_stores += other.global_stores;
        self.mem_transactions += other.mem_transactions;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.dram_bytes += other.dram_bytes;
        self.shared_accesses += other.shared_accesses;
        self.bank_conflict_cycles += other.bank_conflict_cycles;
        self.syncs += other.syncs;
        self.atomics += other.atomics;
        self.divergent_branches += other.divergent_branches;
    }
}

/// The three roofline terms plus overheads, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeBreakdown {
    pub compute_s: f64,
    pub memory_s: f64,
    pub issue_s: f64,
    pub overhead_s: f64,
    /// Load-imbalance factor applied to the binding term (>= 1).
    pub imbalance: f64,
    /// Occupancy-derived bandwidth efficiency in (0, 1].
    pub mem_efficiency: f64,
    pub total_s: f64,
    /// Name of the binding component ("compute", "memory", "issue", or
    /// "overhead") — the roofline the launch sits on. Filled by
    /// [`estimate_time`]; empty on a default-constructed breakdown.
    pub dominant: &'static str,
}

impl TimeBreakdown {
    /// The named components in a stable order: the three rooflines plus
    /// the fixed launch overhead.
    pub fn components(&self) -> [(&'static str, f64); 4] {
        [
            ("compute", self.compute_s),
            ("memory", self.memory_s),
            ("issue", self.issue_s),
            ("overhead", self.overhead_s),
        ]
    }

    /// Fraction of `total` seconds that `component_s` accounts for, clamped
    /// to `[0, 1]`; 0 when the total is not positive. Typical use:
    /// `t.fraction_of(t.memory_s)` against `t.total_s`.
    pub fn fraction_of(&self, component_s: f64) -> f64 {
        if self.total_s > 0.0 {
            (component_s / self.total_s).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// Recompute the name of the largest component (ties go to the earlier
    /// entry of [`TimeBreakdown::components`]).
    pub fn dominant_component(&self) -> &'static str {
        let mut best = ("compute", self.compute_s);
        for (name, v) in self.components() {
            if v > best.1 {
                best = (name, v);
            }
        }
        best.0
    }
}

/// Estimate the launch time. `threads_per_block` and `shared_bytes` feed
/// the occupancy model.
pub fn estimate_time(
    spec: &DeviceSpec,
    stats: &LaunchStats,
    threads_per_block: usize,
    shared_bytes: usize,
) -> TimeBreakdown {
    let peak_flops = spec.peak_gflops() * 1e9; // flop/s at full vector issue
    let simd = spec.simd_width.max(1) as f64;

    // --- compute roofline -------------------------------------------------
    // Vectorized flops run at peak; scalar flops at peak/simd (a scalar FMA
    // occupies a full vector unit slot); special functions at peak/8.
    let compute_s = stats.vec_flops as f64 / peak_flops
        + stats.scalar_flops as f64 * simd / peak_flops
        + stats.special_ops as f64 * 8.0 / peak_flops;

    // --- memory roofline --------------------------------------------------
    let resident = spec.resident_blocks_per_sm(threads_per_block, shared_bytes);
    let warps_per_block = threads_per_block.div_ceil(spec.warp_width).max(1);
    let resident_warps = resident * warps_per_block;
    // GPUs need many resident warps to hide DRAM latency; CPUs prefetch
    // well with a single thread.
    let hide_warps = if spec.warp_width > 1 { 16.0 } else { 1.0 };
    let mem_efficiency = ((resident_warps as f64) / hide_warps).clamp(0.05, 1.0);
    let memory_s = stats.dram_bytes as f64 / (spec.mem_bw_gbs * 1e9 * mem_efficiency);

    // --- issue roofline ---------------------------------------------------
    // Vector-loop instructions issue once per simd group; shared accesses
    // and barriers and atomics add serialization cycles.
    let issue_cycles = stats.scalar_issue as f64
        + stats.vec_issue as f64 / simd
        + stats.bank_conflict_cycles as f64
        + stats.syncs as f64 * 8.0
        + stats.atomics as f64 * 16.0;
    let issue_s = issue_cycles / (spec.sms as f64 * spec.issue_rate_per_sm * spec.clock_ghz * 1e9);

    // --- load imbalance ---------------------------------------------------
    // Residency hides latency but does not multiply throughput: a wave is
    // one block per SM. Partial waves leave SMs idle (blocks < sms) and
    // uneven waves leave them idle at the tail.
    let waves = (stats.blocks as f64 / spec.sms as f64).max(1e-9);
    let imbalance = (waves.ceil() / waves).clamp(1.0, 16.0);

    let overhead_s = spec.launch_overhead_us * 1e-6;
    let body = compute_s.max(memory_s).max(issue_s);
    let mut t = TimeBreakdown {
        compute_s,
        memory_s,
        issue_s,
        overhead_s,
        imbalance,
        mem_efficiency,
        total_s: body * imbalance + overhead_s,
        dominant: "",
    };
    t.dominant = t.dominant_component();
    t
}

/// Host<->device transfer cost.
pub fn transfer_time(spec: &DeviceSpec, bytes: usize) -> f64 {
    spec.transfer_latency_us * 1e-6 + bytes as f64 / (spec.transfer_bw_gbs * 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flops_only(vec_flops: u64) -> LaunchStats {
        LaunchStats {
            blocks: 1024,
            vec_flops,
            // One FMA warp-instruction per 32 lanes x 2 flops.
            vec_issue: vec_flops / 64,
            ..Default::default()
        }
    }

    #[test]
    fn compute_bound_kernel_tracks_peak() {
        let spec = DeviceSpec::k20();
        let flops = 2_000_000_000u64;
        let t = estimate_time(&spec, &flops_only(flops), 256, 0);
        let achieved = flops as f64 / t.total_s / 1e9;
        // A pure-FMA kernel should land within a factor ~2 of peak
        // (issue overhead + launch overhead keep it below).
        assert!(achieved > spec.peak_gflops() * 0.3, "{achieved}");
        assert!(achieved <= spec.peak_gflops() * 1.01, "{achieved}");
    }

    #[test]
    fn scalar_flops_are_slower_on_cpu() {
        let spec = DeviceSpec::e5_2630v3();
        let mut vec_stats = LaunchStats {
            blocks: 64,
            vec_flops: 1_000_000_000,
            ..Default::default()
        };
        let mut scal_stats = LaunchStats {
            blocks: 64,
            scalar_flops: 1_000_000_000,
            ..Default::default()
        };
        vec_stats.vec_issue = vec_stats.vec_flops;
        scal_stats.scalar_issue = scal_stats.scalar_flops;
        let tv = estimate_time(&spec, &vec_stats, 1, 0).total_s;
        let ts = estimate_time(&spec, &scal_stats, 1, 0).total_s;
        assert!(
            ts > tv * 2.0,
            "scalar ({ts}) must be well slower than vectorized ({tv})"
        );
    }

    #[test]
    fn memory_bound_kernel_tracks_bandwidth() {
        let spec = DeviceSpec::k20();
        let stats = LaunchStats {
            blocks: 8192,
            dram_bytes: 10_000_000_000,
            ..Default::default()
        };
        // Plenty of resident warps -> full bandwidth.
        let t = estimate_time(&spec, &stats, 256, 0);
        let bw = stats.dram_bytes as f64 / t.total_s / 1e9;
        assert!(
            bw > spec.mem_bw_gbs * 0.5 && bw <= spec.mem_bw_gbs * 1.01,
            "{bw}"
        );
    }

    #[test]
    fn low_occupancy_hurts_bandwidth() {
        let spec = DeviceSpec::k20();
        let stats = LaunchStats {
            blocks: 8192,
            dram_bytes: 10_000_000_000,
            ..Default::default()
        };
        let t_hi = estimate_time(&spec, &stats, 256, 0).total_s;
        // One warp per block, full shared memory -> 1 resident warp.
        let t_lo = estimate_time(&spec, &stats, 32, 48 * 1024).total_s;
        assert!(t_lo > t_hi * 4.0, "lo {t_lo} vs hi {t_hi}");
    }

    #[test]
    fn imbalance_penalizes_partial_waves() {
        let spec = DeviceSpec::k20();
        // 14 blocks on 13 SMs with residency 1 -> 2 waves, ~2x cost.
        let stats = LaunchStats {
            blocks: 14,
            vec_flops: 1_000_000_000,
            vec_issue: 1_000_000_000,
            ..Default::default()
        };
        let t14 = estimate_time(&spec, &stats, 1024, 40 * 1024);
        assert!(t14.imbalance > 1.5);
    }

    #[test]
    fn transfer_has_latency_floor() {
        let spec = DeviceSpec::k20();
        let t0 = transfer_time(&spec, 0);
        assert!(t0 >= 9e-6);
        let t_big = transfer_time(&spec, 6_000_000_000);
        assert!(t_big > 0.9 && t_big < 1.2);
    }

    #[test]
    fn fraction_of_and_dominant_component() {
        let spec = DeviceSpec::k20();
        // Pure compute kernel: the compute roofline binds.
        let t = estimate_time(&spec, &flops_only(2_000_000_000), 256, 0);
        assert_eq!(t.dominant, "compute");
        assert_eq!(t.dominant, t.dominant_component());
        assert!(t.fraction_of(t.compute_s) > 0.5, "{t:?}");
        // Memory-bound kernel: the memory roofline binds.
        let mem = LaunchStats {
            blocks: 8192,
            dram_bytes: 10_000_000_000,
            ..Default::default()
        };
        let tm = estimate_time(&spec, &mem, 256, 0);
        assert_eq!(tm.dominant, "memory");
        assert!(tm.fraction_of(tm.memory_s) > 0.9, "{tm:?}");
        // Fractions are clamped and total to at most ~1 per component.
        assert!(tm.fraction_of(tm.total_s * 2.0) <= 1.0);
        assert_eq!(TimeBreakdown::default().fraction_of(1.0), 0.0);
        // An empty launch is all launch overhead.
        let t0 = estimate_time(&spec, &LaunchStats::default(), 1, 0);
        assert_eq!(t0.dominant, "overhead");
        assert!((t0.fraction_of(t0.overhead_s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_and_adding_stats() {
        let a = flops_only(100);
        let b = a.scaled(2.0);
        assert_eq!(b.vec_flops, 200);
        let mut c = a;
        c.add(&b);
        assert_eq!(c.vec_flops, 300);
        assert_eq!(c.blocks, 1024 * 3);
    }
}
