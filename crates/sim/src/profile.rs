//! Per-instruction hot-spot profiling.
//!
//! When tracing is enabled (`alpaka_core::trace::enabled()`), both engines
//! attribute every counter they charge to the *source KIR statement* that
//! caused it, keyed by a canonical instruction index. The index is the
//! pre-order position of the statement in the program tree ([`Numbering`]),
//! which the lowered engine reproduces independently during lowering — so
//! the two engines (and any `ALPAKA_SIM_THREADS` team size) produce
//! identical [`KernelProfile`]s, and the profile's totals tie out against
//! [`LaunchStats`] exactly (see [`KernelProfile::check_against`]).
//!
//! `Stmt::Comment` statements are skipped (they execute nothing); control
//! headers (`if`/`for`/`while`) own their mask bookkeeping and per-iteration
//! issue, loop bodies own their own instructions.

use std::collections::HashMap;

use alpaka_kir::ir::Stmt;
use alpaka_kir::{stmt_label, Program};

use crate::stats::LaunchStats;

/// Canonical pre-order numbering of a program's non-comment statements.
#[derive(Debug)]
pub struct Numbering {
    ids: HashMap<usize, u32>,
    labels: Vec<String>,
}

impl Numbering {
    pub fn new(prog: &Program) -> Self {
        let mut ids = HashMap::new();
        let mut labels = Vec::new();
        prog.body.visit(&mut |s| {
            if matches!(s, Stmt::Comment(_)) {
                return;
            }
            ids.insert(s as *const Stmt as usize, labels.len() as u32);
            labels.push(stmt_label(s));
        });
        Numbering { ids, labels }
    }

    /// Number of profiled statements.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The canonical id of a statement of the *same* program instance the
    /// numbering was built from (identity-keyed).
    #[inline]
    pub fn id_of(&self, s: &Stmt) -> u32 {
        self.ids[&(s as *const Stmt as usize)]
    }

    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Fresh zeroed counter block, one slot per statement.
    pub fn counters(&self) -> Box<[InstrCounters]> {
        vec![InstrCounters::default(); self.len()].into_boxed_slice()
    }
}

/// Everything the simulator charges, attributed to one KIR statement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrCounters {
    /// Warp-instructions issued (scalar + vectorized alike).
    pub issue: u64,
    /// Times the statement was dispatched with at least one active lane.
    pub execs: u64,
    /// Double-precision flops charged.
    pub flops: u64,
    /// Special-function ops charged.
    pub special: u64,
    pub global_loads: u64,
    pub global_stores: u64,
    pub mem_transactions: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub dram_bytes: u64,
    pub shared_accesses: u64,
    pub bank_conflict_cycles: u64,
    pub syncs: u64,
    pub atomics: u64,
    pub divergent_branches: u64,
}

impl InstrCounters {
    pub fn add(&mut self, o: &InstrCounters) {
        self.issue += o.issue;
        self.execs += o.execs;
        self.flops += o.flops;
        self.special += o.special;
        self.global_loads += o.global_loads;
        self.global_stores += o.global_stores;
        self.mem_transactions += o.mem_transactions;
        self.cache_hits += o.cache_hits;
        self.cache_misses += o.cache_misses;
        self.dram_bytes += o.dram_bytes;
        self.shared_accesses += o.shared_accesses;
        self.bank_conflict_cycles += o.bank_conflict_cycles;
        self.syncs += o.syncs;
        self.atomics += o.atomics;
        self.divergent_branches += o.divergent_branches;
    }

    /// Serialization cycles this statement contributed to the issue
    /// roofline (same weights as `estimate_time`).
    pub fn issue_cycles(&self) -> u64 {
        self.issue + self.bank_conflict_cycles + self.syncs * 8 + self.atomics * 16
    }
}

/// Merge `src` into `dst` slot-wise (deterministic worker merge).
pub fn merge_counters(dst: &mut [InstrCounters], src: &[InstrCounters]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        d.add(s);
    }
}

/// The per-instruction profile of one launch, attached to `SimReport` when
/// tracing is enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Kernel name the launch executed.
    pub kernel: String,
    /// One-line source rendering per canonical statement id.
    pub labels: Vec<String>,
    /// Counters per canonical statement id (same length as `labels`).
    pub instrs: Vec<InstrCounters>,
}

impl KernelProfile {
    pub fn new(
        kernel: impl Into<String>,
        numbering: &Numbering,
        instrs: Vec<InstrCounters>,
    ) -> Self {
        debug_assert_eq!(numbering.len(), instrs.len());
        KernelProfile {
            kernel: kernel.into(),
            labels: numbering.labels().to_vec(),
            instrs,
        }
    }

    /// Sum of every per-instruction counter block.
    pub fn totals(&self) -> InstrCounters {
        let mut t = InstrCounters::default();
        for c in &self.instrs {
            t.add(c);
        }
        t
    }

    /// Verify the profile ties out against the launch's aggregate stats
    /// *exactly*: issued warp-instructions, flops, specials and every memory
    /// counter must match. Returns a description of the first mismatch.
    pub fn check_against(&self, stats: &LaunchStats) -> Result<(), String> {
        let t = self.totals();
        let checks: [(&str, u64, u64); 13] = [
            ("issue", t.issue, stats.scalar_issue + stats.vec_issue),
            ("flops", t.flops, stats.scalar_flops + stats.vec_flops),
            ("special", t.special, stats.special_ops),
            ("global_loads", t.global_loads, stats.global_loads),
            ("global_stores", t.global_stores, stats.global_stores),
            (
                "mem_transactions",
                t.mem_transactions,
                stats.mem_transactions,
            ),
            ("cache_hits", t.cache_hits, stats.cache_hits),
            ("cache_misses", t.cache_misses, stats.cache_misses),
            ("dram_bytes", t.dram_bytes, stats.dram_bytes),
            ("shared_accesses", t.shared_accesses, stats.shared_accesses),
            (
                "bank_conflict_cycles",
                t.bank_conflict_cycles,
                stats.bank_conflict_cycles,
            ),
            ("syncs", t.syncs, stats.syncs),
            ("atomics", t.atomics, stats.atomics),
        ];
        for (name, got, want) in checks {
            if got != want {
                return Err(format!("profile {name} = {got}, stats say {want}"));
            }
        }
        if t.divergent_branches != stats.divergent_branches {
            return Err(format!(
                "profile divergent_branches = {}, stats say {}",
                t.divergent_branches, stats.divergent_branches
            ));
        }
        Ok(())
    }

    /// Statement ids ranked by issue-cycle contribution, hottest first.
    pub fn ranked(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.instrs.len()).collect();
        order.sort_by_key(|&i| {
            std::cmp::Reverse((self.instrs[i].issue_cycles(), std::cmp::Reverse(i)))
        });
        order
    }

    /// Render the hottest `top` statements as a source-annotated table.
    pub fn render_table(&self, top: usize) -> String {
        use std::fmt::Write as _;
        let total_cycles: u64 = self
            .instrs
            .iter()
            .map(|c| c.issue_cycles())
            .sum::<u64>()
            .max(1);
        let mut out = String::new();
        let _ = writeln!(out, "hot spots for kernel `{}`:", self.kernel);
        let _ = writeln!(
            out,
            "{:>4} {:>6} {:>12} {:>10} {:>12} {:>10} {:>8}  source",
            "rank", "id", "cycles", "cyc%", "flops", "dram_B", "execs"
        );
        for (rank, &i) in self.ranked().iter().take(top).enumerate() {
            let c = &self.instrs[i];
            if c.issue_cycles() == 0 && c.execs == 0 {
                break;
            }
            let _ = writeln!(
                out,
                "{:>4} {:>6} {:>12} {:>9.2}% {:>12} {:>10} {:>8}  {}",
                rank + 1,
                i,
                c.issue_cycles(),
                c.issue_cycles() as f64 * 100.0 / total_cycles as f64,
                c.flops,
                c.dram_bytes,
                c.execs,
                self.labels[i]
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpaka_core::kernel::Kernel;
    use alpaka_core::ops::{KernelOps, KernelOpsExt};
    use alpaka_kir::trace_kernel;

    struct Daxpy;
    impl Kernel for Daxpy {
        fn name(&self) -> &str {
            "daxpy"
        }
        fn run<O: KernelOps>(&self, o: &mut O) {
            o.comment("y <- a*x + y");
            let x = o.buf_f(0);
            let y = o.buf_f(1);
            let a = o.param_f(0);
            let n = o.param_i(0);
            let i = o.global_thread_idx(0);
            let c = o.lt_i(i, n);
            o.if_(c, |o| {
                let xv = o.ld_gf(x, i);
                let yv = o.ld_gf(y, i);
                let r = o.fma_f(xv, a, yv);
                o.st_gf(y, i, r);
            });
        }
    }

    #[test]
    fn numbering_skips_comments_and_is_preorder() {
        let p = trace_kernel(&Daxpy, 1);
        let n = Numbering::new(&p);
        // Every non-comment statement gets exactly one id.
        let mut non_comment = 0usize;
        p.body.visit(&mut |s| {
            if !matches!(s, Stmt::Comment(_)) {
                non_comment += 1;
            }
        });
        assert_eq!(n.len(), non_comment);
        // The last statement in pre-order is the store inside the if.
        assert!(n.labels().last().unwrap().starts_with("st.global.f64"));
    }

    #[test]
    fn profile_table_ranks_by_cycles() {
        let p = trace_kernel(&Daxpy, 1);
        let n = Numbering::new(&p);
        let mut instrs = n.counters().to_vec();
        instrs[2].issue = 100;
        instrs[2].execs = 10;
        instrs[0].issue = 5;
        instrs[0].execs = 5;
        let prof = KernelProfile::new("daxpy", &n, instrs);
        assert_eq!(prof.ranked()[0], 2);
        let table = prof.render_table(3);
        assert!(table.contains("daxpy"), "{table}");
        let pos_hot = table.find(" 100 ").unwrap();
        let pos_cold = table.find("    5 ").unwrap();
        assert!(pos_hot < pos_cold, "{table}");
    }

    #[test]
    fn check_against_reports_mismatch() {
        let p = trace_kernel(&Daxpy, 1);
        let n = Numbering::new(&p);
        let mut instrs = n.counters().to_vec();
        instrs[0].issue = 7;
        let prof = KernelProfile::new("daxpy", &n, instrs);
        let stats = LaunchStats {
            scalar_issue: 7,
            ..Default::default()
        };
        assert!(prof.check_against(&stats).is_ok());
        let bad = LaunchStats {
            scalar_issue: 8,
            ..Default::default()
        };
        let err = prof.check_against(&bad).unwrap_err();
        assert!(err.contains("issue"), "{err}");
    }
}
