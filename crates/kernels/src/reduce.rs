//! Parallel sum reduction.
//!
//! Two single-source variants:
//! * [`ReduceBlocks`] — classic shared-memory tree per block, one partial
//!   per block written to the output buffer (finish on the host or with a
//!   second launch).
//! * [`ReduceAtomic`] — each thread accumulates its element range in a
//!   register and atomically adds the per-thread partial to `out[0]`.
//!
//! Arguments: f64 buffers 0 = input, 1 = output; i64 scalar 0 = n.

use alpaka_core::kernel::Kernel;
use alpaka_core::ops::{KernelOps, KernelOpsExt};

/// Tree reduction in shared memory; requires a power-of-two block size.
/// Output buffer must hold one f64 per block.
#[derive(Debug, Clone, Copy)]
pub struct ReduceBlocks {
    /// Threads per block (power of two; must match the work division).
    pub block: usize,
}

impl Default for ReduceBlocks {
    fn default() -> Self {
        ReduceBlocks { block: 128 }
    }
}

impl Kernel for ReduceBlocks {
    fn name(&self) -> &str {
        "reduce_blocks"
    }

    fn run<O: KernelOps>(&self, o: &mut O) {
        assert!(self.block.is_power_of_two(), "block size must be 2^k");
        let input = o.buf_f(0);
        let out = o.buf_f(1);
        let n = o.param_i(0);
        let sh = o.shared_f(self.block);
        let tid = o.thread_idx(0);
        let bid = o.block_idx(0);
        let bdim = o.block_thread_extent(0);
        let v = o.thread_elem_extent(0);
        // Each thread sums its strided element range first (grid-stride
        // over elements within the block's chunk).
        let chunk = o.mul_i(bdim, v);
        let base = {
            let b = o.mul_i(bid, chunk);
            o.add_i(b, tid)
        };
        let zf = o.lit_f(0.0);
        let p = o.fold_elements_f(0, zf, |o, e, acc| {
            let off = o.mul_i(e, bdim);
            let i = o.add_i(base, off);
            let c = o.lt_i(i, n);
            let zero = o.lit_f(0.0);
            let loaded = o.var_f(zero);
            o.if_(c, |o| {
                let x = o.ld_gf(input, i);
                o.vset_f(loaded, x);
            });
            let x = o.vget_f(loaded);
            o.add_f(acc, x)
        });
        o.st_sf(sh, tid, p);
        o.sync_block_threads();
        // Tree: s = block/2 .. 1
        let two = o.lit_i(2);
        let s0 = o.div_i(bdim, two);
        let s = o.var_i(s0);
        o.while_(
            |o| {
                let sv = o.vget_i(s);
                let z = o.lit_i(0);
                o.gt_i(sv, z)
            },
            |o| {
                let sv = o.vget_i(s);
                let c = o.lt_i(tid, sv);
                o.if_(c, |o| {
                    let j = o.add_i(tid, sv);
                    let a = o.ld_sf(sh, tid);
                    let b = o.ld_sf(sh, j);
                    let sum = o.add_f(a, b);
                    o.st_sf(sh, tid, sum);
                });
                o.sync_block_threads();
                let two = o.lit_i(2);
                let nx = o.div_i(sv, two);
                o.vset_i(s, nx);
            },
        );
        let z = o.lit_i(0);
        let is0 = o.eq_i(tid, z);
        o.if_(is0, |o| {
            let z2 = o.lit_i(0);
            let total = o.ld_sf(sh, z2);
            o.st_gf(out, bid, total);
        });
    }
}

/// Atomic single-pass reduction into `out[0]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReduceAtomic;

impl Kernel for ReduceAtomic {
    fn name(&self) -> &str {
        "reduce_atomic"
    }

    fn run<O: KernelOps>(&self, o: &mut O) {
        let input = o.buf_f(0);
        let out = o.buf_f(1);
        let n = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        let zf = o.lit_f(0.0);
        let p = o.fold_elements_f(0, zf, |o, e, acc| {
            let i = o.add_i(base, e);
            let c = o.lt_i(i, n);
            let zero = o.lit_f(0.0);
            let loaded = o.var_f(zero);
            o.if_(c, |o| {
                let x = o.ld_gf(input, i);
                o.vset_f(loaded, x);
            });
            let x = o.vget_f(loaded);
            o.add_f(acc, x)
        });
        let z = o.lit_i(0);
        let _ = o.atomic_add_gf(out, z, p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{random_vec, reduce_ref};
    use alpaka::{AccKind, Args, BufLayout, Device, WorkDiv};
    use alpaka_core::vec::div_ceil;

    #[test]
    fn block_tree_reduction_all_backends() {
        let n = 1000usize;
        let data = random_vec(n, 3);
        let want = reduce_ref(&data);
        let block = 64usize;
        let v = 2usize;
        let blocks = div_ceil(n, block * v);
        for kind in [
            AccKind::CpuThreads,
            AccKind::CpuBlockThreads,
            AccKind::CpuFibers,
            AccKind::sim_k20(),
        ] {
            let dev = Device::with_workers(kind.clone(), 4);
            let input = dev.alloc_f64(BufLayout::d1(n));
            let out = dev.alloc_f64(BufLayout::d1(blocks));
            input.upload(&data).unwrap();
            let wd = WorkDiv::d1(blocks, block, v);
            let args = Args::new().buf_f(&input).buf_f(&out).scalar_i(n as i64);
            dev.launch(&ReduceBlocks { block }, &wd, &args).unwrap();
            let total: f64 = out.download().iter().sum();
            assert!(
                (total - want).abs() / want.abs() < 1e-12,
                "{kind:?}: {total} vs {want}"
            );
        }
    }

    #[test]
    fn atomic_reduction_all_backends() {
        let n = 777usize;
        let data = random_vec(n, 4);
        let want = reduce_ref(&data);
        let mut kinds = AccKind::native_cpu_all();
        kinds.push(AccKind::sim_k20());
        for kind in kinds {
            let dev = Device::with_workers(kind.clone(), 4);
            let input = dev.alloc_f64(BufLayout::d1(n));
            let out = dev.alloc_f64(BufLayout::d1(1));
            input.upload(&data).unwrap();
            let wd = dev.suggest_workdiv_1d(n);
            let args = Args::new().buf_f(&input).buf_f(&out).scalar_i(n as i64);
            dev.launch(&ReduceAtomic, &wd, &args).unwrap();
            let total = out.download()[0];
            // Atomic order differs between back-ends: tolerance, not
            // bit-equality.
            assert!(
                (total - want).abs() / want.abs() < 1e-10,
                "{kind:?}: {total} vs {want}"
            );
        }
    }
}
