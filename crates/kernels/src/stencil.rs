//! 2-D 5-point Jacobi stencil (heat diffusion step).
//!
//! Arguments: f64 buffers 0 = src, 1 = dst; i64 scalars 0 = rows, 1 = cols,
//! 2 = pitch (elements per row in both buffers). Boundary cells are copied
//! through unchanged.

use alpaka_core::kernel::Kernel;
use alpaka_core::ops::{KernelOps, KernelOpsExt};
use alpaka_core::vec::{div_ceil, Vecn};
use alpaka_core::workdiv::WorkDiv;

/// One Jacobi step; 2-D launch over the grid with elements along columns.
#[derive(Debug, Clone, Copy, Default)]
pub struct JacobiStep;

impl JacobiStep {
    /// Work division: `bt x bt` blocks of threads, `ev` elements along the
    /// fast dimension per thread. Use `bt = 1` for single-thread-block
    /// accelerators.
    pub fn workdiv(rows: usize, cols: usize, bt: usize, ev: usize) -> WorkDiv {
        WorkDiv::d2(
            Vecn([div_ceil(rows, bt).max(1), div_ceil(cols, bt * ev).max(1)]),
            Vecn([bt, bt]),
            Vecn([1, ev]),
        )
    }
}

impl Kernel for JacobiStep {
    fn name(&self) -> &str {
        "jacobi2d"
    }

    fn run<O: KernelOps>(&self, o: &mut O) {
        let src = o.buf_f(0);
        let dst = o.buf_f(1);
        let rows = o.param_i(0);
        let cols = o.param_i(1);
        let pitch = o.param_i(2);
        let r = o.global_thread_idx(0);
        let cbase = {
            let g = o.global_thread_idx(1);
            let v = o.thread_elem_extent(1);
            o.mul_i(g, v)
        };
        let in_rows = o.lt_i(r, rows);
        o.if_(in_rows, |o| {
            let row_off = o.mul_i(r, pitch);
            o.for_elements(1, |o, e| {
                let c = o.add_i(cbase, e);
                let in_cols = o.lt_i(c, cols);
                o.if_(in_cols, |o| {
                    let idx = o.add_i(row_off, c);
                    // Interior test: 0 < r < rows-1 && 0 < c < cols-1.
                    let one = o.lit_i(1);
                    let rm1 = o.sub_i(rows, one);
                    let cm1 = o.sub_i(cols, one);
                    let zero = o.lit_i(0);
                    let a = o.gt_i(r, zero);
                    let b = o.lt_i(r, rm1);
                    let cl = o.gt_i(c, zero);
                    let cr = o.lt_i(c, cm1);
                    let ab = o.and_b(a, b);
                    let cc = o.and_b(cl, cr);
                    let interior = o.and_b(ab, cc);
                    o.if_else(
                        interior,
                        |o| {
                            let up = o.sub_i(idx, pitch);
                            let dn = o.add_i(idx, pitch);
                            let one = o.lit_i(1);
                            let lf = o.sub_i(idx, one);
                            let rt = o.add_i(idx, one);
                            let vu = o.ld_gf(src, up);
                            let vd = o.ld_gf(src, dn);
                            let vl = o.ld_gf(src, lf);
                            let vr = o.ld_gf(src, rt);
                            let s1 = o.add_f(vu, vd);
                            let s2 = o.add_f(vl, vr);
                            let s = o.add_f(s1, s2);
                            let q = o.lit_f(0.25);
                            let out = o.mul_f(s, q);
                            o.st_gf(dst, idx, out);
                        },
                        |o| {
                            let v = o.ld_gf(src, idx);
                            o.st_gf(dst, idx, v);
                        },
                    );
                });
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{jacobi_ref, random_matrix, rel_err};
    use alpaka::{AccKind, Args, BufLayout, Device};

    fn run_on(kind: AccKind, rows: usize, cols: usize, steps: usize) -> Vec<f64> {
        let dev = Device::with_workers(kind, 4);
        let layout = BufLayout::d2(rows, cols, 8);
        let a = dev.alloc_f64(layout);
        let b = dev.alloc_f64(layout);
        a.upload(&random_matrix(rows, cols, 21)).unwrap();
        let pitch = a.layout().pitch as i64;
        let caps = dev.caps();
        let bt = if caps.requires_single_thread_blocks {
            1
        } else {
            4
        };
        let wd = JacobiStep::workdiv(rows, cols, bt, 4);
        for s in 0..steps {
            let (src, dst) = if s % 2 == 0 { (&a, &b) } else { (&b, &a) };
            let args = Args::new()
                .buf_f(src)
                .buf_f(dst)
                .scalar_i(rows as i64)
                .scalar_i(cols as i64)
                .scalar_i(pitch);
            dev.launch(&JacobiStep, &wd, &args).unwrap();
        }
        if steps % 2 == 0 {
            a.download()
        } else {
            b.download()
        }
    }

    #[test]
    fn jacobi_matches_reference_everywhere() {
        let (rows, cols, steps) = (18, 23, 3);
        let mut cur = random_matrix(rows, cols, 21);
        let mut next = vec![0.0; rows * cols];
        for _ in 0..steps {
            jacobi_ref(rows, cols, &cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        for kind in [
            AccKind::CpuSerial,
            AccKind::CpuBlocks,
            AccKind::CpuThreads,
            AccKind::sim_k20(),
            AccKind::sim_e5_2630v3(),
        ] {
            let got = run_on(kind.clone(), rows, cols, steps);
            assert!(rel_err(&got, &cur) < 1e-14, "{kind:?}");
        }
    }

    #[test]
    fn boundary_is_preserved() {
        let (rows, cols) = (8, 8);
        let got = run_on(AccKind::CpuSerial, rows, cols, 1);
        let src = random_matrix(rows, cols, 21);
        for c in 0..cols {
            assert_eq!(got[c], src[c]); // first row
            assert_eq!(got[(rows - 1) * cols + c], src[(rows - 1) * cols + c]);
        }
    }
}
