//! *Native* baselines: the same algorithms written WITHOUT the abstraction
//! layer, as plain multithreaded Rust. These are the "native OpenMP"
//! comparators of the paper's Figs. 5, 6 and 8: the Alpaka-kernel wall time
//! divided by these functions' wall time is the reported relative speedup.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Native DAXPY `y <- alpha*x + y`, chunked over `threads` OS threads.
pub fn native_daxpy(alpha: f64, x: &[f64], y: &mut [f64], threads: usize) {
    assert_eq!(x.len(), y.len());
    let threads = threads.max(1);
    let chunk = x.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for (xc, yc) in x.chunks(chunk).zip(y.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (yi, xi) in yc.iter_mut().zip(xc) {
                    *yi = xi.mul_add(alpha, *yi);
                }
            });
        }
    });
}

/// Native naive DGEMM (`C <- alpha*A*B + beta*C`, dense row-major,
/// leading dimensions = logical widths), rows dynamically scheduled over
/// `threads` OS threads — the paper's "native OpenMP 2" kernel.
#[allow(clippy::too_many_arguments)]
pub fn native_dgemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
    threads: usize,
) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    let threads = threads.max(1).min(m.max(1));
    let next = AtomicUsize::new(0);
    // Rows are disjoint: give each worker raw row pointers.
    let c_ptr = SendPtr(c.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let c_ptr = &c_ptr;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= m {
                    break;
                }
                // SAFETY: each row index i is claimed exactly once, so the
                // row slices are disjoint across workers.
                let row = unsafe { std::slice::from_raw_parts_mut(c_ptr.0.add(i * n), n) };
                for (j, cij) in row.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for p in 0..k {
                        acc = a[i * k + p].mul_add(b[p * n + j], acc);
                    }
                    *cij = alpha.mul_add(acc, beta * *cij);
                }
            });
        }
    });
}

struct SendPtr(*mut f64);
// SAFETY: workers write disjoint rows (claimed via the atomic counter).
unsafe impl Sync for SendPtr {}

/// Native cache-blocked DGEMM with `bs x bs` tiles — the optimized CPU
/// comparator for the tiling experiments.
#[allow(clippy::too_many_arguments)]
pub fn native_dgemm_blocked(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
    bs: usize,
    threads: usize,
) {
    assert!(bs > 0);
    // beta-scale first, then accumulate alpha*A*B tile-wise.
    for v in c.iter_mut() {
        *v *= beta;
    }
    let threads = threads.max(1);
    let row_tiles = m.div_ceil(bs);
    let next = AtomicUsize::new(0);
    let c_ptr = SendPtr(c.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(row_tiles.max(1)) {
            let next = &next;
            let c_ptr = &c_ptr;
            scope.spawn(move || loop {
                let it = next.fetch_add(1, Ordering::Relaxed);
                if it >= row_tiles {
                    break;
                }
                let i0 = it * bs;
                let i1 = (i0 + bs).min(m);
                // SAFETY: row tiles are disjoint across workers.
                let crows =
                    unsafe { std::slice::from_raw_parts_mut(c_ptr.0.add(i0 * n), (i1 - i0) * n) };
                for p0 in (0..k).step_by(bs) {
                    let p1 = (p0 + bs).min(k);
                    for j0 in (0..n).step_by(bs) {
                        let j1 = (j0 + bs).min(n);
                        for i in i0..i1 {
                            let crow = &mut crows[(i - i0) * n..(i - i0) * n + n];
                            for p in p0..p1 {
                                let av = alpha * a[i * k + p];
                                let brow = &b[p * n..p * n + n];
                                for j in j0..j1 {
                                    crow[j] = av.mul_add(brow[j], crow[j]);
                                }
                            }
                        }
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{dgemm_ref, random_matrix, random_vec, rel_err};

    #[test]
    fn native_daxpy_matches_reference() {
        let n = 1003;
        let x = random_vec(n, 1);
        let mut y = random_vec(n, 2);
        let mut want = y.clone();
        crate::host::daxpy_ref(2.5, &x, &mut want);
        native_daxpy(2.5, &x, &mut y, 4);
        assert_eq!(y, want);
    }

    #[test]
    fn native_dgemm_matches_reference() {
        let (m, n, k) = (37, 29, 23);
        let a = random_matrix(m, k, 3);
        let b = random_matrix(k, n, 4);
        let mut c = random_matrix(m, n, 5);
        let mut want = c.clone();
        dgemm_ref(m, n, k, 1.5, &a, &b, 0.5, &mut want);
        native_dgemm(m, n, k, 1.5, &a, &b, 0.5, &mut c, 4);
        assert!(rel_err(&c, &want) < 1e-13);
    }

    #[test]
    fn native_blocked_matches_reference() {
        let (m, n, k) = (45, 41, 33);
        let a = random_matrix(m, k, 6);
        let b = random_matrix(k, n, 7);
        let mut c = random_matrix(m, n, 8);
        let mut want = c.clone();
        dgemm_ref(m, n, k, 2.0, &a, &b, 1.0, &mut want);
        native_dgemm_blocked(m, n, k, 2.0, &a, &b, 1.0, &mut c, 16, 4);
        assert!(rel_err(&c, &want) < 1e-13);
    }

    #[test]
    fn single_thread_works() {
        let (m, n, k) = (8, 8, 8);
        let a = random_matrix(m, k, 9);
        let b = random_matrix(k, n, 10);
        let mut c = vec![0.0; m * n];
        let mut want = vec![0.0; m * n];
        dgemm_ref(m, n, k, 1.0, &a, &b, 0.0, &mut want);
        native_dgemm(m, n, k, 1.0, &a, &b, 0.0, &mut c, 1);
        assert!(rel_err(&c, &want) < 1e-14);
    }
}
