//! Monte-Carlo π estimation with counter-based per-thread RNG.
//!
//! Demonstrates the *testability* property for stochastic codes: the RNG is
//! a pure function of `(sample index, seed)` (SplitMix64 via
//! `KernelOpsExt::rand_unit_f`), so every back-end produces the *same* hit
//! count for the same seed and sample assignment, not merely a statistically
//! equivalent one.
//!
//! Arguments: i64 buffer 0 = hit counter (1 cell, atomically incremented);
//! i64 scalars: 0 = samples per thread, 1 = seed.

use alpaka_core::kernel::Kernel;
use alpaka_core::ops::{KernelOps, KernelOpsExt};

/// Each thread draws `samples_per_thread` 2-D points and atomically adds
/// its in-circle count to `hits[0]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonteCarloPi;

impl Kernel for MonteCarloPi {
    fn name(&self) -> &str {
        "mc_pi"
    }

    fn run<O: KernelOps>(&self, o: &mut O) {
        let hits = o.buf_i(0);
        let per_thread = o.param_i(0);
        let seed = o.param_i(1);
        let gid = o.linear_global_thread_idx();
        let zero = o.lit_i(0);
        let base = o.mul_i(gid, per_thread);
        let count = o.fold_range_i(zero, per_thread, zero, |o, s, acc| {
            let ctr = o.add_i(base, s);
            // Two independent streams for x and y.
            let two = o.lit_i(2);
            let c2 = o.mul_i(ctr, two);
            let one = o.lit_i(1);
            let c2p1 = o.add_i(c2, one);
            let x = o.rand_unit_f(c2, seed);
            let y = o.rand_unit_f(c2p1, seed);
            let x2 = o.mul_f(x, x);
            let r2 = o.fma_f(y, y, x2);
            let onef = o.lit_f(1.0);
            let inside = o.le_f(r2, onef);
            let one2 = o.lit_i(1);
            let zero2 = o.lit_i(0);
            let inc = o.select_i(inside, one2, zero2);
            o.add_i(acc, inc)
        });
        let z = o.lit_i(0);
        let _ = o.atomic_add_gi(hits, z, count);
    }
}

/// Host-side estimate from a hit count.
pub fn pi_estimate(hits: i64, total_samples: i64) -> f64 {
    4.0 * hits as f64 / total_samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpaka::{AccKind, Args, BufLayout, Device};

    fn run_on(kind: AccKind, threads: usize, per_thread: i64, seed: i64) -> i64 {
        let dev = Device::with_workers(kind, 4);
        let hits = dev.alloc_i64(BufLayout::d1(1));
        let wd = dev.suggest_workdiv_1d(threads);
        // The work division may over-provision threads; every extra thread
        // simply draws its own samples, so pin the thread count by using
        // exactly the suggested division's thread total.
        let args = Args::new().buf_i(&hits).scalar_i(per_thread).scalar_i(seed);
        dev.launch(&MonteCarloPi, &wd, &args).unwrap();
        let total_threads: i64 = (wd.block_count() * wd.threads_per_block()) as i64;
        let h = hits.download()[0];
        // Normalize: return hits and let caller compute estimate with the
        // actual sample count.
        assert!(h <= total_threads * per_thread);
        h
    }

    #[test]
    fn identical_hits_across_backends_with_same_division() {
        // Fix the work division so the sample assignment is identical.
        let wd = alpaka::WorkDiv::d1(8, 1, 1);
        let per_thread = 500i64;
        let seed = 99i64;
        let mut results = vec![];
        for kind in [
            AccKind::CpuSerial,
            AccKind::CpuBlocks,
            AccKind::CpuFibers,
            AccKind::sim_k20(),
        ] {
            let dev = Device::with_workers(kind.clone(), 4);
            let hits = dev.alloc_i64(BufLayout::d1(1));
            let args = Args::new().buf_i(&hits).scalar_i(per_thread).scalar_i(seed);
            dev.launch(&MonteCarloPi, &wd, &args).unwrap();
            results.push((kind, hits.download()[0]));
        }
        let first = results[0].1;
        for (kind, h) in &results {
            assert_eq!(*h, first, "{kind:?} diverged");
        }
    }

    #[test]
    fn estimate_converges_to_pi() {
        let h = run_on(AccKind::CpuBlocks, 64, 2000, 7);
        // The actual thread count depends on the suggested division; use a
        // fixed-division run for the precise check instead.
        assert!(h > 0);
        let wd = alpaka::WorkDiv::d1(64, 1, 1);
        let dev = Device::with_workers(AccKind::CpuBlocks, 4);
        let hits = dev.alloc_i64(BufLayout::d1(1));
        let args = Args::new().buf_i(&hits).scalar_i(2000).scalar_i(7);
        dev.launch(&MonteCarloPi, &wd, &args).unwrap();
        let est = pi_estimate(hits.download()[0], 64 * 2000);
        assert!((est - std::f64::consts::PI).abs() < 0.05, "{est}");
    }

    #[test]
    fn different_seeds_differ() {
        let wd = alpaka::WorkDiv::d1(16, 1, 1);
        let dev = Device::new(AccKind::CpuSerial);
        let run = |seed: i64| {
            let hits = dev.alloc_i64(BufLayout::d1(1));
            let args = Args::new().buf_i(&hits).scalar_i(1000).scalar_i(seed);
            dev.launch(&MonteCarloPi, &wd, &args).unwrap();
            hits.download()[0]
        };
        assert_ne!(run(1), run(2));
    }
}
