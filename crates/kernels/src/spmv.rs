//! Sparse matrix-vector product (CSR) — the irregular-access kernel.
//!
//! Two single-source variants:
//! * [`SpmvScalar`] — one row per thread (CSR-scalar): simple, but warp
//!   lanes touch wildly different column ranges, so GPU accesses do not
//!   coalesce and divergence is high.
//! * [`SpmvVector`] is intentionally NOT provided: the warp-per-row
//!   variant needs warp shuffles, which the abstraction (like the paper's
//!   Alpaka of 2016) does not expose; the scalar variant is exactly what a
//!   portable single-source kernel could write at the time.
//!
//! Arguments: f64 buffers 0 = values, 1 = x, 2 = y (out); i64 buffers
//! 0 = row_ptr (n_rows+1), 1 = col_idx; i64 scalar 0 = n_rows.

use alpaka_core::kernel::Kernel;
use alpaka_core::ops::{KernelOps, KernelOpsExt};

/// CSR matrix in host memory.
#[derive(Debug, Clone, Default)]
pub struct CsrMatrix {
    pub n_rows: usize,
    pub n_cols: usize,
    pub row_ptr: Vec<i64>,
    pub col_idx: Vec<i64>,
    pub values: Vec<f64>,
}

impl CsrMatrix {
    /// Random banded matrix: each row has up to `per_row` entries within
    /// `band` of the diagonal.
    pub fn random_banded(n: usize, per_row: usize, band: usize, seed: u64) -> Self {
        use rand::Rng;
        let mut rng = crate::host::rng(seed);
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..n {
            let lo = r.saturating_sub(band);
            let hi = (r + band + 1).min(n);
            let mut cols: Vec<usize> = (lo..hi).collect();
            // Keep a random subset, always including the diagonal.
            while cols.len() > per_row {
                let k = rng.gen_range(0..cols.len());
                if cols[k] != r {
                    cols.remove(k);
                }
            }
            for c in cols {
                col_idx.push(c as i64);
                values.push(rng.gen_range(-1.0..1.0));
            }
            row_ptr.push(col_idx.len() as i64);
        }
        CsrMatrix {
            n_rows: n,
            n_cols: n,
            row_ptr,
            col_idx,
            values,
        }
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Host reference `y = A * x`.
    pub fn spmv_ref(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let (s, e) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let mut acc = 0.0;
            for k in s..e {
                acc = self.values[k].mul_add(x[self.col_idx[k] as usize], acc);
            }
            *yr = acc;
        }
        y
    }
}

/// One row per thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpmvScalar;

impl Kernel for SpmvScalar {
    fn name(&self) -> &str {
        "spmv_scalar"
    }

    fn run<O: KernelOps>(&self, o: &mut O) {
        let values = o.buf_f(0);
        let x = o.buf_f(1);
        let y = o.buf_f(2);
        let row_ptr = o.buf_i(0);
        let col_idx = o.buf_i(1);
        let n_rows = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let r = o.add_i(base, e);
            let c = o.lt_i(r, n_rows);
            o.if_(c, |o| {
                let s = o.ld_gi(row_ptr, r);
                let one = o.lit_i(1);
                let r1 = o.add_i(r, one);
                let en = o.ld_gi(row_ptr, r1);
                let zf = o.lit_f(0.0);
                let acc = o.fold_range_f(s, en, zf, |o, k, acc| {
                    let a = o.ld_gf(values, k);
                    let ci = o.ld_gi(col_idx, k);
                    let xv = o.ld_gf(x, ci);
                    o.fma_f(a, xv, acc)
                });
                o.st_gf(y, r, acc);
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{random_vec, rel_err};
    use alpaka::{AccKind, Args, BufLayout, Device};

    fn run_spmv(kind: AccKind, m: &CsrMatrix, x: &[f64]) -> Vec<f64> {
        let dev = Device::with_workers(kind, 4);
        let vals = dev.alloc_f64(BufLayout::d1(m.nnz()));
        let xv = dev.alloc_f64(BufLayout::d1(m.n_cols));
        let yv = dev.alloc_f64(BufLayout::d1(m.n_rows));
        let rp = dev.alloc_i64(BufLayout::d1(m.row_ptr.len()));
        let ci = dev.alloc_i64(BufLayout::d1(m.nnz().max(1)));
        vals.upload(&m.values).unwrap();
        xv.upload(x).unwrap();
        rp.upload(&m.row_ptr).unwrap();
        if m.nnz() > 0 {
            ci.upload(&m.col_idx).unwrap();
        }
        let wd = dev.suggest_workdiv_1d(m.n_rows);
        let args = Args::new()
            .buf_f(&vals)
            .buf_f(&xv)
            .buf_f(&yv)
            .buf_i(&rp)
            .buf_i(&ci)
            .scalar_i(m.n_rows as i64);
        dev.launch(&SpmvScalar, &wd, &args).unwrap();
        yv.download()
    }

    #[test]
    fn spmv_matches_reference_everywhere() {
        let m = CsrMatrix::random_banded(300, 7, 12, 80);
        let x = random_vec(m.n_cols, 81);
        let want = m.spmv_ref(&x);
        let mut kinds = AccKind::native_cpu_all();
        kinds.push(AccKind::sim_k20());
        kinds.push(AccKind::sim_e5_2630v3());
        for kind in kinds {
            let got = run_spmv(kind.clone(), &m, &x);
            assert!(rel_err(&got, &want) < 1e-14, "{kind:?}");
        }
    }

    #[test]
    fn identity_matrix_is_identity() {
        let n = 50;
        let m = CsrMatrix {
            n_rows: n,
            n_cols: n,
            row_ptr: (0..=n as i64).collect(),
            col_idx: (0..n as i64).collect(),
            values: vec![1.0; n],
        };
        let x = random_vec(n, 82);
        let got = run_spmv(AccKind::CpuBlocks, &m, &x);
        assert_eq!(got, x);
    }

    #[test]
    fn empty_rows_yield_zero() {
        // Rows 1 and 3 empty.
        let m = CsrMatrix {
            n_rows: 4,
            n_cols: 4,
            row_ptr: vec![0, 1, 1, 2, 2],
            col_idx: vec![0, 2],
            values: vec![2.0, 3.0],
        };
        let x = vec![1.0, 1.0, 1.0, 1.0];
        let got = run_spmv(AccKind::CpuSerial, &m, &x);
        assert_eq!(got, vec![2.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn irregular_rows_diverge_on_gpu() {
        // A matrix with very uneven row lengths produces measurable warp
        // divergence on the simulated GPU (the known CSR-scalar weakness).
        use alpaka::{time_launch, LaunchMode, WorkDiv};
        let n = 256usize;
        let mut m = CsrMatrix {
            n_rows: n,
            n_cols: n,
            row_ptr: vec![0],
            col_idx: vec![],
            values: vec![],
        };
        for r in 0..n {
            let len = if r % 32 == 0 { 64.min(n) } else { 1 };
            for k in 0..len {
                m.col_idx.push(((r + k) % n) as i64);
                m.values.push(1.0);
            }
            m.row_ptr.push(m.col_idx.len() as i64);
        }
        let dev = Device::new(AccKind::sim_k20());
        let vals = dev.alloc_f64(BufLayout::d1(m.nnz()));
        let xv = dev.alloc_f64(BufLayout::d1(n));
        let yv = dev.alloc_f64(BufLayout::d1(n));
        let rp = dev.alloc_i64(BufLayout::d1(m.row_ptr.len()));
        let ci = dev.alloc_i64(BufLayout::d1(m.nnz()));
        vals.upload(&m.values).unwrap();
        xv.upload(&vec![1.0; n]).unwrap();
        rp.upload(&m.row_ptr).unwrap();
        ci.upload(&m.col_idx).unwrap();
        let args = Args::new()
            .buf_f(&vals)
            .buf_f(&xv)
            .buf_f(&yv)
            .buf_i(&rp)
            .buf_i(&ci)
            .scalar_i(n as i64);
        let timed = time_launch(
            &dev,
            &SpmvScalar,
            &WorkDiv::d1(n / 64, 64, 1),
            &args,
            LaunchMode::Exact,
        )
        .unwrap();
        let stats = timed.report.unwrap().stats;
        assert!(stats.divergent_branches > 0, "{stats:?}");
    }
}
