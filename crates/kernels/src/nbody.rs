//! All-pairs N-body acceleration step with Plummer softening.
//!
//! Arguments: f64 buffers 0 = positions+masses (`[x,y,z,m]` per body),
//! 1 = accelerations (`[ax,ay,az]` per body, out); f64 scalar 0 =
//! softening²; i64 scalar 0 = n bodies.

use alpaka_core::kernel::Kernel;
use alpaka_core::ops::{KernelOps, KernelOpsExt};

/// One acceleration evaluation (the O(n²) inner loop of a leapfrog step).
#[derive(Debug, Clone, Copy, Default)]
pub struct NBodyAccel;

impl Kernel for NBodyAccel {
    fn name(&self) -> &str {
        "nbody_accel"
    }

    fn run<O: KernelOps>(&self, o: &mut O) {
        let pos = o.buf_f(0);
        let acc = o.buf_f(1);
        let soft2 = o.param_f(0);
        let n = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        let four = o.lit_i(4);
        let three = o.lit_i(3);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let c = o.lt_i(i, n);
            o.if_(c, |o| {
                let pi = o.mul_i(i, four);
                let xi = o.ld_gf(pos, pi);
                let one = o.lit_i(1);
                let two = o.lit_i(2);
                let pi1 = o.add_i(pi, one);
                let pi2 = o.add_i(pi, two);
                let yi = o.ld_gf(pos, pi1);
                let zi = o.ld_gf(pos, pi2);
                let zf = o.lit_f(0.0);
                let ax = o.var_f(zf);
                let ay = o.var_f(zf);
                let az = o.var_f(zf);
                let zero = o.lit_i(0);
                o.for_range(zero, n, |o, j| {
                    let pj = o.mul_i(j, four);
                    let one = o.lit_i(1);
                    let two = o.lit_i(2);
                    let three_i = o.lit_i(3);
                    let pj1 = o.add_i(pj, one);
                    let pj2 = o.add_i(pj, two);
                    let pj3 = o.add_i(pj, three_i);
                    let xj = o.ld_gf(pos, pj);
                    let yj = o.ld_gf(pos, pj1);
                    let zj = o.ld_gf(pos, pj2);
                    let mj = o.ld_gf(pos, pj3);
                    let dx = o.sub_f(xj, xi);
                    let dy = o.sub_f(yj, yi);
                    let dz = o.sub_f(zj, zi);
                    let dx2 = o.mul_f(dx, dx);
                    let r2a = o.fma_f(dy, dy, dx2);
                    let r2b = o.fma_f(dz, dz, r2a);
                    let r2 = o.add_f(r2b, soft2);
                    let r = o.sqrt_f(r2);
                    let r3 = o.mul_f(r2, r);
                    let inv = o.div_f(mj, r3);
                    let axv = o.vget_f(ax);
                    let nx = o.fma_f(dx, inv, axv);
                    o.vset_f(ax, nx);
                    let ayv = o.vget_f(ay);
                    let ny = o.fma_f(dy, inv, ayv);
                    o.vset_f(ay, ny);
                    let azv = o.vget_f(az);
                    let nz = o.fma_f(dz, inv, azv);
                    o.vset_f(az, nz);
                });
                let ai = o.mul_i(i, three);
                let one = o.lit_i(1);
                let two = o.lit_i(2);
                let ai1 = o.add_i(ai, one);
                let ai2 = o.add_i(ai, two);
                let axv = o.vget_f(ax);
                let ayv = o.vget_f(ay);
                let azv = o.vget_f(az);
                o.st_gf(acc, ai, axv);
                o.st_gf(acc, ai1, ayv);
                o.st_gf(acc, ai2, azv);
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{nbody_accel_ref, random_vec, rel_err};
    use alpaka::{AccKind, Args, BufLayout, Device};

    fn bodies(n: usize, seed: u64) -> Vec<f64> {
        // x,y,z in [0,10); mass in (0, 1].
        let raw = random_vec(n * 4, seed);
        let mut out = raw;
        for b in 0..n {
            out[b * 4 + 3] = out[b * 4 + 3] / 10.0 + 0.1;
        }
        out
    }

    #[test]
    fn nbody_matches_reference_on_all_backends() {
        let n = 60usize;
        let pos = bodies(n, 5);
        let soft2 = 0.01;
        let mut want = vec![0.0; n * 3];
        nbody_accel_ref(&pos, &mut want, soft2);
        for kind in [
            AccKind::CpuSerial,
            AccKind::CpuBlocks,
            AccKind::CpuThreads,
            AccKind::sim_k20(),
            AccKind::sim_e5_2630v3(),
        ] {
            let dev = Device::with_workers(kind.clone(), 4);
            let p = dev.alloc_f64(BufLayout::d1(n * 4));
            let a = dev.alloc_f64(BufLayout::d1(n * 3));
            p.upload(&pos).unwrap();
            let wd = dev.suggest_workdiv_1d(n);
            let args = Args::new()
                .buf_f(&p)
                .buf_f(&a)
                .scalar_f(soft2)
                .scalar_i(n as i64);
            dev.launch(&NBodyAccel, &wd, &args).unwrap();
            let got = a.download();
            assert!(rel_err(&got, &want) < 1e-12, "{kind:?}");
        }
    }
}
