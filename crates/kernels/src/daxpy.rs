//! DAXPY and vector addition — the paper's Section 4.1 kernels.
//!
//! Argument convention (all variants):
//! * f64 buffers: slot 0 = `x`, slot 1 = `y` (in/out)
//! * f64 scalars: slot 0 = `alpha`
//! * i64 scalars: slot 0 = `n`

use alpaka_core::kernel::Kernel;
use alpaka_core::ops::{KernelOps, KernelOpsExt};

/// The generic Alpaka-style DAXPY: computes its base index from the
/// abstraction-model queries and walks the *element level* with a tail
/// guard. This single source runs on every back-end and work division.
#[derive(Debug, Clone, Copy, Default)]
pub struct DaxpyKernel;

impl Kernel for DaxpyKernel {
    fn name(&self) -> &str {
        "daxpy"
    }

    fn run<O: KernelOps>(&self, o: &mut O) {
        let x = o.buf_f(0);
        let y = o.buf_f(1);
        let alpha = o.param_f(0);
        let n = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let c = o.lt_i(i, n);
            o.if_(c, |o| {
                let xv = o.ld_gf(x, i);
                let yv = o.ld_gf(y, i);
                let r = o.fma_f(xv, alpha, yv);
                o.st_gf(y, i, r);
            });
        });
    }
}

/// The "native CUDA" DAXPY of the Fig. 4 comparison: index computed by
/// hand from the raw built-in registers, no element loop — exactly how the
/// paper's hand-written CUDA kernel reads. Only correct for work divisions
/// with one element per thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct DaxpyNativeStyle;

impl Kernel for DaxpyNativeStyle {
    fn name(&self) -> &str {
        "daxpy"
    }

    fn run<O: KernelOps>(&self, o: &mut O) {
        let x = o.buf_f(0);
        let y = o.buf_f(1);
        let alpha = o.param_f(0);
        let n = o.param_i(0);
        let bi = o.block_idx(0);
        let bd = o.block_thread_extent(0);
        let ti = o.thread_idx(0);
        let t = o.mul_i(bi, bd);
        let i = o.add_i(t, ti);
        let c = o.lt_i(i, n);
        o.if_(c, |o| {
            let xv = o.ld_gf(x, i);
            let yv = o.ld_gf(y, i);
            let r = o.fma_f(xv, alpha, yv);
            o.st_gf(y, i, r);
        });
    }
}

/// Element-wise vector addition `z = x + y` (the quickstart kernel).
///
/// Buffers: 0 = `x`, 1 = `y`, 2 = `z`; i64 scalar 0 = `n`.
#[derive(Debug, Clone, Copy, Default)]
pub struct VecAddKernel;

impl Kernel for VecAddKernel {
    fn name(&self) -> &str {
        "vecadd"
    }

    fn run<O: KernelOps>(&self, o: &mut O) {
        let x = o.buf_f(0);
        let y = o.buf_f(1);
        let z = o.buf_f(2);
        let n = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let c = o.lt_i(i, n);
            o.if_(c, |o| {
                let xv = o.ld_gf(x, i);
                let yv = o.ld_gf(y, i);
                let r = o.add_f(xv, yv);
                o.st_gf(z, i, r);
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{daxpy_ref, random_vec};
    use alpaka::{AccKind, Args, BufLayout, Device};

    fn run_daxpy_on(kind: AccKind, n: usize) -> Vec<f64> {
        let dev = Device::with_workers(kind, 4);
        let x = dev.alloc_f64(BufLayout::d1(n));
        let y = dev.alloc_f64(BufLayout::d1(n));
        x.upload(&random_vec(n, 7)).unwrap();
        y.upload(&random_vec(n, 8)).unwrap();
        let wd = dev.suggest_workdiv_1d(n);
        let args = Args::new()
            .buf_f(&x)
            .buf_f(&y)
            .scalar_f(3.25)
            .scalar_i(n as i64);
        dev.launch(&DaxpyKernel, &wd, &args).unwrap();
        y.download()
    }

    #[test]
    fn daxpy_matches_reference_on_all_backends() {
        let n = 501;
        let mut want = random_vec(n, 8);
        daxpy_ref(3.25, &random_vec(n, 7), &mut want);
        let mut kinds = AccKind::native_cpu_all();
        kinds.push(AccKind::sim_k20());
        kinds.push(AccKind::sim_e5_2630v3());
        for kind in kinds {
            let got = run_daxpy_on(kind.clone(), n);
            assert_eq!(got, want, "{kind:?}");
        }
    }

    #[test]
    fn native_style_matches_generic_with_v1() {
        let n = 256;
        let dev = Device::new(AccKind::sim_k20());
        let wd = alpaka_core::workdiv::WorkDiv::d1(2, 128, 1);
        let mk = |kernel_is_native: bool| {
            let x = dev.alloc_f64(BufLayout::d1(n));
            let y = dev.alloc_f64(BufLayout::d1(n));
            x.upload(&random_vec(n, 1)).unwrap();
            y.upload(&random_vec(n, 2)).unwrap();
            let args = Args::new()
                .buf_f(&x)
                .buf_f(&y)
                .scalar_f(1.5)
                .scalar_i(n as i64);
            if kernel_is_native {
                dev.launch(&DaxpyNativeStyle, &wd, &args).unwrap();
            } else {
                dev.launch(&DaxpyKernel, &wd, &args).unwrap();
            }
            y.download()
        };
        assert_eq!(mk(true), mk(false));
    }

    #[test]
    fn vecadd_quickstart() {
        let n = 100;
        let dev = Device::new(AccKind::CpuSerial);
        let x = dev.alloc_f64(BufLayout::d1(n));
        let y = dev.alloc_f64(BufLayout::d1(n));
        let z = dev.alloc_f64(BufLayout::d1(n));
        x.upload(&vec![1.0; n]).unwrap();
        y.upload(&vec![2.0; n]).unwrap();
        let wd = dev.suggest_workdiv_1d(n);
        let args = Args::new().buf_f(&x).buf_f(&y).buf_f(&z).scalar_i(n as i64);
        dev.launch(&VecAddKernel, &wd, &args).unwrap();
        assert_eq!(z.download(), vec![3.0; n]);
    }
}
