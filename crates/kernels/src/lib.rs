//! # alpaka-kernels
//!
//! Single-source kernel zoo for the Alpaka reproduction. Every kernel is
//! written once against `alpaka_core::ops::KernelOps` and runs unchanged on
//! all back-ends (native CPU accelerators and simulated devices); each has a
//! sequential host reference in [`host`] and, where the paper's evaluation
//! needs one, a non-abstracted baseline in [`native`].

pub mod daxpy;
pub mod dgemm;
pub mod dot;
pub mod histogram;
pub mod host;
pub mod montecarlo;
pub mod native;
pub mod nbody;
pub mod reduce;
pub mod scan;
pub mod spmv;
pub mod stencil;
pub mod transpose;

pub use daxpy::{DaxpyKernel, DaxpyNativeStyle, VecAddKernel};
pub use dgemm::{DgemmNaive, DgemmTiled, DgemmTiledCuda};
pub use dot::DotKernel;
pub use histogram::{
    HistogramGlobalAtomics, HistogramGlobalExact, HistogramShared, ScatterAddAffine,
};
pub use montecarlo::{pi_estimate, MonteCarloPi};
pub use nbody::NBodyAccel;
pub use reduce::{ReduceAtomic, ReduceBlocks};
pub use scan::{device_exclusive_scan, ScanAddOffsets, ScanBlocks};
pub use spmv::{CsrMatrix, SpmvScalar};
pub use stencil::JacobiStep;
pub use transpose::{TransposeNaive, TransposePadded, TransposeTiled};
