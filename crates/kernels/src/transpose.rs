//! Matrix transpose — the classic shared-memory / bank-conflict showcase.
//!
//! Three single-source variants with increasing sophistication, mirroring
//! the canonical CUDA optimization ladder:
//! * [`TransposeNaive`] — direct `out[j,i] = in[i,j]`: reads coalesce,
//!   writes stride (or vice versa).
//! * [`TransposeTiled`] — stage a `ts x ts` tile through shared memory so
//!   both global accesses coalesce; the shared array is `ts x ts`, which
//!   produces bank conflicts on the transposed read.
//! * [`TransposePadded`] — same, with a `ts x (ts+1)` shared tile: the
//!   padding column rotates banks and removes the conflicts (visible in
//!   the simulator's `bank_conflict_cycles`).
//!
//! Arguments: f64 buffers 0 = input (rows x cols), 1 = output
//! (cols x rows); i64 scalars: 0 = rows, 1 = cols, 2 = in pitch,
//! 3 = out pitch.

use alpaka_core::kernel::Kernel;
use alpaka_core::ops::KernelOps;
use alpaka_core::vec::{div_ceil, Vecn};
use alpaka_core::workdiv::WorkDiv;

/// 2-D work division with `ts x ts` thread blocks over the *input* shape.
pub fn transpose_workdiv(rows: usize, cols: usize, ts: usize) -> WorkDiv {
    WorkDiv::d2(
        Vecn([div_ceil(rows, ts).max(1), div_ceil(cols, ts).max(1)]),
        Vecn([ts, ts]),
        Vecn([1, 1]),
    )
}

struct TArgs<O: KernelOps> {
    input: O::BufF,
    out: O::BufF,
    rows: O::I,
    cols: O::I,
    in_pitch: O::I,
    out_pitch: O::I,
}

fn t_args<O: KernelOps>(o: &mut O) -> TArgs<O> {
    TArgs {
        input: o.buf_f(0),
        out: o.buf_f(1),
        rows: o.param_i(0),
        cols: o.param_i(1),
        in_pitch: o.param_i(2),
        out_pitch: o.param_i(3),
    }
}

/// Direct transpose, no staging.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransposeNaive;

impl Kernel for TransposeNaive {
    fn name(&self) -> &str {
        "transpose_naive"
    }

    fn run<O: KernelOps>(&self, o: &mut O) {
        let g = t_args(o);
        let bd0 = o.block_thread_extent(0);
        let bd1 = o.block_thread_extent(1);
        let by = o.block_idx(0);
        let bx = o.block_idx(1);
        let ty = o.thread_idx(0);
        let tx = o.thread_idx(1);
        let r = {
            let t = o.mul_i(by, bd0);
            o.add_i(t, ty)
        };
        let c = {
            let t = o.mul_i(bx, bd1);
            o.add_i(t, tx)
        };
        let rm = o.lt_i(r, g.rows);
        let cm = o.lt_i(c, g.cols);
        let ok = o.and_b(rm, cm);
        o.if_(ok, |o| {
            let src = {
                let t = o.mul_i(r, g.in_pitch);
                o.add_i(t, c)
            };
            let v = o.ld_gf(g.input, src);
            let dst = {
                let t = o.mul_i(c, g.out_pitch);
                o.add_i(t, r)
            };
            o.st_gf(g.out, dst, v);
        });
    }
}

/// Shared-memory tile, unpadded (bank conflicts on the transposed read).
#[derive(Debug, Clone, Copy)]
pub struct TransposeTiled {
    pub ts: usize,
}

/// Shared-memory tile with a padding column (conflict-free).
#[derive(Debug, Clone, Copy)]
pub struct TransposePadded {
    pub ts: usize,
}

fn tiled_body<O: KernelOps>(o: &mut O, ts: usize, pad: usize) {
    let g = t_args(o);
    let stride = (ts + pad) as i64;
    let sh = o.shared_f(ts * (ts + pad));
    let ts_c = o.lit_i(ts as i64);
    let stride_c = o.lit_i(stride);
    let by = o.block_idx(0);
    let bx = o.block_idx(1);
    let ty = o.thread_idx(0);
    let tx = o.thread_idx(1);
    // Load phase: (by*ts + ty, bx*ts + tx) -> sh[ty][tx].
    let r = {
        let t = o.mul_i(by, ts_c);
        o.add_i(t, ty)
    };
    let c = {
        let t = o.mul_i(bx, ts_c);
        o.add_i(t, tx)
    };
    let rm = o.lt_i(r, g.rows);
    let cm = o.lt_i(c, g.cols);
    let ok = o.and_b(rm, cm);
    o.if_(ok, |o| {
        let src = {
            let t = o.mul_i(r, g.in_pitch);
            o.add_i(t, c)
        };
        let v = o.ld_gf(g.input, src);
        let si = {
            let t = o.mul_i(ty, stride_c);
            o.add_i(t, tx)
        };
        o.st_sf(sh, si, v);
    });
    o.sync_block_threads();
    // Store phase: out[(bx*ts + ty), (by*ts + tx)] = sh[tx][ty]
    // (swapped thread roles so the global store coalesces).
    let out_r = {
        let t = o.mul_i(bx, ts_c);
        o.add_i(t, ty)
    };
    let out_c = {
        let t = o.mul_i(by, ts_c);
        o.add_i(t, tx)
    };
    let rm2 = o.lt_i(out_r, g.cols);
    let cm2 = o.lt_i(out_c, g.rows);
    let ok2 = o.and_b(rm2, cm2);
    o.if_(ok2, |o| {
        let si = {
            let t = o.mul_i(tx, stride_c);
            o.add_i(t, ty)
        };
        let v = o.ld_sf(sh, si);
        let dst = {
            let t = o.mul_i(out_r, g.out_pitch);
            o.add_i(t, out_c)
        };
        o.st_gf(g.out, dst, v);
    });
}

impl Kernel for TransposeTiled {
    fn name(&self) -> &str {
        "transpose_tiled"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        tiled_body(o, self.ts, 0);
    }
}

impl Kernel for TransposePadded {
    fn name(&self) -> &str {
        "transpose_padded"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        tiled_body(o, self.ts, 1);
    }
}

/// Host reference.
pub fn transpose_ref(rows: usize, cols: usize, input: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = input[r * cols + c];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::random_matrix;
    use alpaka::{AccKind, Args, BufLayout, Device};

    fn run_transpose<K: Kernel + Clone + Send + 'static>(
        kind: AccKind,
        kernel: &K,
        ts: usize,
        rows: usize,
        cols: usize,
    ) -> Vec<f64> {
        let dev = Device::with_workers(kind, 4);
        let input = dev.alloc_f64(BufLayout::d2(rows, cols, 8));
        let out = dev.alloc_f64(BufLayout::d2(cols, rows, 8));
        input.upload(&random_matrix(rows, cols, 50)).unwrap();
        let wd = transpose_workdiv(rows, cols, ts);
        let args = Args::new()
            .buf_f(&input)
            .buf_f(&out)
            .scalar_i(rows as i64)
            .scalar_i(cols as i64)
            .scalar_i(input.layout().pitch as i64)
            .scalar_i(out.layout().pitch as i64);
        dev.launch(kernel, &wd, &args).unwrap();
        out.download()
    }

    #[test]
    fn all_variants_match_reference() {
        let (rows, cols) = (37, 22); // awkward, non-multiple of ts
        let want = transpose_ref(rows, cols, &random_matrix(rows, cols, 50));
        for kind in [AccKind::CpuThreads, AccKind::sim_k20()] {
            assert_eq!(
                run_transpose(kind.clone(), &TransposeNaive, 8, rows, cols),
                want,
                "naive on {kind:?}"
            );
            assert_eq!(
                run_transpose(kind.clone(), &TransposeTiled { ts: 8 }, 8, rows, cols),
                want,
                "tiled on {kind:?}"
            );
            assert_eq!(
                run_transpose(kind.clone(), &TransposePadded { ts: 8 }, 8, rows, cols),
                want,
                "padded on {kind:?}"
            );
        }
    }

    #[test]
    fn padding_removes_bank_conflicts_on_sim() {
        use alpaka::{time_launch, LaunchMode};
        let (rows, cols) = (128, 128);
        let dev = Device::new(AccKind::sim_k20());
        let run = |padded: bool| {
            let input = dev.alloc_f64(BufLayout::d2(rows, cols, 8));
            let out = dev.alloc_f64(BufLayout::d2(cols, rows, 8));
            input.upload(&random_matrix(rows, cols, 51)).unwrap();
            let wd = transpose_workdiv(rows, cols, 32);
            let args = Args::new()
                .buf_f(&input)
                .buf_f(&out)
                .scalar_i(rows as i64)
                .scalar_i(cols as i64)
                .scalar_i(input.layout().pitch as i64)
                .scalar_i(out.layout().pitch as i64);
            let timed = if padded {
                time_launch(
                    &dev,
                    &TransposePadded { ts: 32 },
                    &wd,
                    &args,
                    LaunchMode::Exact,
                )
            } else {
                time_launch(
                    &dev,
                    &TransposeTiled { ts: 32 },
                    &wd,
                    &args,
                    LaunchMode::Exact,
                )
            }
            .unwrap();
            timed.report.unwrap().stats.bank_conflict_cycles
        };
        let conflicted = run(false);
        let padded = run(true);
        assert!(
            conflicted > padded * 10,
            "expected heavy conflicts without padding: {conflicted} vs {padded}"
        );
        assert_eq!(padded, 0, "padded tile must be conflict-free");
    }
}
