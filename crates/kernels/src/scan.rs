//! Exclusive prefix sum (scan) — barrier-heavy, two-phase.
//!
//! [`ScanBlocks`] computes a work-efficient Blelloch scan per block in
//! shared memory and writes each block's total to a sums buffer; the host
//! (or [`ScanAddOffsets`]) then adds the exclusive scan of the block sums
//! back — the standard multi-block scan pipeline.
//!
//! Arguments (`ScanBlocks`): f64 buffers 0 = input, 1 = output, 2 = block
//! sums; i64 scalar 0 = n. Block size must be a power of two; each block
//! scans `2 * block` elements (every thread owns two).
//!
//! Arguments (`ScanAddOffsets`): f64 buffers 0 = output (in/out), 1 =
//! scanned block sums; i64 scalar 0 = n.

use alpaka_core::kernel::Kernel;
use alpaka_core::ops::KernelOps;

/// Per-block Blelloch scan (exclusive), two elements per thread.
#[derive(Debug, Clone, Copy)]
pub struct ScanBlocks {
    /// Threads per block (power of two).
    pub block: usize,
}

impl Kernel for ScanBlocks {
    fn name(&self) -> &str {
        "scan_blocks"
    }

    #[allow(clippy::too_many_lines)]
    fn run<O: KernelOps>(&self, o: &mut O) {
        assert!(self.block.is_power_of_two());
        let input = o.buf_f(0);
        let output = o.buf_f(1);
        let sums = o.buf_f(2);
        let n = o.param_i(0);
        let len = 2 * self.block;
        let sh = o.shared_f(len);
        let tid = o.thread_idx(0);
        let bid = o.block_idx(0);
        let len_c = o.lit_i(len as i64);
        let two = o.lit_i(2);
        let one = o.lit_i(1);
        let base = o.mul_i(bid, len_c);
        // Load two elements per thread (0 beyond n).
        for which in 0..2i64 {
            let w = o.lit_i(which);
            let li = {
                let t = o.mul_i(tid, two);
                o.add_i(t, w)
            };
            let gi = o.add_i(base, li);
            let zf = o.lit_f(0.0);
            let tmp = o.var_f(zf);
            let c = o.lt_i(gi, n);
            o.if_(c, |o| {
                let v = o.ld_gf(input, gi);
                o.vset_f(tmp, v);
            });
            let v = o.vget_f(tmp);
            o.st_sf(sh, li, v);
        }
        o.sync_block_threads();
        // Up-sweep (reduce).
        let d0 = o.lit_i(1);
        let offset = o.var_i(d0);
        let half = o.lit_i(self.block as i64);
        let d = o.var_i(half);
        o.while_(
            |o| {
                let dv = o.vget_i(d);
                let z = o.lit_i(0);
                o.gt_i(dv, z)
            },
            |o| {
                let dv = o.vget_i(d);
                let off = o.vget_i(offset);
                let c = o.lt_i(tid, dv);
                o.if_(c, |o| {
                    // ai = off*(2*tid+1)-1; bi = off*(2*tid+2)-1
                    let t2 = o.mul_i(tid, two);
                    let t21 = o.add_i(t2, one);
                    let t22 = o.add_i(t21, one);
                    let ai = {
                        let t = o.mul_i(off, t21);
                        o.sub_i(t, one)
                    };
                    let bi = {
                        let t = o.mul_i(off, t22);
                        o.sub_i(t, one)
                    };
                    let a = o.ld_sf(sh, ai);
                    let b = o.ld_sf(sh, bi);
                    let s = o.add_f(a, b);
                    o.st_sf(sh, bi, s);
                });
                o.sync_block_threads();
                let off2 = o.mul_i(off, two);
                o.vset_i(offset, off2);
                let dv2 = o.div_i(dv, two);
                o.vset_i(d, dv2);
            },
        );
        // Record the block total and clear the last element.
        let z = o.lit_i(0);
        let is0 = o.eq_i(tid, z);
        o.if_(is0, |o| {
            let last = o.sub_i(len_c, one);
            let total = o.ld_sf(sh, last);
            o.st_gf(sums, bid, total);
            let zf = o.lit_f(0.0);
            o.st_sf(sh, last, zf);
        });
        o.sync_block_threads();
        // Down-sweep.
        let one_i = o.lit_i(1);
        let dd = o.var_i(one_i);
        o.while_(
            |o| {
                let dv = o.vget_i(dd);
                o.le_i(dv, half)
            },
            |o| {
                let off = o.vget_i(offset);
                let off2 = o.div_i(off, two);
                o.vset_i(offset, off2);
                let dv = o.vget_i(dd);
                let c = o.lt_i(tid, dv);
                o.if_(c, |o| {
                    let off = o.vget_i(offset);
                    let t2 = o.mul_i(tid, two);
                    let t21 = o.add_i(t2, one);
                    let t22 = o.add_i(t21, one);
                    let ai = {
                        let t = o.mul_i(off, t21);
                        o.sub_i(t, one)
                    };
                    let bi = {
                        let t = o.mul_i(off, t22);
                        o.sub_i(t, one)
                    };
                    let a = o.ld_sf(sh, ai);
                    let b = o.ld_sf(sh, bi);
                    o.st_sf(sh, ai, b);
                    let s = o.add_f(a, b);
                    o.st_sf(sh, bi, s);
                });
                o.sync_block_threads();
                let dv2 = o.mul_i(dv, two);
                o.vset_i(dd, dv2);
            },
        );
        // Write back.
        for which in 0..2i64 {
            let w = o.lit_i(which);
            let li = {
                let t = o.mul_i(tid, two);
                o.add_i(t, w)
            };
            let gi = o.add_i(base, li);
            let c = o.lt_i(gi, n);
            o.if_(c, |o| {
                let v = o.ld_sf(sh, li);
                o.st_gf(output, gi, v);
            });
        }
    }
}

/// Add the scanned block offsets back into the per-block scans.
/// Work division: same grid as `ScanBlocks`, arbitrary threads/elements
/// covering `2 * block` elements per block.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanAddOffsets;

impl Kernel for ScanAddOffsets {
    fn name(&self) -> &str {
        "scan_add_offsets"
    }

    fn run<O: KernelOps>(&self, o: &mut O) {
        let output = o.buf_f(0);
        let offsets = o.buf_f(1);
        let n = o.param_i(0);
        let bid = o.block_idx(0);
        let bdim = o.block_thread_extent(0);
        let v = o.thread_elem_extent(0);
        let tid = o.thread_idx(0);
        let chunk = o.mul_i(bdim, v);
        let base = o.mul_i(bid, chunk);
        let off = o.ld_gf(offsets, bid);
        let tv = o.mul_i(tid, v);
        let tbase = o.add_i(base, tv);
        o.for_elements(0, |o, e| {
            let i = o.add_i(tbase, e);
            let c = o.lt_i(i, n);
            o.if_(c, |o| {
                let x = o.ld_gf(output, i);
                let r = o.add_f(x, off);
                o.st_gf(output, i, r);
            });
        });
    }
}

/// Host reference: exclusive prefix sum.
pub fn exclusive_scan_ref(x: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(x.len());
    let mut acc = 0.0;
    for &v in x {
        out.push(acc);
        acc += v;
    }
    out
}

/// Full two-phase device scan driver (block scan + host-side scan of block
/// sums + offset add). Returns the exclusive scan of `data`.
pub fn device_exclusive_scan(
    dev: &alpaka::Device,
    data: &[f64],
    block: usize,
) -> alpaka::Result<Vec<f64>> {
    use alpaka::{Args, BufLayout, WorkDiv};
    let n = data.len();
    let chunk = 2 * block;
    let blocks = n.div_ceil(chunk).max(1);
    let input = dev.alloc_f64(BufLayout::d1(n));
    let output = dev.alloc_f64(BufLayout::d1(n));
    let sums = dev.alloc_f64(BufLayout::d1(blocks));
    input.upload(data)?;
    let wd = WorkDiv::d1(blocks, block, 1);
    let args = Args::new()
        .buf_f(&input)
        .buf_f(&output)
        .buf_f(&sums)
        .scalar_i(n as i64);
    dev.launch(&ScanBlocks { block }, &wd, &args)?;
    // Scan the block sums on the host (they are few).
    let offsets = exclusive_scan_ref(&sums.download());
    let offs = dev.alloc_f64(BufLayout::d1(blocks));
    offs.upload(&offsets)?;
    let wd2 = WorkDiv::d1(blocks, block, 2);
    let args2 = Args::new().buf_f(&output).buf_f(&offs).scalar_i(n as i64);
    dev.launch(&ScanAddOffsets, &wd2, &args2)?;
    Ok(output.download())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::random_vec;
    use alpaka::{AccKind, Device};

    #[test]
    fn scan_matches_reference_on_threaded_backends() {
        let n = 1000usize; // not a multiple of 2*block
        let data = random_vec(n, 60);
        let want = exclusive_scan_ref(&data);
        for kind in [
            AccKind::CpuThreads,
            AccKind::CpuBlockThreads,
            AccKind::CpuFibers,
            AccKind::sim_k20(),
        ] {
            let dev = Device::with_workers(kind.clone(), 4);
            let got = device_exclusive_scan(&dev, &data, 64).unwrap();
            let max_err = got
                .iter()
                .zip(&want)
                .map(|(g, w)| (g - w).abs())
                .fold(0.0f64, f64::max);
            assert!(max_err < 1e-9, "{kind:?}: max err {max_err}");
        }
    }

    #[test]
    fn scan_of_ones_is_iota() {
        let n = 256usize;
        let dev = Device::new(AccKind::sim_k20());
        let got = device_exclusive_scan(&dev, &vec![1.0; n], 32).unwrap();
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
    }

    #[test]
    fn single_block_scan() {
        let data = random_vec(64, 61);
        let dev = Device::new(AccKind::sim_k20());
        let got = device_exclusive_scan(&dev, &data, 32).unwrap();
        let want = exclusive_scan_ref(&data);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_tail_handled() {
        // n much smaller than one block's chunk.
        let data = random_vec(10, 62);
        let dev = Device::new(AccKind::sim_k20());
        let got = device_exclusive_scan(&dev, &data, 32).unwrap();
        let want = exclusive_scan_ref(&data);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }
}
