//! Histogram with block-private shared-memory bins — the canonical
//! atomics-pressure kernel.
//!
//! Each block accumulates into a shared-memory histogram with (cheap,
//! block-local) serialization, then flushes its bins to the global
//! histogram with one atomic per bin — far fewer global atomics than the
//! naive per-sample version ([`HistogramGlobalAtomics`], kept as the
//! ablation baseline).
//!
//! Arguments: f64 buffer 0 = samples; i64 buffer 0 = bins (out); f64
//! scalars 0 = lo, 1 = hi; i64 scalars 0 = n, 1 = n_bins.

use alpaka_core::kernel::Kernel;
use alpaka_core::ops::{KernelOps, KernelOpsExt};

fn bin_index<O: KernelOps>(o: &mut O, x: O::F, lo: O::F, hi: O::F, n_bins: O::I) -> O::I {
    // bin = clamp(floor((x - lo) / (hi - lo) * n_bins), 0, n_bins-1)
    let span = o.sub_f(hi, lo);
    let rel = o.sub_f(x, lo);
    let unit = o.div_f(rel, span);
    let nbf = o.i2f(n_bins);
    let scaled = o.mul_f(unit, nbf);
    let fl = o.floor_f(scaled);
    let bi = o.f2i(fl);
    let zero = o.lit_i(0);
    let one = o.lit_i(1);
    let top = o.sub_i(n_bins, one);
    let lo_clamped = o.max_i(bi, zero);
    o.min_i(lo_clamped, top)
}

/// Naive version: one global atomic per sample.
#[derive(Debug, Clone, Copy, Default)]
pub struct HistogramGlobalAtomics;

impl Kernel for HistogramGlobalAtomics {
    fn name(&self) -> &str {
        "histogram_global"
    }

    fn run<O: KernelOps>(&self, o: &mut O) {
        let samples = o.buf_f(0);
        let bins = o.buf_i(0);
        let lo = o.param_f(0);
        let hi = o.param_f(1);
        let n = o.param_i(0);
        let n_bins = o.param_i(1);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let c = o.lt_i(i, n);
            o.if_(c, |o| {
                let x = o.ld_gf(samples, i);
                let b = bin_index(o, x, lo, hi, n_bins);
                let one = o.lit_i(1);
                let _ = o.atomic_add_gi(bins, b, one);
            });
        });
    }
}

/// Guard-free variant of [`HistogramGlobalAtomics`]: the sample count must
/// exactly equal `blocks * threads * elems`, so the element loop needs no
/// bounds `if` and its body is a single straight line — the shape the
/// simulator's compiled tier fuses into an atomic-scatter superop loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct HistogramGlobalExact;

impl Kernel for HistogramGlobalExact {
    fn name(&self) -> &str {
        "histogram_global_exact"
    }

    fn run<O: KernelOps>(&self, o: &mut O) {
        let samples = o.buf_f(0);
        let bins = o.buf_i(0);
        let lo = o.param_f(0);
        let hi = o.param_f(1);
        let n_bins = o.param_i(1);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let x = o.ld_gf(samples, i);
            let b = bin_index(o, x, lo, hi, n_bins);
            let one = o.lit_i(1);
            let _ = o.atomic_add_gi(bins, b, one);
        });
    }
}

/// Affine-index scatter-accumulate: `out[i + offset] += src[i]` with one
/// f64 atomic add per element. The extent must exactly cover `src` (no
/// guard), and `out` must hold `n + offset` elements. The atomic's index is
/// affine in the element counter, so the compiled tier folds the `add` into
/// the atomic superop — the fused scatter-accumulate loop body.
///
/// Arguments: f64 buffer 0 = src, f64 buffer 1 = out; i64 scalar 0 =
/// offset.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScatterAddAffine;

impl Kernel for ScatterAddAffine {
    fn name(&self) -> &str {
        "scatter_add_affine"
    }

    fn run<O: KernelOps>(&self, o: &mut O) {
        let src = o.buf_f(0);
        let out = o.buf_f(1);
        let offset = o.param_i(0);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        o.for_elements(0, |o, e| {
            let i = o.add_i(base, e);
            let x = o.ld_gf(src, i);
            let j = o.add_i(i, offset);
            let _ = o.atomic_add_gf(out, j, x);
        });
    }
}

/// Shared-memory privatized version. `n_bins` must equal the struct's
/// `bins` (shared allocation is host-side).
#[derive(Debug, Clone, Copy)]
pub struct HistogramShared {
    pub bins: usize,
}

impl Kernel for HistogramShared {
    fn name(&self) -> &str {
        "histogram_shared"
    }

    fn run<O: KernelOps>(&self, o: &mut O) {
        let samples = o.buf_f(0);
        let bins = o.buf_i(0);
        let lo = o.param_f(0);
        let hi = o.param_f(1);
        let n = o.param_i(0);
        let n_bins = o.param_i(1);
        let sh = o.shared_i(self.bins);
        let tid = o.thread_idx(0);
        let bdim = o.block_thread_extent(0);
        let bid = o.block_idx(0);
        let v = o.thread_elem_extent(0);
        // Zero the shared bins cooperatively.
        let nb = o.lit_i(self.bins as i64);
        let zero = o.lit_i(0);
        let clear = o.var_i(tid);
        o.while_(
            |o| {
                let cv = o.vget_i(clear);
                o.lt_i(cv, nb)
            },
            |o| {
                let cv = o.vget_i(clear);
                let z = o.lit_i(0);
                o.st_si(sh, cv, z);
                let nx = o.add_i(cv, bdim);
                o.vset_i(clear, nx);
            },
        );
        o.sync_block_threads();
        // Accumulate this block's chunk into shared bins. Shared i64 cells
        // are not atomic in the DSL, so each thread serializes through its
        // OWN private strided sub-pass: thread t handles samples with
        // (index % bdim == t), guaranteeing disjoint... samples map to
        // arbitrary bins, so instead we serialize by round-robin phases:
        // phase p lets only thread p update the shared bins.
        // That is O(bdim) phases — fine for the modest block sizes the
        // ablation uses, and keeps the kernel portable without shared
        // atomics.
        let chunk = o.mul_i(bdim, v);
        let base = o.mul_i(bid, chunk);
        let phase = o.var_i(zero);
        o.while_(
            |o| {
                let pv = o.vget_i(phase);
                o.lt_i(pv, bdim)
            },
            |o| {
                let pv = o.vget_i(phase);
                let my_turn = o.eq_i(tid, pv);
                o.if_(my_turn, |o| {
                    let tv = o.mul_i(tid, v);
                    let tbase = o.add_i(base, tv);
                    let zero2 = o.lit_i(0);
                    o.for_range(zero2, v, |o, e| {
                        let i = o.add_i(tbase, e);
                        let c = o.lt_i(i, n);
                        o.if_(c, |o| {
                            let x = o.ld_gf(samples, i);
                            let b = bin_index(o, x, lo, hi, n_bins);
                            let cur = o.ld_si(sh, b);
                            let one = o.lit_i(1);
                            let nx = o.add_i(cur, one);
                            o.st_si(sh, b, nx);
                        });
                    });
                });
                o.sync_block_threads();
                let one = o.lit_i(1);
                let np = o.add_i(pv, one);
                o.vset_i(phase, np);
            },
        );
        // Flush shared bins to global with one atomic per bin per block.
        let flush = o.var_i(tid);
        o.while_(
            |o| {
                let fv = o.vget_i(flush);
                o.lt_i(fv, nb)
            },
            |o| {
                let fv = o.vget_i(flush);
                let count = o.ld_si(sh, fv);
                let z = o.lit_i(0);
                let nonzero = o.gt_i(count, z);
                o.if_(nonzero, |o| {
                    let _ = o.atomic_add_gi(bins, fv, count);
                });
                let nx = o.add_i(fv, bdim);
                o.vset_i(flush, nx);
            },
        );
    }
}

/// Host reference.
pub fn histogram_ref(samples: &[f64], lo: f64, hi: f64, n_bins: usize) -> Vec<i64> {
    let mut bins = vec![0i64; n_bins];
    for &x in samples {
        let b = (((x - lo) / (hi - lo) * n_bins as f64).floor() as i64).clamp(0, n_bins as i64 - 1)
            as usize;
        bins[b] += 1;
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::random_vec;
    use alpaka::{AccKind, Args, BufLayout, Device, WorkDiv};

    #[test]
    fn global_atomics_histogram_everywhere() {
        let n = 3000usize;
        let samples = random_vec(n, 70); // values in [0, 10)
        let n_bins = 16usize;
        let want = histogram_ref(&samples, 0.0, 10.0, n_bins);
        let mut kinds = AccKind::native_cpu_all();
        kinds.push(AccKind::sim_k20());
        for kind in kinds {
            let dev = Device::with_workers(kind.clone(), 4);
            let s = dev.alloc_f64(BufLayout::d1(n));
            let b = dev.alloc_i64(BufLayout::d1(n_bins));
            s.upload(&samples).unwrap();
            let wd = dev.suggest_workdiv_1d(n);
            let args = Args::new()
                .buf_f(&s)
                .buf_i(&b)
                .scalar_f(0.0)
                .scalar_f(10.0)
                .scalar_i(n as i64)
                .scalar_i(n_bins as i64);
            dev.launch(&HistogramGlobalAtomics, &wd, &args).unwrap();
            assert_eq!(b.download(), want, "{kind:?}");
        }
    }

    #[test]
    fn shared_histogram_matches_on_threaded_backends() {
        let n = 2000usize;
        let samples = random_vec(n, 71);
        let n_bins = 32usize;
        let want = histogram_ref(&samples, 0.0, 10.0, n_bins);
        for kind in [AccKind::CpuThreads, AccKind::CpuFibers, AccKind::sim_k20()] {
            let dev = Device::with_workers(kind.clone(), 4);
            let s = dev.alloc_f64(BufLayout::d1(n));
            let b = dev.alloc_i64(BufLayout::d1(n_bins));
            s.upload(&samples).unwrap();
            // 8 blocks x 16 threads x 16 elements covers 2048 >= n.
            let wd = WorkDiv::d1(8, 16, 16);
            let args = Args::new()
                .buf_f(&s)
                .buf_i(&b)
                .scalar_f(0.0)
                .scalar_f(10.0)
                .scalar_i(n as i64)
                .scalar_i(n_bins as i64);
            dev.launch(&HistogramShared { bins: n_bins }, &wd, &args)
                .unwrap();
            assert_eq!(b.download(), want, "{kind:?}");
        }
    }

    #[test]
    fn exact_fit_histogram_matches_reference_everywhere() {
        // 8 blocks x 4 threads x 16 elements = 512 samples, exact fit.
        let n = 512usize;
        let samples = random_vec(n, 73);
        let n_bins = 16usize;
        let want = histogram_ref(&samples, 0.0, 10.0, n_bins);
        let mut kinds = AccKind::native_cpu_all();
        kinds.push(AccKind::sim_k20());
        for kind in kinds {
            let dev = Device::with_workers(kind.clone(), 4);
            let s = dev.alloc_f64(BufLayout::d1(n));
            let b = dev.alloc_i64(BufLayout::d1(n_bins));
            s.upload(&samples).unwrap();
            // 32 blocks x 1 thread x 16 elements = 512, exact fit (and
            // 1-thread blocks are legal on every backend, serial included).
            let wd = WorkDiv::d1(32, 1, 16);
            let args = Args::new()
                .buf_f(&s)
                .buf_i(&b)
                .scalar_f(0.0)
                .scalar_f(10.0)
                .scalar_i(n as i64)
                .scalar_i(n_bins as i64);
            dev.launch(&HistogramGlobalExact, &wd, &args).unwrap();
            assert_eq!(b.download(), want, "{kind:?}");
        }
    }

    #[test]
    fn scatter_add_affine_matches_reference_everywhere() {
        let n = 256usize;
        let offset = 7usize;
        let src = random_vec(n, 74);
        let init: Vec<f64> = (0..n + offset).map(|i| i as f64 * 0.5).collect();
        let mut want = init.clone();
        for (i, &x) in src.iter().enumerate() {
            want[i + offset] += x;
        }
        let mut kinds = AccKind::native_cpu_all();
        kinds.push(AccKind::sim_k20());
        for kind in kinds {
            let dev = Device::with_workers(kind.clone(), 4);
            let s = dev.alloc_f64(BufLayout::d1(n));
            let o = dev.alloc_f64(BufLayout::d1(n + offset));
            s.upload(&src).unwrap();
            o.upload(&init).unwrap();
            // 16 blocks x 1 thread x 16 elements = 256, exact fit.
            let wd = WorkDiv::d1(16, 1, 16);
            let args = Args::new().buf_f(&s).buf_f(&o).scalar_i(offset as i64);
            dev.launch(&ScatterAddAffine, &wd, &args).unwrap();
            assert_eq!(o.download(), want, "{kind:?}");
        }
    }

    #[test]
    fn out_of_range_samples_clamp_to_edge_bins() {
        let samples = vec![-5.0, 100.0, 5.0];
        let want = histogram_ref(&samples, 0.0, 10.0, 4);
        assert_eq!(want, vec![1, 0, 1, 1]);
        let dev = Device::new(AccKind::CpuSerial);
        let s = dev.alloc_f64(BufLayout::d1(3));
        let b = dev.alloc_i64(BufLayout::d1(4));
        s.upload(&samples).unwrap();
        let args = Args::new()
            .buf_f(&s)
            .buf_i(&b)
            .scalar_f(0.0)
            .scalar_f(10.0)
            .scalar_i(3)
            .scalar_i(4);
        dev.launch(&HistogramGlobalAtomics, &WorkDiv::d1(3, 1, 1), &args)
            .unwrap();
        assert_eq!(b.download(), want);
    }

    #[test]
    fn shared_version_uses_fewer_global_atomics() {
        use alpaka::{time_launch, LaunchMode};
        let n = 4096usize;
        let n_bins = 32usize;
        let dev = Device::new(AccKind::sim_k20());
        let samples = random_vec(n, 72);
        let run = |shared: bool| {
            let s = dev.alloc_f64(BufLayout::d1(n));
            let b = dev.alloc_i64(BufLayout::d1(n_bins));
            s.upload(&samples).unwrap();
            let wd = WorkDiv::d1(8, 32, 16);
            let args = Args::new()
                .buf_f(&s)
                .buf_i(&b)
                .scalar_f(0.0)
                .scalar_f(10.0)
                .scalar_i(n as i64)
                .scalar_i(n_bins as i64);
            let timed = if shared {
                time_launch(
                    &dev,
                    &HistogramShared { bins: n_bins },
                    &wd,
                    &args,
                    LaunchMode::Exact,
                )
            } else {
                time_launch(&dev, &HistogramGlobalAtomics, &wd, &args, LaunchMode::Exact)
            }
            .unwrap();
            timed.report.unwrap().stats.atomics
        };
        let naive = run(false);
        let privatized = run(true);
        assert!(
            naive > privatized * 4,
            "shared bins must cut atomics: {naive} vs {privatized}"
        );
    }
}
