//! Host reference implementations and workload generators.
//!
//! Every device kernel in this crate has a sequential host reference here;
//! cross-back-end tests compare device results against these. Workloads
//! follow the paper's setup: dense square matrices filled with random
//! values in `[0, 10]` (Section 4.2), seeded for reproducibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for workload generation.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Random vector with entries in `[0, 10)` (the paper's value range).
pub fn random_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(0.0..10.0)).collect()
}

/// Random dense row-major matrix with entries in `[0, 10)`.
pub fn random_matrix(rows: usize, cols: usize, seed: u64) -> Vec<f64> {
    random_vec(rows * cols, seed)
}

/// `y <- alpha * x + y`.
pub fn daxpy_ref(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi.mul_add(alpha, *yi);
    }
}

/// `C <- alpha * A * B + beta * C` on dense row-major matrices:
/// A is m x k, B is k x n, C is m x n.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_ref(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for p in 0..k {
                acc = a[i * k + p].mul_add(b[p * n + j], acc);
            }
            c[i * n + j] = alpha.mul_add(acc, beta * c[i * n + j]);
        }
    }
}

/// Sum of all elements.
pub fn reduce_ref(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// One 5-point Jacobi step on an `rows x cols` grid (boundary copied).
pub fn jacobi_ref(rows: usize, cols: usize, src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), rows * cols);
    assert_eq!(dst.len(), rows * cols);
    dst.copy_from_slice(src);
    for i in 1..rows.saturating_sub(1) {
        for j in 1..cols.saturating_sub(1) {
            dst[i * cols + j] = 0.25
                * (src[(i - 1) * cols + j]
                    + src[(i + 1) * cols + j]
                    + src[i * cols + j - 1]
                    + src[i * cols + j + 1]);
        }
    }
}

/// All-pairs gravitational accelerations with Plummer softening.
/// Positions/masses: `pos = [x0,y0,z0,m0, x1,...]` (AoS, 4 per body);
/// output `acc = [ax0,ay0,az0, ...]` (3 per body).
pub fn nbody_accel_ref(pos: &[f64], acc: &mut [f64], softening2: f64) {
    let n = pos.len() / 4;
    assert_eq!(acc.len(), n * 3);
    for i in 0..n {
        let (xi, yi, zi) = (pos[i * 4], pos[i * 4 + 1], pos[i * 4 + 2]);
        let mut ax = 0.0;
        let mut ay = 0.0;
        let mut az = 0.0;
        for j in 0..n {
            let dx = pos[j * 4] - xi;
            let dy = pos[j * 4 + 1] - yi;
            let dz = pos[j * 4 + 2] - zi;
            let r2 = dx * dx + dy * dy + dz * dz + softening2;
            let inv = 1.0 / (r2 * r2.sqrt());
            let s = pos[j * 4 + 3] * inv;
            ax += dx * s;
            ay += dy * s;
            az += dz * s;
        }
        acc[i * 3] = ax;
        acc[i * 3 + 1] = ay;
        acc[i * 3 + 2] = az;
    }
}

/// Relative Frobenius error between two equally-sized slices.
pub fn rel_err(got: &[f64], want: &[f64]) -> f64 {
    assert_eq!(got.len(), want.len());
    let mut num = 0.0;
    let mut den = 0.0;
    for (g, w) in got.iter().zip(want) {
        num += (g - w) * (g - w);
        den += w * w;
    }
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_in_range() {
        let a = random_matrix(8, 8, 42);
        let b = random_matrix(8, 8, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (0.0..10.0).contains(&v)));
        let c = random_matrix(8, 8, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn dgemm_ref_identity() {
        // A * I = A.
        let m = 4;
        let a = random_matrix(m, m, 1);
        let mut eye = vec![0.0; m * m];
        for i in 0..m {
            eye[i * m + i] = 1.0;
        }
        let mut c = vec![0.0; m * m];
        dgemm_ref(m, m, m, 1.0, &a, &eye, 0.0, &mut c);
        assert!(rel_err(&c, &a) < 1e-14);
    }

    #[test]
    fn dgemm_ref_beta_accumulates() {
        let mut c = vec![1.0; 4];
        let a = vec![0.0; 4];
        let b = vec![0.0; 4];
        dgemm_ref(2, 2, 2, 1.0, &a, &b, 2.0, &mut c);
        assert_eq!(c, vec![2.0; 4]);
    }

    #[test]
    fn jacobi_ref_keeps_boundary() {
        let src: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let mut dst = vec![0.0; 16];
        jacobi_ref(4, 4, &src, &mut dst);
        assert_eq!(dst[0], 0.0);
        assert_eq!(dst[3], 3.0);
        assert_eq!(dst[5], 0.25 * (1.0 + 9.0 + 4.0 + 6.0));
    }

    #[test]
    fn nbody_two_bodies_attract() {
        // Two unit masses on the x axis pull toward each other. A nonzero
        // softening keeps the self-interaction term finite (zero).
        let pos = vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0];
        let mut acc = vec![0.0; 6];
        nbody_accel_ref(&pos, &mut acc, 1e-12);
        assert!(acc[0] > 0.0); // body 0 pulled +x
        assert!(acc[3] < 0.0); // body 1 pulled -x
        assert!((acc[0] + acc[3]).abs() < 1e-12); // Newton's third law
    }

    #[test]
    fn rel_err_basics() {
        assert_eq!(rel_err(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!(rel_err(&[1.1], &[1.0]) > 0.09);
    }
}
