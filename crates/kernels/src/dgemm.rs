//! DGEMM kernels — the paper's Section 4.2 workhorse
//! (`C <- alpha*A*B + beta*C`, A: m x k, B: k x n, C: m x n).
//!
//! Three variants, mirroring the paper's evaluation:
//!
//! * [`DgemmNaive`] — the "native OpenMP style" kernel: a plain triple loop
//!   per output row. Fast enough on CPUs (rows parallel over blocks), awful
//!   on GPUs (no coalescing, no shared-memory reuse) — the Fig. 6 swap.
//! * [`DgemmTiledCuda`] — the "native CUDA style" kernel from the CUDA
//!   programming guide: square thread blocks, one output element per
//!   thread, shared-memory tiles. Great on GPUs, poor on CPUs — the other
//!   half of Fig. 6.
//! * [`DgemmTiled`] — the *single-source hierarchically tiled* kernel of
//!   Fig. 7: a block computes a C tile staged through shared memory, each
//!   thread computes an `e x e` sub-tile of elements held in thread-local
//!   (register-level) storage, with the inner element loop marked
//!   vectorizable. One source, performance-portable (Figs. 8/9).
//!
//! Argument convention (all variants, pitched row-major buffers):
//! * f64 buffers: 0 = A, 1 = B, 2 = C (in/out)
//! * f64 scalars: 0 = alpha, 1 = beta
//! * i64 scalars: 0 = m, 1 = n, 2 = k, 3 = lda, 4 = ldb, 5 = ldc

use alpaka_core::kernel::Kernel;
use alpaka_core::ops::{KernelOps, KernelOpsExt};
use alpaka_core::vec::{div_ceil, Vecn};
use alpaka_core::workdiv::WorkDiv;

/// Shared argument loading.
struct GemmArgs<O: KernelOps> {
    a: O::BufF,
    b: O::BufF,
    c: O::BufF,
    alpha: O::F,
    beta: O::F,
    m: O::I,
    n: O::I,
    k: O::I,
    lda: O::I,
    ldb: O::I,
    ldc: O::I,
}

fn gemm_args<O: KernelOps>(o: &mut O) -> GemmArgs<O> {
    GemmArgs {
        a: o.buf_f(0),
        b: o.buf_f(1),
        c: o.buf_f(2),
        alpha: o.param_f(0),
        beta: o.param_f(1),
        m: o.param_i(0),
        n: o.param_i(1),
        k: o.param_i(2),
        lda: o.param_i(3),
        ldb: o.param_i(4),
        ldc: o.param_i(5),
    }
}

/// Naive triple-loop DGEMM, one (element range of) output row(s) per
/// thread; 1-D launch over `m` rows.
#[derive(Debug, Clone, Copy, Default)]
pub struct DgemmNaive;

impl DgemmNaive {
    /// The work division the paper's OpenMP kernel uses: rows over blocks,
    /// one thread, `v` rows per thread.
    pub fn workdiv(m: usize, v: usize) -> WorkDiv {
        WorkDiv::d1(div_ceil(m, v).max(1), 1, v)
    }
}

impl Kernel for DgemmNaive {
    fn name(&self) -> &str {
        "dgemm_naive"
    }

    fn run<O: KernelOps>(&self, o: &mut O) {
        let g = gemm_args(o);
        let gid = o.global_thread_idx(0);
        let v = o.thread_elem_extent(0);
        let base = o.mul_i(gid, v);
        let zero_i = o.lit_i(0);
        o.for_elements(0, |o, e| {
            let r = o.add_i(base, e);
            let in_m = o.lt_i(r, g.m);
            o.if_(in_m, |o| {
                let a_row = o.mul_i(r, g.lda);
                let c_row = o.mul_i(r, g.ldc);
                o.for_range(zero_i, g.n, |o, j| {
                    let zero_f = o.lit_f(0.0);
                    let sum = o.fold_range_f(zero_i, g.k, zero_f, |o, p, acc| {
                        let ai = o.add_i(a_row, p);
                        let av = o.ld_gf(g.a, ai);
                        let brow = o.mul_i(p, g.ldb);
                        let bi = o.add_i(brow, j);
                        let bv = o.ld_gf(g.b, bi);
                        o.fma_f(av, bv, acc)
                    });
                    let ci = o.add_i(c_row, j);
                    let cv = o.ld_gf(g.c, ci);
                    let scaled_c = o.mul_f(g.beta, cv);
                    let out = o.fma_f(g.alpha, sum, scaled_c);
                    o.st_gf(g.c, ci, out);
                });
            });
        });
    }
}

/// CUDA-programming-guide shared-memory tiling: 2-D `ts x ts` thread
/// blocks, one output element per thread.
#[derive(Debug, Clone, Copy)]
pub struct DgemmTiledCuda {
    /// Tile edge (threads per block dimension).
    pub ts: usize,
}

impl Default for DgemmTiledCuda {
    fn default() -> Self {
        DgemmTiledCuda { ts: 16 }
    }
}

impl DgemmTiledCuda {
    /// Matching 2-D work division for an `m x n` output.
    pub fn workdiv(&self, m: usize, n: usize) -> WorkDiv {
        WorkDiv::d2(
            Vecn([div_ceil(m, self.ts).max(1), div_ceil(n, self.ts).max(1)]),
            Vecn([self.ts, self.ts]),
            Vecn([1, 1]),
        )
    }
}

impl Kernel for DgemmTiledCuda {
    fn name(&self) -> &str {
        "dgemm_tiled_cuda"
    }

    fn run<O: KernelOps>(&self, o: &mut O) {
        let ts = self.ts as i64;
        let g = gemm_args(o);
        let sha = o.shared_f(self.ts * self.ts);
        let shb = o.shared_f(self.ts * self.ts);
        let ts_c = o.lit_i(ts);
        let ty = o.thread_idx(0);
        let tx = o.thread_idx(1);
        let by = o.block_idx(0);
        let bx = o.block_idx(1);
        let row = {
            let t = o.mul_i(by, ts_c);
            o.add_i(t, ty)
        };
        let col = {
            let t = o.mul_i(bx, ts_c);
            o.add_i(t, tx)
        };
        let zero_f = o.lit_f(0.0);
        // ntiles = ceil(k / ts)
        let ts_m1 = o.lit_i(ts - 1);
        let kp = o.add_i(g.k, ts_m1);
        let ntiles = o.div_i(kp, ts_c);
        let zero_i = o.lit_i(0);
        let sh_idx = {
            let t = o.mul_i(ty, ts_c);
            o.add_i(t, tx)
        };
        let sum = o.fold_range_f(zero_i, ntiles, zero_f, |o, t, acc_t| {
            let koff = o.mul_i(t, ts_c);
            // Load A[row, koff+tx] (guarded, zero-padded).
            let a_col = o.add_i(koff, tx);
            let zf = o.lit_f(0.0);
            let tmp_a = o.var_f(zf);
            let rm = o.lt_i(row, g.m);
            let ck = o.lt_i(a_col, g.k);
            let ok_a = o.and_b(rm, ck);
            o.if_(ok_a, |o| {
                let off = o.mul_i(row, g.lda);
                let ai = o.add_i(off, a_col);
                let av = o.ld_gf(g.a, ai);
                o.vset_f(tmp_a, av);
            });
            let av = o.vget_f(tmp_a);
            o.st_sf(sha, sh_idx, av);
            // Load B[koff+ty, col] (guarded).
            let b_row = o.add_i(koff, ty);
            let zf2 = o.lit_f(0.0);
            let tmp_b = o.var_f(zf2);
            let rk = o.lt_i(b_row, g.k);
            let cn = o.lt_i(col, g.n);
            let ok_b = o.and_b(rk, cn);
            o.if_(ok_b, |o| {
                let off = o.mul_i(b_row, g.ldb);
                let bi = o.add_i(off, col);
                let bv = o.ld_gf(g.b, bi);
                o.vset_f(tmp_b, bv);
            });
            let bv = o.vget_f(tmp_b);
            o.st_sf(shb, sh_idx, bv);
            o.sync_block_threads();
            // Multiply the tiles.
            let zero_i2 = o.lit_i(0);
            let ts_c2 = o.lit_i(ts);
            let acc_next = o.fold_range_f(zero_i2, ts_c2, acc_t, |o, p, acc| {
                let arow = o.mul_i(ty, ts_c2);
                let ai = o.add_i(arow, p);
                let av = o.ld_sf(sha, ai);
                let brow = o.mul_i(p, ts_c2);
                let bi = o.add_i(brow, tx);
                let bv = o.ld_sf(shb, bi);
                o.fma_f(av, bv, acc)
            });
            o.sync_block_threads();
            acc_next
        });
        // Write back (guarded).
        let rm = o.lt_i(row, g.m);
        let cn = o.lt_i(col, g.n);
        let ok = o.and_b(rm, cn);
        o.if_(ok, |o| {
            let off = o.mul_i(row, g.ldc);
            let ci = o.add_i(off, col);
            let cv = o.ld_gf(g.c, ci);
            let scaled_c = o.mul_f(g.beta, cv);
            let out = o.fma_f(g.alpha, sum, scaled_c);
            o.st_gf(g.c, ci, out);
        });
    }
}

/// The single-source hierarchically tiled DGEMM (Fig. 7): `t x t` threads
/// per block, `e x e` elements per thread, block tile edge `t*e`, staged
/// through shared memory, per-thread sub-tile in thread-local storage.
///
/// On GPUs use small `e` (1–4) with `t = 16`; on CPUs use `t = 1` with a
/// large `e` (16–128, i.e. 256–16k elements per thread — the Fig. 8
/// configurations).
#[derive(Debug, Clone, Copy)]
pub struct DgemmTiled {
    /// Threads per block edge.
    pub t: usize,
    /// Elements per thread edge.
    pub e: usize,
}

impl Default for DgemmTiled {
    fn default() -> Self {
        DgemmTiled { t: 16, e: 2 }
    }
}

impl DgemmTiled {
    /// Block tile edge.
    pub fn tile(&self) -> usize {
        self.t * self.e
    }

    /// Elements per thread (the paper's Fig. 8 series label).
    pub fn elems_per_thread(&self) -> usize {
        self.e * self.e
    }

    /// Shared memory bytes this configuration needs.
    pub fn shared_bytes(&self) -> usize {
        2 * self.tile() * self.tile() * 8
    }

    /// Matching 2-D work division for an `m x n` output.
    pub fn workdiv(&self, m: usize, n: usize) -> WorkDiv {
        let te = self.tile();
        WorkDiv::d2(
            Vecn([div_ceil(m, te).max(1), div_ceil(n, te).max(1)]),
            Vecn([self.t, self.t]),
            Vecn([self.e, self.e]),
        )
    }
}

impl Kernel for DgemmTiled {
    fn name(&self) -> &str {
        "dgemm_tiled"
    }

    fn run<O: KernelOps>(&self, o: &mut O) {
        let t = self.t as i64;
        let e = self.e as i64;
        let te = t * e;
        let g = gemm_args(o);
        let sha = o.shared_f((te * te) as usize);
        let shb = o.shared_f((te * te) as usize);
        let acc = o.local_f((e * e) as usize);
        let t_c = o.lit_i(t);
        let e_c = o.lit_i(e);
        let te_c = o.lit_i(te);
        let ty = o.thread_idx(0);
        let tx = o.thread_idx(1);
        let by = o.block_idx(0);
        let bx = o.block_idx(1);
        let row0 = o.mul_i(by, te_c);
        let col0 = o.mul_i(bx, te_c);
        let zero_i = o.lit_i(0);
        // Zero the per-thread accumulator sub-tile.
        let ee = o.lit_i(e * e);
        o.for_range(zero_i, ee, |o, q| {
            let zf = o.lit_f(0.0);
            o.st_lf(acc, q, zf);
        });
        // ntiles = ceil(k / te)
        let te_m1 = o.lit_i(te - 1);
        let kp = o.add_i(g.k, te_m1);
        let ntiles = o.div_i(kp, te_c);
        o.for_range(zero_i, ntiles, |o, kt| {
            let koff = o.mul_i(kt, te_c);
            // Each thread loads its e x e pattern of both tiles,
            // strided by t so warp lanes stay coalesced.
            o.for_range(zero_i, e_c, |o, i| {
                let it = o.mul_i(i, t_c);
                let lr = o.add_i(ty, it);
                o.for_range(zero_i, e_c, |o, j| {
                    let jt = o.mul_i(j, t_c);
                    let lc = o.add_i(tx, jt);
                    let lidx = {
                        let r = o.mul_i(lr, te_c);
                        o.add_i(r, lc)
                    };
                    // A tile element (row0+lr, koff+lc), zero-padded.
                    let gr = o.add_i(row0, lr);
                    let gc = o.add_i(koff, lc);
                    let zf = o.lit_f(0.0);
                    let tmp = o.var_f(zf);
                    let rm = o.lt_i(gr, g.m);
                    let ck = o.lt_i(gc, g.k);
                    let ok = o.and_b(rm, ck);
                    o.if_(ok, |o| {
                        let off = o.mul_i(gr, g.lda);
                        let ai = o.add_i(off, gc);
                        let av = o.ld_gf(g.a, ai);
                        o.vset_f(tmp, av);
                    });
                    let av = o.vget_f(tmp);
                    o.st_sf(sha, lidx, av);
                    // B tile element (koff+lr, col0+lc), zero-padded.
                    let gr2 = o.add_i(koff, lr);
                    let gc2 = o.add_i(col0, lc);
                    let zf2 = o.lit_f(0.0);
                    let tmp2 = o.var_f(zf2);
                    let rk = o.lt_i(gr2, g.k);
                    let cn = o.lt_i(gc2, g.n);
                    let ok2 = o.and_b(rk, cn);
                    o.if_(ok2, |o| {
                        let off = o.mul_i(gr2, g.ldb);
                        let bi = o.add_i(off, gc2);
                        let bv = o.ld_gf(g.b, bi);
                        o.vset_f(tmp2, bv);
                    });
                    let bv = o.vget_f(tmp2);
                    o.st_sf(shb, lidx, bv);
                });
            });
            o.sync_block_threads();
            // acc[i][j] += sum_p shA[ty + i*t][p] * shB[p][tx + j*t]
            o.for_range(zero_i, te_c, |o, p| {
                o.for_range(zero_i, e_c, |o, i| {
                    let it = o.mul_i(i, t_c);
                    let lr = o.add_i(ty, it);
                    let ai = {
                        let r = o.mul_i(lr, te_c);
                        o.add_i(r, p)
                    };
                    let av = o.ld_sf(sha, ai);
                    let ie = o.mul_i(i, e_c);
                    let brow = o.mul_i(p, te_c);
                    // Inner element loop: unit stride for t == 1 (the CPU
                    // mapping) — the vectorization hook of Section 3.2.4.
                    o.for_elements(1, |o, j| {
                        let jt = o.mul_i(j, t_c);
                        let lc = o.add_i(tx, jt);
                        let bi = o.add_i(brow, lc);
                        let bv = o.ld_sf(shb, bi);
                        let q = o.add_i(ie, j);
                        let cur = o.ld_lf(acc, q);
                        let nx = o.fma_f(av, bv, cur);
                        o.st_lf(acc, q, nx);
                    });
                });
            });
            o.sync_block_threads();
        });
        // Write back the e x e sub-tile (guarded).
        o.for_range(zero_i, e_c, |o, i| {
            let it = o.mul_i(i, t_c);
            let lr = o.add_i(ty, it);
            let gr = o.add_i(row0, lr);
            let ie = o.mul_i(i, e_c);
            o.for_elements(1, |o, j| {
                let jt = o.mul_i(j, t_c);
                let lc = o.add_i(tx, jt);
                let gc = o.add_i(col0, lc);
                let rm = o.lt_i(gr, g.m);
                let cn = o.lt_i(gc, g.n);
                let ok = o.and_b(rm, cn);
                o.if_(ok, |o| {
                    let off = o.mul_i(gr, g.ldc);
                    let ci = o.add_i(off, gc);
                    let cv = o.ld_gf(g.c, ci);
                    let q = o.add_i(ie, j);
                    let sum = o.ld_lf(acc, q);
                    let scaled_c = o.mul_f(g.beta, cv);
                    let out = o.fma_f(g.alpha, sum, scaled_c);
                    o.st_gf(g.c, ci, out);
                });
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{dgemm_ref, random_matrix, rel_err};
    use alpaka::{AccKind, Args, BufLayout, Device};

    /// Run any DGEMM kernel on any device and return dense C.
    fn run_gemm<K: Kernel + Clone + Send + 'static>(
        kind: AccKind,
        kernel: &K,
        wd: &WorkDiv,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        beta: f64,
    ) -> Vec<f64> {
        let dev = Device::with_workers(kind, 4);
        let a = dev.alloc_f64(BufLayout::d2(m, k, 8));
        let b = dev.alloc_f64(BufLayout::d2(k, n, 8));
        let c = dev.alloc_f64(BufLayout::d2(m, n, 8));
        a.upload(&random_matrix(m, k, 11)).unwrap();
        b.upload(&random_matrix(k, n, 12)).unwrap();
        c.upload(&random_matrix(m, n, 13)).unwrap();
        let (lda, ldb, ldc) = (
            a.layout().pitch as i64,
            b.layout().pitch as i64,
            c.layout().pitch as i64,
        );
        let args = Args::new()
            .buf_f(&a)
            .buf_f(&b)
            .buf_f(&c)
            .scalar_f(alpha)
            .scalar_f(beta)
            .scalar_i(m as i64)
            .scalar_i(n as i64)
            .scalar_i(k as i64)
            .scalar_i(lda)
            .scalar_i(ldb)
            .scalar_i(ldc);
        dev.launch(kernel, wd, &args).unwrap();
        c.download()
    }

    fn reference(m: usize, n: usize, k: usize, alpha: f64, beta: f64) -> Vec<f64> {
        let a = random_matrix(m, k, 11);
        let b = random_matrix(k, n, 12);
        let mut c = random_matrix(m, n, 13);
        dgemm_ref(m, n, k, alpha, &a, &b, beta, &mut c);
        c
    }

    #[test]
    fn naive_matches_reference_on_cpu_backends() {
        let (m, n, k) = (33, 29, 17); // deliberately awkward sizes
        let want = reference(m, n, k, 1.5, 0.5);
        for kind in [AccKind::CpuSerial, AccKind::CpuBlocks] {
            let got = run_gemm(
                kind.clone(),
                &DgemmNaive,
                &DgemmNaive::workdiv(m, 4),
                m,
                n,
                k,
                1.5,
                0.5,
            );
            assert!(rel_err(&got, &want) < 1e-13, "{kind:?}");
        }
    }

    #[test]
    fn naive_matches_reference_on_sim_gpu() {
        let (m, n, k) = (24, 20, 16);
        let want = reference(m, n, k, 1.0, 0.0);
        let got = run_gemm(
            AccKind::sim_k20(),
            &DgemmNaive,
            &DgemmNaive::workdiv(m, 1),
            m,
            n,
            k,
            1.0,
            0.0,
        );
        assert!(rel_err(&got, &want) < 1e-13);
    }

    #[test]
    fn tiled_cuda_matches_reference_everywhere() {
        let (m, n, k) = (40, 36, 28); // not multiples of ts=8
        let kern = DgemmTiledCuda { ts: 8 };
        let wd = kern.workdiv(m, n);
        let want = reference(m, n, k, 2.0, 1.0);
        for kind in [
            AccKind::CpuThreads,
            AccKind::CpuBlockThreads,
            AccKind::CpuFibers,
            AccKind::sim_k20(),
        ] {
            let got = run_gemm(kind.clone(), &kern, &wd, m, n, k, 2.0, 1.0);
            assert!(rel_err(&got, &want) < 1e-13, "{kind:?}");
        }
    }

    #[test]
    fn tiled_single_source_gpu_config() {
        let (m, n, k) = (40, 36, 28);
        let kern = DgemmTiled { t: 8, e: 2 };
        let wd = kern.workdiv(m, n);
        let want = reference(m, n, k, 1.0, 0.25);
        for kind in [AccKind::CpuThreads, AccKind::sim_k20()] {
            let got = run_gemm(kind.clone(), &kern, &wd, m, n, k, 1.0, 0.25);
            assert!(rel_err(&got, &want) < 1e-13, "{kind:?}");
        }
    }

    #[test]
    fn tiled_single_source_cpu_config() {
        // t=1: single-thread blocks with a big element sub-tile, runnable
        // on the block-pool back-end and the simulated CPU.
        let (m, n, k) = (50, 46, 34);
        let kern = DgemmTiled { t: 1, e: 16 };
        let wd = kern.workdiv(m, n);
        let want = reference(m, n, k, 1.0, 0.0);
        for kind in [
            AccKind::CpuSerial,
            AccKind::CpuBlocks,
            AccKind::sim_e5_2630v3(),
        ] {
            let got = run_gemm(kind.clone(), &kern, &wd, m, n, k, 1.0, 0.0);
            assert!(rel_err(&got, &want) < 1e-13, "{kind:?}");
        }
    }

    #[test]
    fn all_variants_agree_with_each_other() {
        let (m, n, k) = (32, 32, 32);
        let naive = run_gemm(
            AccKind::CpuSerial,
            &DgemmNaive,
            &DgemmNaive::workdiv(m, 2),
            m,
            n,
            k,
            1.0,
            0.0,
        );
        let cuda = run_gemm(
            AccKind::sim_k20(),
            &DgemmTiledCuda { ts: 8 },
            &DgemmTiledCuda { ts: 8 }.workdiv(m, n),
            m,
            n,
            k,
            1.0,
            0.0,
        );
        let tiled = run_gemm(
            AccKind::CpuBlocks,
            &DgemmTiled { t: 1, e: 8 },
            &DgemmTiled { t: 1, e: 8 }.workdiv(m, n),
            m,
            n,
            k,
            1.0,
            0.0,
        );
        assert!(rel_err(&naive, &cuda) < 1e-13);
        assert!(rel_err(&naive, &tiled) < 1e-13);
    }

    #[test]
    fn workdiv_helpers_cover_output() {
        let kern = DgemmTiled { t: 4, e: 4 };
        let wd = kern.workdiv(100, 60);
        assert_eq!(wd.dim, 2);
        // 100/16 -> 7 blocks, 60/16 -> 4 blocks.
        assert_eq!(wd.blocks, [1, 7, 4]);
        assert_eq!(wd.threads, [1, 4, 4]);
        assert_eq!(wd.elems, [1, 4, 4]);
        assert_eq!(kern.shared_bytes(), 2 * 16 * 16 * 8);
        assert_eq!(kern.elems_per_thread(), 16);
    }
}
