//! Dot product: fused element-level multiply + block-level tree reduction +
//! one atomic per block — all three reduction mechanisms in one kernel.
//!
//! Arguments: f64 buffers 0 = x, 1 = y, 2 = result (1 cell);
//! i64 scalar 0 = n. Block size must be a power of two.

use alpaka_core::kernel::Kernel;
use alpaka_core::ops::KernelOps;

/// `result[0] += sum_i x[i] * y[i]` over this launch's index space.
#[derive(Debug, Clone, Copy)]
pub struct DotKernel {
    /// Threads per block (power of two; matches the work division).
    pub block: usize,
}

impl Kernel for DotKernel {
    fn name(&self) -> &str {
        "dot"
    }

    fn run<O: KernelOps>(&self, o: &mut O) {
        assert!(self.block.is_power_of_two());
        let x = o.buf_f(0);
        let y = o.buf_f(1);
        let result = o.buf_f(2);
        let n = o.param_i(0);
        let sh = o.shared_f(self.block);
        let tid = o.thread_idx(0);
        let bid = o.block_idx(0);
        let bdim = o.block_thread_extent(0);
        let v = o.thread_elem_extent(0);
        // Element level: each thread accumulates its contiguous slice.
        let gid = {
            let t = o.mul_i(bid, bdim);
            o.add_i(t, tid)
        };
        let base = o.mul_i(gid, v);
        let zf = o.lit_f(0.0);
        let part = o.fold_elements_f(0, zf, |o, e, acc| {
            let i = o.add_i(base, e);
            let c = o.lt_i(i, n);
            let z = o.lit_f(0.0);
            let term = o.var_f(z);
            o.if_(c, |o| {
                let xv = o.ld_gf(x, i);
                let yv = o.ld_gf(y, i);
                let p = o.mul_f(xv, yv);
                o.vset_f(term, p);
            });
            let t = o.vget_f(term);
            o.add_f(acc, t)
        });
        o.st_sf(sh, tid, part);
        o.sync_block_threads();
        // Block tree reduction.
        let two = o.lit_i(2);
        let s0 = o.div_i(bdim, two);
        let s = o.var_i(s0);
        o.while_(
            |o| {
                let sv = o.vget_i(s);
                let z = o.lit_i(0);
                o.gt_i(sv, z)
            },
            |o| {
                let sv = o.vget_i(s);
                let c = o.lt_i(tid, sv);
                o.if_(c, |o| {
                    let j = o.add_i(tid, sv);
                    let a = o.ld_sf(sh, tid);
                    let b = o.ld_sf(sh, j);
                    let sum = o.add_f(a, b);
                    o.st_sf(sh, tid, sum);
                });
                o.sync_block_threads();
                let two = o.lit_i(2);
                let nx = o.div_i(sv, two);
                o.vset_i(s, nx);
            },
        );
        // One atomic per block.
        let z = o.lit_i(0);
        let is0 = o.eq_i(tid, z);
        o.if_(is0, |o| {
            let z2 = o.lit_i(0);
            let total = o.ld_sf(sh, z2);
            let _ = o.atomic_add_gf(result, z2, total);
        });
    }
}

/// Host reference.
pub fn dot_ref(x: &[f64], y: &[f64]) -> f64 {
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::random_vec;
    use alpaka::{AccKind, Args, BufLayout, Device, WorkDiv};
    use alpaka_core::vec::div_ceil;

    #[test]
    fn dot_matches_reference_on_threaded_backends() {
        let n = 5000usize;
        let x = random_vec(n, 90);
        let y = random_vec(n, 91);
        let want = dot_ref(&x, &y);
        let block = 64usize;
        let v = 4usize;
        let blocks = div_ceil(n, block * v);
        for kind in [
            AccKind::CpuThreads,
            AccKind::CpuBlockThreads,
            AccKind::CpuFibers,
            AccKind::sim_k20(),
        ] {
            let dev = Device::with_workers(kind.clone(), 4);
            let xb = dev.alloc_f64(BufLayout::d1(n));
            let yb = dev.alloc_f64(BufLayout::d1(n));
            let rb = dev.alloc_f64(BufLayout::d1(1));
            xb.upload(&x).unwrap();
            yb.upload(&y).unwrap();
            let wd = WorkDiv::d1(blocks, block, v);
            let args = Args::new()
                .buf_f(&xb)
                .buf_f(&yb)
                .buf_f(&rb)
                .scalar_i(n as i64);
            dev.launch(&DotKernel { block }, &wd, &args).unwrap();
            let got = rb.download()[0];
            assert!(
                (got - want).abs() / want.abs() < 1e-12,
                "{kind:?}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn orthogonal_vectors_dot_to_zero() {
        let n = 128usize;
        let mut x = vec![0.0; n];
        let mut y = vec![0.0; n];
        for i in 0..n {
            if i % 2 == 0 {
                x[i] = 1.0;
            } else {
                y[i] = 1.0;
            }
        }
        let dev = Device::new(AccKind::sim_k20());
        let xb = dev.alloc_f64(BufLayout::d1(n));
        let yb = dev.alloc_f64(BufLayout::d1(n));
        let rb = dev.alloc_f64(BufLayout::d1(1));
        xb.upload(&x).unwrap();
        yb.upload(&y).unwrap();
        let args = Args::new()
            .buf_f(&xb)
            .buf_f(&yb)
            .buf_f(&rb)
            .scalar_i(n as i64);
        dev.launch(&DotKernel { block: 32 }, &WorkDiv::d1(2, 32, 2), &args)
            .unwrap();
        assert_eq!(rb.download()[0], 0.0);
    }
}
