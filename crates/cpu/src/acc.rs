//! The native CPU accelerators: five different mappings of the abstract
//! grid/block/thread/element hierarchy onto host hardware (Section 3.3 and
//! Table 2 of the paper).
//!
//! | Accelerator        | Alpaka analogue        | blocks      | block threads |
//! |--------------------|------------------------|-------------|----------------|
//! | `Serial`           | `AccCpuSerial`         | sequential  | collapsed (1)  |
//! | `Blocks`           | `AccCpuOmp2Blocks`     | worker pool | collapsed (1)  |
//! | `Threads`          | `AccCpuThreads`        | sequential  | OS threads + barrier (spawned per block) |
//! | `BlockThreads`     | `AccCpuOmp2Threads`    | sequential  | persistent thread team + barrier |
//! | `Fibers`           | `AccCpuFibers`         | sequential  | cooperative fibers, one at a time |

use std::sync::Arc;

use alpaka_core::acc::{AccCaps, DeviceKind};
use alpaka_core::buffer::{BufLayout, HostBuf};
use alpaka_core::error::{Error, Result};
use alpaka_core::kernel::Kernel;
use alpaka_core::vec::Vecn;
use alpaka_core::workdiv::WorkDiv;

use crate::exec::{run_thread, CpuArgs, LaunchGeometry, ResolvedArgs, SharedBlock};
use crate::pool::{panic_message, Pool};
use crate::sync::{BarrierSync, FiberSync, NoopSync};

/// Which CPU accelerator strategy a device uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuAccKind {
    Serial,
    Blocks,
    Threads,
    BlockThreads,
    Fibers,
}

impl CpuAccKind {
    pub const ALL: [CpuAccKind; 5] = [
        CpuAccKind::Serial,
        CpuAccKind::Blocks,
        CpuAccKind::Threads,
        CpuAccKind::BlockThreads,
        CpuAccKind::Fibers,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            CpuAccKind::Serial => "AccCpuSerial",
            CpuAccKind::Blocks => "AccCpuBlocks",
            CpuAccKind::Threads => "AccCpuThreads",
            CpuAccKind::BlockThreads => "AccCpuBlockThreads",
            CpuAccKind::Fibers => "AccCpuFibers",
        }
    }
}

/// A host device running one accelerator strategy. Cloning shares the
/// worker pool.
#[derive(Clone)]
pub struct CpuDevice {
    kind: CpuAccKind,
    workers: usize,
    pool: Option<Arc<Pool>>,
}

impl CpuDevice {
    /// Device with one worker per available hardware thread.
    pub fn new(kind: CpuAccKind) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_workers(kind, workers)
    }

    /// Device with an explicit worker count (block-parallel kinds only use
    /// it for the pool; the others for capability reporting).
    pub fn with_workers(kind: CpuAccKind, workers: usize) -> Self {
        let workers = workers.max(1);
        let pool = match kind {
            CpuAccKind::Blocks => Some(Arc::new(Pool::new(workers))),
            _ => None,
        };
        CpuDevice {
            kind,
            workers,
            pool,
        }
    }

    pub fn kind(&self) -> CpuAccKind {
        self.kind
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Capability descriptor of this accelerator.
    pub fn caps(&self) -> AccCaps {
        let single = matches!(self.kind, CpuAccKind::Serial | CpuAccKind::Blocks);
        AccCaps {
            name: self.kind.name().into(),
            kind: DeviceKind::Cpu,
            max_threads_per_block: if single { 1 } else { 1024 },
            requires_single_thread_blocks: single,
            warp_width: 1,
            shared_mem_per_block: 1 << 20,
            concurrent_blocks: match self.kind {
                CpuAccKind::Blocks => self.workers,
                _ => 1,
            },
            supports_async_queues: true,
        }
    }

    /// Allocate a zeroed f64 buffer on this device (host memory).
    pub fn alloc_f64(&self, layout: BufLayout) -> HostBuf<f64> {
        HostBuf::alloc(layout)
    }

    /// Allocate a zeroed i64 buffer on this device (host memory).
    pub fn alloc_i64(&self, layout: BufLayout) -> HostBuf<i64> {
        HostBuf::alloc(layout)
    }

    /// Execute `kernel` over the whole grid synchronously (the queue types
    /// build on this).
    pub fn launch<K: Kernel + ?Sized>(
        &self,
        kernel: &K,
        wd: &WorkDiv,
        args: &CpuArgs,
    ) -> Result<()> {
        wd.validate(&self.caps())?;
        let geo = LaunchGeometry::from_workdiv(wd);
        let resolved = args.resolve();
        let fault = |msg: String| Error::KernelFault(format!("{}: {msg}", kernel.name()).into());
        match self.kind {
            CpuAccKind::Serial => {
                run_serial(kernel, &geo, &resolved).map_err(fault)?;
            }
            CpuAccKind::Blocks => {
                let pool = self.pool.as_ref().expect("Blocks device owns a pool");
                run_blocks(pool, kernel, &geo, &resolved).map_err(fault)?;
            }
            CpuAccKind::Threads => {
                run_threads(kernel, &geo, &resolved).map_err(fault)?;
            }
            CpuAccKind::BlockThreads => {
                run_block_threads(kernel, &geo, &resolved).map_err(fault)?;
            }
            CpuAccKind::Fibers => {
                run_fibers(kernel, &geo, &resolved).map_err(fault)?;
            }
        }
        Ok(())
    }
}

impl core::fmt::Debug for CpuDevice {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "CpuDevice({}, workers={})",
            self.kind.name(),
            self.workers
        )
    }
}

fn block_coords(geo: &LaunchGeometry, lin: usize) -> [usize; 3] {
    let ext = Vecn([
        geo.grid[0] as usize,
        geo.grid[1] as usize,
        geo.grid[2] as usize,
    ]);
    ext.delinearize(lin).0
}

fn thread_coords(geo: &LaunchGeometry, lin: usize) -> [usize; 3] {
    let ext = Vecn([
        geo.block[0] as usize,
        geo.block[1] as usize,
        geo.block[2] as usize,
    ]);
    ext.delinearize(lin).0
}

fn block_count(geo: &LaunchGeometry) -> usize {
    (geo.grid[0] * geo.grid[1] * geo.grid[2]) as usize
}

fn threads_per_block(geo: &LaunchGeometry) -> usize {
    (geo.block[0] * geo.block[1] * geo.block[2]) as usize
}

fn catching(f: impl FnOnce()) -> std::result::Result<(), String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(panic_message)
}

fn run_serial<K: Kernel + ?Sized>(
    kernel: &K,
    geo: &LaunchGeometry,
    args: &ResolvedArgs,
) -> std::result::Result<(), String> {
    let shared = SharedBlock::new();
    catching(|| {
        for b in 0..block_count(geo) {
            if b > 0 {
                shared.reset();
            }
            run_thread(
                kernel,
                geo,
                block_coords(geo, b),
                [0, 0, 0],
                args,
                &shared,
                &NoopSync,
            );
        }
    })
}

fn run_blocks<K: Kernel + ?Sized>(
    pool: &Pool,
    kernel: &K,
    geo: &LaunchGeometry,
    args: &ResolvedArgs,
) -> std::result::Result<(), String> {
    pool.run_indexed(block_count(geo), |b| {
        let shared = SharedBlock::new();
        run_thread(
            kernel,
            geo,
            block_coords(geo, b),
            [0, 0, 0],
            args,
            &shared,
            &NoopSync,
        );
    })
}

fn run_threads<K: Kernel + ?Sized>(
    kernel: &K,
    geo: &LaunchGeometry,
    args: &ResolvedArgs,
) -> std::result::Result<(), String> {
    let t = threads_per_block(geo);
    let mut first_err: Option<String> = None;
    for b in 0..block_count(geo) {
        let bidx = block_coords(geo, b);
        let shared = SharedBlock::new();
        let sync = BarrierSync::new(t);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(t);
            for tid in 0..t {
                let shared = &shared;
                let sync = &sync;
                handles.push(scope.spawn(move || {
                    catching(|| {
                        run_thread(
                            kernel,
                            geo,
                            bidx,
                            thread_coords(geo, tid),
                            args,
                            shared,
                            sync,
                        )
                    })
                }));
            }
            for h in handles {
                if let Err(msg) = h.join().unwrap_or_else(|p| Err(panic_message(p))) {
                    if first_err.is_none() {
                        first_err = Some(msg);
                    }
                }
            }
        });
        if let Some(msg) = first_err {
            return Err(msg);
        }
    }
    Ok(())
}

fn run_block_threads<K: Kernel + ?Sized>(
    kernel: &K,
    geo: &LaunchGeometry,
    args: &ResolvedArgs,
) -> std::result::Result<(), String> {
    let t = threads_per_block(geo);
    let blocks = block_count(geo);
    let shared = SharedBlock::new();
    let sync = BarrierSync::new(t);
    // Separate barrier for inter-block orchestration so a kernel panic in
    // one member surfaces instead of deadlocking: members that panic stop
    // participating, which the barrier would wait for — so we keep the
    // whole team's blocks loop inside the catch.
    let team_barrier = std::sync::Barrier::new(t);
    let mut first_err: Option<String> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(t);
        for tid in 0..t {
            let shared = &shared;
            let sync = &sync;
            let team_barrier = &team_barrier;
            handles.push(scope.spawn(move || {
                catching(|| {
                    let tcoord = thread_coords(geo, tid);
                    for b in 0..blocks {
                        run_thread(
                            kernel,
                            geo,
                            block_coords(geo, b),
                            tcoord,
                            args,
                            shared,
                            sync,
                        );
                        let r = team_barrier.wait();
                        if r.is_leader() {
                            shared.reset();
                        }
                        team_barrier.wait();
                    }
                })
            }));
        }
        for h in handles {
            if let Err(msg) = h.join().unwrap_or_else(|p| Err(panic_message(p))) {
                if first_err.is_none() {
                    first_err = Some(msg);
                }
            }
        }
    });
    match first_err {
        Some(msg) => Err(msg),
        None => Ok(()),
    }
}

fn run_fibers<K: Kernel + ?Sized>(
    kernel: &K,
    geo: &LaunchGeometry,
    args: &ResolvedArgs,
) -> std::result::Result<(), String> {
    let t = threads_per_block(geo);
    for b in 0..block_count(geo) {
        let bidx = block_coords(geo, b);
        let shared = SharedBlock::new();
        let sync = FiberSync::new(t);
        let mut first_err: Option<String> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(t);
            for tid in 0..t {
                let shared = &shared;
                let sync = &sync;
                handles.push(scope.spawn(move || {
                    sync.enter(tid);
                    let r = catching(|| {
                        run_thread(
                            kernel,
                            geo,
                            bidx,
                            thread_coords(geo, tid),
                            args,
                            shared,
                            sync,
                        )
                    });
                    sync.exit(tid);
                    r
                }));
            }
            for h in handles {
                if let Err(msg) = h.join().unwrap_or_else(|p| Err(panic_message(p))) {
                    if first_err.is_none() {
                        first_err = Some(msg);
                    }
                }
            }
        });
        if let Some(msg) = first_err {
            return Err(msg);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpaka_core::ops::{KernelOps, KernelOpsExt};
    use alpaka_core::workdiv::{predefined, PredefAcc};

    /// `y[i] = a*x[i] + y[i]` with element loop and tail guard.
    struct Daxpy;
    impl Kernel for Daxpy {
        fn name(&self) -> &str {
            "daxpy"
        }
        fn run<O: KernelOps>(&self, o: &mut O) {
            let x = o.buf_f(0);
            let y = o.buf_f(1);
            let a = o.param_f(0);
            let n = o.param_i(0);
            let gid = o.global_thread_idx(0);
            let v = o.thread_elem_extent(0);
            let base = o.mul_i(gid, v);
            o.for_elements(0, |o, e| {
                let i = o.add_i(base, e);
                let c = o.lt_i(i, n);
                o.if_(c, |o| {
                    let xv = o.ld_gf(x, i);
                    let yv = o.ld_gf(y, i);
                    let r = o.fma_f(xv, a, yv);
                    o.st_gf(y, i, r);
                });
            });
        }
    }

    fn daxpy_on(kind: CpuAccKind, wd: WorkDiv, n: usize) {
        let dev = CpuDevice::with_workers(kind, 4);
        let x = HostBuf::from_vec((0..n).map(|i| i as f64).collect());
        let y = HostBuf::from_vec(vec![1.0; n]);
        let args = CpuArgs::new()
            .buf_f(&x)
            .buf_f(&y)
            .scalar_f(2.0)
            .scalar_i(n as i64);
        dev.launch(&Daxpy, &wd, &args).unwrap();
        for i in 0..n {
            assert_eq!(y.as_slice()[i], 2.0 * i as f64 + 1.0, "i={i} on {kind:?}");
        }
    }

    #[test]
    fn daxpy_on_serial() {
        daxpy_on(
            CpuAccKind::Serial,
            predefined(PredefAcc::CpuSerial, 1000, 1, 8),
            1000,
        );
    }

    #[test]
    fn daxpy_on_blocks_pool() {
        daxpy_on(
            CpuAccKind::Blocks,
            predefined(PredefAcc::CpuOmpBlock, 1000, 1, 16),
            1000,
        );
    }

    #[test]
    fn daxpy_on_threads() {
        daxpy_on(CpuAccKind::Threads, WorkDiv::d1(4, 8, 8), 250);
    }

    #[test]
    fn daxpy_on_block_threads() {
        daxpy_on(CpuAccKind::BlockThreads, WorkDiv::d1(4, 8, 8), 250);
    }

    #[test]
    fn daxpy_on_fibers() {
        daxpy_on(CpuAccKind::Fibers, WorkDiv::d1(4, 4, 16), 250);
    }

    #[test]
    fn serial_rejects_multithread_blocks() {
        let dev = CpuDevice::new(CpuAccKind::Serial);
        let err = dev
            .launch(&Daxpy, &WorkDiv::d1(4, 2, 1), &CpuArgs::new())
            .unwrap_err();
        assert!(matches!(err, Error::InvalidWorkDiv(_)));
    }

    /// Tree reduction in shared memory — exercises barriers hard.
    struct BlockReduce;
    impl Kernel for BlockReduce {
        fn name(&self) -> &str {
            "block_reduce"
        }
        fn run<O: KernelOps>(&self, o: &mut O) {
            let input = o.buf_f(0);
            let out = o.buf_f(1);
            let n = o.param_i(0);
            let sh = o.shared_f(64);
            let tid = o.thread_idx(0);
            let bdim = o.block_thread_extent(0);
            let bid = o.block_idx(0);
            let g = o.mul_i(bid, bdim);
            let gid = o.add_i(g, tid);
            // Load (0 beyond n).
            let zero = o.lit_f(0.0);
            let c = o.lt_i(gid, n);
            let loaded = o.var_f(zero);
            o.if_(c, |o| {
                let v = o.ld_gf(input, gid);
                o.vset_f(loaded, v);
            });
            let lv = o.vget_f(loaded);
            o.st_sf(sh, tid, lv);
            o.sync_block_threads();
            // Tree reduce: s = bdim/2, /2, ...
            let two = o.lit_i(2);
            let s0 = o.div_i(bdim, two);
            let s = o.var_i(s0);
            o.while_(
                |o| {
                    let sv = o.vget_i(s);
                    let zero = o.lit_i(0);
                    o.gt_i(sv, zero)
                },
                |o| {
                    let sv = o.vget_i(s);
                    let in_half = o.lt_i(tid, sv);
                    o.if_(in_half, |o| {
                        let other = o.add_i(tid, sv);
                        let a = o.ld_sf(sh, tid);
                        let b = o.ld_sf(sh, other);
                        let sum = o.add_f(a, b);
                        o.st_sf(sh, tid, sum);
                    });
                    o.sync_block_threads();
                    let two = o.lit_i(2);
                    let nx = o.div_i(sv, two);
                    o.vset_i(s, nx);
                },
            );
            let zero_i = o.lit_i(0);
            let is0 = o.eq_i(tid, zero_i);
            o.if_(is0, |o| {
                let zero_i = o.lit_i(0);
                let total = o.ld_sf(sh, zero_i);
                o.st_gf(out, bid, total);
            });
        }
    }

    fn reduce_on(kind: CpuAccKind) {
        let n = 256usize;
        let blocks = 4;
        let dev = CpuDevice::with_workers(kind, 4);
        let input = HostBuf::from_vec((0..n).map(|i| i as f64).collect());
        let out = HostBuf::<f64>::alloc(BufLayout::d1(blocks));
        let args = CpuArgs::new().buf_f(&input).buf_f(&out).scalar_i(n as i64);
        dev.launch(&BlockReduce, &WorkDiv::d1(blocks, 64, 1), &args)
            .unwrap();
        let total: f64 = out.as_slice().iter().sum();
        assert_eq!(total, (n * (n - 1) / 2) as f64, "{kind:?}");
    }

    #[test]
    fn shared_memory_reduction_threads() {
        reduce_on(CpuAccKind::Threads);
    }

    #[test]
    fn shared_memory_reduction_block_threads() {
        reduce_on(CpuAccKind::BlockThreads);
    }

    #[test]
    fn shared_memory_reduction_fibers() {
        reduce_on(CpuAccKind::Fibers);
    }

    #[test]
    fn kernel_panic_becomes_error() {
        struct Bad;
        impl Kernel for Bad {
            fn run<O: KernelOps>(&self, o: &mut O) {
                let b = o.buf_f(0); // unbound slot -> panic
                let i = o.lit_i(0);
                let _ = o.ld_gf(b, i);
            }
        }
        for kind in CpuAccKind::ALL {
            let dev = CpuDevice::with_workers(kind, 2);
            let err = dev.launch(&Bad, &WorkDiv::d1(2, 1, 1), &CpuArgs::new());
            assert!(err.is_err(), "{kind:?} must surface the panic");
        }
    }

    #[test]
    fn caps_match_strategy() {
        assert!(
            CpuDevice::new(CpuAccKind::Serial)
                .caps()
                .requires_single_thread_blocks
        );
        assert!(
            CpuDevice::new(CpuAccKind::Blocks)
                .caps()
                .requires_single_thread_blocks
        );
        assert!(
            !CpuDevice::new(CpuAccKind::Threads)
                .caps()
                .requires_single_thread_blocks
        );
        assert_eq!(
            CpuDevice::with_workers(CpuAccKind::Blocks, 7)
                .caps()
                .concurrent_blocks,
            7
        );
    }

    #[test]
    fn atomics_across_blocks() {
        struct CountAll;
        impl Kernel for CountAll {
            fn run<O: KernelOps>(&self, o: &mut O) {
                let counter = o.buf_i(0);
                let zero = o.lit_i(0);
                let one = o.lit_i(1);
                let _ = o.atomic_add_gi(counter, zero, one);
            }
        }
        for kind in CpuAccKind::ALL {
            let dev = CpuDevice::with_workers(kind, 4);
            let counter = HostBuf::from_vec(vec![0i64]);
            let wd = if matches!(kind, CpuAccKind::Serial | CpuAccKind::Blocks) {
                WorkDiv::d1(64, 1, 1)
            } else {
                WorkDiv::d1(8, 8, 1)
            };
            let args = CpuArgs::new().buf_i(&counter);
            dev.launch(&CountAll, &wd, &args).unwrap();
            assert_eq!(counter.as_slice()[0], 64, "{kind:?}");
        }
    }

    #[test]
    fn two_dimensional_launch() {
        struct Fill2d;
        impl Kernel for Fill2d {
            fn run<O: KernelOps>(&self, o: &mut O) {
                let out = o.buf_f(0);
                let pitch = o.param_i(0);
                let row = o.global_thread_idx(0);
                let col = o.global_thread_idx(1);
                let off = o.mul_i(row, pitch);
                let idx = o.add_i(off, col);
                let r = o.i2f(row);
                let c = o.i2f(col);
                let hundred = o.lit_f(100.0);
                let v = o.fma_f(r, hundred, c);
                o.st_gf(out, idx, v);
            }
        }
        let dev = CpuDevice::new(CpuAccKind::Serial);
        let buf = HostBuf::<f64>::alloc(BufLayout::d2(4, 6, 8));
        let pitch = buf.layout().pitch;
        let wd = WorkDiv::d2(Vecn([4, 6]), Vecn([1, 1]), Vecn([1, 1]));
        let args = CpuArgs::new().buf_f(&buf).scalar_i(pitch as i64);
        dev.launch(&Fill2d, &wd, &args).unwrap();
        for r in 0..4 {
            for c in 0..6 {
                assert_eq!(buf.as_slice()[r * pitch + c], (r * 100 + c) as f64);
            }
        }
    }
}
