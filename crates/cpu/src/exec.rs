//! Direct execution of the single-source kernel DSL on the host.
//!
//! `CpuOps` implements `KernelOps` with `F = f64`, `I = i64`, `B = bool` and
//! every method a tiny `#[inline]` primitive: after monomorphization the
//! kernel body compiles to the same machine code a hand-written loop nest
//! would — this is the zero-overhead half of the paper's Section 4.1
//! argument, realized by `rustc` instead of `nvcc`.
//!
//! Memory model: global buffers are raw pointers into [`HostBuf`] storage
//! (the CUDA contract — concurrent threads must write disjoint elements or
//! use atomics); shared memory is a per-block arena handed to all threads of
//! the block; registers (`var_f`/`var_i`) are thread-private vectors.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use alpaka_core::buffer::HostBuf;
use alpaka_core::kernel::{Kernel, ScalarArgs};
use alpaka_core::ops::KernelOps;
use alpaka_core::workdiv::WorkDiv;
use parking_lot::Mutex;

use crate::sync::BlockSync;

/// Raw view of a bound global buffer.
pub struct RawBuf<E> {
    pub ptr: *mut E,
    pub len: usize,
}

impl<E> Clone for RawBuf<E> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<E> Copy for RawBuf<E> {}

/// Raw view of a block-shared array.
pub struct RawSh<E> {
    pub ptr: *mut E,
    pub len: usize,
}

impl<E> Clone for RawSh<E> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<E> Copy for RawSh<E> {}

/// Launch arguments for the CPU back-ends: buffer bindings (slot order) and
/// scalars.
#[derive(Clone, Default)]
pub struct CpuArgs {
    pub bufs_f: Vec<HostBuf<f64>>,
    pub bufs_i: Vec<HostBuf<i64>>,
    pub scalars: ScalarArgs,
}

impl CpuArgs {
    pub fn new() -> Self {
        Self::default()
    }
    pub fn buf_f(mut self, b: &HostBuf<f64>) -> Self {
        self.bufs_f.push(b.clone());
        self
    }
    pub fn buf_i(mut self, b: &HostBuf<i64>) -> Self {
        self.bufs_i.push(b.clone());
        self
    }
    pub fn scalar_f(mut self, v: f64) -> Self {
        self.scalars.f.push(v);
        self
    }
    pub fn scalar_i(mut self, v: i64) -> Self {
        self.scalars.i.push(v);
        self
    }

    pub(crate) fn resolve(&self) -> ResolvedArgs {
        ResolvedArgs {
            bufs_f: self
                .bufs_f
                .iter()
                .map(|b| RawBuf {
                    ptr: b.ptr(),
                    len: b.alloc_len(),
                })
                .collect(),
            bufs_i: self
                .bufs_i
                .iter()
                .map(|b| RawBuf {
                    ptr: b.ptr(),
                    len: b.alloc_len(),
                })
                .collect(),
            f: self.scalars.f.clone(),
            i: self.scalars.i.clone(),
        }
    }
}

/// Resolved (raw-pointer) arguments shared by all threads of a launch.
pub struct ResolvedArgs {
    pub bufs_f: Vec<RawBuf<f64>>,
    pub bufs_i: Vec<RawBuf<i64>>,
    pub f: Vec<f64>,
    pub i: Vec<i64>,
}

// SAFETY: the raw pointers reference HostBuf storage that outlives the
// launch (the launch holds the CpuArgs alive); cross-thread access follows
// the device-memory contract documented in alpaka_core::buffer.
unsafe impl Send for ResolvedArgs {}
unsafe impl Sync for ResolvedArgs {}

struct SharedAlloc {
    is_f: bool,
    len: usize,
    ptr: *mut u64,
    /// Owns the allocation; `ptr` points into it.
    _data: Box<[u64]>,
}

/// Per-block shared-memory arena. Threads of a block request arrays in
/// deterministic call order; the first thread to reach an allocation point
/// creates it, later threads receive the same array.
#[derive(Default)]
pub struct SharedBlock {
    arrays: Mutex<Vec<SharedAlloc>>,
}

// SAFETY: same device-memory contract; allocation is mutex-protected, data
// access is barrier-disciplined by the kernel.
unsafe impl Send for SharedBlock {}
unsafe impl Sync for SharedBlock {}

impl SharedBlock {
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_alloc(&self, cursor: usize, is_f: bool, len: usize) -> *mut u64 {
        let mut arrays = self.arrays.lock();
        if let Some(a) = arrays.get(cursor) {
            assert!(
                a.is_f == is_f && a.len == len,
                "shared-memory allocation order diverged between block threads \
                 (slot {cursor}: have {}x{} want {}x{})",
                a.len,
                if a.is_f { "f64" } else { "i64" },
                len,
                if is_f { "f64" } else { "i64" }
            );
            return a.ptr;
        }
        assert_eq!(
            arrays.len(),
            cursor,
            "shared-memory allocations must be requested in order"
        );
        let mut data = vec![0u64; len].into_boxed_slice();
        let ptr = data.as_mut_ptr();
        arrays.push(SharedAlloc {
            is_f,
            len,
            ptr,
            _data: data,
        });
        ptr
    }

    /// Zero all arrays for reuse by the next block (keeps allocations).
    pub fn reset(&self) {
        let mut arrays = self.arrays.lock();
        for a in arrays.iter_mut() {
            // SAFETY: we own the allocation; no kernel thread is running
            // (reset is called between blocks, after a barrier/join).
            unsafe {
                std::ptr::write_bytes(a.ptr, 0, a.len);
            }
        }
    }

    /// Drop all allocations (used when consecutive launches differ).
    pub fn clear(&self) {
        self.arrays.lock().clear();
    }
}

/// Canonicalized launch geometry shared by all threads.
pub struct LaunchGeometry {
    pub dims: usize,
    pub grid: [i64; 3],
    pub block: [i64; 3],
    pub elems: [i64; 3],
}

impl LaunchGeometry {
    pub fn from_workdiv(wd: &WorkDiv) -> Self {
        LaunchGeometry {
            dims: wd.dim,
            grid: wd.blocks.map(|v| v as i64),
            block: wd.threads.map(|v| v as i64),
            elems: wd.elems.map(|v| v as i64),
        }
    }
}

/// The direct-execution accelerator object handed to one kernel thread.
pub struct CpuOps<'a> {
    geo: &'a LaunchGeometry,
    bidx: [i64; 3],
    tidx: [i64; 3],
    lin_tid: usize,
    args: &'a ResolvedArgs,
    shared: &'a SharedBlock,
    sync: &'a dyn BlockSync,
    sh_cursor: usize,
    vars_f: Vec<f64>,
    vars_i: Vec<i64>,
    locals_f: Vec<Box<[f64]>>,
}

impl<'a> CpuOps<'a> {
    pub fn new(
        geo: &'a LaunchGeometry,
        bidx: [usize; 3],
        tidx: [usize; 3],
        args: &'a ResolvedArgs,
        shared: &'a SharedBlock,
        sync: &'a dyn BlockSync,
    ) -> Self {
        let lin_tid = (tidx[0] * geo.block[1] as usize + tidx[1]) * geo.block[2] as usize + tidx[2];
        CpuOps {
            geo,
            bidx: bidx.map(|v| v as i64),
            tidx: tidx.map(|v| v as i64),
            lin_tid,
            args,
            shared,
            sync,
            sh_cursor: 0,
            vars_f: Vec::new(),
            vars_i: Vec::new(),
            locals_f: Vec::new(),
        }
    }

    #[inline]
    fn axis(&self, d: usize) -> usize {
        debug_assert!(d < self.geo.dims);
        3 - self.geo.dims + d
    }

    #[inline]
    fn check<E>(buf: RawBuf<E>, idx: i64, what: &str) -> usize {
        let i = idx as usize;
        assert!(
            idx >= 0 && i < buf.len,
            "{what}: index {idx} out of bounds (len {})",
            buf.len
        );
        i
    }

    #[inline]
    fn check_sh<E>(sh: RawSh<E>, idx: i64, what: &str) -> usize {
        let i = idx as usize;
        assert!(
            idx >= 0 && i < sh.len,
            "{what}: index {idx} out of bounds (len {})",
            sh.len
        );
        i
    }
}

/// Execute `kernel` for a single (block, thread) coordinate.
#[allow(clippy::too_many_arguments)]
pub fn run_thread<K: Kernel + ?Sized>(
    kernel: &K,
    geo: &LaunchGeometry,
    bidx: [usize; 3],
    tidx: [usize; 3],
    args: &ResolvedArgs,
    shared: &SharedBlock,
    sync: &dyn BlockSync,
) {
    let mut ops = CpuOps::new(geo, bidx, tidx, args, shared, sync);
    kernel.run(&mut ops);
}

impl KernelOps for CpuOps<'_> {
    type F = f64;
    type I = i64;
    type B = bool;
    type BufF = RawBuf<f64>;
    type BufI = RawBuf<i64>;
    type ShF = RawSh<f64>;
    type ShI = RawSh<i64>;
    type LocF = usize;
    type VarF = usize;
    type VarI = usize;

    #[inline(always)]
    fn dims(&self) -> usize {
        self.geo.dims
    }
    #[inline(always)]
    fn grid_block_extent(&mut self, d: usize) -> i64 {
        self.geo.grid[self.axis(d)]
    }
    #[inline(always)]
    fn block_thread_extent(&mut self, d: usize) -> i64 {
        self.geo.block[self.axis(d)]
    }
    #[inline(always)]
    fn thread_elem_extent(&mut self, d: usize) -> i64 {
        self.geo.elems[self.axis(d)]
    }
    #[inline(always)]
    fn block_idx(&mut self, d: usize) -> i64 {
        self.bidx[self.axis(d)]
    }
    #[inline(always)]
    fn thread_idx(&mut self, d: usize) -> i64 {
        self.tidx[self.axis(d)]
    }

    #[inline(always)]
    fn param_f(&mut self, slot: usize) -> f64 {
        self.args.f[slot]
    }
    #[inline(always)]
    fn param_i(&mut self, slot: usize) -> i64 {
        self.args.i[slot]
    }
    #[inline(always)]
    fn buf_f(&mut self, slot: usize) -> RawBuf<f64> {
        self.args.bufs_f[slot]
    }
    #[inline(always)]
    fn buf_i(&mut self, slot: usize) -> RawBuf<i64> {
        self.args.bufs_i[slot]
    }

    #[inline(always)]
    fn lit_f(&mut self, v: f64) -> f64 {
        v
    }
    #[inline(always)]
    fn lit_i(&mut self, v: i64) -> i64 {
        v
    }
    #[inline(always)]
    fn lit_b(&mut self, v: bool) -> bool {
        v
    }

    #[inline(always)]
    fn add_f(&mut self, a: f64, b: f64) -> f64 {
        a + b
    }
    #[inline(always)]
    fn sub_f(&mut self, a: f64, b: f64) -> f64 {
        a - b
    }
    #[inline(always)]
    fn mul_f(&mut self, a: f64, b: f64) -> f64 {
        a * b
    }
    #[inline(always)]
    fn div_f(&mut self, a: f64, b: f64) -> f64 {
        a / b
    }
    #[inline(always)]
    fn neg_f(&mut self, a: f64) -> f64 {
        -a
    }
    #[inline(always)]
    fn fma_f(&mut self, a: f64, b: f64, c: f64) -> f64 {
        a.mul_add(b, c)
    }
    #[inline(always)]
    fn min_f(&mut self, a: f64, b: f64) -> f64 {
        a.min(b)
    }
    #[inline(always)]
    fn max_f(&mut self, a: f64, b: f64) -> f64 {
        a.max(b)
    }
    #[inline(always)]
    fn abs_f(&mut self, a: f64) -> f64 {
        a.abs()
    }
    #[inline(always)]
    fn sqrt_f(&mut self, a: f64) -> f64 {
        a.sqrt()
    }
    #[inline(always)]
    fn exp_f(&mut self, a: f64) -> f64 {
        a.exp()
    }
    #[inline(always)]
    fn ln_f(&mut self, a: f64) -> f64 {
        a.ln()
    }
    #[inline(always)]
    fn sin_f(&mut self, a: f64) -> f64 {
        a.sin()
    }
    #[inline(always)]
    fn cos_f(&mut self, a: f64) -> f64 {
        a.cos()
    }
    #[inline(always)]
    fn floor_f(&mut self, a: f64) -> f64 {
        a.floor()
    }

    #[inline(always)]
    fn add_i(&mut self, a: i64, b: i64) -> i64 {
        a.wrapping_add(b)
    }
    #[inline(always)]
    fn sub_i(&mut self, a: i64, b: i64) -> i64 {
        a.wrapping_sub(b)
    }
    #[inline(always)]
    fn mul_i(&mut self, a: i64, b: i64) -> i64 {
        a.wrapping_mul(b)
    }
    #[inline(always)]
    fn div_i(&mut self, a: i64, b: i64) -> i64 {
        if b == 0 {
            0
        } else {
            a.wrapping_div(b)
        }
    }
    #[inline(always)]
    fn rem_i(&mut self, a: i64, b: i64) -> i64 {
        if b == 0 {
            0
        } else {
            a.wrapping_rem(b)
        }
    }
    #[inline(always)]
    fn neg_i(&mut self, a: i64) -> i64 {
        a.wrapping_neg()
    }
    #[inline(always)]
    fn min_i(&mut self, a: i64, b: i64) -> i64 {
        a.min(b)
    }
    #[inline(always)]
    fn max_i(&mut self, a: i64, b: i64) -> i64 {
        a.max(b)
    }
    #[inline(always)]
    fn and_i(&mut self, a: i64, b: i64) -> i64 {
        a & b
    }
    #[inline(always)]
    fn or_i(&mut self, a: i64, b: i64) -> i64 {
        a | b
    }
    #[inline(always)]
    fn xor_i(&mut self, a: i64, b: i64) -> i64 {
        a ^ b
    }
    #[inline(always)]
    fn shl_i(&mut self, a: i64, b: i64) -> i64 {
        ((a as u64) << ((b as u64) & 63)) as i64
    }
    #[inline(always)]
    fn shr_i(&mut self, a: i64, b: i64) -> i64 {
        ((a as u64) >> ((b as u64) & 63)) as i64
    }

    #[inline(always)]
    fn lt_f(&mut self, a: f64, b: f64) -> bool {
        a < b
    }
    #[inline(always)]
    fn le_f(&mut self, a: f64, b: f64) -> bool {
        a <= b
    }
    #[inline(always)]
    fn gt_f(&mut self, a: f64, b: f64) -> bool {
        a > b
    }
    #[inline(always)]
    fn ge_f(&mut self, a: f64, b: f64) -> bool {
        a >= b
    }
    #[inline(always)]
    fn eq_f(&mut self, a: f64, b: f64) -> bool {
        a == b
    }
    #[inline(always)]
    fn lt_i(&mut self, a: i64, b: i64) -> bool {
        a < b
    }
    #[inline(always)]
    fn le_i(&mut self, a: i64, b: i64) -> bool {
        a <= b
    }
    #[inline(always)]
    fn gt_i(&mut self, a: i64, b: i64) -> bool {
        a > b
    }
    #[inline(always)]
    fn ge_i(&mut self, a: i64, b: i64) -> bool {
        a >= b
    }
    #[inline(always)]
    fn eq_i(&mut self, a: i64, b: i64) -> bool {
        a == b
    }
    #[inline(always)]
    fn and_b(&mut self, a: bool, b: bool) -> bool {
        a && b
    }
    #[inline(always)]
    fn or_b(&mut self, a: bool, b: bool) -> bool {
        a || b
    }
    #[inline(always)]
    fn not_b(&mut self, a: bool) -> bool {
        !a
    }
    #[inline(always)]
    fn select_f(&mut self, c: bool, t: f64, e: f64) -> f64 {
        if c {
            t
        } else {
            e
        }
    }
    #[inline(always)]
    fn select_i(&mut self, c: bool, t: i64, e: i64) -> i64 {
        if c {
            t
        } else {
            e
        }
    }

    #[inline(always)]
    fn i2f(&mut self, a: i64) -> f64 {
        a as f64
    }
    #[inline(always)]
    fn f2i(&mut self, a: f64) -> i64 {
        a as i64
    }
    #[inline(always)]
    fn u2unit_f(&mut self, a: i64) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (((a as u64) >> 11) as f64) * SCALE
    }

    #[inline(always)]
    fn ld_gf(&mut self, buf: RawBuf<f64>, idx: i64) -> f64 {
        let i = Self::check(buf, idx, "ld.global.f64");
        // SAFETY: bounds-checked above; device-memory contract.
        unsafe { *buf.ptr.add(i) }
    }
    #[inline(always)]
    fn st_gf(&mut self, buf: RawBuf<f64>, idx: i64, v: f64) {
        let i = Self::check(buf, idx, "st.global.f64");
        // SAFETY: bounds-checked above; device-memory contract.
        unsafe {
            *buf.ptr.add(i) = v;
        }
    }
    #[inline(always)]
    fn ld_gi(&mut self, buf: RawBuf<i64>, idx: i64) -> i64 {
        let i = Self::check(buf, idx, "ld.global.s64");
        // SAFETY: bounds-checked above; device-memory contract.
        unsafe { *buf.ptr.add(i) }
    }
    #[inline(always)]
    fn st_gi(&mut self, buf: RawBuf<i64>, idx: i64, v: i64) {
        let i = Self::check(buf, idx, "st.global.s64");
        // SAFETY: bounds-checked above; device-memory contract.
        unsafe {
            *buf.ptr.add(i) = v;
        }
    }

    fn shared_f(&mut self, len: usize) -> RawSh<f64> {
        let cursor = self.sh_cursor;
        self.sh_cursor += 1;
        let ptr = self.shared.get_or_alloc(cursor, true, len);
        RawSh {
            ptr: ptr as *mut f64,
            len,
        }
    }
    fn shared_i(&mut self, len: usize) -> RawSh<i64> {
        let cursor = self.sh_cursor;
        self.sh_cursor += 1;
        let ptr = self.shared.get_or_alloc(cursor, false, len);
        RawSh {
            ptr: ptr as *mut i64,
            len,
        }
    }
    #[inline(always)]
    fn ld_sf(&mut self, sh: RawSh<f64>, idx: i64) -> f64 {
        let i = Self::check_sh(sh, idx, "ld.shared.f64");
        // SAFETY: bounds-checked above; barrier-disciplined shared memory.
        unsafe { *sh.ptr.add(i) }
    }
    #[inline(always)]
    fn st_sf(&mut self, sh: RawSh<f64>, idx: i64, v: f64) {
        let i = Self::check_sh(sh, idx, "st.shared.f64");
        // SAFETY: bounds-checked above; barrier-disciplined shared memory.
        unsafe {
            *sh.ptr.add(i) = v;
        }
    }
    #[inline(always)]
    fn ld_si(&mut self, sh: RawSh<i64>, idx: i64) -> i64 {
        let i = Self::check_sh(sh, idx, "ld.shared.s64");
        // SAFETY: bounds-checked above; barrier-disciplined shared memory.
        unsafe { *sh.ptr.add(i) }
    }
    #[inline(always)]
    fn st_si(&mut self, sh: RawSh<i64>, idx: i64, v: i64) {
        let i = Self::check_sh(sh, idx, "st.shared.s64");
        // SAFETY: bounds-checked above; barrier-disciplined shared memory.
        unsafe {
            *sh.ptr.add(i) = v;
        }
    }

    fn local_f(&mut self, len: usize) -> usize {
        self.locals_f.push(vec![0.0; len].into_boxed_slice());
        self.locals_f.len() - 1
    }
    #[inline(always)]
    fn ld_lf(&mut self, l: usize, idx: i64) -> f64 {
        let arr = &self.locals_f[l];
        assert!(
            idx >= 0 && (idx as usize) < arr.len(),
            "ld.local.f64: index {idx} out of bounds (len {})",
            arr.len()
        );
        arr[idx as usize]
    }
    #[inline(always)]
    fn st_lf(&mut self, l: usize, idx: i64, v: f64) {
        let arr = &mut self.locals_f[l];
        assert!(
            idx >= 0 && (idx as usize) < arr.len(),
            "st.local.f64: index {idx} out of bounds (len {})",
            arr.len()
        );
        arr[idx as usize] = v;
    }

    #[inline(always)]
    fn sync_block_threads(&mut self) {
        self.sync.sync(self.lin_tid);
    }

    fn atomic_add_gf(&mut self, buf: RawBuf<f64>, idx: i64, v: f64) -> f64 {
        let i = Self::check(buf, idx, "atom.global.add.f64");
        // SAFETY: element is within bounds; f64 and AtomicU64 share size
        // and alignment; all racing accesses to this element go through
        // the same atomic view per the device-memory contract.
        let cell = unsafe { &*(buf.ptr.add(i) as *const AtomicU64) };
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let old = f64::from_bits(cur);
            let new = (old + v).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return old,
                Err(actual) => cur = actual,
            }
        }
    }

    fn atomic_add_gi(&mut self, buf: RawBuf<i64>, idx: i64, v: i64) -> i64 {
        let i = Self::check(buf, idx, "atom.global.add.s64");
        // SAFETY: see atomic_add_gf.
        let cell = unsafe { &*(buf.ptr.add(i) as *const AtomicI64) };
        cell.fetch_add(v, Ordering::AcqRel)
    }

    fn atomic_min_gi(&mut self, buf: RawBuf<i64>, idx: i64, v: i64) -> i64 {
        let i = Self::check(buf, idx, "atom.global.min.s64");
        // SAFETY: see atomic_add_gf.
        let cell = unsafe { &*(buf.ptr.add(i) as *const AtomicI64) };
        cell.fetch_min(v, Ordering::AcqRel)
    }

    fn atomic_max_gi(&mut self, buf: RawBuf<i64>, idx: i64, v: i64) -> i64 {
        let i = Self::check(buf, idx, "atom.global.max.s64");
        // SAFETY: see atomic_add_gf.
        let cell = unsafe { &*(buf.ptr.add(i) as *const AtomicI64) };
        cell.fetch_max(v, Ordering::AcqRel)
    }

    fn atomic_and_gi(&mut self, buf: RawBuf<i64>, idx: i64, v: i64) -> i64 {
        let i = Self::check(buf, idx, "atom.global.and.s64");
        // SAFETY: see atomic_add_gf.
        let cell = unsafe { &*(buf.ptr.add(i) as *const AtomicI64) };
        cell.fetch_and(v, Ordering::AcqRel)
    }

    fn atomic_or_gi(&mut self, buf: RawBuf<i64>, idx: i64, v: i64) -> i64 {
        let i = Self::check(buf, idx, "atom.global.or.s64");
        // SAFETY: see atomic_add_gf.
        let cell = unsafe { &*(buf.ptr.add(i) as *const AtomicI64) };
        cell.fetch_or(v, Ordering::AcqRel)
    }

    fn atomic_xor_gi(&mut self, buf: RawBuf<i64>, idx: i64, v: i64) -> i64 {
        let i = Self::check(buf, idx, "atom.global.xor.s64");
        // SAFETY: see atomic_add_gf.
        let cell = unsafe { &*(buf.ptr.add(i) as *const AtomicI64) };
        cell.fetch_xor(v, Ordering::AcqRel)
    }

    fn atomic_exch_gi(&mut self, buf: RawBuf<i64>, idx: i64, v: i64) -> i64 {
        let i = Self::check(buf, idx, "atom.global.exch.s64");
        // SAFETY: see atomic_add_gf.
        let cell = unsafe { &*(buf.ptr.add(i) as *const AtomicI64) };
        cell.swap(v, Ordering::AcqRel)
    }

    #[inline(always)]
    fn var_f(&mut self, init: f64) -> usize {
        self.vars_f.push(init);
        self.vars_f.len() - 1
    }
    #[inline(always)]
    fn vget_f(&mut self, v: usize) -> f64 {
        debug_assert!(v < self.vars_f.len());
        // SAFETY: handles are only produced by var_f on this ops instance,
        // and vars are never removed, so the index is always in bounds.
        unsafe { *self.vars_f.get_unchecked(v) }
    }
    #[inline(always)]
    fn vset_f(&mut self, v: usize, val: f64) {
        debug_assert!(v < self.vars_f.len());
        // SAFETY: see vget_f.
        unsafe {
            *self.vars_f.get_unchecked_mut(v) = val;
        }
    }
    #[inline(always)]
    fn var_i(&mut self, init: i64) -> usize {
        self.vars_i.push(init);
        self.vars_i.len() - 1
    }
    #[inline(always)]
    fn vget_i(&mut self, v: usize) -> i64 {
        debug_assert!(v < self.vars_i.len());
        // SAFETY: see vget_f.
        unsafe { *self.vars_i.get_unchecked(v) }
    }
    #[inline(always)]
    fn vset_i(&mut self, v: usize, val: i64) {
        debug_assert!(v < self.vars_i.len());
        // SAFETY: see vget_f.
        unsafe {
            *self.vars_i.get_unchecked_mut(v) = val;
        }
    }

    #[inline(always)]
    fn if_(&mut self, c: bool, then: impl FnOnce(&mut Self)) {
        if c {
            then(self);
        }
    }
    #[inline(always)]
    fn if_else(&mut self, c: bool, then: impl FnOnce(&mut Self), els: impl FnOnce(&mut Self)) {
        if c {
            then(self);
        } else {
            els(self);
        }
    }
    #[inline(always)]
    fn for_range(&mut self, start: i64, end: i64, mut body: impl FnMut(&mut Self, i64)) {
        let mut k = start;
        while k < end {
            body(self, k);
            k += 1;
        }
    }
    #[inline(always)]
    fn for_elements(&mut self, d: usize, mut body: impl FnMut(&mut Self, i64)) {
        let ext = self.geo.elems[self.axis(d)];
        // Primitive inner loop over a fixed element count — the shape the
        // auto-vectorizer recognizes (Section 3.2.4).
        for k in 0..ext {
            body(self, k);
        }
    }
    #[inline(always)]
    fn while_(&mut self, mut cond: impl FnMut(&mut Self) -> bool, mut body: impl FnMut(&mut Self)) {
        while cond(self) {
            body(self);
        }
    }

    #[inline(always)]
    fn fold_range_f(
        &mut self,
        start: i64,
        end: i64,
        init: f64,
        mut body: impl FnMut(&mut Self, i64, f64) -> f64,
    ) -> f64 {
        let mut acc = init;
        let mut k = start;
        while k < end {
            acc = body(self, k, acc);
            k += 1;
        }
        acc
    }

    #[inline(always)]
    fn fold_elements_f(
        &mut self,
        d: usize,
        init: f64,
        mut body: impl FnMut(&mut Self, i64, f64) -> f64,
    ) -> f64 {
        let ext = self.geo.elems[self.axis(d)];
        let mut acc = init;
        for k in 0..ext {
            acc = body(self, k, acc);
        }
        acc
    }

    #[inline(always)]
    fn fold_range_i(
        &mut self,
        start: i64,
        end: i64,
        init: i64,
        mut body: impl FnMut(&mut Self, i64, i64) -> i64,
    ) -> i64 {
        let mut acc = init;
        let mut k = start;
        while k < end {
            acc = body(self, k, acc);
            k += 1;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::NoopSync;
    use alpaka_core::buffer::BufLayout;
    use alpaka_core::ops::KernelOpsExt;

    struct Square;
    impl Kernel for Square {
        fn run<O: KernelOps>(&self, o: &mut O) {
            let b = o.buf_f(0);
            let n = o.param_i(0);
            let i = o.global_thread_idx(0);
            let c = o.lt_i(i, n);
            o.if_(c, |o| {
                let v = o.ld_gf(b, i);
                let r = o.mul_f(v, v);
                o.st_gf(b, i, r);
            });
        }
    }

    #[test]
    fn direct_execution_squares() {
        let buf = HostBuf::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let args = CpuArgs::new().buf_f(&buf).scalar_i(4);
        let resolved = args.resolve();
        let wd = WorkDiv::d1(4, 1, 1);
        let geo = LaunchGeometry::from_workdiv(&wd);
        let shared = SharedBlock::new();
        for b in 0..4 {
            run_thread(
                &Square,
                &geo,
                [0, 0, b],
                [0, 0, 0],
                &resolved,
                &shared,
                &NoopSync,
            );
        }
        assert_eq!(buf.as_slice(), &[1.0, 4.0, 9.0, 16.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_access_panics() {
        let buf = HostBuf::from_vec(vec![1.0]);
        let args = CpuArgs::new().buf_f(&buf).scalar_i(100);
        let resolved = args.resolve();
        let wd = WorkDiv::d1(1, 1, 1);
        let geo = LaunchGeometry::from_workdiv(&wd);
        struct Bad;
        impl Kernel for Bad {
            fn run<O: KernelOps>(&self, o: &mut O) {
                let b = o.buf_f(0);
                let i = o.lit_i(7);
                let v = o.lit_f(0.0);
                o.st_gf(b, i, v);
            }
        }
        run_thread(
            &Bad,
            &geo,
            [0, 0, 0],
            [0, 0, 0],
            &resolved,
            &SharedBlock::new(),
            &NoopSync,
        );
    }

    #[test]
    fn shared_allocation_is_shared_between_threads_of_a_block() {
        let shared = SharedBlock::new();
        let p1 = shared.get_or_alloc(0, true, 32);
        let p2 = shared.get_or_alloc(0, true, 32);
        assert_eq!(p1, p2);
        let q = shared.get_or_alloc(1, false, 8);
        assert_ne!(p1, q);
        shared.reset();
    }

    #[test]
    #[should_panic(expected = "diverged")]
    fn shared_allocation_mismatch_detected() {
        let shared = SharedBlock::new();
        let _ = shared.get_or_alloc(0, true, 32);
        let _ = shared.get_or_alloc(0, true, 64);
    }

    #[test]
    fn atomic_add_f64_accumulates_concurrently() {
        use std::sync::Arc;
        let buf = HostBuf::<f64>::alloc(BufLayout::d1(1));
        let args = Arc::new(CpuArgs::new().buf_f(&buf));
        let resolved = Arc::new(args.resolve());
        let wd = WorkDiv::d1(1, 1, 1);
        let geo = Arc::new(LaunchGeometry::from_workdiv(&wd));
        let mut handles = vec![];
        for _ in 0..8 {
            let resolved = Arc::clone(&resolved);
            let geo = Arc::clone(&geo);
            handles.push(std::thread::spawn(move || {
                let shared = SharedBlock::new();
                let mut ops =
                    CpuOps::new(&geo, [0, 0, 0], [0, 0, 0], &resolved, &shared, &NoopSync);
                let b = ops.buf_f(0);
                for _ in 0..1000 {
                    let one = ops.lit_f(1.0);
                    let zero = ops.lit_i(0);
                    ops.atomic_add_gf(b, zero, one);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(buf.as_slice()[0], 8000.0);
    }

    #[test]
    fn vars_are_thread_private() {
        let wd = WorkDiv::d1(1, 1, 1);
        let geo = LaunchGeometry::from_workdiv(&wd);
        let args = CpuArgs::new().resolve();
        let shared = SharedBlock::new();
        let mut ops = CpuOps::new(&geo, [0, 0, 0], [0, 0, 0], &args, &shared, &NoopSync);
        let v = ops.var_f(1.5);
        assert_eq!(ops.vget_f(v), 1.5);
        ops.vset_f(v, 2.5);
        assert_eq!(ops.vget_f(v), 2.5);
        let w = ops.var_i(-3);
        assert_eq!(ops.vget_i(w), -3);
    }
}
