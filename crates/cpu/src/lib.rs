//! # alpaka-cpu
//!
//! Native CPU back-ends for the Alpaka reproduction: five accelerators that
//! map the abstract grid/block/thread/element hierarchy onto host hardware
//! by *direct execution* of the single-source kernel DSL (no IR, no
//! interpreter — the kernel monomorphizes to plain Rust loops).
//!
//! See [`acc::CpuAccKind`] for the strategy catalogue and [`queue::CpuQueue`]
//! for blocking/non-blocking streams.

pub mod acc;
pub mod exec;
pub mod pool;
pub mod queue;
pub mod sync;

pub use acc::{CpuAccKind, CpuDevice};
pub use exec::{CpuArgs, CpuOps};
pub use pool::Pool;
pub use queue::CpuQueue;
pub use sync::{BarrierSync, BlockSync, FiberSync, NoopSync};
