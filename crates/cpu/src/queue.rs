//! CPU queues (streams): in-order work queues per device (Section 3.4.5).
//!
//! * **Blocking** queues execute each enqueued operation on the calling
//!   host thread (`StreamCpuSync` analogue).
//! * **Non-blocking** queues hand operations to a dedicated worker thread
//!   that drains them strictly in order (`StreamCpuAsync` analogue); the
//!   host resumes immediately and synchronizes with `wait()` or an event.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use alpaka_core::buffer::{copy_region, Elem, HostBuf};
use alpaka_core::error::{Error, Result};
use alpaka_core::kernel::Kernel;
use alpaka_core::queue::{HostEvent, QueueBehavior};
use alpaka_core::workdiv::WorkDiv;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};

use crate::acc::CpuDevice;
use crate::exec::CpuArgs;

type Task = Box<dyn FnOnce() -> Result<()> + Send + 'static>;

enum Msg {
    Task(Task),
    /// Injected worker death: the worker records the error, stops executing
    /// and drains every later task unrun (so `wait` never hangs).
    Die,
}

struct AsyncState {
    pending: Mutex<usize>,
    idle: Condvar,
    error: Mutex<Option<Error>>,
    /// Set once the worker has died (injected): tasks are no longer
    /// executed, and `submit` refuses new work until the queue is reset.
    dead: AtomicBool,
}

/// The live half of a non-blocking queue; replaced wholesale when a dead
/// worker is respawned by [`CpuQueue::reset`].
struct AsyncInner {
    tx: Sender<Msg>,
    state: Arc<AsyncState>,
    _worker: WorkerHandle,
}

enum Inner {
    Blocking,
    Async(Mutex<AsyncInner>),
}

struct WorkerHandle(Option<thread::JoinHandle<()>>);

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        if let Some(h) = self.0.take() {
            let _ = h.join();
        }
    }
}

fn spawn_async() -> AsyncInner {
    let (tx, rx) = unbounded::<Msg>();
    let state = Arc::new(AsyncState {
        pending: Mutex::new(0),
        idle: Condvar::new(),
        error: Mutex::new(None),
        dead: AtomicBool::new(false),
    });
    let wstate = Arc::clone(&state);
    let handle = thread::Builder::new()
        .name("alpaka-queue".into())
        .spawn(move || {
            while let Ok(msg) = rx.recv() {
                match msg {
                    Msg::Die => {
                        // Record the error before raising the dead flag:
                        // observers treat `dead` as "the error is there".
                        let mut slot = wstate.error.lock();
                        if slot.is_none() {
                            *slot = Some(Error::Device("queue worker died (injected)".into()));
                        }
                        drop(slot);
                        wstate.dead.store(true, Ordering::SeqCst);
                        // Later tasks may already be queued or still
                        // arriving; keep draining so their pending counts
                        // are released, but never execute them. The death
                        // itself holds a pending slot so `wait` cannot
                        // return before it is recorded.
                        let mut p = wstate.pending.lock();
                        *p -= 1;
                        if *p == 0 {
                            wstate.idle.notify_all();
                        }
                    }
                    Msg::Task(task) => {
                        if !wstate.dead.load(Ordering::SeqCst) {
                            if let Err(e) = task() {
                                let mut slot = wstate.error.lock();
                                if slot.is_none() {
                                    *slot = Some(e);
                                }
                            }
                        }
                        let mut p = wstate.pending.lock();
                        *p -= 1;
                        if *p == 0 {
                            wstate.idle.notify_all();
                        }
                    }
                }
            }
        })
        .expect("failed to spawn queue worker");
    AsyncInner {
        tx,
        state,
        _worker: WorkerHandle(Some(handle)),
    }
}

/// An in-order work queue bound to one CPU device.
pub struct CpuQueue {
    device: CpuDevice,
    behavior: QueueBehavior,
    inner: Inner,
}

impl CpuQueue {
    pub fn new(device: CpuDevice, behavior: QueueBehavior) -> Self {
        let inner = match behavior {
            QueueBehavior::Blocking => Inner::Blocking,
            QueueBehavior::NonBlocking => Inner::Async(Mutex::new(spawn_async())),
        };
        CpuQueue {
            device,
            behavior,
            inner,
        }
    }

    pub fn behavior(&self) -> QueueBehavior {
        self.behavior
    }

    pub fn device(&self) -> &CpuDevice {
        &self.device
    }

    fn submit(&self, task: Task) -> Result<()> {
        match &self.inner {
            Inner::Blocking => task(),
            Inner::Async(inner) => {
                let inner = inner.lock();
                if inner.state.dead.load(Ordering::SeqCst) {
                    return Err(Error::Device(
                        "queue worker died (injected); reset the queue to respawn it".into(),
                    ));
                }
                {
                    let mut p = inner.state.pending.lock();
                    *p += 1;
                }
                if inner.tx.send(Msg::Task(task)).is_err() {
                    // Undo the reservation: the task will never be drained,
                    // and a leaked count would hang every later `wait`.
                    let mut p = inner.state.pending.lock();
                    *p -= 1;
                    if *p == 0 {
                        inner.state.idle.notify_all();
                    }
                    return Err(Error::Device("queue worker terminated".into()));
                }
                Ok(())
            }
        }
    }

    /// Inject worker death, in order with already-enqueued work: operations
    /// enqueued before this call still run; everything after it fails and
    /// `wait` reports `Error::Device`. [`CpuQueue::reset`] respawns the
    /// worker.
    pub fn kill_worker(&self) {
        if let Inner::Async(inner) = &self.inner {
            let inner = inner.lock();
            {
                let mut p = inner.state.pending.lock();
                *p += 1;
            }
            if inner.tx.send(Msg::Die).is_err() {
                let mut p = inner.state.pending.lock();
                *p -= 1;
                if *p == 0 {
                    inner.state.idle.notify_all();
                }
            }
        }
    }

    /// Clone the first recorded error, if any, without taking it (the
    /// facade's event-wait path surfaces errors non-destructively).
    pub fn peek_error(&self) -> Option<Error> {
        match &self.inner {
            Inner::Blocking => None,
            Inner::Async(inner) => inner.lock().state.error.lock().clone(),
        }
    }

    /// True once the worker died and the queue awaits a reset.
    pub fn worker_dead(&self) -> bool {
        match &self.inner {
            Inner::Blocking => false,
            Inner::Async(inner) => inner.lock().state.dead.load(Ordering::SeqCst),
        }
    }

    /// Drain the queue, discard any recorded error and — if the worker died
    /// — spawn a fresh one. The queue is usable again afterwards.
    pub fn reset(&self) {
        if let Inner::Async(inner) = &self.inner {
            let mut inner = inner.lock();
            {
                let mut p = inner.state.pending.lock();
                while *p != 0 {
                    inner.state.idle.wait(&mut p);
                }
            }
            *inner.state.error.lock() = None;
            if inner.state.dead.load(Ordering::SeqCst) {
                // Dropping the old half closes its channel and joins the
                // dead worker thread.
                *inner = spawn_async();
            }
        }
    }

    /// Enqueue a kernel execution (the executor of Listing 5: accelerator +
    /// work division + kernel + arguments).
    pub fn enqueue_kernel<K: Kernel + Send + 'static>(
        &self,
        kernel: K,
        wd: WorkDiv,
        args: CpuArgs,
    ) -> Result<()> {
        let device = self.device.clone();
        self.submit(Box::new(move || device.launch(&kernel, &wd, &args)))
    }

    /// Enqueue a deep copy between two buffers (`mem::view::copy`).
    pub fn enqueue_copy<E: Elem>(&self, dst: &HostBuf<E>, src: &HostBuf<E>) -> Result<()> {
        let dst = dst.clone();
        let src = src.clone();
        self.submit(Box::new(move || copy_region(&dst, &src)))
    }

    /// Enqueue a fill of every logical element.
    pub fn enqueue_fill<E: Elem>(&self, buf: &HostBuf<E>, v: E) -> Result<()> {
        let buf = buf.clone();
        self.submit(Box::new(move || {
            buf.fill(v);
            Ok(())
        }))
    }

    /// Enqueue an event: it is signaled once all previously enqueued
    /// operations completed.
    pub fn enqueue_event(&self, ev: &HostEvent) -> Result<()> {
        let ev = ev.clone();
        self.submit(Box::new(move || {
            ev.signal();
            Ok(())
        }))
    }

    /// Block until the queue is drained; returns the first error any
    /// operation produced since the last `wait`.
    pub fn wait(&self) -> Result<()> {
        match &self.inner {
            Inner::Blocking => Ok(()),
            Inner::Async(inner) => {
                let state = Arc::clone(&inner.lock().state);
                let mut p = state.pending.lock();
                while *p != 0 {
                    state.idle.wait(&mut p);
                }
                drop(p);
                let taken = state.error.lock().take();
                match taken {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acc::CpuAccKind;
    use alpaka_core::buffer::BufLayout;
    use alpaka_core::ops::{KernelOps, KernelOpsExt};

    struct AddOne;
    impl Kernel for AddOne {
        fn run<O: KernelOps>(&self, o: &mut O) {
            let b = o.buf_f(0);
            let i = o.global_thread_idx(0);
            let n = o.param_i(0);
            let c = o.lt_i(i, n);
            o.if_(c, |o| {
                let v = o.ld_gf(b, i);
                let one = o.lit_f(1.0);
                let r = o.add_f(v, one);
                o.st_gf(b, i, r);
            });
        }
    }

    #[test]
    fn blocking_queue_runs_inline() {
        let dev = CpuDevice::with_workers(CpuAccKind::Serial, 1);
        let q = CpuQueue::new(dev, QueueBehavior::Blocking);
        let buf = HostBuf::from_vec(vec![0.0; 8]);
        let args = CpuArgs::new().buf_f(&buf).scalar_i(8);
        q.enqueue_kernel(AddOne, WorkDiv::d1(8, 1, 1), args)
            .unwrap();
        assert_eq!(buf.as_slice(), &[1.0; 8]);
        q.wait().unwrap();
    }

    #[test]
    fn async_queue_preserves_order() {
        let dev = CpuDevice::with_workers(CpuAccKind::Blocks, 2);
        let q = CpuQueue::new(dev, QueueBehavior::NonBlocking);
        let buf = HostBuf::from_vec(vec![0.0; 128]);
        let args = CpuArgs::new().buf_f(&buf).scalar_i(128);
        // Three dependent increments — order matters.
        for _ in 0..3 {
            q.enqueue_kernel(AddOne, WorkDiv::d1(128, 1, 1), args.clone())
                .unwrap();
        }
        q.wait().unwrap();
        assert_eq!(buf.as_slice(), &vec![3.0; 128][..]);
    }

    #[test]
    fn async_queue_copy_then_kernel() {
        let dev = CpuDevice::with_workers(CpuAccKind::Serial, 1);
        let q = CpuQueue::new(dev, QueueBehavior::NonBlocking);
        let src = HostBuf::from_vec(vec![5.0; 16]);
        let dst = HostBuf::<f64>::alloc(BufLayout::d1(16));
        q.enqueue_copy(&dst, &src).unwrap();
        let args = CpuArgs::new().buf_f(&dst).scalar_i(16);
        q.enqueue_kernel(AddOne, WorkDiv::d1(16, 1, 1), args)
            .unwrap();
        q.wait().unwrap();
        assert_eq!(dst.as_slice(), &[6.0; 16]);
    }

    #[test]
    fn event_signals_after_prior_work() {
        let dev = CpuDevice::with_workers(CpuAccKind::Serial, 1);
        let q = CpuQueue::new(dev, QueueBehavior::NonBlocking);
        let buf = HostBuf::from_vec(vec![0.0; 4]);
        let ev = HostEvent::new();
        let args = CpuArgs::new().buf_f(&buf).scalar_i(4);
        q.enqueue_kernel(AddOne, WorkDiv::d1(4, 1, 1), args)
            .unwrap();
        q.enqueue_event(&ev).unwrap();
        ev.wait();
        assert_eq!(buf.as_slice(), &[1.0; 4]);
        q.wait().unwrap();
    }

    #[test]
    fn errors_surface_at_wait() {
        struct Bad;
        impl Kernel for Bad {
            fn run<O: KernelOps>(&self, o: &mut O) {
                let b = o.buf_f(0);
                let i = o.lit_i(999);
                let v = o.lit_f(1.0);
                o.st_gf(b, i, v);
            }
        }
        let dev = CpuDevice::with_workers(CpuAccKind::Serial, 1);
        let q = CpuQueue::new(dev, QueueBehavior::NonBlocking);
        let buf = HostBuf::from_vec(vec![0.0; 4]);
        let args = CpuArgs::new().buf_f(&buf);
        q.enqueue_kernel(Bad, WorkDiv::d1(1, 1, 1), args).unwrap();
        let err = q.wait().unwrap_err();
        assert!(matches!(err, Error::KernelFault(_)));
        // Error is cleared after being taken.
        q.wait().unwrap();
    }

    #[test]
    fn worker_death_is_ordered_and_reset_respawns() {
        let dev = CpuDevice::with_workers(CpuAccKind::Serial, 1);
        let q = CpuQueue::new(dev, QueueBehavior::NonBlocking);
        let buf = HostBuf::from_vec(vec![0.0; 8]);
        let args = CpuArgs::new().buf_f(&buf).scalar_i(8);
        // Enqueued before the death: still runs.
        q.enqueue_kernel(AddOne, WorkDiv::d1(8, 1, 1), args.clone())
            .unwrap();
        q.kill_worker();
        let err = q.wait().unwrap_err();
        assert!(matches!(err, Error::Device(_)), "{err}");
        assert!(q.worker_dead());
        assert_eq!(buf.as_slice(), &[1.0; 8]);
        // Dead worker refuses new work instead of hanging.
        let err = q
            .enqueue_kernel(AddOne, WorkDiv::d1(8, 1, 1), args.clone())
            .unwrap_err();
        assert!(matches!(err, Error::Device(_)), "{err}");
        // Reset respawns the worker; the queue works again.
        q.reset();
        assert!(!q.worker_dead());
        q.enqueue_kernel(AddOne, WorkDiv::d1(8, 1, 1), args)
            .unwrap();
        q.wait().unwrap();
        assert_eq!(buf.as_slice(), &[2.0; 8]);
    }

    #[test]
    fn fill_enqueues_in_order() {
        let dev = CpuDevice::with_workers(CpuAccKind::Serial, 1);
        let q = CpuQueue::new(dev, QueueBehavior::NonBlocking);
        let buf = HostBuf::<f64>::alloc(BufLayout::d1(8));
        q.enqueue_fill(&buf, 7.5).unwrap();
        q.wait().unwrap();
        assert_eq!(buf.as_slice(), &[7.5; 8]);
    }
}
