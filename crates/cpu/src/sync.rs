//! Block-level thread synchronization strategies.
//!
//! Each CPU accelerator picks how `sync_block_threads` is realized:
//!
//! * [`NoopSync`] — block-thread level collapsed to one thread (serial and
//!   block-pool accelerators): the barrier is trivially satisfied.
//! * [`BarrierSync`] — real OS threads per block thread meet at a
//!   `std::sync::Barrier` (C++11-threads / OpenMP-threads analogues).
//! * [`FiberSync`] — the boost-fiber analogue: block threads are OS threads
//!   but *exactly one runs at a time*; the barrier is a deterministic
//!   round-robin token handoff. This keeps kernels with producer/consumer
//!   shared-memory patterns correct on a single core and makes execution
//!   order reproducible.

use std::sync::Barrier;

use parking_lot::{Condvar, Mutex};

/// Strategy object handed to every kernel thread of a block.
pub trait BlockSync: Sync {
    /// Barrier across the block's threads; `thread_id` is the caller's
    /// linear index within the block.
    fn sync(&self, thread_id: usize);
}

/// Barrier for single-thread blocks: nothing to wait for.
pub struct NoopSync;

impl BlockSync for NoopSync {
    #[inline]
    fn sync(&self, _thread_id: usize) {}
}

/// `std::sync::Barrier`-based synchronization for truly parallel block
/// threads.
pub struct BarrierSync {
    barrier: Barrier,
}

impl BarrierSync {
    pub fn new(n: usize) -> Self {
        BarrierSync {
            barrier: Barrier::new(n),
        }
    }
}

impl BlockSync for BarrierSync {
    #[inline]
    fn sync(&self, _thread_id: usize) {
        self.barrier.wait();
    }
}

struct FiberState {
    /// Which fiber may run right now.
    turn: usize,
    /// Number of barriers each fiber has passed.
    arrived: Vec<u64>,
    /// Fibers whose kernel body has completed.
    finished: Vec<bool>,
}

/// Cooperative token-passing scheduler: `n` fibers, one runnable at a time.
///
/// Protocol: a fiber may execute only while `turn` equals its id. On
/// `sync`, it hands the token to the next fiber (cyclically) that is behind
/// it in barrier count; the *last* fiber to arrive keeps the token — at that
/// point every fiber has reached the barrier, so the semantics of a block
/// barrier hold. On completion of the kernel body the fiber passes the
/// token to the next unfinished fiber.
pub struct FiberSync {
    n: usize,
    state: Mutex<FiberState>,
    cv: Condvar,
}

impl FiberSync {
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        FiberSync {
            n,
            state: Mutex::new(FiberState {
                turn: 0,
                arrived: vec![0; n],
                finished: vec![false; n],
            }),
            cv: Condvar::new(),
        }
    }

    /// Block until this fiber holds the token. Must be called before the
    /// fiber starts executing kernel code.
    pub fn enter(&self, id: usize) {
        let mut st = self.state.lock();
        while st.turn != id {
            self.cv.wait(&mut st);
        }
    }

    /// Mark this fiber's kernel body finished and pass the token on.
    pub fn exit(&self, id: usize) {
        let mut st = self.state.lock();
        st.finished[id] = true;
        // Hand the token to the next unfinished fiber, if any.
        for k in 1..=self.n {
            let j = (id + k) % self.n;
            if !st.finished[j] {
                st.turn = j;
                self.cv.notify_all();
                return;
            }
        }
    }
}

impl BlockSync for FiberSync {
    fn sync(&self, id: usize) {
        let mut st = self.state.lock();
        debug_assert_eq!(st.turn, id, "fiber ran without holding the token");
        st.arrived[id] += 1;
        let my_count = st.arrived[id];
        // Find the next fiber that still has to reach this barrier.
        let mut target = None;
        for k in 1..=self.n {
            let j = (id + k) % self.n;
            if !st.finished[j] && st.arrived[j] < my_count {
                target = Some(j);
                break;
            }
        }
        match target {
            None => {
                // Everyone has arrived: we keep the token and proceed.
            }
            Some(j) => {
                st.turn = j;
                self.cv.notify_all();
                while st.turn != id {
                    self.cv.wait(&mut st);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn noop_sync_is_trivial() {
        NoopSync.sync(0);
    }

    #[test]
    fn barrier_sync_joins_threads() {
        let n = 8;
        let sync = Arc::new(BarrierSync::new(n));
        let phase = Arc::new(AtomicUsize::new(0));
        let mut handles = vec![];
        for t in 0..n {
            let sync = Arc::clone(&sync);
            let phase = Arc::clone(&phase);
            handles.push(thread::spawn(move || {
                phase.fetch_add(1, Ordering::SeqCst);
                sync.sync(t);
                // After the barrier every increment must be visible.
                assert_eq!(phase.load(Ordering::SeqCst), n);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    /// Run `n` fibers executing `body(id, &record)` under FiberSync.
    fn run_fibers(n: usize, body: impl Fn(usize, &FiberSync) + Send + Sync) {
        let sync = FiberSync::new(n);
        let body = &body;
        let sync = &sync;
        thread::scope(|scope| {
            for id in 0..n {
                scope.spawn(move || {
                    sync.enter(id);
                    body(id, sync);
                    sync.exit(id);
                });
            }
        });
    }

    #[test]
    fn fibers_run_one_at_a_time_and_barrier_orders_phases() {
        let n = 4;
        let log = Mutex::new(Vec::<(usize, usize)>::new());
        run_fibers(n, |id, sync| {
            log.lock().push((0, id));
            sync.sync(id);
            log.lock().push((1, id));
            sync.sync(id);
            log.lock().push((2, id));
        });
        let log = log.into_inner();
        assert_eq!(log.len(), 3 * n);
        // All phase-0 entries precede all phase-1 entries, etc.
        let phase_of_pos: Vec<usize> = log.iter().map(|(p, _)| *p).collect();
        let mut sorted = phase_of_pos.clone();
        sorted.sort_unstable();
        assert_eq!(phase_of_pos, sorted, "barrier phases interleaved: {log:?}");
        // Deterministic round-robin within each phase.
        let ids_phase0: Vec<usize> = log
            .iter()
            .filter(|(p, _)| *p == 0)
            .map(|(_, i)| *i)
            .collect();
        assert_eq!(ids_phase0, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fibers_without_syncs_run_sequentially() {
        let order = Mutex::new(Vec::new());
        run_fibers(5, |id, _| {
            order.lock().push(id);
        });
        assert_eq!(order.into_inner(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_fiber_degenerates_to_serial() {
        run_fibers(1, |id, sync| {
            assert_eq!(id, 0);
            sync.sync(id);
            sync.sync(id);
        });
    }

    #[test]
    fn fiber_shared_memory_producer_consumer() {
        // Thread 0 writes, barrier, all read: the pattern shared-memory
        // tiling kernels rely on — must work with one-at-a-time execution.
        let n = 3;
        let cell = Mutex::new(0usize);
        let seen = Mutex::new(Vec::new());
        run_fibers(n, |id, sync| {
            if id == 0 {
                *cell.lock() = 42;
            }
            sync.sync(id);
            seen.lock().push((*cell.lock(), id));
        });
        for (v, _) in seen.into_inner() {
            assert_eq!(v, 42);
        }
    }
}
