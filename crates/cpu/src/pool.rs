//! Worker-pool substrate for the block-parallel CPU accelerators.
//!
//! The implementation moved to [`alpaka_core::pool`] so the SIMT simulator
//! (`alpaka-sim`) can share it for deterministic parallel block execution;
//! this module re-exports it under the historical path.

pub use alpaka_core::pool::{panic_message, run_team, Pool};
