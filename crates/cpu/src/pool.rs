//! Worker-pool substrate for the block-parallel CPU accelerators.
//!
//! A fixed team of workers pulls block indices from a shared atomic counter
//! (dynamic scheduling, like OpenMP's `schedule(dynamic)`), so uneven block
//! costs balance automatically. Panics inside tasks are caught and
//! re-surfaced to the caller as kernel faults.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool. One instance lives per block-parallel device;
/// launches borrow it for the duration of a grid.
pub struct Pool {
    tx: Sender<Job>,
    workers: usize,
    handles: Vec<thread::JoinHandle<()>>,
}

impl Pool {
    /// Create a pool with `workers` threads (min 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = unbounded::<Job>();
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let rx = rx.clone();
            handles.push(
                thread::Builder::new()
                    .name(format!("alpaka-pool-{w}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn pool worker"),
            );
        }
        Pool {
            tx,
            workers,
            handles,
        }
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `f(i)` for every `i in 0..count`, distributing dynamically over
    /// the workers, and block until all calls completed. The first panic (if
    /// any) is returned as its message.
    pub fn run_indexed<F>(&self, count: usize, f: F) -> Result<(), String>
    where
        F: Fn(usize) + Send + Sync,
    {
        if count == 0 {
            return Ok(());
        }
        struct Shared<F> {
            next: AtomicUsize,
            count: usize,
            f: F,
            remaining: Mutex<usize>,
            done: Condvar,
            panic: Mutex<Option<String>>,
        }
        let team = self.workers.min(count);
        let shared = Arc::new(Shared {
            next: AtomicUsize::new(0),
            count,
            f,
            remaining: Mutex::new(team),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });

        // SAFETY-free trick: we extend the closure's lifetime to 'static by
        // Arc-ing the shared state; the function blocks until all workers
        // dropped their reference to the work, so `f` never outlives this
        // call frame observably. To keep everything in safe Rust, `f` is
        // required to be `Send + Sync` and is moved into the Arc above.
        let worker_loop = |shared: Arc<Shared<F>>| {
            let result = catch_unwind(AssertUnwindSafe(|| loop {
                let i = shared.next.fetch_add(1, Ordering::Relaxed);
                if i >= shared.count {
                    break;
                }
                (shared.f)(i);
            }));
            if let Err(p) = result {
                let msg = panic_message(p);
                let mut slot = shared.panic.lock();
                if slot.is_none() {
                    *slot = Some(msg);
                }
            }
            let mut rem = shared.remaining.lock();
            *rem -= 1;
            if *rem == 0 {
                shared.done.notify_all();
            }
        };

        // The closure `f` borrows the caller's stack, so we cannot hand it
        // to the long-lived pool workers directly (they require 'static).
        // Instead we run a scoped team here; the pool's channel threads are
        // used for fully-owned jobs (see `spawn`), while grid execution uses
        // this scoped path. This mirrors rayon's scope vs. spawn split.
        thread::scope(|scope| {
            for _ in 0..team.saturating_sub(1) {
                let shared = Arc::clone(&shared);
                scope.spawn(move || worker_loop(shared));
            }
            // The caller participates too, so a 1-worker pool needs no
            // extra thread and small grids avoid spawn latency.
            worker_loop(Arc::clone(&shared));
            let mut rem = shared.remaining.lock();
            while *rem != 0 {
                shared.done.wait(&mut rem);
            }
        });

        let panic = shared.panic.lock().take();
        match panic {
            Some(msg) => Err(msg),
            None => Ok(()),
        }
    }

    /// Fire-and-forget job on the long-lived workers (used by async queues).
    pub fn spawn(&self, job: Job) {
        self.tx
            .send(job)
            .expect("pool workers terminated unexpectedly");
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Close the channel so workers exit, then reap them.
        let (tx, _rx) = unbounded();
        drop(std::mem::replace(&mut self.tx, tx));
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

pub(crate) fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "kernel panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn all_indices_run_exactly_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.run_indexed(1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_grid_is_ok() {
        let pool = Pool::new(4);
        pool.run_indexed(0, |_| panic!("must not run")).unwrap();
    }

    #[test]
    fn single_worker_pool_uses_caller_thread() {
        let pool = Pool::new(1);
        let caller = thread::current().id();
        let same = AtomicU64::new(0);
        pool.run_indexed(16, |_| {
            if thread::current().id() == caller {
                same.fetch_add(1, Ordering::Relaxed);
            }
        })
        .unwrap();
        assert_eq!(same.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn panic_is_reported_not_propagated() {
        let pool = Pool::new(4);
        let err = pool
            .run_indexed(100, |i| {
                if i == 37 {
                    panic!("boom at {i}");
                }
            })
            .unwrap_err();
        assert!(err.contains("boom at 37"));
    }

    #[test]
    fn spawn_runs_owned_jobs() {
        let pool = Pool::new(2);
        let (tx, rx) = crossbeam::channel::bounded(1);
        pool.spawn(Box::new(move || {
            tx.send(42u32).unwrap();
        }));
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn workers_clamped_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.workers(), 1);
        pool.run_indexed(3, |_| {}).unwrap();
    }
}
