//! Stress tests for the CPU back-end substrates: many barriers, wide
//! blocks, deep queues, pool churn.

use alpaka_core::buffer::{BufLayout, HostBuf};
use alpaka_core::kernel::Kernel;
use alpaka_core::ops::{KernelOps, KernelOpsExt};
use alpaka_core::queue::QueueBehavior;
use alpaka_core::workdiv::WorkDiv;
use alpaka_cpu::{CpuAccKind, CpuArgs, CpuDevice, CpuQueue, Pool};

/// Ping-pong through shared memory `rounds` times: each round every thread
/// writes its slot, barriers, reads its neighbour's slot, barriers.
#[derive(Clone)]
struct BarrierStorm {
    rounds: i64,
}

impl Kernel for BarrierStorm {
    fn name(&self) -> &str {
        "barrier_storm"
    }
    fn run<O: KernelOps>(&self, o: &mut O) {
        let out = o.buf_f(0);
        let sh = o.shared_f(256);
        let tid = o.thread_idx(0);
        let bdim = o.block_thread_extent(0);
        let zero = o.lit_i(0);
        let rounds = o.lit_i(self.rounds);
        let zf = o.lit_f(0.0);
        let acc = o.var_f(zf);
        o.for_range(zero, rounds, |o, r| {
            let rf = o.i2f(r);
            let tf = o.i2f(tid);
            let v = o.add_f(rf, tf);
            o.st_sf(sh, tid, v);
            o.sync_block_threads();
            // Read the cyclic neighbour.
            let one = o.lit_i(1);
            let t1 = o.add_i(tid, one);
            let nb = o.rem_i(t1, bdim);
            let nv = o.ld_sf(sh, nb);
            let cur = o.vget_f(acc);
            let nx = o.add_f(cur, nv);
            o.vset_f(acc, nx);
            o.sync_block_threads();
        });
        let gid = o.linear_global_thread_idx();
        let total = o.vget_f(acc);
        o.st_gf(out, gid, total);
    }
}

fn barrier_storm_expected(bdim: usize, rounds: i64, tid: usize) -> f64 {
    let nb = (tid + 1) % bdim;
    (0..rounds).map(|r| (r as f64) + nb as f64).sum()
}

fn run_storm(kind: CpuAccKind, block: usize, rounds: i64) {
    let dev = CpuDevice::with_workers(kind, 4);
    let out = HostBuf::<f64>::alloc(BufLayout::d1(2 * block));
    let args = CpuArgs::new().buf_f(&out);
    dev.launch(&BarrierStorm { rounds }, &WorkDiv::d1(2, block, 1), &args)
        .unwrap();
    for b in 0..2 {
        for t in 0..block {
            assert_eq!(
                out.as_slice()[b * block + t],
                barrier_storm_expected(block, rounds, t),
                "block {b} thread {t}"
            );
        }
    }
}

#[test]
fn barrier_storm_threads() {
    run_storm(CpuAccKind::Threads, 64, 50);
}

#[test]
fn barrier_storm_block_threads() {
    run_storm(CpuAccKind::BlockThreads, 64, 50);
}

#[test]
fn barrier_storm_fibers() {
    run_storm(CpuAccKind::Fibers, 32, 30);
}

#[test]
fn wide_block_on_threads_backend() {
    // 256 OS threads in one block, a couple of syncs.
    run_storm(CpuAccKind::Threads, 256, 3);
}

#[test]
fn pool_handles_many_tiny_grids() {
    let pool = Pool::new(4);
    for round in 0..200 {
        let hits = std::sync::atomic::AtomicUsize::new(0);
        pool.run_indexed(round % 7 + 1, |_| {
            hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(
            hits.load(std::sync::atomic::Ordering::Relaxed),
            round % 7 + 1
        );
    }
}

#[test]
fn deep_async_queue() {
    #[derive(Clone)]
    struct Inc;
    impl Kernel for Inc {
        fn run<O: KernelOps>(&self, o: &mut O) {
            let b = o.buf_f(0);
            let i = o.linear_global_thread_idx();
            let v = o.ld_gf(b, i);
            let one = o.lit_f(1.0);
            let r = o.add_f(v, one);
            o.st_gf(b, i, r);
        }
    }
    let dev = CpuDevice::with_workers(CpuAccKind::Blocks, 2);
    let q = CpuQueue::new(dev, QueueBehavior::NonBlocking);
    let buf = HostBuf::<f64>::alloc(BufLayout::d1(16));
    let depth = 500;
    for _ in 0..depth {
        q.enqueue_kernel(Inc, WorkDiv::d1(16, 1, 1), CpuArgs::new().buf_f(&buf))
            .unwrap();
    }
    q.wait().unwrap();
    assert_eq!(buf.as_slice(), &[depth as f64; 16]);
}

#[test]
fn splitmix_matches_host_formula() {
    // The DSL helper `KernelOpsExt::splitmix64` must equal the host
    // SplitMix64 used by workload generators and the hase reference.
    #[derive(Clone)]
    struct Mix;
    impl Kernel for Mix {
        fn run<O: KernelOps>(&self, o: &mut O) {
            let input = o.buf_i(0);
            let out = o.buf_i(1);
            let i = o.linear_global_thread_idx();
            let x = o.ld_gi(input, i);
            let m = o.splitmix64(x);
            o.st_gi(out, i, m);
        }
    }
    fn host_splitmix(x: i64) -> i64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15_u64 as i64);
        z ^= ((z as u64) >> 30) as i64;
        z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9_u64 as i64);
        z ^= ((z as u64) >> 27) as i64;
        z = z.wrapping_mul(0x94D0_49BB_1331_11EB_u64 as i64);
        z ^= ((z as u64) >> 31) as i64;
        z
    }
    let inputs: Vec<i64> = vec![0, 1, -1, 42, i64::MIN, i64::MAX, 0x1234_5678_9ABC_DEF0];
    let n = inputs.len();
    let dev = CpuDevice::with_workers(CpuAccKind::Serial, 1);
    let inb = HostBuf::from_vec(inputs.clone());
    let outb = HostBuf::<i64>::alloc(BufLayout::d1(n));
    let args = CpuArgs::new().buf_i(&inb).buf_i(&outb);
    dev.launch(&Mix, &WorkDiv::d1(n, 1, 1), &args).unwrap();
    for (i, x) in inputs.iter().enumerate() {
        assert_eq!(outb.as_slice()[i], host_splitmix(*x), "input {x}");
    }
}

#[test]
fn fibers_interleave_deterministically_under_repetition() {
    // Same launch twice must give identical results (fiber scheduling is
    // deterministic by design).
    let run = || {
        let dev = CpuDevice::with_workers(CpuAccKind::Fibers, 4);
        let out = HostBuf::<f64>::alloc(BufLayout::d1(64));
        let args = CpuArgs::new().buf_f(&out);
        dev.launch(&BarrierStorm { rounds: 17 }, &WorkDiv::d1(2, 32, 1), &args)
            .unwrap();
        out.to_dense()
    };
    assert_eq!(run(), run());
}
