//! # alpaka-accsim
//!
//! The simulated-device accelerator back-end for the Alpaka reproduction —
//! the analogue of the paper's CUDA back-end. Kernel launches trace the
//! single-source DSL into `alpaka-kir`, optimize it ("compilation"), and
//! interpret it on a simulated SM/warp machine from `alpaka-sim` with a
//! modeled timeline (kernel time + host<->device transfer costs).

pub mod device;
pub mod queue;

pub use device::{CompiledKernel, SimBufferF, SimBufferI, SimDevice, SimLaunchArgs};
pub use queue::SimQueue;

#[cfg(test)]
mod tests {
    use super::*;
    use alpaka_core::buffer::{BufLayout, HostBuf};
    use alpaka_core::kernel::Kernel;
    use alpaka_core::ops::{KernelOps, KernelOpsExt};
    use alpaka_core::queue::QueueBehavior;
    use alpaka_core::workdiv::WorkDiv;
    use alpaka_sim::{DeviceSpec, ExecMode};

    struct Scale;
    impl Kernel for Scale {
        fn name(&self) -> &str {
            "scale"
        }
        fn run<O: KernelOps>(&self, o: &mut O) {
            let b = o.buf_f(0);
            let a = o.param_f(0);
            let n = o.param_i(0);
            let i = o.global_thread_idx(0);
            let c = o.lt_i(i, n);
            o.if_(c, |o| {
                let v = o.ld_gf(b, i);
                let r = o.mul_f(v, a);
                o.st_gf(b, i, r);
            });
        }
    }

    #[test]
    fn full_offload_roundtrip() {
        // Host buffer -> device -> kernel -> back (Listing 4 + 5 flow).
        let dev = SimDevice::new(DeviceSpec::k20());
        let mut q = SimQueue::new(dev.clone(), QueueBehavior::NonBlocking);
        let n = 500;
        let host = HostBuf::from_vec((0..n).map(|i| i as f64).collect());
        let dbuf = dev.alloc_f64(BufLayout::d1(n));
        q.enqueue_h2d_f64(&dbuf, &host).unwrap();
        let args = SimLaunchArgs::new()
            .buf_f(&dbuf)
            .scalar_f(3.0)
            .scalar_i(n as i64);
        let wd = WorkDiv::d1(4, 128, 1);
        q.enqueue_kernel(&Scale, &wd, &args, ExecMode::Full)
            .unwrap();
        q.enqueue_d2h_f64(&host, &dbuf).unwrap();
        q.wait().unwrap();
        for i in 0..n {
            assert_eq!(host.as_slice()[i], 3.0 * i as f64);
        }
        // Simulated time advanced: transfers + launch overhead at least.
        assert!(q.elapsed_s() > 0.0);
        assert!(dev.clock_s() >= q.elapsed_s());
    }

    #[test]
    fn compile_once_launch_many() {
        let dev = SimDevice::new(DeviceSpec::k20());
        let n = 256;
        let wd = WorkDiv::d1(2, 128, 1);
        let compiled = dev.compile(&Scale, &wd, true);
        assert!(compiled.program.instr_count() > 0);
        let dbuf = dev.alloc_f64(BufLayout::d1(n));
        let host = HostBuf::from_vec(vec![1.0; n]);
        dbuf.write_from(&host).unwrap();
        let args = SimLaunchArgs::new()
            .buf_f(&dbuf)
            .scalar_f(2.0)
            .scalar_i(n as i64);
        for _ in 0..3 {
            dev.launch(&compiled, &wd, &args, ExecMode::Full).unwrap();
        }
        assert_eq!(dbuf.to_dense(), vec![8.0; n]);
    }

    #[test]
    fn specialized_kernel_rejects_other_workdiv() {
        let dev = SimDevice::new(DeviceSpec::k20());
        let wd = WorkDiv::d1(2, 128, 1);
        let compiled = dev.compile(&Scale, &wd, true);
        let other = WorkDiv::d1(2, 64, 1);
        let dbuf = dev.alloc_f64(BufLayout::d1(16));
        let args = SimLaunchArgs::new().buf_f(&dbuf).scalar_f(1.0).scalar_i(16);
        let err = dev
            .launch(&compiled, &other, &args, ExecMode::Full)
            .unwrap_err();
        assert!(matches!(err, alpaka_core::error::Error::InvalidWorkDiv(_)));
    }

    #[test]
    fn buffers_are_device_checked() {
        let d1 = SimDevice::new(DeviceSpec::k20());
        let d2 = SimDevice::new(DeviceSpec::k20());
        let b2 = d2.alloc_f64(BufLayout::d1(4));
        let args = SimLaunchArgs::new().buf_f(&b2).scalar_f(1.0).scalar_i(4);
        let err = d1
            .run(&Scale, &WorkDiv::d1(1, 4, 1), &args, ExecMode::Full)
            .unwrap_err();
        assert!(matches!(err, alpaka_core::error::Error::BadArg(_)));
    }

    #[test]
    fn pitched_2d_copy_roundtrip() {
        let dev = SimDevice::new(DeviceSpec::e5_2630v3());
        let rows = 5;
        let cols = 5;
        let data: Vec<f64> = (0..rows * cols).map(|i| i as f64 * 1.5).collect();
        let host = HostBuf::from_dense_2d(rows, cols, &data).unwrap();
        let dbuf = dev.alloc_f64(BufLayout::d2(rows, cols, 8));
        dbuf.write_from(&host).unwrap();
        let back = HostBuf::<f64>::alloc(BufLayout::d2_dense(rows, cols));
        dbuf.read_into(&back).unwrap();
        assert_eq!(back.to_dense(), data);
    }

    #[test]
    fn event_signals_in_simulated_queue() {
        let dev = SimDevice::new(DeviceSpec::k20());
        let mut q = SimQueue::new(dev, QueueBehavior::Blocking);
        let ev = alpaka_core::queue::HostEvent::new();
        q.enqueue_event(&ev).unwrap();
        assert!(ev.is_done());
    }

    #[test]
    fn cpu_spec_rejects_multithread_blocks() {
        let dev = SimDevice::new(DeviceSpec::e5_2630v3());
        let dbuf = dev.alloc_f64(BufLayout::d1(16));
        let args = SimLaunchArgs::new().buf_f(&dbuf).scalar_f(1.0).scalar_i(16);
        let err = dev
            .run(&Scale, &WorkDiv::d1(4, 4, 1), &args, ExecMode::Full)
            .unwrap_err();
        assert!(matches!(err, alpaka_core::error::Error::InvalidWorkDiv(_)));
    }
}
