//! In-order queues for simulated devices.
//!
//! The simulation executes synchronously in wall time, so both blocking and
//! non-blocking queues run operations immediately; the distinction the
//! paper's streams make (host blocking vs. resuming) is preserved in the
//! *simulated* timeline: every queue keeps its own simulated clock, and
//! events record the simulated timestamp at which all prior operations of
//! the queue completed.

use alpaka_core::buffer::HostBuf;
use alpaka_core::error::Result;
use alpaka_core::kernel::Kernel;
use alpaka_core::queue::{HostEvent, QueueBehavior};
use alpaka_core::workdiv::WorkDiv;
use alpaka_sim::{ExecMode, SimReport};

use crate::device::{CompiledKernel, SimBufferF, SimBufferI, SimDevice, SimLaunchArgs};

/// An in-order work queue on a simulated device.
pub struct SimQueue {
    device: SimDevice,
    behavior: QueueBehavior,
    /// Simulated seconds consumed by operations enqueued on THIS queue.
    queue_clock_s: f64,
    last_report: Option<SimReport>,
}

impl SimQueue {
    pub fn new(device: SimDevice, behavior: QueueBehavior) -> Self {
        SimQueue {
            device,
            behavior,
            queue_clock_s: 0.0,
            last_report: None,
        }
    }

    pub fn behavior(&self) -> QueueBehavior {
        self.behavior
    }

    pub fn device(&self) -> &SimDevice {
        &self.device
    }

    /// Simulated seconds of work enqueued on this queue so far.
    pub fn elapsed_s(&self) -> f64 {
        self.queue_clock_s
    }

    pub fn reset_elapsed(&mut self) {
        self.queue_clock_s = 0.0;
    }

    /// Report of the most recent kernel launch.
    pub fn last_report(&self) -> Option<&SimReport> {
        self.last_report.as_ref()
    }

    /// Enqueue a kernel (compiling it specialized for `wd`).
    pub fn enqueue_kernel<K: Kernel + ?Sized>(
        &mut self,
        kernel: &K,
        wd: &WorkDiv,
        args: &SimLaunchArgs,
        mode: ExecMode,
    ) -> Result<&SimReport> {
        let before = self.device.clock_s();
        let report = self.device.run(kernel, wd, args, mode)?;
        self.queue_clock_s += self.device.clock_s() - before;
        self.last_report = Some(report);
        Ok(self.last_report.as_ref().unwrap())
    }

    /// Enqueue a pre-compiled kernel.
    pub fn enqueue_compiled(
        &mut self,
        compiled: &CompiledKernel,
        wd: &WorkDiv,
        args: &SimLaunchArgs,
        mode: ExecMode,
    ) -> Result<&SimReport> {
        let before = self.device.clock_s();
        let report = self.device.launch(compiled, wd, args, mode)?;
        self.queue_clock_s += self.device.clock_s() - before;
        self.last_report = Some(report);
        Ok(self.last_report.as_ref().unwrap())
    }

    /// Enqueue a host->device copy.
    pub fn enqueue_h2d_f64(&mut self, dst: &SimBufferF, src: &HostBuf<f64>) -> Result<()> {
        let before = self.device.clock_s();
        dst.write_from(src)?;
        self.queue_clock_s += self.device.clock_s() - before;
        Ok(())
    }

    /// Enqueue a device->host copy.
    pub fn enqueue_d2h_f64(&mut self, dst: &HostBuf<f64>, src: &SimBufferF) -> Result<()> {
        let before = self.device.clock_s();
        src.read_into(dst)?;
        self.queue_clock_s += self.device.clock_s() - before;
        Ok(())
    }

    pub fn enqueue_h2d_i64(&mut self, dst: &SimBufferI, src: &HostBuf<i64>) -> Result<()> {
        let before = self.device.clock_s();
        dst.write_from(src)?;
        self.queue_clock_s += self.device.clock_s() - before;
        Ok(())
    }

    pub fn enqueue_d2h_i64(&mut self, dst: &HostBuf<i64>, src: &SimBufferI) -> Result<()> {
        let before = self.device.clock_s();
        src.read_into(dst)?;
        self.queue_clock_s += self.device.clock_s() - before;
        Ok(())
    }

    /// Enqueue an event: signaled once all prior operations completed —
    /// immediately true in the synchronous simulation.
    pub fn enqueue_event(&mut self, ev: &HostEvent) -> Result<()> {
        ev.signal();
        Ok(())
    }

    /// Drain the queue (a no-op in the synchronous simulation, kept for
    /// API parity with the CPU queues).
    pub fn wait(&self) -> Result<()> {
        Ok(())
    }
}
