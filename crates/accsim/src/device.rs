//! Simulated-device back-end: devices, buffers and kernel compilation.
//!
//! This plays the role of Alpaka's CUDA back-end: the host allocates
//! device-resident buffers, copies data across explicitly (with a modeled
//! transfer cost), *compiles* kernels (here: traces the single-source DSL
//! into `alpaka-kir` and runs the optimizer — the `nvcc` analogue) and
//! launches them on the SIMT interpreter of `alpaka-sim`.

use std::sync::Arc;

use alpaka_core::acc::AccCaps;
use alpaka_core::buffer::{BufLayout, HostBuf};
use alpaka_core::error::{Error, Result};
use alpaka_core::kernel::{Kernel, ScalarArgs};
use alpaka_core::workdiv::WorkDiv;
use alpaka_kir::{optimize, trace_kernel_spec, PassStats, Program, SpecConsts};
use alpaka_sim::{
    resolve_sim_engine, resolve_sim_threads, run_kernel_launch_faulty, transfer_time, DeviceMem,
    DeviceSpec, Engine, ExecMode, FaultPlan, LaunchFaults, SimArgs, SimBufF, SimBufI, SimError,
    SimErrorKind, SimReport,
};
use parking_lot::Mutex;

struct State {
    mem: DeviceMem,
    /// Accumulated simulated time in seconds (kernels + transfers).
    clock_s: f64,
    /// Active fault-injection plan, if any.
    faults: Option<FaultPlan>,
    /// Monotonic kernel-launch ordinal; keys injected launch-scoped faults
    /// so campaigns replay identically regardless of interpreter threads.
    launches: u64,
    /// Monotonic fault-aware allocation ordinal (`try_alloc_*` only).
    allocs: u64,
    /// Set once an injected device loss fires: the device is poisoned and
    /// every subsequent operation fails with `Error::DeviceLost`.
    lost: bool,
    /// Armed by the health layer once a quarantined device has passed its
    /// recovery cooldown: the next `Queue::reset` (or `revive`) may then
    /// clear the sticky `lost` flag.
    recover_armed: bool,
}

/// Map an interpreter-level [`SimError`] to the structured facade error,
/// preserving the fault kind and block/thread coordinates.
fn to_core_error(kernel: &str, e: SimError) -> Error {
    let info = alpaka_core::error::FaultInfo {
        msg: format!("{kernel}: {}", e.msg),
        block: e.block,
        thread: e.thread,
        transient: matches!(e.kind, SimErrorKind::Fault { transient: true }),
    };
    match e.kind {
        SimErrorKind::Timeout => Error::Timeout(info),
        SimErrorKind::DeviceLost => Error::DeviceLost(info.msg),
        SimErrorKind::BadBuffer => Error::BadBuffer(info.msg),
        SimErrorKind::Fault { .. } => Error::KernelFault(info),
    }
}

/// A simulated device (one entry of Table 3, or a custom spec).
#[derive(Clone)]
pub struct SimDevice {
    spec: Arc<DeviceSpec>,
    state: Arc<Mutex<State>>,
    /// Configured interpreter threads; the `ALPAKA_SIM_THREADS` environment
    /// variable still overrides this at each launch.
    threads: usize,
    /// Interpreter engine used for launches from this handle; `None` means
    /// the default (`Engine::Compiled`, overridable per process via the
    /// `ALPAKA_SIM_ENGINE` environment variable).
    engine: Option<Engine>,
}

impl SimDevice {
    pub fn new(spec: DeviceSpec) -> Self {
        let threads = spec.sim_threads.max(1);
        Self::with_threads(spec, threads)
    }

    /// A device whose launches interpret blocks on `threads` host workers
    /// (ignoring `spec.sim_threads`; `ALPAKA_SIM_THREADS` still overrides).
    /// `threads == 1` is the exact serial interpreter.
    pub fn with_threads(spec: DeviceSpec, threads: usize) -> Self {
        SimDevice {
            spec: Arc::new(spec),
            state: Arc::new(Mutex::new(State {
                mem: DeviceMem::new(),
                clock_s: 0.0,
                faults: FaultPlan::from_env(),
                launches: 0,
                allocs: 0,
                lost: false,
                recover_armed: false,
            })),
            threads: threads.max(1),
            engine: None,
        }
    }

    /// Select the interpreter engine for launches from this handle
    /// (builder form), bypassing the `ALPAKA_SIM_ENGINE` override. All
    /// engines are bit-identical in results and statistics;
    /// `Engine::Reference` is the tree-walking oracle.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// The interpreter engine this handle launches with when the
    /// `ALPAKA_SIM_ENGINE` override is unset.
    pub fn engine(&self) -> Engine {
        self.engine.unwrap_or(Engine::Compiled)
    }

    /// Number of kernel launches attempted on this device so far (shared
    /// across clones; used as the launch ordinal in traces and fault plans).
    pub fn launch_count(&self) -> u64 {
        self.state.lock().launches
    }

    /// Attach a fault-injection plan (builder form). Replaces any plan
    /// picked up from `ALPAKA_SIM_FAULTS`.
    pub fn with_faults(self, plan: FaultPlan) -> Self {
        self.set_faults(Some(plan));
        self
    }

    /// Install or clear the fault-injection plan on the shared device state
    /// (affects every clone of this device handle).
    pub fn set_faults(&self, plan: Option<FaultPlan>) {
        self.state.lock().faults = plan;
    }

    /// The active fault plan, if any.
    pub fn faults(&self) -> Option<FaultPlan> {
        self.state.lock().faults.clone()
    }

    /// True once an injected device loss has poisoned this device.
    pub fn is_lost(&self) -> bool {
        self.state.lock().lost
    }

    /// Clear the lost flag: models a device reset / re-enumeration after a
    /// quarantine cooldown (the pool's Quarantined → Recovered edge).
    /// Memory, clock and ordinals are preserved — in particular the launch
    /// ordinal that triggered the injected loss has already been consumed,
    /// so the same `lost_at_launch` plan does not immediately re-fire.
    pub fn revive(&self) {
        let mut st = self.state.lock();
        st.lost = false;
        st.recover_armed = false;
    }

    /// Arm device-level recovery: records that the health layer considers
    /// this (quarantined) device recovered, so a subsequent `Queue::reset`
    /// may clear the sticky `lost` flag via
    /// [`SimDevice::clear_lost_if_recovered`].
    pub fn mark_recovered(&self) {
        self.state.lock().recover_armed = true;
    }

    /// Clear the sticky `lost` flag if — and only if — the health layer
    /// armed recovery for this device. Returns true when the device came
    /// back. A fresh device loss always re-disarms, so a stale arming can
    /// never mask a *new* loss.
    pub fn clear_lost_if_recovered(&self) -> bool {
        let mut st = self.state.lock();
        if st.lost && st.recover_armed {
            st.lost = false;
            st.recover_armed = false;
            true
        } else {
            false
        }
    }

    /// Charge `s` simulated seconds to the device clock (used by the retry
    /// layer to account backoff delays in simulated time).
    pub fn advance_clock(&self, s: f64) {
        self.state.lock().clock_s += s.max(0.0);
    }

    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Interpreter worker threads launches are configured to use (before
    /// the `ALPAKA_SIM_THREADS` override and per-launch clamping).
    pub fn sim_threads(&self) -> usize {
        self.threads
    }

    /// Capability descriptor in the shared vocabulary.
    pub fn caps(&self) -> AccCaps {
        AccCaps {
            name: format!("AccSim({})", self.spec.name),
            kind: self.spec.kind,
            max_threads_per_block: self.spec.max_threads_per_block,
            requires_single_thread_blocks: self.spec.max_threads_per_block == 1,
            warp_width: self.spec.warp_width,
            shared_mem_per_block: self.spec.shared_mem_per_block,
            concurrent_blocks: self.spec.sms,
            supports_async_queues: true,
        }
    }

    /// Simulated seconds elapsed on this device so far.
    pub fn clock_s(&self) -> f64 {
        self.state.lock().clock_s
    }

    /// Reset the simulated clock (between experiments).
    pub fn reset_clock(&self) {
        self.state.lock().clock_s = 0.0;
    }

    /// Allocate a zeroed f64 device buffer (infallible fast path; not
    /// subject to fault injection — see [`SimDevice::try_alloc_f64`]).
    pub fn alloc_f64(&self, layout: BufLayout) -> SimBufferF {
        let id = self.state.lock().mem.alloc_f(layout.alloc_len());
        SimBufferF {
            dev: self.clone(),
            id,
            layout,
        }
    }

    /// Allocate a zeroed i64 device buffer (infallible fast path; not
    /// subject to fault injection — see [`SimDevice::try_alloc_i64`]).
    pub fn alloc_i64(&self, layout: BufLayout) -> SimBufferI {
        let id = self.state.lock().mem.alloc_i(layout.alloc_len());
        SimBufferI {
            dev: self.clone(),
            id,
            layout,
        }
    }

    /// Consume one allocation ordinal against the fault plan. Fails when
    /// the device is lost or the plan injects an OOM at this ordinal.
    fn check_alloc(st: &mut State) -> Result<()> {
        if st.lost {
            return Err(Error::DeviceLost(
                "allocation on a lost device (injected)".into(),
            ));
        }
        let ordinal = st.allocs;
        st.allocs += 1;
        if st.faults.as_ref().is_some_and(|p| p.oom_hits(ordinal)) {
            return Err(Error::Device(format!(
                "simulated device out of memory (injected OOM at allocation ordinal {ordinal})"
            )));
        }
        Ok(())
    }

    /// Fault-aware f64 allocation: consumes one allocation ordinal against
    /// the active [`FaultPlan`] and fails with `Error::Device` on an
    /// injected OOM, or `Error::DeviceLost` on a poisoned device.
    pub fn try_alloc_f64(&self, layout: BufLayout) -> Result<SimBufferF> {
        let mut st = self.state.lock();
        Self::check_alloc(&mut st)?;
        let id = st.mem.alloc_f(layout.alloc_len());
        drop(st);
        Ok(SimBufferF {
            dev: self.clone(),
            id,
            layout,
        })
    }

    /// Fault-aware i64 allocation; see [`SimDevice::try_alloc_f64`].
    pub fn try_alloc_i64(&self, layout: BufLayout) -> Result<SimBufferI> {
        let mut st = self.state.lock();
        Self::check_alloc(&mut st)?;
        let id = st.mem.alloc_i(layout.alloc_len());
        drop(st);
        Ok(SimBufferI {
            dev: self.clone(),
            id,
            layout,
        })
    }

    pub(crate) fn same_device(&self, other: &SimDevice) -> bool {
        Arc::ptr_eq(&self.state, &other.state)
    }

    /// Compile (trace + optimize) a kernel for this device and a given
    /// launch shape. `specialize` bakes the block/element extents into the
    /// program as constants — the template-specialization analogue; the
    /// compiled kernel is then only valid for launches with those extents.
    pub fn compile<K: Kernel + ?Sized>(
        &self,
        kernel: &K,
        wd: &WorkDiv,
        specialize: bool,
    ) -> CompiledKernel {
        let spec_consts = if specialize {
            SpecConsts {
                block_thread_extent: Some(wd.threads),
                thread_elem_extent: Some(wd.elems),
            }
        } else {
            SpecConsts::default()
        };
        let mut program = trace_kernel_spec(kernel, wd.dim, spec_consts);
        let pass_stats = optimize(&mut program);
        CompiledKernel {
            program,
            pass_stats,
            spec_consts,
        }
    }

    /// Execute a compiled kernel. Advances the simulated clock by the
    /// modeled execution time and returns the full report.
    pub fn launch(
        &self,
        compiled: &CompiledKernel,
        wd: &WorkDiv,
        args: &SimLaunchArgs,
        mode: ExecMode,
    ) -> Result<SimReport> {
        wd.validate(&self.caps())?;
        if let Some(bt) = compiled.spec_consts.block_thread_extent {
            if bt != wd.threads {
                return Err(Error::InvalidWorkDiv(format!(
                    "kernel was specialized for block extent {bt:?}, launched with {:?}",
                    wd.threads
                )));
            }
        }
        if let Some(te) = compiled.spec_consts.thread_elem_extent {
            if te != wd.elems {
                return Err(Error::InvalidWorkDiv(format!(
                    "kernel was specialized for element extent {te:?}, launched with {:?}",
                    wd.elems
                )));
            }
        }
        for b in &args.bufs_f {
            if !self.same_device(&b.dev) {
                return Err(Error::BadArg("f64 buffer bound from another device".into()));
            }
        }
        for b in &args.bufs_i {
            if !self.same_device(&b.dev) {
                return Err(Error::BadArg("i64 buffer bound from another device".into()));
            }
        }
        let sim_args = SimArgs {
            bufs_f: args.bufs_f.iter().map(|b| b.id).collect(),
            bufs_i: args.bufs_i.iter().map(|b| b.id).collect(),
            params_f: args.scalars.f.clone(),
            params_i: args.scalars.i.clone(),
        };
        let mut st = self.state.lock();
        if st.lost {
            return Err(Error::DeviceLost(format!(
                "{}: launch on a lost device (injected)",
                compiled.program.name
            )));
        }
        let ordinal = st.launches;
        st.launches += 1;
        let faults = match &st.faults {
            Some(plan) => {
                if plan.lost_hits(ordinal) {
                    st.lost = true;
                    st.recover_armed = false;
                    return Err(Error::DeviceLost(format!(
                        "{}: device lost (injected at launch ordinal {ordinal})",
                        compiled.program.name
                    )));
                }
                Some(LaunchFaults {
                    ecc: plan.ecc_ctx(ordinal),
                    watchdog_fuel: plan.watchdog_fuel,
                })
            }
            None => None,
        };
        let engine = match self.engine {
            Some(e) => e,
            None => resolve_sim_engine(Engine::Compiled)
                .map_err(|e| to_core_error(&compiled.program.name, e))?,
        };
        let report = run_kernel_launch_faulty(
            &self.spec,
            &mut st.mem,
            &compiled.program,
            wd,
            &sim_args,
            mode,
            resolve_sim_threads(self.threads),
            engine,
            faults,
        )
        .map_err(|e| to_core_error(&compiled.program.name, e))?;
        st.clock_s += report.time.total_s;
        Ok(report)
    }

    /// Convenience: compile (specialized) and launch in one step.
    pub fn run<K: Kernel + ?Sized>(
        &self,
        kernel: &K,
        wd: &WorkDiv,
        args: &SimLaunchArgs,
        mode: ExecMode,
    ) -> Result<SimReport> {
        let compiled = self.compile(kernel, wd, true);
        self.launch(&compiled, wd, args, mode)
    }
}

impl core::fmt::Debug for SimDevice {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SimDevice({})", self.spec.name)
    }
}

/// A kernel traced and optimized for a device (the "compiled PTX").
pub struct CompiledKernel {
    pub program: Program,
    pub pass_stats: PassStats,
    spec_consts: SpecConsts,
}

/// Device-resident f64 buffer handle (shallow clone).
#[derive(Clone)]
pub struct SimBufferF {
    dev: SimDevice,
    id: SimBufF,
    layout: BufLayout,
}

/// Device-resident i64 buffer handle (shallow clone).
#[derive(Clone)]
pub struct SimBufferI {
    dev: SimDevice,
    id: SimBufI,
    layout: BufLayout,
}

macro_rules! impl_sim_buffer {
    ($buf:ident, $elem:ty, $get:ident, $get_mut:ident) => {
        impl $buf {
            pub fn layout(&self) -> BufLayout {
                self.layout
            }

            pub fn device(&self) -> &SimDevice {
                &self.dev
            }

            /// Copy host -> device (deep copy with modeled transfer cost).
            pub fn write_from(&self, src: &HostBuf<$elem>) -> Result<()> {
                if !self.layout.same_region(&src.layout()) {
                    return Err(Error::BadCopy(format!(
                        "extent mismatch: host {:?} vs device {:?}",
                        src.layout().extents,
                        self.layout.extents
                    )));
                }
                let sl = src.layout();
                let dl = self.layout;
                let s = src.as_slice();
                let mut st = self.dev.state.lock();
                let d = st.mem.$get_mut(self.id);
                let mut bytes = 0usize;
                for z in 0..sl.extents[0] {
                    for y in 0..sl.extents[1] {
                        let srow = (z * sl.extents[1] + y) * sl.pitch;
                        let drow = (z * dl.extents[1] + y) * dl.pitch;
                        d[drow..drow + sl.extents[2]]
                            .copy_from_slice(&s[srow..srow + sl.extents[2]]);
                        bytes += sl.extents[2] * 8;
                    }
                }
                st.clock_s += transfer_time(&self.dev.spec, bytes);
                Ok(())
            }

            /// Copy device -> host.
            pub fn read_into(&self, dst: &HostBuf<$elem>) -> Result<()> {
                if !self.layout.same_region(&dst.layout()) {
                    return Err(Error::BadCopy(format!(
                        "extent mismatch: device {:?} vs host {:?}",
                        self.layout.extents,
                        dst.layout().extents
                    )));
                }
                let sl = self.layout;
                let dl = dst.layout();
                let d = dst.as_mut_slice();
                let mut st = self.dev.state.lock();
                let s = st.mem.$get(self.id);
                let mut bytes = 0usize;
                for z in 0..sl.extents[0] {
                    for y in 0..sl.extents[1] {
                        let srow = (z * sl.extents[1] + y) * sl.pitch;
                        let drow = (z * dl.extents[1] + y) * dl.pitch;
                        d[drow..drow + sl.extents[2]]
                            .copy_from_slice(&s[srow..srow + sl.extents[2]]);
                        bytes += sl.extents[2] * 8;
                    }
                }
                st.clock_s += transfer_time(&self.dev.spec, bytes);
                Ok(())
            }

            /// Read the logical contents into a dense vector (test helper;
            /// also charged as a transfer).
            pub fn to_dense(&self) -> Vec<$elem> {
                let l = self.layout;
                let st = self.dev.state.lock();
                let s = st.mem.$get(self.id);
                let mut out = Vec::with_capacity(l.dense_len());
                for z in 0..l.extents[0] {
                    for y in 0..l.extents[1] {
                        let row = (z * l.extents[1] + y) * l.pitch;
                        out.extend_from_slice(&s[row..row + l.extents[2]]);
                    }
                }
                out
            }
        }
    };
}

impl_sim_buffer!(SimBufferF, f64, f, f_mut);
impl_sim_buffer!(SimBufferI, i64, i, i_mut);

/// Launch arguments for the simulated back-end.
#[derive(Clone, Default)]
pub struct SimLaunchArgs {
    pub bufs_f: Vec<SimBufferF>,
    pub bufs_i: Vec<SimBufferI>,
    pub scalars: ScalarArgs,
}

impl SimLaunchArgs {
    pub fn new() -> Self {
        Self::default()
    }
    pub fn buf_f(mut self, b: &SimBufferF) -> Self {
        self.bufs_f.push(b.clone());
        self
    }
    pub fn buf_i(mut self, b: &SimBufferI) -> Self {
        self.bufs_i.push(b.clone());
        self
    }
    pub fn scalar_f(mut self, v: f64) -> Self {
        self.scalars.f.push(v);
        self
    }
    pub fn scalar_i(mut self, v: i64) -> Self {
        self.scalars.i.push(v);
        self
    }
}
