//! Framework-property registry: the data behind Table 1 and Table 2.
//!
//! Table 1 of the paper scores intra-node parallelization frameworks on
//! eight properties. The rows for the *other* frameworks are the paper's
//! published judgements (static data); the Alpaka row is *derived from this
//! implementation* — each property maps to a concrete capability the test
//! suite demonstrates.

use alpaka_core::workdiv::{predefined, PredefAcc};

/// Tri-state property score used in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Score {
    Yes,
    Partial,
    No,
}

impl Score {
    pub fn symbol(&self) -> &'static str {
        match self {
            Score::Yes => "yes",
            Score::Partial => "partial",
            Score::No => "no",
        }
    }
}

/// One Table 1 row.
#[derive(Debug, Clone)]
pub struct FrameworkRow {
    pub model: &'static str,
    pub openness: Score,
    pub single_source: Score,
    pub sustainability: Score,
    pub heterogeneity: Score,
    pub maintainability: Score,
    pub testability: Score,
    pub optimizability: Score,
    pub data_structure_agnostic: Score,
}

impl FrameworkRow {
    pub fn scores(&self) -> [Score; 8] {
        [
            self.openness,
            self.single_source,
            self.sustainability,
            self.heterogeneity,
            self.maintainability,
            self.testability,
            self.optimizability,
            self.data_structure_agnostic,
        ]
    }
}

/// Column headers of Table 1.
pub const TABLE1_COLUMNS: [&str; 8] = [
    "Openness",
    "Single source",
    "Sustainability",
    "Heterogeneity",
    "Maintainability",
    "Testability",
    "Optimizability",
    "Data structure agnostic",
];

/// The paper's Table 1, including the Alpaka row this repository implements.
pub fn table1() -> Vec<FrameworkRow> {
    use Score::*;
    vec![
        FrameworkRow {
            model: "NVIDIA CUDA",
            openness: No,
            single_source: Yes,
            sustainability: No,
            heterogeneity: No,
            maintainability: No,
            testability: No,
            optimizability: Partial,
            data_structure_agnostic: Yes,
        },
        FrameworkRow {
            model: "PGI CUDA-x86",
            openness: No,
            single_source: Yes,
            sustainability: Partial,
            heterogeneity: Yes,
            maintainability: Yes,
            testability: Yes,
            optimizability: No,
            data_structure_agnostic: Yes,
        },
        FrameworkRow {
            model: "GPU Ocelot",
            openness: Yes,
            single_source: Yes,
            sustainability: Partial,
            heterogeneity: Yes,
            maintainability: Yes,
            testability: Yes,
            optimizability: No,
            data_structure_agnostic: Yes,
        },
        FrameworkRow {
            model: "OpenMP",
            openness: Yes,
            single_source: Yes,
            sustainability: Yes,
            heterogeneity: Partial,
            maintainability: Partial,
            testability: Yes,
            optimizability: No,
            data_structure_agnostic: Yes,
        },
        FrameworkRow {
            model: "OpenACC",
            openness: Yes,
            single_source: Yes,
            sustainability: Partial,
            heterogeneity: Partial,
            maintainability: Yes,
            testability: Yes,
            optimizability: No,
            data_structure_agnostic: Yes,
        },
        FrameworkRow {
            model: "OpenCL",
            openness: Yes,
            single_source: Partial,
            sustainability: Yes,
            heterogeneity: Yes,
            maintainability: Yes,
            testability: Yes,
            optimizability: No,
            data_structure_agnostic: Yes,
        },
        FrameworkRow {
            model: "SYCL",
            openness: Yes,
            single_source: Yes,
            sustainability: Partial,
            heterogeneity: Yes,
            maintainability: Yes,
            testability: Partial,
            optimizability: Partial,
            data_structure_agnostic: Yes,
        },
        FrameworkRow {
            model: "C++AMP",
            openness: Yes,
            single_source: Yes,
            sustainability: Partial,
            heterogeneity: Partial,
            maintainability: Yes,
            testability: Partial,
            optimizability: No,
            data_structure_agnostic: Partial,
        },
        FrameworkRow {
            model: "KOKKOS",
            openness: Yes,
            single_source: Yes,
            sustainability: Yes,
            heterogeneity: Yes,
            maintainability: Yes,
            testability: Yes,
            optimizability: No,
            data_structure_agnostic: Partial,
        },
        FrameworkRow {
            model: "Thrust",
            openness: Yes,
            single_source: Yes,
            sustainability: Yes,
            heterogeneity: Yes,
            maintainability: Yes,
            testability: Yes,
            optimizability: No,
            data_structure_agnostic: No,
        },
        alpaka_row(),
    ]
}

/// The Alpaka row, with each `Yes` backed by a mechanism in this repo:
/// openness (source available), single source (one `Kernel::run` for every
/// back-end), sustainability/maintainability (one-line back-end switch),
/// heterogeneity (mixed back-ends in one process), testability (identical
/// results across back-ends), optimizability (explicit work division,
/// shared memory, element level), data-structure agnostic (plain pitched
/// buffers, kernels compute their own indices).
pub fn alpaka_row() -> FrameworkRow {
    use Score::*;
    FrameworkRow {
        model: "Alpaka",
        openness: Yes,
        single_source: Yes,
        sustainability: Yes,
        heterogeneity: Yes,
        maintainability: Yes,
        testability: Yes,
        optimizability: Yes,
        data_structure_agnostic: Yes,
    }
}

/// One Table 2 row: the predefined decomposition of a 1-D problem.
#[derive(Debug, Clone)]
pub struct MappingRow {
    pub arch: &'static str,
    pub acc: &'static str,
    pub grids: usize,
    pub blocks: String,
    pub threads: String,
    pub elements: String,
}

/// Table 2, both symbolically and (via [`table2_concrete`]) for concrete
/// `(N, B, V)`.
pub fn table2_symbolic() -> Vec<MappingRow> {
    PredefAcc::ALL
        .iter()
        .map(|acc| MappingRow {
            arch: acc.arch(),
            acc: acc.name(),
            grids: 1,
            blocks: if acc.single_thread_blocks() {
                "N/V".into()
            } else {
                "N/(B*V)".into()
            },
            threads: if acc.single_thread_blocks() {
                "1".into()
            } else {
                "B".into()
            },
            elements: "V".into(),
        })
        .collect()
}

/// Table 2 instantiated for a concrete problem.
pub fn table2_concrete(n: usize, b: usize, v: usize) -> Vec<(MappingRow, [usize; 3])> {
    PredefAcc::ALL
        .iter()
        .zip(table2_symbolic())
        .map(|(acc, row)| {
            let wd = predefined(*acc, n, b, v);
            (
                row,
                [
                    wd.block_count(),
                    wd.threads_per_block(),
                    wd.elems_per_thread(),
                ],
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_eleven_rows_and_alpaka_is_all_yes() {
        let t = table1();
        assert_eq!(t.len(), 11);
        let alpaka = t.last().unwrap();
        assert_eq!(alpaka.model, "Alpaka");
        assert!(alpaka.scores().iter().all(|s| *s == Score::Yes));
        // Per the paper, no other framework scores all-yes.
        for row in &t[..10] {
            assert!(
                row.scores().iter().any(|s| *s != Score::Yes),
                "{} should not be all-yes",
                row.model
            );
        }
    }

    #[test]
    fn table2_concrete_matches_formulas() {
        let n = 4096;
        let (b, v) = (128, 4);
        for (row, [blocks, threads, elems]) in table2_concrete(n, b, v) {
            match row.threads.as_str() {
                "1" => {
                    assert_eq!(blocks, n / v, "{row:?}");
                    assert_eq!(threads, 1);
                }
                _ => {
                    assert_eq!(blocks, n / (b * v), "{row:?}");
                    assert_eq!(threads, b);
                }
            }
            assert_eq!(elems, v);
        }
    }

    #[test]
    fn score_symbols() {
        assert_eq!(Score::Yes.symbol(), "yes");
        assert_eq!(Score::Partial.symbol(), "partial");
        assert_eq!(Score::No.symbol(), "no");
    }
}
