//! Host-side resilience: bounded retries with simulated-clock backoff and
//! fail-over across a chain of accelerators.
//!
//! The fault model (see `DESIGN.md`) guarantees *fault-or-correct*: an
//! injected fault either fails the operation with a structured error or has
//! no effect — data is never silently corrupted. That makes a simple,
//! strong recovery contract possible: [`launch_resilient`] re-materializes
//! every argument buffer from pristine host snapshots before each attempt,
//! so a completed launch is bit-identical to a fault-free run no matter how
//! many attempts or devices failed before it.
//!
//! * **Transient** errors (injected ECC events, watchdog timeouts) and
//!   device-level resource errors (injected OOM, a dead queue worker) are
//!   retried on the same device under a [`RetryPolicy`], with exponential
//!   backoff charged to the simulated clock.
//! * **Sticky** errors (device loss) fail the device over to the next
//!   accelerator in the [`FallbackChain`] — e.g. `sim_k20 → CpuThreads →
//!   CpuSerial` — where the launch is re-run from the same snapshots.
//! * Deterministic kernel bugs (out-of-bounds and friends) are *not*
//!   retried: they would fail identically everywhere, so the error is
//!   returned at once.

use alpaka_core::buffer::BufLayout;
use alpaka_core::error::{Error, Result};
use alpaka_core::kernel::{Kernel, ScalarArgs};
use alpaka_core::metrics;
use alpaka_core::trace::{self, TraceEvent, TraceKind};
use alpaka_core::workdiv::WorkDiv;
use alpaka_sim::{AttemptRecord, ResilienceInfo, SimReport};

use crate::device::Device;
use crate::queue::Args;

/// Bounded-retry policy for transient errors on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries *after* the first attempt on each device.
    pub max_retries: u32,
    /// Backoff charged to the device's simulated clock before the first
    /// retry, in seconds.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff after every failed retry.
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base_s: 1e-3,
            backoff_factor: 2.0,
        }
    }
}

impl RetryPolicy {
    /// No retries: every error immediately escalates (to the next device,
    /// or to the caller).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..Default::default()
        }
    }

    /// Backoff before retry number `n` (1-based).
    pub(crate) fn backoff_s(&self, n: u32) -> f64 {
        self.backoff_base_s * self.backoff_factor.powi(n.saturating_sub(1) as i32)
    }
}

/// An ordered list of devices to try; the first is the primary.
#[derive(Clone)]
pub struct FallbackChain {
    devices: Vec<Device>,
}

impl FallbackChain {
    pub fn new(primary: Device) -> Self {
        FallbackChain {
            devices: vec![primary],
        }
    }

    /// Append a fallback device (builder form).
    pub fn then(mut self, next: Device) -> Self {
        self.devices.push(next);
        self
    }

    pub fn devices(&self) -> &[Device] {
        &self.devices
    }
}

/// How to choose the work division on each device of the chain.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkDivSpec {
    /// One fixed division used verbatim on every device. Note that a
    /// division valid on the primary may be invalid on a fallback (e.g.
    /// wide blocks on a single-thread-block accelerator).
    Fixed(WorkDiv),
    /// Re-derive a device-appropriate 1-D division for `n` elements on
    /// every device via [`Device::suggest_workdiv_1d`].
    Suggest1d(usize),
}

/// A device-independent launch description: the kernel, the division rule
/// and *host-side snapshots* of every argument buffer. The snapshots are
/// what makes fail-over possible — buffers are re-materialized from them
/// on whichever device ends up running the kernel, and re-materialized
/// again before every retry so partial writes from a failed attempt never
/// leak into the next one.
#[derive(Clone)]
pub struct LaunchSpec<K> {
    pub kernel: K,
    pub workdiv: WorkDivSpec,
    /// (layout, initial dense contents) per f64 buffer slot.
    pub bufs_f: Vec<(BufLayout, Vec<f64>)>,
    /// (layout, initial dense contents) per i64 buffer slot.
    pub bufs_i: Vec<(BufLayout, Vec<i64>)>,
    pub scalars: ScalarArgs,
}

impl<K> LaunchSpec<K> {
    pub fn new(kernel: K, workdiv: WorkDivSpec) -> Self {
        LaunchSpec {
            kernel,
            workdiv,
            bufs_f: Vec::new(),
            bufs_i: Vec::new(),
            scalars: ScalarArgs::default(),
        }
    }

    /// Bind the next f64 buffer slot: `layout` plus its initial dense
    /// contents (`init.len()` must equal `layout.dense_len()`).
    pub fn arg_f(mut self, layout: BufLayout, init: Vec<f64>) -> Self {
        self.bufs_f.push((layout, init));
        self
    }

    /// Bind the next i64 buffer slot.
    pub fn arg_i(mut self, layout: BufLayout, init: Vec<i64>) -> Self {
        self.bufs_i.push((layout, init));
        self
    }

    pub fn scalar_f(mut self, v: f64) -> Self {
        self.scalars.f.push(v);
        self
    }

    pub fn scalar_i(mut self, v: i64) -> Self {
        self.scalars.i.push(v);
        self
    }
}

/// The completed launch: which device ran it, what it cost, and the final
/// dense contents of every argument buffer.
#[derive(Debug, Clone)]
pub struct LaunchOutcome {
    /// Name of the device that completed the launch.
    pub device: String,
    /// Index into the chain of the completing device (0 = primary).
    pub device_index: usize,
    /// Total attempts across the whole chain (1 = first try succeeded).
    pub attempts: u32,
    /// Simulated seconds charged as retry backoff.
    pub backoff_s: f64,
    /// Every error encountered on the way to success, in order.
    pub errors: Vec<Error>,
    /// Final dense contents of each f64 buffer slot, in binding order.
    pub bufs_f: Vec<Vec<f64>>,
    /// Final dense contents of each i64 buffer slot, in binding order.
    pub bufs_i: Vec<Vec<i64>>,
    /// Simulator report of the winning attempt (`None` when it ran on a
    /// native CPU device). Carries the retry/fail-over provenance in
    /// `report.resilience` and the engine downgrade reason in
    /// `report.fallback`, so outcomes are inspectable without parsing
    /// trace streams.
    pub report: Option<SimReport>,
}

/// Classify an error for the retry loop.
pub(crate) enum Disposition {
    /// Worth retrying on the same device (transient fault, timeout, or a
    /// device-level resource error like an injected OOM or a dead worker).
    Retry,
    /// The device is gone; fail over to the next one in the chain.
    FailOver,
    /// A deterministic bug — retrying or falling back cannot help.
    Fatal,
}

pub(crate) fn classify(e: &Error) -> Disposition {
    if e.is_sticky() {
        Disposition::FailOver
    } else if e.is_transient() || matches!(e, Error::Device(_)) {
        Disposition::Retry
    } else {
        Disposition::Fatal
    }
}

/// Stable fault-kind name recorded per attempt (see
/// [`alpaka_sim::AttemptRecord::fault`]).
pub(crate) fn fault_kind(e: &Error) -> &'static str {
    match e {
        Error::KernelFault(f) if f.transient => "ecc",
        Error::KernelFault(_) => "kernel_fault",
        Error::Timeout(_) => "timeout",
        Error::DeviceLost(_) => "device_lost",
        Error::Device(m) if m.contains("out of memory") => "oom",
        Error::Device(_) => "device",
        Error::BadBuffer(_) => "bad_buffer",
        Error::BadCopy(_) => "bad_copy",
        Error::BadArg(_) => "bad_arg",
        Error::InvalidWorkDiv(_) => "invalid_workdiv",
        Error::Unsupported(_) => "unsupported",
    }
}

/// Downloaded contents of every f64 and i64 argument buffer, in binding
/// order, plus the simulator report of the launch (native devices: `None`).
type AttemptOutput = (Vec<Vec<f64>>, Vec<Vec<i64>>, Option<SimReport>);

/// One full attempt on one device: materialize buffers from the snapshots,
/// launch, download results.
fn attempt<K: Kernel + Clone + Send + 'static>(
    dev: &Device,
    spec: &LaunchSpec<K>,
) -> Result<AttemptOutput> {
    let mut args = Args::new();
    let mut bufs_f = Vec::with_capacity(spec.bufs_f.len());
    for (layout, init) in &spec.bufs_f {
        let b = dev.try_alloc_f64(*layout)?;
        b.upload(init)?;
        args = args.buf_f(&b);
        bufs_f.push(b);
    }
    let mut bufs_i = Vec::with_capacity(spec.bufs_i.len());
    for (layout, init) in &spec.bufs_i {
        let b = dev.try_alloc_i64(*layout)?;
        b.upload(init)?;
        args = args.buf_i(&b);
        bufs_i.push(b);
    }
    args.scalars = spec.scalars.clone();
    let wd = match &spec.workdiv {
        WorkDivSpec::Fixed(wd) => *wd,
        WorkDivSpec::Suggest1d(n) => dev.suggest_workdiv_1d(*n),
    };
    let report = dev.launch_report(&spec.kernel, &wd, &args)?;
    Ok((
        bufs_f.iter().map(|b| b.download()).collect(),
        bufs_i.iter().map(|b| b.download()).collect(),
        report,
    ))
}

/// Run `spec` to completion across `chain` under `policy`.
///
/// Every attempt starts from the pristine host snapshots in `spec`, so the
/// returned buffer contents are bit-identical to a fault-free run of the
/// same kernel — regardless of how many transient faults were retried or
/// how many devices were lost along the way. Fails only when a
/// deterministic kernel bug surfaces, or every device in the chain has
/// been exhausted.
pub fn launch_resilient<K: Kernel + Clone + Send + 'static>(
    chain: &FallbackChain,
    policy: &RetryPolicy,
    spec: &LaunchSpec<K>,
) -> Result<LaunchOutcome> {
    let traced = trace::active();
    let mut attempts = 0u32;
    let mut backoff_total = 0.0f64;
    let mut errors: Vec<Error> = Vec::new();
    let mut history: Vec<AttemptRecord> = Vec::new();
    let mut failovers = 0u32;
    // Backoff charged to the simulated clock immediately before the next
    // attempt (0 for a first attempt); carried as span meta so trace
    // reports can total the backoff without replaying the policy.
    let mut backoff_before: f64;
    for (di, dev) in chain.devices().iter().enumerate() {
        if dev.is_lost() {
            if traced {
                trace::emit(
                    TraceEvent::new(
                        TraceKind::FailOver,
                        format!("skip {}: already lost", dev.name()),
                        dev.id(),
                        dev.sim_clock_s(),
                    )
                    .with("device_index", di as f64),
                );
            }
            errors.push(Error::DeviceLost(format!(
                "{}: device already lost before first attempt",
                dev.name()
            )));
            failovers += 1;
            metrics::counter_add("alpaka_resilient_failovers_total", &[], 1);
            continue;
        }
        let mut retries = 0u32;
        backoff_before = 0.0;
        loop {
            attempts += 1;
            metrics::counter_add("alpaka_resilient_attempts_total", &[], 1);
            let t0 = dev.sim_clock_s();
            let result = attempt(dev, spec);
            if traced {
                // One span per attempt: device, outcome (the fault kind that
                // ended it, or "ok"), attempt ordinal.
                let label = match &result {
                    Ok(_) => format!("attempt {attempts} on {}: ok", dev.name()),
                    Err(e) => format!("attempt {attempts} on {}: {e}", dev.name()),
                };
                trace::emit(
                    TraceEvent::new(TraceKind::RetryAttempt, label, dev.id(), t0)
                        .span_until(dev.sim_clock_s())
                        .with("attempt", attempts as f64)
                        .with("device_index", di as f64)
                        .with("backoff_before_s", backoff_before)
                        .with(
                            "transient",
                            result
                                .as_ref()
                                .err()
                                .map_or(0.0, |e| e.is_transient() as u64 as f64),
                        ),
                );
            }
            history.push(AttemptRecord {
                attempt: attempts,
                device: dev.name(),
                device_index: di,
                fault: result.as_ref().err().map(|e| fault_kind(e).to_string()),
                transient: result.as_ref().err().is_some_and(|e| e.is_transient()),
            });
            match result {
                Ok((bufs_f, bufs_i, mut report)) => {
                    if metrics::enabled() {
                        metrics::counter_add(
                            "alpaka_resilient_launches_total",
                            &[("kernel", spec.kernel.name())],
                            1,
                        );
                        metrics::observe_in(
                            "alpaka_resilient_attempts_per_launch",
                            &[],
                            metrics::COUNT_BUCKETS,
                            attempts as f64,
                        );
                    }
                    if let Some(r) = report.as_mut() {
                        r.resilience = Some(ResilienceInfo {
                            attempts,
                            history: std::mem::take(&mut history),
                            backoff_s: backoff_total,
                            failovers,
                        });
                    }
                    return Ok(LaunchOutcome {
                        device: dev.name(),
                        device_index: di,
                        attempts,
                        backoff_s: backoff_total,
                        errors,
                        bufs_f,
                        bufs_i,
                        report,
                    });
                }
                Err(e) => {
                    metrics::counter_add(
                        "alpaka_resilient_faults_total",
                        &[("kind", fault_kind(&e))],
                        1,
                    );
                    let disposition = classify(&e);
                    errors.push(e);
                    match disposition {
                        Disposition::Fatal => {
                            let e = errors.pop().expect("just pushed");
                            metrics::note_failure(
                                fault_kind(&e),
                                &format!("{} on {}: {e}", spec.kernel.name(), dev.name()),
                            );
                            return Err(e);
                        }
                        Disposition::FailOver => {
                            if traced {
                                trace::emit(
                                    TraceEvent::new(
                                        TraceKind::FailOver,
                                        format!(
                                            "fail over from {}: {}",
                                            dev.name(),
                                            errors.last().expect("just pushed")
                                        ),
                                        dev.id(),
                                        dev.sim_clock_s(),
                                    )
                                    .with("device_index", di as f64),
                                );
                            }
                            failovers += 1;
                            metrics::counter_add("alpaka_resilient_failovers_total", &[], 1);
                            break;
                        }
                        Disposition::Retry => {
                            if retries >= policy.max_retries {
                                if traced {
                                    trace::emit(
                                        TraceEvent::new(
                                            TraceKind::FailOver,
                                            format!(
                                                "retries exhausted on {} after {} attempt(s)",
                                                dev.name(),
                                                retries + 1
                                            ),
                                            dev.id(),
                                            dev.sim_clock_s(),
                                        )
                                        .with("device_index", di as f64),
                                    );
                                }
                                failovers += 1;
                                metrics::counter_add("alpaka_resilient_failovers_total", &[], 1);
                                break;
                            }
                            retries += 1;
                            let pause = policy.backoff_s(retries);
                            dev.advance_sim_clock(pause);
                            backoff_total += pause;
                            backoff_before = pause;
                            metrics::observe("alpaka_resilient_backoff_seconds", &[], pause);
                        }
                    }
                }
            }
        }
    }
    let e = Error::Device(format!(
        "all {} device(s) in the fallback chain exhausted; last error: {}",
        chain.devices().len(),
        errors
            .last()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "none recorded".into()),
    ));
    metrics::note_failure(fault_kind(&e), &format!("{}: {e}", spec.kernel.name()));
    Err(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::AccKind;
    use alpaka_core::ops::{KernelOps, KernelOpsExt};
    use alpaka_sim::FaultPlan;

    #[derive(Clone)]
    struct Daxpy;
    impl Kernel for Daxpy {
        fn name(&self) -> &str {
            "daxpy"
        }
        fn run<O: KernelOps>(&self, o: &mut O) {
            let x = o.buf_f(0);
            let y = o.buf_f(1);
            let a = o.param_f(0);
            let n = o.param_i(0);
            let gid = o.global_thread_idx(0);
            let v = o.thread_elem_extent(0);
            let base = o.mul_i(gid, v);
            o.for_elements(0, |o, e| {
                let i = o.add_i(base, e);
                let c = o.lt_i(i, n);
                o.if_(c, |o| {
                    let xv = o.ld_gf(x, i);
                    let yv = o.ld_gf(y, i);
                    let r = o.fma_f(xv, a, yv);
                    o.st_gf(y, i, r);
                });
            });
        }
    }

    fn daxpy_spec(n: usize) -> LaunchSpec<Daxpy> {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y = vec![1.0; n];
        LaunchSpec::new(Daxpy, WorkDivSpec::Suggest1d(n))
            .arg_f(BufLayout::d1(n), x)
            .arg_f(BufLayout::d1(n), y)
            .scalar_f(2.0)
            .scalar_i(n as i64)
    }

    fn expected(n: usize) -> Vec<f64> {
        (0..n).map(|i| 2.0 * i as f64 + 1.0).collect()
    }

    #[test]
    fn fault_free_run_succeeds_first_try() {
        let n = 512;
        let chain = FallbackChain::new(Device::new(AccKind::sim_k20()));
        let out = launch_resilient(&chain, &RetryPolicy::default(), &daxpy_spec(n)).unwrap();
        assert_eq!(out.attempts, 1);
        assert_eq!(out.device_index, 0);
        assert!(out.errors.is_empty());
        assert_eq!(out.bufs_f[1], expected(n));
    }

    #[test]
    fn transient_ecc_is_retried_with_backoff_on_sim_clock() {
        let n = 512;
        // A high ECC rate: the first attempts fail, but the rate is keyed
        // on the launch ordinal, so eventually an attempt gets through...
        // unless it doesn't within the budget — so find a seed that
        // recovers within the retry budget (deterministic given the seed).
        let mut recovered = None;
        for seed in 0..50u64 {
            let dev = Device::new(AccKind::sim_k20())
                .with_faults(FaultPlan::quiet(seed).with_ecc_rate(2e-4));
            let chain = FallbackChain::new(dev.clone());
            let policy = RetryPolicy {
                max_retries: 6,
                backoff_base_s: 1e-3,
                backoff_factor: 2.0,
            };
            if let Ok(out) = launch_resilient(&chain, &policy, &daxpy_spec(n)) {
                if out.attempts > 1 {
                    assert!(out
                        .errors
                        .iter()
                        .all(|e| e.is_transient() || matches!(e, Error::Device(_))));
                    assert!(out.backoff_s > 0.0);
                    // Backoff was charged to the simulated clock.
                    assert!(dev.sim_clock_s() >= out.backoff_s);
                    assert_eq!(out.bufs_f[1], expected(n), "seed {seed}");
                    recovered = Some(out);
                    break;
                }
            }
        }
        assert!(
            recovered.is_some(),
            "no seed produced a retried-then-recovered run"
        );
    }

    #[test]
    fn device_loss_fails_over_and_matches_fault_free_result() {
        let n = 777;
        let lost =
            Device::new(AccKind::sim_k20()).with_faults(FaultPlan::quiet(7).with_lost_at_launch(0));
        let chain = FallbackChain::new(lost.clone())
            .then(Device::new(AccKind::CpuThreads))
            .then(Device::new(AccKind::CpuSerial));
        let out = launch_resilient(&chain, &RetryPolicy::default(), &daxpy_spec(n)).unwrap();
        assert!(out.device_index > 0, "should have failed over: {out:?}");
        assert!(lost.is_lost());
        assert!(out.errors.iter().any(|e| e.is_sticky()));
        // Bit-identical to the fault-free run on the fallback device.
        let reference = launch_resilient(
            &FallbackChain::new(Device::new(AccKind::CpuSerial)),
            &RetryPolicy::none(),
            &daxpy_spec(n),
        )
        .unwrap();
        assert_eq!(out.bufs_f, reference.bufs_f);
        assert_eq!(out.bufs_f[1], expected(n));
    }

    #[test]
    fn deterministic_kernel_bug_is_fatal_not_retried() {
        #[derive(Clone)]
        struct Oob;
        impl Kernel for Oob {
            fn run<O: KernelOps>(&self, o: &mut O) {
                let b = o.buf_f(0);
                let i = o.lit_i(99_999);
                let v = o.lit_f(1.0);
                o.st_gf(b, i, v);
            }
        }
        let chain = FallbackChain::new(Device::new(AccKind::sim_k20()))
            .then(Device::new(AccKind::CpuSerial));
        let spec = LaunchSpec::new(Oob, WorkDivSpec::Fixed(WorkDiv::d1(1, 1, 1)))
            .arg_f(BufLayout::d1(8), vec![0.0; 8]);
        let err = launch_resilient(&chain, &RetryPolicy::default(), &spec).unwrap_err();
        assert!(matches!(err, Error::KernelFault(_)), "{err}");
        assert!(!err.is_transient());
    }

    #[test]
    fn exhausted_chain_reports_last_error() {
        let a =
            Device::new(AccKind::sim_k20()).with_faults(FaultPlan::quiet(1).with_lost_at_launch(0));
        let b =
            Device::new(AccKind::sim_k80()).with_faults(FaultPlan::quiet(2).with_lost_at_launch(0));
        let chain = FallbackChain::new(a).then(b);
        let err = launch_resilient(&chain, &RetryPolicy::none(), &daxpy_spec(64)).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("exhausted"), "{msg}");
    }

    #[test]
    fn attempts_and_failover_are_traced() {
        let n = 128;
        let (out, events) = trace::capture(|| {
            let lost = Device::new(AccKind::sim_k20())
                .with_faults(FaultPlan::quiet(7).with_lost_at_launch(0));
            let chain = FallbackChain::new(lost).then(Device::new(AccKind::CpuSerial));
            launch_resilient(&chain, &RetryPolicy::default(), &daxpy_spec(n)).unwrap()
        });
        assert!(out.device_index > 0);
        let retry_events: Vec<_> = events
            .iter()
            .filter(|e| e.kind == TraceKind::RetryAttempt)
            .collect();
        assert_eq!(retry_events.len() as u32, out.attempts);
        assert!(events.iter().any(|e| e.kind == TraceKind::FailOver));
        // The fault kind that triggered the fail-over is in the span label.
        assert!(
            retry_events.iter().any(|e| e.label.contains("device lost")),
            "{retry_events:?}"
        );
    }

    #[test]
    fn injected_oom_is_retried() {
        let n = 256;
        // OOM at allocation ordinal 0: the very first buffer allocation
        // fails; the retry uses fresh ordinals and succeeds.
        let dev = Device::new(AccKind::sim_k20()).with_faults(FaultPlan::quiet(3).with_oom_at(0));
        let chain = FallbackChain::new(dev);
        let out = launch_resilient(&chain, &RetryPolicy::default(), &daxpy_spec(n)).unwrap();
        assert_eq!(out.attempts, 2);
        assert!(matches!(out.errors[0], Error::Device(_)));
        assert_eq!(out.bufs_f[1], expected(n));
    }
}
