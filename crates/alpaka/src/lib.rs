//! # alpaka (facade)
//!
//! Uniform runtime over every back-end of the Alpaka reproduction. Running
//! the same single-source kernel on a different accelerator is literally a
//! one-line change:
//!
//! ```
//! use alpaka::{AccKind, Args, Device};
//! use alpaka_core::prelude::*;
//!
//! #[derive(Clone)]
//! struct Twice;
//! impl Kernel for Twice {
//!     fn run<O: KernelOps>(&self, o: &mut O) {
//!         let b = o.buf_f(0);
//!         let n = o.param_i(0);
//!         let i = o.global_thread_idx(0);
//!         let c = o.lt_i(i, n);
//!         o.if_(c, |o| {
//!             let v = o.ld_gf(b, i);
//!             let two = o.lit_f(2.0);
//!             let r = o.mul_f(v, two);
//!             o.st_gf(b, i, r);
//!         });
//!     }
//! }
//!
//! // The one line to change per platform:
//! let dev = Device::new(AccKind::CpuSerial); // or AccKind::sim_k20(), ...
//!
//! let buf = dev.alloc_f64(BufLayout::d1(8));
//! buf.upload(&[1.0; 8]).unwrap();
//! let wd = dev.suggest_workdiv_1d(8);
//! dev.launch(&Twice, &wd, &Args::new().buf_f(&buf).scalar_i(8)).unwrap();
//! assert_eq!(buf.download(), vec![2.0; 8]);
//! ```

pub mod buffer;
pub mod device;
pub mod pool;
pub mod queue;
pub mod registry;
pub mod resilient;

pub use alpaka_core::buffer::BufLayout;
pub use alpaka_core::error::{Error, FaultInfo, Result};
pub use alpaka_core::kernel::Kernel;
pub use alpaka_core::metrics;
pub use alpaka_core::ops::{KernelOps, KernelOpsExt};
pub use alpaka_core::queue::{HostEvent, QueueBehavior};
pub use alpaka_core::trace;
pub use alpaka_core::trace::{TraceEvent, TraceKind};
pub use alpaka_core::workdiv::WorkDiv;
pub use alpaka_sim::{Engine, FaultPlan, KernelProfile, SimReport};
pub use alpaka_trace::{
    chrome_trace, resilience_report, roofline_csv, text_report, validate_json, ChromeOpts, Tracer,
};
pub use buffer::{copy_f64, copy_i64, BufferF, BufferI};
pub use device::{AccKind, Device};
pub use pool::{DevicePool, Health, MigrationRecord, PoolOutcome, PoolPolicy, ShardRecord};
pub use queue::{assert_portable, time_launch, Args, LaunchMode, Queue, TimedRun};
pub use resilient::{
    launch_resilient, FallbackChain, LaunchOutcome, LaunchSpec, RetryPolicy, WorkDivSpec,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct Axpy;
    impl Kernel for Axpy {
        fn name(&self) -> &str {
            "axpy"
        }
        fn run<O: KernelOps>(&self, o: &mut O) {
            let x = o.buf_f(0);
            let y = o.buf_f(1);
            let a = o.param_f(0);
            let n = o.param_i(0);
            let gid = o.global_thread_idx(0);
            let v = o.thread_elem_extent(0);
            let base = o.mul_i(gid, v);
            o.for_elements(0, |o, e| {
                let i = o.add_i(base, e);
                let c = o.lt_i(i, n);
                o.if_(c, |o| {
                    let xv = o.ld_gf(x, i);
                    let yv = o.ld_gf(y, i);
                    let r = o.fma_f(xv, a, yv);
                    o.st_gf(y, i, r);
                });
            });
        }
    }

    fn all_kinds() -> Vec<AccKind> {
        let mut kinds = AccKind::native_cpu_all();
        kinds.push(AccKind::sim_k20());
        kinds.push(AccKind::sim_e5_2630v3());
        kinds
    }

    #[test]
    fn axpy_is_portable_across_all_backends() {
        let n = 777usize;
        assert_portable(&all_kinds(), |dev| {
            let x = dev.alloc_f64(BufLayout::d1(n));
            let y = dev.alloc_f64(BufLayout::d1(n));
            x.upload(&(0..n).map(|i| i as f64).collect::<Vec<_>>())
                .unwrap();
            y.upload(&vec![1.0; n]).unwrap();
            let wd = dev.suggest_workdiv_1d(n);
            let args = Args::new()
                .buf_f(&x)
                .buf_f(&y)
                .scalar_f(2.5)
                .scalar_i(n as i64);
            (Axpy, wd, args, vec![y])
        });
    }

    #[test]
    fn queues_work_uniformly() {
        let n = 64usize;
        for kind in [AccKind::CpuBlocks, AccKind::sim_k20()] {
            let dev = Device::with_workers(kind.clone(), 2);
            let q = Queue::new(dev.clone(), QueueBehavior::NonBlocking);
            let x = dev.alloc_f64(BufLayout::d1(n));
            let y = dev.alloc_f64(BufLayout::d1(n));
            x.upload(&vec![1.0; n]).unwrap();
            y.upload(&vec![0.0; n]).unwrap();
            let wd = dev.suggest_workdiv_1d(n);
            let args = Args::new()
                .buf_f(&x)
                .buf_f(&y)
                .scalar_f(1.0)
                .scalar_i(n as i64);
            // Two dependent launches: y += x twice.
            q.enqueue_kernel(&Axpy, &wd, &args).unwrap();
            q.enqueue_kernel(&Axpy, &wd, &args).unwrap();
            let ev = HostEvent::new();
            q.enqueue_event(&ev).unwrap();
            q.wait().unwrap();
            assert!(ev.is_done());
            assert_eq!(y.download(), vec![2.0; n], "{kind:?}");
        }
    }

    #[test]
    fn time_launch_reports_simulated_or_wall() {
        let n = 4096usize;
        for (kind, want_sim) in [(AccKind::CpuBlocks, false), (AccKind::sim_k20(), true)] {
            let dev = Device::with_workers(kind, 2);
            let x = dev.alloc_f64(BufLayout::d1(n));
            let y = dev.alloc_f64(BufLayout::d1(n));
            let wd = dev.suggest_workdiv_1d(n);
            let args = Args::new()
                .buf_f(&x)
                .buf_f(&y)
                .scalar_f(1.0)
                .scalar_i(n as i64);
            let run = time_launch(&dev, &Axpy, &wd, &args, LaunchMode::Exact).unwrap();
            assert_eq!(run.simulated, want_sim);
            assert!(run.time_s > 0.0);
            assert_eq!(run.report.is_some(), want_sim);
        }
    }

    #[test]
    fn mixing_backends_in_one_process() {
        // The paper: "running multiple of the same or different back-end
        // instances simultaneously".
        let n = 128usize;
        let cpu = Device::new(AccKind::CpuBlocks);
        let gpu = Device::new(AccKind::sim_k20());
        let hx = cpu.alloc_f64(BufLayout::d1(n));
        hx.upload(&vec![3.0; n]).unwrap();
        let dx = gpu.alloc_f64(BufLayout::d1(n));
        copy_f64(&dx, &hx).unwrap();
        let dy = gpu.alloc_f64(BufLayout::d1(n));
        let wd = gpu.suggest_workdiv_1d(n);
        gpu.launch(
            &Axpy,
            &wd,
            &Args::new()
                .buf_f(&dx)
                .buf_f(&dy)
                .scalar_f(2.0)
                .scalar_i(n as i64),
        )
        .unwrap();
        let hy = cpu.alloc_f64(BufLayout::d1(n));
        copy_f64(&hy, &dy).unwrap();
        // Also run on the CPU device and compare.
        let hy2 = cpu.alloc_f64(BufLayout::d1(n));
        let wd2 = cpu.suggest_workdiv_1d(n);
        cpu.launch(
            &Axpy,
            &wd2,
            &Args::new()
                .buf_f(&hx)
                .buf_f(&hy2)
                .scalar_f(2.0)
                .scalar_i(n as i64),
        )
        .unwrap();
        assert_eq!(hy.download(), hy2.download());
        assert_eq!(hy.download(), vec![6.0; n]);
    }

    #[test]
    fn binding_wrong_residency_is_an_error() {
        let cpu = Device::new(AccKind::CpuSerial);
        let gpu = Device::new(AccKind::sim_k20());
        let host_buf = cpu.alloc_f64(BufLayout::d1(8));
        let wd = gpu.suggest_workdiv_1d(8);
        let err = gpu
            .launch(
                &Axpy,
                &wd,
                &Args::new()
                    .buf_f(&host_buf)
                    .buf_f(&host_buf)
                    .scalar_f(1.0)
                    .scalar_i(8),
            )
            .unwrap_err();
        assert!(matches!(err, Error::BadArg(_)), "{err}");
    }
}
