//! Uniform queues, executors and timing over every back-end.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use alpaka_core::error::{Error, Result};
use alpaka_core::kernel::{Kernel, ScalarArgs};
use alpaka_core::metrics;
use alpaka_core::queue::{HostEvent, QueueBehavior};
use alpaka_core::trace::{self, TraceEvent, TraceKind};
use alpaka_core::workdiv::WorkDiv;
use alpaka_cpu::{CpuArgs, CpuQueue};
use alpaka_sim::{ExecMode, SimReport};
use parking_lot::Mutex;

use crate::buffer::{copy_f64, copy_i64, BufferF, BufferI};
use crate::device::{Device, DeviceImpl};
use crate::resilient::fault_kind;

/// Count one queue operation (and, for completed results, its outcome) in
/// the metrics registry. No queue/device-id labels: snapshots must stay
/// byte-identical regardless of how ids were allocated.
fn count_op(op: &'static str) {
    metrics::counter_add("alpaka_queue_ops_total", &[("op", op)], 1);
}

fn count_op_result(op: &'static str, r: &Result<()>) {
    match r {
        Ok(()) => metrics::counter_add("alpaka_queue_ops_completed_total", &[("op", op)], 1),
        Err(e) => metrics::counter_add(
            "alpaka_queue_op_errors_total",
            &[("op", op), ("kind", fault_kind(e))],
            1,
        ),
    }
}

/// Launch arguments: buffers in slot order plus scalars — the executor of
/// Listing 5 binds these together with the kernel and work division.
#[derive(Clone, Default)]
pub struct Args {
    pub bufs_f: Vec<BufferF>,
    pub bufs_i: Vec<BufferI>,
    pub scalars: ScalarArgs,
}

impl Args {
    pub fn new() -> Self {
        Self::default()
    }
    pub fn buf_f(mut self, b: &BufferF) -> Self {
        self.bufs_f.push(b.clone());
        self
    }
    pub fn buf_i(mut self, b: &BufferI) -> Self {
        self.bufs_i.push(b.clone());
        self
    }
    pub fn scalar_f(mut self, v: f64) -> Self {
        self.scalars.f.push(v);
        self
    }
    pub fn scalar_i(mut self, v: i64) -> Self {
        self.scalars.i.push(v);
        self
    }

    fn to_cpu(&self) -> Result<CpuArgs> {
        let mut out = CpuArgs::new();
        for b in &self.bufs_f {
            out = out.buf_f(b.as_host()?);
        }
        for b in &self.bufs_i {
            out = out.buf_i(b.as_host()?);
        }
        out.scalars = self.scalars.clone();
        Ok(out)
    }

    pub(crate) fn to_sim(&self) -> Result<alpaka_accsim::SimLaunchArgs> {
        let mut out = alpaka_accsim::SimLaunchArgs::new();
        for b in &self.bufs_f {
            out = out.buf_f(b.as_sim()?);
        }
        for b in &self.bufs_i {
            out = out.buf_i(b.as_sim()?);
        }
        out.scalars = self.scalars.clone();
        Ok(out)
    }
}

/// Synchronous launch used by `Device::launch` and the timing helper.
pub(crate) fn launch_sync<K: Kernel + ?Sized>(
    dev: &Device,
    kernel: &K,
    wd: &WorkDiv,
    args: &Args,
) -> Result<()> {
    launch_sync_report(dev, kernel, wd, args).map(|_| ())
}

/// [`launch_sync`] that hands back the simulator report (`None` on native
/// CPU devices).
pub(crate) fn launch_sync_report<K: Kernel + ?Sized>(
    dev: &Device,
    kernel: &K,
    wd: &WorkDiv,
    args: &Args,
) -> Result<Option<SimReport>> {
    match &dev.inner {
        DeviceImpl::Cpu(d) => {
            d.launch(kernel, wd, &args.to_cpu()?)?;
            Ok(None)
        }
        DeviceImpl::Sim(d) => Ok(Some(run_sim_traced(
            d,
            dev.id(),
            kernel,
            wd,
            &args.to_sim()?,
            ExecMode::Full,
        )?)),
    }
}

/// Synchronous simulated run with launch tracing but no queue lane: the
/// direct-launch path (`Device::launch`, [`time_launch`]) shares the trace
/// emission of [`Queue::enqueue_kernel`], minus the queue-side span.
pub(crate) fn run_sim_traced<K: Kernel + ?Sized>(
    d: &alpaka_accsim::SimDevice,
    dev_id: u64,
    kernel: &K,
    wd: &WorkDiv,
    args: &alpaka_accsim::SimLaunchArgs,
    mode: ExecMode,
) -> Result<SimReport> {
    let traced = trace::active();
    let (t0, ordinal, model) = if traced {
        let s = d.spec();
        (
            d.clock_s(),
            d.launch_count(),
            (s.clock_ghz, s.peak_gflops(), s.mem_bw_gbs),
        )
    } else {
        (0.0, 0, (0.0, 0.0, 0.0))
    };
    match d.run(kernel, wd, args, mode) {
        Ok(report) => {
            if traced {
                emit_launch_events(kernel.name(), dev_id, None, ordinal, model, t0, &report);
            }
            alpaka_sim::metrics::record_launch(kernel.name(), &report);
            Ok(report)
        }
        Err(e) => {
            if traced {
                trace::emit(
                    TraceEvent::new(
                        TraceKind::Fault,
                        format!("{}: {e}", kernel.name()),
                        dev_id,
                        t0,
                    )
                    .on_launch(ordinal),
                );
            }
            metrics::note_failure(fault_kind(&e), &format!("{}: {e}", kernel.name()));
            Err(e)
        }
    }
}

enum QImpl {
    Cpu(CpuQueue),
    // Boxed: SimQueue is much larger than CpuQueue and queues are
    // long-lived, so the indirection costs nothing that matters.
    Sim(Box<Mutex<alpaka_accsim::SimQueue>>),
}

/// An in-order work queue on any device.
///
/// Queue errors follow the CUDA stream model: an operation that fails on a
/// `NonBlocking` queue records its error, which then re-surfaces at every
/// subsequent enqueue, [`Queue::wait`] and [`Queue::wait_event`] until
/// [`Queue::reset`] clears it. The device itself stays usable (unless the
/// error was a device loss, which poisons the [`Device`] independently).
pub struct Queue {
    device: Device,
    behavior: QueueBehavior,
    inner: QImpl,
    /// First error produced by an enqueued operation; sticky until `reset`.
    sticky: Mutex<Option<Error>>,
    /// Monotonic per-queue operation ordinal, keying injected worker death.
    ops: AtomicU64,
    /// Process-unique trace ordinal (the queue's lane in exports).
    id: u64,
}

impl Queue {
    pub fn new(device: Device, behavior: QueueBehavior) -> Self {
        let inner = match &device.inner {
            DeviceImpl::Cpu(d) => QImpl::Cpu(CpuQueue::new(d.clone(), behavior)),
            DeviceImpl::Sim(d) => QImpl::Sim(Box::new(Mutex::new(alpaka_accsim::SimQueue::new(
                d.clone(),
                behavior,
            )))),
        };
        Queue {
            device,
            behavior,
            inner,
            sticky: Mutex::new(None),
            ops: AtomicU64::new(0),
            id: trace::next_queue_id(),
        }
    }

    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Process-unique trace ordinal of this queue (its lane id in a
    /// Chrome-trace export, and the id named in wait-error context).
    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn behavior(&self) -> QueueBehavior {
        self.behavior
    }

    /// Fail if a sticky error is recorded (clones it; the slot is kept).
    fn check_sticky(&self) -> Result<()> {
        match self.sticky.lock().clone() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Like [`Queue::check_sticky`], but the surfaced error names *which*
    /// queue fired: "(queue N on <device>)". Used by the wait paths, where
    /// the caller often holds several queues and the raw sticky error gives
    /// no clue whose it was. The stored sticky error stays unwrapped, so
    /// repeated waits do not accumulate context.
    fn check_sticky_ctx(&self) -> Result<()> {
        self.check_sticky().map_err(|e| self.queue_ctx(e))
    }

    /// Append queue id + device name to an error's message, preserving its
    /// variant (and fault coordinates).
    fn queue_ctx(&self, e: Error) -> Error {
        let ctx = format!(" (queue {} on {})", self.id, self.device.name());
        let add = |m: String| format!("{m}{ctx}");
        match e {
            Error::InvalidWorkDiv(m) => Error::InvalidWorkDiv(add(m)),
            Error::BadArg(m) => Error::BadArg(add(m)),
            Error::BadBuffer(m) => Error::BadBuffer(add(m)),
            Error::BadCopy(m) => Error::BadCopy(add(m)),
            Error::KernelFault(mut f) => {
                f.msg = add(f.msg);
                Error::KernelFault(f)
            }
            Error::Timeout(mut f) => {
                f.msg = add(f.msg);
                Error::Timeout(f)
            }
            Error::DeviceLost(m) => Error::DeviceLost(add(m)),
            Error::Device(m) => Error::Device(add(m)),
            Error::Unsupported(m) => Error::Unsupported(add(m)),
        }
    }

    /// Record the first error; later ones are dropped (CUDA keeps the
    /// first sticky error per stream).
    fn record(&self, e: Error) {
        let mut slot = self.sticky.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    /// Route an operation result by queue behavior: blocking queues return
    /// errors directly, non-blocking queues record them (surfacing at the
    /// next enqueue/wait) and report success for the enqueue itself.
    fn absorb(&self, r: Result<()>) -> Result<()> {
        match (r, self.behavior) {
            (Ok(()), _) => Ok(()),
            (Err(e), QueueBehavior::Blocking) => Err(e),
            (Err(e), QueueBehavior::NonBlocking) => {
                self.record(e);
                Ok(())
            }
        }
    }

    /// Consume one op ordinal against the device's fault plan; an injected
    /// worker death kills the queue at this operation.
    fn consume_op(&self) -> Result<()> {
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        if let Some(plan) = self.device.faults() {
            if plan.worker_death_hits(op) {
                if let QImpl::Cpu(q) = &self.inner {
                    q.kill_worker();
                }
                return self.absorb(Err(Error::Device(format!(
                    "queue worker died (injected at queue op {op})"
                ))));
            }
        }
        Ok(())
    }

    /// Enqueue a kernel execution.
    pub fn enqueue_kernel<K: Kernel + Clone + Send + 'static>(
        &self,
        kernel: &K,
        wd: &WorkDiv,
        args: &Args,
    ) -> Result<()> {
        self.check_sticky()?;
        count_op("kernel");
        self.consume_op()?;
        if self.sticky.lock().is_some() {
            // consume_op absorbed an injected death; this op never runs.
            return Ok(());
        }
        match &self.inner {
            QImpl::Cpu(q) => q.enqueue_kernel(kernel.clone(), *wd, args.to_cpu()?),
            QImpl::Sim(q) => {
                let mut ql = q.lock();
                let traced = trace::active();
                let (t0, ordinal, model) = if traced {
                    let d = ql.device();
                    let s = d.spec();
                    (
                        d.clock_s(),
                        d.launch_count(),
                        (s.clock_ghz, s.peak_gflops(), s.mem_bw_gbs),
                    )
                } else {
                    (0.0, 0, (0.0, 0.0, 0.0))
                };
                let out = match ql.enqueue_kernel(kernel, wd, &args.to_sim()?, ExecMode::Full) {
                    Ok(report) => {
                        if traced {
                            emit_launch_events(
                                kernel.name(),
                                self.device.id(),
                                Some(self.id),
                                ordinal,
                                model,
                                t0,
                                report,
                            );
                        }
                        alpaka_sim::metrics::record_launch(kernel.name(), report);
                        Ok(())
                    }
                    Err(e) => {
                        if traced {
                            trace::emit(
                                TraceEvent::new(
                                    TraceKind::Fault,
                                    format!("{}: {e}", kernel.name()),
                                    self.device.id(),
                                    t0,
                                )
                                .on_queue(self.id)
                                .on_launch(ordinal),
                            );
                        }
                        metrics::note_failure(fault_kind(&e), &format!("{}: {e}", kernel.name()));
                        Err(e)
                    }
                };
                drop(ql);
                count_op_result("kernel", &out);
                self.absorb(out)
            }
        }
    }

    /// Enqueue a deep f64 copy. Same-host copies on a non-blocking CPU
    /// queue stay fully asynchronous; copies that cross a device boundary
    /// first drain the queue (preserving in-order semantics) and then run.
    pub fn enqueue_copy_f64(&self, dst: &BufferF, src: &BufferF) -> Result<()> {
        self.check_sticky()?;
        count_op("copy");
        self.consume_op()?;
        if self.sticky.lock().is_some() {
            return Ok(());
        }
        match (&self.inner, dst, src) {
            (QImpl::Cpu(q), BufferF::Host(d), BufferF::Host(s)) => q.enqueue_copy(d, s),
            _ => {
                self.wait()?;
                let t0 = self.device.sim_clock_s();
                let r = copy_f64(dst, src);
                self.trace_copy("copy_f64", t0, &r);
                self.absorb(r)
            }
        }
    }

    /// Enqueue a deep i64 copy (same ordering rules as
    /// [`Queue::enqueue_copy_f64`]).
    pub fn enqueue_copy_i64(&self, dst: &BufferI, src: &BufferI) -> Result<()> {
        self.check_sticky()?;
        count_op("copy");
        self.consume_op()?;
        if self.sticky.lock().is_some() {
            return Ok(());
        }
        match (&self.inner, dst, src) {
            (QImpl::Cpu(q), BufferI::Host(d), BufferI::Host(s)) => q.enqueue_copy(d, s),
            _ => {
                self.wait()?;
                let t0 = self.device.sim_clock_s();
                let r = copy_i64(dst, src);
                self.trace_copy("copy_i64", t0, &r);
                self.absorb(r)
            }
        }
    }

    /// Emit the span of a completed copy (or the fault of a failed one).
    fn trace_copy(&self, label: &str, t0: f64, r: &Result<()>) {
        count_op_result("copy", r);
        if let Err(e) = r {
            metrics::note_failure(fault_kind(e), &format!("{label}: {e}"));
        }
        if !trace::active() {
            return;
        }
        match r {
            Ok(()) => trace::emit(
                TraceEvent::new(TraceKind::Copy, label, self.device.id(), t0)
                    .span_until(self.device.sim_clock_s())
                    .on_queue(self.id),
            ),
            Err(e) => trace::emit(
                TraceEvent::new(
                    TraceKind::Fault,
                    format!("{label}: {e}"),
                    self.device.id(),
                    t0,
                )
                .on_queue(self.id),
            ),
        }
    }

    /// Enqueue an event signaled once all prior operations completed.
    pub fn enqueue_event(&self, ev: &HostEvent) -> Result<()> {
        self.check_sticky()?;
        count_op("event");
        if trace::active() {
            trace::emit(
                TraceEvent::new(
                    TraceKind::EventRecord,
                    "event",
                    self.device.id(),
                    self.device.sim_clock_s(),
                )
                .on_queue(self.id),
            );
        }
        match &self.inner {
            QImpl::Cpu(q) => q.enqueue_event(ev),
            QImpl::Sim(q) => q.lock().enqueue_event(ev),
        }
    }

    /// Drain the queue; surfaces the first error of any enqueued op. The
    /// error is sticky: it is reported again by every later operation until
    /// [`Queue::reset`].
    pub fn wait(&self) -> Result<()> {
        count_op("wait");
        if metrics::enabled() {
            // Simulated seconds of work drained by waits on this queue so
            // far (the simulated analogue of host wait time; deterministic,
            // unlike a wall-clock measurement).
            metrics::observe("alpaka_queue_wait_sim_seconds", &[], self.sim_elapsed_s());
        }
        if trace::active() {
            trace::emit(
                TraceEvent::new(
                    TraceKind::Wait,
                    "wait",
                    self.device.id(),
                    self.device.sim_clock_s(),
                )
                .on_queue(self.id),
            );
        }
        match &self.inner {
            QImpl::Cpu(q) => {
                if let Err(e) = q.wait() {
                    self.record(e);
                }
            }
            QImpl::Sim(q) => {
                if let Err(e) = q.lock().wait() {
                    self.record(e);
                }
            }
        }
        self.check_sticky_ctx()
    }

    /// Block until `ev` is signaled, then surface any error recorded by
    /// the operations that preceded it (sticky, like [`Queue::wait`]).
    /// Returns early with the queue's error if the worker dies before the
    /// event can ever be signaled.
    pub fn wait_event(&self, ev: &HostEvent) -> Result<()> {
        count_op("wait_event");
        if trace::active() {
            trace::emit(
                TraceEvent::new(
                    TraceKind::Wait,
                    "wait_event",
                    self.device.id(),
                    self.device.sim_clock_s(),
                )
                .on_queue(self.id),
            );
        }
        loop {
            if ev.is_done() {
                break;
            }
            if let QImpl::Cpu(q) = &self.inner {
                if q.worker_dead() {
                    if let Some(e) = q.peek_error() {
                        self.record(e);
                    }
                    return self.check_sticky_ctx();
                }
            }
            if self.sticky.lock().is_some() {
                return self.check_sticky_ctx();
            }
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        if let QImpl::Cpu(q) = &self.inner {
            if let Some(e) = q.peek_error() {
                self.record(e);
            }
        }
        self.check_sticky_ctx()
    }

    /// The sticky error currently recorded, if any (non-destructive).
    pub fn sticky_error(&self) -> Option<Error> {
        self.sticky.lock().clone()
    }

    /// Clear the sticky error and revive the queue: recorded errors are
    /// discarded and a dead CPU queue worker is respawned.
    ///
    /// Device-level sticky state: a lost device normally stays lost — the
    /// loss outlives any queue reset. The one exception is a device the
    /// health layer has since declared recovered ([`Device::mark_recovered`]
    /// after a quarantine cooldown): for those, reset also clears the
    /// device's sticky lost flag. Without that, a recovered device would
    /// resurrect the stale `DeviceLost` error on the very next operation of
    /// every queue that was reset after recovery.
    pub fn reset(&self) {
        match &self.inner {
            QImpl::Cpu(q) => q.reset(),
            QImpl::Sim(q) => {
                q.lock().device().clear_lost_if_recovered();
            }
        }
        *self.sticky.lock() = None;
    }

    /// Inject queue-worker death directly (test hook; the `worker_death_at`
    /// knob of a [`alpaka_sim::FaultPlan`] does this at a chosen ordinal).
    pub fn inject_worker_death(&self) {
        match &self.inner {
            QImpl::Cpu(q) => q.kill_worker(),
            QImpl::Sim(_) => self.record(Error::Device("queue worker died (injected)".into())),
        }
    }

    /// Simulated seconds consumed by this queue (0 for native devices).
    pub fn sim_elapsed_s(&self) -> f64 {
        match &self.inner {
            QImpl::Cpu(_) => 0.0,
            QImpl::Sim(q) => q.lock().elapsed_s(),
        }
    }

    /// Full simulator report of the most recent kernel enqueued on this
    /// queue (`None` for native devices or before the first launch). Carries
    /// the [`alpaka_sim::KernelProfile`] when the launch ran traced.
    pub fn last_sim_report(&self) -> Option<SimReport> {
        match &self.inner {
            QImpl::Cpu(_) => None,
            QImpl::Sim(q) => q.lock().last_report().cloned(),
        }
    }
}

/// How to execute a timed launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchMode {
    /// Interpret/execute everything (results are valid).
    Exact,
    /// Simulated devices interpret only ~n blocks and extrapolate timing
    /// (results incomplete); native devices ignore this and run exactly.
    TimingSampled(usize),
}

/// Result of a timed launch.
#[derive(Debug, Clone)]
pub struct TimedRun {
    /// Wall-clock seconds spent by the host.
    pub wall_s: f64,
    /// The time to report: simulated seconds on simulated devices,
    /// wall-clock seconds on native ones.
    pub time_s: f64,
    pub simulated: bool,
    /// Full simulator report when available.
    pub report: Option<SimReport>,
}

/// Execute `kernel` once on `dev` and measure it: wall clock for native
/// back-ends, modeled device time for simulated ones. The benchmark harness
/// (`alpaka-bench`) builds every figure on this.
pub fn time_launch<K: Kernel + ?Sized>(
    dev: &Device,
    kernel: &K,
    wd: &WorkDiv,
    args: &Args,
    mode: LaunchMode,
) -> Result<TimedRun> {
    let start = Instant::now();
    match &dev.inner {
        DeviceImpl::Cpu(d) => {
            d.launch(kernel, wd, &args.to_cpu()?)?;
            let wall = start.elapsed().as_secs_f64();
            Ok(TimedRun {
                wall_s: wall,
                time_s: wall,
                simulated: false,
                report: None,
            })
        }
        DeviceImpl::Sim(d) => {
            let exec_mode = match mode {
                LaunchMode::Exact => ExecMode::Full,
                LaunchMode::TimingSampled(k) => ExecMode::SampleBlocks(k),
            };
            let report = run_sim_traced(d, dev.id(), kernel, wd, &args.to_sim()?, exec_mode)?;
            Ok(TimedRun {
                wall_s: start.elapsed().as_secs_f64(),
                time_s: report.time.total_s,
                simulated: true,
                report: Some(report),
            })
        }
    }
}

/// Convenience check used by tests and examples: run the kernel on every
/// given device and require identical `download()` results for the listed
/// output buffers — the paper's *testability* property.
pub fn assert_portable<K, F>(kinds: &[crate::AccKind], mut setup: F)
where
    K: Kernel + Clone + Send + 'static,
    F: FnMut(&Device) -> (K, WorkDiv, Args, Vec<BufferF>),
{
    let mut reference: Option<(String, Vec<Vec<f64>>)> = None;
    for kind in kinds {
        let dev = Device::with_workers(kind.clone(), 4);
        let (kernel, wd, args, outputs) = setup(&dev);
        dev.launch(&kernel, &wd, &args)
            .unwrap_or_else(|e| panic!("{}: {e}", dev.name()));
        let got: Vec<Vec<f64>> = outputs.iter().map(|b| b.download()).collect();
        match &reference {
            None => reference = Some((dev.name(), got)),
            Some((ref_name, want)) => {
                assert_eq!(
                    &got,
                    want,
                    "results diverge between {ref_name} and {}",
                    dev.name()
                );
            }
        }
    }
}

/// Emit the trace events of one completed simulated launch: the queue-side
/// span (only for queue launches), the launch span carrying the roofline
/// datapoint meta, and one block-execution span per interpreted block laid
/// out on per-SM lanes. Everything is derived from the simulated clock and
/// the deterministic per-block spans, so the stream is identical across
/// interpreter thread counts and engines.
fn emit_launch_events(
    kernel: &str,
    device: u64,
    queue: Option<u64>,
    ordinal: u64,
    (clock_ghz, peak_gflops, peak_bw_gbs): (f64, f64, f64),
    t0: f64,
    report: &SimReport,
) {
    let on_queue = |ev: TraceEvent| match queue {
        Some(q) => ev.on_queue(q),
        None => ev,
    };
    let t1 = t0 + report.time.total_s;
    if let Some(q) = queue {
        trace::emit(
            TraceEvent::new(
                TraceKind::QueueOp,
                format!("enqueue_kernel:{kernel}"),
                device,
                t0,
            )
            .span_until(t1)
            .on_queue(q)
            .on_launch(ordinal),
        );
    }
    let s = &report.stats;
    trace::emit(
        on_queue(TraceEvent::new(TraceKind::Launch, kernel, device, t0))
            .span_until(t1)
            .on_launch(ordinal)
            .with("flops", s.total_flops() as f64)
            .with("dram_bytes", s.dram_bytes as f64)
            .with("total_s", report.time.total_s)
            .with("blocks", s.blocks as f64)
            .with("clock_ghz", clock_ghz)
            .with("peak_gflops", peak_gflops)
            .with("peak_bw_gbs", peak_bw_gbs),
    );
    // Each SM lane is a serial timeline starting at the launch: block
    // durations come from the per-block issue-cycle counts, in block order
    // (the order the SM would execute its resident queue).
    let hz = clock_ghz * 1e9;
    let mut cursors: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    for b in &report.spans {
        let cur = cursors.entry(b.sm).or_insert(t0);
        let dur = if hz > 0.0 { b.cycles as f64 / hz } else { 0.0 };
        trace::emit(
            on_queue(TraceEvent::new(
                TraceKind::BlockExec,
                format!("block {}", b.block),
                device,
                *cur,
            ))
            .span_until(*cur + dur)
            .on_launch(ordinal)
            .on_block(b.block, b.sm),
        );
        *cur += dur;
    }
}

// Re-exported at the crate root; keep the error type in scope for docs.
#[allow(unused_imports)]
use Error as _ErrorDoc;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::AccKind;
    use alpaka_core::ops::{KernelOps, KernelOpsExt};

    #[derive(Clone)]
    struct Scale;
    impl Kernel for Scale {
        fn name(&self) -> &str {
            "scale"
        }
        fn run<O: KernelOps>(&self, o: &mut O) {
            let b = o.buf_f(0);
            let n = o.param_i(0);
            let i = o.global_thread_idx(0);
            let c = o.lt_i(i, n);
            o.if_(c, |o| {
                let v = o.ld_gf(b, i);
                let two = o.lit_f(2.0);
                let r = o.mul_f(v, two);
                o.st_gf(b, i, r);
            });
        }
    }

    #[test]
    fn wait_error_display_names_queue_and_device() {
        let dev = Device::new(AccKind::sim_k20());
        let q = Queue::new(dev.clone(), QueueBehavior::NonBlocking);
        q.inject_worker_death();
        let err = q.wait().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains(&format!("queue {}", q.id())), "{msg}");
        assert!(msg.contains(&dev.name()), "{msg}");
        // Same context from wait_event, and no accumulation on repeat waits.
        let ev = HostEvent::new();
        let msg2 = q.wait_event(&ev).unwrap_err().to_string();
        assert_eq!(msg, msg2);
        assert_eq!(msg.matches("(queue ").count(), 1, "{msg}");
        // The sticky slot itself stays unwrapped.
        let raw = q.sticky_error().unwrap().to_string();
        assert!(!raw.contains("(queue"), "{raw}");
    }

    #[test]
    fn traced_launch_emits_queue_launch_and_block_spans() {
        let n = 256usize;
        let ((), events) = trace::capture(|| {
            let dev = Device::new(AccKind::sim_k20());
            let q = Queue::new(dev.clone(), QueueBehavior::Blocking);
            let b = dev.alloc_f64(crate::BufLayout::d1(n));
            b.upload(&vec![1.0; n]).unwrap();
            let wd = dev.suggest_workdiv_1d(n);
            q.enqueue_kernel(&Scale, &wd, &Args::new().buf_f(&b).scalar_i(n as i64))
                .unwrap();
            q.wait().unwrap();
        });
        let launches: Vec<_> = events
            .iter()
            .filter(|e| e.kind == TraceKind::Launch)
            .collect();
        assert_eq!(launches.len(), 1);
        let l = launches[0];
        assert_eq!(l.label, "scale");
        assert_eq!(l.launch, Some(0));
        assert!(l.meta_get("flops").is_some());
        assert!(l.meta_get("peak_gflops").unwrap() > 0.0);
        assert!(l.sim_dur_s() > 0.0);
        let blocks = events
            .iter()
            .filter(|e| e.kind == TraceKind::BlockExec)
            .count();
        assert_eq!(blocks as u64, l.meta_get("blocks").unwrap() as u64);
        assert!(events.iter().any(|e| e.kind == TraceKind::QueueOp));
        assert!(events.iter().any(|e| e.kind == TraceKind::Wait));
    }

    #[test]
    fn untraced_launch_emits_nothing() {
        if trace::enabled() {
            return; // an outer ALPAKA_SIM_TRACE run; nothing to assert
        }
        let before = trace::pending();
        let n = 64usize;
        let dev = Device::new(AccKind::sim_k20());
        let q = Queue::new(dev.clone(), QueueBehavior::Blocking);
        let b = dev.alloc_f64(crate::BufLayout::d1(n));
        let wd = dev.suggest_workdiv_1d(n);
        q.enqueue_kernel(&Scale, &wd, &Args::new().buf_f(&b).scalar_i(n as i64))
            .unwrap();
        q.wait().unwrap();
        assert_eq!(trace::pending(), before);
    }
}
