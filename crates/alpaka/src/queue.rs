//! Uniform queues, executors and timing over every back-end.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use alpaka_core::error::{Error, Result};
use alpaka_core::kernel::{Kernel, ScalarArgs};
use alpaka_core::queue::{HostEvent, QueueBehavior};
use alpaka_core::workdiv::WorkDiv;
use alpaka_cpu::{CpuArgs, CpuQueue};
use alpaka_sim::{ExecMode, SimReport};
use parking_lot::Mutex;

use crate::buffer::{copy_f64, copy_i64, BufferF, BufferI};
use crate::device::{Device, DeviceImpl};

/// Launch arguments: buffers in slot order plus scalars — the executor of
/// Listing 5 binds these together with the kernel and work division.
#[derive(Clone, Default)]
pub struct Args {
    pub bufs_f: Vec<BufferF>,
    pub bufs_i: Vec<BufferI>,
    pub scalars: ScalarArgs,
}

impl Args {
    pub fn new() -> Self {
        Self::default()
    }
    pub fn buf_f(mut self, b: &BufferF) -> Self {
        self.bufs_f.push(b.clone());
        self
    }
    pub fn buf_i(mut self, b: &BufferI) -> Self {
        self.bufs_i.push(b.clone());
        self
    }
    pub fn scalar_f(mut self, v: f64) -> Self {
        self.scalars.f.push(v);
        self
    }
    pub fn scalar_i(mut self, v: i64) -> Self {
        self.scalars.i.push(v);
        self
    }

    fn to_cpu(&self) -> Result<CpuArgs> {
        let mut out = CpuArgs::new();
        for b in &self.bufs_f {
            out = out.buf_f(b.as_host()?);
        }
        for b in &self.bufs_i {
            out = out.buf_i(b.as_host()?);
        }
        out.scalars = self.scalars.clone();
        Ok(out)
    }

    fn to_sim(&self) -> Result<alpaka_accsim::SimLaunchArgs> {
        let mut out = alpaka_accsim::SimLaunchArgs::new();
        for b in &self.bufs_f {
            out = out.buf_f(b.as_sim()?);
        }
        for b in &self.bufs_i {
            out = out.buf_i(b.as_sim()?);
        }
        out.scalars = self.scalars.clone();
        Ok(out)
    }
}

/// Synchronous launch used by `Device::launch` and the timing helper.
pub(crate) fn launch_sync<K: Kernel + ?Sized>(
    dev: &Device,
    kernel: &K,
    wd: &WorkDiv,
    args: &Args,
) -> Result<()> {
    match &dev.inner {
        DeviceImpl::Cpu(d) => d.launch(kernel, wd, &args.to_cpu()?),
        DeviceImpl::Sim(d) => {
            d.run(kernel, wd, &args.to_sim()?, ExecMode::Full)?;
            Ok(())
        }
    }
}

enum QImpl {
    Cpu(CpuQueue),
    // Boxed: SimQueue is much larger than CpuQueue and queues are
    // long-lived, so the indirection costs nothing that matters.
    Sim(Box<Mutex<alpaka_accsim::SimQueue>>),
}

/// An in-order work queue on any device.
///
/// Queue errors follow the CUDA stream model: an operation that fails on a
/// `NonBlocking` queue records its error, which then re-surfaces at every
/// subsequent enqueue, [`Queue::wait`] and [`Queue::wait_event`] until
/// [`Queue::reset`] clears it. The device itself stays usable (unless the
/// error was a device loss, which poisons the [`Device`] independently).
pub struct Queue {
    device: Device,
    behavior: QueueBehavior,
    inner: QImpl,
    /// First error produced by an enqueued operation; sticky until `reset`.
    sticky: Mutex<Option<Error>>,
    /// Monotonic per-queue operation ordinal, keying injected worker death.
    ops: AtomicU64,
}

impl Queue {
    pub fn new(device: Device, behavior: QueueBehavior) -> Self {
        let inner = match &device.inner {
            DeviceImpl::Cpu(d) => QImpl::Cpu(CpuQueue::new(d.clone(), behavior)),
            DeviceImpl::Sim(d) => QImpl::Sim(Box::new(Mutex::new(alpaka_accsim::SimQueue::new(
                d.clone(),
                behavior,
            )))),
        };
        Queue {
            device,
            behavior,
            inner,
            sticky: Mutex::new(None),
            ops: AtomicU64::new(0),
        }
    }

    pub fn device(&self) -> &Device {
        &self.device
    }

    pub fn behavior(&self) -> QueueBehavior {
        self.behavior
    }

    /// Fail if a sticky error is recorded (clones it; the slot is kept).
    fn check_sticky(&self) -> Result<()> {
        match self.sticky.lock().clone() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Record the first error; later ones are dropped (CUDA keeps the
    /// first sticky error per stream).
    fn record(&self, e: Error) {
        let mut slot = self.sticky.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    /// Route an operation result by queue behavior: blocking queues return
    /// errors directly, non-blocking queues record them (surfacing at the
    /// next enqueue/wait) and report success for the enqueue itself.
    fn absorb(&self, r: Result<()>) -> Result<()> {
        match (r, self.behavior) {
            (Ok(()), _) => Ok(()),
            (Err(e), QueueBehavior::Blocking) => Err(e),
            (Err(e), QueueBehavior::NonBlocking) => {
                self.record(e);
                Ok(())
            }
        }
    }

    /// Consume one op ordinal against the device's fault plan; an injected
    /// worker death kills the queue at this operation.
    fn consume_op(&self) -> Result<()> {
        let op = self.ops.fetch_add(1, Ordering::SeqCst);
        if let Some(plan) = self.device.faults() {
            if plan.worker_death_hits(op) {
                if let QImpl::Cpu(q) = &self.inner {
                    q.kill_worker();
                }
                return self.absorb(Err(Error::Device(format!(
                    "queue worker died (injected at queue op {op})"
                ))));
            }
        }
        Ok(())
    }

    /// Enqueue a kernel execution.
    pub fn enqueue_kernel<K: Kernel + Clone + Send + 'static>(
        &self,
        kernel: &K,
        wd: &WorkDiv,
        args: &Args,
    ) -> Result<()> {
        self.check_sticky()?;
        self.consume_op()?;
        if self.sticky.lock().is_some() {
            // consume_op absorbed an injected death; this op never runs.
            return Ok(());
        }
        match &self.inner {
            QImpl::Cpu(q) => q.enqueue_kernel(kernel.clone(), *wd, args.to_cpu()?),
            QImpl::Sim(q) => {
                let r = q
                    .lock()
                    .enqueue_kernel(kernel, wd, &args.to_sim()?, ExecMode::Full)
                    .map(|_| ());
                self.absorb(r)
            }
        }
    }

    /// Enqueue a deep f64 copy. Same-host copies on a non-blocking CPU
    /// queue stay fully asynchronous; copies that cross a device boundary
    /// first drain the queue (preserving in-order semantics) and then run.
    pub fn enqueue_copy_f64(&self, dst: &BufferF, src: &BufferF) -> Result<()> {
        self.check_sticky()?;
        self.consume_op()?;
        if self.sticky.lock().is_some() {
            return Ok(());
        }
        match (&self.inner, dst, src) {
            (QImpl::Cpu(q), BufferF::Host(d), BufferF::Host(s)) => q.enqueue_copy(d, s),
            _ => {
                self.wait()?;
                let r = copy_f64(dst, src);
                self.absorb(r)
            }
        }
    }

    /// Enqueue a deep i64 copy (same ordering rules as
    /// [`Queue::enqueue_copy_f64`]).
    pub fn enqueue_copy_i64(&self, dst: &BufferI, src: &BufferI) -> Result<()> {
        self.check_sticky()?;
        self.consume_op()?;
        if self.sticky.lock().is_some() {
            return Ok(());
        }
        match (&self.inner, dst, src) {
            (QImpl::Cpu(q), BufferI::Host(d), BufferI::Host(s)) => q.enqueue_copy(d, s),
            _ => {
                self.wait()?;
                let r = copy_i64(dst, src);
                self.absorb(r)
            }
        }
    }

    /// Enqueue an event signaled once all prior operations completed.
    pub fn enqueue_event(&self, ev: &HostEvent) -> Result<()> {
        self.check_sticky()?;
        match &self.inner {
            QImpl::Cpu(q) => q.enqueue_event(ev),
            QImpl::Sim(q) => q.lock().enqueue_event(ev),
        }
    }

    /// Drain the queue; surfaces the first error of any enqueued op. The
    /// error is sticky: it is reported again by every later operation until
    /// [`Queue::reset`].
    pub fn wait(&self) -> Result<()> {
        match &self.inner {
            QImpl::Cpu(q) => {
                if let Err(e) = q.wait() {
                    self.record(e);
                }
            }
            QImpl::Sim(q) => {
                if let Err(e) = q.lock().wait() {
                    self.record(e);
                }
            }
        }
        self.check_sticky()
    }

    /// Block until `ev` is signaled, then surface any error recorded by
    /// the operations that preceded it (sticky, like [`Queue::wait`]).
    /// Returns early with the queue's error if the worker dies before the
    /// event can ever be signaled.
    pub fn wait_event(&self, ev: &HostEvent) -> Result<()> {
        loop {
            if ev.is_done() {
                break;
            }
            if let QImpl::Cpu(q) = &self.inner {
                if q.worker_dead() {
                    if let Some(e) = q.peek_error() {
                        self.record(e);
                    }
                    return self.check_sticky();
                }
            }
            if self.sticky.lock().is_some() {
                return self.check_sticky();
            }
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        if let QImpl::Cpu(q) = &self.inner {
            if let Some(e) = q.peek_error() {
                self.record(e);
            }
        }
        self.check_sticky()
    }

    /// The sticky error currently recorded, if any (non-destructive).
    pub fn sticky_error(&self) -> Option<Error> {
        self.sticky.lock().clone()
    }

    /// Clear the sticky error and revive the queue: recorded errors are
    /// discarded and a dead CPU queue worker is respawned. The device is
    /// NOT revived — a lost device stays lost.
    pub fn reset(&self) {
        if let QImpl::Cpu(q) = &self.inner {
            q.reset();
        }
        *self.sticky.lock() = None;
    }

    /// Inject queue-worker death directly (test hook; the `worker_death_at`
    /// knob of a [`alpaka_sim::FaultPlan`] does this at a chosen ordinal).
    pub fn inject_worker_death(&self) {
        match &self.inner {
            QImpl::Cpu(q) => q.kill_worker(),
            QImpl::Sim(_) => self.record(Error::Device("queue worker died (injected)".into())),
        }
    }

    /// Simulated seconds consumed by this queue (0 for native devices).
    pub fn sim_elapsed_s(&self) -> f64 {
        match &self.inner {
            QImpl::Cpu(_) => 0.0,
            QImpl::Sim(q) => q.lock().elapsed_s(),
        }
    }
}

/// How to execute a timed launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchMode {
    /// Interpret/execute everything (results are valid).
    Exact,
    /// Simulated devices interpret only ~n blocks and extrapolate timing
    /// (results incomplete); native devices ignore this and run exactly.
    TimingSampled(usize),
}

/// Result of a timed launch.
#[derive(Debug, Clone)]
pub struct TimedRun {
    /// Wall-clock seconds spent by the host.
    pub wall_s: f64,
    /// The time to report: simulated seconds on simulated devices,
    /// wall-clock seconds on native ones.
    pub time_s: f64,
    pub simulated: bool,
    /// Full simulator report when available.
    pub report: Option<SimReport>,
}

/// Execute `kernel` once on `dev` and measure it: wall clock for native
/// back-ends, modeled device time for simulated ones. The benchmark harness
/// (`alpaka-bench`) builds every figure on this.
pub fn time_launch<K: Kernel + ?Sized>(
    dev: &Device,
    kernel: &K,
    wd: &WorkDiv,
    args: &Args,
    mode: LaunchMode,
) -> Result<TimedRun> {
    let start = Instant::now();
    match &dev.inner {
        DeviceImpl::Cpu(d) => {
            d.launch(kernel, wd, &args.to_cpu()?)?;
            let wall = start.elapsed().as_secs_f64();
            Ok(TimedRun {
                wall_s: wall,
                time_s: wall,
                simulated: false,
                report: None,
            })
        }
        DeviceImpl::Sim(d) => {
            let exec_mode = match mode {
                LaunchMode::Exact => ExecMode::Full,
                LaunchMode::TimingSampled(k) => ExecMode::SampleBlocks(k),
            };
            let report = d.run(kernel, wd, &args.to_sim()?, exec_mode)?;
            Ok(TimedRun {
                wall_s: start.elapsed().as_secs_f64(),
                time_s: report.time.total_s,
                simulated: true,
                report: Some(report),
            })
        }
    }
}

/// Convenience check used by tests and examples: run the kernel on every
/// given device and require identical `download()` results for the listed
/// output buffers — the paper's *testability* property.
pub fn assert_portable<K, F>(kinds: &[crate::AccKind], mut setup: F)
where
    K: Kernel + Clone + Send + 'static,
    F: FnMut(&Device) -> (K, WorkDiv, Args, Vec<BufferF>),
{
    let mut reference: Option<(String, Vec<Vec<f64>>)> = None;
    for kind in kinds {
        let dev = Device::with_workers(kind.clone(), 4);
        let (kernel, wd, args, outputs) = setup(&dev);
        dev.launch(&kernel, &wd, &args)
            .unwrap_or_else(|e| panic!("{}: {e}", dev.name()));
        let got: Vec<Vec<f64>> = outputs.iter().map(|b| b.download()).collect();
        match &reference {
            None => reference = Some((dev.name(), got)),
            Some((ref_name, want)) => {
                assert_eq!(
                    &got,
                    want,
                    "results diverge between {ref_name} and {}",
                    dev.name()
                );
            }
        }
    }
}

// Re-exported at the crate root; keep the error type in scope for docs.
#[allow(unused_imports)]
use Error as _ErrorDoc;
