//! Uniform devices: one enum over every back-end.
//!
//! The paper's headline usability claim is that running on a new platform
//! requires changing *one* source line (the accelerator type alias in
//! Listing 5). The facade reproduces that: programs hold a [`Device`]
//! constructed from an [`AccKind`], and everything else — buffers, queues,
//! executors — is uniform.

use alpaka_core::acc::AccCaps;
use alpaka_core::buffer::BufLayout;
use alpaka_core::error::Result;
use alpaka_core::kernel::Kernel;
use alpaka_core::trace;
use alpaka_core::vec::div_ceil;
use alpaka_core::workdiv::WorkDiv;
use alpaka_cpu::{CpuAccKind, CpuDevice};
use alpaka_sim::DeviceSpec;
use alpaka_sim::{Engine, FaultPlan};

use crate::buffer::{BufferF, BufferI};

/// Every accelerator the reproduction ships. Switching back-end is
/// switching this one value.
#[derive(Debug, Clone, PartialEq)]
pub enum AccKind {
    /// Sequential CPU back-end (`AccCpuSerial`).
    CpuSerial,
    /// Worker-pool over blocks (OpenMP2-blocks analogue).
    CpuBlocks,
    /// OS thread per block-thread (C++11-threads analogue).
    CpuThreads,
    /// Persistent thread team per block (OpenMP2-threads analogue).
    CpuBlockThreads,
    /// Cooperative fibers (boost-fiber analogue).
    CpuFibers,
    /// Simulated GPU (CUDA back-end analogue) with a device spec.
    SimGpu(DeviceSpec),
    /// Simulated CPU device model (used by the Fig. 9 study).
    SimCpu(DeviceSpec),
}

impl AccKind {
    /// Simulated NVIDIA K20 — the paper's primary GPU.
    pub fn sim_k20() -> Self {
        AccKind::SimGpu(DeviceSpec::k20())
    }
    /// Simulated NVIDIA K80.
    pub fn sim_k80() -> Self {
        AccKind::SimGpu(DeviceSpec::k80())
    }
    /// Simulated Intel E5-2630v3.
    pub fn sim_e5_2630v3() -> Self {
        AccKind::SimCpu(DeviceSpec::e5_2630v3())
    }

    /// The five native CPU accelerators.
    pub fn native_cpu_all() -> Vec<AccKind> {
        vec![
            AccKind::CpuSerial,
            AccKind::CpuBlocks,
            AccKind::CpuThreads,
            AccKind::CpuBlockThreads,
            AccKind::CpuFibers,
        ]
    }

    pub fn name(&self) -> String {
        match self {
            AccKind::CpuSerial => "AccCpuSerial".into(),
            AccKind::CpuBlocks => "AccCpuBlocks".into(),
            AccKind::CpuThreads => "AccCpuThreads".into(),
            AccKind::CpuBlockThreads => "AccCpuBlockThreads".into(),
            AccKind::CpuFibers => "AccCpuFibers".into(),
            AccKind::SimGpu(s) => format!("AccSimGpu({})", s.name),
            AccKind::SimCpu(s) => format!("AccSimCpu({})", s.name),
        }
    }
}

#[derive(Clone)]
pub(crate) enum DeviceImpl {
    Cpu(CpuDevice),
    Sim(alpaka_accsim::SimDevice),
}

/// A device of any back-end.
#[derive(Clone)]
pub struct Device {
    kind: AccKind,
    pub(crate) inner: DeviceImpl,
    /// Process-unique trace ordinal (shared by clones of this handle).
    id: u64,
}

impl Device {
    /// Create a device for the given accelerator (`DevMan::getDevByIdx`
    /// analogue — the host machine exposes exactly one device per CPU
    /// accelerator, and each spec names one simulated device).
    pub fn new(kind: AccKind) -> Device {
        let inner = match &kind {
            AccKind::CpuSerial => DeviceImpl::Cpu(CpuDevice::new(CpuAccKind::Serial)),
            AccKind::CpuBlocks => DeviceImpl::Cpu(CpuDevice::new(CpuAccKind::Blocks)),
            AccKind::CpuThreads => DeviceImpl::Cpu(CpuDevice::new(CpuAccKind::Threads)),
            AccKind::CpuBlockThreads => DeviceImpl::Cpu(CpuDevice::new(CpuAccKind::BlockThreads)),
            AccKind::CpuFibers => DeviceImpl::Cpu(CpuDevice::new(CpuAccKind::Fibers)),
            AccKind::SimGpu(spec) | AccKind::SimCpu(spec) => {
                DeviceImpl::Sim(alpaka_accsim::SimDevice::new(spec.clone()))
            }
        };
        Device {
            kind,
            inner,
            id: trace::next_device_id(),
        }
    }

    /// Like [`Device::new`] but with an explicit worker count for the
    /// block-parallel native back-ends.
    pub fn with_workers(kind: AccKind, workers: usize) -> Device {
        let inner = match &kind {
            AccKind::CpuSerial => {
                DeviceImpl::Cpu(CpuDevice::with_workers(CpuAccKind::Serial, workers))
            }
            AccKind::CpuBlocks => {
                DeviceImpl::Cpu(CpuDevice::with_workers(CpuAccKind::Blocks, workers))
            }
            AccKind::CpuThreads => {
                DeviceImpl::Cpu(CpuDevice::with_workers(CpuAccKind::Threads, workers))
            }
            AccKind::CpuBlockThreads => {
                DeviceImpl::Cpu(CpuDevice::with_workers(CpuAccKind::BlockThreads, workers))
            }
            AccKind::CpuFibers => {
                DeviceImpl::Cpu(CpuDevice::with_workers(CpuAccKind::Fibers, workers))
            }
            AccKind::SimGpu(spec) | AccKind::SimCpu(spec) => {
                // For simulated devices the worker count is the number of
                // host threads interpreting blocks (deterministic; see
                // `alpaka_sim`). `ALPAKA_SIM_THREADS` still overrides.
                DeviceImpl::Sim(alpaka_accsim::SimDevice::with_threads(
                    spec.clone(),
                    workers,
                ))
            }
        };
        Device {
            kind,
            inner,
            id: trace::next_device_id(),
        }
    }

    pub fn kind(&self) -> &AccKind {
        &self.kind
    }

    /// Process-unique trace ordinal of this device handle (the `pid` of its
    /// lanes in a Chrome-trace export).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Select the simulator interpreter engine for launches on this device
    /// (no-op on native CPU devices). Both engines are bit-identical in
    /// results and statistics.
    pub fn with_engine(mut self, engine: Engine) -> Device {
        self.inner = match self.inner {
            DeviceImpl::Sim(d) => DeviceImpl::Sim(d.with_engine(engine)),
            other => other,
        };
        self
    }

    /// Kernel launches attempted on this device so far (simulated devices
    /// only; 0 for native ones). Traces use this as the launch ordinal.
    pub fn sim_launch_count(&self) -> u64 {
        match &self.inner {
            DeviceImpl::Cpu(_) => 0,
            DeviceImpl::Sim(d) => d.launch_count(),
        }
    }

    pub fn name(&self) -> String {
        self.kind.name()
    }

    pub fn caps(&self) -> AccCaps {
        match &self.inner {
            DeviceImpl::Cpu(d) => d.caps(),
            DeviceImpl::Sim(d) => d.caps(),
        }
    }

    /// True for simulated devices (times are simulated seconds).
    pub fn is_simulated(&self) -> bool {
        matches!(self.inner, DeviceImpl::Sim(_))
    }

    /// Attach a fault-injection plan (simulated devices only; a no-op on
    /// native CPU devices, which have no injection hooks). Replaces any
    /// plan picked up from `ALPAKA_SIM_FAULTS`.
    pub fn with_faults(self, plan: FaultPlan) -> Device {
        if let DeviceImpl::Sim(d) = &self.inner {
            d.set_faults(Some(plan));
        }
        self
    }

    /// The active fault plan, if any (always `None` for native devices).
    pub fn faults(&self) -> Option<FaultPlan> {
        match &self.inner {
            DeviceImpl::Cpu(_) => None,
            DeviceImpl::Sim(d) => d.faults(),
        }
    }

    /// True once the device is lost (an injected sticky fault): every
    /// operation fails until a fresh device is constructed.
    pub fn is_lost(&self) -> bool {
        match &self.inner {
            DeviceImpl::Cpu(_) => false,
            DeviceImpl::Sim(d) => d.is_lost(),
        }
    }

    /// Charge `s` simulated seconds to the device clock (used by the retry
    /// layer to account backoff in simulated time; no-op on native devices).
    pub fn advance_sim_clock(&self, s: f64) {
        if let DeviceImpl::Sim(d) = &self.inner {
            d.advance_clock(s);
        }
    }

    /// Clear the active fault plan (including one picked up from
    /// `ALPAKA_SIM_FAULTS`); no-op on native devices. Determinism suites
    /// use this so an ambient fault seed cannot disturb fault-free runs.
    pub fn clear_faults(&self) {
        if let DeviceImpl::Sim(d) = &self.inner {
            d.set_faults(None);
        }
    }

    /// Revive a lost device: models a device reset / re-enumeration after a
    /// quarantine cooldown (the pool's Quarantined → Recovered edge).
    /// Memory, simulated clock and fault ordinals are preserved; no-op on
    /// native devices.
    pub fn revive(&self) {
        if let DeviceImpl::Sim(d) = &self.inner {
            d.revive();
        }
    }

    /// Arm device-level recovery: the health layer declares this
    /// (quarantined) device recovered, allowing [`crate::Queue::reset`] to
    /// clear the sticky lost flag. No-op on native devices.
    pub fn mark_recovered(&self) {
        if let DeviceImpl::Sim(d) = &self.inner {
            d.mark_recovered();
        }
    }

    /// Allocate a zeroed f64 buffer resident on this device.
    pub fn alloc_f64(&self, layout: BufLayout) -> BufferF {
        match &self.inner {
            DeviceImpl::Cpu(d) => BufferF::Host(d.alloc_f64(layout)),
            DeviceImpl::Sim(d) => BufferF::Sim(d.alloc_f64(layout)),
        }
    }

    /// Allocate a zeroed i64 buffer resident on this device.
    pub fn alloc_i64(&self, layout: BufLayout) -> BufferI {
        match &self.inner {
            DeviceImpl::Cpu(d) => BufferI::Host(d.alloc_i64(layout)),
            DeviceImpl::Sim(d) => BufferI::Sim(d.alloc_i64(layout)),
        }
    }

    /// Fault-aware f64 allocation: on simulated devices this consumes one
    /// allocation ordinal against the fault plan and can fail with an
    /// injected OOM (`Error::Device`) or `Error::DeviceLost`; on native
    /// devices it always succeeds.
    pub fn try_alloc_f64(&self, layout: BufLayout) -> Result<BufferF> {
        match &self.inner {
            DeviceImpl::Cpu(d) => Ok(BufferF::Host(d.alloc_f64(layout))),
            DeviceImpl::Sim(d) => Ok(BufferF::Sim(d.try_alloc_f64(layout)?)),
        }
    }

    /// Fault-aware i64 allocation; see [`Device::try_alloc_f64`].
    pub fn try_alloc_i64(&self, layout: BufLayout) -> Result<BufferI> {
        match &self.inner {
            DeviceImpl::Cpu(d) => Ok(BufferI::Host(d.alloc_i64(layout))),
            DeviceImpl::Sim(d) => Ok(BufferI::Sim(d.try_alloc_i64(layout)?)),
        }
    }

    /// A sensible 1-D work division for a problem of `n` elements on this
    /// accelerator, following the Table 2 shapes: accelerators with
    /// collapsed block-thread levels get one thread and many elements, the
    /// others get full blocks.
    pub fn suggest_workdiv_1d(&self, n: usize) -> WorkDiv {
        let caps = self.caps();
        let n = n.max(1);
        if caps.requires_single_thread_blocks {
            // Enough blocks to feed every worker a few times over.
            let target_blocks = (caps.concurrent_blocks * 8).max(1);
            let v = div_ceil(n, target_blocks).clamp(1, 4096);
            WorkDiv::d1(div_ceil(n, v), 1, v)
        } else if caps.warp_width > 1 {
            // GPU-style: wide blocks, one element per thread.
            let b = 128.min(caps.max_threads_per_block);
            WorkDiv::d1(div_ceil(n, b), b, 1)
        } else {
            // Thread-parallel CPU accelerators: modest blocks, several
            // elements per thread.
            let b = 8.min(caps.max_threads_per_block).max(1);
            let v = div_ceil(n, b * 64).clamp(1, 1024);
            WorkDiv::d1(div_ceil(n, b * v), b, v)
        }
    }

    /// Synchronous kernel execution (convenience; queues below for the
    /// full stream semantics).
    pub fn launch<K: Kernel + Clone + Send + 'static>(
        &self,
        kernel: &K,
        wd: &WorkDiv,
        args: &crate::queue::Args,
    ) -> Result<()> {
        crate::queue::launch_sync(self, kernel, wd, args)
    }

    /// Like [`Device::launch`], but returns the full simulator report on
    /// simulated devices (`None` on native CPU devices, which have no
    /// simulator). The resilience layer uses this to surface retry and
    /// fail-over provenance on the winning attempt's report.
    pub fn launch_report<K: Kernel + Clone + Send + 'static>(
        &self,
        kernel: &K,
        wd: &WorkDiv,
        args: &crate::queue::Args,
    ) -> Result<Option<alpaka_sim::SimReport>> {
        crate::queue::launch_sync_report(self, kernel, wd, args)
    }

    /// Simulated-clock accessor (0 for native devices).
    pub fn sim_clock_s(&self) -> f64 {
        match &self.inner {
            DeviceImpl::Cpu(_) => 0.0,
            DeviceImpl::Sim(d) => d.clock_s(),
        }
    }
}

impl core::fmt::Debug for Device {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Device({})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_line_switch_constructs_all() {
        let mut kinds = AccKind::native_cpu_all();
        kinds.push(AccKind::sim_k20());
        kinds.push(AccKind::sim_e5_2630v3());
        for kind in kinds {
            let dev = Device::new(kind.clone());
            assert!(!dev.caps().name.is_empty(), "{kind:?}");
        }
    }

    #[test]
    fn suggested_workdivs_cover_problem_and_validate() {
        for kind in [
            AccKind::CpuSerial,
            AccKind::CpuBlocks,
            AccKind::CpuThreads,
            AccKind::sim_k20(),
            AccKind::sim_e5_2630v3(),
        ] {
            let dev = Device::with_workers(kind.clone(), 4);
            for n in [1usize, 7, 1000, 1 << 16] {
                let wd = dev.suggest_workdiv_1d(n);
                wd.validate(&dev.caps()).unwrap_or_else(|e| {
                    panic!("{kind:?} n={n}: {e}");
                });
                assert!(
                    wd.global_elem_count() >= n,
                    "{kind:?} n={n}: {wd:?} does not cover"
                );
            }
        }
    }

    #[test]
    fn sim_devices_report_simulated() {
        assert!(Device::new(AccKind::sim_k20()).is_simulated());
        assert!(!Device::new(AccKind::CpuSerial).is_simulated());
    }
}
