//! Uniform buffers over host and simulated device memory.

use alpaka_accsim::{SimBufferF, SimBufferI};
use alpaka_core::buffer::{BufLayout, HostBuf};
use alpaka_core::error::{Error, Result};

/// An f64 buffer resident on some device.
#[derive(Clone)]
pub enum BufferF {
    Host(HostBuf<f64>),
    Sim(SimBufferF),
}

/// An i64 buffer resident on some device.
#[derive(Clone)]
pub enum BufferI {
    Host(HostBuf<i64>),
    Sim(SimBufferI),
}

macro_rules! impl_buffer {
    ($buf:ident, $elem:ty, $host:ty, $sim:ty) => {
        impl $buf {
            pub fn layout(&self) -> BufLayout {
                match self {
                    $buf::Host(b) => b.layout(),
                    $buf::Sim(b) => b.layout(),
                }
            }

            /// Overwrite the logical contents from a dense row-major slice
            /// (staged through a host buffer for device-resident storage —
            /// data movement is always explicit and visible).
            pub fn upload(&self, dense: &[$elem]) -> Result<()> {
                match self {
                    $buf::Host(b) => b.write_dense(dense),
                    $buf::Sim(b) => {
                        let l = b.layout();
                        if dense.len() != l.dense_len() {
                            return Err(Error::BadBuffer(format!(
                                "dense data has {} elements, expected {}",
                                dense.len(),
                                l.dense_len()
                            )));
                        }
                        let staging = HostBuf::<$elem>::alloc(l);
                        staging.write_dense(dense)?;
                        b.write_from(&staging)
                    }
                }
            }

            /// Read the logical contents out as a dense row-major vector.
            pub fn download(&self) -> Vec<$elem> {
                match self {
                    $buf::Host(b) => b.to_dense(),
                    $buf::Sim(b) => b.to_dense(),
                }
            }

            pub(crate) fn as_host(&self) -> Result<&$host> {
                match self {
                    $buf::Host(b) => Ok(b),
                    $buf::Sim(_) => Err(Error::BadArg(
                        "device-resident buffer bound to a native CPU launch".into(),
                    )),
                }
            }

            pub(crate) fn as_sim(&self) -> Result<&$sim> {
                match self {
                    $buf::Sim(b) => Ok(b),
                    $buf::Host(_) => Err(Error::BadArg(
                        "host buffer bound to a simulated-device launch without a copy \
                         (the memory model requires explicit deep copies)"
                            .into(),
                    )),
                }
            }
        }
    };
}

impl_buffer!(BufferF, f64, HostBuf<f64>, SimBufferF);
impl_buffer!(BufferI, i64, HostBuf<i64>, SimBufferI);

/// Deep copy between any two f64 buffers (host<->host, host<->device,
/// device<->device via staging) — the uniform `mem::view::copy`.
pub fn copy_f64(dst: &BufferF, src: &BufferF) -> Result<()> {
    if !dst.layout().same_region(&src.layout()) {
        return Err(Error::BadCopy(format!(
            "extent mismatch: src {:?} vs dst {:?}",
            src.layout().extents,
            dst.layout().extents
        )));
    }
    match (dst, src) {
        (BufferF::Host(d), BufferF::Host(s)) => alpaka_core::buffer::copy_region(d, s),
        (BufferF::Sim(d), BufferF::Host(s)) => d.write_from(s),
        (BufferF::Host(d), BufferF::Sim(s)) => s.read_into(d),
        (BufferF::Sim(d), BufferF::Sim(s)) => {
            let staging = HostBuf::<f64>::alloc(s.layout());
            s.read_into(&staging)?;
            d.write_from(&staging)
        }
    }
}

/// Deep copy between any two i64 buffers.
pub fn copy_i64(dst: &BufferI, src: &BufferI) -> Result<()> {
    if !dst.layout().same_region(&src.layout()) {
        return Err(Error::BadCopy(format!(
            "extent mismatch: src {:?} vs dst {:?}",
            src.layout().extents,
            dst.layout().extents
        )));
    }
    match (dst, src) {
        (BufferI::Host(d), BufferI::Host(s)) => alpaka_core::buffer::copy_region(d, s),
        (BufferI::Sim(d), BufferI::Host(s)) => d.write_from(s),
        (BufferI::Host(d), BufferI::Sim(s)) => s.read_into(d),
        (BufferI::Sim(d), BufferI::Sim(s)) => {
            let staging = HostBuf::<i64>::alloc(s.layout());
            s.read_into(&staging)?;
            d.write_from(&staging)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{AccKind, Device};

    #[test]
    fn upload_download_roundtrip_everywhere() {
        let data: Vec<f64> = (0..60).map(|i| i as f64 * 0.25).collect();
        for kind in [AccKind::CpuSerial, AccKind::sim_k20()] {
            let dev = Device::new(kind.clone());
            let buf = dev.alloc_f64(BufLayout::d2(6, 10, 8));
            buf.upload(&data).unwrap();
            assert_eq!(buf.download(), data, "{kind:?}");
        }
    }

    #[test]
    fn copy_crosses_device_boundaries() {
        let host_dev = Device::new(AccKind::CpuSerial);
        let gpu = Device::new(AccKind::sim_k20());
        let data: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let h = host_dev.alloc_f64(BufLayout::d1(32));
        h.upload(&data).unwrap();
        let d = gpu.alloc_f64(BufLayout::d1(32));
        copy_f64(&d, &h).unwrap();
        let d2 = gpu.alloc_f64(BufLayout::d1(32));
        copy_f64(&d2, &d).unwrap(); // device -> device
        let h2 = host_dev.alloc_f64(BufLayout::d1(32));
        copy_f64(&h2, &d2).unwrap();
        assert_eq!(h2.download(), data);
        // The simulated clock paid for all those transfers.
        assert!(gpu.sim_clock_s() > 0.0);
    }

    #[test]
    fn mismatched_copy_rejected() {
        let dev = Device::new(AccKind::CpuSerial);
        let a = dev.alloc_f64(BufLayout::d1(8));
        let b = dev.alloc_f64(BufLayout::d1(9));
        assert!(copy_f64(&a, &b).is_err());
    }
}
