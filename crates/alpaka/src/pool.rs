//! Fault-tolerant multi-device pool: one logical grid launch sharded
//! across N simulated devices as deterministic sub-grids, surviving
//! per-device faults.
//!
//! # Sharding model
//!
//! A pool launch splits the grid's `B` blocks into `S` contiguous shards
//! (`S` is a launch parameter, independent of pool size) and executes them
//! **in ascending shard order**, threading the argument-buffer state from
//! shard to shard: shard `k` starts from the exact buffer contents shard
//! `k-1` produced. Blocks keep their true grid coordinates
//! ([`alpaka_sim::ExecMode::BlockRange`]), and deferred atomics commit in
//! block order inside each shard, so the concatenation of all shards is
//! *block-for-block identical* to one serial full-grid launch — results are
//! bit-identical to the single-device run by construction, for any pool
//! size, interpreter thread count, engine, or fault history that recovers.
//!
//! The host-side state between shards doubles as the **checkpoint**: when
//! a device fails mid-shard, only that shard's buffers are re-materialized
//! (uploaded from the checkpoint) on the migration target — completed
//! shards are never re-run. Device *parallelism* is simulated: each member
//! advances its own simulated clock only by the shards it ran, and the
//! pool's makespan is the busiest member's time, while the pool's
//! *serialized* clock (the sum of shard times) drives the canonical trace
//! lane so the event stream stays byte-identical across pool sizes.
//!
//! # Health state machine
//!
//! ```text
//!             transient fault                sticky loss / retries exhausted
//!   Healthy ──────────────────▶ Degraded ──────────────────▶ Quarantined
//!      ▲                           │                            │
//!      │        clean shard        │                            │ cooldown
//!      ├───────────────────────────┘                            ▼
//!      │                      clean shard                   Recovered
//!      └────────────────────────────────────────────────────────┘
//!                       (a failing shard on a Recovered device
//!                        quarantines it again)
//! ```
//!
//! Quarantined devices receive no shards. After `cooldown_shards` shards
//! complete elsewhere, the pool arms recovery ([`Device::mark_recovered`])
//! and revives the device; one clean shard promotes it back to Healthy.

use alpaka_core::error::{Error, Result};
use alpaka_core::kernel::Kernel;
use alpaka_core::metrics;
use alpaka_core::trace::{self, TraceEvent, TraceKind};
use alpaka_core::workdiv::WorkDiv;
use alpaka_sim::{AttemptRecord, FaultPlan, LaunchStats, ResilienceInfo, SimReport};

use crate::device::{Device, DeviceImpl};
use crate::queue::Args;
use crate::resilient::{classify, fault_kind, Disposition, FallbackChain, LaunchSpec, RetryPolicy};
use crate::WorkDivSpec;

/// Per-device health as seen by the pool's fault tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// No outstanding faults.
    Healthy,
    /// Survived a transient fault; still receives shards.
    Degraded,
    /// Lost (or exhausted its retries): receives no shards until the
    /// recovery cooldown elapses.
    Quarantined,
    /// Revived after quarantine; one clean shard promotes it to Healthy,
    /// one failure re-quarantines it.
    Recovered,
}

impl Health {
    /// May this device be assigned a shard?
    pub fn available(self) -> bool {
        !matches!(self, Health::Quarantined)
    }

    /// Stable lowercase name (metric label value, post-mortem rendering).
    pub fn name(self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Quarantined => "quarantined",
            Health::Recovered => "recovered",
        }
    }
}

/// Count a structured pool-launch failure in the metrics registry before
/// surfacing it (no-op when metrics are disabled).
fn note_pool_failure(e: Error) -> Error {
    metrics::note_failure(fault_kind(&e), &e.to_string());
    e
}

/// Pool-level fault handling knobs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PoolPolicy {
    /// Per-device retry budget for transient shard faults.
    pub retry: RetryPolicy,
    /// Deadline for one pool launch on the serialized pool clock, in
    /// simulated seconds. Exceeding it fails the launch with a structured
    /// timeout naming the completed and pending shards.
    pub deadline_s: Option<f64>,
    /// Shards that must complete elsewhere before a quarantined device is
    /// revived (0 = quarantine is permanent for the pool's lifetime).
    pub cooldown_shards: u32,
    /// Also emit per-member-device shard spans and migration markers (one
    /// Chrome-trace lane per member). Off by default: member lanes
    /// necessarily depend on the pool size, while the canonical pool lane
    /// is byte-identical across pool sizes.
    pub member_lanes: bool,
}

/// One completed shard of a pool launch.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRecord {
    /// Shard ordinal (ascending execution order).
    pub shard: usize,
    /// First linear block index covered (inclusive).
    pub start_block: usize,
    /// One past the last linear block index covered.
    pub end_block: usize,
    /// Member index of the device that completed the shard.
    pub device_index: usize,
    /// Attempts the shard took across all devices (1 = clean first try).
    pub attempts: u32,
    /// Modeled execution seconds of the winning attempt.
    pub time_s: f64,
}

/// One shard hand-off from a quarantined device to a survivor.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRecord {
    /// Shard that migrated.
    pub shard: usize,
    /// Member index the shard failed on.
    pub from: usize,
    /// Member index that inherited it.
    pub to: usize,
    /// The fault that forced the migration.
    pub error: String,
}

/// The completed pool launch.
#[derive(Debug, Clone)]
pub struct PoolOutcome {
    /// Final dense contents of each f64 buffer slot, in binding order.
    pub bufs_f: Vec<Vec<f64>>,
    /// Final dense contents of each i64 buffer slot, in binding order.
    pub bufs_i: Vec<Vec<i64>>,
    /// Launch statistics merged over shards in execution order (equal
    /// across pool sizes, thread counts and engines).
    pub stats: LaunchStats,
    /// Serialized execution time: the sum of all shard times (what a
    /// single device would have taken; drives the canonical trace lane).
    pub serial_s: f64,
    /// Simulated wall time of the pool: the busiest member's seconds.
    pub makespan_s: f64,
    /// Every shard in execution order.
    pub shards: Vec<ShardRecord>,
    /// Every quarantine-driven shard migration, in order.
    pub migrations: Vec<MigrationRecord>,
    /// Health of every member after the launch.
    pub health: Vec<Health>,
    /// Aggregated retry/fail-over provenance across all shards.
    pub resilience: ResilienceInfo,
}

/// A pool of simulated devices executing sharded launches with health
/// tracking and deterministic shard migration. See the module docs for the
/// execution and fault model.
pub struct DevicePool {
    devices: Vec<Device>,
    health: Vec<Health>,
    policy: PoolPolicy,
    /// Completed shards since each member was quarantined (drives the
    /// recovery cooldown).
    cooldown: Vec<u32>,
    /// The pool's own trace lane id (allocated before the members in
    /// [`DevicePool::new_sim`], so captured streams give the pool the same
    /// id regardless of pool size).
    trace_id: u64,
    /// Serialized pool clock in simulated seconds (sum of shard times and
    /// backoffs across all launches so far).
    clock_s: f64,
    /// Pool launch ordinal (trace metadata).
    launches: u64,
}

impl DevicePool {
    /// A pool of `n` identical simulated devices of `kind`. The pool's
    /// trace id is allocated *before* the members, so under
    /// [`trace::capture`] the canonical pool lane has the same id for
    /// every pool size.
    pub fn new_sim(kind: crate::AccKind, n: usize) -> Result<DevicePool> {
        let trace_id = trace::next_device_id();
        let devices: Vec<Device> = (0..n.max(1)).map(|_| Device::new(kind.clone())).collect();
        Self::build(devices, trace_id)
    }

    /// [`DevicePool::new_sim`] with an explicit interpreter worker count
    /// per member (instead of `ALPAKA_SIM_THREADS`).
    pub fn new_sim_with_workers(
        kind: crate::AccKind,
        n: usize,
        workers: usize,
    ) -> Result<DevicePool> {
        let trace_id = trace::next_device_id();
        let devices: Vec<Device> = (0..n.max(1))
            .map(|_| Device::with_workers(kind.clone(), workers))
            .collect();
        Self::build(devices, trace_id)
    }

    /// A pool over existing devices (every one must be simulated — sharded
    /// sub-grid execution needs the simulator).
    pub fn from_devices(devices: Vec<Device>) -> Result<DevicePool> {
        let trace_id = trace::next_device_id();
        Self::build(devices, trace_id)
    }

    /// A pool whose member order is a [`FallbackChain`]: the chain's
    /// devices become members 0..n, and shard migration walks the same
    /// order the chain's fail-over would.
    pub fn from_chain(chain: &FallbackChain) -> Result<DevicePool> {
        Self::from_devices(chain.devices().to_vec())
    }

    fn build(devices: Vec<Device>, trace_id: u64) -> Result<DevicePool> {
        if devices.is_empty() {
            return Err(Error::BadArg(
                "device pool needs at least one device".into(),
            ));
        }
        if let Some(d) = devices.iter().find(|d| !d.is_simulated()) {
            return Err(Error::Unsupported(format!(
                "{}: device pools shard via the simulator; native CPU devices \
                 cannot join a pool",
                d.name()
            )));
        }
        let n = devices.len();
        Ok(DevicePool {
            devices,
            health: vec![Health::Healthy; n],
            policy: PoolPolicy::default(),
            cooldown: vec![0; n],
            trace_id,
            clock_s: 0.0,
            launches: 0,
        })
    }

    /// Replace the pool policy (builder form).
    pub fn with_policy(mut self, policy: PoolPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Select the interpreter engine on every member (builder form).
    pub fn with_engine(mut self, engine: alpaka_sim::Engine) -> Self {
        self.devices = self
            .devices
            .drain(..)
            .map(|d| d.with_engine(engine))
            .collect();
        self
    }

    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    pub fn size(&self) -> usize {
        self.devices.len()
    }

    /// Current health of every member.
    pub fn health(&self) -> &[Health] {
        &self.health
    }

    /// The pool's canonical trace lane id.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Serialized pool clock (simulated seconds across all launches).
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Install (or clear) a fault plan on one member.
    pub fn set_member_faults(&self, member: usize, plan: Option<FaultPlan>) {
        if let Some(d) = self.devices.get(member) {
            match plan {
                Some(p) => {
                    let _ = d.clone().with_faults(p);
                }
                None => d.clear_faults(),
            }
        }
    }

    /// Clear fault plans on every member (including plans picked up from
    /// `ALPAKA_SIM_FAULTS` — determinism suites call this first).
    pub fn clear_faults(&self) {
        for d in &self.devices {
            d.clear_faults();
        }
    }

    /// Execute `spec` as `shards` contiguous sub-grids across the pool.
    ///
    /// Results are bit-identical to a serial single-device run of the same
    /// spec whenever the launch completes — including after any number of
    /// retried faults, quarantines and migrations. Fails with a structured
    /// error naming the shard coordinates (and quarantined device) when
    /// recovery is impossible, or with a timeout naming pending shards when
    /// the pool deadline expires.
    pub fn launch<K: Kernel + Clone + Send + 'static>(
        &mut self,
        spec: &LaunchSpec<K>,
        shards: usize,
    ) -> Result<PoolOutcome> {
        let wd = match &spec.workdiv {
            WorkDivSpec::Fixed(wd) => *wd,
            WorkDivSpec::Suggest1d(n) => self.devices[0].suggest_workdiv_1d(*n),
        };
        let total_blocks = wd.block_count();
        let s = shards.max(1);
        // Balanced contiguous ranges; empty ones (s > B) are skipped.
        let ranges: Vec<(usize, usize)> = (0..s)
            .map(|k| (k * total_blocks / s, (k + 1) * total_blocks / s))
            .filter(|(a, b)| a < b)
            .collect();

        let traced = trace::active();
        let ordinal = self.launches;
        self.launches += 1;
        let launch_t0 = self.clock_s;
        // Host-side state threaded shard-to-shard; doubles as the
        // checkpoint a migrated shard re-materializes from.
        let mut state_f: Vec<Vec<f64>> = spec.bufs_f.iter().map(|(_, init)| init.clone()).collect();
        let mut state_i: Vec<Vec<i64>> = spec.bufs_i.iter().map(|(_, init)| init.clone()).collect();
        let busy_t0: Vec<f64> = self.devices.iter().map(|d| d.sim_clock_s()).collect();

        let mut merged = LaunchStats::default();
        let mut records: Vec<ShardRecord> = Vec::new();
        let mut migrations: Vec<MigrationRecord> = Vec::new();
        let mut history: Vec<AttemptRecord> = Vec::new();
        let mut attempts_total = 0u32;
        let mut backoff_total = 0.0f64;
        // Canonical pool-lane events buffer (flushed in order at the end);
        // member-lane events buffered per member and flushed in
        // device-then-shard order.
        let mut pool_events: Vec<TraceEvent> = Vec::new();
        let mut member_events: Vec<Vec<TraceEvent>> = vec![Vec::new(); self.devices.len()];

        let mut rr = 0usize; // round-robin assignment cursor
        for (k, &(start, end)) in ranges.iter().enumerate() {
            self.check_deadline(launch_t0, k, &ranges)
                .map_err(note_pool_failure)?;
            self.recover_cooled_members(traced, &mut pool_events);
            let Some(owner) = self.next_available(rr) else {
                return Err(note_pool_failure(self.unrecoverable(k, start, end, None)));
            };
            rr = owner + 1;

            // Attempt the shard on `owner`, retrying transients in place
            // and migrating — in deterministic member order — off devices
            // that quarantine, until it completes or no member survives.
            let mut member = owner;
            let mut shard_attempts = 0u32;
            let outcome = 'migrate: loop {
                let mut retries = 0u32;
                let dev = self.devices[member].clone();
                loop {
                    shard_attempts += 1;
                    attempts_total += 1;
                    let result = run_shard(
                        &dev,
                        spec,
                        &wd,
                        (start, end),
                        &mut state_f,
                        &mut state_i,
                        traced,
                    );
                    history.push(AttemptRecord {
                        attempt: attempts_total,
                        device: dev.name(),
                        device_index: member,
                        fault: result.as_ref().err().map(|e| fault_kind(e).to_string()),
                        transient: result.as_ref().err().is_some_and(|e| e.is_transient()),
                    });
                    match result {
                        Ok(report) => break 'migrate Ok(report),
                        Err(e) => {
                            metrics::counter_add(
                                "alpaka_pool_faults_total",
                                &[("kind", fault_kind(&e))],
                                1,
                            );
                            if traced {
                                pool_events.push(
                                    TraceEvent::new(
                                        TraceKind::Fault,
                                        format!("shard {k} on member {member}: {e}"),
                                        self.trace_id,
                                        self.clock_s,
                                    )
                                    .on_launch(ordinal),
                                );
                                if self.policy.member_lanes {
                                    member_events[member].push(TraceEvent::new(
                                        TraceKind::Fault,
                                        format!("shard {k}: {e}"),
                                        dev.id(),
                                        dev.sim_clock_s(),
                                    ));
                                }
                            }
                            match classify(&e) {
                                Disposition::Fatal => {
                                    break 'migrate Err(self.shard_ctx(e, k, start, end, member));
                                }
                                Disposition::Retry if retries < self.policy.retry.max_retries => {
                                    self.set_health(member, Health::Degraded);
                                    retries += 1;
                                    let pause = self.policy.retry.backoff_s(retries);
                                    dev.advance_sim_clock(pause);
                                    self.clock_s += pause;
                                    backoff_total += pause;
                                    metrics::observe("alpaka_pool_backoff_seconds", &[], pause);
                                    self.check_deadline(launch_t0, k, &ranges)
                                        .map_err(note_pool_failure)?;
                                }
                                _ => {
                                    // Sticky loss, or a transient that
                                    // exhausted its retry budget:
                                    // quarantine and migrate.
                                    self.set_health(member, Health::Quarantined);
                                    self.cooldown[member] = 0;
                                    let from = member;
                                    match self.next_available(from + 1) {
                                        Some(next) => {
                                            metrics::counter_add(
                                                "alpaka_pool_migrations_total",
                                                &[],
                                                1,
                                            );
                                            let err_str = e.to_string();
                                            migrations.push(MigrationRecord {
                                                shard: k,
                                                from,
                                                to: next,
                                                error: err_str.clone(),
                                            });
                                            if traced {
                                                pool_events.push(
                                                    TraceEvent::new(
                                                        TraceKind::Migrate,
                                                        format!(
                                                            "shard {k}: member {from} -> \
                                                             member {next}: {err_str}"
                                                        ),
                                                        self.trace_id,
                                                        self.clock_s,
                                                    )
                                                    .on_launch(ordinal)
                                                    .with("shard", k as f64)
                                                    .with("from", from as f64)
                                                    .with("to", next as f64),
                                                );
                                                if self.policy.member_lanes {
                                                    member_events[from].push(TraceEvent::new(
                                                        TraceKind::Migrate,
                                                        format!("shard {k} -> member {next}"),
                                                        self.devices[from].id(),
                                                        self.devices[from].sim_clock_s(),
                                                    ));
                                                }
                                            }
                                            member = next;
                                            continue 'migrate;
                                        }
                                        None => {
                                            break 'migrate Err(self.unrecoverable(
                                                k,
                                                start,
                                                end,
                                                Some((from, e)),
                                            ));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            };

            let report = match outcome {
                Ok(r) => r,
                Err(e) => {
                    if traced {
                        trace::emit_all(pool_events);
                    }
                    return Err(note_pool_failure(e));
                }
            };

            // Shard completed: promote the survivor, advance the clocks,
            // merge stats, emit the canonical span.
            let t0 = self.clock_s;
            self.clock_s += report.time.total_s;
            merged.add(&report.stats);
            self.set_health(member, Health::Healthy);
            for m in 0..self.devices.len() {
                if self.health[m] == Health::Quarantined {
                    self.cooldown[m] = self.cooldown[m].saturating_add(1);
                }
            }
            if traced {
                pool_events.push(
                    TraceEvent::new(TraceKind::Shard, format!("shard {k}"), self.trace_id, t0)
                        .span_until(self.clock_s)
                        .on_launch(ordinal)
                        .with("start_block", start as f64)
                        .with("end_block", end as f64)
                        .with("attempts", shard_attempts as f64),
                );
                if self.policy.member_lanes {
                    let t1 = self.devices[member].sim_clock_s();
                    member_events[member].push(
                        TraceEvent::new(
                            TraceKind::Shard,
                            format!("shard {k}"),
                            self.devices[member].id(),
                            t1 - report.time.total_s,
                        )
                        .span_until(t1)
                        .on_launch(ordinal)
                        .with("start_block", start as f64)
                        .with("end_block", end as f64),
                    );
                }
            }
            records.push(ShardRecord {
                shard: k,
                start_block: start,
                end_block: end,
                device_index: member,
                attempts: shard_attempts,
                time_s: report.time.total_s,
            });
        }

        if traced {
            // Canonical pool lane first (launch span, then shard/fault/
            // migrate events in execution order), then the member lanes in
            // fixed device-then-shard order.
            let name = kernel_name(&spec.kernel);
            trace::emit(
                TraceEvent::new(TraceKind::Launch, name, self.trace_id, launch_t0)
                    .span_until(self.clock_s)
                    .on_launch(ordinal)
                    .with("shards", records.len() as f64)
                    .with("blocks", merged.blocks as f64)
                    .with("flops", merged.total_flops() as f64)
                    .with("total_s", self.clock_s - launch_t0),
            );
            trace::emit_all(pool_events);
            trace::emit_all(member_events.into_iter().flatten());
        }

        if metrics::enabled() {
            // Everything below derives from the serialized pool clock and
            // the shard records, both invariant across pool sizes, thread
            // counts and engines. The makespan is deliberately NOT recorded:
            // it depends on how shards landed on members, i.e. on pool size.
            let name = kernel_name(&spec.kernel);
            metrics::counter_add("alpaka_pool_launches_total", &[("kernel", &name)], 1);
            metrics::counter_add(
                "alpaka_pool_shards_total",
                &[("kernel", &name)],
                records.len() as u64,
            );
            for r in &records {
                metrics::observe("alpaka_pool_shard_seconds", &[], r.time_s);
                metrics::observe_in(
                    "alpaka_pool_shard_attempts",
                    &[],
                    metrics::COUNT_BUCKETS,
                    r.attempts as f64,
                );
            }
            metrics::observe(
                "alpaka_pool_launch_serial_seconds",
                &[],
                self.clock_s - launch_t0,
            );
        }
        let makespan_s = self
            .devices
            .iter()
            .zip(&busy_t0)
            .map(|(d, t0)| d.sim_clock_s() - t0)
            .fold(0.0f64, f64::max);
        let failovers = migrations.len() as u32;
        Ok(PoolOutcome {
            bufs_f: state_f,
            bufs_i: state_i,
            stats: merged,
            serial_s: self.clock_s - launch_t0,
            makespan_s,
            shards: records,
            migrations,
            health: self.health.clone(),
            resilience: ResilienceInfo {
                attempts: attempts_total,
                history,
                backoff_s: backoff_total,
                failovers,
            },
        })
    }

    /// Set one member's health, counting the transition when the state
    /// actually changes (so a fault-free launch records no transitions and
    /// the metrics snapshot stays identical across pool sizes). Member
    /// indices are deliberately not labeled.
    fn set_health(&mut self, member: usize, to: Health) {
        let from = self.health[member];
        if from != to {
            metrics::counter_add(
                "alpaka_pool_health_transitions_total",
                &[("from", from.name()), ("to", to.name())],
                1,
            );
        }
        self.health[member] = to;
    }

    /// First available member at or cyclically after `from`.
    fn next_available(&self, from: usize) -> Option<usize> {
        let n = self.devices.len();
        (0..n)
            .map(|i| (from + i) % n)
            .find(|&m| self.health[m].available())
    }

    /// Quarantined members whose cooldown elapsed are armed + revived to
    /// Recovered (deterministic member order).
    fn recover_cooled_members(&mut self, traced: bool, pool_events: &mut Vec<TraceEvent>) {
        if self.policy.cooldown_shards == 0 {
            return;
        }
        for m in 0..self.devices.len() {
            if self.health[m] == Health::Quarantined
                && self.cooldown[m] >= self.policy.cooldown_shards
            {
                self.devices[m].mark_recovered();
                self.devices[m].revive();
                metrics::observe_in(
                    "alpaka_pool_quarantine_shards",
                    &[],
                    metrics::COUNT_BUCKETS,
                    self.cooldown[m] as f64,
                );
                self.set_health(m, Health::Recovered);
                self.cooldown[m] = 0;
                if traced {
                    pool_events.push(
                        TraceEvent::new(
                            TraceKind::Migrate,
                            format!("recover member {m} after cooldown"),
                            self.trace_id,
                            self.clock_s,
                        )
                        .with("member", m as f64),
                    );
                }
            }
        }
    }

    /// Fail the launch when the serialized pool clock passed the deadline,
    /// naming the completed and pending shards.
    fn check_deadline(
        &self,
        launch_t0: f64,
        next_shard: usize,
        ranges: &[(usize, usize)],
    ) -> Result<()> {
        let Some(deadline) = self.policy.deadline_s else {
            return Ok(());
        };
        let elapsed = self.clock_s - launch_t0;
        if elapsed <= deadline {
            return Ok(());
        }
        let pending_blocks = ranges.get(next_shard).map_or(0, |r| r.0);
        let total_blocks = ranges.last().map_or(0, |r| r.1);
        Err(Error::Timeout(alpaka_core::error::FaultInfo {
            msg: format!(
                "pool deadline of {deadline:.3e}s exceeded at {elapsed:.3e}s: \
                 {next_shard} of {} shard(s) complete; shards {next_shard}..{} \
                 (blocks {pending_blocks}..{total_blocks}) not run",
                ranges.len(),
                ranges.len(),
            ),
            block: None,
            thread: None,
            transient: false,
        }))
    }

    /// Structured error for a shard no surviving member could run.
    fn unrecoverable(
        &self,
        shard: usize,
        start: usize,
        end: usize,
        last: Option<(usize, Error)>,
    ) -> Error {
        let quarantined: Vec<String> = self
            .health
            .iter()
            .enumerate()
            .filter(|(_, h)| **h == Health::Quarantined)
            .map(|(m, _)| format!("{} (member {m})", self.devices[m].name()))
            .collect();
        let tail = match last {
            Some((m, e)) => format!(
                "; last fault on {} (member {m}): {e}",
                self.devices[m].name()
            ),
            None => String::new(),
        };
        Error::DeviceLost(format!(
            "pool: shard {shard} (blocks {start}..{end}) unrecoverable: all {} \
             member(s) quarantined [{}]{tail}",
            self.devices.len(),
            quarantined.join(", "),
        ))
    }

    /// Wrap a fatal shard error with its coordinates, preserving the
    /// variant (and fault coordinates) like the queue context does.
    fn shard_ctx(&self, e: Error, shard: usize, start: usize, end: usize, member: usize) -> Error {
        let ctx = format!(
            " (pool shard {shard}, blocks {start}..{end}, on {} member {member})",
            self.devices[member].name()
        );
        let add = |m: String| format!("{m}{ctx}");
        match e {
            Error::InvalidWorkDiv(m) => Error::InvalidWorkDiv(add(m)),
            Error::BadArg(m) => Error::BadArg(add(m)),
            Error::BadBuffer(m) => Error::BadBuffer(add(m)),
            Error::BadCopy(m) => Error::BadCopy(add(m)),
            Error::KernelFault(mut f) => {
                f.msg = add(f.msg);
                Error::KernelFault(f)
            }
            Error::Timeout(mut f) => {
                f.msg = add(f.msg);
                Error::Timeout(f)
            }
            Error::DeviceLost(m) => Error::DeviceLost(add(m)),
            Error::Device(m) => Error::Device(add(m)),
            Error::Unsupported(m) => Error::Unsupported(add(m)),
        }
    }
}

fn kernel_name<K: Kernel>(k: &K) -> String {
    k.name().to_string()
}

/// One shard attempt on one member: materialize the argument buffers from
/// the checkpoint state, run the sub-grid, download the new state. The
/// checkpoint is only advanced on success — a failed attempt leaves it
/// untouched (the simulator's fault-or-correct guarantee means no partial
/// state can leak back anyway, since downloads happen only after success).
fn run_shard<K: Kernel + Clone + Send + 'static>(
    dev: &Device,
    spec: &LaunchSpec<K>,
    wd: &WorkDiv,
    (start, end): (usize, usize),
    state_f: &mut [Vec<f64>],
    state_i: &mut [Vec<i64>],
    _traced: bool,
) -> Result<SimReport> {
    if dev.is_lost() {
        return Err(Error::DeviceLost(format!(
            "{}: shard launch on a lost device",
            dev.name()
        )));
    }
    let mut args = Args::new();
    let mut bufs_f = Vec::with_capacity(spec.bufs_f.len());
    for ((layout, _), init) in spec.bufs_f.iter().zip(state_f.iter()) {
        let b = dev.try_alloc_f64(*layout)?;
        b.upload(init)?;
        args = args.buf_f(&b);
        bufs_f.push(b);
    }
    let mut bufs_i = Vec::with_capacity(spec.bufs_i.len());
    for ((layout, _), init) in spec.bufs_i.iter().zip(state_i.iter()) {
        let b = dev.try_alloc_i64(*layout)?;
        b.upload(init)?;
        args = args.buf_i(&b);
        bufs_i.push(b);
    }
    args.scalars = spec.scalars.clone();
    let sim_args = args.to_sim()?;
    let report = match &dev.inner {
        DeviceImpl::Sim(d) => d.run(
            &spec.kernel,
            wd,
            &sim_args,
            alpaka_sim::ExecMode::BlockRange { start, end },
        )?,
        DeviceImpl::Cpu(_) => unreachable!("pool construction rejects native devices"),
    };
    for (b, slot) in bufs_f.iter().zip(state_f.iter_mut()) {
        *slot = b.download();
    }
    for (b, slot) in bufs_i.iter().zip(state_i.iter_mut()) {
        *slot = b.download();
    }
    Ok(report)
}
