//! Cost of the tracing layer, both switched off and switched on.
//!
//! The zero-cost contract of `alpaka_core::trace` is that a launch through
//! the traced facade with tracing *disabled* is indistinguishable from the
//! raw simulator call: the only additions on that path are a handful of
//! relaxed atomic loads and never-taken branches, amortised over a
//! multi-millisecond simulated launch. The smoke mode (`-- --test`, run by
//! `scripts/ci.sh`) asserts exactly that:
//!
//! * an untraced facade launch records zero events and no profile, and its
//!   simulated stats are bit-identical to a traced run's,
//! * a traced run emits a non-empty stream whose profile ties out,
//! * with metrics disabled the same facade launch leaves the metrics
//!   registry, flight recorder and failure notes empty, and a metered run
//!   (`metrics::capture`) records families without perturbing the
//!   simulated stats, and
//! * the untraced facade launch is within 2% of the direct
//!   `run_kernel_launch_threads` call (min-of-K wall time, interleaved so
//!   host noise hits both sides equally). The facade path includes every
//!   disabled-metrics branch (queue op counters, launch bridge, failure
//!   notes), so the budget covers the metrics facade too.
//!
//! Full criterion mode additionally times the traced path to report what
//! switching the profiler ON costs — that one is allowed to be slower.

use std::time::Instant;

use alpaka::{trace, AccKind, Args, BufLayout, Device, Queue, QueueBehavior};
use alpaka_kernels::DgemmNaive;
use alpaka_kir::{optimize, trace_kernel};
use alpaka_sim::{
    run_kernel_launch_threads, DeviceMem, DeviceSpec, ExecMode, LaunchStats, SimArgs,
};
use criterion::{criterion_group, criterion_main, Criterion};

const BLOCKS: usize = 256;
const N: usize = 64; // C is BLOCKS x N, A is BLOCKS x N, B is N x N

/// One naive-DGEMM launch through the raw simulator (no facade, no queue).
fn run_direct() -> LaunchStats {
    let mut prog = trace_kernel(&DgemmNaive, 1);
    optimize(&mut prog);
    let wd = DgemmNaive::workdiv(BLOCKS, 1);
    let mut mem = DeviceMem::new();
    let a = mem.alloc_f(BLOCKS * N);
    let b = mem.alloc_f(N * N);
    let c = mem.alloc_f(BLOCKS * N);
    for i in 0..BLOCKS * N {
        mem.f_mut(a)[i] = ((i * 7 + 3) % 17) as f64 * 0.25;
    }
    for i in 0..N * N {
        mem.f_mut(b)[i] = ((i * 5 + 1) % 13) as f64 - 6.0;
    }
    let args = SimArgs {
        bufs_f: vec![a, b, c],
        bufs_i: vec![],
        params_f: vec![1.0, 0.0],
        params_i: vec![
            BLOCKS as i64,
            N as i64,
            N as i64,
            N as i64,
            N as i64,
            N as i64,
        ],
    };
    run_kernel_launch_threads(
        &DeviceSpec::e5_2630v3(),
        &mut mem,
        &prog,
        &wd,
        &args,
        ExecMode::Full,
        1,
    )
    .unwrap()
    .stats
}

/// The same launch through the facade queue (tracing branches compiled in).
fn run_facade() -> LaunchStats {
    let dev = Device::with_workers(AccKind::sim_e5_2630v3(), 1);
    let q = Queue::new(dev.clone(), QueueBehavior::Blocking);
    let ab = dev.alloc_f64(BufLayout::d2(BLOCKS, N, 8));
    let bb = dev.alloc_f64(BufLayout::d2(N, N, 8));
    let cb = dev.alloc_f64(BufLayout::d2(BLOCKS, N, 8));
    let mut a = vec![0.0; BLOCKS * N];
    let mut b = vec![0.0; N * N];
    for (i, v) in a.iter_mut().enumerate() {
        *v = ((i * 7 + 3) % 17) as f64 * 0.25;
    }
    for (i, v) in b.iter_mut().enumerate() {
        *v = ((i * 5 + 1) % 13) as f64 - 6.0;
    }
    ab.upload(&a).unwrap();
    bb.upload(&b).unwrap();
    let args = Args::new()
        .buf_f(&ab)
        .buf_f(&bb)
        .buf_f(&cb)
        .scalar_f(1.0)
        .scalar_f(0.0)
        .scalar_i(BLOCKS as i64)
        .scalar_i(N as i64)
        .scalar_i(N as i64)
        .scalar_i(ab.layout().pitch as i64)
        .scalar_i(bb.layout().pitch as i64)
        .scalar_i(cb.layout().pitch as i64);
    q.enqueue_kernel(&DgemmNaive, &DgemmNaive::workdiv(BLOCKS, 1), &args)
        .unwrap();
    q.wait().unwrap();
    q.last_sim_report().unwrap().stats
}

fn min_wall(k: usize, f: impl Fn()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..k {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn bench_trace_overhead(c: &mut Criterion) {
    // Guard 1: the untraced path is allocation-free and profile-free, and
    // the disabled metrics facade records nothing at all.
    assert!(!trace::enabled(), "tracing must be off for this bench");
    assert!(
        !alpaka::metrics::enabled(),
        "metrics must be off for this bench"
    );
    let untraced_stats = run_facade();
    assert_eq!(trace::pending(), 0, "untraced launch recorded events");
    assert!(
        alpaka::metrics::snapshot().is_empty(),
        "disabled metrics facade recorded families"
    );
    assert!(
        alpaka::metrics::flight_snapshot().is_empty(),
        "disabled metrics facade recorded flight events"
    );
    assert!(
        alpaka::metrics::failures().is_empty(),
        "disabled metrics facade recorded failure notes"
    );

    // Guard 1b: a metered run records the launch without perturbing the
    // simulated stats.
    let (metered_stats, mcap) = alpaka::metrics::capture(run_facade);
    assert_eq!(
        untraced_stats, metered_stats,
        "metrics recording perturbed the simulated stats"
    );
    assert_eq!(mcap.snapshot.counter_total("alpaka_launches_total"), 1);
    assert!(mcap.failures.is_empty());

    // Guard 2: the traced path emits a stream that ties out, and tracing
    // does not perturb the simulation itself.
    let ((traced_stats, profile), events) = trace::capture(|| {
        let dev = Device::with_workers(AccKind::sim_e5_2630v3(), 1);
        let q = Queue::new(dev.clone(), QueueBehavior::Blocking);
        let ab = dev.alloc_f64(BufLayout::d2(BLOCKS, N, 8));
        let bb = dev.alloc_f64(BufLayout::d2(N, N, 8));
        let cb = dev.alloc_f64(BufLayout::d2(BLOCKS, N, 8));
        ab.upload(&vec![1.0; BLOCKS * N]).unwrap();
        bb.upload(&vec![1.0; N * N]).unwrap();
        let args = Args::new()
            .buf_f(&ab)
            .buf_f(&bb)
            .buf_f(&cb)
            .scalar_f(1.0)
            .scalar_f(0.0)
            .scalar_i(BLOCKS as i64)
            .scalar_i(N as i64)
            .scalar_i(N as i64)
            .scalar_i(ab.layout().pitch as i64)
            .scalar_i(bb.layout().pitch as i64)
            .scalar_i(cb.layout().pitch as i64);
        q.enqueue_kernel(&DgemmNaive, &DgemmNaive::workdiv(BLOCKS, 1), &args)
            .unwrap();
        q.wait().unwrap();
        let r = q.last_sim_report().unwrap();
        (r.stats.clone(), r.profile.clone())
    });
    assert!(!events.is_empty(), "traced launch recorded nothing");
    assert_eq!(
        untraced_stats, traced_stats,
        "tracing perturbed the simulated stats"
    );
    let profile = profile.expect("traced launch carries a profile");
    profile.check_against(&traced_stats).unwrap();

    // Guard 3 (the <2% overhead smoke): with tracing disabled, the facade
    // launch path — queue, sticky checks, trace branches — must cost within
    // 2% of the raw simulator call. Interleaved min-of-K so a noisy host
    // hurts both sides alike; one warm-up pair first.
    run_direct();
    run_facade();
    const K: usize = 5;
    let mut direct = f64::INFINITY;
    let mut facade = f64::INFINITY;
    for _ in 0..K {
        let t0 = Instant::now();
        run_direct();
        direct = direct.min(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        run_facade();
        facade = facade.min(t1.elapsed().as_secs_f64());
    }
    let overhead = facade / direct - 1.0;
    eprintln!(
        "trace_overhead: direct={direct:.4}s facade(untraced)={facade:.4}s overhead={:+.2}%",
        overhead * 100.0
    );
    assert!(
        overhead < 0.02,
        "untraced facade launch is {:.2}% slower than the raw simulator call (budget 2%)",
        overhead * 100.0
    );

    if std::env::args().any(|a| a == "--test") {
        eprintln!("trace_overhead: --test smoke mode, zero-cost guards passed");
        return;
    }

    // Full mode: what turning the profiler ON costs (informational).
    let traced = min_wall(K, || {
        let (_, evs) = trace::capture(run_facade);
        drop(evs);
    });
    eprintln!(
        "trace_overhead: facade(traced)={traced:.4}s vs untraced={facade:.4}s ({:+.2}%)",
        (traced / facade - 1.0) * 100.0
    );
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    group.bench_function("facade_untraced", |b| b.iter(run_facade));
    group.bench_function("direct_sim", |b| b.iter(run_direct));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_trace_overhead
}
criterion_main!(benches);
