//! DAXPY wall-clock benches: abstraction (per back-end) vs native Rust.

use alpaka::{AccKind, Args, BufLayout, Device};
use alpaka_kernels::host::random_vec;
use alpaka_kernels::native::native_daxpy;
use alpaka_kernels::DaxpyKernel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_daxpy(c: &mut Criterion) {
    let n = 1 << 16;
    let x = random_vec(n, 1);
    let y0 = random_vec(n, 2);
    let mut group = c.benchmark_group("daxpy");
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function(BenchmarkId::new("native_rust", n), |b| {
        let mut y = y0.clone();
        b.iter(|| native_daxpy(2.5, &x, &mut y, 1));
    });

    for (label, kind) in [
        ("alpaka_cpu_serial", AccKind::CpuSerial),
        ("alpaka_cpu_blocks", AccKind::CpuBlocks),
    ] {
        let dev = Device::with_workers(kind, 1);
        let xb = dev.alloc_f64(BufLayout::d1(n));
        let yb = dev.alloc_f64(BufLayout::d1(n));
        xb.upload(&x).unwrap();
        yb.upload(&y0).unwrap();
        let wd = dev.suggest_workdiv_1d(n);
        let args = Args::new()
            .buf_f(&xb)
            .buf_f(&yb)
            .scalar_f(2.5)
            .scalar_i(n as i64);
        group.bench_function(BenchmarkId::new(label, n), |b| {
            b.iter(|| dev.launch(&DaxpyKernel, &wd, &args).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_daxpy
}
criterion_main!(benches);
