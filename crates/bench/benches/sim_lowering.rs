//! Engine-tier comparison: interpreter throughput with the tree-walking
//! reference engine, the pre-decoded warp program (`Engine::Lowered`) and
//! the direct-threaded compiled tier (`Engine::Compiled`) on four workload
//! shapes — streaming DAXPY, the 4096-block DGEMM of `sim_throughput`, the
//! barrier-heavy block scan, and the atomic-scatter histogram — at 1
//! interpreter thread, plus the histogram again at 4 threads (the
//! deterministic parallel-atomics path).
//!
//! All three engines are asserted bit-identical (buffers, `LaunchStats`,
//! `TimeBreakdown`) on every workload — and across 1 vs 4 interpreter
//! threads — before anything is timed, so the bench cannot compare
//! different computations. Besides the criterion timings, the bench writes
//! `BENCH_sim.json` at the repo root — blocks/s and instrs/s from the
//! simulator's own `HostPerf` counters for each engine and workload plus
//! the speedups — so the perf trajectory is tracked across PRs. The
//! pre-existing top-level keys (the DGEMM reference/lowered entries and
//! `speedup_blocks_per_sec`) keep their meaning; the compiled tier, the
//! per-workload table, the histogram's `*_t4` entries and its
//! `speedup_parallel` key are additive.
//!
//! `cargo bench --bench sim_lowering -- --test` runs the parity guards only
//! (the CI smoke mode).

use alpaka_core::workdiv::WorkDiv;
use alpaka_kernels::{DaxpyKernel, DgemmNaive, HistogramGlobalExact, ScanBlocks};
use alpaka_kir::{optimize, trace_kernel, Program};
use alpaka_sim::{
    run_kernel_launch_engine, DeviceMem, DeviceSpec, Engine, ExecMode, HostPerf, SimArgs, SimReport,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::io::Write as _;

const BLOCKS: usize = 4096;
const N: usize = 64; // C is BLOCKS x N, A is BLOCKS x N, B is N x N

const DAXPY_N: usize = 1 << 20;
const SCAN_BLOCKS: usize = 512;
const SCAN_BLOCK_THREADS: usize = 64; // each block scans 2 * threads elements

const HIST_BLOCKS: usize = 2048;
const HIST_ELEMS: usize = 128; // samples = blocks * elems, exact fit (no guard)
const HIST_BINS: usize = 64;

/// One benchmarked workload: a lowered-and-optimized program, its work
/// division and device model, and a fresh-memory setup per launch.
struct Workload {
    name: &'static str,
    prog: Program,
    wd: WorkDiv,
    spec: DeviceSpec,
    setup: fn() -> (DeviceMem, SimArgs),
}

fn dgemm_setup() -> (DeviceMem, SimArgs) {
    let mut mem = DeviceMem::new();
    let a = mem.alloc_f(BLOCKS * N);
    let b = mem.alloc_f(N * N);
    let c = mem.alloc_f(BLOCKS * N);
    for i in 0..BLOCKS * N {
        mem.f_mut(a)[i] = ((i * 7 + 3) % 17) as f64 * 0.25;
    }
    for i in 0..N * N {
        mem.f_mut(b)[i] = ((i * 5 + 1) % 13) as f64 - 6.0;
    }
    let args = SimArgs {
        bufs_f: vec![a, b, c],
        bufs_i: vec![],
        params_f: vec![1.0, 0.0],
        params_i: vec![
            BLOCKS as i64,
            N as i64,
            N as i64,
            N as i64,
            N as i64,
            N as i64,
        ],
    };
    (mem, args)
}

fn daxpy_setup() -> (DeviceMem, SimArgs) {
    let n = DAXPY_N;
    let mut mem = DeviceMem::new();
    let x = mem.alloc_f(n);
    let y = mem.alloc_f(n);
    for i in 0..n {
        mem.f_mut(x)[i] = ((i * 11 + 2) % 23) as f64 * 0.5 - 5.0;
        mem.f_mut(y)[i] = 1.0 + i as f64 * 0.25;
    }
    let args = SimArgs {
        bufs_f: vec![x, y],
        bufs_i: vec![],
        params_f: vec![2.5],
        params_i: vec![n as i64],
    };
    (mem, args)
}

fn scan_setup() -> (DeviceMem, SimArgs) {
    let n = SCAN_BLOCKS * 2 * SCAN_BLOCK_THREADS;
    let mut mem = DeviceMem::new();
    let x = mem.alloc_f(n);
    let y = mem.alloc_f(n);
    let sums = mem.alloc_f(SCAN_BLOCKS);
    for i in 0..n {
        mem.f_mut(x)[i] = ((i * 13 + 5) % 17) as f64 * 0.75 - 4.0;
    }
    let args = SimArgs {
        bufs_f: vec![x, y, sums],
        bufs_i: vec![],
        params_f: vec![],
        params_i: vec![n as i64],
    };
    (mem, args)
}

fn histogram_setup() -> (DeviceMem, SimArgs) {
    let n = HIST_BLOCKS * HIST_ELEMS;
    let mut mem = DeviceMem::new();
    let s = mem.alloc_f(n);
    let bins = mem.alloc_i(HIST_BINS);
    for i in 0..n {
        // Deterministic pseudo-random samples spread over [0, 10).
        mem.f_mut(s)[i] = ((i * 37 + 11) % 1000) as f64 * 0.01;
    }
    let args = SimArgs {
        bufs_f: vec![s],
        bufs_i: vec![bins],
        params_f: vec![0.0, 10.0],
        params_i: vec![n as i64, HIST_BINS as i64],
    };
    (mem, args)
}

fn lowered<K: alpaka_core::kernel::Kernel>(k: &K, dim: usize) -> Program {
    let mut prog = trace_kernel(k, dim);
    optimize(&mut prog);
    prog
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "daxpy",
            prog: lowered(&DaxpyKernel, 1),
            wd: WorkDiv::d1(DAXPY_N / 64, 1, 64),
            spec: DeviceSpec::e5_2630v3(),
            setup: daxpy_setup,
        },
        Workload {
            name: "dgemm_naive",
            prog: lowered(&DgemmNaive, 1),
            wd: DgemmNaive::workdiv(BLOCKS, 1),
            spec: DeviceSpec::e5_2630v3(),
            setup: dgemm_setup,
        },
        Workload {
            name: "scan_blocks",
            prog: lowered(
                &ScanBlocks {
                    block: SCAN_BLOCK_THREADS,
                },
                1,
            ),
            wd: WorkDiv::d1(SCAN_BLOCKS, SCAN_BLOCK_THREADS, 1),
            spec: DeviceSpec::k20(),
            setup: scan_setup,
        },
        Workload {
            name: "histogram",
            prog: lowered(&HistogramGlobalExact, 1),
            wd: WorkDiv::d1(HIST_BLOCKS, 1, HIST_ELEMS),
            spec: DeviceSpec::e5_2630v3(),
            setup: histogram_setup,
        },
    ]
}

fn run_threads(w: &Workload, engine: Engine, threads: usize) -> (SimReport, Vec<Vec<u64>>) {
    let (mut mem, args) = (w.setup)();
    let rep = run_kernel_launch_engine(
        &w.spec,
        &mut mem,
        &w.prog,
        &w.wd,
        &args,
        ExecMode::Full,
        threads,
        engine,
    )
    .unwrap();
    let mut bits: Vec<Vec<u64>> = args
        .bufs_f
        .iter()
        .map(|b| mem.f(*b).iter().map(|v| v.to_bits()).collect())
        .collect();
    bits.extend(
        args.bufs_i
            .iter()
            .map(|b| mem.i(*b).iter().map(|v| *v as u64).collect::<Vec<u64>>()),
    );
    (rep, bits)
}

fn run(w: &Workload, engine: Engine) -> (SimReport, Vec<Vec<u64>>) {
    run_threads(w, engine, 1)
}

/// Parity guard: all three engines bit-identical on `w` — at 1 and 4
/// interpreter threads — before any timing.
fn assert_engine_parity(w: &Workload) {
    let (reference, ref_bits) = run(w, Engine::Reference);
    for engine in [Engine::Reference, Engine::Lowered, Engine::Compiled] {
        for threads in [1usize, 4] {
            let (rep, bits) = run_threads(w, engine, threads);
            assert_eq!(
                reference.stats, rep.stats,
                "{engine:?}@{threads} diverged from reference on {} (stats)",
                w.name
            );
            assert_eq!(
                reference.time, rep.time,
                "{engine:?}@{threads} diverged from reference on {} (time model)",
                w.name
            );
            assert_eq!(
                ref_bits, bits,
                "{engine:?}@{threads} diverged from reference on {} (buffers)",
                w.name
            );
        }
    }
}

/// Median-by-throughput `HostPerf` per engine over `k` fresh launches,
/// with the engines interleaved round-robin so clock/cache drift across
/// the measurement window biases no engine (daxpy's compiled tier
/// dispatches to the lowered engine, so any systematic gap there would be
/// pure measurement order).
fn host_perf_all(w: &Workload, threads: usize, k: usize) -> [HostPerf; 3] {
    let engines = [Engine::Reference, Engine::Lowered, Engine::Compiled];
    let mut perfs: [Vec<HostPerf>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..k {
        for (e, p) in engines.iter().zip(perfs.iter_mut()) {
            p.push(run_threads(w, *e, threads).0.host);
        }
    }
    perfs.map(|mut v| {
        v.sort_by(|a, b| a.blocks_per_sec.partial_cmp(&b.blocks_per_sec).unwrap());
        v[v.len() / 2]
    })
}

fn json_entry(p: &HostPerf) -> String {
    format!(
        "{{\"wall_s\": {:.6}, \"blocks_per_sec\": {:.1}, \"instrs_per_sec\": {:.1}, \"workers\": {}}}",
        p.wall_s, p.blocks_per_sec, p.instrs_per_sec, p.workers
    )
}

fn bench_sim_lowering(c: &mut Criterion) {
    let all = workloads();
    for w in &all {
        assert_engine_parity(w);
    }

    if std::env::args().any(|a| a == "--test") {
        eprintln!("sim_lowering: --test smoke mode, engine parity guards passed");
        return;
    }

    let dgemm = &all[1];
    assert_eq!(dgemm.name, "dgemm_naive");
    let mut group = c.benchmark_group("sim_dgemm_lowering_4096_blocks");
    group.throughput(Throughput::Elements(BLOCKS as u64));
    group.sample_size(10);
    for (engine, label) in [
        (Engine::Reference, "reference"),
        (Engine::Lowered, "lowered"),
        (Engine::Compiled, "compiled"),
    ] {
        group.bench_function(BenchmarkId::new("engine", label), |b| {
            b.iter(|| run(dgemm, engine));
        });
    }
    group.finish();

    // One-shot host-perf summary from the simulator's own counters for
    // every (workload, engine) pair, and the machine-readable trajectory
    // file at the repo root.
    let mut table = String::new();
    let mut dgemm_line = String::new();
    for w in &all {
        let [rf, lo, co] = host_perf_all(w, 1, 5);
        let sp_low = lo.blocks_per_sec / rf.blocks_per_sec;
        let sp_comp = co.blocks_per_sec / lo.blocks_per_sec;
        eprintln!(
            "sim_lowering[{}]: reference={:.0} lowered={:.0} compiled={:.0} blocks/s \
             (lowered/ref {sp_low:.2}x, compiled/lowered {sp_comp:.2}x)",
            w.name, rf.blocks_per_sec, lo.blocks_per_sec, co.blocks_per_sec
        );
        if !table.is_empty() {
            table.push_str(",\n");
        }
        // The atomic-scatter workload is the one whose blocks can now run
        // in parallel: record all three engines at 4 interpreter threads
        // too, and the compiled tier's 4-vs-1-thread scaling.
        let parallel = if w.name == "histogram" {
            let [rf4, lo4, co4] = host_perf_all(w, 4, 5);
            let sp_par = co4.blocks_per_sec / co.blocks_per_sec;
            eprintln!(
                "sim_lowering[{}@4t]: reference={:.0} lowered={:.0} compiled={:.0} blocks/s \
                 (compiled 4t/1t {sp_par:.2}x)",
                w.name, rf4.blocks_per_sec, lo4.blocks_per_sec, co4.blocks_per_sec
            );
            format!(
                ",\n      \"reference_t4\": {},\n      \"lowered_t4\": {},\n      \
                 \"compiled_t4\": {},\n      \"speedup_parallel\": {sp_par:.3}",
                json_entry(&rf4),
                json_entry(&lo4),
                json_entry(&co4),
            )
        } else {
            String::new()
        };
        table.push_str(&format!(
            "    \"{}\": {{\n      \"reference\": {},\n      \"lowered\": {},\n      \
             \"compiled\": {},\n      \"speedup_lowered_vs_reference\": {sp_low:.3},\n      \
             \"speedup_compiled_vs_lowered\": {sp_comp:.3}{parallel}\n    }}",
            w.name,
            json_entry(&rf),
            json_entry(&lo),
            json_entry(&co),
        ));
        if w.name == "dgemm_naive" {
            dgemm_line = format!(
                "  \"reference\": {},\n  \"lowered\": {},\n  \"compiled\": {},\n  \
                 \"speedup_blocks_per_sec\": {sp_low:.3},\n  \
                 \"speedup_compiled_vs_lowered\": {sp_comp:.3},\n",
                json_entry(&rf),
                json_entry(&lo),
                json_entry(&co),
            );
        }
    }

    // Parallel speedups are wall-clock: on a single-CPU host the worker
    // team timeslices one core and `speedup_parallel` sits near 1.0 even
    // though 4 workers ran (the `workers` fields record that). Record the
    // host's CPU count so the number is interpretable.
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_sim.json");
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"workload\": \"dgemm_naive\",\n  \"blocks\": {BLOCKS},\n  \
         \"n\": {N},\n  \
         \"device\": \"e5_2630v3\",\n  \"threads\": 1,\n  \"host_cpus\": {host_cpus},\n{dgemm_line}  \
         \"workloads\": {{\n{table}\n  }}\n}}\n",
    );
    // The file is diffed and spliced by other benches; never write a body
    // the validator rejects.
    alpaka_trace::validate_json(&json).expect("sim_lowering produced invalid BENCH_sim.json");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("sim_lowering: wrote {path}"),
        Err(e) => eprintln!("sim_lowering: could not write {path}: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim_lowering
}
criterion_main!(benches);
