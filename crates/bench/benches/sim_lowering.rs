//! Lowering on/off comparison: interpreter throughput with the pre-decoded
//! warp program (`Engine::Lowered`, the default) vs. the tree-walking
//! reference engine (`Engine::Reference`) on the same 4096-block DGEMM
//! workload as `sim_throughput`, at 1 interpreter thread.
//!
//! Both engines are asserted bit-identical (buffers, `LaunchStats`,
//! `TimeBreakdown`) before anything is timed, so the bench cannot compare
//! different computations. Besides the criterion timings, the bench writes
//! `BENCH_sim.json` at the repo root — blocks/s and instrs/s from the
//! simulator's own `HostPerf` counters for each engine plus the speedup —
//! so the perf trajectory is tracked from this PR on.
//!
//! `cargo bench --bench sim_lowering -- --test` runs the parity guard only
//! (the CI smoke mode).

use alpaka_kernels::DgemmNaive;
use alpaka_kir::{optimize, trace_kernel, Program};
use alpaka_sim::{
    run_kernel_launch_engine, DeviceMem, DeviceSpec, Engine, ExecMode, SimArgs, SimReport,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::io::Write as _;

const BLOCKS: usize = 4096;
const N: usize = 64; // C is BLOCKS x N, A is BLOCKS x N, B is N x N

fn setup() -> (DeviceMem, SimArgs) {
    let mut mem = DeviceMem::new();
    let a = mem.alloc_f(BLOCKS * N);
    let b = mem.alloc_f(N * N);
    let c = mem.alloc_f(BLOCKS * N);
    for i in 0..BLOCKS * N {
        mem.f_mut(a)[i] = ((i * 7 + 3) % 17) as f64 * 0.25;
    }
    for i in 0..N * N {
        mem.f_mut(b)[i] = ((i * 5 + 1) % 13) as f64 - 6.0;
    }
    let args = SimArgs {
        bufs_f: vec![a, b, c],
        bufs_i: vec![],
        params_f: vec![1.0, 0.0],
        params_i: vec![
            BLOCKS as i64,
            N as i64,
            N as i64,
            N as i64,
            N as i64,
            N as i64,
        ],
    };
    (mem, args)
}

fn program() -> Program {
    let mut prog = trace_kernel(&DgemmNaive, 1);
    optimize(&mut prog);
    prog
}

fn run(prog: &Program, engine: Engine) -> (SimReport, Vec<u64>) {
    let wd = DgemmNaive::workdiv(BLOCKS, 1);
    let (mut mem, args) = setup();
    let rep = run_kernel_launch_engine(
        &DeviceSpec::e5_2630v3(),
        &mut mem,
        prog,
        &wd,
        &args,
        ExecMode::Full,
        1,
        engine,
    )
    .unwrap();
    let c = args.bufs_f[2];
    let bits = mem.f(c).iter().map(|v| v.to_bits()).collect();
    (rep, bits)
}

/// Median-by-throughput `HostPerf` over `k` fresh launches.
fn host_perf(prog: &Program, engine: Engine, k: usize) -> alpaka_sim::HostPerf {
    let mut perfs: Vec<alpaka_sim::HostPerf> = (0..k).map(|_| run(prog, engine).0.host).collect();
    perfs.sort_by(|a, b| a.blocks_per_sec.partial_cmp(&b.blocks_per_sec).unwrap());
    perfs[perfs.len() / 2]
}

fn json_entry(p: &alpaka_sim::HostPerf) -> String {
    format!(
        "{{\"wall_s\": {:.6}, \"blocks_per_sec\": {:.1}, \"instrs_per_sec\": {:.1}, \"workers\": {}}}",
        p.wall_s, p.blocks_per_sec, p.instrs_per_sec, p.workers
    )
}

fn bench_sim_lowering(c: &mut Criterion) {
    let prog = program();

    // Guard: the lowered engine must be bit-identical to the reference.
    let (reference, ref_bits) = run(&prog, Engine::Reference);
    let (lowered, low_bits) = run(&prog, Engine::Lowered);
    assert_eq!(
        reference.stats, lowered.stats,
        "lowered run diverged from reference (stats)"
    );
    assert_eq!(
        reference.time, lowered.time,
        "lowered run diverged from reference (time model)"
    );
    assert_eq!(
        ref_bits, low_bits,
        "lowered run diverged from reference (buffers)"
    );
    assert_eq!(lowered.stats.blocks as usize, BLOCKS);

    if std::env::args().any(|a| a == "--test") {
        eprintln!("sim_lowering: --test smoke mode, parity guard passed");
        return;
    }

    let mut group = c.benchmark_group("sim_dgemm_lowering_4096_blocks");
    group.throughput(Throughput::Elements(BLOCKS as u64));
    group.sample_size(10);
    for (engine, label) in [
        (Engine::Reference, "reference"),
        (Engine::Lowered, "lowered"),
    ] {
        group.bench_function(BenchmarkId::new("engine", label), |b| {
            b.iter(|| run(&prog, engine));
        });
    }
    group.finish();

    // One-shot host-perf summary from the simulator's own counters, and the
    // machine-readable trajectory file at the repo root.
    let ref_perf = host_perf(&prog, Engine::Reference, 5);
    let low_perf = host_perf(&prog, Engine::Lowered, 5);
    let speedup = low_perf.blocks_per_sec / ref_perf.blocks_per_sec;
    eprintln!(
        "sim_lowering: reference blocks/s={:.0} lowered blocks/s={:.0} speedup={speedup:.2}x",
        ref_perf.blocks_per_sec, low_perf.blocks_per_sec
    );

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = format!("{root}/BENCH_sim.json");
    let json = format!(
        "{{\n  \"workload\": \"dgemm_naive\",\n  \"blocks\": {BLOCKS},\n  \"n\": {N},\n  \
         \"device\": \"e5_2630v3\",\n  \"threads\": 1,\n  \
         \"reference\": {},\n  \"lowered\": {},\n  \"speedup_blocks_per_sec\": {speedup:.3}\n}}\n",
        json_entry(&ref_perf),
        json_entry(&low_perf),
    );
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => eprintln!("sim_lowering: wrote {path}"),
        Err(e) => eprintln!("sim_lowering: could not write {path}: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim_lowering
}
criterion_main!(benches);
