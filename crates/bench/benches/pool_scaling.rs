//! Multi-device pool scaling: host-side throughput of one sharded DAXPY
//! launch at pool sizes 1, 2 and 4 — fault-free and with one injected,
//! recoverable fault (the 1-fault recovery overhead).
//!
//! Before timing anything the bench asserts the pool's contract: every
//! (pool size, fault) configuration must reproduce the serial single-device
//! result bit-for-bit. Timings are wall-clock per pooled launch (the
//! simulator runs members sequentially, so this measures the pool driver's
//! overhead — sharded upload/launch/download round-trips — not real device
//! parallelism; the simulated makespan is what models the parallel win).
//!
//! Writes a `pool_scaling` entry into `BENCH_sim.json` at the repo root
//! (additive: the pre-existing keys keep their meaning).
//!
//! `cargo bench --bench pool_scaling -- --test` runs the parity guards
//! only (the CI smoke mode).

use alpaka::{
    AccKind, BufLayout, DevicePool, FaultPlan, LaunchSpec, PoolOutcome, WorkDiv, WorkDivSpec,
};
use alpaka_kernels::DaxpyKernel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::io::Write as _;
use std::time::Instant;

const N: usize = 1 << 18;
const BLOCKS: usize = N / 64;
const SHARDS: usize = 8;

fn spec() -> LaunchSpec<DaxpyKernel> {
    let x: Vec<f64> = (0..N)
        .map(|i| ((i * 11 + 2) % 23) as f64 * 0.5 - 5.0)
        .collect();
    let y: Vec<f64> = (0..N).map(|i| 1.0 + (i % 97) as f64 * 0.25).collect();
    LaunchSpec::new(DaxpyKernel, WorkDivSpec::Fixed(WorkDiv::d1(BLOCKS, 1, 64)))
        .arg_f(BufLayout::d1(N), x)
        .arg_f(BufLayout::d1(N), y)
        .scalar_f(2.5)
        .scalar_i(N as i64)
}

/// A recoverable 1-fault plan for `pool_size`: a sticky loss that migrates
/// when a survivor exists, a transient OOM (absorbed by the in-place
/// retry) when the pool has a single member.
fn one_fault(pool_size: usize) -> FaultPlan {
    if pool_size > 1 {
        FaultPlan::quiet(42).with_lost_at_launch(1)
    } else {
        FaultPlan::quiet(42).with_oom_at(0)
    }
}

fn run_pool(s: &LaunchSpec<DaxpyKernel>, pool_size: usize, fault: bool) -> PoolOutcome {
    let mut pool =
        DevicePool::new_sim_with_workers(AccKind::sim_e5_2630v3(), pool_size, 1).expect("sim pool");
    pool.clear_faults();
    if fault {
        pool.set_member_faults(0, Some(one_fault(pool_size)));
    }
    pool.launch(s, SHARDS).expect("recoverable pool launch")
}

fn bits(out: &PoolOutcome) -> Vec<Vec<u64>> {
    out.bufs_f
        .iter()
        .map(|b| b.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// Parity guard: every configuration reproduces the 1-member 1-shard
/// serial result bit-for-bit, fault or no fault.
fn assert_pool_parity(s: &LaunchSpec<DaxpyKernel>) {
    let serial = run_pool(s, 1, false);
    let want = bits(&serial);
    for pool_size in [1usize, 2, 4] {
        for fault in [false, true] {
            let out = run_pool(s, pool_size, fault);
            assert_eq!(
                bits(&out),
                want,
                "pool {pool_size} fault={fault} diverged from serial"
            );
            assert_eq!(
                out.stats, serial.stats,
                "pool {pool_size} fault={fault} stats diverged"
            );
            if fault && pool_size > 1 {
                assert!(!out.migrations.is_empty(), "loss did not migrate");
            }
        }
    }
}

/// Median wall seconds of `k` fresh pooled launches.
fn wall_s(s: &LaunchSpec<DaxpyKernel>, pool_size: usize, fault: bool, k: usize) -> f64 {
    let mut samples: Vec<f64> = (0..k)
        .map(|_| {
            let t0 = Instant::now();
            let out = run_pool(s, pool_size, fault);
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(out);
            dt
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn splice_bench_json(entry: &str) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    let body = match std::fs::read_to_string(path) {
        Ok(prev) => {
            // Drop an existing pool_scaling entry (idempotent re-runs),
            // then splice before the closing brace.
            let prev = match prev.find(",\n  \"pool_scaling\"") {
                Some(i) => format!("{}\n}}\n", &prev[..i]),
                None => prev,
            };
            let trimmed = prev.trim_end().trim_end_matches('}').trim_end();
            format!("{trimmed},\n  \"pool_scaling\": {entry}\n}}\n")
        }
        Err(_) => format!("{{\n  \"schema_version\": 1,\n  \"pool_scaling\": {entry}\n}}\n"),
    };
    // Splicing must never corrupt the trajectory file: the result has to
    // stay valid JSON and keep its schema_version marker.
    alpaka_trace::validate_json(&body)
        .expect("pool_scaling splice produced invalid BENCH_sim.json");
    assert!(
        body.contains("\"schema_version\": 1"),
        "pool_scaling splice dropped schema_version from BENCH_sim.json"
    );
    let mut f = std::fs::File::create(path).expect("write BENCH_sim.json");
    f.write_all(body.as_bytes()).expect("write BENCH_sim.json");
}

fn bench_pool_scaling(c: &mut Criterion) {
    let s = spec();
    assert_pool_parity(&s);

    if std::env::args().any(|a| a == "--test") {
        eprintln!("pool_scaling: --test smoke mode, pool parity guards passed");
        return;
    }

    let mut group = c.benchmark_group("pool_daxpy_8_shards");
    group.throughput(Throughput::Elements(BLOCKS as u64));
    group.sample_size(10);
    for pool_size in [1usize, 2, 4] {
        for (fault, label) in [(false, "clean"), (true, "one_fault")] {
            group.bench_function(BenchmarkId::new(label, pool_size), |b| {
                b.iter(|| run_pool(&s, pool_size, fault));
            });
        }
    }
    group.finish();

    // Machine-readable trajectory entry: blocks/s per pool size, clean vs
    // one recovered fault.
    let mut parts: Vec<String> = Vec::new();
    for pool_size in [1usize, 2, 4] {
        let clean = wall_s(&s, pool_size, false, 5);
        let faulted = wall_s(&s, pool_size, true, 5);
        let bps = BLOCKS as f64 / clean;
        let bps_f = BLOCKS as f64 / faulted;
        eprintln!(
            "pool_scaling[p{pool_size}]: clean={bps:.0} blocks/s, one_fault={bps_f:.0} blocks/s \
             (recovery overhead {:.2}x)",
            clean.max(f64::MIN_POSITIVE) / faulted.max(f64::MIN_POSITIVE)
        );
        parts.push(format!(
            "\"p{pool_size}\": {{\"wall_s\": {clean:.6}, \"blocks_per_sec\": {bps:.1}}}, \
             \"p{pool_size}_fault\": {{\"wall_s\": {faulted:.6}, \"blocks_per_sec\": {bps_f:.1}}}"
        ));
    }
    splice_bench_json(&format!(
        "{{\"blocks\": {BLOCKS}, \"shards\": {SHARDS}, {}}}",
        parts.join(", ")
    ));
    eprintln!("pool_scaling: wrote pool_scaling entry to BENCH_sim.json");
}

criterion_group!(benches, bench_pool_scaling);
criterion_main!(benches);
