//! DGEMM zero-overhead bench (the Fig. 5 CPU comparison under criterion):
//! the naive Alpaka kernel on the block-pool back-end vs the same
//! algorithm as plain multithreaded Rust.

use alpaka::{AccKind, Args, BufLayout, Device};
use alpaka_bench::GemmData;
use alpaka_kernels::native::native_dgemm;
use alpaka_kernels::DgemmNaive;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_dgemm(c: &mut Criterion) {
    for n in [64usize, 128] {
        let data = GemmData::new(n);
        let flops = 2 * n * n * n;
        let mut group = c.benchmark_group(format!("dgemm_n{n}"));
        group.throughput(Throughput::Elements(flops as u64));

        group.bench_function(BenchmarkId::new("native_rust", n), |b| {
            let mut cm = data.c.clone();
            b.iter(|| native_dgemm(n, n, n, 1.0, &data.a, &data.b, 0.0, &mut cm, 1));
        });

        let dev = Device::with_workers(AccKind::CpuBlocks, 1);
        let ab = dev.alloc_f64(BufLayout::d2(n, n, 8));
        let bb = dev.alloc_f64(BufLayout::d2(n, n, 8));
        let cb = dev.alloc_f64(BufLayout::d2(n, n, 8));
        ab.upload(&data.a).unwrap();
        bb.upload(&data.b).unwrap();
        cb.upload(&data.c).unwrap();
        let wd = DgemmNaive::workdiv(n, 4);
        let args = Args::new()
            .buf_f(&ab)
            .buf_f(&bb)
            .buf_f(&cb)
            .scalar_f(1.0)
            .scalar_f(0.0)
            .scalar_i(n as i64)
            .scalar_i(n as i64)
            .scalar_i(n as i64)
            .scalar_i(ab.layout().pitch as i64)
            .scalar_i(bb.layout().pitch as i64)
            .scalar_i(cb.layout().pitch as i64);
        group.bench_function(BenchmarkId::new("alpaka_cpu_blocks", n), |b| {
            b.iter(|| dev.launch(&DgemmNaive, &wd, &args).unwrap());
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dgemm
}
criterion_main!(benches);
