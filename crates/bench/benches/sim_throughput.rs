//! Host-side simulator throughput: interpreted blocks per second, serial
//! vs parallel block interpretation.
//!
//! Workload: a 4096-block naive DGEMM (one 64-wide output row per block)
//! on the simulated E5-2630v3 — a `PerSm`-cache device, so the parallel
//! path is eligible. The serial/parallel reports are asserted bit-identical
//! before timing anything, so the bench cannot silently compare different
//! computations. On a single-core host the parallel numbers will not beat
//! serial; the point of the bench is to measure, not to assume.

use alpaka_kernels::DgemmNaive;
use alpaka_kir::{optimize, trace_kernel};
use alpaka_sim::{run_kernel_launch_threads, DeviceMem, DeviceSpec, ExecMode, SimArgs, SimReport};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const BLOCKS: usize = 4096;
const N: usize = 64; // C is BLOCKS x N, A is BLOCKS x N, B is N x N

fn setup() -> (DeviceMem, SimArgs) {
    let mut mem = DeviceMem::new();
    let a = mem.alloc_f(BLOCKS * N);
    let b = mem.alloc_f(N * N);
    let c = mem.alloc_f(BLOCKS * N);
    for i in 0..BLOCKS * N {
        mem.f_mut(a)[i] = ((i * 7 + 3) % 17) as f64 * 0.25;
    }
    for i in 0..N * N {
        mem.f_mut(b)[i] = ((i * 5 + 1) % 13) as f64 - 6.0;
    }
    let args = SimArgs {
        bufs_f: vec![a, b, c],
        bufs_i: vec![],
        params_f: vec![1.0, 0.0],
        params_i: vec![
            BLOCKS as i64,
            N as i64,
            N as i64,
            N as i64,
            N as i64,
            N as i64,
        ],
    };
    (mem, args)
}

fn run(threads: usize) -> SimReport {
    let mut prog = trace_kernel(&DgemmNaive, 1);
    optimize(&mut prog);
    let wd = DgemmNaive::workdiv(BLOCKS, 1);
    let (mut mem, args) = setup();
    run_kernel_launch_threads(
        &DeviceSpec::e5_2630v3(),
        &mut mem,
        &prog,
        &wd,
        &args,
        ExecMode::Full,
        threads,
    )
    .unwrap()
}

fn bench_sim_throughput(c: &mut Criterion) {
    // Guard: parallel interpretation must be bit-identical to serial.
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(
        serial.stats, parallel.stats,
        "parallel run diverged from serial"
    );
    assert_eq!(serial.time, parallel.time);
    assert_eq!(serial.stats.blocks as usize, BLOCKS);

    if std::env::args().any(|a| a == "--test") {
        eprintln!("sim_throughput: --test smoke mode, determinism guard passed");
        return;
    }

    let mut group = c.benchmark_group("sim_dgemm_4096_blocks");
    group.throughput(Throughput::Elements(BLOCKS as u64));
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| run(threads));
        });
    }
    group.finish();

    // One-shot host-perf summary from the simulator's own counters.
    for threads in [1usize, 8] {
        let r = run(threads);
        eprintln!(
            "sim_throughput: threads={threads} workers={} blocks/s={:.0} instrs/s={:.0}",
            r.host.workers, r.host.blocks_per_sec, r.host.instrs_per_sec
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim_throughput
}
criterion_main!(benches);
