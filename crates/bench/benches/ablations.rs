//! Wall-clock ablations on the native CPU back-ends:
//! * tiling vs naive DGEMM (cache blocking effect),
//! * block-synchronization strategy cost (threads vs block-team vs fibers)
//!   on a barrier-heavy reduction.

use alpaka::{AccKind, Args, BufLayout, Device, WorkDiv};
use alpaka_bench::GemmData;
use alpaka_kernels::host::random_vec;
use alpaka_kernels::{DgemmNaive, DgemmTiled, ReduceBlocks};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_tiling(c: &mut Criterion) {
    let n = 192usize;
    let data = GemmData::new(n);
    let dev = Device::with_workers(AccKind::CpuBlocks, 1);
    let mut group = c.benchmark_group("cpu_tiling_ablation");
    let setup = |dev: &Device| {
        let ab = dev.alloc_f64(BufLayout::d2(n, n, 8));
        let bb = dev.alloc_f64(BufLayout::d2(n, n, 8));
        let cb = dev.alloc_f64(BufLayout::d2(n, n, 8));
        ab.upload(&data.a).unwrap();
        bb.upload(&data.b).unwrap();
        cb.upload(&data.c).unwrap();
        let args = Args::new()
            .buf_f(&ab)
            .buf_f(&bb)
            .buf_f(&cb)
            .scalar_f(1.0)
            .scalar_f(0.0)
            .scalar_i(n as i64)
            .scalar_i(n as i64)
            .scalar_i(n as i64)
            .scalar_i(ab.layout().pitch as i64)
            .scalar_i(bb.layout().pitch as i64)
            .scalar_i(cb.layout().pitch as i64);
        args
    };
    let args = setup(&dev);
    group.bench_function(BenchmarkId::new("naive", n), |b| {
        let wd = DgemmNaive::workdiv(n, 4);
        b.iter(|| dev.launch(&DgemmNaive, &wd, &args).unwrap());
    });
    for e in [16usize, 32, 64] {
        let kern = DgemmTiled { t: 1, e };
        let wd = kern.workdiv(n, n);
        group.bench_function(BenchmarkId::new("tiled", e * e), |b| {
            b.iter(|| dev.launch(&kern, &wd, &args).unwrap());
        });
    }
    group.finish();
}

fn bench_sync_strategies(c: &mut Criterion) {
    let n = 4096usize;
    let data = random_vec(n, 9);
    let block = 64usize;
    let blocks = n / block;
    let mut group = c.benchmark_group("block_sync_ablation");
    for (label, kind) in [
        ("threads_per_block", AccKind::CpuThreads),
        ("thread_team", AccKind::CpuBlockThreads),
        ("fibers", AccKind::CpuFibers),
    ] {
        let dev = Device::with_workers(kind, 2);
        let input = dev.alloc_f64(BufLayout::d1(n));
        let out = dev.alloc_f64(BufLayout::d1(blocks));
        input.upload(&data).unwrap();
        let wd = WorkDiv::d1(blocks, block, 1);
        let args = Args::new().buf_f(&input).buf_f(&out).scalar_i(n as i64);
        group.bench_function(BenchmarkId::new(label, block), |b| {
            b.iter(|| dev.launch(&ReduceBlocks { block }, &wd, &args).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tiling, bench_sync_strategies
}
criterion_main!(benches);
