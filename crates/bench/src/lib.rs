//! Shared harness code for the `repro-*` binaries and criterion benches:
//! workload setup, timing wrappers, GFLOPS math, and the "generic
//! Alpaka-style" DGEMM used by the zero-overhead comparison.

use alpaka::{AccKind, Args, BufLayout, Device, LaunchMode, TimedRun, WorkDiv};
use alpaka_core::kernel::Kernel;
use alpaka_core::ops::{KernelOps, KernelOpsExt};
use alpaka_kernels::host::random_matrix;

/// Flops of one `C <- alpha*A*B + beta*C` (the paper counts 2nk per output).
pub fn gemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Achieved GFLOPS.
pub fn gflops(flops: f64, seconds: f64) -> f64 {
    flops / seconds / 1e9
}

/// Dense square-GEMM inputs (paper: random values in `[0, 10]`).
pub struct GemmData {
    pub n: usize,
    pub a: Vec<f64>,
    pub b: Vec<f64>,
    pub c: Vec<f64>,
}

impl GemmData {
    pub fn new(n: usize) -> Self {
        GemmData {
            n,
            a: random_matrix(n, n, 100),
            b: random_matrix(n, n, 101),
            c: random_matrix(n, n, 102),
        }
    }
}

/// Upload fresh GEMM buffers to `dev` and time one launch of `kernel`.
/// Returns the timing and the resulting dense C (empty when sampled).
pub fn time_gemm<K: Kernel + Clone + Send + 'static>(
    dev: &Device,
    kernel: &K,
    wd: &WorkDiv,
    data: &GemmData,
    mode: LaunchMode,
) -> (TimedRun, Vec<f64>) {
    let n = data.n;
    let a = dev.alloc_f64(BufLayout::d2(n, n, 8));
    let b = dev.alloc_f64(BufLayout::d2(n, n, 8));
    let c = dev.alloc_f64(BufLayout::d2(n, n, 8));
    a.upload(&data.a).unwrap();
    b.upload(&data.b).unwrap();
    c.upload(&data.c).unwrap();
    let args = Args::new()
        .buf_f(&a)
        .buf_f(&b)
        .buf_f(&c)
        .scalar_f(1.0)
        .scalar_f(0.0)
        .scalar_i(n as i64)
        .scalar_i(n as i64)
        .scalar_i(n as i64)
        .scalar_i(a.layout().pitch as i64)
        .scalar_i(b.layout().pitch as i64)
        .scalar_i(c.layout().pitch as i64);
    let timed = alpaka::time_launch(dev, kernel, wd, &args, mode)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name(), dev.name()));
    let result = if matches!(mode, LaunchMode::Exact) {
        c.download()
    } else {
        Vec::new()
    };
    (timed, result)
}

/// Set up GEMM buffers once and return the median launch-only time over
/// `reps` repetitions (beta = 0, so repeated launches are idempotent),
/// plus the final dense C.
pub fn bench_gemm<K: Kernel + Clone + Send + 'static>(
    dev: &Device,
    kernel: &K,
    wd: &WorkDiv,
    data: &GemmData,
    reps: usize,
) -> (f64, Vec<f64>) {
    let n = data.n;
    let a = dev.alloc_f64(BufLayout::d2(n, n, 8));
    let b = dev.alloc_f64(BufLayout::d2(n, n, 8));
    let c = dev.alloc_f64(BufLayout::d2(n, n, 8));
    a.upload(&data.a).unwrap();
    b.upload(&data.b).unwrap();
    c.upload(&data.c).unwrap();
    let args = Args::new()
        .buf_f(&a)
        .buf_f(&b)
        .buf_f(&c)
        .scalar_f(1.0)
        .scalar_f(0.0)
        .scalar_i(n as i64)
        .scalar_i(n as i64)
        .scalar_i(n as i64)
        .scalar_i(a.layout().pitch as i64)
        .scalar_i(b.layout().pitch as i64)
        .scalar_i(c.layout().pitch as i64);
    // Warm-up launch.
    alpaka::time_launch(dev, kernel, wd, &args, LaunchMode::Exact).unwrap();
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            alpaka::time_launch(dev, kernel, wd, &args, LaunchMode::Exact)
                .unwrap()
                .time_s
        })
        .collect();
    times.sort_by(|x, y| x.partial_cmp(y).unwrap());
    (times[times.len() / 2], c.download())
}

/// Median wall time of `reps` runs of `f` (seconds).
pub fn median_wall(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|x, y| x.partial_cmp(y).unwrap());
    times[times.len() / 2]
}

/// The *generic Alpaka-style* CUDA-like tiled DGEMM: identical algorithm to
/// `alpaka_kernels::DgemmTiledCuda`, but written the way a portable Alpaka
/// kernel is — indices from the abstraction-model queries
/// (`global_thread_idx`, `block_thread_extent`) and an element loop around
/// the per-thread work. The zero-overhead experiment (Fig. 5) compares this
/// against the hand-written native-style kernel after compilation.
#[derive(Debug, Clone, Copy)]
pub struct DgemmTiledCudaGeneric {
    pub ts: usize,
}

impl Kernel for DgemmTiledCudaGeneric {
    fn name(&self) -> &str {
        "dgemm_tiled_cuda_generic"
    }

    #[allow(clippy::too_many_lines)]
    fn run<O: KernelOps>(&self, o: &mut O) {
        let a = o.buf_f(0);
        let b = o.buf_f(1);
        let c = o.buf_f(2);
        let alpha = o.param_f(0);
        let beta = o.param_f(1);
        let m = o.param_i(0);
        let n = o.param_i(1);
        let k = o.param_i(2);
        let lda = o.param_i(3);
        let ldb = o.param_i(4);
        let ldc = o.param_i(5);
        let sha = o.shared_f(self.ts * self.ts);
        let shb = o.shared_f(self.ts * self.ts);
        // Alpaka style: everything from the hierarchy queries; the element
        // loops have extent one on the GPU mapping and vanish after
        // specialization — nvcc's job, done here by the alpaka-kir passes.
        let bd_y = o.block_thread_extent(0);
        let bd_x = o.block_thread_extent(1);
        let ty = o.thread_idx(0);
        let tx = o.thread_idx(1);
        let row_t = o.global_thread_idx(0);
        let col_t = o.global_thread_idx(1);
        let vy = o.thread_elem_extent(0);
        let vx = o.thread_elem_extent(1);
        let row_base = o.mul_i(row_t, vy);
        let col_base = o.mul_i(col_t, vx);
        o.for_elements(0, |o, ey| {
            let row = o.add_i(row_base, ey);
            o.for_elements(1, |o, ex| {
                let col = o.add_i(col_base, ex);
                let zf = o.lit_f(0.0);
                let one = o.lit_i(1);
                let kt = o.sub_i(bd_x, one);
                let kp = o.add_i(k, kt);
                let ntiles = o.div_i(kp, bd_x);
                let zero = o.lit_i(0);
                let sh_idx = {
                    let t = o.mul_i(ty, bd_x);
                    o.add_i(t, tx)
                };
                let sum = o.fold_range_f(zero, ntiles, zf, |o, t, acc_t| {
                    let koff = o.mul_i(t, bd_x);
                    let a_col = o.add_i(koff, tx);
                    let zf = o.lit_f(0.0);
                    let tmp_a = o.var_f(zf);
                    let rm = o.lt_i(row, m);
                    let ck = o.lt_i(a_col, k);
                    let ok = o.and_b(rm, ck);
                    o.if_(ok, |o| {
                        let off = o.mul_i(row, lda);
                        let ai = o.add_i(off, a_col);
                        let av = o.ld_gf(a, ai);
                        o.vset_f(tmp_a, av);
                    });
                    let av = o.vget_f(tmp_a);
                    o.st_sf(sha, sh_idx, av);
                    let b_row = o.add_i(koff, ty);
                    let zf2 = o.lit_f(0.0);
                    let tmp_b = o.var_f(zf2);
                    let rk = o.lt_i(b_row, k);
                    let cn = o.lt_i(col, n);
                    let ok2 = o.and_b(rk, cn);
                    o.if_(ok2, |o| {
                        let off = o.mul_i(b_row, ldb);
                        let bi = o.add_i(off, col);
                        let bv = o.ld_gf(b, bi);
                        o.vset_f(tmp_b, bv);
                    });
                    let bv = o.vget_f(tmp_b);
                    o.st_sf(shb, sh_idx, bv);
                    o.sync_block_threads();
                    let zero2 = o.lit_i(0);
                    let acc_next = o.fold_range_f(zero2, bd_y, acc_t, |o, p, acc| {
                        let arow = o.mul_i(ty, bd_x);
                        let ai = o.add_i(arow, p);
                        let av = o.ld_sf(sha, ai);
                        let brow = o.mul_i(p, bd_x);
                        let bi = o.add_i(brow, tx);
                        let bv = o.ld_sf(shb, bi);
                        o.fma_f(av, bv, acc)
                    });
                    o.sync_block_threads();
                    acc_next
                });
                let rm = o.lt_i(row, m);
                let cn = o.lt_i(col, n);
                let ok = o.and_b(rm, cn);
                o.if_(ok, |o| {
                    let off = o.mul_i(row, ldc);
                    let ci = o.add_i(off, col);
                    let cv = o.ld_gf(c, ci);
                    let scaled_c = o.mul_f(beta, cv);
                    let out = o.fma_f(alpha, sum, scaled_c);
                    o.st_gf(c, ci, out);
                });
            });
        });
    }
}

/// Simple aligned table printer for the repro binaries.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::from("|");
            for (c, w) in cells.iter().zip(&widths) {
                out.push_str(&format!(" {c:w$} |"));
            }
            out
        };
        let header = line(&self.headers);
        let sep: String = header
            .chars()
            .map(|ch| if ch == '|' { '|' } else { '-' })
            .collect();
        println!("{header}");
        println!("{sep}");
        for row in &self.rows {
            println!("{}", line(row));
        }
    }
}

/// Standard pool-worker count for the real-CPU measurements.
pub fn host_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// Shorthand constructors for the devices the experiments use.
pub fn dev_sim_k20() -> Device {
    Device::new(AccKind::sim_k20())
}

pub fn dev_sim_k80() -> Device {
    Device::new(AccKind::sim_k80())
}

pub fn dev_cpu_blocks() -> Device {
    Device::with_workers(AccKind::CpuBlocks, host_workers())
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpaka_kernels::host::{dgemm_ref, rel_err};
    use alpaka_kernels::DgemmTiledCuda;

    #[test]
    fn generic_tiled_matches_native_style_results() {
        let n = 40;
        let data = GemmData::new(n);
        let dev = dev_sim_k20();
        let ts = 8;
        let wd = DgemmTiledCuda { ts }.workdiv(n, n);
        let (_, got_generic) = time_gemm(
            &dev,
            &DgemmTiledCudaGeneric { ts },
            &wd,
            &data,
            LaunchMode::Exact,
        );
        let (_, got_native) =
            time_gemm(&dev, &DgemmTiledCuda { ts }, &wd, &data, LaunchMode::Exact);
        let mut want = data.c.clone();
        dgemm_ref(n, n, n, 1.0, &data.a, &data.b, 0.0, &mut want);
        assert!(rel_err(&got_generic, &want) < 1e-13);
        assert!(rel_err(&got_native, &want) < 1e-13);
    }

    #[test]
    fn table_prints_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(vec!["x".into(), "y".into()]);
        t.print();
    }

    #[test]
    fn gflops_math() {
        assert_eq!(gemm_flops(10, 10, 10), 2000.0);
        assert_eq!(gflops(2e9, 1.0), 2.0);
    }
}
