//! Validate the `BENCH_sim.json` perf-trajectory file at the repo root.
//!
//! Two benches write into this file — `sim_lowering` creates it, then
//! `pool_scaling` splices a `pool_scaling` entry into the existing body —
//! so a formatting slip in either one can silently corrupt it. This
//! checker gates that in `scripts/bench.sh --test` and `scripts/ci.sh`:
//! the body must parse under `alpaka_trace::validate_json` (the same
//! strict validator the trace exporters use) and carry the expected
//! `schema_version` plus the sections downstream tooling greps for.
//!
//! Usage: `check_bench_json [path]` (defaults to the repo-root file).

use std::process::ExitCode;

const SCHEMA_VERSION: u32 = 1;

fn fail(msg: String) -> ExitCode {
    eprintln!("check_bench_json: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json").into());
    let body = match std::fs::read_to_string(&path) {
        Ok(b) => b,
        Err(e) => return fail(format!("cannot read {path}: {e}")),
    };
    if let Err(e) = alpaka_trace::validate_json(&body) {
        return fail(format!("{path} is not valid JSON: {e}"));
    }
    let marker = format!("\"schema_version\": {SCHEMA_VERSION}");
    if !body.contains(&marker) {
        return fail(format!(
            "{path} is missing {marker} — written by an old bench or hand-edited?"
        ));
    }
    // The sections every consumer of the trajectory file relies on. A
    // missing pool_scaling entry is fine (sim_lowering rewrites the file
    // from scratch); a present-but-mangled one is caught by the JSON
    // validation above.
    for key in ["\"workload\"", "\"workloads\"", "\"host_cpus\""] {
        if !body.contains(key) {
            return fail(format!("{path} is missing the {key} section"));
        }
    }
    let spliced = if body.contains("\"pool_scaling\"") {
        " (+pool_scaling)"
    } else {
        ""
    };
    eprintln!("check_bench_json: {path} OK, schema_version {SCHEMA_VERSION}{spliced}");
    ExitCode::SUCCESS
}
