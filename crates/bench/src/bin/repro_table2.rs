//! Reproduce Table 2: predefined accelerator work divisions for a 1-D
//! problem of size N with B threads per block and V elements per thread.

use alpaka::registry::{table2_concrete, table2_symbolic};
use alpaka_bench::Table;

fn main() {
    println!("# Table 2 — predefined accelerators (symbolic)\n");
    let mut t = Table::new(&["Arch", "Acc", "Grid", "Block", "Thread", "Element"]);
    for row in table2_symbolic() {
        t.row(vec![
            row.arch.into(),
            row.acc.into(),
            row.grids.to_string(),
            row.blocks.clone(),
            row.threads.clone(),
            row.elements.clone(),
        ]);
    }
    t.print();

    let (n, b, v) = (1 << 20, 128, 4);
    println!("\n# Concrete instantiation: N = {n}, B = {b}, V = {v}\n");
    let mut t = Table::new(&[
        "Arch",
        "Acc",
        "Blocks",
        "Threads/block",
        "Elems/thread",
        "Covered",
    ]);
    for (row, [blocks, threads, elems]) in table2_concrete(n, b, v) {
        t.row(vec![
            row.arch.into(),
            row.acc.into(),
            blocks.to_string(),
            threads.to_string(),
            elems.to_string(),
            (blocks * threads * elems >= n).to_string(),
        ]);
    }
    t.print();
}
