//! Reproduce Fig. 8: the *single-source* hierarchically tiled DGEMM kernel
//! competes with (and can beat) the native implementations on every
//! back-end, with the elements-per-thread choice as the tuning knob.
//!
//! * GPU (simulated K80): tiling with 1 vs 4 elements per thread, relative
//!   to the native CUDA-style kernel.
//! * CPU (real, block pool): tiling with 256 vs 4096 elements per thread,
//!   relative to the native multithreaded naive implementation.

use alpaka::LaunchMode;
use alpaka_bench::*;
use alpaka_kernels::native::native_dgemm;
use alpaka_kernels::{DgemmTiled, DgemmTiledCuda};

fn main() {
    let workers = host_workers();
    println!("# Fig. 8 — single-source tiling kernel vs native implementations\n");
    let mut t = Table::new(&[
        "Series",
        "n",
        "t_native [s]",
        "t_tiled [s]",
        "speedup vs native",
    ]);

    // ---- GPU (simulated K80) ----
    let gpu = dev_sim_k80();
    for n in [128usize, 256] {
        let data = GemmData::new(n);
        let wd_native = DgemmTiledCuda { ts: 16 }.workdiv(n, n);
        let (native, _) = time_gemm(
            &gpu,
            &DgemmTiledCuda { ts: 16 },
            &wd_native,
            &data,
            LaunchMode::Exact,
        );
        for (label, kern) in [
            (
                "Alpaka(SimK80) tiling 1 element",
                DgemmTiled { t: 16, e: 1 },
            ),
            (
                "Alpaka(SimK80) tiling 4 elements",
                DgemmTiled { t: 16, e: 2 },
            ),
        ] {
            let wd = kern.workdiv(n, n);
            let (tiled, _) = time_gemm(&gpu, &kern, &wd, &data, LaunchMode::Exact);
            t.row(vec![
                label.into(),
                n.to_string(),
                format!("{:.6}", native.time_s),
                format!("{:.6}", tiled.time_s),
                format!("{:.3}", native.time_s / tiled.time_s),
            ]);
        }
    }

    // ---- CPU (real block-pool back-end) ----
    let cpu = dev_cpu_blocks();
    for n in [256usize, 512] {
        let data = GemmData::new(n);
        let t_native = median_wall(3, || {
            let mut c = data.c.clone();
            native_dgemm(n, n, n, 1.0, &data.a, &data.b, 0.0, &mut c, workers);
            std::hint::black_box(&c);
        });
        for (label, kern) in [
            (
                "Alpaka(CpuBlocks) tiling 256 elements",
                DgemmTiled { t: 1, e: 16 },
            ),
            (
                "Alpaka(CpuBlocks) tiling 4k elements",
                DgemmTiled { t: 1, e: 64 },
            ),
        ] {
            let wd = kern.workdiv(n, n);
            let (t_tiled, _) = bench_gemm(&cpu, &kern, &wd, &data, 3);
            t.row(vec![
                label.into(),
                n.to_string(),
                format!("{t_native:.4}"),
                format!("{t_tiled:.4}"),
                format!("{:.3}", t_native / t_tiled),
            ]);
        }
    }
    t.print();
    println!(
        "\nPaper: the single-source tiling kernel competes with and even\n\
         outperforms the native implementations (speedups ~1–4).\n\
         Shape check: speedups should be >= ~0.9, and the larger element\n\
         counts should help on the CPU."
    );
}
